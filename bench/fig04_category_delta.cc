// Figure 4: average normalized delta throughput Delta_w(Phi_N, Phi_R) over
// the benchmark set, per expected-workload category, as a function of rho.
// The paper's headline model result: for non-uniform categories the robust
// tuning delivers large average gains once rho >= ~0.5, while for the
// uniform workload the nominal tuning keeps a small edge.

#include "bench_common.h"

int main() {
  using namespace endure;
  using namespace endure::bench;

  FigureHeader("Figure 4 - avg delta throughput by category",
               "mean Delta_w(Phi_N, Phi_R) over B vs rho, per category");

  SystemConfig cfg;
  CostModel model(cfg);
  NominalTuner nominal(model);
  RobustTuner robust(model);

  const BenchScale scale = ReadScale();
  workload::BenchmarkSet bench = MakeBenchmarkSet(scale.benchmark_size);
  const std::vector<Workload> samples = bench.Workloads();

  const std::vector<double> rhos = {0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5};

  TablePrinter table({"rho", "uniform", "unimodal", "bimodal", "trimodal"});
  // Cache the nominal tunings (rho-independent).
  std::vector<Tuning> nominals(15);
  for (int i = 0; i < 15; ++i) {
    nominals[i] =
        nominal.Tune(workload::GetExpectedWorkload(i).workload).tuning;
  }

  for (double rho : rhos) {
    double sum[4] = {0, 0, 0, 0};
    int count[4] = {0, 0, 0, 0};
    for (int i = 0; i < 15; ++i) {
      const auto& ew = workload::GetExpectedWorkload(i);
      const Tuning phi_r = robust.Tune(ew.workload, rho).tuning;
      double mean_delta = 0.0;
      for (const Workload& w : samples) {
        mean_delta += DeltaThroughput(model, w, nominals[i], phi_r);
      }
      mean_delta /= static_cast<double>(samples.size());
      const int c = static_cast<int>(ew.category);
      sum[c] += mean_delta;
      ++count[c];
    }
    table.AddRow({TablePrinter::Fmt(rho, 2),
                  TablePrinter::Fmt(sum[0] / count[0], 3),
                  TablePrinter::Fmt(sum[1] / count[1], 3),
                  TablePrinter::Fmt(sum[2] / count[2], 3),
                  TablePrinter::Fmt(sum[3] / count[3], 3)});
  }
  table.Print();
  std::printf(
      "\npaper: unimodal/bimodal/trimodal curves sit well above zero for\n"
      "rho >= 0.5 (95%%+ average improvement); uniform stays slightly\n"
      "negative (~-5%%).\n");
  return 0;
}
