// Micro benchmarks: storage engine primitives — point lookups (hit and
// miss), short scans, writes with compaction amortization, and Bloom
// filter probes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"

namespace {

using namespace endure;
using namespace endure::lsm;

/// Decodes a benchmark Arg into a policy, refusing out-of-range values
/// (an unchecked cast would turn a typo'd ->Arg(3) into UB the policy
/// switch silently misinterprets).
CompactionPolicy PolicyFromArg(int64_t arg) {
  switch (arg) {
    case 0:
      return CompactionPolicy::kLeveling;
    case 1:
      return CompactionPolicy::kTiering;
    case 2:
      return CompactionPolicy::kLazyLeveling;
    default:
      std::fprintf(stderr, "micro_lsm: invalid policy arg %lld\n",
                   static_cast<long long>(arg));
      std::abort();
  }
}

std::unique_ptr<DB> MakeLoadedDb(uint64_t n, CompactionPolicy policy) {
  Options o;
  o.policy = policy;
  o.size_ratio = 8;
  o.buffer_entries = 1024;
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 8.0;
  auto db = DB::Open(o);
  std::vector<std::pair<Key, Value>> pairs;
  pairs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) pairs.emplace_back(2 * i, i);
  (void)(*db)->BulkLoad(pairs);
  return std::move(db).value();
}

void BM_PointLookupHit(benchmark::State& state) {
  auto db = MakeLoadedDb(100000, PolicyFromArg(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Get(2 * rng.UniformInt(0, 99999)));
  }
}
BENCHMARK(BM_PointLookupHit)->Arg(0)->Arg(1)->Arg(2);

void BM_PointLookupMiss(benchmark::State& state) {
  auto db = MakeLoadedDb(100000, PolicyFromArg(state.range(0)));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Get(2 * rng.UniformInt(0, 99999) + 1));
  }
}
BENCHMARK(BM_PointLookupMiss)->Arg(0)->Arg(1)->Arg(2);

void BM_ShortScan(benchmark::State& state) {
  auto db = MakeLoadedDb(100000, CompactionPolicy::kLeveling);
  Rng rng(3);
  for (auto _ : state) {
    const Key lo = 2 * rng.UniformInt(0, 99990);
    benchmark::DoNotOptimize(db->Scan(lo, lo + 8).value());
  }
}
BENCHMARK(BM_ShortScan);

void BM_Write(benchmark::State& state) {
  Options o;
  o.policy = PolicyFromArg(state.range(0));
  o.size_ratio = 8;
  o.buffer_entries = 1024;
  o.entries_per_page = 4;
  auto db = DB::Open(o);
  Key next = 0;
  for (auto _ : state) {
    (*db)->Put(next, next);
    next += 2;
  }
}
BENCHMARK(BM_Write)->Arg(0)->Arg(1)->Arg(2);

void BM_BloomProbe(benchmark::State& state) {
  BloomFilter filter(100000, 10.0);
  for (Key k = 0; k < 100000; ++k) filter.Add(2 * k);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayContain(rng.Next()));
  }
}
BENCHMARK(BM_BloomProbe);

void BM_MemtableUpsert(benchmark::State& state) {
  MemTable mt(1 << 20);
  Rng rng(5);
  for (auto _ : state) {
    mt.Upsert(Entry{rng.Next() % (1 << 18), 1, 1, EntryType::kValue});
  }
}
BENCHMARK(BM_MemtableUpsert);

}  // namespace

BENCHMARK_MAIN();
