// Figure 18: mixed sequences for the trimodal expected workloads w12-w14
// at the paper's observed divergences (0.39, 0.57, 0.60). Paper outcomes:
// w12's nominal tiering tuning suffers in the range session; w13/w14 trade
// slightly worse robust range performance for far cheaper write sessions.

#include "bench_common.h"

int main() {
  using endure::workload::GetExpectedWorkload;
  const int indices[3] = {12, 13, 14};
  const double rhos[3] = {0.39, 0.57, 0.60};
  for (int i = 0; i < 3; ++i) {
    endure::bench::RunSystemFigure(
        "Figure 18 - system, trimodal w" + std::to_string(indices[i]) +
            " (rho = " + endure::TablePrinter::Fmt(rhos[i], 2) + ")",
        GetExpectedWorkload(indices[i]).workload, rhos[i],
        /*read_only=*/false, /*seed=*/static_cast<uint64_t>(180 + i));
  }
  return 0;
}
