// Figure 9: read-only sequence for w11 = (33, 33, 33, 1) with rho = 0.25
// while the observed workloads stay close to the expectation
// (I_KL ~ 0.06). Paper outcome: nominal keeps a modest edge (~20%
// latency) - the price of robustness when no surprise arrives.

#include "bench_common.h"

int main() {
  endure::bench::RunSystemFigure(
      "Figure 9 - system, w11 read-only (rho = 0.25, low drift)",
      endure::workload::GetExpectedWorkload(11).workload,
      /*rho=*/0.25, /*read_only=*/true, /*seed=*/9);
  return 0;
}
