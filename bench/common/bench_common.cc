#include "bench_common.h"

#include <cstdio>

namespace endure::bench {

BenchScale ReadScale() {
  BenchScale s;
  s.entries = static_cast<uint64_t>(GetEnvInt("ENDURE_N", 50000));
  s.queries = static_cast<uint64_t>(GetEnvInt("ENDURE_QUERIES", 1000));
  s.benchmark_size = static_cast<int>(GetEnvInt("ENDURE_BENCH", 2000));
  return s;
}

void FigureHeader(const std::string& figure, const std::string& what) {
  PrintBanner(figure);
  const BenchScale s = ReadScale();
  std::printf("%s\n", what.c_str());
  std::printf(
      "scale: N=%llu entries, %llu queries/workload, |B|=%d "
      "(override via ENDURE_N / ENDURE_QUERIES / ENDURE_BENCH)\n\n",
      static_cast<unsigned long long>(s.entries),
      static_cast<unsigned long long>(s.queries), s.benchmark_size);
}

workload::BenchmarkSet MakeBenchmarkSet(int size, uint64_t seed) {
  Rng rng(seed);
  return workload::BenchmarkSet(size, &rng);
}

TuningPair SolvePair(const CostModel& model, const Workload& w, double rho) {
  NominalTuner nominal(model);
  RobustTuner robust(model);
  TuningPair pair;
  const TuningResult n = nominal.Tune(w);
  const TuningResult r = robust.Tune(w, rho);
  pair.nominal = n.tuning;
  pair.robust = r.tuning;
  pair.nominal_cost = n.objective;
  pair.robust_value = r.objective;
  return pair;
}

void RunSystemFigure(const std::string& figure, const Workload& expected,
                     double rho, bool read_only, uint64_t seed) {
  SystemConfig cfg;
  CostModel model(cfg);
  const TuningPair pair = SolvePair(model, expected, rho);

  FigureHeader(figure, "System experiment: nominal vs robust tuning, "
                       "expected workload " + expected.ToString() +
                       ", rho=" + TablePrinter::Fmt(rho, 2));
  std::printf("nominal: %s\nrobust : %s\n\n",
              pair.nominal.ToString().c_str(),
              pair.robust.ToString().c_str());

  const BenchScale scale = ReadScale();
  bridge::ExperimentOptions eopts;
  eopts.actual_entries = scale.entries;
  eopts.queries_per_workload = scale.queries;
  eopts.seed = seed;
  bridge::ExperimentRunner runner(cfg, eopts);

  Rng rng(seed);
  workload::SessionOptions sopts;
  sopts.workloads_per_session = 3;
  workload::SessionGenerator gen(expected, &rng, sopts);
  const std::vector<workload::Session> sessions =
      read_only ? gen.ReadOnlySequence() : gen.MixedSequence();

  const auto rn = runner.Run(pair.nominal, sessions);
  const auto rr = runner.Run(pair.robust, sessions);

  TablePrinter table({"session", "avg workload", "nom model I/O",
                      "nom sys I/O", "rob model I/O", "rob sys I/O",
                      "nom us/q", "rob us/q"});
  double kl_sum = 0.0;
  for (size_t i = 0; i < sessions.size(); ++i) {
    kl_sum += KlDivergence(rn[i].average, expected);
    table.AddRow(
        {std::to_string(i + 1) + ". " +
             workload::SessionKindName(sessions[i].kind),
         rn[i].average.ToString(),
         TablePrinter::Fmt(rn[i].model_io_per_query, 2),
         TablePrinter::Fmt(rn[i].measured_io_per_query, 2),
         TablePrinter::Fmt(rr[i].model_io_per_query, 2),
         TablePrinter::Fmt(rr[i].measured_io_per_query, 2),
         TablePrinter::Fmt(rn[i].latency_us_per_query, 1),
         TablePrinter::Fmt(rr[i].latency_us_per_query, 1)});
  }
  table.Print();
  std::printf("observed mean I_KL(w_hat, w) across sessions: %.2f\n",
              kl_sum / sessions.size());
}

}  // namespace endure::bench
