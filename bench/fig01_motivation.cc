// Figure 1: the motivating example. A tuning chosen for the expected
// workload degrades ~2x when a range-heavy mix shows up; per-session
// "perfect" tunings stay flat. Reported both on the analytical model and
// on the bundled LSM engine.

#include "bench_common.h"

int main() {
  using namespace endure;
  using namespace endure::bench;

  FigureHeader("Figure 1 - motivating example",
               "Expected vs perfect tuning across a workload shift "
               "(sessions: expected, uncertain, expected)");

  SystemConfig cfg;
  CostModel model(cfg);
  NominalTuner tuner(model);

  const Workload expected(0.20, 0.20, 0.06, 0.54);
  const Workload uncertain(0.02, 0.02, 0.41, 0.55);
  const Workload sequence[3] = {expected, uncertain, expected};
  const Tuning expected_tuning = tuner.Tune(expected).tuning;

  const BenchScale scale = ReadScale();
  bridge::ExperimentOptions eopts;
  eopts.actual_entries = scale.entries;
  eopts.queries_per_workload = scale.queries;
  bridge::ExperimentRunner runner(cfg, eopts);

  TablePrinter table({"session", "workload", "expected-tuning model I/O",
                      "expected-tuning sys I/O", "perfect-tuning sys I/O"});
  for (int s = 0; s < 3; ++s) {
    const Tuning perfect = tuner.Tune(sequence[s]).tuning;
    workload::Session session;
    session.kind = workload::SessionKind::kExpected;
    session.workloads = {sequence[s]};
    const auto run_expected = runner.Run(expected_tuning, {session});
    const auto run_perfect = runner.Run(perfect, {session});
    table.AddRow(
        {std::to_string(s + 1), sequence[s].ToString(),
         TablePrinter::Fmt(run_expected[0].model_io_per_query, 2),
         TablePrinter::Fmt(run_expected[0].measured_io_per_query, 2),
         TablePrinter::Fmt(run_perfect[0].measured_io_per_query, 2)});
  }
  table.Print();
  std::printf(
      "\npaper: the static tuning's I/Os roughly double in session 2 while\n"
      "the per-session perfect tuning holds steady.\n");
  return 0;
}
