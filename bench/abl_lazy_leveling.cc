// Ablation: adding Dostoevsky's lazy leveling to the tuning space. Under
// the paper's default memory budget the classic pair usually suffices; at
// tighter budgets the hybrid opens a strict win on point-read + write
// mixes. Verified on both the model and the engine.

#include "bench_common.h"

int main() {
  using namespace endure;
  using namespace endure::bench;

  FigureHeader("Ablation - lazy leveling in the tuning space",
               "classic {leveling, tiering} vs + lazy-leveling, tight "
               "memory (H = 3 bits/entry)");

  SystemConfig cfg;
  cfg.memory_budget_bits_per_entry = 3.0;
  CostModel model(cfg);
  TunerOptions extended;
  extended.policies = {Policy::kLeveling, Policy::kTiering,
                       Policy::kLazyLeveling};
  NominalTuner classic(model);
  NominalTuner hybrid(model, extended);

  const BenchScale scale = ReadScale();

  TablePrinter table({"workload", "classic policy", "classic cost",
                      "extended policy", "extended cost", "model gain %",
                      "engine I/O classic", "engine I/O extended"});
  for (const Workload w : {Workload(0.49, 0.25, 0.01, 0.25),
                           Workload(0.40, 0.10, 0.05, 0.45),
                           Workload(0.25, 0.25, 0.05, 0.45),
                           Workload(0.30, 0.30, 0.10, 0.30)}) {
    const TuningResult c = classic.Tune(w);
    const TuningResult e = hybrid.Tune(w);

    // Engine validation: run the expected workload on both tunings.
    bridge::ExperimentOptions eopts;
    eopts.actual_entries = scale.entries / 2;
    eopts.queries_per_workload = scale.queries;
    bridge::ExperimentRunner runner(cfg, eopts);
    workload::Session session;
    session.kind = workload::SessionKind::kExpected;
    session.workloads.assign(3, w);
    const auto rc = runner.Run(c.tuning, {session});
    const auto re = runner.Run(e.tuning, {session});

    table.AddRow({w.ToString(), PolicyName(c.tuning.policy),
                  TablePrinter::Fmt(c.objective, 3),
                  PolicyName(e.tuning.policy),
                  TablePrinter::Fmt(e.objective, 3),
                  TablePrinter::Fmt(
                      (c.objective / e.objective - 1.0) * 100.0, 1),
                  TablePrinter::Fmt(rc[0].measured_io_per_query, 2),
                  TablePrinter::Fmt(re[0].measured_io_per_query, 2)});
  }
  table.Print();
  std::printf(
      "\nexpected: the extended space never loses on the model; where it\n"
      "picks lazy-leveling, the engine confirms the I/O advantage.\n");
  return 0;
}
