// Figure 7: contour of Delta_w(Phi_N, Phi_R) over the (rho, I_KL) plane
// for expected workloads w7 and w11. Regenerated as a matrix of binned
// means: rows = rho used for the robust tuning, columns = observed
// KL-divergence bin of the benchmark workload.

#include "bench_common.h"

int main() {
  using namespace endure;
  using namespace endure::bench;

  FigureHeader("Figure 7 - delta throughput contours",
               "mean Delta over B, rho (rows) x observed I_KL (cols)");

  SystemConfig cfg;
  CostModel model(cfg);
  NominalTuner nominal(model);
  RobustTuner robust(model);

  const BenchScale scale = ReadScale();
  workload::BenchmarkSet bench = MakeBenchmarkSet(scale.benchmark_size);

  constexpr int kKlBins = 6;
  const double kl_max = 3.0;
  const std::vector<double> rhos = {0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0};

  for (int idx : {7, 11}) {
    const Workload w = workload::GetExpectedWorkload(idx).workload;
    const Tuning phi_n = nominal.Tune(w).tuning;
    std::printf("w%d = %s   nominal: %s\n", idx, w.ToString().c_str(),
                phi_n.ToString().c_str());

    std::vector<std::string> headers{"rho \\ I_KL"};
    for (int b = 0; b < kKlBins; ++b) {
      char bin[32];
      std::snprintf(bin, sizeof(bin), "[%.1f,%.1f)", b * kl_max / kKlBins,
                    (b + 1) * kl_max / kKlBins);
      headers.push_back(bin);
    }
    TablePrinter table(headers);

    for (double rho : rhos) {
      const Tuning phi_r = robust.Tune(w, rho).tuning;
      double sum[kKlBins] = {0};
      int n[kKlBins] = {0};
      for (size_t i = 0; i < bench.size(); ++i) {
        const Workload& sample = bench.sample(i).workload;
        const double kl = KlDivergence(sample, w);
        if (kl >= kl_max) continue;
        const int b = static_cast<int>(kl / kl_max * kKlBins);
        sum[b] += DeltaThroughput(model, sample, phi_n, phi_r);
        ++n[b];
      }
      std::vector<std::string> row{TablePrinter::Fmt(rho, 2)};
      for (int b = 0; b < kKlBins; ++b) {
        row.push_back(n[b] ? TablePrinter::Fmt(sum[b] / n[b], 2) : "-");
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "paper: nominal only wins (negative cells) near the origin - tiny\n"
      "observed drift or rho < ~0.2; everywhere else robust dominates.\n");
  return 0;
}
