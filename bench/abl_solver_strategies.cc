// Ablation: robust-dual solver strategies. The production path eliminates
// eta analytically and Brent-minimizes the 1-D dual in lambda; the
// cross-check keeps lambda as an explicit Nelder-Mead dimension (the shape
// of the paper's SLSQP formulation). Both must land on the same objective;
// the 1-D path should be faster.

#include <algorithm>
#include <cmath>

#include "bench_common.h"

int main() {
  using namespace endure;
  using namespace endure::bench;

  FigureHeader("Ablation - robust dual solver strategies",
               "analytic-eta + Brent vs joint Nelder-Mead duals");

  SystemConfig cfg;
  CostModel model(cfg);
  RobustTuner robust(model);

  TablePrinter table({"workload", "rho", "1-D dual obj", "joint obj",
                      "1-D ms", "joint ms", "agreement"});
  for (int idx : {1, 7, 11}) {
    const Workload w = workload::GetExpectedWorkload(idx).workload;
    for (double rho : {0.25, 1.0, 2.0}) {
      const TuningResult fast = robust.TunePolicy(w, rho,
                                                  Policy::kLeveling);
      const TuningResult joint = robust.TuneJointDual(w, rho,
                                                      Policy::kLeveling);
      const double rel =
          std::fabs(fast.objective - joint.objective) /
          std::max(1e-12, fast.objective);
      table.AddRow({"w" + std::to_string(idx), TablePrinter::Fmt(rho, 2),
                    TablePrinter::Fmt(fast.objective, 4),
                    TablePrinter::Fmt(joint.objective, 4),
                    TablePrinter::Fmt(fast.solve_seconds * 1e3, 1),
                    TablePrinter::Fmt(joint.solve_seconds * 1e3, 1),
                    rel < 5e-3 ? "ok" : "DIVERGED"});
    }
  }
  table.Print();
  std::printf("\nexpected: objectives agree to <0.5%%; the analytic-eta "
              "path is faster and\nnever worse.\n");
  return 0;
}
