// Figure 16: impact of database size on performance. Both w11 tunings
// (nominal and robust rho = 0.25) are deployed at increasing N; since the
// memory budget scales with N (H bits/entry), the level count - and hence
// the relative nominal/robust gap - is invariant, while m_buf grows.

#include <algorithm>

#include "bench_common.h"

int main() {
  using namespace endure;
  using namespace endure::bench;

  FigureHeader("Figure 16 - scaling with database size",
               "w11 tunings deployed at growing N; gap stays constant");

  SystemConfig cfg;
  CostModel model(cfg);
  const Workload w11 = workload::GetExpectedWorkload(11).workload;
  const TuningPair pair = SolvePair(model, w11, 0.25);
  std::printf("nominal: %s\nrobust : %s\n\n",
              pair.nominal.ToString().c_str(),
              pair.robust.ToString().c_str());

  const BenchScale scale = ReadScale();
  // Sweep a factor of 25 ending at the configured scale (smaller sizes
  // drown in compaction noise relative to the query count).
  const uint64_t top = std::max<uint64_t>(scale.entries, 25000);
  const uint64_t sizes[3] = {top / 25, top / 5, top};

  // The paper's two observed mixes: read-only and with writes.
  const Workload observed_read(0.32, 0.47, 0.21, 0.0);
  const Workload observed_write(0.29, 0.29, 0.23, 0.19);

  for (const auto& [label, observed] :
       {std::pair{"read-only observed (32,47,22,0)", observed_read},
        std::pair{"with writes observed (29,29,23,19)", observed_write}}) {
    std::printf("%s\n", label);
    TablePrinter table({"N", "m_buf nominal (MiB)", "m_buf robust (MiB)",
                        "levels", "nominal I/O per q", "robust I/O per q"});
    for (uint64_t n : sizes) {
      bridge::ExperimentOptions eopts;
      eopts.actual_entries = n;
      eopts.queries_per_workload = scale.queries;
      bridge::ExperimentRunner runner(cfg, eopts);
      workload::Session session;
      session.kind = workload::SessionKind::kExpected;
      // Enough volume that write-triggered deep compactions (the nominal
      // tuning's failure mode at T ~ 47) actually fire at every N.
      session.workloads.assign(5, observed.Normalized());
      const auto rn = runner.Run(pair.nominal, {session});
      const auto rr = runner.Run(pair.robust, {session});

      const SystemConfig scaled = bridge::ScaledConfig(cfg, n);
      CostModel scaled_model(scaled);
      const double mbuf_n =
          pair.nominal.buffer_memory_bits(scaled) / 8.0 / (1 << 20);
      const double mbuf_r =
          pair.robust.buffer_memory_bits(scaled) / 8.0 / (1 << 20);
      table.AddRow({std::to_string(n), TablePrinter::Fmt(mbuf_n, 2),
                    TablePrinter::Fmt(mbuf_r, 2),
                    std::to_string(scaled_model.Levels(pair.nominal)),
                    TablePrinter::Fmt(rn[0].measured_io_per_query, 2),
                    TablePrinter::Fmt(rr[0].measured_io_per_query, 2)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "paper: buffer memory grows with N, the level count stays fixed, and\n"
      "the nominal-vs-robust gap is size-independent.\n");
  return 0;
}
