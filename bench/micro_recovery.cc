// micro_recovery: restart latency of a durable ShardedDB deployment
// (docs/durability.md, docs/operations.md) as a function of shard count,
// serial vs parallel shard recovery, plus the WAL-flusher thread count
// before/after the shared WalFlushService.
//
// Phases (for each shard count S in MICRO_RECOVERY_SHARDS):
//   recover_serial_s<S>    reopen a killed S-shard deployment with
//                          Options::recovery_threads = 1 (the prior
//                          sum-over-shards behaviour)
//   recover_parallel_s<S>  reopen an identical copy of the same killed
//                          deployment with recovery_threads = 0 (auto:
//                          min(S, hardware threads)) — max-over-shards
// Each killed deployment is prepared once and copied, so both opens
// replay byte-identical manifests, segments and WAL tails; ops = entries
// recovered, pages = recovery page reads. The flusher phase opens the
// largest deployment under WalSyncMode::kBackground twice and counts
// live threads via /proc/self/task: shared_wal_flusher=false runs one
// interval thread per shard, =true exactly one WalFlushService thread.
//
// Scale knobs (environment):
//   MICRO_RECOVERY_SHARDS  CSV of shard counts (default "1,4,8")
//   MICRO_RECOVERY_N       entries loaded into runs before the kill (30000)
//   MICRO_RECOVERY_WAL     entries left in the WAL tail to replay (4000)
//
// Usage: micro_recovery [output.json]  (always prints the JSON to stdout)

#include <filesystem>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "lsm/sharded_db.h"
#include "util/env.h"
#include "util/thread_pool.h"

ENDURE_BENCH_DEFINE_ALLOC_COUNTING()

namespace endure::lsm {
namespace {

using bench_util::Meter;
using bench_util::PhaseResult;

Options DeployOpts(const std::string& dir, int shards) {
  Options o;
  o.size_ratio = 4;
  o.buffer_entries = 8192;  // room for a real WAL tail below the seal
  o.entries_per_page = 64;
  o.filter_bits_per_entry = 6.0;
  o.backend = StorageBackend::kFile;
  o.storage_dir = dir;
  o.num_shards = shards;
  o.durability = true;
  o.wal_sync_mode = WalSyncMode::kBackground;
  o.wal_sync_interval_ms = 5;
  return o;
}

/// Builds an S-shard deployment with `n` entries settled into runs and
/// `wal_n` more resident only in the WAL, then kills it (no shutdown
/// checkpoint) so every reopen has manifests, segments and a WAL tail
/// to recover.
void PrepareKilledDeployment(const Options& opts, uint64_t n,
                             uint64_t wal_n) {
  std::filesystem::remove_all(opts.storage_dir);
  auto db = std::move(ShardedDB::Open(opts)).value();
  std::vector<std::pair<Key, Value>> batch;
  constexpr uint64_t kBatch = 256;
  for (uint64_t i = 0; i < n; i += kBatch) {
    batch.clear();
    for (uint64_t j = 0; j < kBatch && i + j < n; ++j) {
      batch.emplace_back(i + j, i + j);
    }
    db->PutBatch(batch);
  }
  db->Flush();  // checkpoint: everything so far owned by the manifests
  batch.clear();
  for (uint64_t i = 0; i < wal_n; ++i) {
    batch.emplace_back(n + i, i);
  }
  db->PutBatch(batch);  // stays memtable-resident: the WAL replay work
  db->CrashForTesting();
}

/// One timed reopen; ops = entries recovered, pages = recovery reads.
PhaseResult RecoverPhase(const Options& opts, uint64_t* wall_ms,
                         uint64_t* replayed) {
  WallTimer timer;
  Meter meter;
  auto db = std::move(ShardedDB::Open(opts)).value();
  *wall_ms = static_cast<uint64_t>(timer.Millis());
  const Statistics total = db->TotalStats();
  *replayed = total.wal_replayed_entries;
  const uint64_t entries = db->TotalEntries();
  return meter.Finish(entries > 0 ? entries : 1,
                      total.recovery_pages_read);
}

/// Live threads of this process (0 when /proc is unavailable).
uint64_t LiveThreads() {
  auto names = ListDir("/proc/self/task");
  return names.ok() ? names->size() : 0;
}

/// Parses a CSV of positive shard counts; exits with a usable message
/// on a malformed knob instead of an uncaught std::stoi exception.
std::vector<int> ParseShardList(const char* env, const char* def) {
  const char* raw = std::getenv(env);
  const std::string csv = raw != nullptr ? raw : def;
  std::vector<int> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = std::min(csv.find(',', pos), csv.size());
    const std::string tok = csv.substr(pos, comma - pos);
    if (!tok.empty()) {
      char* end = nullptr;
      const long v = std::strtol(tok.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v < 1 || v > 4096) {
        std::fprintf(stderr, "invalid %s: \"%s\" (want a CSV of shard "
                             "counts in [1, 4096])\n", env, csv.c_str());
        std::exit(1);
      }
      out.push_back(static_cast<int>(v));
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace
}  // namespace endure::lsm

int main(int argc, char** argv) {
  using namespace endure::lsm;
  const uint64_t n =
      static_cast<uint64_t>(endure::GetEnvInt("MICRO_RECOVERY_N", 30000));
  const uint64_t wal_n =
      static_cast<uint64_t>(endure::GetEnvInt("MICRO_RECOVERY_WAL", 4000));
  const std::vector<int> shard_counts =
      ParseShardList("MICRO_RECOVERY_SHARDS", "1,4,8");
  const std::string root = "/tmp/endure_micro_recovery";

  std::string phases;
  std::string summary = "  \"recovery\": {\n";
  for (size_t si = 0; si < shard_counts.size(); ++si) {
    const int shards = shard_counts[si];
    std::fprintf(stderr, "prepare: %d shard(s), %llu entries...\n", shards,
                 static_cast<unsigned long long>(n + wal_n));
    const std::string master = root + "_s" + std::to_string(shards);
    PrepareKilledDeployment(DeployOpts(master, shards), n, wal_n);
    // Identical copies so serial and parallel replay the same bytes.
    const std::string warm_dir = master + "_warm";
    const std::string serial_dir = master + "_serial";
    const std::string parallel_dir = master + "_parallel";
    for (const std::string& dst : {warm_dir, serial_dir, parallel_dir}) {
      std::filesystem::remove_all(dst);
      std::filesystem::copy(master, dst,
                            std::filesystem::copy_options::recursive);
    }
    // Untimed warmup open: the timed pair below compares recovery code
    // paths, not first-touch page-cache effects.
    {
      auto warm = ShardedDB::Open(DeployOpts(warm_dir, shards));
      if (!warm.ok()) {
        std::fprintf(stderr, "warmup open failed: %s\n",
                     warm.status().ToString().c_str());
        return 1;
      }
    }

    std::fprintf(stderr, "phase: recover serial vs parallel (%d)...\n",
                 shards);
    Options serial_opts = DeployOpts(serial_dir, shards);
    serial_opts.recovery_threads = 1;
    uint64_t serial_ms = 0, parallel_ms = 0, replayed = 0;
    const PhaseResult serial =
        RecoverPhase(serial_opts, &serial_ms, &replayed);
    const PhaseResult parallel = RecoverPhase(
        DeployOpts(parallel_dir, shards), &parallel_ms, &replayed);

    const std::string sn = std::to_string(shards);
    endure::bench_util::AppendPhaseJson(
        &phases, ("recover_serial_s" + sn).c_str(), serial, false);
    endure::bench_util::AppendPhaseJson(
        &phases, ("recover_parallel_s" + sn).c_str(), parallel,
        si + 1 == shard_counts.size());
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    \"s%s\": {\"serial_ms\": %llu, \"parallel_ms\": "
                  "%llu, \"speedup\": %.2f, \"replayed_entries\": %llu}%s\n",
                  sn.c_str(), static_cast<unsigned long long>(serial_ms),
                  static_cast<unsigned long long>(parallel_ms),
                  parallel_ms > 0 ? static_cast<double>(serial_ms) /
                                        static_cast<double>(parallel_ms)
                                  : 0.0,
                  static_cast<unsigned long long>(replayed),
                  si + 1 == shard_counts.size() ? "" : ",");
    summary += buf;
  }
  summary += "  },\n";

  // Flusher topology at the largest shard count: thread delta of an open
  // deployment, legacy per-shard threads vs the shared service.
  const int max_shards = shard_counts.empty() ? 1 : shard_counts.back();
  std::fprintf(stderr, "phase: flusher threads (%d shards)...\n",
               max_shards);
  uint64_t legacy_threads = 0, shared_threads = 0;
  {
    Options o = DeployOpts(root + "_flusher", max_shards);
    o.shared_wal_flusher = false;
    std::filesystem::remove_all(o.storage_dir);
    const uint64_t before = LiveThreads();
    auto db = std::move(ShardedDB::Open(o)).value();
    legacy_threads = LiveThreads() - before;
  }
  {
    Options o = DeployOpts(root + "_flusher", max_shards);
    std::filesystem::remove_all(o.storage_dir);
    const uint64_t before = LiveThreads();
    auto db = std::move(ShardedDB::Open(o)).value();
    shared_threads = LiveThreads() - before;
  }

  std::string json = endure::bench_util::BeginJson("micro_recovery");
  {
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "  \"config\": {\"n\": %llu, \"wal_entries\": %llu, "
                  "\"hardware_threads\": %llu},\n",
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(wal_n),
                  static_cast<unsigned long long>(
                      endure::DefaultParallelism()));
    json += buf;
  }
  json += "  \"phases\": {\n";
  json += phases;
  json += "  },\n";
  json += summary;
  {
    char buf[160];
    std::snprintf(
        buf, sizeof(buf),
        "  \"flusher_threads\": {\"shards\": %d, \"legacy_per_shard\": "
        "%llu, \"shared_service\": %llu}\n",
        max_shards, static_cast<unsigned long long>(legacy_threads),
        static_cast<unsigned long long>(shared_threads));
    json += buf;
  }
  json += "}\n";

  return endure::bench_util::EmitJson(json, argc, argv);
}
