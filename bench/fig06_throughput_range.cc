// Figure 6: (a) histograms of throughput 1/C(w_hat, Phi) over B for w11's
// nominal and robust tunings at several rho; (b) the throughput range
// Theta_B(Phi_R) averaged over all 15 expected workloads as rho grows.
// The paper's consistency claim: larger rho narrows the spread.

#include "bench_common.h"

int main() {
  using namespace endure;
  using namespace endure::bench;

  FigureHeader("Figure 6 - throughput histograms and range",
               "(a) 1/C(w_hat, Phi) over B for w11; (b) mean Theta_B vs rho");

  SystemConfig cfg;
  CostModel model(cfg);
  NominalTuner nominal(model);
  RobustTuner robust(model);
  const Workload w11 = workload::GetExpectedWorkload(11).workload;
  const Tuning phi_n = nominal.Tune(w11).tuning;

  const BenchScale scale = ReadScale();
  workload::BenchmarkSet bench = MakeBenchmarkSet(scale.benchmark_size);
  const std::vector<Workload> samples = bench.Workloads();

  // ---- Panel (a): histograms for w11. ----
  std::printf("(a) throughput histograms, w11; nominal: %s\n\n",
              phi_n.ToString().c_str());
  {
    Histogram h(0.0, 1.5, 15);
    h.AddAll(Throughputs(model, samples, phi_n));
    std::printf("nominal:\n%s\n", h.ToAscii(40).c_str());
  }
  for (double rho : {0.0, 0.25, 1.0, 2.0}) {
    const Tuning phi_r = robust.Tune(w11, rho).tuning;
    Histogram h(0.0, 1.5, 15);
    h.AddAll(Throughputs(model, samples, phi_r));
    std::printf("robust rho=%.2f: %s\n%s\n", rho,
                phi_r.ToString().c_str(), h.ToAscii(40).c_str());
  }

  // ---- Panel (b): mean throughput range vs rho. ----
  std::printf("(b) throughput range Theta_B averaged over all 15 expected "
              "workloads\n");
  TablePrinter table({"rho", "mean Theta_B (robust)",
                      "mean Theta_B (nominal)"});
  double nominal_theta = 0.0;
  std::vector<Tuning> nominals(15);
  for (int i = 0; i < 15; ++i) {
    nominals[i] =
        nominal.Tune(workload::GetExpectedWorkload(i).workload).tuning;
    nominal_theta += ThroughputRange(model, samples, nominals[i]);
  }
  nominal_theta /= 15.0;
  for (double rho : {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
    double theta = 0.0;
    for (int i = 0; i < 15; ++i) {
      const Tuning phi_r =
          robust.Tune(workload::GetExpectedWorkload(i).workload, rho).tuning;
      theta += ThroughputRange(model, samples, phi_r);
    }
    table.AddRow({TablePrinter::Fmt(rho, 2),
                  TablePrinter::Fmt(theta / 15.0, 3),
                  TablePrinter::Fmt(nominal_theta, 3)});
  }
  table.Print();
  std::printf(
      "\npaper: Theta_B(Phi_R) decreases monotonically with rho - robust\n"
      "tunings trade peak throughput for consistency.\n");
  return 0;
}
