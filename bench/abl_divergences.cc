// Ablation: uncertainty-ball geometry. Section 4 of the paper picks KL
// "as it fits our intuitive understanding of the space of workloads" but
// notes other divergences would work. This driver compares robust tunings
// for w11 under KL, modified chi-square, total variation and squared
// Hellinger balls of equal radius, and scores them on the benchmark set.

#include "bench_common.h"

int main() {
  using namespace endure;
  using namespace endure::bench;

  FigureHeader("Ablation - phi-divergence choice",
               "robust tunings for w11 under different ball geometries");

  SystemConfig cfg;
  CostModel model(cfg);
  NominalTuner nominal(model);
  const Workload w11 = workload::GetExpectedWorkload(11).workload;
  const Tuning phi_n = nominal.Tune(w11).tuning;

  const BenchScale scale = ReadScale();
  workload::BenchmarkSet bench = MakeBenchmarkSet(
      std::min(scale.benchmark_size, 1000));
  const std::vector<Workload> samples = bench.Workloads();

  TablePrinter table({"divergence", "rho", "policy", "T", "h",
                      "worst-case cost", "mean delta vs nominal",
                      "solve ms"});
  for (DivergenceKind kind : AllDivergenceKinds()) {
    GeneralizedRobustTuner tuner(model, kind);
    for (double rho : {0.25, 1.0}) {
      const TuningResult r = tuner.Tune(w11, rho);
      double mean_delta = 0.0;
      for (const Workload& w : samples) {
        mean_delta += DeltaThroughput(model, w, phi_n, r.tuning);
      }
      mean_delta /= static_cast<double>(samples.size());
      table.AddRow({tuner.divergence().name(), TablePrinter::Fmt(rho, 2),
                    PolicyName(r.tuning.policy),
                    TablePrinter::Fmt(r.tuning.size_ratio, 1),
                    TablePrinter::Fmt(r.tuning.filter_bits_per_entry, 1),
                    TablePrinter::Fmt(r.objective, 3),
                    TablePrinter::Fmt(mean_delta, 3),
                    TablePrinter::Fmt(r.solve_seconds * 1e3, 1)});
    }
  }
  table.Print();
  std::printf(
      "\nexpected: all geometries move the tuning the same direction\n"
      "(smaller T, fewer filter bits than nominal); radii are not directly\n"
      "comparable across divergences, so magnitudes differ.\n");
  return 0;
}
