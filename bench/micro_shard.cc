// micro_shard: aggregate put/get throughput of the ShardedDB front-end at
// 1/2/4/8 shards with a matching number of client threads, background
// maintenance on, memory backend. The scaling headline (speedup of S
// shards x S threads over 1x1) depends on the host's core count, recorded
// alongside the numbers: on a single-core container only the write-amp
// reduction from shallower per-shard trees shows; on a multicore CI
// runner the shard parallelism dominates.
//
// Scale knobs (environment):
//   MICRO_SHARD_OPS  puts (and gets) per configuration (default 200k)
//
// Usage: micro_shard [output.json]  (always prints the JSON to stdout too)

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "lsm/sharded_db.h"
#include "util/env.h"
#include "util/random.h"

ENDURE_BENCH_DEFINE_ALLOC_COUNTING()

namespace endure::lsm {
namespace {

using bench_util::Meter;
using bench_util::PhaseResult;

Options BenchOptions(int num_shards) {
  Options o;
  o.size_ratio = 6;
  o.buffer_entries = 4096;  // per shard, as a sharded deployment would
  o.entries_per_page = 256;
  o.filter_bits_per_entry = 8.0;
  o.num_shards = num_shards;
  o.background_maintenance = true;
  return o;
}

struct ConfigResult {
  PhaseResult put, get;
};

/// Runs `fn(thread_index)` on `threads` client threads and joins.
template <typename Fn>
void RunClients(int threads, Fn fn) {
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (int t = 0; t < threads; ++t) clients.emplace_back(fn, t);
  for (auto& c : clients) c.join();
}

ConfigResult RunConfig(int num_shards, uint64_t ops) {
  ConfigResult out;
  auto db = std::move(ShardedDB::Open(BenchOptions(num_shards))).value();
  const int threads = num_shards;  // one client thread per shard
  const uint64_t per_thread = ops / threads;
  const uint64_t key_space = ops;  // ~63% distinct keys under uniform picks

  // --- put: concurrent random upserts through seal/background-flush ---
  {
    Meter meter;
    RunClients(threads, [&](int t) {
      Rng rng(42 + t);
      for (uint64_t i = 0; i < per_thread; ++i) {
        db->Put(2 * rng.UniformInt(0, key_space - 1), i);
      }
    });
    db->WaitForMaintenance();
    out.put = meter.Finish(per_thread * threads,
                           db->TotalStats().pages_written);
  }

  // --- get: concurrent point lookups over the written keys ---
  {
    const Statistics before = db->TotalStats();
    Meter meter;
    RunClients(threads, [&](int t) {
      Rng rng(142 + t);
      uint64_t found = 0;
      for (uint64_t i = 0; i < per_thread; ++i) {
        found += db->Get(2 * rng.UniformInt(0, key_space - 1)).has_value();
      }
      if (found == 0) std::abort();  // uniform overwrites: most keys exist
    });
    out.get = meter.Finish(per_thread * threads,
                           db->TotalStats().Delta(before).pages_read);
  }

  return out;
}

}  // namespace
}  // namespace endure::lsm

int main(int argc, char** argv) {
  using namespace endure::lsm;
  const uint64_t ops =
      static_cast<uint64_t>(endure::GetEnvInt("MICRO_SHARD_OPS", 200000));

  const int kShardCounts[] = {1, 2, 4, 8};
  double put_1x1 = 0, put_4x4 = 0;

  std::string json = endure::bench_util::BeginJson("micro_shard");
  {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "  \"config\": {\"ops\": %llu, \"entries_per_page\": 256, "
                  "\"buffer_entries_per_shard\": 4096, "
                  "\"hardware_threads\": %u},\n",
                  static_cast<unsigned long long>(ops),
                  std::thread::hardware_concurrency());
    json += buf;
  }
  json += "  \"configs\": {\n";
  for (size_t i = 0; i < 4; ++i) {
    const int shards = kShardCounts[i];
    std::fprintf(stderr, "running %d shards x %d threads...\n", shards,
                 shards);
    const ConfigResult r = RunConfig(shards, ops);
    if (shards == 1) put_1x1 = r.put.ops_per_sec;
    if (shards == 4) put_4x4 = r.put.ops_per_sec;
    char name[32];
    std::snprintf(name, sizeof(name), "%dx%d", shards, shards);
    json += std::string("    \"") + name + "\": {\n";
    endure::bench_util::AppendPhaseJson(&json, "put", r.put, false);
    endure::bench_util::AppendPhaseJson(&json, "get", r.get, true);
    json += i + 1 < 4 ? "    },\n" : "    }\n";
  }
  json += "  },\n";
  {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "  \"put_speedup_4x4_vs_1x1\": %.2f\n",
                  put_1x1 > 0 ? put_4x4 / put_1x1 : 0.0);
    json += buf;
  }
  json += "}\n";

  return endure::bench_util::EmitJson(json, argc, argv);
}
