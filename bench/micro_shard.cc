// micro_shard: aggregate put/get throughput of the ShardedDB front-end at
// 1/2/4/8 shards with a matching number of client threads, background
// maintenance on, memory backend. The scaling headline (speedup of S
// shards x S threads over 1x1) depends on the host's core count, recorded
// alongside the numbers: on a single-core container only the write-amp
// reduction from shallower per-shard trees shows; on a multicore CI
// runner the shard parallelism dominates.
//
// The zipfian_read_heavy leg (schema v5) additionally measures the
// lock-free read path under a skewed serving mix: 95% gets / 5% puts,
// Zipfian key popularity (s = 0.99, YCSB-style), shared block cache and
// memory arbiter on — reporting the cache hit ratio and get latency
// percentiles. On a 1-core recorder the percentiles fold in client
// preemption; cross-machine comparisons should use the hit ratio and
// relative deltas, not absolute tail values.
//
// Scale knobs (environment):
//   MICRO_SHARD_OPS  puts (and gets) per configuration (default 200k)
//
// Usage: micro_shard [output.json]  (always prints the JSON to stdout too)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "lsm/sharded_db.h"
#include "util/env.h"
#include "util/random.h"

ENDURE_BENCH_DEFINE_ALLOC_COUNTING()

namespace endure::lsm {
namespace {

using bench_util::Meter;
using bench_util::PhaseResult;

Options BenchOptions(int num_shards) {
  Options o;
  o.size_ratio = 6;
  o.buffer_entries = 4096;  // per shard, as a sharded deployment would
  o.entries_per_page = 256;
  o.filter_bits_per_entry = 8.0;
  o.num_shards = num_shards;
  o.background_maintenance = true;
  return o;
}

struct ConfigResult {
  PhaseResult put, get;
};

/// Runs `fn(thread_index)` on `threads` client threads and joins.
template <typename Fn>
void RunClients(int threads, Fn fn) {
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (int t = 0; t < threads; ++t) clients.emplace_back(fn, t);
  for (auto& c : clients) c.join();
}

ConfigResult RunConfig(int num_shards, uint64_t ops) {
  ConfigResult out;
  auto db = std::move(ShardedDB::Open(BenchOptions(num_shards))).value();
  const int threads = num_shards;  // one client thread per shard
  const uint64_t per_thread = ops / threads;
  const uint64_t key_space = ops;  // ~63% distinct keys under uniform picks

  // --- put: concurrent random upserts through seal/background-flush ---
  {
    Meter meter;
    RunClients(threads, [&](int t) {
      Rng rng(42 + t);
      for (uint64_t i = 0; i < per_thread; ++i) {
        db->Put(2 * rng.UniformInt(0, key_space - 1), i);
      }
    });
    db->WaitForMaintenance();
    out.put = meter.Finish(per_thread * threads,
                           db->TotalStats().pages_written);
  }

  // --- get: concurrent point lookups over the written keys ---
  {
    const Statistics before = db->TotalStats();
    Meter meter;
    RunClients(threads, [&](int t) {
      Rng rng(142 + t);
      uint64_t found = 0;
      for (uint64_t i = 0; i < per_thread; ++i) {
        found += db->Get(2 * rng.UniformInt(0, key_space - 1)).has_value();
      }
      if (found == 0) std::abort();  // uniform overwrites: most keys exist
    });
    out.get = meter.Finish(per_thread * threads,
                           db->TotalStats().Delta(before).pages_read);
  }

  return out;
}

/// YCSB-style Zipfian rank generator over [0, n): rank 0 is the hottest
/// key. Gray et al.'s closed-form sampler — no rejection loop, one pow()
/// per draw.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double s, uint64_t seed)
      : n_(n), theta_(s), rng_(seed) {
    zetan_ = Zeta(n, s);
    const double zeta2 = Zeta(2, s);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const uint64_t rank = static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return std::min(rank, n_ - 1);
  }

  double NextDouble() { return rng_.NextDouble(); }

 private:
  static double Zeta(uint64_t n, double s) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), s);
    }
    return sum;
  }

  uint64_t n_;
  double theta_, zetan_, alpha_, eta_;
  Rng rng_;
};

uint64_t Percentile(const std::vector<uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0;
  const size_t idx = std::min(
      sorted_ns.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ns.size())));
  return sorted_ns[idx];
}

struct ZipfianResult {
  PhaseResult mixed;
  uint64_t get_p50_ns = 0, get_p99_ns = 0;
  double cache_hit_ratio = 0;
  uint64_t cache_hits = 0, cache_misses = 0, arbiter_shifts = 0;
};

/// The read-heavy serving leg: preload, flush to runs, then a 95/5
/// get/put mix with Zipfian key popularity through the snapshot read
/// path, block cache and memory arbiter.
ZipfianResult RunZipfianLeg(uint64_t ops) {
  constexpr int kShards = 4;
  constexpr double kZipfS = 0.99;
  constexpr double kGetFraction = 0.95;
  Options o = BenchOptions(kShards);
  o.block_cache_bytes = 2 * 1024 * 1024;
  o.memory_budget_bytes = 8 * 1024 * 1024;
  auto db = std::move(ShardedDB::Open(o)).value();

  const int threads = kShards;
  const uint64_t per_thread = ops / threads;
  const uint64_t key_space = ops;

  // Preload every key, then push the data into runs so gets exercise
  // page reads (and therefore the cache), not just the memtable.
  RunClients(threads, [&](int t) {
    Rng rng(42 + t);
    for (uint64_t i = 0; i < per_thread; ++i) {
      db->Put(2 * rng.UniformInt(0, key_space - 1), i);
    }
  });
  db->Flush();
  db->WaitForMaintenance();

  ZipfianResult out;
  const Statistics before = db->TotalStats();
  std::vector<std::vector<uint64_t>> lat(threads);
  Meter meter;
  RunClients(threads, [&](int t) {
    ZipfGenerator zipf(key_space, kZipfS, 4242 + t);
    std::vector<uint64_t>& lat_ns = lat[t];
    lat_ns.reserve(per_thread);
    uint64_t found = 0;
    for (uint64_t i = 0; i < per_thread; ++i) {
      const Key key = 2 * zipf.Next();
      if (zipf.NextDouble() < kGetFraction) {
        const auto t0 = std::chrono::steady_clock::now();
        found += db->Get(key).has_value();
        lat_ns.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
      } else {
        db->Put(key, i);
      }
    }
    if (found == 0) std::abort();  // the hot ranks certainly exist
  });
  const Statistics delta = db->TotalStats().Delta(before);
  out.mixed = meter.Finish(per_thread * threads, delta.pages_read);

  std::vector<uint64_t> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  out.get_p50_ns = Percentile(all, 0.50);
  out.get_p99_ns = Percentile(all, 0.99);
  out.cache_hits = delta.cache_hits.load();
  out.cache_misses = delta.cache_misses.load();
  const uint64_t probes = out.cache_hits + out.cache_misses;
  out.cache_hit_ratio =
      probes > 0 ? static_cast<double>(out.cache_hits) /
                       static_cast<double>(probes)
                 : 0.0;
  out.arbiter_shifts = db->TotalStats().arbiter_shifts.load();
  return out;
}

}  // namespace
}  // namespace endure::lsm

int main(int argc, char** argv) {
  using namespace endure::lsm;
  const uint64_t ops =
      static_cast<uint64_t>(endure::GetEnvInt("MICRO_SHARD_OPS", 200000));

  const int kShardCounts[] = {1, 2, 4, 8};
  double put_1x1 = 0, put_4x4 = 0;

  std::string json = endure::bench_util::BeginJson("micro_shard");
  {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "  \"config\": {\"ops\": %llu, \"entries_per_page\": 256, "
                  "\"buffer_entries_per_shard\": 4096, "
                  "\"hardware_threads\": %u},\n",
                  static_cast<unsigned long long>(ops),
                  std::thread::hardware_concurrency());
    json += buf;
  }
  json += "  \"configs\": {\n";
  for (size_t i = 0; i < 4; ++i) {
    const int shards = kShardCounts[i];
    std::fprintf(stderr, "running %d shards x %d threads...\n", shards,
                 shards);
    const ConfigResult r = RunConfig(shards, ops);
    if (shards == 1) put_1x1 = r.put.ops_per_sec;
    if (shards == 4) put_4x4 = r.put.ops_per_sec;
    char name[32];
    std::snprintf(name, sizeof(name), "%dx%d", shards, shards);
    json += std::string("    \"") + name + "\": {\n";
    endure::bench_util::AppendPhaseJson(&json, "put", r.put, false);
    endure::bench_util::AppendPhaseJson(&json, "get", r.get, true);
    json += i + 1 < 4 ? "    },\n" : "    }\n";
  }
  json += "  },\n";

  std::fprintf(stderr, "running zipfian read-heavy leg...\n");
  const ZipfianResult z = RunZipfianLeg(ops);
  {
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "  \"zipfian_read_heavy\": {\n"
        "    \"config\": {\"shards\": 4, \"threads\": 4, "
        "\"get_fraction\": 0.95, \"zipf_s\": 0.99, "
        "\"block_cache_bytes\": 2097152, "
        "\"memory_budget_bytes\": 8388608},\n"
        "    \"mixed\": {\"ops_per_sec\": %.0f, \"allocs_per_op\": %.4f, "
        "\"alloc_bytes_per_op\": %.1f, \"pages_per_op\": %.3f},\n"
        "    \"get_p50_ns\": %llu, \"get_p99_ns\": %llu,\n"
        "    \"cache_hit_ratio\": %.4f, \"cache_hits\": %llu, "
        "\"cache_misses\": %llu, \"arbiter_shifts\": %llu\n"
        "  },\n",
        z.mixed.ops_per_sec, z.mixed.allocs_per_op,
        z.mixed.alloc_bytes_per_op, z.mixed.pages_per_op,
        static_cast<unsigned long long>(z.get_p50_ns),
        static_cast<unsigned long long>(z.get_p99_ns),
        z.cache_hit_ratio, static_cast<unsigned long long>(z.cache_hits),
        static_cast<unsigned long long>(z.cache_misses),
        static_cast<unsigned long long>(z.arbiter_shifts));
    json += buf;
  }
  {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "  \"put_speedup_4x4_vs_1x1\": %.2f\n",
                  put_1x1 > 0 ? put_4x4 / put_1x1 : 0.0);
    json += buf;
  }
  json += "}\n";

  return endure::bench_util::EmitJson(json, argc, argv);
}
