// Ablation: fence-pointer run skipping. RocksDB (and our engine, by
// default) skips runs whose [min,max] range cannot contain a short scan -
// the behaviour the paper cites to explain why measured range I/O
// undershoots the model in Fig. 8's session 2. Disabling the skip makes
// the engine match the model's one-seek-per-run assumption.

#include "bench_common.h"

int main() {
  using namespace endure;
  using namespace endure::bench;

  FigureHeader("Ablation - fence-pointer run skipping",
               "short-scan I/O with and without the skip vs the model");

  const BenchScale scale = ReadScale();
  SystemConfig cfg;
  SystemConfig scaled = bridge::ScaledConfig(cfg, scale.entries);
  scaled.level_policy = LevelPolicy::kInteger;
  CostModel model(scaled);

  TablePrinter table({"tuning", "model Q", "sys I/O (skip on)",
                      "sys I/O (skip off)"});
  for (const Tuning t : {Tuning(Policy::kLeveling, 6.0, 5.0),
                         Tuning(Policy::kLeveling, 12.0, 5.0),
                         Tuning(Policy::kTiering, 4.0, 5.0)}) {
    double ios[2];
    for (bool skip : {true, false}) {
      lsm::Options opts = bridge::MakeOptions(cfg, t, scale.entries);
      opts.fence_pointer_skip = skip;
      auto db_or = lsm::DB::Open(opts);
      std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
      for (uint64_t i = 0; i < scale.entries; ++i) {
        pairs.emplace_back(2 * i, i);
      }
      (void)(*db_or)->BulkLoad(pairs);

      Rng rng(44);
      workload::KeyUniverse universe(scale.entries);
      const lsm::Statistics before = (*db_or)->stats();
      const int n = 1500;
      for (int i = 0; i < n; ++i) {
        const lsm::Key lo = universe.SampleExisting(&rng);
        (void)(*db_or)->Scan(lo, lo + 4);  // ~2 entries: minimal selectivity
      }
      const lsm::Statistics d = (*db_or)->stats().Delta(before);
      ios[skip ? 0 : 1] = static_cast<double>(d.range_pages_read) / n;
    }
    table.AddRow({t.ToString(), TablePrinter::Fmt(model.RangeQueryCost(t), 2),
                  TablePrinter::Fmt(ios[0], 2),
                  TablePrinter::Fmt(ios[1], 2)});
  }
  table.Print();
  std::printf(
      "\nexpected: skip-off tracks the model's Q; skip-on undershoots it\n"
      "(the paper's Fig. 8 session-2 discrepancy).\n");
  return 0;
}
