// Micro benchmarks: end-to-end tuning latency. Section 8.3 reports both
// nominal and robust tuning in < 10 ms on the authors' setup; these
// benchmarks verify our solver is in the same class.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace endure;

void BM_NominalTune(benchmark::State& state) {
  SystemConfig cfg;
  CostModel model(cfg);
  NominalTuner tuner(model);
  const Workload w =
      workload::GetExpectedWorkload(static_cast<int>(state.range(0)))
          .workload;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.Tune(w));
  }
}
BENCHMARK(BM_NominalTune)->Arg(0)->Arg(7)->Arg(11)
    ->Unit(benchmark::kMillisecond);

void BM_RobustTune(benchmark::State& state) {
  SystemConfig cfg;
  CostModel model(cfg);
  RobustTuner tuner(model);
  const Workload w = workload::GetExpectedWorkload(11).workload;
  const double rho = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.Tune(w, rho));
  }
}
BENCHMARK(BM_RobustTune)->Arg(25)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_RobustTuneJointDual(benchmark::State& state) {
  SystemConfig cfg;
  CostModel model(cfg);
  RobustTuner tuner(model);
  const Workload w = workload::GetExpectedWorkload(11).workload;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.TuneJointDual(w, 1.0,
                                                 Policy::kLeveling));
  }
}
BENCHMARK(BM_RobustTuneJointDual)->Unit(benchmark::kMillisecond);

void BM_RhoAdvisor(benchmark::State& state) {
  Rng rng(5);
  std::vector<Workload> history;
  for (int i = 0; i < state.range(0); ++i) {
    const std::vector<double> p = rng.SimplexByCounts(4, 1000);
    history.emplace_back(p[0], p[1], p[2], p[3]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(RecommendRho(history));
  }
}
BENCHMARK(BM_RhoAdvisor)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
