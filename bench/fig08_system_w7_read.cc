// Figure 8: read-only session sequence for expected workload w7 =
// (49, 1, 1, 49) with rho = 2.31 (matching the observed divergence).
// Paper outcome: the robust (leveling, small T) tuning dominates the
// nominal (tiering) one across read sessions; the range session shows the
// fence-pointer discrepancy discussed in Section 8.3.

#include "bench_common.h"

int main() {
  endure::bench::RunSystemFigure(
      "Figure 8 - system, w7 read-only (rho = 2.31)",
      endure::workload::GetExpectedWorkload(7).workload,
      /*rho=*/2.31, /*read_only=*/true, /*seed=*/8);
  return 0;
}
