// Figure 12: mixed sequence for the uniform expected workload w0 with a
// tiny rho (the observed divergence is ~0.01). Paper outcome: nominal and
// robust tunings nearly coincide, and so does their performance - Endure
// costs nothing when expectations are right.

#include "bench_common.h"

int main() {
  endure::bench::RunSystemFigure(
      "Figure 12 - system, uniform w0 (rho = 0.01)",
      endure::workload::GetExpectedWorkload(0).workload,
      /*rho=*/0.01, /*read_only=*/false, /*seed=*/12);
  return 0;
}
