// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Shared setup/report helpers for the storage micro-benchmarks
// (micro_io, micro_shard): allocation accounting, phase metering and the
// JSON emission CI's bench smoke parses — one code path for every
// micro-bench. Each benchmark binary must expand
// ENDURE_BENCH_DEFINE_ALLOC_COUNTING() exactly once at namespace scope to
// define the counters and the global operator new/delete replacements
// (they are per-binary by nature, so they cannot live in a library).

#ifndef ENDURE_BENCH_BENCH_UTIL_H_
#define ENDURE_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

namespace endure::bench_util {

/// Version of the BENCH_*.json layout the micro-benchmarks emit (see
/// docs/benchmarks.md for the schema). Every benchmark stamps it into
/// its JSON via BeginJson so downstream tooling can detect drift; bump
/// it when a shared key changes name or meaning or a benchmark joins
/// the family (v3: micro_wal and the durability counters; v4: micro_lsm
/// — put tail percentiles and the scheduler/stall counters; v5:
/// micro_shard's zipfian_read_heavy leg — block-cache hit ratio and get
/// tail percentiles; v6: micro_server — network round-trip throughput
/// and latency percentiles, serial vs pipelined, per connection count;
/// v7: micro_server's quota_sweep legs — per-tenant acked throughput
/// under admission control plus the admission counters).
inline constexpr int kBenchJsonSchemaVersion = 7;

/// Allocation counters, defined by ENDURE_BENCH_DEFINE_ALLOC_COUNTING()
/// in the benchmark binary. Atomic: benchmarks may allocate from several
/// threads.
extern std::atomic<uint64_t> g_allocs;
extern std::atomic<uint64_t> g_alloc_bytes;

/// Throughput and per-op allocation/IO footprint of one measured phase.
struct PhaseResult {
  double ops_per_sec = 0;
  double allocs_per_op = 0;
  double alloc_bytes_per_op = 0;
  double pages_per_op = 0;
};

/// Snapshots time and allocation counters at construction; Finish()
/// produces the phase result.
class Meter {
 public:
  Meter() {
    allocs_ = g_allocs.load(std::memory_order_relaxed);
    bytes_ = g_alloc_bytes.load(std::memory_order_relaxed);
    start_ = std::chrono::steady_clock::now();
  }

  PhaseResult Finish(uint64_t ops, uint64_t pages) const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
            .count();
    PhaseResult r;
    const double n = static_cast<double>(ops);
    r.ops_per_sec = n / secs;
    r.allocs_per_op =
        static_cast<double>(g_allocs.load(std::memory_order_relaxed) -
                            allocs_) / n;
    r.alloc_bytes_per_op =
        static_cast<double>(g_alloc_bytes.load(std::memory_order_relaxed) -
                            bytes_) / n;
    r.pages_per_op = static_cast<double>(pages) / n;
    return r;
  }

 private:
  uint64_t allocs_ = 0;
  uint64_t bytes_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// Opens a benchmark's JSON object: the bench name plus the schema
/// version, so every emitted file is self-describing.
inline std::string BeginJson(const char* bench) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"bench\": \"%s\",\n  \"schema_version\": %d,\n",
                bench, kBenchJsonSchemaVersion);
  return buf;
}

/// Appends one phase object ("name": {...}) to `json`, with the shared
/// key set every micro-bench reports.
inline void AppendPhaseJson(std::string* json, const char* name,
                            const PhaseResult& r, bool last) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"ops_per_sec\": %.0f, "
                "\"allocs_per_op\": %.4f, \"alloc_bytes_per_op\": %.1f, "
                "\"pages_per_op\": %.3f}%s\n",
                name, r.ops_per_sec, r.allocs_per_op, r.alloc_bytes_per_op,
                r.pages_per_op, last ? "" : ",");
  *json += buf;
}

/// Prints `json` to stdout and, when argv[1] names a file, writes it
/// there too. Returns the process exit code.
inline int EmitJson(const std::string& json, int argc, char** argv) {
  std::fputs(json.c_str(), stdout);
  if (argc > 1) {
    if (FILE* f = std::fopen(argv[1], "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
  }
  return 0;
}

}  // namespace endure::bench_util

/// Defines the allocation counters and replaces global operator
/// new/delete with counting versions. Expand exactly once per benchmark
/// binary, at global namespace scope.
#define ENDURE_BENCH_DEFINE_ALLOC_COUNTING()                              \
  namespace endure::bench_util {                                          \
  std::atomic<uint64_t> g_allocs{0};                                      \
  std::atomic<uint64_t> g_alloc_bytes{0};                                 \
  }                                                                       \
  void* operator new(std::size_t size) {                                  \
    ::endure::bench_util::g_allocs.fetch_add(1, std::memory_order_relaxed); \
    ::endure::bench_util::g_alloc_bytes.fetch_add(                        \
        size, std::memory_order_relaxed);                                 \
    if (void* p = std::malloc(size)) return p;                            \
    throw std::bad_alloc();                                               \
  }                                                                       \
  void* operator new[](std::size_t size) {                                \
    ::endure::bench_util::g_allocs.fetch_add(1, std::memory_order_relaxed); \
    ::endure::bench_util::g_alloc_bytes.fetch_add(                        \
        size, std::memory_order_relaxed);                                 \
    if (void* p = std::malloc(size)) return p;                            \
    throw std::bad_alloc();                                               \
  }                                                                       \
  void operator delete(void* p) noexcept { std::free(p); }                \
  void operator delete[](void* p) noexcept { std::free(p); }              \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }   \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // ENDURE_BENCH_BENCH_UTIL_H_
