// Figure 10: mixed sequence for the write-heavy expected workload
// (10, 10, 10, 70) with rho = 0.5 ~ observed divergence. Paper outcome:
// the robust tuning (larger T, fewer filter bits) absorbs the read-heavy
// surprise sessions; compaction-driven fluctuation shows in the write
// session.

#include "bench_common.h"

int main() {
  endure::bench::RunSystemFigure(
      "Figure 10 - system, write-heavy expected (rho = 0.50)",
      endure::Workload(0.10, 0.10, 0.10, 0.70),
      /*rho=*/0.5, /*read_only=*/false, /*seed=*/10);
  return 0;
}
