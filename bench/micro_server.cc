// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// micro_server: closed- and open-loop load generator for the network
// front-end. An in-process endure_server on loopback is driven by 1, 4,
// 16 and 64 client connections (one thread per connection), each leg
// twice: one-at-a-time blocking round trips (closed loop — latency IS
// the bottleneck) and pipelined batches of MICRO_SERVER_DEPTH requests
// (the burst write lets the server coalesce PUT runs into WAL group
// commits). Reports throughput and p50/p99/p999 latency per leg —
// per-op round trips for the serial legs, per-batch round trips for the
// pipelined ones. Emits BENCH_micro_server.json (schema in
// docs/benchmarks.md; numbers from CI's 1-core container, so
// multi-connection legs time-share one core and measure protocol +
// scheduling overhead, not parallel speedup).
//
// Env knobs: MICRO_SERVER_OPS (ops per connection per leg, default
// 4000), MICRO_SERVER_DEPTH (pipeline depth, default 16),
// MICRO_SERVER_MAX_CONNS (cap the connection ladder, default 64).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "lsm/options.h"
#include "lsm/sharded_db.h"
#include "net/client.h"
#include "net/server.h"

ENDURE_BENCH_DEFINE_ALLOC_COUNTING()

namespace {

using namespace endure;
using Clock = std::chrono::steady_clock;

uint64_t EnvOr(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::strtoull(v, nullptr, 10) : def;
}

double PercentileUs(std::vector<uint64_t>* ns, double q) {
  if (ns->empty()) return 0.0;
  std::sort(ns->begin(), ns->end());
  const size_t idx = std::min(
      ns->size() - 1, static_cast<size_t>(q * static_cast<double>(ns->size())));
  return static_cast<double>((*ns)[idx]) / 1000.0;
}

struct LegResult {
  int connections = 0;
  bool pipelined = false;
  uint64_t ops = 0;
  double ops_per_sec = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0;
};

/// One leg: `conns` threads, each with its own Client, each issuing
/// `ops_per_conn` operations (alternating PUT/GET over a per-thread key
/// stripe). Pipelined mode groups them into batches of `depth` and
/// records per-batch round-trip latency; serial mode records per-op.
LegResult RunLeg(uint16_t port, int conns, uint64_t ops_per_conn,
                 uint64_t depth, bool pipelined) {
  std::vector<std::vector<uint64_t>> lat(conns);  // ns per thread
  std::atomic<uint64_t> total_ops{0};
  std::vector<std::thread> threads;
  threads.reserve(conns);
  const auto begin = Clock::now();
  for (int t = 0; t < conns; ++t) {
    threads.emplace_back([&, t]() {
      net::ClientOptions copts;
      copts.port = port;
      auto client_or = net::Client::Connect(copts);
      if (!client_or.ok()) return;
      std::unique_ptr<net::Client> client = std::move(client_or).value();
      const lsm::Key base = static_cast<lsm::Key>(t) << 32;
      uint64_t x = 88172645463325252ull + static_cast<uint64_t>(t);
      auto next = [&x]() {  // xorshift64
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
      };
      uint64_t done = 0;
      if (pipelined) {
        while (done < ops_per_conn) {
          const uint64_t n = std::min(depth, ops_per_conn - done);
          auto pipe = client->NewPipeline();
          // PUT run first, then the GETs: the consecutive PUTs of each
          // burst are what the server folds into one WAL group commit.
          for (uint64_t i = 0; i < n; ++i) {
            const lsm::Key key = base + (next() & 0xffff);
            if (i < (n + 1) / 2) {
              pipe.Put(key, done + i);
            } else {
              pipe.Get(key);
            }
          }
          const auto t0 = Clock::now();
          auto results = pipe.Execute();
          const auto t1 = Clock::now();
          if (!results.ok()) return;
          lat[t].push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
          done += n;
        }
      } else {
        for (; done < ops_per_conn; ++done) {
          const lsm::Key key = base + (next() & 0xffff);
          const auto t0 = Clock::now();
          if (done % 2 == 0) {
            if (!client->Put(key, done).ok()) return;
          } else {
            (void)client->Get(key);
          }
          const auto t1 = Clock::now();
          lat[t].push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
        }
      }
      total_ops.fetch_add(done, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() -
                                                                begin)
          .count();

  std::vector<uint64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  LegResult r;
  r.connections = conns;
  r.pipelined = pipelined;
  r.ops = total_ops.load();
  r.ops_per_sec = static_cast<double>(r.ops) / secs;
  r.p50_us = PercentileUs(&all, 0.50);
  r.p99_us = PercentileUs(&all, 0.99);
  r.p999_us = PercentileUs(&all, 0.999);
  return r;
}

struct QuotaLegResult {
  double quota_ops = 0;  ///< aggressor quota; victim runs at half
  double victim_ops_per_sec = 0;
  double aggressor_ops_per_sec = 0;  ///< acked only
  uint64_t admission_rejects = 0;
  uint64_t throttled_ms = 0;
  uint64_t queue_depth_peak = 0;
};

/// One noisy-neighbor admission leg: a victim tenant at quota/2 paced by
/// throttle retries next to two aggressor connections flooding at the
/// full quota with retries disabled. quota 0 = unlimited (the baseline
/// the throttled legs are read against). Reports acked throughput per
/// tenant plus the server's admission counters.
QuotaLegResult RunQuotaLeg(lsm::ShardedDB* db, double quota,
                           uint64_t window_ms) {
  net::ServerOptions sopts;
  sopts.tenant_quotas["victim"] = net::TenantQuota{quota / 2, 0};
  sopts.tenant_quotas["aggressor"] = net::TenantQuota{quota, 0};
  sopts.max_pending_per_tenant = 32;
  auto server_or = net::Server::Start(db, sopts);
  if (!server_or.ok()) return {};
  std::unique_ptr<net::Server> server = std::move(server_or).value();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> aggressor_acked{0};
  std::vector<std::thread> aggressors;
  for (int t = 0; t < 2; ++t) {
    aggressors.emplace_back([&, t]() {
      net::ClientOptions copts;
      copts.port = server->port();
      copts.tenant = "aggressor";
      copts.throttle_max_retries = 0;  // flood: surface every reject
      auto client_or = net::Client::Connect(copts);
      if (!client_or.ok()) return;
      std::unique_ptr<net::Client> client = std::move(client_or).value();
      const lsm::Key base = static_cast<lsm::Key>(100 + t) << 32;
      for (uint64_t iter = 0; !stop.load(std::memory_order_relaxed); ++iter) {
        auto pipe = client->NewPipeline();
        for (uint64_t i = 0; i < 64; ++i) {
          pipe.Put(base + ((iter * 64 + i) & 0xffff), iter);
        }
        auto results = pipe.Execute();
        if (!results.ok()) return;
        uint64_t ok = 0;
        for (const auto& r : *results) ok += r.status.ok() ? 1 : 0;
        aggressor_acked.fetch_add(ok, std::memory_order_relaxed);
      }
    });
  }

  uint64_t victim_acked = 0;
  const auto begin = Clock::now();
  {
    net::ClientOptions copts;
    copts.port = server->port();
    copts.tenant = "victim";
    copts.throttle_max_retries = 100;  // paced, not shed
    copts.throttle_backoff_cap_ms = 100;
    auto client_or = net::Client::Connect(copts);
    if (client_or.ok()) {
      std::unique_ptr<net::Client> client = std::move(client_or).value();
      const lsm::Key base = static_cast<lsm::Key>(99) << 32;
      for (uint64_t iter = 0;; ++iter) {
        const auto now = Clock::now();
        if (std::chrono::duration_cast<std::chrono::milliseconds>(now - begin)
                .count() >= static_cast<int64_t>(window_ms)) {
          break;
        }
        auto pipe = client->NewPipeline();
        for (uint64_t i = 0; i < 16; ++i) {
          pipe.Put(base + ((iter * 16 + i) & 0xffff), iter);
        }
        auto results = pipe.Execute();
        if (!results.ok()) break;
        for (const auto& r : *results) victim_acked += r.status.ok() ? 1 : 0;
      }
    }
  }
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() -
                                                                begin)
          .count();
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : aggressors) th.join();

  const net::ServerCounters c = server->counters();
  server->Shutdown();
  QuotaLegResult r;
  r.quota_ops = quota;
  r.victim_ops_per_sec = static_cast<double>(victim_acked) / secs;
  r.aggressor_ops_per_sec =
      static_cast<double>(aggressor_acked.load()) / secs;
  r.admission_rejects = c.admission_rejects;
  r.throttled_ms = c.throttled_ms;
  r.queue_depth_peak = c.queue_depth_peak;
  return r;
}

void AppendQuotaLegJson(std::string* json, const QuotaLegResult& r,
                        bool last) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "      \"q%.0f\": {\"quota_ops_per_sec\": %.0f, "
      "\"victim_ops_per_sec\": %.0f, \"aggressor_ops_per_sec\": %.0f, "
      "\"admission_rejects\": %llu, \"throttled_ms\": %llu, "
      "\"queue_depth_peak\": %llu}%s\n",
      r.quota_ops, r.quota_ops, r.victim_ops_per_sec, r.aggressor_ops_per_sec,
      static_cast<unsigned long long>(r.admission_rejects),
      static_cast<unsigned long long>(r.throttled_ms),
      static_cast<unsigned long long>(r.queue_depth_peak), last ? "" : ",");
  *json += buf;
}

void AppendLegJson(std::string* json, const LegResult& r, bool last) {
  char buf[320];
  char name[32];
  std::snprintf(name, sizeof(name), "c%d_%s", r.connections,
                r.pipelined ? "pipelined" : "serial");
  std::snprintf(
      buf, sizeof(buf),
      "      \"%s\": {\"connections\": %d, \"mode\": \"%s\", "
      "\"ops\": %llu, \"ops_per_sec\": %.0f, \"p50_us\": %.1f, "
      "\"p99_us\": %.1f, \"p999_us\": %.1f}%s\n",
      name, r.connections, r.pipelined ? "pipelined" : "serial",
      static_cast<unsigned long long>(r.ops), r.ops_per_sec, r.p50_us,
      r.p99_us, r.p999_us, last ? "" : ",");
  *json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t ops_per_conn = EnvOr("MICRO_SERVER_OPS", 4000);
  const uint64_t depth = std::max<uint64_t>(1, EnvOr("MICRO_SERVER_DEPTH", 16));
  const uint64_t max_conns = EnvOr("MICRO_SERVER_MAX_CONNS", 64);

  lsm::Options opts;
  opts.num_shards = 4;
  opts.buffer_entries = 4096;
  opts.size_ratio = 6;
  opts.background_maintenance = true;
  auto db_or = lsm::ShardedDB::Open(opts);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<lsm::ShardedDB> db = std::move(db_or).value();
  auto server_or = net::Server::Start(db.get(), net::ServerOptions{});
  if (!server_or.ok()) {
    std::fprintf(stderr, "server: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::Server> server = std::move(server_or).value();
  const uint16_t port = server->port();

  std::vector<LegResult> legs;
  for (const int conns : {1, 4, 16, 64}) {
    if (static_cast<uint64_t>(conns) > max_conns) break;
    // Keep total work per leg roughly level: more connections, fewer
    // ops each (floor of 256 so tails stay meaningful).
    const uint64_t per_conn =
        std::max<uint64_t>(256, ops_per_conn / static_cast<uint64_t>(conns));
    legs.push_back(RunLeg(port, conns, per_conn, depth, /*pipelined=*/false));
    std::fprintf(stderr, "c%d serial: %.0f ops/s p99 %.1fus\n", conns,
                 legs.back().ops_per_sec, legs.back().p99_us);
    legs.push_back(RunLeg(port, conns, per_conn, depth, /*pipelined=*/true));
    std::fprintf(stderr, "c%d pipelined: %.0f ops/s p99(batch) %.1fus\n",
                 conns, legs.back().ops_per_sec, legs.back().p99_us);
  }

  const net::ServerCounters c = server->counters();
  server->Shutdown();

  // Quota sweep: unlimited baseline, then two admission-constrained
  // levels, each an aggressor-vs-victim pair on a fresh server.
  const uint64_t window_ms = EnvOr("MICRO_SERVER_QUOTA_WINDOW_MS", 500);
  std::vector<QuotaLegResult> quota_legs;
  for (const double quota : {0.0, 20000.0, 2000.0}) {
    quota_legs.push_back(RunQuotaLeg(db.get(), quota, window_ms));
    std::fprintf(stderr,
                 "quota %.0f: victim %.0f ops/s, aggressor %.0f ops/s, "
                 "%llu rejects\n",
                 quota, quota_legs.back().victim_ops_per_sec,
                 quota_legs.back().aggressor_ops_per_sec,
                 static_cast<unsigned long long>(
                     quota_legs.back().admission_rejects));
  }

  std::string json = endure::bench_util::BeginJson("micro_server");
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"depth\": %llu,\n  \"server\": "
                "{\"requests_served\": %llu, \"puts_coalesced\": %llu, "
                "\"coalesced_batches\": %llu},\n  \"legs\": {\n",
                static_cast<unsigned long long>(depth),
                static_cast<unsigned long long>(c.requests_served),
                static_cast<unsigned long long>(c.puts_coalesced),
                static_cast<unsigned long long>(c.coalesced_batches));
  json += buf;
  for (size_t i = 0; i < legs.size(); ++i) {
    AppendLegJson(&json, legs[i], i + 1 == legs.size());
  }
  json += "  },\n  \"quota_sweep\": {\n";
  for (size_t i = 0; i < quota_legs.size(); ++i) {
    AppendQuotaLegJson(&json, quota_legs[i], i + 1 == quota_legs.size());
  }
  json += "  }\n}\n";
  return endure::bench_util::EmitJson(json, argc, argv);
}
