// Figure 3: KL-divergence histograms of the benchmark set B w.r.t. the
// uniform expected workload w0 and the skewed w1. The paper's point: the
// same B sits close to w0 but far from w1, so a tuning's uncertainty
// exposure depends on its expected workload.

#include "bench_common.h"

int main() {
  using namespace endure;
  using namespace endure::bench;

  FigureHeader("Figure 3 - KL-divergence histograms",
               "I_KL(w_hat, w) over B for w0 = uniform and w1 = (97,1,1,1)");

  const BenchScale scale = ReadScale();
  workload::BenchmarkSet bench = MakeBenchmarkSet(scale.benchmark_size);

  for (int idx : {0, 1}) {
    const Workload w = workload::GetExpectedWorkload(idx).workload;
    const std::vector<double> kl = bench.KlDivergencesTo(w);
    Histogram hist(0.0, 4.0, 24);
    hist.AddAll(kl);
    double mean = 0.0;
    for (double v : kl) mean += v;
    mean /= static_cast<double>(kl.size());
    std::printf("w%d = %s   mean I_KL = %.3f\n", idx, w.ToString().c_str(),
                mean);
    std::printf("%s\n", hist.ToAscii(48).c_str());
  }
  std::printf(
      "paper: w0's divergences concentrate near 0; w1's spread over "
      "1.5-3.5.\n");
  return 0;
}
