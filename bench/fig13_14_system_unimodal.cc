// Figures 13-14: mixed sequences for the unimodal expected workloads
// w1..w4, each tuned with rho equal to the paper's reported observed
// divergence (1.49, 1.52, 1.77, 1.74). Paper outcomes: robust avoids w3's
// pathological nominal T=100 blow-up in the write session and w1/w2's
// overfit filter allocations.

#include "bench_common.h"

int main() {
  using endure::workload::GetExpectedWorkload;
  const double rhos[4] = {1.49, 1.52, 1.77, 1.74};
  for (int idx = 1; idx <= 4; ++idx) {
    endure::bench::RunSystemFigure(
        "Figures 13-14 - system, unimodal w" + std::to_string(idx) +
            " (rho = " + endure::TablePrinter::Fmt(rhos[idx - 1], 2) + ")",
        GetExpectedWorkload(idx).workload, rhos[idx - 1],
        /*read_only=*/false, /*seed=*/static_cast<uint64_t>(130 + idx));
  }
  return 0;
}
