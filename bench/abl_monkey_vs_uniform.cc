// Ablation: Monkey's per-level Bloom allocation (Eq. 11) vs the classical
// uniform bits-per-entry baseline, measured on the engine. Monkey should
// serve empty point lookups with fewer I/Os at equal total filter memory -
// the assumption baked into the paper's cost model.

#include "bench_common.h"

int main() {
  using namespace endure;
  using namespace endure::bench;

  FigureHeader("Ablation - Monkey vs uniform filter allocation",
               "empty-point-lookup I/O at equal filter memory");

  const BenchScale scale = ReadScale();
  SystemConfig cfg;

  TablePrinter table({"h (bits/entry)", "T", "monkey I/O per z0",
                      "uniform I/O per z0", "monkey advantage"});
  for (double h : {2.0, 5.0, 8.0}) {
    for (int T : {4, 10}) {
      double ios[2];
      for (lsm::FilterAllocation alloc : {lsm::FilterAllocation::kMonkey,
                                          lsm::FilterAllocation::kUniform}) {
        Tuning t(Policy::kLeveling, T, h);
        lsm::Options opts = bridge::MakeOptions(cfg, t, scale.entries);
        opts.filter_allocation = alloc;
        auto db_or = lsm::DB::Open(opts);
        std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
        pairs.reserve(scale.entries);
        for (uint64_t i = 0; i < scale.entries; ++i) {
          pairs.emplace_back(2 * i, i);
        }
        (void)(*db_or)->BulkLoad(pairs);

        Rng rng(33);
        workload::KeyUniverse universe(scale.entries);
        const lsm::Statistics before = (*db_or)->stats();
        const int n = 4000;
        for (int i = 0; i < n; ++i) {
          (*db_or)->Get(universe.SampleMissing(&rng));
        }
        const lsm::Statistics d = (*db_or)->stats().Delta(before);
        ios[static_cast<int>(alloc)] =
            static_cast<double>(d.point_pages_read) / n;
      }
      table.AddRow({TablePrinter::Fmt(h, 1), std::to_string(T),
                    TablePrinter::Fmt(ios[0], 3),
                    TablePrinter::Fmt(ios[1], 3),
                    TablePrinter::Fmt(ios[1] - ios[0], 3)});
    }
  }
  table.Print();
  std::printf("\nexpected: the monkey column never exceeds the uniform "
              "column materially,\nand wins at small h.\n");
  return 0;
}
