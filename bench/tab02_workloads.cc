// Table 2: the 15 expected workloads of the uncertainty benchmark, plus
// the nominal tuning each induces (the tunings annotated throughout the
// paper's figures).

#include "bench_common.h"

int main() {
  using namespace endure;
  using namespace endure::bench;

  FigureHeader("Table 2 - expected workloads",
               "The uncertainty benchmark's expected workloads and their "
               "nominal tunings");

  SystemConfig cfg;
  CostModel model(cfg);
  NominalTuner tuner(model);

  TablePrinter table({"index", "(z0, z1, q, w)", "type", "nominal policy",
                      "T", "h", "cost (I/O per op)"});
  for (const auto& ew : workload::AllExpectedWorkloads()) {
    const TuningResult r = tuner.Tune(ew.workload);
    table.AddRow({std::to_string(ew.index), ew.workload.ToString(),
                  workload::CategoryName(ew.category),
                  PolicyName(r.tuning.policy),
                  TablePrinter::Fmt(r.tuning.size_ratio, 1),
                  TablePrinter::Fmt(r.tuning.filter_bits_per_entry, 1),
                  TablePrinter::Fmt(r.objective, 3)});
  }
  table.Print();
  return 0;
}
