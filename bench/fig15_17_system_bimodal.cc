// Figures 15 and 17: mixed sequences for the bimodal expected workloads
// w5, w6, w8, w9, w10, tuned at the paper's observed divergences
// (0.81, 1.01, 1.04, 1.04, 1.22). Paper outcomes: large robust gains for
// range-skewed expectations (w6, w8); post-write I/O jumps as the tree
// reshapes (w9, w10).

#include "bench_common.h"

int main() {
  using endure::workload::GetExpectedWorkload;
  const int indices[5] = {5, 6, 8, 9, 10};
  const double rhos[5] = {0.81, 1.01, 1.04, 1.04, 1.22};
  for (int i = 0; i < 5; ++i) {
    endure::bench::RunSystemFigure(
        "Figures 15/17 - system, bimodal w" + std::to_string(indices[i]) +
            " (rho = " + endure::TablePrinter::Fmt(rhos[i], 2) + ")",
        GetExpectedWorkload(indices[i]).workload, rhos[i],
        /*read_only=*/false, /*seed=*/static_cast<uint64_t>(150 + i));
  }
  return 0;
}
