// Section 8.4 ("Robustness is All You Need"): the paper compares 700+
// robust tunings against their nominal counterparts over B (~8.6M
// comparisons) and reports robust winning > 80% of them. Regenerated at a
// configurable scale: all 15 expected workloads x a rho grid x |B|.

#include "bench_common.h"

int main() {
  using namespace endure;
  using namespace endure::bench;

  FigureHeader("Section 8.4 - robust vs nominal, bulk comparisons",
               "fraction of (tuning, workload) comparisons won by robust");

  SystemConfig cfg;
  CostModel model(cfg);
  NominalTuner nominal(model);
  RobustTuner robust(model);

  const BenchScale scale = ReadScale();
  workload::BenchmarkSet bench = MakeBenchmarkSet(scale.benchmark_size);
  const std::vector<Workload> samples = bench.Workloads();

  const std::vector<double> rhos = {0.25, 0.5, 0.75, 1.0, 1.25, 1.5,
                                    1.75, 2.0, 2.5, 3.0, 3.5, 4.0};

  uint64_t comparisons = 0, robust_wins = 0;
  double delta_sum = 0.0;
  uint64_t tunings = 0;
  WallTimer timer;
  TablePrinter per_rho({"rho", "win rate", "mean delta"});
  for (double rho : rhos) {
    uint64_t rho_wins = 0;
    double rho_delta = 0.0;
    for (int i = 0; i < 15; ++i) {
      const Workload w = workload::GetExpectedWorkload(i).workload;
      const Tuning phi_n = nominal.Tune(w).tuning;
      const Tuning phi_r = robust.Tune(w, rho).tuning;
      ++tunings;
      for (const Workload& sample : samples) {
        const double d = DeltaThroughput(model, sample, phi_n, phi_r);
        ++comparisons;
        robust_wins += (d > 0.0);
        rho_wins += (d > 0.0);
        delta_sum += d;
        rho_delta += d;
      }
    }
    per_rho.AddRow(
        {TablePrinter::Fmt(rho, 2),
         TablePrinter::Fmt(static_cast<double>(rho_wins) /
                               (15.0 * samples.size()), 3),
         TablePrinter::Fmt(rho_delta / (15.0 * samples.size()), 3)});
  }
  per_rho.Print();
  std::printf(
      "\n%llu robust tunings, %llu comparisons in %.1f s\n"
      "robust wins %.1f%% of all comparisons (paper: > 80%%), mean delta "
      "%+.3f\n",
      static_cast<unsigned long long>(tunings),
      static_cast<unsigned long long>(comparisons), timer.Seconds(),
      100.0 * static_cast<double>(robust_wins) /
          static_cast<double>(comparisons),
      delta_sum / static_cast<double>(comparisons));
  return 0;
}
