// micro_lsm_stall: foreground put latency under compaction pressure — the
// tail-latency view of the compaction scheduler. Two legs over the same
// write-heavy workload (memory backend, small buffer so flushes and
// merges churn constantly):
//
//   inline      background_maintenance off — every flush and the cascade
//               it triggers run on the writing thread, under its lock.
//   background  the scheduler path — prepare/install under the shard
//               lock, merge I/O off it, with write backpressure instead
//               of inline cascades.
//
// Reported per leg: put throughput, p50/p99/p999 single-put latency (ns)
// and the scheduler/stall counters (write_stalls, compaction_stall_ms,
// rate_limited_ms, compactions_partitioned, sched_jobs). On a 1-core
// container the two legs time-slice the same CPU, so throughput is
// similar and the difference shows in the tail percentiles; with spare
// cores the background leg pulls ahead on both.
//
// Scale knobs (environment):
//   MICRO_LSM_OPS  puts per leg (default 200k)
//
// Usage: micro_lsm_stall [output.json]  (always prints to stdout too)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "lsm/sharded_db.h"
#include "util/random.h"

ENDURE_BENCH_DEFINE_ALLOC_COUNTING()

namespace endure::lsm {
namespace {

using bench_util::Meter;
using bench_util::PhaseResult;

Options BenchOptions(bool background) {
  Options o;
  o.size_ratio = 6;
  o.buffer_entries = 4096;
  o.entries_per_page = 256;
  o.filter_bits_per_entry = 8.0;
  o.num_shards = 1;  // one shard: every put contends with its maintenance
  o.background_maintenance = background;
  return o;
}

struct LegResult {
  PhaseResult put;
  uint64_t p50_ns = 0, p99_ns = 0, p999_ns = 0;
  Statistics stats;
};

uint64_t Percentile(std::vector<uint64_t>* sorted_ns, double q) {
  if (sorted_ns->empty()) return 0;
  const size_t idx = std::min(
      sorted_ns->size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ns->size())));
  return (*sorted_ns)[idx];
}

LegResult RunLeg(bool background, uint64_t ops) {
  LegResult out;
  auto db = std::move(ShardedDB::Open(BenchOptions(background))).value();
  Rng rng(47);
  std::vector<uint64_t> lat_ns(ops);
  Meter meter;
  for (uint64_t i = 0; i < ops; ++i) {
    const Key k = 2 * static_cast<Key>(rng.UniformInt(0, 1 << 20));
    const auto t0 = std::chrono::steady_clock::now();
    if (!db->Put(k, i).ok()) std::abort();
    lat_ns[i] = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  db->WaitForMaintenance();
  out.put = meter.Finish(ops, db->TotalStats().pages_written.load());
  std::sort(lat_ns.begin(), lat_ns.end());
  out.p50_ns = Percentile(&lat_ns, 0.50);
  out.p99_ns = Percentile(&lat_ns, 0.99);
  out.p999_ns = Percentile(&lat_ns, 0.999);
  out.stats = db->TotalStats();
  return out;
}

void AppendLegJson(std::string* json, const char* name, const LegResult& r,
                   bool last) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    \"%s\": {\n"
      "      \"put\": {\"ops_per_sec\": %.0f, \"allocs_per_op\": %.4f, "
      "\"alloc_bytes_per_op\": %.1f, \"pages_per_op\": %.3f},\n"
      "      \"put_p50_ns\": %llu, \"put_p99_ns\": %llu, "
      "\"put_p999_ns\": %llu,\n"
      "      \"write_stalls\": %llu, \"compaction_stall_ms\": %llu, "
      "\"rate_limited_ms\": %llu, \"compactions_partitioned\": %llu, "
      "\"sched_jobs\": %llu\n"
      "    }%s\n",
      name, r.put.ops_per_sec, r.put.allocs_per_op,
      r.put.alloc_bytes_per_op, r.put.pages_per_op,
      static_cast<unsigned long long>(r.p50_ns),
      static_cast<unsigned long long>(r.p99_ns),
      static_cast<unsigned long long>(r.p999_ns),
      static_cast<unsigned long long>(r.stats.write_stalls.load()),
      static_cast<unsigned long long>(r.stats.compaction_stall_ms.load()),
      static_cast<unsigned long long>(r.stats.rate_limited_ms.load()),
      static_cast<unsigned long long>(
          r.stats.compactions_partitioned.load()),
      static_cast<unsigned long long>(r.stats.sched_jobs.load()),
      last ? "" : ",");
  *json += buf;
}

int Main(int argc, char** argv) {
  uint64_t ops = 200000;
  if (const char* env = std::getenv("MICRO_LSM_OPS")) {
    ops = std::strtoull(env, nullptr, 10);
  }

  const LegResult inline_leg = RunLeg(/*background=*/false, ops);
  const LegResult bg_leg = RunLeg(/*background=*/true, ops);

  std::string json = bench_util::BeginJson("micro_lsm");
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"config\": {\"ops\": %llu, \"entries_per_page\": 256, "
                "\"buffer_entries\": 4096, \"hardware_threads\": %u},\n"
                "  \"legs\": {\n",
                static_cast<unsigned long long>(ops),
                std::thread::hardware_concurrency());
  json += buf;
  AppendLegJson(&json, "inline", inline_leg, /*last=*/false);
  AppendLegJson(&json, "background", bg_leg, /*last=*/true);
  json += "  },\n";
  const double tail_ratio =
      bg_leg.p999_ns > 0 ? static_cast<double>(inline_leg.p999_ns) /
                               static_cast<double>(bg_leg.p999_ns)
                         : 0.0;
  std::snprintf(buf, sizeof(buf),
                "  \"p999_inline_over_background\": %.2f\n}\n", tail_ratio);
  json += buf;
  return bench_util::EmitJson(json, argc, argv);
}

}  // namespace
}  // namespace endure::lsm

int main(int argc, char** argv) { return endure::lsm::Main(argc, argv); }
