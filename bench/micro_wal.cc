// micro_wal: commit latency/throughput of the durability subsystem
// (docs/durability.md) across WAL sync modes, plus recovery speed.
//
// Phases (each on a fresh durable DB over FilePageStore):
//   put_none        single Puts, WalSyncMode::kNone (page cache only)
//   put_background  single Puts, kBackground (bounded loss window)
//   put_per_batch   single Puts, kPerBatch — one fsync per op, the
//                   worst case and the zero-loss guarantee
//   group_commit    PutBatch of MICRO_WAL_BATCH entries under kPerBatch —
//                   one write + one fsync per batch, showing how group
//                   commit amortizes the per_batch penalty
//   recover         kill the background-mode instance (WAL abandoned, no
//                   shutdown checkpoint) and reopen it: segment adoption,
//                   run rebuild and WAL replay; ops = entries recovered
//
// Scale knobs (environment):
//   MICRO_WAL_OPS       ops for the none/background/group phases (20k)
//   MICRO_WAL_SYNC_OPS  ops for the per-fsync phase (2k — it is slow)
//   MICRO_WAL_BATCH     entries per group commit (64)
//
// Usage: micro_wal [output.json]  (always prints the JSON to stdout)

#include <filesystem>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "lsm/db.h"
#include "util/env.h"
#include "util/random.h"

ENDURE_BENCH_DEFINE_ALLOC_COUNTING()

namespace endure::lsm {
namespace {

using bench_util::Meter;
using bench_util::PhaseResult;

constexpr Key kKeySpace = 1 << 20;

Options DurableOpts(const std::string& dir, WalSyncMode mode) {
  Options o;
  o.size_ratio = 4;
  o.buffer_entries = 1024;
  o.entries_per_page = 64;
  o.filter_bits_per_entry = 6.0;
  o.backend = StorageBackend::kFile;
  o.storage_dir = dir;
  o.durability = true;
  o.wal_sync_mode = mode;
  o.wal_sync_interval_ms = 5;
  return o;
}

std::unique_ptr<DB> FreshDb(const Options& opts) {
  std::filesystem::remove_all(opts.storage_dir);
  return std::move(DB::Open(opts)).value();
}

/// `ops` random-key Puts; pages metric = all pages written (flush +
/// compaction traffic the WAL-ed writes caused).
PhaseResult PutPhase(DB* db, uint64_t ops, uint64_t seed) {
  Rng rng(seed);
  const Statistics before = db->stats();
  Meter meter;
  for (uint64_t i = 0; i < ops; ++i) {
    db->Put(rng.UniformInt(0, kKeySpace - 1), i);
  }
  const Statistics d = db->stats().Delta(before);
  return meter.Finish(ops, d.pages_written);
}

/// Same write mix, committed in groups of `batch` entries.
PhaseResult GroupCommitPhase(DB* db, uint64_t ops, uint64_t batch,
                             uint64_t seed) {
  Rng rng(seed);
  const Statistics before = db->stats();
  Meter meter;
  std::vector<std::pair<Key, Value>> group;
  group.reserve(batch);
  for (uint64_t i = 0; i < ops; i += batch) {
    group.clear();
    for (uint64_t j = 0; j < batch && i + j < ops; ++j) {
      group.emplace_back(rng.UniformInt(0, kKeySpace - 1), i + j);
    }
    db->PutBatch(group);
  }
  const Statistics d = db->stats().Delta(before);
  return meter.Finish(ops, d.pages_written);
}

}  // namespace
}  // namespace endure::lsm

int main(int argc, char** argv) {
  using namespace endure::lsm;
  const uint64_t ops =
      static_cast<uint64_t>(endure::GetEnvInt("MICRO_WAL_OPS", 20000));
  const uint64_t sync_ops =
      static_cast<uint64_t>(endure::GetEnvInt("MICRO_WAL_SYNC_OPS", 2000));
  const uint64_t batch =
      static_cast<uint64_t>(endure::GetEnvInt("MICRO_WAL_BATCH", 64));
  const std::string root = "/tmp/endure_micro_wal";

  std::fprintf(stderr, "phase: put_none...\n");
  PhaseResult none;
  {
    auto db = FreshDb(DurableOpts(root + "_none", endure::WalSyncMode::kNone));
    none = PutPhase(db.get(), ops, 1);
  }

  std::fprintf(stderr, "phase: put_background...\n");
  PhaseResult background;
  uint64_t bg_wal_records = 0, bg_wal_bytes = 0, bg_wal_syncs = 0,
           bg_manifest_writes = 0;
  const std::string bg_dir = root + "_background";
  const Options bg_opts = DurableOpts(bg_dir, endure::WalSyncMode::kBackground);
  {
    auto db = FreshDb(bg_opts);
    background = PutPhase(db.get(), ops, 2);
    bg_wal_records = db->stats().wal_records;
    bg_wal_bytes = db->stats().wal_bytes;
    bg_wal_syncs = db->stats().wal_syncs;
    bg_manifest_writes = db->stats().manifest_writes;
    // Die without the shutdown checkpoint so the recover phase below has
    // a real WAL tail to replay.
    db->CrashForTesting();
  }

  std::fprintf(stderr, "phase: put_per_batch (%llu fsyncs)...\n",
               static_cast<unsigned long long>(sync_ops));
  PhaseResult per_batch;
  {
    auto db = FreshDb(DurableOpts(root + "_sync", endure::WalSyncMode::kPerBatch));
    per_batch = PutPhase(db.get(), sync_ops, 3);
  }

  std::fprintf(stderr, "phase: group_commit (batch=%llu)...\n",
               static_cast<unsigned long long>(batch));
  PhaseResult group;
  {
    auto db = FreshDb(DurableOpts(root + "_group", endure::WalSyncMode::kPerBatch));
    group = GroupCommitPhase(db.get(), ops, batch, 4);
  }

  std::fprintf(stderr, "phase: recover...\n");
  PhaseResult recover;
  uint64_t recovered_entries = 0, replayed = 0, recovery_pages = 0;
  {
    Meter meter;
    auto db = std::move(DB::Open(bg_opts)).value();
    recovered_entries = db->tree().TotalEntries();
    replayed = db->stats().wal_replayed_entries;
    recovery_pages = db->stats().recovery_pages_read;
    recover = meter.Finish(recovered_entries > 0 ? recovered_entries : 1,
                           recovery_pages);
  }

  std::string json = endure::bench_util::BeginJson("micro_wal");
  {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  \"config\": {\"ops\": %llu, \"sync_ops\": %llu, "
                  "\"batch\": %llu},\n",
                  static_cast<unsigned long long>(ops),
                  static_cast<unsigned long long>(sync_ops),
                  static_cast<unsigned long long>(batch));
    json += buf;
  }
  json += "  \"phases\": {\n";
  endure::bench_util::AppendPhaseJson(&json, "put_none", none, false);
  endure::bench_util::AppendPhaseJson(&json, "put_background", background,
                                      false);
  endure::bench_util::AppendPhaseJson(&json, "put_per_batch", per_batch,
                                      false);
  endure::bench_util::AppendPhaseJson(&json, "group_commit", group, false);
  endure::bench_util::AppendPhaseJson(&json, "recover", recover, true);
  json += "  },\n";
  {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  \"wal_background\": {\"records\": %llu, \"bytes\": %llu, "
        "\"syncs\": %llu, \"manifest_writes\": %llu},\n"
        "  \"recovery\": {\"entries\": %llu, \"replayed_entries\": %llu, "
        "\"pages_read\": %llu},\n"
        "  \"group_vs_per_batch_throughput\": %.2f,\n"
        "  \"none_vs_per_batch_throughput\": %.2f\n",
        static_cast<unsigned long long>(bg_wal_records),
        static_cast<unsigned long long>(bg_wal_bytes),
        static_cast<unsigned long long>(bg_wal_syncs),
        static_cast<unsigned long long>(bg_manifest_writes),
        static_cast<unsigned long long>(recovered_entries),
        static_cast<unsigned long long>(replayed),
        static_cast<unsigned long long>(recovery_pages),
        per_batch.ops_per_sec > 0
            ? group.ops_per_sec / per_batch.ops_per_sec
            : 0,
        per_batch.ops_per_sec > 0
            ? none.ops_per_sec / per_batch.ops_per_sec
            : 0);
    json += buf;
  }
  json += "}\n";

  return endure::bench_util::EmitJson(json, argc, argv);
}
