// micro_retune: cost of a live reconfiguration on a serving ShardedDB.
//
// Loads a 4-shard deployment under tuning A (tiering, T=6, 8 bits of
// filter), serves a mixed get/put workload from 4 client threads, then
// applies tuning B (leveling, T=4, halved buffer, 4 bits) IN PLACE and
// keeps serving. Reported: the ApplyTuning call latency (the foreground
// cost of a retune — should be microseconds, it only retargets buffers
// and bumps epochs), throughput before / during / after the structural
// migration, the migration's own I/O bill, and how far the Bloom-filter
// epoch migration progressed (resident runs only rebuild their filters
// when compaction touches them, so the fraction climbs lazily).
//
// Scale knobs (environment):
//   MICRO_RETUNE_N    entries bulk-loaded (default 200k)
//   MICRO_RETUNE_OPS  ops per measured phase (default 200k)
//
// Usage: micro_retune [output.json]  (always prints the JSON to stdout)

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "lsm/sharded_db.h"
#include "util/env.h"
#include "util/random.h"

ENDURE_BENCH_DEFINE_ALLOC_COUNTING()

namespace endure::lsm {
namespace {

using bench_util::Meter;
using bench_util::PhaseResult;

constexpr int kShards = 4;
constexpr int kThreads = 4;

// A -> B goes tiering -> leveling with a smaller size ratio: the
// direction that actually costs something structurally (multi-run levels
// must fold into single runs and over-capacity runs cascade deeper).
// The reverse direction is structurally free - single runs already
// satisfy tiering - which is itself worth knowing.
Options TuningA() {
  Options o;
  o.size_ratio = 6;
  o.policy = CompactionPolicy::kTiering;
  o.buffer_entries = 1024;  // per shard (small: deep trees at bench scale)
  o.entries_per_page = 256;
  o.filter_bits_per_entry = 8.0;
  o.num_shards = kShards;
  o.background_maintenance = true;
  return o;
}

Options TuningB() {
  Options o = TuningA();
  o.policy = CompactionPolicy::kLeveling;
  o.size_ratio = 4;
  o.buffer_entries = 512;
  o.filter_bits_per_entry = 4.0;
  return o;
}

/// One measured phase: kThreads clients, 80% point lookups / 20%
/// overwrites over the loaded key space.
PhaseResult ServePhase(ShardedDB* db, uint64_t ops, uint64_t key_space,
                       uint64_t seed) {
  const uint64_t per_thread = ops / kThreads;
  const Statistics before = db->TotalStats();
  Meter meter;
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(seed + static_cast<uint64_t>(t));
      for (uint64_t i = 0; i < per_thread; ++i) {
        const Key k = 2 * rng.UniformInt(0, key_space - 1);
        if (rng.NextDouble() < 0.8) {
          db->Get(k);
        } else {
          db->Put(k, i);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  const Statistics d = db->TotalStats().Delta(before);
  return meter.Finish(per_thread * kThreads, d.pages_read + d.pages_written);
}

}  // namespace
}  // namespace endure::lsm

int main(int argc, char** argv) {
  using namespace endure::lsm;
  using Clock = std::chrono::steady_clock;
  const uint64_t n =
      static_cast<uint64_t>(endure::GetEnvInt("MICRO_RETUNE_N", 200000));
  const uint64_t ops =
      static_cast<uint64_t>(endure::GetEnvInt("MICRO_RETUNE_OPS", 200000));

  auto db = std::move(ShardedDB::Open(TuningA())).value();
  {
    std::vector<std::pair<Key, Value>> pairs;
    pairs.reserve(n);
    for (uint64_t i = 0; i < n; ++i) pairs.emplace_back(2 * i, i);
    if (!db->BulkLoad(pairs).ok()) return 1;
  }

  std::fprintf(stderr, "phase: before (tuning A)...\n");
  const PhaseResult before = ServePhase(db.get(), ops, n, 42);

  // The retune itself: foreground cost of ApplyTuning (per-shard buffer
  // retarget + epoch bump; the heavy lifting is backgrounded). Drain the
  // before-phase's maintenance backlog first so the latency measures the
  // call, not lock-waits behind queued flush jobs; and snapshot the
  // counters first: on an idle pool the migration starts (and at small
  // scales finishes) the moment the apply returns.
  db->WaitForMaintenance();
  const Statistics migration_base = db->TotalStats();
  const auto apply_start = Clock::now();
  if (!db->ApplyTuning(TuningB()).ok()) return 1;
  const double apply_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          Clock::now() - apply_start)
          .count();

  std::fprintf(stderr, "phase: during migration...\n");
  const PhaseResult during = ServePhase(db.get(), ops, n, 142);

  // Let the structural migration finish and bill the window from apply
  // to convergence (it includes the during-phase's normal flush/compact
  // work — the price of measuring a serving system).
  db->WaitForMaintenance();
  const double migration_wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          Clock::now() - apply_start)
          .count();
  const Statistics migration = db->TotalStats().Delta(migration_base);
  const MigrationProgress progress = db->Progress();

  std::fprintf(stderr, "phase: after (tuning B)...\n");
  const PhaseResult after = ServePhase(db.get(), ops, n, 242);

  std::string json = endure::bench_util::BeginJson("micro_retune");
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"config\": {\"n\": %llu, \"ops\": %llu, "
                  "\"shards\": %d, \"threads\": %d, "
                  "\"hardware_threads\": %u},\n",
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(ops), kShards, kThreads,
                  std::thread::hardware_concurrency());
    json += buf;
  }
  json += "  \"phases\": {\n";
  endure::bench_util::AppendPhaseJson(&json, "before", before, false);
  endure::bench_util::AppendPhaseJson(&json, "during_migration", during,
                                      false);
  endure::bench_util::AppendPhaseJson(&json, "after", after, true);
  json += "  },\n";
  {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  \"apply_latency_us\": %.1f,\n"
        "  \"migration\": {\"steps\": %llu, \"compactions\": %llu, "
        "\"compaction_pages_read\": %llu, "
        "\"compaction_pages_written\": %llu, "
        "\"flush_pages_written\": %llu, \"wall_ms\": %.1f},\n"
        "  \"progress\": {\"structure_conforming\": %s, "
        "\"entries_current_fraction\": %.3f},\n"
        "  \"during_vs_before_throughput\": %.3f,\n"
        "  \"after_vs_before_throughput\": %.3f\n",
        apply_us, static_cast<unsigned long long>(migration.migration_steps),
        static_cast<unsigned long long>(migration.compactions),
        static_cast<unsigned long long>(migration.compaction_pages_read),
        static_cast<unsigned long long>(migration.compaction_pages_written),
        static_cast<unsigned long long>(migration.flush_pages_written),
        migration_wall_ms,
        progress.structure_conforming() ? "true" : "false",
        progress.entries_current_fraction(),
        before.ops_per_sec > 0 ? during.ops_per_sec / before.ops_per_sec : 0,
        before.ops_per_sec > 0 ? after.ops_per_sec / before.ops_per_sec : 0);
    json += buf;
  }
  json += "}\n";

  return endure::bench_util::EmitJson(json, argc, argv);
}
