// Figure 5: impact of rho on Delta_w(Phi_N, Phi_R) for expected workload
// w11 = (33, 33, 33, 1), plotted against the observed KL divergence.
// Regenerated as binned means over B for rho in {0, 0.25, 1, 2}, with the
// robust tuning printed per panel (the paper annotates T and h).

#include "bench_common.h"

int main() {
  using namespace endure;
  using namespace endure::bench;

  FigureHeader("Figure 5 - impact of rho (w11)",
               "Delta_w(Phi_N, Phi_R) vs I_KL(w_hat, w11), binned over B");

  SystemConfig cfg;
  CostModel model(cfg);
  NominalTuner nominal(model);
  RobustTuner robust(model);
  const Workload w11 = workload::GetExpectedWorkload(11).workload;
  const Tuning phi_n = nominal.Tune(w11).tuning;
  std::printf("nominal: %s\n\n", phi_n.ToString().c_str());

  const BenchScale scale = ReadScale();
  workload::BenchmarkSet bench = MakeBenchmarkSet(scale.benchmark_size);

  constexpr int kBins = 8;
  const double kl_max = 4.0;

  for (double rho : {0.0, 0.25, 1.0, 2.0}) {
    const Tuning phi_r = robust.Tune(w11, rho).tuning;
    double sum[kBins] = {0};
    int n[kBins] = {0};
    for (size_t i = 0; i < bench.size(); ++i) {
      const Workload& w = bench.sample(i).workload;
      const double kl = KlDivergence(w, w11);
      int b = static_cast<int>(kl / kl_max * kBins);
      if (b >= kBins) b = kBins - 1;
      sum[b] += DeltaThroughput(model, w, phi_n, phi_r);
      ++n[b];
    }
    std::printf("rho=%.2f  robust: %s\n", rho, phi_r.ToString().c_str());
    TablePrinter table({"I_KL bin", "mean delta", "samples"});
    for (int b = 0; b < kBins; ++b) {
      char bin[32];
      std::snprintf(bin, sizeof(bin), "[%.1f, %.1f)", b * kl_max / kBins,
                    (b + 1) * kl_max / kBins);
      table.AddRow({bin, n[b] ? TablePrinter::Fmt(sum[b] / n[b], 3) : "-",
                    std::to_string(n[b])});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "paper: at rho=0 the curves hug zero; as rho grows, the gain at\n"
      "high observed KL rises (to ~2-3x) while the loss near KL~0 stays\n"
      "small. Robust T shrinks: 46.3 -> 11.9 -> 8.2 -> 5.5.\n");
  return 0;
}
