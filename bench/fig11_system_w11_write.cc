// Figure 11: mixed sequence (incl. writes) for w11 = (33, 33, 33, 1) with
// rho = 0.25 and real drift (I_KL ~ 0.39). Paper outcome: the nominal
// tuning's huge size ratio (T ~ 47) makes compactions brutal once writes
// arrive - robust cuts system I/O and latency by up to 90%.

#include "bench_common.h"

int main() {
  endure::bench::RunSystemFigure(
      "Figure 11 - system, w11 with writes (rho = 0.25)",
      endure::workload::GetExpectedWorkload(11).workload,
      /*rho=*/0.25, /*read_only=*/false, /*seed=*/11);
  return 0;
}
