// Micro benchmarks: analytical cost model evaluation throughput. The
// model sits in every tuner inner loop, so single-evaluation latency
// bounds tuning time (the paper reports end-to-end tuning < 10 ms).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace endure;

void BM_CostVector(benchmark::State& state) {
  SystemConfig cfg;
  CostModel model(cfg);
  Tuning t(state.range(0) == 0 ? Policy::kLeveling : Policy::kTiering,
           10.0, 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Costs(t));
  }
}
BENCHMARK(BM_CostVector)->Arg(0)->Arg(1);

void BM_WorkloadCost(benchmark::State& state) {
  SystemConfig cfg;
  CostModel model(cfg);
  Tuning t(Policy::kLeveling, 12.0, 4.0);
  Workload w(0.3, 0.3, 0.3, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Cost(w, t));
  }
}
BENCHMARK(BM_WorkloadCost);

void BM_KlDivergence(benchmark::State& state) {
  const std::vector<double> p{0.3, 0.3, 0.3, 0.1};
  const std::vector<double> q{0.25, 0.25, 0.25, 0.25};
  for (auto _ : state) {
    benchmark::DoNotOptimize(KlDivergence(p, q));
  }
}
BENCHMARK(BM_KlDivergence);

void BM_RobustDualInner(benchmark::State& state) {
  SystemConfig cfg;
  CostModel model(cfg);
  RobustTuner tuner(model);
  Workload w(0.33, 0.33, 0.33, 0.01);
  Tuning t(Policy::kLeveling, 11.9, 2.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.RobustCost(w, 1.0, t));
  }
}
BENCHMARK(BM_RobustDualInner);

void BM_IntegerVsFractionalLevels(benchmark::State& state) {
  SystemConfig cfg;
  cfg.level_policy = state.range(0) == 0 ? LevelPolicy::kFractional
                                         : LevelPolicy::kInteger;
  CostModel model(cfg);
  Tuning t(Policy::kTiering, 7.0, 6.0);
  Workload w(0.25, 0.25, 0.25, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Cost(w, t));
  }
}
BENCHMARK(BM_IntegerVsFractionalLevels)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
