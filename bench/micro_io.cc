// micro_io: fill / point-lookup / scan throughput and heap allocations per
// operation on both page-store backends. The numbers land in
// BENCH_micro_io.json at the repo root so successive PRs have a perf
// trajectory for the storage hot path.
//
// Scale knobs (environment):
//   MICRO_IO_N    entries bulk-loaded before the read phases (default 200k)
//   MICRO_IO_OPS  operations per read phase                  (default 200k)
//
// Usage: micro_io [output.json]   (always prints the JSON to stdout too)

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "lsm/db.h"
#include "util/env.h"
#include "util/random.h"

ENDURE_BENCH_DEFINE_ALLOC_COUNTING()

namespace endure::lsm {
namespace {

using bench_util::Meter;
using bench_util::PhaseResult;

Options BenchOptions(StorageBackend backend) {
  Options o;
  o.size_ratio = 6;
  o.buffer_entries = 4096;
  // 256 in-memory entries per page ~ an 8KB disk page — the regime the
  // paper's direct-I/O setup models (one logical access = one device
  // page).
  o.entries_per_page = 256;
  o.filter_bits_per_entry = 8.0;
  o.backend = backend;
  o.storage_dir = "/tmp/endure_micro_io";
  return o;
}

struct BackendResults {
  PhaseResult fill, get_hit, get_miss, scan;
};

BackendResults RunBackend(StorageBackend backend, uint64_t n, uint64_t ops) {
  BackendResults out;

  // --- fill: random upserts through the memtable/flush/compaction path ---
  {
    auto db = std::move(DB::Open(BenchOptions(backend))).value();
    Rng rng(42);
    Meter meter;
    for (uint64_t i = 0; i < n; ++i) {
      db->Put(2 * rng.UniformInt(0, static_cast<int64_t>(n) - 1), i);
    }
    out.fill = meter.Finish(n, db->stats().pages_written);
  }

  // --- read phases run against a settled bulk-loaded tree ---
  auto db = std::move(DB::Open(BenchOptions(backend))).value();
  {
    std::vector<std::pair<Key, Value>> pairs;
    pairs.reserve(n);
    for (uint64_t i = 0; i < n; ++i) pairs.emplace_back(2 * i, i);
    if (!db->BulkLoad(pairs).ok()) std::abort();
  }

  // --- get: non-empty (z1) and empty (z0) point lookups, separately ---
  {
    Rng rng(43);
    for (int i = 0; i < 1000; ++i) db->Get(2 * rng.UniformInt(0, 1000));
    Rng hit_rng(44);
    const Statistics before_hit = db->stats();
    Meter hit_meter;
    uint64_t found = 0;
    for (uint64_t i = 0; i < ops; ++i) {
      found += db->Get(2 * hit_rng.UniformInt(0, n - 1)).has_value();
    }
    out.get_hit =
        hit_meter.Finish(ops, db->stats().Delta(before_hit).pages_read);
    if (found != ops) std::abort();

    Rng miss_rng(45);
    const Statistics before_miss = db->stats();
    Meter miss_meter;
    for (uint64_t i = 0; i < ops; ++i) {
      found += db->Get(2 * miss_rng.UniformInt(0, n - 1) + 1).has_value();
    }
    out.get_miss =
        miss_meter.Finish(ops, db->stats().Delta(before_miss).pages_read);
    if (found != ops) std::abort();
  }

  // --- scan: short range queries (8 live keys each) ---
  {
    const uint64_t scans = ops / 16;
    Rng rng(46);
    const Statistics before = db->stats();
    Meter meter;
    uint64_t returned = 0;
    for (uint64_t i = 0; i < scans; ++i) {
      const Key lo = 2 * rng.UniformInt(0, static_cast<int64_t>(n) - 9);
      returned += db->Scan(lo, lo + 16).value().size();
    }
    out.scan = meter.Finish(scans, db->stats().Delta(before).pages_read);
    if (returned == 0) std::abort();
  }

  return out;
}

}  // namespace
}  // namespace endure::lsm

int main(int argc, char** argv) {
  using namespace endure::lsm;
  const uint64_t n =
      static_cast<uint64_t>(endure::GetEnvInt("MICRO_IO_N", 200000));
  const uint64_t ops =
      static_cast<uint64_t>(endure::GetEnvInt("MICRO_IO_OPS", 200000));

  std::string json = endure::bench_util::BeginJson("micro_io");
  {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  \"config\": {\"n\": %llu, \"ops\": %llu, "
                  "\"entries_per_page\": 256, \"buffer_entries\": 4096},\n",
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(ops));
    json += buf;
  }
  json += "  \"backends\": {\n";

  const struct {
    const char* name;
    StorageBackend backend;
  } kBackends[] = {{"memory", StorageBackend::kMemory},
                   {"file", StorageBackend::kFile}};
  for (size_t b = 0; b < 2; ++b) {
    std::fprintf(stderr, "running backend %s...\n", kBackends[b].name);
    const BackendResults r = RunBackend(kBackends[b].backend, n, ops);
    json += std::string("    \"") + kBackends[b].name + "\": {\n";
    endure::bench_util::AppendPhaseJson(&json, "fill", r.fill, false);
    endure::bench_util::AppendPhaseJson(&json, "get_hit", r.get_hit, false);
    endure::bench_util::AppendPhaseJson(&json, "get_miss", r.get_miss, false);
    endure::bench_util::AppendPhaseJson(&json, "scan", r.scan, true);
    json += b + 1 < 2 ? "    },\n" : "    }\n";
  }
  json += "  }\n}\n";

  return endure::bench_util::EmitJson(json, argc, argv);
}
