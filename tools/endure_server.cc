// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Standalone server binary: `endure_server --dir /path --port 4800` is
// exactly `endure_cli serve ...` without the subcommand word. See
// docs/server.md for the wire protocol and operational semantics.

#include "endure_cli_main.h"

int main(int argc, char** argv) {
  return endure::cli::RunServe(argc, argv, 1);
}
