// endure — command-line front end to the library.
//
//   endure tune      --workload 0.33,0.33,0.33,0.01 --rho 1.0
//   endure evaluate  --workload ... --policy leveling --T 10 --h 5
//   endure advise    --history "0.3,0.3,0.3,0.1;0.2,0.4,0.2,0.2;..."
//   endure simulate  --workload ... --policy leveling --T 10 --h 5
//   endure serve     --dir /var/lib/endure --port 4800
//   endure workloads
//
// Every tuning command accepts the system parameters
//   --entries N --entry-bits E --page-entries B --bits-per-entry H
// (defaults are the paper's configuration).
//
// Contract the regression tests pin: an unknown subcommand, an unknown
// or malformed flag, or a stray positional argument exits non-zero with
// a usage message — a typo can never silently no-op (this matters most
// for `serve`, where a silently-defaulted flag would bring up a server
// with the wrong deployment).

#include "endure_cli_main.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>

#include "bridge/experiment.h"
#include "core/endure.h"
#include "lsm/sharded_db.h"
#include "net/server.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "workload/expected_workloads.h"
#include "workload/serialization.h"

namespace endure::cli {
namespace {

using namespace endure;

void AddSystemFlags(FlagParser* flags) {
  flags->AddDouble("entries", 1e7, "database entries N");
  flags->AddDouble("entry-bits", 8192.0, "entry size E in bits");
  flags->AddDouble("page-entries", 4.0, "entries per page B");
  flags->AddDouble("bits-per-entry", 10.0, "total memory budget H");
  flags->AddDouble("selectivity", 2e-7, "range selectivity S_RQ");
  flags->AddDouble("asymmetry", 1.0, "read/write asymmetry A_rw");
}

SystemConfig ConfigFromFlags(const FlagParser& flags) {
  SystemConfig cfg;
  cfg.num_entries = flags.GetDouble("entries");
  cfg.entry_size_bits = flags.GetDouble("entry-bits");
  cfg.entries_per_page = flags.GetDouble("page-entries");
  cfg.memory_budget_bits_per_entry = flags.GetDouble("bits-per-entry");
  cfg.range_selectivity = flags.GetDouble("selectivity");
  cfg.read_write_asymmetry = flags.GetDouble("asymmetry");
  return cfg;
}

StatusOr<Workload> WorkloadFromFlag(const FlagParser& flags) {
  auto parts = ParseCsvDoubles(flags.GetString("workload"), 4);
  if (!parts.ok()) return parts.status();
  Workload w((*parts)[0], (*parts)[1], (*parts)[2], (*parts)[3]);
  ENDURE_RETURN_IF_ERROR(w.Validate(1e-6));
  return w;
}

StatusOr<Policy> PolicyFromFlag(const std::string& name) {
  if (name == "leveling") return Policy::kLeveling;
  if (name == "tiering") return Policy::kTiering;
  if (name == "lazy-leveling") return Policy::kLazyLeveling;
  return Status::InvalidArgument(
      "policy must be leveling|tiering|lazy-leveling");
}

StatusOr<lsm::CompactionPolicy> EnginePolicyFromFlag(
    const std::string& name) {
  if (name == "leveling") return lsm::CompactionPolicy::kLeveling;
  if (name == "tiering") return lsm::CompactionPolicy::kTiering;
  if (name == "lazy-leveling") return lsm::CompactionPolicy::kLazyLeveling;
  return Status::InvalidArgument(
      "policy must be leveling|tiering|lazy-leveling");
}

StatusOr<DivergenceKind> DivergenceFromFlag(const std::string& name) {
  if (name == "kl") return DivergenceKind::kKl;
  if (name == "chi2") return DivergenceKind::kChiSquare;
  if (name == "tv") return DivergenceKind::kTotalVariation;
  if (name == "hellinger") return DivergenceKind::kHellinger;
  return Status::InvalidArgument("divergence must be kl|chi2|tv|hellinger");
}

int Fail(const Status& status, const FlagParser& flags) {
  std::fprintf(stderr, "error: %s\nflags:\n%s", status.ToString().c_str(),
               flags.Usage().c_str());
  return 1;
}

/// Commands take no positional arguments: a stray token is almost
/// always a mistyped flag, so it must fail, not silently parse as
/// noise.
Status NoPositional(const FlagParser& flags) {
  if (!flags.positional().empty()) {
    return Status::InvalidArgument("unexpected argument '" +
                                   flags.positional().front() + "'");
  }
  return Status::OK();
}

// ------------------------------------------------------------------ tune

int CmdTune(int argc, const char* const* argv) {
  FlagParser flags;
  AddSystemFlags(&flags);
  flags.AddString("workload", "0.25,0.25,0.25,0.25",
                  "expected workload z0,z1,q,w");
  flags.AddDouble("rho", 0.0, "uncertainty radius (0 = nominal tuning)");
  flags.AddString("divergence", "kl", "ball geometry: kl|chi2|tv|hellinger");
  flags.AddBool("lazy-leveling", false,
                "include the lazy-leveling hybrid in the policy space");
  Status st = flags.Parse(argc, argv, 2);
  if (st.ok()) st = NoPositional(flags);
  if (!st.ok()) return Fail(st, flags);

  const SystemConfig cfg = ConfigFromFlags(flags);
  auto w = WorkloadFromFlag(flags);
  if (!w.ok()) return Fail(w.status(), flags);
  const double rho = flags.GetDouble("rho");

  CostModel model(cfg);
  TunerOptions opts;
  if (flags.GetBool("lazy-leveling")) {
    opts.policies.push_back(Policy::kLazyLeveling);
  }

  TuningResult result;
  if (rho <= 0.0) {
    result = NominalTuner(model, opts).Tune(*w);
  } else if (flags.GetString("divergence") == "kl") {
    result = RobustTuner(model, opts).Tune(*w, rho);
  } else {
    auto kind = DivergenceFromFlag(flags.GetString("divergence"));
    if (!kind.ok()) return Fail(kind.status(), flags);
    result = GeneralizedRobustTuner(model, *kind, opts).Tune(*w, rho);
  }

  std::printf("workload   : %s\n", w->ToString().c_str());
  std::printf("rho        : %.3f (%s)\n", rho,
              flags.GetString("divergence").c_str());
  std::printf("tuning     : %s\n", result.tuning.ToString().c_str());
  std::printf("objective  : %.4f expected I/Os per op\n", result.objective);
  std::printf("m_filt     : %.1f MiB   m_buf: %.1f MiB\n",
              result.tuning.filter_memory_bits(cfg) / 8.0 / (1 << 20),
              result.tuning.buffer_memory_bits(cfg) / 8.0 / (1 << 20));
  std::printf("solve time : %.1f ms (%d evaluations)\n",
              result.solve_seconds * 1e3, result.evaluations);
  return 0;
}

// -------------------------------------------------------------- evaluate

int CmdEvaluate(int argc, const char* const* argv) {
  FlagParser flags;
  AddSystemFlags(&flags);
  flags.AddString("workload", "0.25,0.25,0.25,0.25",
                  "workload z0,z1,q,w to cost");
  flags.AddString("policy", "leveling", "leveling|tiering|lazy-leveling");
  flags.AddDouble("T", 10.0, "size ratio");
  flags.AddDouble("h", 5.0, "filter bits per entry");
  flags.AddBool("integer-levels", false, "use ceil(L) (deployed tree)");
  Status st = flags.Parse(argc, argv, 2);
  if (st.ok()) st = NoPositional(flags);
  if (!st.ok()) return Fail(st, flags);

  SystemConfig cfg = ConfigFromFlags(flags);
  if (flags.GetBool("integer-levels")) {
    cfg.level_policy = LevelPolicy::kInteger;
  }
  auto w = WorkloadFromFlag(flags);
  if (!w.ok()) return Fail(w.status(), flags);
  auto policy = PolicyFromFlag(flags.GetString("policy"));
  if (!policy.ok()) return Fail(policy.status(), flags);

  const Tuning t(*policy, flags.GetDouble("T"), flags.GetDouble("h"));
  st = t.Validate(cfg);
  if (!st.ok()) return Fail(st, flags);

  CostModel model(cfg);
  const CostVector c = model.Costs(t);
  std::printf("tuning : %s   levels L = %.2f\n", t.ToString().c_str(),
              model.EffectiveLevels(t));
  std::printf("Z0 = %.4f   Z1 = %.4f   Q = %.4f   W = %.4f\n", c.z0, c.z1,
              c.q, c.w);
  std::printf("C(w, Phi) = %.4f I/Os per op  (throughput %.4f)\n",
              model.Cost(*w, t), model.Throughput(*w, t));
  return 0;
}

// ---------------------------------------------------------------- advise

int CmdAdvise(int argc, const char* const* argv) {
  FlagParser flags;
  flags.AddString("history", "",
                  "semicolon-separated workloads, e.g. "
                  "\"0.3,0.3,0.3,0.1;0.2,0.4,0.2,0.2\"");
  flags.AddString("file", "",
                  "workload-history file (one z0,z1,q,w line per epoch; "
                  "see workload/serialization.h)");
  Status st = flags.Parse(argc, argv, 2);
  if (st.ok()) st = NoPositional(flags);
  if (!st.ok()) return Fail(st, flags);

  std::vector<Workload> history;
  if (!flags.GetString("file").empty()) {
    auto loaded = workload::LoadWorkloads(flags.GetString("file"));
    if (!loaded.ok()) return Fail(loaded.status(), flags);
    history = std::move(loaded).value();
  }
  const std::string spec = flags.GetString("history");
  size_t pos = 0;
  while (pos <= spec.size() && !spec.empty()) {
    const size_t semi = spec.find(';', pos);
    const std::string part =
        spec.substr(pos, semi == std::string::npos ? std::string::npos
                                                   : semi - pos);
    auto parts = ParseCsvDoubles(part, 4);
    if (!parts.ok()) return Fail(parts.status(), flags);
    history.emplace_back((*parts)[0], (*parts)[1], (*parts)[2],
                         (*parts)[3]);
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  if (history.size() < 2) {
    return Fail(Status::InvalidArgument(
                    "need at least two workloads in --history"),
                flags);
  }

  const Workload mean = MeanWorkload(history);
  const RhoEstimate est = EstimateRho(history, mean);
  std::printf("history         : %zu workloads\n", history.size());
  std::printf("mean workload   : %s\n", mean.ToString().c_str());
  std::printf("rho (recommended, mean pairwise KL): %.4f\n",
              est.mean_pairwise);
  std::printf("rho (mean to mean): %.4f   (p90): %.4f   (max): %.4f\n",
              est.mean_to_expected, est.p90_to_expected,
              est.max_to_expected);
  return 0;
}

// -------------------------------------------------------------- simulate

int CmdSimulate(int argc, const char* const* argv) {
  FlagParser flags;
  AddSystemFlags(&flags);
  flags.AddString("workload", "0.25,0.25,0.25,0.25",
                  "workload z0,z1,q,w to execute");
  flags.AddString("policy", "leveling", "leveling|tiering|lazy-leveling");
  flags.AddDouble("T", 10.0, "size ratio");
  flags.AddDouble("h", 5.0, "filter bits per entry");
  flags.AddInt("db-entries", 50000, "entries to bulk load");
  flags.AddInt("queries", 5000, "operations to execute");
  Status st = flags.Parse(argc, argv, 2);
  if (st.ok()) st = NoPositional(flags);
  if (!st.ok()) return Fail(st, flags);

  const SystemConfig cfg = ConfigFromFlags(flags);
  auto w = WorkloadFromFlag(flags);
  if (!w.ok()) return Fail(w.status(), flags);
  auto policy = PolicyFromFlag(flags.GetString("policy"));
  if (!policy.ok()) return Fail(policy.status(), flags);
  const Tuning t(*policy, flags.GetDouble("T"), flags.GetDouble("h"));

  bridge::ExperimentOptions eopts;
  eopts.actual_entries = static_cast<uint64_t>(flags.GetInt("db-entries"));
  eopts.queries_per_workload =
      static_cast<uint64_t>(flags.GetInt("queries"));
  bridge::ExperimentRunner runner(cfg, eopts);
  workload::Session session;
  session.kind = workload::SessionKind::kExpected;
  session.workloads = {*w};
  const auto results = runner.Run(t, {session});

  std::printf("tuning   : %s on %lld entries\n", t.ToString().c_str(),
              static_cast<long long>(eopts.actual_entries));
  std::printf("workload : %s x %lld ops\n", w->ToString().c_str(),
              static_cast<long long>(eopts.queries_per_workload));
  std::printf("model    : %.3f I/Os per query\n",
              results[0].model_io_per_query);
  std::printf("system   : %.3f I/Os per query (point %.3f, range %.3f, "
              "write %.3f)\n",
              results[0].measured_io_per_query, results[0].point_io,
              results[0].range_io, results[0].write_io);
  std::printf("latency  : %.2f us per query\n",
              results[0].latency_us_per_query);
  return 0;
}

// ------------------------------------------------------------- workloads

int CmdWorkloads(int argc, const char* const* argv) {
  FlagParser flags;  // no flags: anything passed is an error
  Status st = flags.Parse(argc, argv, 2);
  if (st.ok()) st = NoPositional(flags);
  if (!st.ok()) return Fail(st, flags);

  TablePrinter table({"index", "(z0, z1, q, w)", "type"});
  for (const auto& ew : workload::AllExpectedWorkloads()) {
    table.AddRow({std::to_string(ew.index), ew.workload.ToString(),
                  workload::CategoryName(ew.category)});
  }
  table.Print();
  return 0;
}

// ----------------------------------------------------------------- serve

std::atomic<bool> g_stop_serving{false};

void HandleStopSignal(int) { g_stop_serving.store(true); }

StatusOr<WalSyncMode> SyncModeFromFlag(const std::string& name) {
  if (name == "none") return WalSyncMode::kNone;
  if (name == "background") return WalSyncMode::kBackground;
  if (name == "per-batch") return WalSyncMode::kPerBatch;
  return Status::InvalidArgument("sync must be none|background|per-batch");
}

/// Parses one --tenant-quota spec: comma-separated `name:ops[:bytes]`
/// entries (`alice:1000`, `bulk:500:1048576`). ops/bytes are per-second
/// rates; 0 means unlimited on that dimension.
StatusOr<std::unordered_map<std::string, net::TenantQuota>> ParseTenantQuotas(
    const std::string& spec) {
  std::unordered_map<std::string, net::TenantQuota> quotas;
  const Status malformed = Status::InvalidArgument(
      "--tenant-quota must be name:ops[:bytes][,name:ops[:bytes]...] with "
      "non-negative numeric rates; got \"" + spec + "\"");
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t c1 = entry.find(':');
    if (c1 == std::string::npos || c1 == 0) return malformed;
    const std::string name = entry.substr(0, c1);
    const size_t c2 = entry.find(':', c1 + 1);
    const std::string ops_str =
        entry.substr(c1 + 1, (c2 == std::string::npos ? entry.size() : c2) -
                                 c1 - 1);
    const std::string bytes_str =
        c2 == std::string::npos ? "0" : entry.substr(c2 + 1);
    net::TenantQuota quota;
    try {
      size_t used = 0;
      quota.ops_per_sec = std::stod(ops_str, &used);
      if (used != ops_str.size()) return malformed;
      quota.bytes_per_sec = std::stod(bytes_str, &used);
      if (used != bytes_str.size()) return malformed;
    } catch (const std::exception&) {
      return malformed;
    }
    if (quota.ops_per_sec < 0 || quota.bytes_per_sec < 0) return malformed;
    if (name.size() > net::kMaxTenantIdBytes) {
      return Status::InvalidArgument("--tenant-quota tenant id \"" + name +
                                     "\" exceeds " +
                                     std::to_string(net::kMaxTenantIdBytes) +
                                     " bytes");
    }
    quotas[name] = quota;
  }
  return quotas;
}

}  // namespace

int RunServe(int argc, const char* const* argv, int flag_start) {
  FlagParser flags;
  flags.AddString("dir", "",
                  "deployment root (durable file backend; recovered when "
                  "it exists)");
  flags.AddBool("memory", false,
                "serve a volatile in-memory deployment instead of --dir");
  flags.AddInt("port", 4800, "TCP port (0 = ephemeral, printed at start)");
  flags.AddString("bind", "127.0.0.1", "IPv4 address to bind");
  flags.AddInt("shards", 8, "hash-partitioned shards for a fresh deployment");
  flags.AddInt("buffer-entries", 4096, "write buffer entries per shard");
  flags.AddInt("size-ratio", 10, "LSM size ratio T");
  flags.AddString("policy", "leveling", "leveling|tiering|lazy-leveling");
  flags.AddDouble("bits-per-entry", 5.0, "bloom filter bits per entry h");
  flags.AddString("sync", "background",
                  "WAL sync mode: none|background|per-batch");
  flags.AddInt("cache-mb", 0, "deployment-wide block cache MiB (0 = off)");
  flags.AddInt("max-frame-mb", 4, "per-frame payload ceiling in MiB");
  flags.AddInt("drain-timeout-ms", 5000,
               "graceful-drain bound on shutdown");
  flags.AddInt("exit-after-seconds", 0,
               "stop serving after N seconds (0 = until SIGINT/SIGTERM)");
  flags.AddInt("ops-per-sec", 0,
               "per-tenant admission quota in requests/sec (0 = unlimited)");
  flags.AddInt("bytes-per-sec", 0,
               "per-tenant admission quota in request bytes/sec "
               "(0 = unlimited)");
  flags.AddString("tenant-quota", "",
                  "per-tenant overrides name:ops[:bytes],... (see "
                  "docs/server.md)");
  flags.AddInt("max-pending", 64,
               "throttled requests parked per tenant before shedding with "
               "ResourceExhausted");
  Status st = flags.Parse(argc, argv, flag_start);
  if (st.ok()) st = NoPositional(flags);
  if (!st.ok()) return Fail(st, flags);

  const bool memory = flags.GetBool("memory");
  const std::string dir = flags.GetString("dir");
  if (memory == !dir.empty()) {
    return Fail(Status::InvalidArgument(
                    "pass exactly one of --dir <path> or --memory"),
                flags);
  }
  if (flags.GetInt("port") < 0 || flags.GetInt("port") > 65535) {
    return Fail(Status::InvalidArgument("--port must be in [0, 65535]"),
                flags);
  }
  if (flags.GetInt("max-frame-mb") < 1 || flags.GetInt("max-frame-mb") > 64) {
    return Fail(Status::InvalidArgument("--max-frame-mb must be in [1, 64]"),
                flags);
  }
  auto policy = EnginePolicyFromFlag(flags.GetString("policy"));
  if (!policy.ok()) return Fail(policy.status(), flags);
  auto sync = SyncModeFromFlag(flags.GetString("sync"));
  if (!sync.ok()) return Fail(sync.status(), flags);
  if (flags.GetInt("ops-per-sec") < 0 || flags.GetInt("bytes-per-sec") < 0 ||
      flags.GetInt("max-pending") < 0) {
    return Fail(Status::InvalidArgument(
                    "--ops-per-sec, --bytes-per-sec and --max-pending must "
                    "be >= 0"),
                flags);
  }
  std::unordered_map<std::string, net::TenantQuota> tenant_quotas;
  if (!flags.GetString("tenant-quota").empty()) {
    auto parsed = ParseTenantQuotas(flags.GetString("tenant-quota"));
    if (!parsed.ok()) return Fail(parsed.status(), flags);
    tenant_quotas = *std::move(parsed);
  }

  lsm::Options opts;
  opts.num_shards = static_cast<int>(flags.GetInt("shards"));
  opts.buffer_entries = static_cast<uint64_t>(flags.GetInt("buffer-entries"));
  opts.size_ratio = static_cast<int>(flags.GetInt("size-ratio"));
  opts.policy = *policy;
  opts.filter_bits_per_entry = flags.GetDouble("bits-per-entry");
  opts.background_maintenance = true;
  opts.block_cache_bytes =
      static_cast<uint64_t>(flags.GetInt("cache-mb")) << 20;
  if (memory) {
    opts.backend = lsm::StorageBackend::kMemory;
  } else {
    opts.backend = lsm::StorageBackend::kFile;
    opts.storage_dir = dir;
    opts.durability = true;
    opts.wal_sync_mode = *sync;
  }

  auto db = lsm::ShardedDB::Open(opts);
  if (!db.ok()) return Fail(db.status(), flags);

  net::ServerOptions sopts;
  sopts.bind_address = flags.GetString("bind");
  sopts.port = static_cast<uint16_t>(flags.GetInt("port"));
  sopts.max_frame_payload =
      static_cast<uint32_t>(flags.GetInt("max-frame-mb")) << 20;
  sopts.drain_timeout_ms = static_cast<int>(flags.GetInt("drain-timeout-ms"));
  sopts.default_quota.ops_per_sec =
      static_cast<double>(flags.GetInt("ops-per-sec"));
  sopts.default_quota.bytes_per_sec =
      static_cast<double>(flags.GetInt("bytes-per-sec"));
  sopts.tenant_quotas = std::move(tenant_quotas);
  sopts.max_pending_per_tenant =
      static_cast<uint32_t>(flags.GetInt("max-pending"));
  auto server = net::Server::Start(db->get(), sopts);
  if (!server.ok()) return Fail(server.status(), flags);

  g_stop_serving.store(false);
  struct sigaction sa {};
  sa.sa_handler = HandleStopSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::printf("endure_server: serving %s on %s:%u (%d shards, %s)\n",
              memory ? "in-memory deployment" : dir.c_str(),
              sopts.bind_address.c_str(), (*server)->port(),
              opts.num_shards, memory ? "volatile" : "durable");
  std::fflush(stdout);

  using Clock = std::chrono::steady_clock;
  const int64_t run_seconds = flags.GetInt("exit-after-seconds");
  const auto deadline = Clock::now() + std::chrono::seconds(run_seconds);
  while (!g_stop_serving.load()) {
    if (run_seconds > 0 && Clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("endure_server: draining...\n");
  std::fflush(stdout);
  (*server)->Shutdown();
  const net::ServerCounters c = (*server)->counters();
  const Status drain = (*db)->Drain();
  std::printf("endure_server: served %llu requests over %llu connections "
              "(%llu puts coalesced into %llu group commits, "
              "%llu admission rejects)\n",
              static_cast<unsigned long long>(c.requests_served),
              static_cast<unsigned long long>(c.connections_accepted),
              static_cast<unsigned long long>(c.puts_coalesced),
              static_cast<unsigned long long>(c.coalesced_batches),
              static_cast<unsigned long long>(c.admission_rejects));
  if (!drain.ok()) {
    std::fprintf(stderr, "endure_server: drain: %s\n",
                 drain.ToString().c_str());
    return 1;
  }
  return 0;
}

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "endure — robust LSM-tree tuning (VLDB'22 reproduction)\n\n"
      "usage: endure <command> [flags]\n\n"
      "commands:\n"
      "  tune       compute a nominal (rho=0) or robust tuning\n"
      "  evaluate   cost a specific tuning on a workload\n"
      "  advise     recommend rho from workload history\n"
      "  simulate   run a tuning on the bundled LSM engine\n"
      "  serve      serve a deployment over TCP (see docs/server.md)\n"
      "  workloads  print the paper's Table 2\n\n"
      "run `endure <command> --help` conceptually: flags are printed on\n"
      "any flag error.\n");
  return 2;
}

}  // namespace

int Main(int argc, const char* const* argv) {
  if (argc < 2) return Usage();
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "tune") == 0) return CmdTune(argc, argv);
  if (std::strcmp(cmd, "evaluate") == 0) return CmdEvaluate(argc, argv);
  if (std::strcmp(cmd, "advise") == 0) return CmdAdvise(argc, argv);
  if (std::strcmp(cmd, "simulate") == 0) return CmdSimulate(argc, argv);
  if (std::strcmp(cmd, "serve") == 0) return RunServe(argc, argv, 2);
  if (std::strcmp(cmd, "workloads") == 0) return CmdWorkloads(argc, argv);
  std::fprintf(stderr, "error: unknown command '%s'\n\n", cmd);
  return Usage();
}

}  // namespace endure::cli
