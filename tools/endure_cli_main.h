// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// The endure_cli command dispatch, factored out of the binary so the
// regression tests can drive it in-process (exit codes and stderr are
// part of the CLI's contract: an unknown subcommand or a misspelled
// serve flag must fail loudly, never silently no-op).

#ifndef ENDURE_TOOLS_ENDURE_CLI_MAIN_H_
#define ENDURE_TOOLS_ENDURE_CLI_MAIN_H_

namespace endure::cli {

/// Full CLI entry point: dispatches argv[1] as the subcommand. Returns
/// the process exit code (0 success, 1 flag/runtime error, 2 usage).
int Main(int argc, const char* const* argv);

/// The `serve` subcommand body (flags parsed from argv[flag_start..)).
/// Shared by `endure_cli serve` and the standalone endure_server binary.
int RunServe(int argc, const char* const* argv, int flag_start);

}  // namespace endure::cli

#endif  // ENDURE_TOOLS_ENDURE_CLI_MAIN_H_
