// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Thin entry point for the endure CLI; the dispatch lives in
// endure_cli_main.cc so the regression tests can drive it in-process.

#include "endure_cli_main.h"

int main(int argc, char** argv) { return endure::cli::Main(argc, argv); }
