#!/usr/bin/env python3
"""Checks that intra-repo markdown links resolve.

Scans every tracked *.md file for [text](target) links and verifies that
relative targets (optionally with a #anchor) point at an existing file
or directory. External links (with a URL scheme) and pure-anchor links
are skipped; anchors within existing files are not validated. Exits
non-zero listing every broken link, so CI fails when docs rot.

Usage: tools/check_md_links.py [repo_root]
"""

import os
import re
import sys

# [text](target) — target must not start with a scheme or '#'. Images
# (![alt](...)) match the same pattern via their trailing part.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

SKIP_DIRS = {".git", "build", "build-tsan", "third_party"}


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if SCHEME_RE.match(target) or target.startswith("#"):
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path),
                                 target.split("#", 1)[0]))
                if not os.path.exists(resolved):
                    broken.append((lineno, target))
    return broken


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    failures = 0
    checked = 0
    for path in sorted(md_files(root)):
        checked += 1
        for lineno, target in check_file(path, root):
            rel = os.path.relpath(path, root)
            print(f"BROKEN {rel}:{lineno}: ({target})")
            failures += 1
    print(f"checked {checked} markdown files, {failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
