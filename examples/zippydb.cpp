// Tuning for a production-like workload: ZippyDB (Facebook's distributed
// KV store on RocksDB) serves ~78% gets, 19% writes and 3% range reads
// (Cao et al., FAST'20 — cited in Section 6 of the paper). This example
// tunes for that expectation, stresses the tuning with shifted sessions on
// the bundled engine, and shows the robust tuning's consistency.

#include <cstdio>

#include "bridge/experiment.h"
#include "util/env.h"
#include "util/table_printer.h"

int main() {
  using namespace endure;

  SystemConfig cfg;
  CostModel model(cfg);

  // 78% gets split between hits and misses, 3% scans, 19% writes.
  const Workload zippy(0.39, 0.39, 0.03, 0.19);

  NominalTuner nominal(model);
  RobustTuner robust(model);
  const Tuning phi_n = nominal.Tune(zippy).tuning;
  const double rho = 0.5;  // moderate drift expected across tenants
  const Tuning phi_r = robust.Tune(zippy, rho).tuning;

  std::printf("ZippyDB-like expected workload %s\n", zippy.ToString().c_str());
  std::printf("  nominal: %s\n  robust (rho=%.2f): %s\n\n",
              phi_n.ToString().c_str(), rho, phi_r.ToString().c_str());

  bridge::ExperimentOptions eopts;
  eopts.actual_entries =
      static_cast<uint64_t>(GetEnvInt("ENDURE_N", 50000));
  eopts.queries_per_workload =
      static_cast<uint64_t>(GetEnvInt("ENDURE_QUERIES", 1500));
  bridge::ExperimentRunner runner(cfg, eopts);

  Rng rng(2024);
  workload::SessionOptions sopts;
  sopts.workloads_per_session = 3;
  workload::SessionGenerator gen(zippy, &rng, sopts);
  const std::vector<workload::Session> sessions = gen.MixedSequence();

  const auto rn = runner.Run(phi_n, sessions);
  const auto rr = runner.Run(phi_r, sessions);

  TablePrinter table({"session", "avg workload", "nominal I/O", "robust I/O",
                      "nominal us/q", "robust us/q"});
  double nominal_total = 0.0, robust_total = 0.0;
  for (size_t i = 0; i < sessions.size(); ++i) {
    nominal_total += rn[i].measured_io_per_query;
    robust_total += rr[i].measured_io_per_query;
    table.AddRow({workload::SessionKindName(sessions[i].kind),
                  rn[i].average.ToString(),
                  TablePrinter::Fmt(rn[i].measured_io_per_query, 2),
                  TablePrinter::Fmt(rr[i].measured_io_per_query, 2),
                  TablePrinter::Fmt(rn[i].latency_us_per_query, 1),
                  TablePrinter::Fmt(rr[i].latency_us_per_query, 1)});
  }
  table.Print();
  std::printf("\nTotal measured I/O per query: nominal %.2f vs robust %.2f\n",
              nominal_total / sessions.size(),
              robust_total / sessions.size());
  return 0;
}
