// Tuning for a production-like workload: ZippyDB (Facebook's distributed
// KV store on RocksDB) serves ~78% gets, 19% writes and 3% range reads
// (Cao et al., FAST'20 — cited in Section 6 of the paper). This example
// tunes for that expectation, stresses the tuning with shifted sessions on
// the bundled engine, shows the robust tuning's consistency, and finally
// deploys the robust tuning on a sharded engine serving the same mix from
// several client threads at once — ZippyDB is, after all, a concurrent
// multi-tenant store.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bridge/experiment.h"
#include "bridge/tuned_db.h"
#include "util/env.h"
#include "util/table_printer.h"

int main() {
  using namespace endure;

  SystemConfig cfg;
  CostModel model(cfg);

  // 78% gets split between hits and misses, 3% scans, 19% writes.
  const Workload zippy(0.39, 0.39, 0.03, 0.19);

  NominalTuner nominal(model);
  RobustTuner robust(model);
  const Tuning phi_n = nominal.Tune(zippy).tuning;
  const double rho = 0.5;  // moderate drift expected across tenants
  const Tuning phi_r = robust.Tune(zippy, rho).tuning;

  std::printf("ZippyDB-like expected workload %s\n", zippy.ToString().c_str());
  std::printf("  nominal: %s\n  robust (rho=%.2f): %s\n\n",
              phi_n.ToString().c_str(), rho, phi_r.ToString().c_str());

  bridge::ExperimentOptions eopts;
  eopts.actual_entries =
      static_cast<uint64_t>(GetEnvInt("ENDURE_N", 50000));
  eopts.queries_per_workload =
      static_cast<uint64_t>(GetEnvInt("ENDURE_QUERIES", 1500));
  bridge::ExperimentRunner runner(cfg, eopts);

  Rng rng(2024);
  workload::SessionOptions sopts;
  sopts.workloads_per_session = 3;
  workload::SessionGenerator gen(zippy, &rng, sopts);
  const std::vector<workload::Session> sessions = gen.MixedSequence();

  const auto rn = runner.Run(phi_n, sessions);
  const auto rr = runner.Run(phi_r, sessions);

  TablePrinter table({"session", "avg workload", "nominal I/O", "robust I/O",
                      "nominal us/q", "robust us/q"});
  double nominal_total = 0.0, robust_total = 0.0;
  for (size_t i = 0; i < sessions.size(); ++i) {
    nominal_total += rn[i].measured_io_per_query;
    robust_total += rr[i].measured_io_per_query;
    table.AddRow({workload::SessionKindName(sessions[i].kind),
                  rn[i].average.ToString(),
                  TablePrinter::Fmt(rn[i].measured_io_per_query, 2),
                  TablePrinter::Fmt(rr[i].measured_io_per_query, 2),
                  TablePrinter::Fmt(rn[i].latency_us_per_query, 1),
                  TablePrinter::Fmt(rr[i].latency_us_per_query, 1)});
  }
  table.Print();
  std::printf("\nTotal measured I/O per query: nominal %.2f vs robust %.2f\n",
              nominal_total / sessions.size(),
              robust_total / sessions.size());

  // --- serve the mix concurrently from a sharded deployment ---
  // The serving deployment reads through the lock-free snapshot path
  // with the shared block cache on (2 MiB inside an 8 MiB global memory
  // budget, so the arbiter shifts bytes between buffers and cache as the
  // 78/19/3 mix plays out).
  const int num_shards = static_cast<int>(GetEnvInt("ENDURE_SHARDS", 4));
  const int num_clients = static_cast<int>(GetEnvInt("ENDURE_CLIENTS", 4));
  const uint64_t ops_per_client = eopts.queries_per_workload * 4;
  auto sharded =
      bridge::OpenTunedShardedDb(
          cfg, phi_r, eopts.actual_entries, num_shards,
          /*background_maintenance=*/true, lsm::StorageBackend::kMemory,
          /*durable_dir=*/"", WalSyncMode::kBackground,
          /*block_cache_bytes=*/2 * 1024 * 1024,
          /*memory_budget_bytes=*/8 * 1024 * 1024)
          .value();
  std::atomic<uint64_t> hits{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      Rng thread_rng(7000 + c);
      const uint64_t n = eopts.actual_entries;
      uint64_t local_hits = 0;
      for (uint64_t i = 0; i < ops_per_client; ++i) {
        const double r = thread_rng.NextDouble();
        const lsm::Key k = 2 * thread_rng.UniformInt(0, n - 1);
        if (r < 0.39) {
          local_hits += sharded->Get(k).has_value();          // z1 hit
        } else if (r < 0.78) {
          local_hits += sharded->Get(k + 1).has_value();      // z0 miss
        } else if (r < 0.81) {
          local_hits += sharded->Scan(k, k + 32).value().size() > 0;  // range
        } else {
          sharded->Put(k, i);                                 // write
        }
      }
      hits.fetch_add(local_hits);
    });
  }
  for (auto& c : clients) c.join();
  sharded->WaitForMaintenance();
  const double secs = std::chrono::duration_cast<
      std::chrono::duration<double>>(std::chrono::steady_clock::now() - start)
      .count();
  const uint64_t total_ops = ops_per_client * num_clients;
  const lsm::Statistics served = sharded->TotalStats();
  std::printf(
      "\nServed ZippyDB mix from %d shards x %d client threads: "
      "%llu ops in %.2fs (%.0f ops/s), %.1f%% reads answered, "
      "%.2f pages read/query, %llu background flushes\n",
      num_shards, num_clients, static_cast<unsigned long long>(total_ops),
      secs, static_cast<double>(total_ops) / secs,
      100.0 * static_cast<double>(hits.load()) /
          static_cast<double>(served.gets + served.range_queries),
      static_cast<double>(served.pages_read) /
          static_cast<double>(served.gets + served.range_queries),
      static_cast<unsigned long long>(served.flushes));
  const uint64_t cache_probes = served.cache_hits + served.cache_misses;
  std::printf(
      "Read path: %llu snapshot acquires (no shard locks), block cache "
      "%.1f%% hit ratio (%llu hits / %llu misses), %llu arbiter shifts\n",
      static_cast<unsigned long long>(served.snapshot_acquires),
      cache_probes > 0
          ? 100.0 * static_cast<double>(served.cache_hits) /
                static_cast<double>(cache_probes)
          : 0.0,
      static_cast<unsigned long long>(served.cache_hits),
      static_cast<unsigned long long>(served.cache_misses),
      static_cast<unsigned long long>(served.arbiter_shifts));
  return 0;
}
