// Reproduces the paper's motivating example (Figure 1) on the bundled LSM
// engine: a system tuned for the expected workload suffers ~2x more I/Os
// when the observed mix shifts toward range queries, while a "perfect"
// per-session tuning stays flat.
//
// Session 1: expected mix  (reads 40%, ranges 6%, writes 54%)
// Session 2: uncertain mix (reads  4%, ranges 41%, writes 55%)
// Session 3: expected mix again

#include <cstdio>

#include "bridge/experiment.h"
#include "util/env.h"
#include "util/table_printer.h"

int main() {
  using namespace endure;

  SystemConfig cfg;
  CostModel model(cfg);
  NominalTuner tuner(model);

  const Workload expected(0.20, 0.20, 0.06, 0.54);
  const Workload uncertain(0.02, 0.02, 0.41, 0.55);
  const Workload sessions[3] = {expected, uncertain, expected};

  // "Expected tuning": tuned once for the expected mix. "Perfect tuning":
  // retuned for whatever each session actually serves.
  const Tuning expected_tuning = tuner.Tune(expected).tuning;

  bridge::ExperimentOptions eopts;
  eopts.actual_entries =
      static_cast<uint64_t>(GetEnvInt("ENDURE_N", 50000));
  eopts.queries_per_workload =
      static_cast<uint64_t>(GetEnvInt("ENDURE_QUERIES", 2000));
  bridge::ExperimentRunner runner(cfg, eopts);

  std::printf("Figure 1 motivating example (N=%llu, %llu queries/session)\n",
              static_cast<unsigned long long>(eopts.actual_entries),
              static_cast<unsigned long long>(eopts.queries_per_workload));
  std::printf("Expected tuning: %s\n\n", expected_tuning.ToString().c_str());

  TablePrinter table({"session", "workload", "expected-tuning I/O",
                      "perfect-tuning I/O"});
  for (int s = 0; s < 3; ++s) {
    const Tuning perfect = tuner.Tune(sessions[s]).tuning;
    workload::Session session;
    session.kind = workload::SessionKind::kExpected;
    session.workloads = {sessions[s]};

    const auto expected_run = runner.Run(expected_tuning, {session});
    const auto perfect_run = runner.Run(perfect, {session});
    table.AddRow({std::to_string(s + 1), sessions[s].ToString(),
                  TablePrinter::Fmt(expected_run[0].measured_io_per_query, 2),
                  TablePrinter::Fmt(perfect_run[0].measured_io_per_query, 2)});
  }
  table.Print();
  std::printf(
      "\nThe middle session shows the Figure 1 effect: the static tuning\n"
      "pays roughly twice the I/Os of a per-session perfect tuning.\n");
  return 0;
}
