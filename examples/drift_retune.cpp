// Closing the loop: drift monitoring + robust retuning on a LIVE engine.
//
// The paper argues tunings cannot chase every workload change (retuning
// moves memory and reshapes the tree), so it recommends robust tunings
// sized by historical drift (Section 7.3). This example runs that
// playbook end to end on a serving system: a TuningPipeline watches the
// executed mix on a sharded, background-maintained deployment; when the
// observed workload leaves the tuned ball for several consecutive
// epochs, it recomputes a robust tuning centered on the window mean and
// applies it IN PLACE — no rebuild, no downtime. The epochs after the
// retune show the measured I/O recovering while the migration (tracked
// by per-run tuning epochs) converges in the background.

#include <cstdio>

#include "bridge/pipeline.h"
#include "util/env.h"
#include "workload/query_generator.h"

using namespace endure;

namespace {

// Executes one epoch of `mix` against the serving DB, feeding the
// pipeline's monitor (when given — the rebuilt baseline below runs with
// no pipeline so its traffic cannot pollute the live system's drift
// state), and returns measured I/Os per query.
double RunEpoch(lsm::ShardedDB* db, const Workload& mix, uint64_t ops,
                workload::KeyUniverse* universe, Rng* rng,
                bridge::TuningPipeline* pipeline) {
  workload::QueryTrace trace =
      workload::GenerateTrace(mix, ops, universe, rng);
  const lsm::Statistics before = db->TotalStats();
  for (const workload::Operation& op : trace.ops) {
    switch (op.type) {
      case kEmptyPointQuery:
      case kNonEmptyPointQuery:
        db->Get(op.key);
        break;
      case kRangeQuery:
        (void)db->Scan(op.key, op.limit);
        break;
      case kWrite:
        db->Put(op.key, op.key);
        break;
    }
    if (pipeline != nullptr) pipeline->RecordOperation(op.type);
  }
  const lsm::Statistics d = db->TotalStats().Delta(before);
  const double write_io =
      static_cast<double>(d.compaction_pages_read +
                          d.compaction_pages_written +
                          d.flush_pages_written);
  return (static_cast<double>(d.point_pages_read + d.range_pages_read) +
          write_io) /
         static_cast<double>(trace.ops.size());
}

}  // namespace

int main() {
  SystemConfig cfg;

  const uint64_t n = static_cast<uint64_t>(GetEnvInt("ENDURE_N", 30000));
  const uint64_t epoch_ops =
      static_cast<uint64_t>(GetEnvInt("ENDURE_QUERIES", 2000));

  Workload expected(0.33, 0.33, 0.33, 0.01);
  bridge::PipelineOptions popts;
  popts.monitor.ops_per_epoch = epoch_ops;
  popts.monitor.alarm_patience = 2;
  bridge::TuningPipeline pipeline(cfg, expected, 0.25, popts);
  std::printf("initial tuning for %s (rho=%.2f): %s\n\n",
              expected.ToString().c_str(), pipeline.rho(),
              pipeline.current_tuning().ToString().c_str());

  // The serving deployment reads through the lock-free snapshot path with
  // the shared block cache inside a global memory budget; the arbiter
  // re-splits that budget as the mix drifts toward writes, and the knobs
  // survive the live retune (ApplyTuning carries them unchanged).
  constexpr uint64_t kCacheBytes = 1 * 1024 * 1024;
  constexpr uint64_t kBudgetBytes = 4 * 1024 * 1024;
  auto db = bridge::OpenTunedShardedDb(
                cfg, pipeline.current_tuning(), n,
                /*num_shards=*/4, /*background_maintenance=*/true,
                lsm::StorageBackend::kMemory, /*durable_dir=*/"",
                WalSyncMode::kBackground, kCacheBytes, kBudgetBytes)
                .value();
  workload::KeyUniverse universe(n);
  Rng rng(4242);

  // Phase 1: on-expectation epochs; phase 2: the workload silently shifts
  // toward writes + scans.
  const Workload shifted(0.10, 0.10, 0.30, 0.50);
  std::printf("%-6s %-22s %-10s %-8s %-10s %s\n", "epoch", "mix",
              "I/O per q", "KL", "migrated", "alarm");
  for (int epoch = 0; epoch < 12; ++epoch) {
    const Workload mix = epoch < 4 ? expected : shifted;
    const double io = RunEpoch(db.get(), mix, epoch_ops, &universe, &rng,
                               &pipeline);
    const lsm::MigrationProgress progress = db->Progress();
    char migrated[16];
    std::snprintf(migrated, sizeof(migrated), "%.0f%%",
                  100.0 * progress.entries_current_fraction());
    std::printf("%-6d %-22s %-10.2f %-8.2f %-10s %s\n", epoch,
                mix.ToString().c_str(), io,
                pipeline.monitor().LastEpochDivergence(), migrated,
                pipeline.RetuneRecommended() ? "DRIFT" : "");

    if (pipeline.RetuneRecommended() && pipeline.retune_count() == 0) {
      // Live apply: the recommendation lands on the serving system.
      // Writes keep flowing and reads keep being served; size-ratio and
      // policy changes migrate level by level on the maintenance pool,
      // and resident runs keep their Bloom filters until a compaction
      // rebuilds them under the new budget ("migrated" above tracks the
      // entry mass already under the new tuning).
      auto applied = pipeline.RetuneAndApply(db.get(), n);
      if (!applied.ok()) {
        std::printf("apply failed: %s\n",
                    applied.status().ToString().c_str());
        return 1;
      }
      std::printf("  -> retuned for %s (rho=%.2f): %s (applied live)\n",
                  pipeline.tuned_for().ToString().c_str(), pipeline.rho(),
                  applied.value().tuning.ToString().c_str());
    }
  }
  // The receipts: once the background migration has converged, the live-
  // retuned system should serve the shifted mix as cheaply as a rebuilt
  // deployment of the same tuning - without ever having stopped serving.
  // The rebuild baseline is opened fresh and then serves the same number
  // of post-retune epochs, so both trees are in serving shape (a
  // just-bulk-loaded tree is artificially settled: mass at the bottom,
  // empty shallow levels) when the comparison epochs run.
  db->WaitForMaintenance();
  const uint64_t count_at_compare = universe.count();
  double live_io = 0.0;
  for (int i = 0; i < 2; ++i) {
    live_io += RunEpoch(db.get(), shifted, epoch_ops, &universe, &rng,
                        &pipeline);
  }
  live_io /= 2.0;

  auto fresh = bridge::OpenTunedShardedDb(
                   cfg, pipeline.current_tuning(), count_at_compare,
                   /*num_shards=*/4, /*background_maintenance=*/true,
                   lsm::StorageBackend::kMemory, /*durable_dir=*/"",
                   WalSyncMode::kBackground, kCacheBytes, kBudgetBytes)
                   .value();
  workload::KeyUniverse fresh_universe(count_at_compare);
  Rng fresh_rng(4242);
  for (int i = 0; i < 8; ++i) {  // same post-retune service history
    RunEpoch(fresh.get(), shifted, epoch_ops, &fresh_universe, &fresh_rng,
             /*pipeline=*/nullptr);
  }
  fresh->WaitForMaintenance();
  double rebuilt_io = 0.0;
  for (int i = 0; i < 2; ++i) {
    rebuilt_io += RunEpoch(fresh.get(), shifted, epoch_ops,
                           &fresh_universe, &fresh_rng,
                           /*pipeline=*/nullptr);
  }
  rebuilt_io /= 2.0;

  std::printf(
      "\nconverged live-retuned system: %.2f I/Os per query\n"
      "rebuilt-and-served baseline:   %.2f I/Os per query\n"
      "-> live apply lands at %.0f%% of the rebuild's cost without ever\n"
      "   taking the system offline (the Section 7.3 playbook, no rebuild).\n",
      live_io, rebuilt_io,
      rebuilt_io > 0 ? 100.0 * live_io / rebuilt_io : 0.0);
  const lsm::Statistics stats = db->TotalStats();
  const uint64_t probes = stats.cache_hits + stats.cache_misses;
  std::printf(
      "\nlive system read path: %llu snapshot acquires, block cache "
      "%.1f%% hit ratio (%llu hits / %llu misses), %llu arbiter shifts\n",
      static_cast<unsigned long long>(stats.snapshot_acquires),
      probes > 0 ? 100.0 * static_cast<double>(stats.cache_hits) /
                       static_cast<double>(probes)
                 : 0.0,
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.arbiter_shifts));
  return 0;
}
