// Closing the loop: drift monitoring + robust retuning on a live engine.
//
// The paper argues tunings cannot chase every workload change (retuning
// moves memory and reshapes the tree), so it recommends robust tunings
// sized by historical drift (Section 7.3). This example runs that
// playbook: a DriftMonitor watches the executed mix; when the observed
// workload leaves the tuned ball for several consecutive epochs, we
// recompute a robust tuning centered on the window mean with the
// recommended rho, rebuild, and show the measured I/O recovering.

#include <cstdio>

#include "bridge/experiment.h"
#include "util/env.h"
#include "workload/drift.h"

using namespace endure;

namespace {

// Executes one epoch of `mix` against the DB, feeding the monitor, and
// returns measured I/Os per query.
double RunEpoch(lsm::DB* db, const Workload& mix, uint64_t ops,
                workload::KeyUniverse* universe, Rng* rng,
                workload::DriftMonitor* monitor) {
  workload::QueryTrace trace =
      workload::GenerateTrace(mix, ops, universe, rng);
  const lsm::Statistics before = db->stats();
  for (const workload::Operation& op : trace.ops) {
    switch (op.type) {
      case kEmptyPointQuery:
      case kNonEmptyPointQuery:
        db->Get(op.key);
        break;
      case kRangeQuery:
        db->Scan(op.key, op.limit);
        break;
      case kWrite:
        db->Put(op.key, op.key);
        break;
    }
    monitor->Record(op.type);
  }
  const lsm::Statistics d = db->stats().Delta(before);
  const double write_io =
      static_cast<double>(d.compaction_pages_read +
                          d.compaction_pages_written +
                          d.flush_pages_written);
  return (static_cast<double>(d.point_pages_read + d.range_pages_read) +
          write_io) /
         static_cast<double>(trace.ops.size());
}

}  // namespace

int main() {
  SystemConfig cfg;
  CostModel model(cfg);
  RobustTuner tuner(model);

  const uint64_t n = static_cast<uint64_t>(GetEnvInt("ENDURE_N", 30000));
  const uint64_t epoch_ops =
      static_cast<uint64_t>(GetEnvInt("ENDURE_QUERIES", 2000));

  Workload expected(0.33, 0.33, 0.33, 0.01);
  double rho = 0.25;
  Tuning tuning = tuner.Tune(expected, rho).tuning;
  std::printf("initial tuning for %s (rho=%.2f): %s\n\n",
              expected.ToString().c_str(), rho, tuning.ToString().c_str());

  auto db = bridge::OpenTunedDb(cfg, tuning, n).value();
  workload::KeyUniverse universe(n);
  Rng rng(4242);
  workload::DriftMonitorOptions mopts;
  mopts.ops_per_epoch = epoch_ops;
  mopts.alarm_patience = 2;
  workload::DriftMonitor monitor(expected, rho, mopts);

  // Phase 1: on-expectation epochs; phase 2: the workload silently shifts
  // toward writes + scans.
  const Workload shifted(0.10, 0.10, 0.30, 0.50);
  std::printf("%-6s %-22s %-10s %-8s %s\n", "epoch", "mix", "I/O per q",
              "KL", "alarm");
  int retunes = 0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    const Workload mix = epoch < 4 ? expected : shifted;
    const double io =
        RunEpoch(db.get(), mix, epoch_ops, &universe, &rng, &monitor);
    std::printf("%-6d %-22s %-10.2f %-8.2f %s\n", epoch,
                mix.ToString().c_str(), io, monitor.LastEpochDivergence(),
                monitor.DriftAlarm() ? "DRIFT" : "");

    if (monitor.DriftAlarm() && retunes == 0) {
      const Workload recentered = monitor.WindowMean();
      rho = std::max(0.1, monitor.RecommendedRho());
      tuning = tuner.Tune(recentered, rho).tuning;
      monitor.Retarget(recentered, rho);
      ++retunes;
      std::printf("  -> retuned for %s (rho=%.2f): %s (rebuilding)\n",
                  recentered.ToString().c_str(), rho,
                  tuning.ToString().c_str());
      db = bridge::OpenTunedDb(cfg, tuning, universe.count()).value();
      universe = workload::KeyUniverse(universe.count());
    }
  }
  std::printf(
      "\nAfter the retune the measured I/O per query under the shifted mix\n"
      "drops back toward the robust optimum - the Section 7.3 playbook.\n");
  return 0;
}
