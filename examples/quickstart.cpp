// Quickstart: tune an LSM tree with Endure in a dozen lines.
//
// Scenario: you expect a mixed read-heavy workload but operate in the
// cloud, where tenant churn makes the mix uncertain. Endure recommends a
// tuning that maximizes worst-case throughput over a KL-divergence ball
// around your expectation.

#include <cstdio>
#include <utility>

#include "core/endure.h"
#include "lsm/db.h"

int main() {
  using namespace endure;

  // 1. Describe the environment (defaults: 10M x 1KB entries, 4KB pages,
  //    10 bits/entry of memory, short range scans).
  SystemConfig cfg;
  CostModel model(cfg);

  // 2. Describe the expected workload: 33% empty reads, 33% non-empty
  //    reads, 33% short scans, 1% writes (the paper's w11).
  Workload expected(0.33, 0.33, 0.33, 0.01);

  // 3. Classical (nominal) tuning: best if the expectation is exact.
  NominalTuner nominal(model);
  TuningResult nom = nominal.Tune(expected);
  std::printf("Nominal tuning : %s  (expected cost %.3f I/Os per op)\n",
              nom.tuning.ToString().c_str(), nom.objective);

  // 4. Robust tuning: best worst-case over workloads within KL <= rho.
  RobustTuner robust(model);
  const double rho = 1.0;
  TuningResult rob = robust.Tune(expected, rho);
  std::printf("Robust tuning  : %s  (worst-case cost %.3f I/Os per op)\n",
              rob.tuning.ToString().c_str(), rob.objective);

  // 5. Compare the two on a surprise workload: writes jumped to 30%.
  Workload observed(0.2, 0.2, 0.3, 0.3);
  const double delta = DeltaThroughput(model, observed, nom.tuning,
                                       rob.tuning);
  std::printf(
      "\nObserved workload %s:\n"
      "  nominal cost  %.3f I/Os per op\n"
      "  robust cost   %.3f I/Os per op\n"
      "  robust tuning delivers %+.0f%% throughput\n",
      observed.ToString().c_str(), model.Cost(observed, nom.tuning),
      model.Cost(observed, rob.tuning), delta * 100.0);

  // 6. The inner solution also tells you which workload the robust tuning
  //    is defending against.
  DualSolution inner = robust.SolveInner(expected, rho, rob.tuning);
  std::printf("Worst-case workload inside the rho=%.1f ball: %s\n", rho,
              inner.worst_case.ToString().c_str());

  // 7. Deployments are durable: open a crash-safe DB, write, close, and
  //    reopen — the data (and, in general, an applied tuning) survive
  //    the restart. See docs/durability.md for the guarantees.
  lsm::Options opts;
  opts.backend = lsm::StorageBackend::kFile;
  opts.storage_dir = "/tmp/endure_quickstart_db";
  opts.durability = true;
  {
    auto db = std::move(lsm::DB::Open(opts)).value();
    for (lsm::Key k = 0; k < 1000; ++k) db->Put(k, k * 2);
  }  // clean close: the WAL is synced whatever the sync mode
  auto reopened = std::move(lsm::DB::Open(opts)).value();
  std::printf("\nReopened durable DB: %llu entries recovered, Get(7) = %llu\n",
              static_cast<unsigned long long>(reopened->tree().TotalEntries()),
              static_cast<unsigned long long>(*reopened->Get(7)));
  return 0;
}
