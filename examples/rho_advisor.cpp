// Choosing the uncertainty radius rho from history (Section 7.3): the
// paper advises using the mean KL-divergence between historically observed
// workloads. This example simulates a month of drifting daily workloads,
// estimates rho, and compares the resulting robust tuning against both the
// nominal tuning and over/under-estimated radii.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/endure.h"
#include "util/random.h"
#include "util/table_printer.h"

int main() {
  using namespace endure;

  SystemConfig cfg;
  CostModel model(cfg);
  Rng rng(7);

  // Simulated history: a read-mostly service whose scan and write shares
  // wander day to day (logistic-normal drift around a base mix).
  const Workload base(0.35, 0.35, 0.10, 0.20);
  std::vector<Workload> history;
  for (int day = 0; day < 30; ++day) {
    Workload w;
    double sum = 0.0;
    for (int i = 0; i < kNumQueryClasses; ++i) {
      w[i] = base[i] * std::exp(0.45 * rng.Gaussian());
      sum += w[i];
    }
    for (int i = 0; i < kNumQueryClasses; ++i) w[i] /= sum;
    history.push_back(w);
  }

  const Workload expected = MeanWorkload(history);
  const RhoEstimate est = EstimateRho(history, expected);
  std::printf("History of %zu workloads. Estimated radii:\n",
              history.size());
  std::printf("  mean pairwise KL  : %.3f  (the paper's recommendation)\n",
              est.mean_pairwise);
  std::printf("  mean KL to mean   : %.3f\n", est.mean_to_expected);
  std::printf("  p90 KL to mean    : %.3f\n", est.p90_to_expected);
  std::printf("  max KL to mean    : %.3f\n\n", est.max_to_expected);

  NominalTuner nominal(model);
  RobustTuner robust(model);
  const Tuning phi_n = nominal.Tune(expected).tuning;

  // Evaluate candidate radii by the average cost over the history — the
  // day-to-day workloads the system will actually serve.
  TablePrinter table({"tuning", "T", "h", "policy", "avg cost on history",
                      "worst cost on history"});
  auto evaluate = [&](const char* name, const Tuning& t) {
    double total = 0.0, worst = 0.0;
    for (const Workload& w : history) {
      const double c = model.Cost(w, t);
      total += c;
      worst = std::max(worst, c);
    }
    table.AddRow({name, TablePrinter::Fmt(t.size_ratio, 1),
                  TablePrinter::Fmt(t.filter_bits_per_entry, 1),
                  PolicyName(t.policy),
                  TablePrinter::Fmt(total / history.size(), 3),
                  TablePrinter::Fmt(worst, 3)});
  };

  evaluate("nominal", phi_n);
  evaluate("robust rho=0.05 (too small)",
           robust.Tune(expected, 0.05).tuning);
  evaluate("robust rho=advised", robust.Tune(expected,
                                             est.mean_pairwise).tuning);
  evaluate("robust rho=4.0 (too large)", robust.Tune(expected, 4.0).tuning);
  table.Print();

  std::printf(
      "\nThe advised radius should give the best or near-best worst-case\n"
      "cost without sacrificing much average cost - the paper's guidance\n"
      "in action.\n");
  return 0;
}
