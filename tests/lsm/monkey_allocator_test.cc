#include "lsm/monkey_allocator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/cost_model.h"

namespace endure::lsm {
namespace {

TEST(MonkeyAllocatorTest, DeeperLevelsGetFewerBits) {
  MonkeyAllocator a(8.0, 10, 4, FilterAllocation::kMonkey);
  for (int i = 1; i < 4; ++i) {
    EXPECT_GE(a.BitsPerEntry(i), a.BitsPerEntry(i + 1));
  }
}

TEST(MonkeyAllocatorTest, FprIncreasesWithDepth) {
  MonkeyAllocator a(8.0, 10, 4, FilterAllocation::kMonkey);
  for (int i = 1; i < 4; ++i) {
    EXPECT_LE(a.FalsePositiveRate(i), a.FalsePositiveRate(i + 1));
  }
}

TEST(MonkeyAllocatorTest, FprsAreValidProbabilities) {
  for (int T : {2, 5, 20, 100}) {
    for (double h : {0.0, 1.0, 5.0, 10.0}) {
      MonkeyAllocator a(h, T, 5, FilterAllocation::kMonkey);
      for (int i = 1; i <= 5; ++i) {
        EXPECT_GE(a.FalsePositiveRate(i), 0.0);
        EXPECT_LE(a.FalsePositiveRate(i), 1.0);
        EXPECT_GE(a.BitsPerEntry(i), 0.0);
      }
    }
  }
}

TEST(MonkeyAllocatorTest, UniformModeGivesEqualBits) {
  MonkeyAllocator a(6.0, 10, 4, FilterAllocation::kUniform);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_DOUBLE_EQ(a.BitsPerEntry(i), 6.0);
    EXPECT_NEAR(a.FalsePositiveRate(i),
                std::exp(-6.0 * std::log(2.0) * std::log(2.0)), 1e-12);
  }
}

TEST(MonkeyAllocatorTest, ZeroBudgetSaturatesDeepestLevel) {
  // At h = 0 the deepest level's optimal FPR clamps at 1 (T^{1/(T-1)} > 1)
  // and it gets no filter memory; shallower levels keep small FPRs because
  // they hold exponentially fewer entries.
  MonkeyAllocator a(0.0, 10, 3, FilterAllocation::kMonkey);
  EXPECT_DOUBLE_EQ(a.FalsePositiveRate(3), 1.0);
  EXPECT_DOUBLE_EQ(a.BitsPerEntry(3), 0.0);
  EXPECT_LT(a.FalsePositiveRate(1), a.FalsePositiveRate(3));
  EXPECT_GT(a.BitsPerEntry(1), 0.0);
}

TEST(MonkeyAllocatorTest, MatchesCostModelEq11) {
  // The engine-side allocator and the model-side Eq. (11) must agree.
  SystemConfig cfg;
  cfg.level_policy = LevelPolicy::kInteger;
  CostModel model(cfg);
  Tuning t(Policy::kLeveling, 10.0, 5.0);
  const int L = model.Levels(t);
  MonkeyAllocator a(5.0, 10, L, FilterAllocation::kMonkey);
  for (int i = 1; i <= L; ++i) {
    EXPECT_NEAR(a.FalsePositiveRate(i), model.FalsePositiveRate(t, i),
                1e-9);
  }
}

TEST(MonkeyAllocatorTest, BitsAndFprConsistent) {
  MonkeyAllocator a(7.0, 8, 4, FilterAllocation::kMonkey);
  const double ln2sq = std::log(2.0) * std::log(2.0);
  for (int i = 1; i <= 4; ++i) {
    const double f = a.FalsePositiveRate(i);
    if (f < 1.0) {
      EXPECT_NEAR(a.BitsPerEntry(i), -std::log(f) / ln2sq, 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(a.BitsPerEntry(i), 0.0);
    }
  }
}

TEST(MonkeyAllocatorTest, SingleLevelTree) {
  MonkeyAllocator a(5.0, 4, 1, FilterAllocation::kMonkey);
  EXPECT_GT(a.BitsPerEntry(1), 0.0);
  EXPECT_LT(a.FalsePositiveRate(1), 1.0);
}

}  // namespace
}  // namespace endure::lsm
