// Unit tests for the shared block cache and the memory-arbitration
// policy: lookup/admission/eviction semantics, segment erasure, live
// capacity retargeting, the pure ArbitrateMemory split, and the
// engine-level knobs (Options validation, enable-after-open rule,
// arbiter-driven buffer retargeting).

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "lsm/block_cache.h"
#include "lsm/db.h"
#include "lsm/sharded_db.h"
#include "lsm/statistics.h"

namespace endure::lsm {
namespace {

std::vector<Entry> MakePage(Key base, size_t count) {
  std::vector<Entry> page;
  page.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    page.push_back(Entry{base + i, /*seq=*/1, base + i + 100,
                         EntryType::kValue});
  }
  return page;
}

TEST(BlockCacheTest, LookupMissThenHitCopiesOut) {
  BlockCache cache(/*capacity_bytes=*/1 << 20);
  const uint64_t store = cache.RegisterStore();
  PageBuffer buf;
  EXPECT_FALSE(cache.Lookup(store, /*segment=*/7, /*page_idx=*/0, &buf));

  const std::vector<Entry> page = MakePage(10, 4);
  cache.Insert(store, 7, 0, page.data(), page.size(), nullptr);
  ASSERT_TRUE(cache.Lookup(store, 7, 0, &buf));
  ASSERT_EQ(buf.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(buf[i].key, page[i].key);
    EXPECT_EQ(buf[i].value, page[i].value);
  }
  EXPECT_EQ(cache.usage(), 4 * sizeof(Entry));
}

TEST(BlockCacheTest, StoresAreIsolatedBySegmentKey) {
  // Two stores may reuse the same SegmentId; the registered store id
  // keeps their pages apart.
  BlockCache cache(1 << 20);
  const uint64_t a = cache.RegisterStore();
  const uint64_t b = cache.RegisterStore();
  ASSERT_NE(a, b);
  const std::vector<Entry> page_a = MakePage(0, 2);
  const std::vector<Entry> page_b = MakePage(50, 3);
  cache.Insert(a, /*segment=*/1, /*page_idx=*/0, page_a.data(), 2, nullptr);
  cache.Insert(b, /*segment=*/1, /*page_idx=*/0, page_b.data(), 3, nullptr);
  PageBuffer buf;
  ASSERT_TRUE(cache.Lookup(a, 1, 0, &buf));
  EXPECT_EQ(buf.size(), 2u);
  ASSERT_TRUE(cache.Lookup(b, 1, 0, &buf));
  EXPECT_EQ(buf.size(), 3u);
}

TEST(BlockCacheTest, EraseSegmentDropsAllItsPages) {
  BlockCache cache(1 << 20);
  const uint64_t store = cache.RegisterStore();
  const std::vector<Entry> page = MakePage(0, 4);
  for (uint64_t p = 0; p < 8; ++p) {
    cache.Insert(store, /*segment=*/3, p, page.data(), 4, nullptr);
    cache.Insert(store, /*segment=*/4, p, page.data(), 4, nullptr);
  }
  cache.EraseSegment(store, 3);
  PageBuffer buf;
  for (uint64_t p = 0; p < 8; ++p) {
    EXPECT_FALSE(cache.Lookup(store, 3, p, &buf));
    EXPECT_TRUE(cache.Lookup(store, 4, p, &buf));
  }
  EXPECT_EQ(cache.usage(), 8 * 4 * sizeof(Entry));
}

TEST(BlockCacheTest, EvictsUnderCapacityPressure) {
  // Single cache shard so the clock behaviour is deterministic: capacity
  // for ~4 pages, insert 16, usage must stay bounded and evictions
  // counted.
  BlockCache cache(4 * 8 * sizeof(Entry), /*num_shards=*/1);
  const uint64_t store = cache.RegisterStore();
  Statistics stats;
  const std::vector<Entry> page = MakePage(0, 8);
  for (uint64_t p = 0; p < 16; ++p) {
    cache.Insert(store, 1, p, page.data(), 8, &stats);
  }
  EXPECT_LE(cache.usage(), 4 * 8 * sizeof(Entry));
  EXPECT_GT(stats.cache_evictions.load(), 0u);
}

TEST(BlockCacheTest, ZeroCapacityAdmitsNothing) {
  BlockCache cache(0);
  const uint64_t store = cache.RegisterStore();
  const std::vector<Entry> page = MakePage(0, 4);
  cache.Insert(store, 1, 0, page.data(), 4, nullptr);
  PageBuffer buf;
  EXPECT_FALSE(cache.Lookup(store, 1, 0, &buf));
  EXPECT_EQ(cache.usage(), 0u);
}

TEST(BlockCacheTest, SetCapacityRetargetsLive) {
  BlockCache cache(1 << 20, /*num_shards=*/1);
  const uint64_t store = cache.RegisterStore();
  const std::vector<Entry> page = MakePage(0, 8);
  for (uint64_t p = 0; p < 8; ++p) {
    cache.Insert(store, 1, p, page.data(), 8, nullptr);
  }
  const uint64_t full = cache.usage();
  ASSERT_EQ(full, 8 * 8 * sizeof(Entry));
  // Shrink to two pages: the next insert evicts down to the new bound.
  cache.set_capacity(2 * 8 * sizeof(Entry));
  cache.Insert(store, 2, 0, page.data(), 8, nullptr);
  EXPECT_LE(cache.usage(), 2 * 8 * sizeof(Entry));
}

TEST(ArbitrateMemoryTest, SplitsFollowReadShareWithClamps) {
  const uint64_t budget = 1000;
  // Balanced mix: an even split.
  ArbiterSplit even = ArbitrateMemory(budget, 500, 500, 0);
  EXPECT_EQ(even.cache_bytes, 500u);
  EXPECT_EQ(even.cache_bytes + even.buffer_bytes, budget);
  // Read-only drift clamps at 7/8 cache.
  ArbiterSplit readonly = ArbitrateMemory(budget, 1000, 0, 0);
  EXPECT_EQ(readonly.cache_bytes, 875u);
  // Write-only drift clamps at 1/8 cache.
  ArbiterSplit writeonly = ArbitrateMemory(budget, 0, 1000, 0);
  EXPECT_EQ(writeonly.cache_bytes, 125u);
  // No observations yet: balanced.
  ArbiterSplit cold = ArbitrateMemory(budget, 0, 0, 0);
  EXPECT_EQ(cold.cache_bytes, 500u);
  // The buffer floor wins over the read share.
  ArbiterSplit floored = ArbitrateMemory(budget, 1000, 0, 400);
  EXPECT_GE(floored.buffer_bytes, 400u);
  EXPECT_EQ(floored.cache_bytes + floored.buffer_bytes, budget);
}

TEST(BlockCacheOptionsTest, BudgetRequiresCache) {
  Options o;
  o.memory_budget_bytes = 1 << 20;
  o.block_cache_bytes = 0;
  EXPECT_FALSE(o.Validate().ok());
  o.block_cache_bytes = 1 << 16;
  EXPECT_TRUE(o.Validate().ok());
  // The cache must fit inside the budget it arbitrates under.
  o.block_cache_bytes = 2 << 20;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(BlockCacheOptionsTest, CannotEnableCacheAfterOpen) {
  // The cache and its page-store registrations are built at open; a
  // retune may resize it (including to 0 = pass-through) but not conjure
  // one up.
  Options o;
  auto db = DB::Open(o);
  ASSERT_TRUE(db.ok());
  Options with_cache = o;
  with_cache.block_cache_bytes = 1 << 16;
  EXPECT_FALSE((*db)->ApplyTuning(with_cache).ok());

  Options cached = o;
  cached.block_cache_bytes = 1 << 16;
  auto db2 = DB::Open(cached);
  ASSERT_TRUE(db2.ok());
  ASSERT_NE((*db2)->block_cache(), nullptr);
  Options resized = cached;
  resized.block_cache_bytes = 1 << 15;
  EXPECT_TRUE((*db2)->ApplyTuning(resized).ok());
  EXPECT_EQ((*db2)->block_cache()->capacity(), uint64_t{1} << 15);
  resized.block_cache_bytes = 0;
  EXPECT_TRUE((*db2)->ApplyTuning(resized).ok());
  EXPECT_EQ((*db2)->block_cache()->capacity(), 0u);
}

TEST(BlockCacheArbiterTest, ShiftsBudgetTowardReadsUnderReadHeavyMix) {
  // End-to-end arbiter: a read-heavy phase after a write phase must grow
  // the cache's share of the budget (observable via capacity) and
  // retarget the write buffers without disturbing correctness.
  Options o;
  o.buffer_entries = 128;
  o.entries_per_page = 4;
  o.num_shards = 2;
  o.block_cache_bytes = 64 * 1024;
  o.memory_budget_bytes = 512 * 1024;
  auto db_or = ShardedDB::Open(o);
  ASSERT_TRUE(db_or.ok());
  ShardedDB* db = db_or->get();
  // Write phase crosses several arbiter periods (1024 ops each).
  for (Key k = 0; k < 4096; ++k) {
    ASSERT_TRUE(db->Put(k, k).ok());
  }
  const uint64_t write_heavy_capacity = db->block_cache()->capacity();
  // Read-heavy phase: reads don't tick the arbiter (it is a write-path
  // hook), so interleave sparse writes to let it observe the new mix.
  for (int round = 0; round < 8; ++round) {
    for (Key k = 0; k < 4096; ++k) {
      db->Get(k);
    }
    for (Key k = 0; k < 512; ++k) {
      ASSERT_TRUE(db->Put(k, k + 1).ok());
    }
  }
  const uint64_t read_heavy_capacity = db->block_cache()->capacity();
  EXPECT_GT(read_heavy_capacity, write_heavy_capacity);
  // The split always exhausts the budget.
  EXPECT_LE(read_heavy_capacity, o.memory_budget_bytes);
  // Reads still correct after all the retargeting.
  for (Key k = 0; k < 512; ++k) {
    const std::optional<Value> got = db->Get(k);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, k + 1);
  }
}

}  // namespace
}  // namespace endure::lsm
