// I/O-accounting invariants: every experiment in this reproduction rests
// on the engine's page counters, so pin down exactly what each operation
// charges and where it is attributed.

#include <gtest/gtest.h>

#include "bridge/tuned_db.h"
#include "lsm/db.h"
#include "lsm/sharded_db.h"
#include "util/random.h"
#include "workload/query_generator.h"

namespace endure::lsm {
namespace {

Options Opts(CompactionPolicy policy = CompactionPolicy::kLeveling) {
  Options o;
  o.policy = policy;
  o.size_ratio = 4;
  o.buffer_entries = 64;
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 10.0;
  return o;
}

std::unique_ptr<DB> Loaded(const Options& o, uint64_t n) {
  auto db = DB::Open(o);
  std::vector<std::pair<Key, Value>> pairs;
  for (uint64_t i = 0; i < n; ++i) pairs.emplace_back(2 * i, i);
  EXPECT_TRUE((*db)->BulkLoad(pairs).ok());
  return std::move(db).value();
}

TEST(IoAccountingTest, CategoriesPartitionTotalReads) {
  auto db = Loaded(Opts(), 5000);
  Rng rng(1);
  workload::KeyUniverse universe(5000);
  for (int i = 0; i < 500; ++i) {
    db->Get(universe.SampleExisting(&rng));
    db->Get(universe.SampleMissing(&rng));
    const Key lo = universe.SampleExisting(&rng);
    (void)db->Scan(lo, lo + 8);
    db->Put(universe.NextWriteKey(), 1);
  }
  const Statistics& s = db->stats();
  EXPECT_EQ(s.pages_read, s.point_pages_read + s.range_pages_read +
                              s.compaction_pages_read);
  EXPECT_EQ(s.pages_written, s.flush_pages_written +
                                 s.compaction_pages_written +
                                 s.bulk_load_pages_written);
}

TEST(IoAccountingTest, PointHitCostsExactlyOnePageWhenSingleRun) {
  // One run, fence pointers: a hit reads exactly one page.
  Options o = Opts();
  o.buffer_entries = 10000;  // everything fits one flush
  auto db = DB::Open(o);
  for (Key k = 0; k < 1000; ++k) (*db)->Put(2 * k, k);
  (*db)->Flush();
  const Statistics before = (*db)->stats();
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE((*db)->Get(2 * k * 7 % 2000).has_value());
  }
  const Statistics d = (*db)->stats().Delta(before);
  EXPECT_EQ(d.point_pages_read, 100u);
}

TEST(IoAccountingTest, BloomNegativesAndFenceSkipsCostNoIo) {
  Options o = Opts();
  o.filter_bits_per_entry = 16.0;  // near-zero FPR
  auto db = Loaded(o, 4000);
  Rng rng(2);
  workload::KeyUniverse universe(4000);
  const Statistics before = db->stats();
  const int n = 2000;
  for (int i = 0; i < n; ++i) db->Get(universe.SampleMissing(&rng));
  const Statistics d = db->stats().Delta(before);
  // Essentially every miss is answered by filters alone.
  EXPECT_LT(d.point_pages_read, 30u);
  EXPECT_GT(d.bloom_negatives, static_cast<uint64_t>(n / 2));
  EXPECT_EQ(d.pages_written, 0u);
}

TEST(IoAccountingTest, GetsOutsideKeyDomainChargeNothingWithFences) {
  auto db = Loaded(Opts(), 1000);
  const Statistics before = db->stats();
  for (int i = 0; i < 100; ++i) db->Get(10'000'000 + i);
  const Statistics d = db->stats().Delta(before);
  EXPECT_EQ(d.pages_read, 0u);
  EXPECT_GT(d.fence_skips, 0u);
}

TEST(IoAccountingTest, LongScanPagesMatchSelectivity) {
  // A scan over fraction S of the keyspace should read ~ S*N/B pages
  // (plus <= 1 boundary page and one seek per qualifying run).
  auto db = Loaded(Opts(), 20000);  // keys 0..39998, 5000 pages of 4
  const Statistics before = db->stats();
  // Scan 10% of the key domain: 2000 entries ~ 500 pages.
  const auto out = db->Scan(0, 4000).value();
  EXPECT_EQ(out.size(), 2000u);
  const Statistics d = db->stats().Delta(before);
  const double expected_pages = 2000.0 / 4.0;
  EXPECT_GE(static_cast<double>(d.range_pages_read), expected_pages * 0.9);
  // Multiple runs overlap the range, each contributing boundary pages.
  EXPECT_LE(static_cast<double>(d.range_pages_read),
            expected_pages + 3.0 * static_cast<double>(d.range_seeks) + 3);
  EXPECT_GT(d.range_seeks, 0u);
}

TEST(IoAccountingTest, WritesChargeFlushAndCompactionOnly) {
  Options o = Opts();
  auto db = DB::Open(o);
  const int n = 3000;
  for (Key k = 0; k < static_cast<Key>(n); ++k) (*db)->Put(2 * k, k);
  const Statistics& s = (*db)->stats();
  EXPECT_EQ(s.point_pages_read, 0u);
  EXPECT_EQ(s.range_pages_read, 0u);
  EXPECT_GT(s.flush_pages_written, 0u);
  EXPECT_GT(s.compaction_pages_written, 0u);
  // Conservation: every flushed page carries buffer_entries-worth of data.
  EXPECT_GE(s.flush_pages_written * o.entries_per_page,
            static_cast<uint64_t>(n) - o.buffer_entries);
}

TEST(IoAccountingTest, OperationCountersTrackCalls) {
  auto db = Loaded(Opts(), 1000);
  Rng rng(3);
  workload::KeyUniverse universe(1000);
  for (int i = 0; i < 50; ++i) db->Get(universe.SampleExisting(&rng));
  for (int i = 0; i < 30; ++i) {
    const Key lo = universe.SampleExisting(&rng);
    (void)db->Scan(lo, lo + 4);
  }
  for (int i = 0; i < 20; ++i) db->Put(universe.NextWriteKey(), 1);
  for (int i = 0; i < 10; ++i) db->Delete(2 * i);
  const Statistics& s = db->stats();
  EXPECT_EQ(s.gets, 50u);
  EXPECT_EQ(s.range_queries, 30u);
  EXPECT_EQ(s.writes, 30u);  // puts + deletes
}

TEST(IoAccountingTest, FlushChargesExactCeilPages) {
  // A flush of m entries writes exactly ceil(m / B) pages, streamed
  // page-at-a-time — identical to the one-shot segment write it replaced.
  Options o = Opts();
  o.buffer_entries = 1000;
  auto db = DB::Open(o);
  for (Key k = 0; k < 10; ++k) (*db)->Put(k, k);  // 10 entries, B = 4
  const Statistics before = (*db)->stats();
  (*db)->Flush();
  const Statistics d = (*db)->stats().Delta(before);
  EXPECT_EQ(d.flush_pages_written, 3u);  // ceil(10 / 4)
  EXPECT_EQ(d.pages_written, 3u);
  EXPECT_EQ(d.pages_read, 0u);
}

TEST(IoAccountingTest, CompactionChargesAllInputPagesAndExactOutput) {
  // Merging two flushed runs reads every input page and writes
  // ceil(output / B) pages, with reads and writes interleaved by the
  // streaming pipeline but totals unchanged.
  Options o = Opts();
  o.buffer_entries = 1000;
  auto db = DB::Open(o);
  for (Key k = 0; k < 10; ++k) (*db)->Put(2 * k, k);  // 3 pages
  (*db)->Flush();
  for (Key k = 0; k < 9; ++k) (*db)->Put(2 * k + 1, k);  // 3 pages
  const Statistics before = (*db)->stats();
  (*db)->Flush();  // leveling: merges into the resident run
  const Statistics d = (*db)->stats().Delta(before);
  EXPECT_EQ(d.compaction_pages_read, 6u);       // both inputs, all pages
  EXPECT_EQ(d.compaction_pages_written, 5u);    // ceil(19 / 4)
  EXPECT_EQ(d.flush_pages_written, 3u);         // the triggering flush
}

TEST(IoAccountingTest, BulkLoadChargesExactPerLevelPages) {
  // Bulk load writes ceil(quota_l / B) pages per populated level, however
  // the per-level streams interleave.
  Options o = Opts();  // T=4, buffer 64, B=4 -> caps 192 / 768 / ...
  auto db = DB::Open(o);
  std::vector<std::pair<Key, Value>> pairs;
  for (uint64_t i = 0; i < 500; ++i) pairs.emplace_back(2 * i, i);
  ASSERT_TRUE((*db)->BulkLoad(pairs).ok());
  // Quotas fill bottom-up: level 2 takes min(768, 500) = 500, level 1
  // takes 0 -> pages = ceil(500 / 4) = 125.
  const Statistics& s = (*db)->stats();
  EXPECT_EQ(s.bulk_load_pages_written, 125u);
  EXPECT_EQ(s.pages_written, 125u);
  EXPECT_EQ(s.pages_read, 0u);
}

TEST(IoAccountingTest, SingleRunScanChargesOverlappingPagesAndOneSeek) {
  Options o = Opts();
  o.buffer_entries = 10000;
  auto db = DB::Open(o);
  for (Key k = 0; k < 1000; ++k) (*db)->Put(2 * k, k);
  (*db)->Flush();  // one run, 250 pages of 4
  const Statistics before = (*db)->stats();
  // Keys 100..198 are entries 50..99, i.e. pages 12..24 (13 pages), one
  // qualifying run.
  const auto out = (*db)->Scan(100, 200).value();
  EXPECT_EQ(out.size(), 50u);
  const Statistics d = (*db)->stats().Delta(before);
  EXPECT_EQ(d.range_seeks, 1u);
  EXPECT_EQ(d.range_pages_read, 13u);
  EXPECT_EQ(d.pages_written, 0u);
}

// The two backends share nothing on the I/O path (resident vectors vs
// pread/pwrite through aligned scratch), so identical counters across an
// identical workload pin the accounting to the logical access pattern
// rather than any backend's implementation.
TEST(IoAccountingTest, FileBackendCountsMatchMemoryBackendExactly) {
  auto run_workload = [](StorageBackend backend) {
    Options o = Opts();
    o.backend = backend;
    o.storage_dir = "/tmp/endure_io_accounting_test";
    auto db = DB::Open(o);
    std::vector<std::pair<Key, Value>> pairs;
    for (uint64_t i = 0; i < 3000; ++i) pairs.emplace_back(2 * i, i);
    EXPECT_TRUE((*db)->BulkLoad(pairs).ok());
    Rng rng(11);
    workload::KeyUniverse universe(3000);
    for (int i = 0; i < 400; ++i) {
      (*db)->Get(universe.SampleExisting(&rng));
      (*db)->Get(universe.SampleMissing(&rng));
      const Key lo = universe.SampleExisting(&rng);
      (void)(*db)->Scan(lo, lo + 12);
      (*db)->Put(universe.NextWriteKey(), 1);
      if (i % 50 == 0) (*db)->Delete(2 * static_cast<Key>(i));
    }
    (*db)->Flush();
    return (*db)->stats();
  };
  const Statistics mem = run_workload(StorageBackend::kMemory);
  const Statistics file = run_workload(StorageBackend::kFile);
  EXPECT_EQ(mem.pages_read, file.pages_read);
  EXPECT_EQ(mem.pages_written, file.pages_written);
  EXPECT_EQ(mem.point_pages_read, file.point_pages_read);
  EXPECT_EQ(mem.range_pages_read, file.range_pages_read);
  EXPECT_EQ(mem.range_seeks, file.range_seeks);
  EXPECT_EQ(mem.flush_pages_written, file.flush_pages_written);
  EXPECT_EQ(mem.compaction_pages_read, file.compaction_pages_read);
  EXPECT_EQ(mem.compaction_pages_written, file.compaction_pages_written);
  EXPECT_EQ(mem.bulk_load_pages_written, file.bulk_load_pages_written);
  EXPECT_EQ(mem.bloom_probes, file.bloom_probes);
  EXPECT_EQ(mem.bloom_negatives, file.bloom_negatives);
  EXPECT_EQ(mem.bloom_false_positives, file.bloom_false_positives);
  EXPECT_EQ(mem.fence_skips, file.fence_skips);
  EXPECT_EQ(mem.compactions, file.compactions);
  EXPECT_EQ(mem.flushes, file.flushes);
}

// --- sharded statistics accounting -----------------------------------------

namespace sharded {

Options ShardOpts(StorageBackend backend, bool background) {
  Options o = Opts();
  o.num_shards = 4;
  o.background_maintenance = background;
  o.backend = backend;
  o.storage_dir = "/tmp/endure_io_accounting_sharded";
  return o;
}

/// A deterministic single-threaded mixed workload (determinism is what
/// lets the memory-vs-file comparison demand bit-identical counters).
void RunWorkload(ShardedDB* db, uint64_t seed) {
  std::vector<std::pair<Key, Value>> pairs;
  for (uint64_t i = 0; i < 2000; ++i) pairs.emplace_back(2 * i, i);
  ASSERT_TRUE(db->BulkLoad(pairs).ok());
  Rng rng(seed);
  workload::KeyUniverse universe(2000);
  for (int i = 0; i < 400; ++i) {
    db->Get(universe.SampleExisting(&rng));
    db->Get(universe.SampleMissing(&rng));
    const Key lo = universe.SampleExisting(&rng);
    (void)db->Scan(lo, lo + 12);
    db->Put(universe.NextWriteKey(), 1);
    if (i % 40 == 0) db->Delete(2 * static_cast<Key>(i));
  }
  db->WaitForMaintenance();
  db->Flush();
}

#define EXPECT_ALL_COUNTERS_EQ(a, b)                                        \
  do {                                                                      \
    EXPECT_EQ((a).pages_read, (b).pages_read);                              \
    EXPECT_EQ((a).pages_written, (b).pages_written);                        \
    EXPECT_EQ((a).point_pages_read, (b).point_pages_read);                  \
    EXPECT_EQ((a).range_pages_read, (b).range_pages_read);                  \
    EXPECT_EQ((a).range_seeks, (b).range_seeks);                            \
    EXPECT_EQ((a).flush_pages_written, (b).flush_pages_written);            \
    EXPECT_EQ((a).compaction_pages_read, (b).compaction_pages_read);        \
    EXPECT_EQ((a).compaction_pages_written, (b).compaction_pages_written);  \
    EXPECT_EQ((a).bulk_load_pages_written, (b).bulk_load_pages_written);    \
    EXPECT_EQ((a).bloom_probes, (b).bloom_probes);                          \
    EXPECT_EQ((a).bloom_negatives, (b).bloom_negatives);                    \
    EXPECT_EQ((a).bloom_false_positives, (b).bloom_false_positives);        \
    EXPECT_EQ((a).fence_skips, (b).fence_skips);                            \
    EXPECT_EQ((a).gets, (b).gets);                                          \
    EXPECT_EQ((a).range_queries, (b).range_queries);                        \
    EXPECT_EQ((a).writes, (b).writes);                                      \
    EXPECT_EQ((a).flushes, (b).flushes);                                    \
    EXPECT_EQ((a).compactions, (b).compactions);                            \
  } while (0)

// The aggregate is the component-wise sum of the shard-local counters —
// even with background maintenance in the mix (summed at a quiescent
// point, after the Wait/Flush barrier).
TEST(ShardedIoAccountingTest, AggregateEqualsSumOfShardCounters) {
  for (const bool background : {false, true}) {
    auto db = std::move(
        ShardedDB::Open(ShardOpts(StorageBackend::kMemory, background)))
        .value();
    RunWorkload(db.get(), 31);
    Statistics sum;
    for (size_t s = 0; s < db->num_shards(); ++s) {
      sum.Accumulate(db->ShardStats(s));
    }
    const Statistics total = db->TotalStats();
    EXPECT_ALL_COUNTERS_EQ(total, sum);
    EXPECT_GT(total.pages_read, 0u);
    EXPECT_GT(total.pages_written, 0u);
    EXPECT_GT(total.bloom_probes, 0u);
  }
}

// Sharded counters stay bit-identical across storage backends, like the
// single-tree ones: the shard hash and the per-shard access pattern are
// purely logical. (Foreground maintenance: background-job timing is the
// one legitimate source of nondeterminism in when — not how much — I/O
// happens, so the bit-identical comparison pins the deterministic mode.)
TEST(ShardedIoAccountingTest, FileBackendMatchesMemoryBackendExactly) {
  auto run = [](StorageBackend backend) {
    auto db = std::move(ShardedDB::Open(ShardOpts(backend, false))).value();
    RunWorkload(db.get(), 32);
    return db->TotalStats();
  };
  const Statistics mem = run(StorageBackend::kMemory);
  const Statistics file = run(StorageBackend::kFile);
  EXPECT_ALL_COUNTERS_EQ(mem, file);
}

// A sharded deployment charges the same flush/bulk-load page totals as
// the work it does is conserved: every buffered entry still costs
// ceil(m / B)-page flushes within its own shard.
TEST(ShardedIoAccountingTest, WritePathConservation) {
  auto db = std::move(
      ShardedDB::Open(ShardOpts(StorageBackend::kMemory, true))).value();
  const Options& o = db->options();
  const uint64_t n = 5000;
  for (Key k = 0; k < n; ++k) db->Put(2 * k, k);
  db->WaitForMaintenance();
  db->Flush();
  const Statistics s = db->TotalStats();
  EXPECT_EQ(s.writes, n);
  EXPECT_EQ(s.pages_written, s.flush_pages_written +
                                 s.compaction_pages_written +
                                 s.bulk_load_pages_written);
  // Every entry was flushed exactly once from some shard's buffer.
  EXPECT_GE(s.flush_pages_written * o.entries_per_page, n);
}

}  // namespace sharded

TEST(IoAccountingTest, TieringChargesMoreFilterProbesPerMiss) {
  // More runs -> more bloom probes per empty lookup.
  auto probes_per_miss = [](CompactionPolicy policy) {
    Options o = Opts(policy);
    o.filter_bits_per_entry = 2.0;
    auto db = DB::Open(o);
    Rng churn(4);
    for (int i = 0; i < 4000; ++i) {
      (*db)->Put(2 * churn.UniformInt(0, 100000), i);
    }
    Rng rng(5);
    const Statistics before = (*db)->stats();
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
      (*db)->Get(2 * rng.UniformInt(0, 100000) + 1);
    }
    const Statistics d = (*db)->stats().Delta(before);
    return static_cast<double>(d.bloom_probes) / n;
  };
  EXPECT_GT(probes_per_miss(CompactionPolicy::kTiering),
            probes_per_miss(CompactionPolicy::kLeveling));
}

}  // namespace
}  // namespace endure::lsm
