// Crash-recovery unit suite (docs/durability.md): manifest round-trips,
// close-then-reopen and kill-then-reopen on DB and ShardedDB, persisted
// tunings, recover-mid-migration, orphan segment cleanup, sync-mode
// guarantees and the durability statistics counters. The randomized
// kill-point differential harness lives in differential_test.cc.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "bridge/tuned_db.h"
#include "lsm/db.h"
#include "lsm/manifest.h"
#include "lsm/sharded_db.h"
#include "util/env.h"

namespace endure::lsm {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = "/tmp/endure_recovery_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Options DurableOpts(const std::string& dir) {
  Options o;
  o.size_ratio = 4;
  o.buffer_entries = 64;
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 6.0;
  o.backend = StorageBackend::kFile;
  o.storage_dir = dir;
  o.durability = true;
  o.wal_sync_mode = WalSyncMode::kPerBatch;
  return o;
}

TEST(ManifestTest, RoundTripsState) {
  const std::string dir = FreshDir("manifest_roundtrip");
  ASSERT_TRUE(EnsureDir(dir).ok());
  ManifestData m;
  m.size_ratio = 7;
  m.policy = static_cast<int>(CompactionPolicy::kTiering);
  m.buffer_entries = 321;
  m.filter_bits_per_entry = 8.25;
  m.filter_allocation = static_cast<int>(FilterAllocation::kUniform);
  m.fence_pointer_skip = false;
  m.entries_per_page = 16;
  m.kind = kManifestKindShardedRoot;
  m.num_shards = 5;
  m.tuning_epoch = 9;
  m.migration_pending = true;
  m.next_seq = 12345;
  m.next_file_id = 42;
  m.levels = {{{3, 100, 9, 5.5}, {2, 50, 8, 4.0}}, {}, {{1, 900, 7, 3.0}}};

  const std::string path = dir + "/" + kManifestFileName;
  ASSERT_TRUE(WriteManifest(path, m).ok());
  auto read = ReadManifest(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size_ratio, m.size_ratio);
  EXPECT_EQ(read->policy, m.policy);
  EXPECT_EQ(read->buffer_entries, m.buffer_entries);
  EXPECT_EQ(read->filter_bits_per_entry, m.filter_bits_per_entry);
  EXPECT_EQ(read->filter_allocation, m.filter_allocation);
  EXPECT_EQ(read->fence_pointer_skip, m.fence_pointer_skip);
  EXPECT_EQ(read->entries_per_page, m.entries_per_page);
  EXPECT_EQ(read->kind, m.kind);
  EXPECT_EQ(read->num_shards, m.num_shards);
  EXPECT_EQ(read->tuning_epoch, m.tuning_epoch);
  EXPECT_EQ(read->migration_pending, m.migration_pending);
  EXPECT_EQ(read->next_seq, m.next_seq);
  EXPECT_EQ(read->next_file_id, m.next_file_id);
  ASSERT_EQ(read->levels.size(), 3u);
  ASSERT_EQ(read->levels[0].size(), 2u);
  EXPECT_EQ(read->levels[0][1].segment, 2u);
  EXPECT_EQ(read->levels[0][1].bloom_bits_per_entry, 4.0);
  EXPECT_EQ(read->levels[2][0].num_entries, 900u);
}

TEST(ManifestTest, RejectsCorruption) {
  const std::string dir = FreshDir("manifest_corrupt");
  ASSERT_TRUE(EnsureDir(dir).ok());
  const std::string path = dir + "/" + kManifestFileName;
  ASSERT_TRUE(WriteManifest(path, ManifestData{}).ok());
  auto blob = ReadFileToString(path);
  ASSERT_TRUE(blob.ok());
  std::string mangled = std::move(blob).value();
  mangled[mangled.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFileAtomic(path, mangled).ok());
  EXPECT_FALSE(ReadManifest(path).ok());
}

TEST(RecoveryTest, DurabilityRequiresFileBackend) {
  Options o = DurableOpts("/tmp/unused");
  o.backend = StorageBackend::kMemory;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(RecoveryTest, FreshOpenThenCleanCloseThenReopen) {
  const std::string dir = FreshDir("clean_close");
  std::map<Key, Value> oracle;
  {
    auto db = DB::Open(DurableOpts(dir));
    ASSERT_TRUE(db.ok());
    for (Key k = 0; k < 500; ++k) {
      (*db)->Put(k, k * 3 + 1);
      oracle[k] = k * 3 + 1;
    }
    for (Key k = 0; k < 500; k += 5) {
      (*db)->Delete(k);
      oracle.erase(k);
    }
    // Clean close: destructor syncs the WAL whatever the mode.
  }
  auto db = DB::Open(DurableOpts(dir));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->stats().recoveries.load(), 1u);
  for (Key k = 0; k < 500; ++k) {
    const auto got = (*db)->Get(k);
    const auto want = oracle.find(k);
    ASSERT_EQ(got.has_value(), want != oracle.end()) << "key " << k;
    if (got.has_value()) EXPECT_EQ(*got, want->second);
  }
  const auto scanned = (*db)->Scan(0, ~0ull).value();
  EXPECT_EQ(scanned.size(), oracle.size());
}

TEST(RecoveryTest, KillAfterAckedWritesLosesNothingPerBatch) {
  const std::string dir = FreshDir("kill_perbatch");
  std::map<Key, Value> oracle;
  {
    auto db = DB::Open(DurableOpts(dir));
    ASSERT_TRUE(db.ok());
    // Enough to cross several flush/compaction edges, then more writes
    // that stay memtable-resident (covered only by the WAL).
    for (Key k = 0; k < 700; ++k) {
      (*db)->Put(k, ~k);
      oracle[k] = ~k;
    }
    (*db)->CrashForTesting();
  }
  auto db = DB::Open(DurableOpts(dir));
  ASSERT_TRUE(db.ok());
  EXPECT_GT((*db)->stats().wal_replayed_entries.load(), 0u);
  for (const auto& [k, v] : oracle) {
    const auto got = (*db)->Get(k);
    ASSERT_TRUE(got.has_value()) << "acked write lost: key " << k;
    EXPECT_EQ(*got, v);
  }
  EXPECT_EQ((*db)->Scan(0, ~0ull).value().size(), oracle.size());
}

TEST(RecoveryTest, SealedBufferSurvivesKill) {
  const std::string dir = FreshDir("sealed");
  Options o = DurableOpts(dir);
  o.background_maintenance = true;  // full buffers seal instead of flush
  {
    auto db = DB::Open(o);
    ASSERT_TRUE(db.ok());
    // 2.5 buffers: one flushed by backpressure, one sealed, half active.
    for (Key k = 0; k < o.buffer_entries * 5 / 2; ++k) {
      (*db)->Put(k, k + 7);
    }
    ASSERT_TRUE((*db)->tree().HasSealedMemtable());
    (*db)->CrashForTesting();
  }
  auto db = DB::Open(o);
  ASSERT_TRUE(db.ok());
  for (Key k = 0; k < o.buffer_entries * 5 / 2; ++k) {
    const auto got = (*db)->Get(k);
    ASSERT_TRUE(got.has_value()) << "key " << k << " lost behind the seal";
    EXPECT_EQ(*got, k + 7);
  }
}

TEST(RecoveryTest, PutBatchGroupCommitSurvivesKill) {
  const std::string dir = FreshDir("putbatch");
  std::map<Key, Value> oracle;
  {
    auto db = DB::Open(DurableOpts(dir));
    ASSERT_TRUE(db.ok());
    std::vector<std::pair<Key, Value>> batch;
    for (Key k = 0; k < 300; ++k) {
      batch.emplace_back(k * 2, k);
      oracle[k * 2] = k;
    }
    (*db)->PutBatch(batch);
    EXPECT_EQ((*db)->stats().wal_records.load(), 300u);
    (*db)->CrashForTesting();
  }
  auto db = DB::Open(DurableOpts(dir));
  ASSERT_TRUE(db.ok());
  for (const auto& [k, v] : oracle) {
    const auto got = (*db)->Get(k);
    ASSERT_TRUE(got.has_value()) << "batched write lost: key " << k;
    EXPECT_EQ(*got, v);
  }
}

TEST(RecoveryTest, AppliedTuningSurvivesKill) {
  const std::string dir = FreshDir("tuning");
  const Options base = DurableOpts(dir);
  Options tuned = base;
  tuned.policy = CompactionPolicy::kTiering;
  tuned.size_ratio = 3;
  tuned.filter_bits_per_entry = 9.0;
  tuned.buffer_entries = base.buffer_entries * 2;
  {
    auto db = DB::Open(base);
    ASSERT_TRUE(db.ok());
    for (Key k = 0; k < 400; ++k) (*db)->Put(k, k);
    ASSERT_TRUE((*db)->ApplyTuning(tuned).ok());
    (*db)->CrashForTesting();
  }
  // Reopen with the ORIGINAL options: the persisted tuning must win.
  auto db = DB::Open(base);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->options().policy, CompactionPolicy::kTiering);
  EXPECT_EQ((*db)->options().size_ratio, 3);
  EXPECT_EQ((*db)->options().filter_bits_per_entry, 9.0);
  EXPECT_EQ((*db)->options().buffer_entries, base.buffer_entries * 2);
  EXPECT_EQ((*db)->tree().options().policy, CompactionPolicy::kTiering);
  for (Key k = 0; k < 400; ++k) {
    ASSERT_EQ((*db)->Get(k).value_or(~0ull), k);
  }
}

TEST(RecoveryTest, ResumesMidMigrationExactlyWhereItStopped) {
  const std::string dir = FreshDir("mid_migration");
  // Tiering leaves multi-run levels, so migrating to leveling has real
  // per-level work for AdvanceMigration to be killed in the middle of.
  Options base = DurableOpts(dir);
  base.policy = CompactionPolicy::kTiering;
  Options tuned = base;
  tuned.policy = CompactionPolicy::kLeveling;
  tuned.size_ratio = 3;
  tuned.filter_bits_per_entry = 3.0;

  uint64_t epoch_at_kill = 0;
  MigrationProgress progress_at_kill;
  {
    auto db = DB::Open(base);
    ASSERT_TRUE(db.ok());
    for (Key k = 0; k < 2000; ++k) (*db)->Put(k, k + 1);
    // Reconfigure directly (DB::ApplyTuning would converge synchronously)
    // and take exactly one migration step, then die mid-flight.
    ASSERT_TRUE((*db)->mutable_tree()->Reconfigure(tuned).ok());
    bool stepped = false;
    ASSERT_TRUE((*db)->mutable_tree()->AdvanceMigration(&stepped).ok());
    ASSERT_TRUE(stepped);
    ASSERT_TRUE((*db)->mutable_tree()->MigrationPending());
    epoch_at_kill = (*db)->tree().tuning_epoch();
    progress_at_kill = (*db)->Progress();
    (*db)->CrashForTesting();
  }
  auto db = DB::Open(base);
  ASSERT_TRUE(db.ok());
  // The reopened tree is mid-migration under the persisted tuning, with
  // the identical epoch and per-run progress the kill interrupted.
  EXPECT_EQ((*db)->tree().tuning_epoch(), epoch_at_kill);
  EXPECT_TRUE((*db)->mutable_tree()->MigrationPending());
  const MigrationProgress progress = (*db)->Progress();
  EXPECT_EQ(progress.epoch, progress_at_kill.epoch);
  EXPECT_EQ(progress.runs_total, progress_at_kill.runs_total);
  EXPECT_EQ(progress.runs_current, progress_at_kill.runs_current);
  EXPECT_EQ(progress.entries_current, progress_at_kill.entries_current);
  EXPECT_EQ(progress.nonconforming_levels,
            progress_at_kill.nonconforming_levels);
  // Resume: AdvanceMigration picks up and converges; contents intact.
  bool did_work = true;
  while (did_work) {
    ASSERT_TRUE((*db)->mutable_tree()->AdvanceMigration(&did_work).ok());
  }
  EXPECT_TRUE((*db)->Progress().structure_conforming());
  for (Key k = 0; k < 2000; ++k) {
    ASSERT_EQ((*db)->Get(k).value_or(0), k + 1);
  }
}

TEST(RecoveryTest, OrphanSegmentsAreReaped) {
  const std::string dir = FreshDir("orphans");
  {
    auto db = DB::Open(DurableOpts(dir));
    ASSERT_TRUE(db.ok());
    for (Key k = 0; k < 300; ++k) (*db)->Put(k, k);
    (*db)->Flush();
  }
  // A crash between a segment write and the manifest leaves a file no
  // manifest references; recovery must reap it.
  const std::string orphan = dir + "/seg_424242.run";
  ASSERT_TRUE(WriteFileAtomic(orphan, "garbage").ok());
  auto db = DB::Open(DurableOpts(dir));
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(FileExists(orphan));
  for (Key k = 0; k < 300; ++k) {
    ASSERT_EQ((*db)->Get(k).value_or(~0ull), k);
  }
}

TEST(RecoveryTest, CleanCloseIsDurableUnderEverySyncMode) {
  for (const WalSyncMode mode :
       {WalSyncMode::kNone, WalSyncMode::kBackground,
        WalSyncMode::kPerBatch}) {
    const std::string dir =
        FreshDir("mode_" + std::to_string(static_cast<int>(mode)));
    Options o = DurableOpts(dir);
    o.wal_sync_mode = mode;
    o.wal_sync_interval_ms = 1;
    {
      auto db = DB::Open(o);
      ASSERT_TRUE(db.ok());
      for (Key k = 0; k < 200; ++k) (*db)->Put(k, k + 11);
    }
    auto db = DB::Open(o);
    ASSERT_TRUE(db.ok());
    for (Key k = 0; k < 200; ++k) {
      ASSERT_EQ((*db)->Get(k).value_or(0), k + 11)
          << "mode " << static_cast<int>(mode);
    }
  }
}

TEST(RecoveryTest, ShardedDeploymentRecovers) {
  const std::string dir = FreshDir("sharded");
  Options o = DurableOpts(dir);
  o.num_shards = 4;
  o.background_maintenance = true;
  std::map<Key, Value> oracle;
  {
    auto db = ShardedDB::Open(o);
    ASSERT_TRUE(db.ok());
    for (Key k = 0; k < 1200; ++k) {
      (*db)->Put(k, k * 7);
      oracle[k] = k * 7;
    }
    for (Key k = 0; k < 1200; k += 9) {
      (*db)->Delete(k);
      oracle.erase(k);
    }
    (*db)->WaitForMaintenance();
    (*db)->CrashForTesting();
  }
  auto db = ShardedDB::Open(o);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value()->TotalStats().recoveries.load(), 4u);
  for (Key k = 0; k < 1200; ++k) {
    const auto got = db.value()->Get(k);
    const auto want = oracle.find(k);
    ASSERT_EQ(got.has_value(), want != oracle.end()) << "key " << k;
    if (got.has_value()) EXPECT_EQ(*got, want->second);
  }
  EXPECT_EQ(db.value()->Scan(0, ~0ull).value().size(), oracle.size());
}

TEST(RecoveryTest, ShardCountIsImmutableAcrossReopens) {
  const std::string dir = FreshDir("shard_count");
  Options o = DurableOpts(dir);
  o.num_shards = 4;
  {
    auto db = ShardedDB::Open(o);
    ASSERT_TRUE(db.ok());
    db.value()->Put(1, 1);
  }
  Options wrong = o;
  wrong.num_shards = 2;
  EXPECT_FALSE(ShardedDB::Open(wrong).ok());
  // And a sharded root is not a plain-DB directory.
  EXPECT_FALSE(DB::Open(DurableOpts(dir)).ok());
}

TEST(RecoveryTest, FrontEndsRejectEachOthersDeployments) {
  // Even at num_shards == 1, where the recorded shard count cannot
  // distinguish the two layouts.
  const std::string sharded_dir = FreshDir("one_shard");
  Options one = DurableOpts(sharded_dir);
  one.num_shards = 1;
  {
    auto db = ShardedDB::Open(one);
    ASSERT_TRUE(db.ok());
    db.value()->Put(5, 55);
  }
  EXPECT_FALSE(DB::Open(DurableOpts(sharded_dir)).ok());

  const std::string db_dir = FreshDir("plain_db");
  {
    auto db = DB::Open(DurableOpts(db_dir));
    ASSERT_TRUE(db.ok());
    (*db)->Put(5, 55);
  }
  Options as_sharded = DurableOpts(db_dir);
  as_sharded.num_shards = 1;
  EXPECT_FALSE(ShardedDB::Open(as_sharded).ok());
}

TEST(RecoveryTest, ShardedRetuneSurvivesRestart) {
  const std::string dir = FreshDir("sharded_retune");
  Options o = DurableOpts(dir);
  o.num_shards = 3;
  o.background_maintenance = true;
  Options tuned = o;
  tuned.policy = CompactionPolicy::kLazyLeveling;
  tuned.size_ratio = 6;
  tuned.filter_bits_per_entry = 8.0;
  {
    auto db = ShardedDB::Open(o);
    ASSERT_TRUE(db.ok());
    for (Key k = 0; k < 900; ++k) db.value()->Put(k, k);
    ASSERT_TRUE(db.value()->ApplyTuning(tuned).ok());
    db.value()->WaitForMaintenance();
    db.value()->CrashForTesting();
  }
  auto db = ShardedDB::Open(o);  // stale knobs: persisted tuning wins
  ASSERT_TRUE(db.ok());
  const Options reopened = db.value()->options();
  EXPECT_EQ(reopened.policy, CompactionPolicy::kLazyLeveling);
  EXPECT_EQ(reopened.size_ratio, 6);
  EXPECT_EQ(reopened.filter_bits_per_entry, 8.0);
  db.value()->WaitForMaintenance();
  EXPECT_TRUE(db.value()->Progress().structure_conforming());
  for (Key k = 0; k < 900; ++k) {
    ASSERT_EQ(db.value()->Get(k).value_or(~0ull), k);
  }
}

TEST(RecoveryTest, LockFileRejectsASecondOpener) {
  const std::string dir = FreshDir("lock");
  auto first = DB::Open(DurableOpts(dir));
  ASSERT_TRUE(first.ok());
  // A second process (simulated: a second instance) must be refused
  // while the first holds the deployment.
  auto second = DB::Open(DurableOpts(dir));
  EXPECT_FALSE(second.ok());
  first->reset();  // releases the lock
  auto third = DB::Open(DurableOpts(dir));
  EXPECT_TRUE(third.ok());

  const std::string sharded_dir = FreshDir("lock_sharded");
  Options o = DurableOpts(sharded_dir);
  o.num_shards = 2;
  auto sharded = ShardedDB::Open(o);
  ASSERT_TRUE(sharded.ok());
  EXPECT_FALSE(ShardedDB::Open(o).ok());
}

TEST(RecoveryTest, OpenTunedShardedDbRecoversInsteadOfRebuilding) {
  const std::string dir = FreshDir("bridge");
  SystemConfig cfg;
  const Tuning t(Policy::kLeveling, 6.0, 5.0);
  uint64_t loaded_entries = 0;
  {
    auto db = bridge::OpenTunedShardedDb(
        cfg, t, /*actual_entries=*/3000, /*num_shards=*/2,
        /*background_maintenance=*/true, StorageBackend::kMemory, dir,
        WalSyncMode::kPerBatch);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    (*db)->Put(1, 99);  // odd key: provably post-load
    (*db)->WaitForMaintenance();
    loaded_entries = (*db)->TotalEntries();
    (*db)->CrashForTesting();
  }
  auto db = bridge::OpenTunedShardedDb(
      cfg, t, 3000, 2, true, StorageBackend::kMemory, dir,
      WalSyncMode::kPerBatch);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Recovered, not rebuilt: the post-load write survived alongside the
  // loaded universe (a rebuild would have dropped key 1 and failed
  // BulkLoad's empty-shard precondition anyway).
  EXPECT_EQ((*db)->Get(1).value_or(0), 99u);
  EXPECT_EQ((*db)->Get(2 * 1500).value_or(1), 1500u);
  EXPECT_EQ((*db)->TotalEntries(), loaded_entries);

  // A manifest without the bulk-load marker is an interrupted initial
  // load and must be refused, not served half-empty.
  db->reset();
  ASSERT_TRUE(RemoveFile(dir + "/bulk_loaded").ok());
  auto refused = bridge::OpenTunedShardedDb(
      cfg, t, 3000, 2, true, StorageBackend::kMemory, dir,
      WalSyncMode::kPerBatch);
  EXPECT_FALSE(refused.ok());
}

// Entries under a /proc/self/* directory: live thread count (task) or
// open descriptor count (fd). 0 when /proc is unavailable (non-Linux).
size_t CountProc(const std::string& what) {
  auto names = ListDir("/proc/self/" + what);
  return names.ok() ? names->size() : 0;
}

// The kill+reopen matrix at 8 shards, through the concurrent open (the
// default) and the forced-serial open, for every sync mode.
// CrashForTesting preserves committed write()s (a process kill, not a
// machine crash), so the full oracle must survive in all modes.
TEST(RecoveryTest, EightShardKillReopenMatrixThroughParallelOpen) {
  for (const WalSyncMode mode :
       {WalSyncMode::kNone, WalSyncMode::kBackground,
        WalSyncMode::kPerBatch}) {
    const std::string dir =
        FreshDir("matrix8_" + std::to_string(static_cast<int>(mode)));
    Options o = DurableOpts(dir);
    o.num_shards = 8;
    o.background_maintenance = true;
    o.wal_sync_mode = mode;
    o.wal_sync_interval_ms = 1;
    std::map<Key, Value> oracle;
    {
      auto db = ShardedDB::Open(o);
      ASSERT_TRUE(db.ok());
      for (Key k = 0; k < 1600; ++k) {
        db.value()->Put(k, k * 13);
        oracle[k] = k * 13;
      }
      for (Key k = 0; k < 1600; k += 7) {
        db.value()->Delete(k);
        oracle.erase(k);
      }
      db.value()->WaitForMaintenance();
      db.value()->CrashForTesting();
    }
    {
      // Default open: shards recover concurrently.
      auto db = ShardedDB::Open(o);
      ASSERT_TRUE(db.ok());
      EXPECT_EQ(db.value()->TotalStats().recoveries.load(), 8u);
      for (Key k = 0; k < 1600; ++k) {
        const auto got = db.value()->Get(k);
        const auto want = oracle.find(k);
        ASSERT_EQ(got.has_value(), want != oracle.end())
            << "mode " << static_cast<int>(mode) << " key " << k;
        if (got.has_value()) EXPECT_EQ(*got, want->second);
      }
      db.value()->CrashForTesting();
    }
    // Forced-serial open recovers the identical state.
    Options serial = o;
    serial.recovery_threads = 1;
    auto db = ShardedDB::Open(serial);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ(db.value()->TotalStats().recoveries.load(), 8u);
    EXPECT_EQ(db.value()->Scan(0, ~0ull).value().size(), oracle.size());
  }
}

TEST(RecoveryTest, RecoverMidMigrationThroughParallelOpenAtEightShards) {
  const std::string dir = FreshDir("parallel_mid_migration");
  Options o = DurableOpts(dir);
  o.num_shards = 8;
  o.background_maintenance = true;
  o.policy = CompactionPolicy::kTiering;
  Options tuned = o;
  tuned.policy = CompactionPolicy::kLeveling;
  tuned.size_ratio = 3;
  tuned.filter_bits_per_entry = 3.0;
  {
    auto db = ShardedDB::Open(o);
    ASSERT_TRUE(db.ok());
    for (Key k = 0; k < 4000; ++k) db.value()->Put(k, k + 5);
    // Retune and die without waiting: the in-flight migration state is
    // whatever the maintenance pool got to before the crash point.
    ASSERT_TRUE(db.value()->ApplyTuning(tuned).ok());
    db.value()->CrashForTesting();
  }
  auto db = ShardedDB::Open(o);  // stale knobs: persisted tuning wins
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value()->options().policy, CompactionPolicy::kLeveling);
  EXPECT_EQ(db.value()->options().size_ratio, 3);
  db.value()->WaitForMaintenance();
  EXPECT_TRUE(db.value()->Progress().structure_conforming());
  for (Key k = 0; k < 4000; ++k) {
    ASSERT_EQ(db.value()->Get(k).value_or(0), k + 5);
  }
}

TEST(RecoveryTest, CorruptShardManifestFailsParallelOpenCleanly) {
  const std::string dir = FreshDir("corrupt_shard");
  Options o = DurableOpts(dir);
  o.num_shards = 8;
  o.background_maintenance = true;
  o.wal_sync_mode = WalSyncMode::kBackground;  // flush service in play
  {
    auto db = ShardedDB::Open(o);
    ASSERT_TRUE(db.ok());
    for (Key k = 0; k < 800; ++k) db.value()->Put(k, k);
    db.value()->WaitForMaintenance();
  }
  // Corrupt one shard's manifest; the whole open must fail (with that
  // shard's error), and the partial open must leak nothing: no threads
  // (recovery pool, flush service, maintenance pool, WAL flushers), no
  // fds (WAL appenders, segment files, LOCK), and the LOCK released.
  const std::string victim = dir + "/shard_5/" + kManifestFileName;
  auto blob = ReadFileToString(victim);
  ASSERT_TRUE(blob.ok());
  std::string mangled = *blob;
  mangled[mangled.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFileAtomic(victim, mangled).ok());

  const size_t threads_before = CountProc("task");
  const size_t fds_before = CountProc("fd");
  auto failed = ShardedDB::Open(o);
  EXPECT_FALSE(failed.ok());
  if (threads_before > 0) {
    EXPECT_EQ(CountProc("task"), threads_before) << "leaked threads";
    EXPECT_EQ(CountProc("fd"), fds_before) << "leaked fds";
  }

  // Restore the manifest: the deployment reopens (proving the failed
  // attempt released the LOCK) with every shard intact.
  ASSERT_TRUE(WriteFileAtomic(victim, *blob).ok());
  auto db = ShardedDB::Open(o);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value()->TotalStats().recoveries.load(), 8u);
  for (Key k = 0; k < 800; ++k) {
    ASSERT_EQ(db.value()->Get(k).value_or(~0ull), k);
  }
}

TEST(RecoveryTest, SingleFlushServiceThreadRegardlessOfShardCount) {
  if (CountProc("task") == 0) {
    GTEST_SKIP() << "/proc/self/task unavailable";
  }
  Options o = DurableOpts(FreshDir("one_flusher"));
  o.num_shards = 8;
  o.background_maintenance = false;  // no maintenance pool in the count
  o.wal_sync_mode = WalSyncMode::kBackground;
  o.wal_sync_interval_ms = 5;
  // Throwaway open/close first: lazily-spawned runtime threads (TSan's
  // background thread, malloc arenas) must not land in the deltas.
  { auto warm = ShardedDB::Open(o); ASSERT_TRUE(warm.ok()); }
  {
    const size_t before = CountProc("task");
    auto db = ShardedDB::Open(o);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ(CountProc("task"), before + 1)
        << "shared flusher must run exactly one thread for 8 shards";
  }
  // Legacy topology for comparison: one interval thread per shard.
  Options legacy = DurableOpts(FreshDir("per_shard_flushers"));
  legacy.num_shards = 8;
  legacy.background_maintenance = false;
  legacy.wal_sync_mode = WalSyncMode::kBackground;
  legacy.wal_sync_interval_ms = 5;
  legacy.shared_wal_flusher = false;
  const size_t before = CountProc("task");
  auto db = ShardedDB::Open(legacy);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(CountProc("task"), before + 8);
}

// Regression for the per-checkpoint flusher churn: a WAL rewrite must
// not tear down and recreate background-sync state. Before the fix,
// every checkpoint replaced the writer (and its interval clock), so a
// sub-interval checkpoint cadence postponed the background fsync
// forever; now the appender survives the rewrite and the tick clock
// keeps running, in both flusher topologies.
TEST(RecoveryTest, CheckpointChurnCannotStarveBackgroundSyncs) {
  for (const bool shared : {true, false}) {
    Options o = DurableOpts(
        FreshDir(std::string("churn_") + (shared ? "shared" : "own")));
    o.wal_sync_mode = WalSyncMode::kBackground;
    o.wal_sync_interval_ms = 25;
    o.shared_wal_flusher = shared;
    auto db = DB::Open(o);
    ASSERT_TRUE(db.ok());
    // Checkpoint every few milliseconds for several intervals: each Put
    // dirties the WAL and stays unsynced across the sleep, each Flush
    // rewrites the log. With the old recreate-per-checkpoint writer the
    // interval clock restarted at every Flush and no background fsync
    // could ever fire; with the surviving writer the global tick lands
    // in the dirty windows.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
    Key k = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      (*db)->Put(k++, k);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      (*db)->Flush();
    }
    EXPECT_GT((*db)->stats().wal_rewrites.load(), 2u);
    EXPECT_GT((*db)->stats().wal_syncs.load(), 0u)
        << (shared ? "shared" : "own")
        << " flusher starved by checkpoint churn";
    // And no busy double-sync either: a clean WAL stays untouched.
    (*db)->Put(k++, k);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const uint64_t settled = (*db)->stats().wal_syncs.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ((*db)->stats().wal_syncs.load(), settled)
        << "idle WAL re-synced every interval";
  }
}

TEST(RecoveryTest, KillBetweenCheckpointAndFirstPostCheckpointSync) {
  Options o = DurableOpts(FreshDir("kill_after_checkpoint"));
  o.wal_sync_mode = WalSyncMode::kBackground;
  o.wal_sync_interval_ms = 60000;  // no background tick fires in-test
  {
    auto db = DB::Open(o);
    ASSERT_TRUE(db.ok());
    for (Key k = 0; k < 300; ++k) (*db)->Put(k, k + 1);
    (*db)->Flush();          // checkpoint: manifest + WAL rewrite
    (*db)->Put(1000, 1001);  // committed to the new log, never fsynced
    (*db)->CrashForTesting();
  }
  auto db = DB::Open(o);
  ASSERT_TRUE(db.ok());
  for (Key k = 0; k < 300; ++k) {
    ASSERT_EQ((*db)->Get(k).value_or(0), k + 1);
  }
  // The post-checkpoint write survived the kill (process death keeps
  // the page cache) — proving the rewrite left a well-framed log that
  // the redirected appender continued correctly.
  EXPECT_EQ((*db)->Get(1000).value_or(0), 1001u);
}

TEST(RecoveryTest, DurabilityCountersAggregateAcrossShards) {
  const std::string dir = FreshDir("counters");
  Options o = DurableOpts(dir);
  o.num_shards = 2;
  auto db = ShardedDB::Open(o);
  ASSERT_TRUE(db.ok());
  for (Key k = 0; k < 300; ++k) db.value()->Put(k, k);
  db.value()->Flush();
  const Statistics total = db.value()->TotalStats();
  EXPECT_EQ(total.wal_records.load(), 300u);
  EXPECT_GT(total.wal_bytes.load(), 0u);
  EXPECT_GT(total.wal_syncs.load(), 0u);  // kPerBatch: every commit syncs
  EXPECT_GT(total.manifest_writes.load(), 0u);
  // Accumulate must fold the durability counters like any others.
  uint64_t shard_sum = 0;
  for (size_t s = 0; s < db.value()->num_shards(); ++s) {
    shard_sum += db.value()->ShardStats(s).manifest_writes.load();
  }
  EXPECT_EQ(total.manifest_writes.load(), shard_sum);
}

}  // namespace
}  // namespace endure::lsm
