#include "lsm/bloom_filter.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace endure::lsm {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter f(1000, 8.0);
  for (Key k = 0; k < 1000; ++k) f.Add(k * 3);
  for (Key k = 0; k < 1000; ++k) EXPECT_TRUE(f.MayContain(k * 3));
}

TEST(BloomFilterTest, ZeroBitsAlwaysPositive) {
  BloomFilter f(1000, 0.0);
  EXPECT_EQ(f.num_hashes(), 0);
  EXPECT_DOUBLE_EQ(f.TheoreticalFpr(), 1.0);
  for (Key k = 0; k < 100; ++k) EXPECT_TRUE(f.MayContain(k));
}

TEST(BloomFilterTest, EmpiricalFprNearTheory) {
  // 10 bits/entry -> theoretical FPR ~ e^{-10 ln^2 2} ~ 0.0082. The
  // cache-line-blocked layout trades a small, bounded FPR inflation
  // (uneven block loads) for single-cache-line probes; at 10 bits/entry
  // with 512-bit blocks the inflation stays well under 2x.
  const int n = 20000;
  BloomFilter f(n, 10.0);
  for (Key k = 0; k < n; ++k) f.Add(2 * k);
  int fp = 0;
  const int probes = 100000;
  for (int i = 0; i < probes; ++i) fp += f.MayContain(2 * (n + i) + 1);
  const double fpr = static_cast<double>(fp) / probes;
  EXPECT_GT(fpr, 0.5 * f.TheoreticalFpr());
  EXPECT_LT(fpr, 2.0 * f.TheoreticalFpr());
}

TEST(BloomFilterTest, FprDecreasesWithMoreBits) {
  const int n = 10000;
  double prev = 1.1;
  for (double bits : {2.0, 4.0, 8.0, 12.0}) {
    BloomFilter f(n, bits);
    for (Key k = 0; k < n; ++k) f.Add(2 * k);
    int fp = 0;
    for (int i = 0; i < 20000; ++i) fp += f.MayContain(2 * (n + i) + 1);
    const double fpr = static_cast<double>(fp) / 20000.0;
    EXPECT_LT(fpr, prev);
    prev = fpr;
  }
}

TEST(BloomFilterTest, OptimalHashCount) {
  // k* = bits_per_entry * ln 2, rounded.
  BloomFilter f(100, 10.0);
  EXPECT_EQ(f.num_hashes(), static_cast<int>(std::lround(10.0 *
                                                         std::log(2.0))));
  BloomFilter g(100, 1.0);
  EXPECT_GE(g.num_hashes(), 1);
}

TEST(BloomFilterTest, BitsAllocatedProportionalToEntries) {
  // Rounded up to whole 512-bit blocks.
  BloomFilter f(1000, 8.0);
  EXPECT_NEAR(static_cast<double>(f.bits()), 8000.0,
              static_cast<double>(BloomFilter::kBlockBits));
  EXPECT_EQ(f.bits() % BloomFilter::kBlockBits, 0u);
}

TEST(BloomFilterTest, BufferedHashInsertionMatchesDirectAdd) {
  // RunBuilder defers filter construction: it buffers KeyHash values and
  // inserts them once the entry count is exact. Both paths must build the
  // same filter.
  const int n = 5000;
  BloomFilter direct(n, 10.0);
  BloomFilter deferred(n, 10.0);
  std::vector<uint64_t> hashes;
  for (Key k = 0; k < n; ++k) {
    direct.Add(3 * k);
    hashes.push_back(BloomFilter::KeyHash(3 * k));
  }
  for (uint64_t h : hashes) deferred.AddHash(h);
  for (Key k = 0; k < 3 * n; ++k) {
    EXPECT_EQ(direct.MayContain(k), deferred.MayContain(k)) << k;
  }
}

TEST(BloomFilterTest, TinyBudgetStillWorks) {
  BloomFilter f(10, 0.5);
  for (Key k = 0; k < 10; ++k) f.Add(k);
  for (Key k = 0; k < 10; ++k) EXPECT_TRUE(f.MayContain(k));
}

TEST(BloomFilterTest, DistinctKeysHashDifferently) {
  BloomFilter f(2, 16.0);
  f.Add(42);
  // With 16 bits/entry on 2 entries a specific other key is very unlikely
  // to collide on all hash positions.
  int positives = 0;
  for (Key k = 1000; k < 1100; ++k) positives += f.MayContain(k);
  EXPECT_LT(positives, 5);
}

// Property sweep: no false negatives across budgets and sizes.
class BloomSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BloomSweep, NeverForgetsInsertedKeys) {
  const int n = std::get<0>(GetParam());
  const double bits = std::get<1>(GetParam());
  BloomFilter f(n, bits);
  Rng rng(99);
  std::vector<Key> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) keys.push_back(rng.Next());
  for (Key k : keys) f.Add(k);
  for (Key k : keys) EXPECT_TRUE(f.MayContain(k));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBudgets, BloomSweep,
    ::testing::Combine(::testing::Values(1, 16, 1000, 50000),
                       ::testing::Values(0.5, 2.0, 10.0)));

}  // namespace
}  // namespace endure::lsm
