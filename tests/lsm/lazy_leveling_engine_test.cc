// Lazy-leveling compaction in the engine: the bottom level keeps a single
// eagerly-merged run while every level above tiers, and correctness holds
// under the same randomized soak as the classic policies.

#include <gtest/gtest.h>

#include <map>

#include "lsm/db.h"
#include "util/random.h"

namespace endure::lsm {
namespace {

Options LazyOptions(int T = 4, uint64_t buffer = 8) {
  Options o;
  o.policy = CompactionPolicy::kLazyLeveling;
  o.size_ratio = T;
  o.buffer_entries = buffer;
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 8.0;
  return o;
}

TEST(LazyLevelingEngineTest, BottomLevelKeepsOneRun) {
  Statistics stats;
  MemPageStore store(4, &stats);
  LsmTree tree(LazyOptions(), &store, &stats);
  Rng rng(71);
  for (int i = 0; i < 4000; ++i) tree.Put(rng.UniformInt(0, 100000), i);
  const auto infos = tree.GetLevelInfos();
  const int deepest = tree.DeepestLevel();
  ASSERT_GE(deepest, 2);
  EXPECT_EQ(infos[deepest - 1].num_runs, 1u);
  // Upper levels may tier (strictly fewer than T runs).
  for (const LevelInfo& info : infos) {
    EXPECT_LT(info.num_runs, 4u) << "level " << info.level;
  }
}

TEST(LazyLevelingEngineTest, UpperLevelsActuallyTier) {
  Statistics stats;
  MemPageStore store(4, &stats);
  LsmTree tree(LazyOptions(5, 8), &store, &stats);
  Rng rng(72);
  // Enough churn that some shallow level holds >1 run at some point.
  bool saw_multi_run_upper = false;
  for (int i = 0; i < 6000; ++i) {
    tree.Put(rng.UniformInt(0, 1000000), i);
    const auto infos = tree.GetLevelInfos();
    const int deepest = tree.DeepestLevel();
    for (const LevelInfo& info : infos) {
      if (info.level < deepest && info.num_runs > 1) {
        saw_multi_run_upper = true;
      }
    }
  }
  EXPECT_TRUE(saw_multi_run_upper);
}

TEST(LazyLevelingEngineTest, WriteAmplificationBetweenClassicPolicies) {
  auto compaction_traffic = [](CompactionPolicy policy) {
    Options o;
    o.policy = policy;
    o.size_ratio = 4;
    o.buffer_entries = 8;
    o.entries_per_page = 4;
    Statistics stats;
    MemPageStore store(o.entries_per_page, &stats);
    LsmTree tree(o, &store, &stats);
    for (Key k = 0; k < 6000; ++k) tree.Put(k, k);
    return stats.compaction_pages_read + stats.compaction_pages_written +
           stats.flush_pages_written;
  };
  const uint64_t lvl = compaction_traffic(CompactionPolicy::kLeveling);
  const uint64_t lazy = compaction_traffic(CompactionPolicy::kLazyLeveling);
  const uint64_t tier = compaction_traffic(CompactionPolicy::kTiering);
  EXPECT_LE(tier, lazy);
  EXPECT_LE(lazy, lvl);
}

TEST(LazyLevelingEngineTest, RandomOpsMatchReference) {
  auto db_or = lsm::DB::Open(LazyOptions(3, 8));
  ASSERT_TRUE(db_or.ok());
  DB* db = db_or->get();
  std::map<Key, Value> ref;
  Rng rng(73);
  for (int i = 0; i < 4000; ++i) {
    const double dice = rng.NextDouble();
    const Key k = rng.UniformInt(0, 300);
    if (dice < 0.5) {
      const Value v = rng.Next() % 100000;
      db->Put(k, v);
      ref[k] = v;
    } else if (dice < 0.65) {
      db->Delete(k);
      ref.erase(k);
    } else if (dice < 0.85) {
      const auto got = db->Get(k);
      const auto it = ref.find(k);
      if (it == ref.end()) {
        EXPECT_FALSE(got.has_value()) << "key " << k;
      } else {
        ASSERT_TRUE(got.has_value()) << "key " << k;
        EXPECT_EQ(*got, it->second);
      }
    } else {
      const Key hi = k + rng.UniformInt(1, 30);
      const auto got = db->Scan(k, hi).value();
      std::vector<std::pair<Key, Value>> expect;
      for (auto it = ref.lower_bound(k); it != ref.end() && it->first < hi;
           ++it) {
        expect.push_back(*it);
      }
      ASSERT_EQ(got.size(), expect.size());
      for (size_t j = 0; j < got.size(); ++j) {
        EXPECT_EQ(got[j].key, expect[j].first);
        EXPECT_EQ(got[j].value, expect[j].second);
      }
    }
  }
}

TEST(LazyLevelingEngineTest, BulkLoadWorks) {
  auto db_or = lsm::DB::Open(LazyOptions(4, 16));
  ASSERT_TRUE(db_or.ok());
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < 1000; ++k) pairs.emplace_back(2 * k, k);
  ASSERT_TRUE((*db_or)->BulkLoad(pairs).ok());
  EXPECT_EQ((*db_or)->Get(500).value(), 250u);
  EXPECT_FALSE((*db_or)->Get(501).has_value());
}

}  // namespace
}  // namespace endure::lsm
