#include "lsm/db.h"

#include <gtest/gtest.h>

namespace endure::lsm {
namespace {

Options TestOptions() {
  Options o;
  o.size_ratio = 3;
  o.buffer_entries = 16;
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 8.0;
  return o;
}

TEST(DbTest, OpenRejectsInvalidOptions) {
  Options o = TestOptions();
  o.size_ratio = 1;
  auto db = DB::Open(o);
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
}

TEST(DbTest, BasicCrud) {
  auto db = DB::Open(TestOptions());
  ASSERT_TRUE(db.ok());
  (*db)->Put(1, 10);
  (*db)->Put(2, 20);
  EXPECT_EQ((*db)->Get(1).value(), 10u);
  (*db)->Delete(1);
  EXPECT_FALSE((*db)->Get(1).has_value());
  EXPECT_EQ((*db)->Scan(0, 100).value().size(), 1u);
}

TEST(DbTest, BulkLoadThenRead) {
  auto db = DB::Open(TestOptions());
  ASSERT_TRUE(db.ok());
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < 300; ++k) pairs.emplace_back(2 * k, k);
  ASSERT_TRUE((*db)->BulkLoad(pairs).ok());
  EXPECT_EQ((*db)->Get(100).value(), 50u);
  EXPECT_FALSE((*db)->Get(101).has_value());
}

TEST(DbTest, BulkLoadRejectsUnsortedInput) {
  auto db = DB::Open(TestOptions());
  ASSERT_TRUE(db.ok());
  const Status s = (*db)->BulkLoad({{4, 1}, {2, 2}});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(DbTest, BulkLoadRejectsDuplicateKeys) {
  auto db = DB::Open(TestOptions());
  ASSERT_TRUE(db.ok());
  const Status s = (*db)->BulkLoad({{2, 1}, {2, 2}});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(DbTest, BulkLoadRequiresEmptyDb) {
  auto db = DB::Open(TestOptions());
  ASSERT_TRUE(db.ok());
  (*db)->Put(1, 1);
  const Status s = (*db)->BulkLoad({{2, 2}});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(DbTest, StatsAccumulate) {
  auto db = DB::Open(TestOptions());
  ASSERT_TRUE(db.ok());
  for (Key k = 0; k < 100; ++k) (*db)->Put(k, k);
  (*db)->Get(5);
  EXPECT_EQ((*db)->stats().writes, 100u);
  EXPECT_EQ((*db)->stats().gets, 1u);
  EXPECT_GT((*db)->stats().flushes, 0u);
}

TEST(DbTest, FileBackendEndToEnd) {
  Options o = TestOptions();
  o.backend = StorageBackend::kFile;
  o.storage_dir = "/tmp/endure_db_test";
  auto db = DB::Open(o);
  ASSERT_TRUE(db.ok());
  for (Key k = 0; k < 200; ++k) (*db)->Put(k * 2, k);
  for (Key k = 0; k < 200; ++k) {
    ASSERT_TRUE((*db)->Get(k * 2).has_value()) << k;
    EXPECT_EQ((*db)->Get(k * 2).value(), k);
  }
  const auto scan = (*db)->Scan(10, 30).value();
  EXPECT_EQ(scan.size(), 10u);
}

TEST(DbTest, FlushExposed) {
  auto db = DB::Open(TestOptions());
  ASSERT_TRUE(db.ok());
  (*db)->Put(1, 1);
  (*db)->Flush();
  EXPECT_TRUE((*db)->tree().memtable().empty());
  EXPECT_EQ((*db)->Get(1).value(), 1u);
}

}  // namespace
}  // namespace endure::lsm
