// Pins the zero-allocation guarantee of the buffered read path: after
// warm-up, a point lookup on the memory backend must perform no heap
// allocations at all. Lives in its own test binary because it replaces the
// global allocator to count allocations.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "lsm/db.h"

namespace {

std::atomic<uint64_t> g_allocs{0};
std::atomic<bool> g_counting{false};

void CountAlloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void* operator new(std::size_t size) {
  CountAlloc();
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  CountAlloc();
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace endure::lsm {
namespace {

class AllocationScope {
 public:
  AllocationScope() {
    g_allocs.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationScope() { g_counting.store(false, std::memory_order_relaxed); }
  uint64_t allocations() const {
    return g_allocs.load(std::memory_order_relaxed);
  }
};

std::unique_ptr<DB> LoadedDb(uint64_t n) {
  Options o;
  o.size_ratio = 4;
  o.buffer_entries = 64;
  o.entries_per_page = 8;
  o.filter_bits_per_entry = 8.0;
  auto db = DB::Open(o);
  EXPECT_TRUE(db.ok());
  std::vector<std::pair<Key, Value>> pairs;
  for (uint64_t i = 0; i < n; ++i) pairs.emplace_back(2 * i, i);
  EXPECT_TRUE((*db)->BulkLoad(pairs).ok());
  return std::move(db).value();
}

TEST(ZeroAllocTest, PointLookupsAllocateNothing) {
  auto db = LoadedDb(20000);
  // Warm up: every run's page scratch is allocated at construction, but
  // touch the path once anyway before counting.
  for (Key k = 0; k < 64; ++k) {
    db->Get(2 * k);
    db->Get(2 * k + 1);
  }
  uint64_t hits = 0;
  uint64_t allocs = 0;
  {
    AllocationScope scope;
    for (Key k = 0; k < 2000; ++k) {
      hits += db->Get((2 * k * 7) % 40000).has_value() ? 1 : 0;
      db->Get(2 * k + 1);  // guaranteed miss
    }
    allocs = scope.allocations();
  }
  EXPECT_EQ(allocs, 0u) << "buffered Get path must not allocate";
  EXPECT_EQ(hits, 2000u);
}

TEST(ZeroAllocTest, ScanAllocationsAreBoundedByOutput) {
  auto db = LoadedDb(20000);
  (void)db->Scan(0, 200);  // warm up
  uint64_t allocs = 0;
  uint64_t returned = 0;
  {
    AllocationScope scope;
    for (int i = 0; i < 100; ++i) {
      const auto out = db->Scan(400 * i, 400 * i + 64).value();
      returned += out.size();
    }
    allocs = scope.allocations();
  }
  EXPECT_EQ(returned, 3200u);
  // Scans must allocate only iterator state and the result vector — a
  // small constant per qualifying run, not per page or per entry.
  EXPECT_LT(allocs, 100u * 40u)
      << "scan path allocates per page or per entry";
}

}  // namespace
}  // namespace endure::lsm
