// ShardedDB: sharding semantics, background-maintenance state machine,
// and concurrency stress — multi-threaded writers and readers with
// maintenance jobs interleaved, asserting linearizable point reads (a key
// is never lost once its Put has been acknowledged) and clean shutdown
// with jobs in flight. Run under ThreadSanitizer in CI's tsan leg.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "lsm/sharded_db.h"
#include "util/random.h"

namespace endure::lsm {
namespace {

Options ShardOpts(int num_shards, bool background = true,
                  StorageBackend backend = StorageBackend::kMemory) {
  Options o;
  o.size_ratio = 4;
  o.buffer_entries = 256;
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 8.0;
  o.num_shards = num_shards;
  o.background_maintenance = background;
  o.backend = backend;
  o.storage_dir = "/tmp/endure_sharded_db_test";
  return o;
}

TEST(ShardedDbTest, OptionsValidation) {
  Options o = ShardOpts(0);
  EXPECT_FALSE(o.Validate().ok());
  EXPECT_FALSE(ShardedDB::Open(o).ok());
  o.num_shards = 5000;
  EXPECT_FALSE(o.Validate().ok());
  o.num_shards = 8;
  EXPECT_TRUE(o.Validate().ok());
}

TEST(ShardedDbTest, ShardRoutingIsDeterministicAndCoversAllShards) {
  auto db = std::move(ShardedDB::Open(ShardOpts(8))).value();
  std::vector<uint64_t> hits(8, 0);
  for (Key k = 0; k < 4096; ++k) {
    const size_t s = db->ShardForKey(2 * k);
    ASSERT_LT(s, 8u);
    ASSERT_EQ(s, db->ShardForKey(2 * k));  // stable
    ++hits[s];
  }
  // Dense even keys must spread: no shard empty, none hoarding.
  for (uint64_t h : hits) {
    EXPECT_GT(h, 4096u / 8 / 4);
    EXPECT_LT(h, 4096u / 8 * 4);
  }
}

TEST(ShardedDbTest, SingleThreadedSemanticsAcrossShards) {
  auto db = std::move(ShardedDB::Open(ShardOpts(4))).value();
  for (Key k = 0; k < 2000; ++k) db->Put(k, k + 7);
  for (Key k = 0; k < 2000; k += 3) db->Delete(k);
  db->WaitForMaintenance();
  for (Key k = 0; k < 2000; ++k) {
    const auto got = db->Get(k);
    if (k % 3 == 0) {
      EXPECT_FALSE(got.has_value()) << k;
    } else {
      ASSERT_TRUE(got.has_value()) << k;
      EXPECT_EQ(*got, k + 7);
    }
  }
}

TEST(ShardedDbTest, ScanMergesShardsInKeyOrder) {
  auto db = std::move(ShardedDB::Open(ShardOpts(4))).value();
  for (Key k = 0; k < 3000; ++k) db->Put(k, 2 * k);
  const std::vector<Entry> out = db->Scan(500, 1500).value();
  ASSERT_EQ(out.size(), 1000u);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i].key, 500 + i);  // ordered, no gaps, no duplicates
    ASSERT_EQ(out[i].value, 2 * out[i].key);
  }
}

TEST(ShardedDbTest, BackgroundMaintenanceActuallyFlushes) {
  auto db = std::move(ShardedDB::Open(ShardOpts(2))).value();
  const Options& o = db->options();
  for (Key k = 0; k < 40 * o.buffer_entries; ++k) db->Put(k, k);
  db->WaitForMaintenance();
  const Statistics total = db->TotalStats();
  EXPECT_GT(total.flushes, 0u);
  EXPECT_GT(total.flush_pages_written, 0u);
  // The trees really grew runs (writes didn't pile up in memtables).
  uint64_t runs = 0;
  for (size_t s = 0; s < db->num_shards(); ++s) {
    for (const LevelInfo& info : db->shard_tree(s).GetLevelInfos()) {
      runs += info.num_runs;
    }
  }
  EXPECT_GT(runs, 0u);
}

TEST(ShardedDbTest, BulkLoadRoutesAndServes) {
  auto db = std::move(ShardedDB::Open(ShardOpts(4, false))).value();
  std::vector<std::pair<Key, Value>> pairs;
  for (uint64_t i = 0; i < 5000; ++i) pairs.emplace_back(2 * i, i);
  ASSERT_TRUE(db->BulkLoad(pairs).ok());
  EXPECT_EQ(db->TotalEntries(), 5000u);
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const uint64_t v = rng.UniformInt(0, 4999);
    const auto got = db->Get(2 * v);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
    EXPECT_FALSE(db->Get(2 * v + 1).has_value());
  }
  EXPECT_FALSE(db->BulkLoad(pairs).ok());  // non-empty now
}

// --- concurrency stress ----------------------------------------------------

/// Writers append per-writer key sequences and publish an acknowledged
/// watermark; readers pick random writers and verify every key at or
/// below the watermark is present with the right value. A key read after
/// its Put ack must never be lost, whatever maintenance is doing.
TEST(ShardedDbStressTest, AckedWritesAreNeverLost) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr uint64_t kPerWriter = 8000;
  auto db = std::move(ShardedDB::Open(ShardOpts(4))).value();

  std::atomic<int64_t> watermark[kWriters];
  for (auto& w : watermark) w.store(-1);
  auto key_of = [](int writer, uint64_t i) {
    return static_cast<Key>(i) * kWriters + writer;
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        db->Put(key_of(w, i), i);
        // Release pairs with the readers' acquire: the Put (and its
        // shard-mutex critical section) happens-before any read of i.
        watermark[w].store(static_cast<int64_t>(i),
                           std::memory_order_release);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> verified{0};
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(100 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const int w = static_cast<int>(rng.UniformInt(0, kWriters - 1));
        const int64_t high = watermark[w].load(std::memory_order_acquire);
        if (high < 0) continue;
        const uint64_t i = rng.UniformInt(0, static_cast<uint64_t>(high));
        const auto got = db->Get(key_of(w, i));
        ASSERT_TRUE(got.has_value())
            << "acked key lost: writer " << w << " index " << i;
        ASSERT_EQ(*got, i);
        verified.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  EXPECT_GT(verified.load(), 0u);

  // Quiesce and verify the full history end-to-end.
  db->WaitForMaintenance();
  for (int w = 0; w < kWriters; ++w) {
    for (uint64_t i = 0; i < kPerWriter; i += 97) {
      const auto got = db->Get(key_of(w, i));
      ASSERT_TRUE(got.has_value()) << "writer " << w << " index " << i;
      EXPECT_EQ(*got, i);
    }
  }
  EXPECT_EQ(db->TotalEntries(), kWriters * kPerWriter);
}

TEST(ShardedDbStressTest, ConcurrentScansSeeConsistentPrefixes) {
  // One writer fills keys in ascending order while scanners watch: every
  // scan result must be sorted, duplicate-free and value-consistent.
  auto db = std::move(ShardedDB::Open(ShardOpts(4))).value();
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (Key k = 0; k < 20000; ++k) db->Put(k, k + 1);
    done.store(true);
  });
  std::thread scanner([&] {
    Rng rng(7);
    while (!done.load(std::memory_order_relaxed)) {
      const Key lo = rng.UniformInt(0, 15000);
      const std::vector<Entry> out = db->Scan(lo, lo + 256).value();
      for (size_t i = 0; i < out.size(); ++i) {
        ASSERT_GE(out[i].key, lo);
        ASSERT_LT(out[i].key, lo + 256);
        ASSERT_EQ(out[i].value, out[i].key + 1);
        if (i > 0) ASSERT_GT(out[i].key, out[i - 1].key);
      }
    }
  });
  writer.join();
  scanner.join();
  const std::vector<Entry> all = db->Scan(0, 20000).value();
  EXPECT_EQ(all.size(), 20000u);
}

/// Live reconfiguration under fire: writers publish acked-write
/// watermarks and readers verify them while the main thread applies a
/// sequence of tunings (policy flips, size-ratio and buffer changes) to
/// the serving database. No acked write may ever disappear, scans stay
/// sorted, and after quiescing the structure must conform to the last
/// tuning with every entry intact.
TEST(ShardedDbStressTest, ApplyTuningUnderConcurrentTraffic) {
  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  constexpr uint64_t kPerWriter = 6000;
  const Options base = ShardOpts(4);
  auto db = std::move(ShardedDB::Open(base)).value();

  std::vector<Options> presets;
  {
    Options a = base;
    a.policy = CompactionPolicy::kTiering;
    a.size_ratio = 2;
    a.buffer_entries = 128;
    presets.push_back(a);
    Options b = base;
    b.policy = CompactionPolicy::kLazyLeveling;
    b.size_ratio = 8;
    b.filter_bits_per_entry = 4.0;
    presets.push_back(b);
    Options c = base;
    c.size_ratio = 3;
    c.buffer_entries = 512;
    presets.push_back(c);
  }

  std::atomic<int64_t> watermark[kWriters];
  for (auto& w : watermark) w.store(-1);
  auto key_of = [](int writer, uint64_t i) {
    return static_cast<Key>(i) * kWriters + writer;
  };

  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        db->Put(key_of(w, i), i);
        watermark[w].store(static_cast<int64_t>(i),
                           std::memory_order_release);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(300 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const int w = static_cast<int>(rng.UniformInt(0, kWriters - 1));
        const int64_t high = watermark[w].load(std::memory_order_acquire);
        if (high < 0) continue;
        const uint64_t i = rng.UniformInt(0, static_cast<uint64_t>(high));
        const auto got = db->Get(key_of(w, i));
        ASSERT_TRUE(got.has_value())
            << "acked key lost across retuning: writer " << w << " index "
            << i;
        ASSERT_EQ(*got, i);
      }
    });
  }

  // Retune the serving system while the traffic runs: one apply per
  // preset, spread across the writers' lifetime.
  for (const Options& preset : presets) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(db->ApplyTuning(preset).ok());
  }

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // Quiesce: the migration chain must converge to the last tuning.
  db->WaitForMaintenance();
  const MigrationProgress progress = db->Progress();
  EXPECT_TRUE(progress.structure_conforming());
  EXPECT_EQ(progress.epoch, presets.size());
  EXPECT_EQ(db->TotalStats().reconfigurations,
            presets.size() * db->num_shards());

  // Full-history check under the final tuning.
  for (int w = 0; w < kWriters; ++w) {
    for (uint64_t i = 0; i < kPerWriter; ++i) {
      const auto got = db->Get(key_of(w, i));
      ASSERT_TRUE(got.has_value()) << "writer " << w << " index " << i;
      ASSERT_EQ(*got, i);
    }
  }
  EXPECT_EQ(db->TotalEntries(), kWriters * kPerWriter);
}

TEST(ShardedDbStressTest, CleanShutdownWithJobsInFlight) {
  // Destroy the DB the instant the writers stop: queued maintenance jobs
  // must drain (not crash, not deadlock) during destruction.
  for (int round = 0; round < 3; ++round) {
    auto db = std::move(ShardedDB::Open(ShardOpts(8))).value();
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
      writers.emplace_back([&, w] {
        for (uint64_t i = 0; i < 4000; ++i) {
          db->Put(static_cast<Key>(i) * 4 + w, i);
        }
      });
    }
    for (auto& t : writers) t.join();
    db.reset();  // jobs may still be queued here
  }
}

TEST(ShardedDbStressTest, MixedReadWriteDeleteUnderMaintenance) {
  auto db = std::move(ShardedDB::Open(ShardOpts(4))).value();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(500 + t);
      // Per-thread key stripe: deletes only chase the thread's own puts,
      // so every Get outcome is locally predictable.
      for (uint64_t i = 0; i < 6000; ++i) {
        const Key k = static_cast<Key>(rng.UniformInt(0, 2000)) * kThreads +
                      static_cast<Key>(t);
        const double r = rng.NextDouble();
        if (r < 0.5) {
          db->Put(k, k);
        } else if (r < 0.6) {
          db->Delete(k);
        } else if (r < 0.9) {
          const auto got = db->Get(k);
          if (got.has_value()) ASSERT_EQ(*got, k);
        } else {
          // Materialize before iterating: ranging over `.value()` of the
          // temporary StatusOr would dangle (the temporary dies before
          // the loop body).
          const std::vector<Entry> scanned = db->Scan(k, k + 32).value();
          for (const Entry& e : scanned) {
            ASSERT_EQ(e.value, e.key);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  db->WaitForMaintenance();
  db->Flush();
  // After quiescing, aggregate op counters reflect every call.
  EXPECT_EQ(db->TotalStats().writes,
            [&] {
              uint64_t w = 0;
              for (size_t s = 0; s < db->num_shards(); ++s) {
                w += db->ShardStats(s).writes;
              }
              return w;
            }());
}

}  // namespace
}  // namespace endure::lsm
