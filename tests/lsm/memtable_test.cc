#include "lsm/memtable.h"

#include <gtest/gtest.h>

#include <map>

#include "util/random.h"

namespace endure::lsm {
namespace {

Entry Val(Key k, SeqNum s, Value v) {
  return Entry{k, s, v, EntryType::kValue};
}

TEST(SkipListTest, InsertAndFind) {
  SkipList list;
  EXPECT_TRUE(list.Upsert(Val(5, 1, 50)));
  EXPECT_TRUE(list.Upsert(Val(3, 2, 30)));
  EXPECT_TRUE(list.Upsert(Val(9, 3, 90)));
  EXPECT_EQ(list.size(), 3u);
  ASSERT_NE(list.Find(5), nullptr);
  EXPECT_EQ(list.Find(5)->value, 50u);
  EXPECT_EQ(list.Find(4), nullptr);
}

TEST(SkipListTest, UpsertReplacesExistingKey) {
  SkipList list;
  EXPECT_TRUE(list.Upsert(Val(7, 1, 70)));
  EXPECT_FALSE(list.Upsert(Val(7, 2, 71)));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.Find(7)->value, 71u);
  EXPECT_EQ(list.Find(7)->seq, 2u);
}

TEST(SkipListTest, DumpIsSorted) {
  SkipList list;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) list.Upsert(Val(rng.Next() % 10000, i, i));
  const std::vector<Entry> dump = list.Dump();
  for (size_t i = 1; i < dump.size(); ++i) {
    EXPECT_LT(dump[i - 1].key, dump[i].key);
  }
  EXPECT_EQ(dump.size(), list.size());
}

TEST(SkipListTest, MatchesReferenceMap) {
  SkipList list;
  std::map<Key, Value> ref;
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const Key k = rng.Next() % 500;
    const Value v = rng.Next();
    list.Upsert(Val(k, i, v));
    ref[k] = v;
  }
  EXPECT_EQ(list.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_NE(list.Find(k), nullptr) << k;
    EXPECT_EQ(list.Find(k)->value, v) << k;
  }
}

TEST(SkipListTest, IteratorTraversesAscending) {
  SkipList list;
  for (Key k : {40, 10, 30, 20}) list.Upsert(Val(k, 1, k));
  SkipList::Iterator it = list.NewIterator();
  std::vector<Key> keys;
  for (; it.Valid(); it.Next()) keys.push_back(it.entry().key);
  EXPECT_EQ(keys, (std::vector<Key>{10, 20, 30, 40}));
}

TEST(SkipListTest, IteratorSeek) {
  SkipList list;
  for (Key k : {10, 20, 30}) list.Upsert(Val(k, 1, k));
  SkipList::Iterator it = list.NewIterator();
  it.Seek(15);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.entry().key, 20u);
  it.Seek(30);
  EXPECT_EQ(it.entry().key, 30u);
  it.Seek(31);
  EXPECT_FALSE(it.Valid());
  it.SeekToFirst();
  EXPECT_EQ(it.entry().key, 10u);
}

TEST(SkipListTest, ClearEmptiesList) {
  SkipList list;
  for (Key k = 0; k < 100; ++k) list.Upsert(Val(k, 1, k));
  list.Clear();
  EXPECT_EQ(list.size(), 0u);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.Find(5), nullptr);
  // Reusable after Clear.
  list.Upsert(Val(1, 1, 1));
  EXPECT_EQ(list.size(), 1u);
}

TEST(SkipListTest, TombstonesStored) {
  SkipList list;
  list.Upsert(Entry{5, 1, 0, EntryType::kTombstone});
  ASSERT_NE(list.Find(5), nullptr);
  EXPECT_TRUE(list.Find(5)->is_tombstone());
}

TEST(MemTableTest, CapacityTracking) {
  MemTable mt(4);
  EXPECT_FALSE(mt.IsFull());
  for (Key k = 0; k < 4; ++k) mt.Upsert(Val(k, k, k));
  EXPECT_TRUE(mt.IsFull());
  EXPECT_EQ(mt.size(), 4u);
}

TEST(MemTableTest, UpsertExistingKeyDoesNotGrow) {
  MemTable mt(2);
  mt.Upsert(Val(1, 1, 10));
  mt.Upsert(Val(1, 2, 11));
  EXPECT_EQ(mt.size(), 1u);
  EXPECT_FALSE(mt.IsFull());
}

TEST(MemTableTest, DumpAndClear) {
  MemTable mt(10);
  for (Key k : {5, 3, 8}) mt.Upsert(Val(k, 1, k));
  const std::vector<Entry> d = mt.Dump();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0].key, 3u);
  EXPECT_EQ(d[2].key, 8u);
  mt.Clear();
  EXPECT_TRUE(mt.empty());
}

TEST(MemTableTest, MinimumCapacityIsOne) {
  MemTable mt(0);
  EXPECT_EQ(mt.capacity(), 1u);
}

}  // namespace
}  // namespace endure::lsm
