#include "lsm/run.h"

#include <gtest/gtest.h>

#include "lsm/run_builder.h"

namespace endure::lsm {
namespace {

class RunTest : public ::testing::Test {
 protected:
  RunTest() : store_(4, &stats_) {}

  std::shared_ptr<endure::lsm::Run> MakeRun(int n, double bits = 10.0) {
    std::vector<Entry> entries;
    for (int i = 0; i < n; ++i) {
      entries.push_back(Entry{static_cast<Key>(10 * i), 1,
                              static_cast<Value>(i), EntryType::kValue});
    }
    return BuildRun(&store_, entries, bits, IoContext::kBulkLoad).value();
  }

  Statistics stats_;
  MemPageStore store_;
};

TEST_F(RunTest, MetadataCorrect) {
  auto run = MakeRun(10);
  EXPECT_EQ(run->num_entries(), 10u);
  EXPECT_EQ(run->num_pages(), 3u);
  EXPECT_EQ(run->min_key(), 0u);
  EXPECT_EQ(run->max_key(), 90u);
}

TEST_F(RunTest, GetFindsExistingKeyWithOnePageRead) {
  auto run = MakeRun(100);
  const uint64_t before = stats_.point_pages_read;
  const Entry* e = run->Get(500, /*use_fence_skip=*/true);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 50u);
  EXPECT_EQ(stats_.point_pages_read, before + 1);
}

TEST_F(RunTest, GetMissViaBloomCostsNoIo) {
  auto run = MakeRun(100, 14.0);  // strong filter
  const uint64_t before = stats_.point_pages_read;
  int ios = 0;
  for (Key k = 1; k < 500; k += 10) {  // keys not in the run
    if (run->Get(k, true) != nullptr) ADD_FAILURE();
    ios += static_cast<int>(stats_.point_pages_read - before);
  }
  // With 14 bits/entry nearly all misses are filtered without I/O.
  EXPECT_LE(stats_.point_pages_read - before, 3u);
  EXPECT_GT(stats_.bloom_negatives, 40u);
}

TEST_F(RunTest, FenceSkipShortCircuitsOutOfRangeKeys) {
  auto run = MakeRun(10);  // keys 0..90
  const uint64_t probes_before = stats_.bloom_probes;
  EXPECT_EQ(run->Get(1000, true), nullptr);
  EXPECT_EQ(stats_.bloom_probes, probes_before);  // no filter touch
  EXPECT_GT(stats_.fence_skips, 0u);
}

TEST_F(RunTest, WithoutFenceSkipBloomIsProbed) {
  auto run = MakeRun(10);
  const uint64_t probes_before = stats_.bloom_probes;
  EXPECT_EQ(run->Get(1000, false), nullptr);
  EXPECT_EQ(stats_.bloom_probes, probes_before + 1);
}

TEST_F(RunTest, GetMissInsidePageCountsFalsePositive) {
  auto run = MakeRun(100, 0.0);  // no filter: always "maybe"
  const uint64_t fp_before = stats_.bloom_false_positives;
  EXPECT_EQ(run->Get(5, true), nullptr);  // between keys 0 and 10
  EXPECT_EQ(stats_.bloom_false_positives, fp_before + 1);
}

TEST_F(RunTest, FullIteratorScansAllEntriesAndPages) {
  auto run = MakeRun(10);
  const uint64_t before = stats_.compaction_pages_read;
  Run::Iterator it = run->NewIterator(IoContext::kCompaction);
  int count = 0;
  Key prev = 0;
  for (; it.Valid(); it.Next()) {
    if (count > 0) EXPECT_GT(it.entry().key, prev);
    prev = it.entry().key;
    ++count;
  }
  EXPECT_EQ(count, 10);
  EXPECT_EQ(stats_.compaction_pages_read - before, 3u);
}

TEST_F(RunTest, RangeIteratorTouchesOnlyOverlappingPages) {
  auto run = MakeRun(100);  // 25 pages of 4 entries, keys 0..990
  const uint64_t before = stats_.range_pages_read;
  auto it = run->NewRangeIterator(200, 240);  // keys 200..230: pages 5-6
  ASSERT_TRUE(it.has_value());
  std::vector<Key> keys;
  for (; it->Valid(); it->Next()) keys.push_back(it->entry().key);
  EXPECT_GE(keys.size(), 4u);  // at least the 4 in-range keys
  EXPECT_LE(stats_.range_pages_read - before, 2u);
  EXPECT_EQ(stats_.range_seeks, 1u);
}

TEST_F(RunTest, RangeIteratorMissReturnsNulloptWithoutIo) {
  auto run = MakeRun(10);  // keys 0..90
  const uint64_t before = stats_.pages_read;
  EXPECT_FALSE(run->NewRangeIterator(100, 200).has_value());
  EXPECT_EQ(stats_.pages_read, before);
  EXPECT_EQ(stats_.range_seeks, 0u);
}

TEST_F(RunTest, BlindSeekReadsOnePage) {
  auto run = MakeRun(10);
  const uint64_t before = stats_.range_pages_read;
  run->BlindSeek();
  EXPECT_EQ(stats_.range_pages_read, before + 1);
  EXPECT_EQ(stats_.range_seeks, 1u);
}

TEST(RunBuilderTest, RejectsOutOfOrderKeys) {
  Statistics stats;
  MemPageStore store(4, &stats);
  RunBuilder b(&store, 5.0, IoContext::kFlush);
  b.Add(Entry{10, 1, 0, EntryType::kValue});
  EXPECT_DEATH(b.Add(Entry{10, 2, 0, EntryType::kValue}), "ascending");
  RunBuilder c(&store, 5.0, IoContext::kFlush);
  c.Add(Entry{10, 1, 0, EntryType::kValue});
  EXPECT_DEATH(c.Add(Entry{5, 1, 0, EntryType::kValue}), "ascending");
}

TEST(RunBuilderTest, TracksSize) {
  Statistics stats;
  MemPageStore store(4, &stats);
  RunBuilder b(&store, 5.0, IoContext::kFlush);
  EXPECT_TRUE(b.empty());
  b.Add(Entry{1, 1, 0, EntryType::kValue});
  b.Add(Entry{2, 1, 0, EntryType::kValue});
  EXPECT_EQ(b.size(), 2u);
  auto run = b.Finish().value();
  EXPECT_EQ(run->num_entries(), 2u);
}

TEST(RunLifetimeTest, DestructionFreesSegment) {
  Statistics stats;
  MemPageStore store(4, &stats);
  {
    std::vector<Entry> entries{{1, 1, 1, EntryType::kValue}};
    auto run = BuildRun(&store, entries, 5.0, IoContext::kFlush).value();
  }
  // Segment freed: store no longer knows it (reading would abort, so we
  // only verify indirectly by building another run with a fresh id).
  std::vector<Entry> entries{{2, 1, 2, EntryType::kValue}};
  auto run2 = BuildRun(&store, entries, 5.0, IoContext::kFlush).value();
  EXPECT_EQ(run2->num_entries(), 1u);
}

}  // namespace
}  // namespace endure::lsm
