// Differential tests: seeded random op traces (uniform and skewed key
// distributions) run against the engine front-ends and a std::map oracle.
// Every Get/Scan is compared op-by-op, so a divergence reports the seed
// and the first diverging op index — a deterministic reproducer. Both
// front-ends (DB, ShardedDB) x both storage backends x both maintenance
// modes are covered; the multi-threaded linearizability side lives in
// sharded_db_test.cc.
//
// The kill-point harness at the bottom additionally drops the process
// state (CrashForTesting: WAL abandoned mid-buffer, no shutdown
// checkpoint) at a seed-derived random op, reopens the durable
// deployment, and verifies it against the oracle's state at the kill
// point — under WalSyncMode::kPerBatch every acknowledged write must
// survive — then keeps driving the same trace on the recovered instance.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "lsm/db.h"
#include "lsm/sharded_db.h"
#include "testing/reference_model.h"
#include "util/random.h"

namespace endure::lsm {
namespace {

using endure::testing::GenerateTrace;
using endure::testing::KeyDistribution;
using endure::testing::Op;
using endure::testing::ReferenceModel;
using endure::testing::VersionedOracle;

Options SmallOpts(StorageBackend backend) {
  Options o;
  o.size_ratio = 4;
  o.buffer_entries = 128;  // small buffer: traces cross many flush edges
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 6.0;
  o.backend = backend;
  o.storage_dir = "/tmp/endure_differential_test";
  return o;
}

/// Runs ops[begin, end) against `db` and `oracle`; fails (with seed and
/// op index) at the first divergence. Works for any front-end with the
/// DB surface. kReconfigure ops apply `tunings[op.value]` live
/// (ApplyTuning); the oracle is untouched — a reconfiguration must never
/// change contents.
template <typename DbT>
void RunOps(DbT* db, const std::vector<Op>& ops, size_t begin, size_t end,
            ReferenceModel* oracle_ptr, uint64_t seed,
            const std::vector<Options>* tunings = nullptr,
            VersionedOracle* versioned = nullptr) {
  ReferenceModel& oracle = *oracle_ptr;
  for (size_t i = begin; i < end; ++i) {
    const Op& op = ops[i];
    SCOPED_TRACE(::testing::Message()
                 << "seed=" << seed << " op_index=" << i << " "
                 << op.ToString());
    switch (op.kind) {
      case Op::kPut:
        db->Put(op.key, op.value);
        oracle.Put(op.key, op.value);
        if (versioned != nullptr) versioned->Put(op.key, op.value);
        break;
      case Op::kDelete:
        db->Delete(op.key);
        oracle.Delete(op.key);
        if (versioned != nullptr) versioned->Delete(op.key);
        break;
      case Op::kGet: {
        const auto got = db->Get(op.key);
        const auto want = oracle.Get(op.key);
        ASSERT_EQ(got.has_value(), want.has_value());
        if (want.has_value()) ASSERT_EQ(*got, *want);
        break;
      }
      case Op::kScan: {
        const std::vector<Entry> got = db->Scan(op.key, op.hi).value();
        const auto want = oracle.Scan(op.key, op.hi);
        ASSERT_EQ(got.size(), want.size());
        for (size_t j = 0; j < want.size(); ++j) {
          ASSERT_EQ(got[j].key, want[j].first);
          ASSERT_EQ(got[j].value, want[j].second);
        }
        break;
      }
      case Op::kFlush:
        db->Flush();
        break;
      case Op::kReconfigure: {
        ASSERT_NE(tunings, nullptr);
        ASSERT_TRUE(
            db->ApplyTuning((*tunings)[op.value % tunings->size()]).ok());
        break;
      }
      case Op::kSnapshotScan: {
        // Single-threaded trace: the only valid snapshot is the latest
        // state, so the validity window degenerates to one index. A
        // widened window must also accept (monotonicity of the check).
        ASSERT_NE(versioned, nullptr);
        const std::vector<Entry> got = db->Scan(op.key, op.hi).value();
        std::vector<std::pair<Key, Value>> observed;
        observed.reserve(got.size());
        for (const Entry& e : got) observed.emplace_back(e.key, e.value);
        const uint64_t now = versioned->last_index();
        uint64_t matched = 0;
        ASSERT_TRUE(versioned->ScanMatchesSomeIndex(observed, op.key, op.hi,
                                                    now, now, &matched));
        ASSERT_EQ(matched, now);
        const uint64_t k_low = now >= 16 ? now - 16 : 0;
        ASSERT_TRUE(versioned->ScanMatchesSomeIndex(observed, op.key, op.hi,
                                                    k_low, now));
        break;
      }
    }
  }
}

/// Full-state check: the whole key domain in one scan against the oracle.
template <typename DbT>
void VerifyFullScan(DbT* db, const ReferenceModel& oracle, uint64_t seed,
                    const char* where) {
  const std::vector<Entry> got = db->Scan(0, ~0ull).value();
  const auto want = oracle.Scan(0, ~0ull);
  ASSERT_EQ(got.size(), want.size()) << "seed=" << seed << " " << where;
  for (size_t j = 0; j < want.size(); ++j) {
    ASSERT_EQ(got[j].key, want[j].first) << "seed=" << seed << " " << where;
    ASSERT_EQ(got[j].value, want[j].second)
        << "seed=" << seed << " " << where;
  }
}

/// Whole-trace differential: fresh oracle, every op, final scan.
template <typename DbT>
void RunDifferential(DbT* db, const std::vector<Op>& ops, uint64_t seed,
                     const std::vector<Options>* tunings = nullptr) {
  ReferenceModel oracle;
  RunOps(db, ops, 0, ops.size(), &oracle, seed, tunings);
  if (::testing::Test::HasFatalFailure()) return;
  VerifyFullScan(db, oracle, seed, "final scan");
}

struct Config {
  StorageBackend backend;
  KeyDistribution dist;
  size_t ops;
};

std::vector<Config> Configs() {
  return {
      {StorageBackend::kMemory, KeyDistribution::kUniform, 6000},
      {StorageBackend::kMemory, KeyDistribution::kSkewed, 6000},
      {StorageBackend::kFile, KeyDistribution::kUniform, 1500},
      {StorageBackend::kFile, KeyDistribution::kSkewed, 1500},
  };
}

TEST(DifferentialTest, DbMatchesOracle) {
  for (const Config& c : Configs()) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      auto db = DB::Open(SmallOpts(c.backend));
      ASSERT_TRUE(db.ok());
      RunDifferential(db->get(), GenerateTrace(seed, c.ops, c.dist), seed);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(DifferentialTest, ShardedDbMatchesOracle) {
  for (const Config& c : Configs()) {
    for (uint64_t seed = 11; seed <= 13; ++seed) {
      Options o = SmallOpts(c.backend);
      o.num_shards = 4;
      o.background_maintenance = true;
      auto db = ShardedDB::Open(o);
      ASSERT_TRUE(db.ok());
      RunDifferential(db->get(), GenerateTrace(seed, c.ops, c.dist), seed);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(DifferentialTest, ShardedDbForegroundMatchesOracle) {
  // Sharding without background maintenance: pure partitioning layer.
  for (const Config& c : Configs()) {
    Options o = SmallOpts(c.backend);
    o.num_shards = 3;  // non-power-of-two on purpose
    auto db = ShardedDB::Open(o);
    ASSERT_TRUE(db.ok());
    RunDifferential(db->get(), GenerateTrace(21, c.ops, c.dist), 21);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// Tuning presets a live reconfiguration cycles through mid-trace: every
/// mutable knob moves (policy, size ratio, Bloom budget, buffer size,
/// filter allocation, fence skipping), immutable ones stay.
std::vector<Options> ReconfigPresets(const Options& base) {
  std::vector<Options> presets;
  Options a = base;  // shrink T, switch to tiering, fatter filters
  a.size_ratio = 2;
  a.policy = CompactionPolicy::kTiering;
  a.filter_bits_per_entry = 10.0;
  a.buffer_entries = base.buffer_entries / 2;
  presets.push_back(a);
  Options b = base;  // lazy leveling, larger buffer, uniform filters
  b.policy = CompactionPolicy::kLazyLeveling;
  b.size_ratio = 6;
  b.buffer_entries = base.buffer_entries * 2;
  b.filter_allocation = FilterAllocation::kUniform;
  presets.push_back(b);
  Options c = base;  // back to leveling with model-faithful scans
  c.fence_pointer_skip = false;
  c.filter_bits_per_entry = 2.0;
  presets.push_back(c);
  return presets;
}

TEST(DifferentialTest, DbMatchesOracleAcrossLiveReconfigs) {
  for (const Config& c : Configs()) {
    for (uint64_t seed = 31; seed <= 32; ++seed) {
      Options base = SmallOpts(c.backend);
      auto db = DB::Open(base);
      ASSERT_TRUE(db.ok());
      const std::vector<Options> presets = ReconfigPresets(base);
      const auto ops = endure::testing::InjectReconfigures(
          GenerateTrace(seed, c.ops, c.dist), /*every=*/c.ops / 7,
          presets.size());
      RunDifferential(db->get(), ops, seed, &presets);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(DifferentialTest, ShardedDbMatchesOracleAcrossLiveReconfigs) {
  // Background maintenance on: reconfigure while flush/migration jobs are
  // in flight on the pool, across both backends and key skews.
  for (const Config& c : Configs()) {
    for (uint64_t seed = 41; seed <= 42; ++seed) {
      Options base = SmallOpts(c.backend);
      base.num_shards = 4;
      base.background_maintenance = true;
      auto db = ShardedDB::Open(base);
      ASSERT_TRUE(db.ok());
      const std::vector<Options> presets = ReconfigPresets(base);
      const auto ops = endure::testing::InjectReconfigures(
          GenerateTrace(seed, c.ops, c.dist), /*every=*/c.ops / 7,
          presets.size());
      RunDifferential(db->get(), ops, seed, &presets);
      if (::testing::Test::HasFatalFailure()) return;
      // The trace left migrations pending; converge and re-check state.
      (*db)->WaitForMaintenance();
      EXPECT_TRUE((*db)->Progress().structure_conforming());
    }
  }
}

/// Kill-point recovery differential: run a prefix of the trace against a
/// durable deployment, kill it (no shutdown checkpoint, WAL buffer
/// dropped), reopen the directory, verify the recovered state equals the
/// oracle at the kill point (kPerBatch: zero acked-write loss), then
/// drive the rest of the trace on the recovered instance and verify the
/// final state. `reconfigure` injects live retunes into the trace so
/// kills also land between ApplyTuning and migration convergence.
template <typename DbT>
void RunKillPointDifferential(const Options& opts, uint64_t seed,
                              size_t num_ops, KeyDistribution dist,
                              bool reconfigure) {
  std::filesystem::remove_all(opts.storage_dir);
  std::vector<Op> ops = GenerateTrace(seed, num_ops, dist);
  std::vector<Options> presets;
  if (reconfigure) {
    presets = ReconfigPresets(opts);
    ops = endure::testing::InjectReconfigures(ops, /*every=*/num_ops / 5,
                                              presets.size());
  }
  // Seed-derived kill point somewhere in the middle half of the trace.
  Rng rng(seed * 977);
  const size_t kill_at =
      ops.size() / 4 + rng.UniformInt(0, ops.size() / 2);

  ReferenceModel oracle;
  {
    auto db = DbT::Open(opts);
    ASSERT_TRUE(db.ok());
    RunOps(db->get(), ops, 0, kill_at, &oracle, seed,
           reconfigure ? &presets : nullptr);
    if (::testing::Test::HasFatalFailure()) return;
    (*db)->CrashForTesting();
  }
  auto db = DbT::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  VerifyFullScan(db->get(), oracle, seed, "post-recovery scan");
  if (::testing::Test::HasFatalFailure()) return;
  // The recovered deployment keeps serving the rest of the trace.
  RunOps(db->get(), ops, kill_at, ops.size(), &oracle, seed,
         reconfigure ? &presets : nullptr);
  if (::testing::Test::HasFatalFailure()) return;
  VerifyFullScan(db->get(), oracle, seed, "post-restart final scan");
}

Options DurableSmallOpts(const std::string& dir) {
  Options o = SmallOpts(StorageBackend::kFile);
  o.storage_dir = dir;
  o.durability = true;
  // Per-batch commits: every acknowledged write must survive the kill.
  o.wal_sync_mode = WalSyncMode::kPerBatch;
  return o;
}

TEST(DifferentialTest, KillPointRecoveryDb) {
  for (uint64_t seed = 51; seed <= 53; ++seed) {
    RunKillPointDifferential<DB>(
        DurableSmallOpts("/tmp/endure_diff_kill_db"), seed, 1200,
        KeyDistribution::kUniform, /*reconfigure=*/false);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DifferentialTest, KillPointRecoveryDbAcrossReconfigs) {
  for (uint64_t seed = 61; seed <= 62; ++seed) {
    RunKillPointDifferential<DB>(
        DurableSmallOpts("/tmp/endure_diff_kill_db_retune"), seed, 1200,
        KeyDistribution::kSkewed, /*reconfigure=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DifferentialTest, KillPointRecoveryShardedDb) {
  for (uint64_t seed = 71; seed <= 73; ++seed) {
    Options o = DurableSmallOpts("/tmp/endure_diff_kill_sharded");
    o.num_shards = 4;
    o.background_maintenance = true;
    RunKillPointDifferential<ShardedDB>(o, seed, 1200,
                                        KeyDistribution::kUniform,
                                        /*reconfigure=*/false);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DifferentialTest, KillPointRecoveryShardedDbAcrossReconfigs) {
  // The hardest case: kills land while background maintenance is
  // flushing and a live retune's migration is mid-flight; the reopened
  // deployment must resume both without losing an acknowledged write.
  for (uint64_t seed = 81; seed <= 82; ++seed) {
    Options o = DurableSmallOpts("/tmp/endure_diff_kill_sharded_retune");
    o.num_shards = 3;
    o.background_maintenance = true;
    RunKillPointDifferential<ShardedDB>(o, seed, 1200,
                                        KeyDistribution::kSkewed,
                                        /*reconfigure=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DifferentialTest, VersionedOracleReconstructsPastStates) {
  // The versioned oracle itself: per-index reconstruction, window
  // acceptance/rejection, and truncation — exercised directly so a
  // harness failure can be attributed to engine vs. oracle.
  VersionedOracle v;
  EXPECT_EQ(v.last_index(), 0u);
  EXPECT_EQ(v.Put(5, 50), 1u);
  EXPECT_EQ(v.Put(7, 70), 2u);
  EXPECT_EQ(v.Put(5, 51), 3u);
  EXPECT_EQ(v.Delete(7), 4u);

  EXPECT_EQ(v.ValueAt(5, 0), std::nullopt);
  EXPECT_EQ(v.ValueAt(5, 1), std::make_optional<Value>(50));
  EXPECT_EQ(v.ValueAt(5, 2), std::make_optional<Value>(50));
  EXPECT_EQ(v.ValueAt(5, 4), std::make_optional<Value>(51));
  EXPECT_EQ(v.ValueAt(7, 3), std::make_optional<Value>(70));
  EXPECT_EQ(v.ValueAt(7, 4), std::nullopt);

  using Pairs = std::vector<std::pair<Key, Value>>;
  EXPECT_EQ(v.ScanAt(0, 100, 2), (Pairs{{5, 50}, {7, 70}}));
  EXPECT_EQ(v.ScanAt(0, 100, 4), (Pairs{{5, 51}}));

  // A state that held at index 2 is accepted by any window covering 2
  // and rejected by windows excluding it.
  const Pairs at2{{5, 50}, {7, 70}};
  uint64_t matched = ~0ull;
  EXPECT_TRUE(v.ScanMatchesSomeIndex(at2, 0, 100, 0, 4, &matched));
  EXPECT_EQ(matched, 2u);
  EXPECT_TRUE(v.ScanMatchesSomeIndex(at2, 0, 100, 2, 2));
  EXPECT_FALSE(v.ScanMatchesSomeIndex(at2, 0, 100, 3, 4));
  EXPECT_FALSE(v.ScanMatchesSomeIndex(at2, 0, 100, 0, 1));
  // A state that never held is rejected by every window: key 7 reads 70
  // only at indices 2-3, but key 5 is absent only at index 0 — no single
  // index explains both. This is the mixed-prefix (torn) read the
  // snapshot path must make impossible.
  EXPECT_FALSE(v.ScanMatchesSomeIndex(Pairs{{7, 70}}, 0, 100, 0, 4));

  // Point-read windows follow the same rule.
  EXPECT_TRUE(v.GetMatchesSomeIndex(5, std::make_optional<Value>(50), 0, 2));
  EXPECT_TRUE(v.GetMatchesSomeIndex(5, std::make_optional<Value>(51), 2, 3));
  EXPECT_FALSE(v.GetMatchesSomeIndex(5, std::make_optional<Value>(50), 3, 4));
  EXPECT_TRUE(v.GetMatchesSomeIndex(7, std::nullopt, 3, 4));
  EXPECT_FALSE(v.GetMatchesSomeIndex(7, std::nullopt, 2, 3));

  // Truncation rolls back to a prefix (the crash-recovery realignment).
  v.TruncateTo(2);
  EXPECT_EQ(v.last_index(), 2u);
  EXPECT_EQ(v.ScanAt(0, 100, 2), at2);
  EXPECT_EQ(v.Put(9, 90), 3u);  // indices resume from the truncation point
  EXPECT_EQ(v.ValueAt(5, 3), std::make_optional<Value>(50));
}

TEST(DifferentialTest, DbSnapshotScansMatchVersionedOracle) {
  // Single-threaded snapshot-consistency differential: kSnapshotScan ops
  // route through the same lock-free snapshot read path and must equal
  // the versioned oracle's latest state exactly (the window degenerates
  // when there is no concurrency).
  for (const Config& c : Configs()) {
    auto db = DB::Open(SmallOpts(c.backend));
    ASSERT_TRUE(db.ok());
    ReferenceModel oracle;
    VersionedOracle versioned;
    const auto ops = GenerateTrace(91, c.ops, c.dist, /*key_domain=*/8192,
                                   /*snapshot_scan_fraction=*/0.15);
    RunOps(db->get(), ops, 0, ops.size(), &oracle, 91, nullptr, &versioned);
    if (::testing::Test::HasFatalFailure()) return;
    VerifyFullScan(db->get(), oracle, 91, "final scan");
  }
}

TEST(DifferentialTest, ShardedDbSnapshotScansMatchVersionedOracle) {
  for (const Config& c : Configs()) {
    Options o = SmallOpts(c.backend);
    o.num_shards = 4;
    o.background_maintenance = true;
    o.block_cache_bytes = 64 * 1024;  // reads also exercise the cache
    auto db = ShardedDB::Open(o);
    ASSERT_TRUE(db.ok());
    ReferenceModel oracle;
    VersionedOracle versioned;
    const auto ops = GenerateTrace(92, c.ops, c.dist, /*key_domain=*/8192,
                                   /*snapshot_scan_fraction=*/0.15);
    RunOps(db->get(), ops, 0, ops.size(), &oracle, 92, nullptr, &versioned);
    if (::testing::Test::HasFatalFailure()) return;
    VerifyFullScan(db->get(), oracle, 92, "final scan");
  }
}

TEST(DifferentialTest, SealedBufferStaysVisible) {
  // Single-tree background mode: fill exactly to the seal edge and verify
  // every acknowledged write is readable while the buffer sits sealed.
  Options o = SmallOpts(StorageBackend::kMemory);
  o.background_maintenance = true;
  auto db = DB::Open(o);
  ASSERT_TRUE(db.ok());
  ReferenceModel oracle;
  for (Key k = 0; k < 3 * o.buffer_entries; ++k) {
    (*db)->Put(k, k + 1);
    oracle.Put(k, k + 1);
  }
  // Nothing external ever called FlushSealedMemtable: reads must still
  // see the sealed buffer (and the inline fallback keeps at most one).
  for (Key k = 0; k < 3 * o.buffer_entries; ++k) {
    const auto got = (*db)->Get(k);
    ASSERT_TRUE(got.has_value()) << "key " << k << " lost behind the seal";
    EXPECT_EQ(*got, *oracle.Get(k));
  }
}

}  // namespace
}  // namespace endure::lsm
