#include "lsm/compaction.h"

#include <gtest/gtest.h>

#include "lsm/run_builder.h"

namespace endure::lsm {
namespace {

class CompactionTest : public ::testing::Test {
 protected:
  CompactionTest() : store_(4, &stats_) {}

  std::shared_ptr<endure::lsm::Run> RunOf(std::vector<Entry> entries) {
    return BuildRun(&store_, entries, 8.0, IoContext::kFlush).value();
  }

  Entry Val(Key k, SeqNum s, Value v) {
    return Entry{k, s, v, EntryType::kValue};
  }
  Entry Tomb(Key k, SeqNum s) {
    return Entry{k, s, 0, EntryType::kTombstone};
  }

  Statistics stats_;
  MemPageStore store_;
};

TEST_F(CompactionTest, MergesDisjointRuns) {
  auto a = RunOf({Val(1, 2, 10), Val(3, 2, 30)});
  auto b = RunOf({Val(2, 1, 20), Val(4, 1, 40)});
  auto merged = MergeRuns(&store_, {a, b}, 8.0, false).value();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->num_entries(), 4u);
  EXPECT_EQ(merged->min_key(), 1u);
  EXPECT_EQ(merged->max_key(), 4u);
}

TEST_F(CompactionTest, NewestInputWinsConflicts) {
  auto newer = RunOf({Val(5, 10, 500)});
  auto older = RunOf({Val(5, 1, 100), Val(6, 1, 600)});
  auto merged = MergeRuns(&store_, {newer, older}, 8.0, false).value();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->num_entries(), 2u);
  const Entry* e = merged->Get(5, true);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 500u);
}

TEST_F(CompactionTest, DropTombstonesAtBottom) {
  auto newer = RunOf({Tomb(1, 10), Val(2, 10, 20)});
  auto older = RunOf({Val(1, 1, 10), Val(3, 1, 30)});
  auto merged = MergeRuns(&store_, {newer, older}, 8.0,
                          /*drop_tombstones=*/true).value();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->num_entries(), 2u);  // keys 2, 3; key 1 annihilated
  EXPECT_EQ(merged->Get(1, true), nullptr);
}

TEST_F(CompactionTest, KeepTombstonesAboveBottom) {
  auto newer = RunOf({Tomb(1, 10)});
  auto older = RunOf({Val(1, 1, 10)});
  auto merged = MergeRuns(&store_, {newer, older}, 8.0,
                          /*drop_tombstones=*/false).value();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->num_entries(), 1u);
  const Entry* e = merged->Get(1, true);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->is_tombstone());
}

TEST_F(CompactionTest, AllTombstoneMergeReturnsNull) {
  auto a = RunOf({Tomb(1, 2), Tomb(2, 2)});
  auto merged = MergeRuns(&store_, {a}, 8.0, /*drop_tombstones=*/true).value();
  EXPECT_EQ(merged, nullptr);
}

TEST_F(CompactionTest, CompactionIoAccounted) {
  auto a = RunOf({Val(1, 2, 1), Val(2, 2, 2), Val(3, 2, 3), Val(4, 2, 4),
                  Val(5, 2, 5)});  // 2 pages
  auto b = RunOf({Val(6, 1, 6), Val(7, 1, 7)});  // 1 page
  const uint64_t read_before = stats_.compaction_pages_read;
  const uint64_t write_before = stats_.compaction_pages_written;
  auto merged = MergeRuns(&store_, {a, b}, 8.0, false).value();
  EXPECT_EQ(stats_.compaction_pages_read - read_before, 3u);
  EXPECT_EQ(stats_.compaction_pages_written - write_before, 2u);  // 7 keys
  EXPECT_EQ(merged->num_entries(), 7u);
}

TEST_F(CompactionTest, ManyRunsMerge) {
  std::vector<std::shared_ptr<endure::lsm::Run>> runs;
  for (int r = 0; r < 8; ++r) {
    std::vector<Entry> entries;
    for (int i = 0; i < 10; ++i) {
      entries.push_back(Val(static_cast<Key>(i * 8 + r),
                            static_cast<SeqNum>(100 - r),
                            static_cast<Value>(r)));
    }
    runs.push_back(RunOf(entries));
  }
  auto merged = MergeRuns(&store_, runs, 8.0, false).value();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->num_entries(), 80u);
}

}  // namespace
}  // namespace endure::lsm
