#include "lsm/page_store.h"

#include <gtest/gtest.h>

#include "lsm/options.h"

namespace endure::lsm {
namespace {

std::vector<Entry> MakeEntries(int n) {
  std::vector<Entry> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Entry{static_cast<Key>(i * 2), static_cast<SeqNum>(i),
                        static_cast<Value>(i * 100),
                        i % 7 == 0 ? EntryType::kTombstone
                                   : EntryType::kValue});
  }
  return out;
}

template <typename StoreFactory>
void RunStoreContractTests(StoreFactory make_store) {
  Statistics stats;
  auto store = make_store(&stats);

  const std::vector<Entry> entries = MakeEntries(10);  // B=4 -> 3 pages
  const SegmentId seg =
      store->WriteSegment(entries, IoContext::kFlush).value();
  EXPECT_EQ(store->NumPages(seg), 3u);
  EXPECT_EQ(store->NumEntries(seg), 10u);
  EXPECT_EQ(stats.pages_written, 3u);
  EXPECT_EQ(stats.flush_pages_written, 3u);

  PageBuffer page;
  store->ReadPage(seg, 0, IoContext::kPointQuery, &page);
  ASSERT_EQ(page.size(), 4u);
  EXPECT_EQ(page[0].key, 0u);
  EXPECT_EQ(page[3].key, 6u);
  EXPECT_EQ(page[0].type, EntryType::kTombstone);
  EXPECT_EQ(page[1].type, EntryType::kValue);
  EXPECT_EQ(stats.pages_read, 1u);
  EXPECT_EQ(stats.point_pages_read, 1u);

  // Last (partial) page has 2 entries.
  store->ReadPage(seg, 2, IoContext::kRangeQuery, &page);
  ASSERT_EQ(page.size(), 2u);
  EXPECT_EQ(page[1].key, 18u);
  EXPECT_EQ(page[1].value, 900u);
  EXPECT_EQ(stats.range_pages_read, 1u);

  // A second segment coexists.
  const SegmentId seg2 =
      store->WriteSegment(MakeEntries(4), IoContext::kCompaction).value();
  EXPECT_NE(seg, seg2);
  EXPECT_EQ(store->NumPages(seg2), 1u);
  EXPECT_EQ(stats.compaction_pages_written, 1u);

  store->FreeSegment(seg);
  store->ReadPage(seg2, 0, IoContext::kCompaction, &page);
  EXPECT_EQ(page.size(), 4u);
  EXPECT_EQ(stats.compaction_pages_read, 1u);
}

template <typename StoreFactory>
void RunSegmentWriterContractTests(StoreFactory make_store) {
  Statistics stats;
  auto store = make_store(&stats);
  const std::vector<Entry> entries = MakeEntries(10);  // B=4 -> 3 pages

  // Streaming write: pages are counted as they are appended, before Seal.
  auto writer = store->NewSegmentWriter(IoContext::kCompaction);
  EXPECT_EQ(stats.pages_written, 0u);
  ASSERT_TRUE(writer->AppendPage(entries.data(), 4).ok());
  ASSERT_TRUE(writer->AppendPage(entries.data() + 4, 4).ok());
  EXPECT_EQ(stats.compaction_pages_written, 2u);
  ASSERT_TRUE(writer->AppendPage(entries.data() + 8, 2).ok());  // partial
  const SegmentId seg = writer->Seal().value();
  EXPECT_EQ(stats.compaction_pages_written, 3u);
  EXPECT_EQ(store->NumPages(seg), 3u);
  EXPECT_EQ(store->NumEntries(seg), 10u);

  // Round trip, including the partial page.
  PageBuffer page;
  store->ReadPage(seg, 2, IoContext::kPointQuery, &page);
  ASSERT_EQ(page.size(), 2u);
  EXPECT_EQ(page[0].key, 16u);
  EXPECT_EQ(page[1].key, 18u);

  // An abandoned writer (destroyed unsealed) leaves no readable segment
  // but keeps its page writes counted: the device I/O happened.
  {
    auto abandoned = store->NewSegmentWriter(IoContext::kFlush);
    ASSERT_TRUE(abandoned->AppendPage(entries.data(), 4).ok());
  }
  EXPECT_EQ(stats.flush_pages_written, 1u);
  // The sealed segment is still intact.
  EXPECT_EQ(store->NumEntries(seg), 10u);
}

TEST(MemPageStoreTest, Contract) {
  RunStoreContractTests([](Statistics* stats) {
    return std::make_unique<MemPageStore>(4, stats);
  });
}

TEST(MemPageStoreTest, SegmentWriterContract) {
  RunSegmentWriterContractTests([](Statistics* stats) {
    return std::make_unique<MemPageStore>(4, stats);
  });
}

TEST(FilePageStoreTest, Contract) {
  RunStoreContractTests([](Statistics* stats) {
    return std::make_unique<FilePageStore>(4, stats,
                                           "/tmp/endure_test_store");
  });
}

TEST(FilePageStoreTest, SegmentWriterContract) {
  RunSegmentWriterContractTests([](Statistics* stats) {
    return std::make_unique<FilePageStore>(4, stats,
                                           "/tmp/endure_test_store");
  });
}

TEST(FilePageStoreTest, RoundTripsEntryEncoding) {
  Statistics stats;
  FilePageStore store(2, &stats, "/tmp/endure_test_store2");
  std::vector<Entry> in{
      Entry{0xDEADBEEFCAFEBABEull, 42, 0x0123456789ABCDEFull,
            EntryType::kValue},
      Entry{1, 2, 3, EntryType::kTombstone}};
  const SegmentId seg =
      store.WriteSegment(in, IoContext::kBulkLoad).value();
  PageBuffer out;
  store.ReadPage(seg, 0, IoContext::kPointQuery, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, in[0].key);
  EXPECT_EQ(out[0].seq, in[0].seq);
  EXPECT_EQ(out[0].value, in[0].value);
  EXPECT_EQ(out[0].type, in[0].type);
  EXPECT_EQ(out[1].type, EntryType::kTombstone);
}

TEST(PageBufferTest, ReserveIsIdempotentAndKeepsCapacity) {
  PageBuffer buf(8);
  EXPECT_EQ(buf.capacity(), 8u);
  EXPECT_EQ(buf.size(), 0u);
  buf.data()[0] = Entry{7, 1, 70, EntryType::kValue};
  buf.set_size(1);
  buf.Reserve(4);  // smaller: no-op, contents kept
  EXPECT_EQ(buf.capacity(), 8u);
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0].key, 7u);
}

TEST(MakePageStoreTest, FactorySelectsBackend) {
  Statistics stats;
  auto mem = MakePageStore(4, &stats,
                           static_cast<int>(StorageBackend::kMemory), "");
  EXPECT_NE(dynamic_cast<MemPageStore*>(mem.get()), nullptr);
  auto file = MakePageStore(4, &stats,
                            static_cast<int>(StorageBackend::kFile),
                            "/tmp/endure_test_store3");
  EXPECT_NE(dynamic_cast<FilePageStore*>(file.get()), nullptr);
}

TEST(StatisticsTest, DeltaSubtractsAllCounters) {
  Statistics a;
  a.pages_read = 10;
  a.gets = 5;
  a.compaction_pages_written = 7;
  Statistics b = a;
  b.pages_read = 25;
  b.gets = 9;
  b.compaction_pages_written = 11;
  const Statistics d = b.Delta(a);
  EXPECT_EQ(d.pages_read, 15u);
  EXPECT_EQ(d.gets, 4u);
  EXPECT_EQ(d.compaction_pages_written, 4u);
  EXPECT_EQ(d.writes, 0u);
}

TEST(StatisticsTest, ToStringContainsCounters) {
  Statistics s;
  s.pages_read = 123;
  const std::string str = s.ToString();
  EXPECT_NE(str.find("pages_read=123"), std::string::npos);
}

}  // namespace
}  // namespace endure::lsm
