#include "lsm/merge_iterator.h"

#include <gtest/gtest.h>

namespace endure::lsm {
namespace {

Entry Val(Key k, SeqNum s, Value v) {
  return Entry{k, s, v, EntryType::kValue};
}
Entry Tomb(Key k, SeqNum s) { return Entry{k, s, 0, EntryType::kTombstone}; }

std::unique_ptr<EntryStream> Stream(std::vector<Entry> v) {
  return std::make_unique<VectorStream>(std::move(v));
}

TEST(VectorStreamTest, IteratesInOrder) {
  VectorStream s({Val(1, 1, 10), Val(2, 1, 20)});
  ASSERT_TRUE(s.Valid());
  EXPECT_EQ(s.entry().key, 1u);
  s.Next();
  EXPECT_EQ(s.entry().key, 2u);
  s.Next();
  EXPECT_FALSE(s.Valid());
}

TEST(MergeIteratorTest, MergesDisjointStreams) {
  std::vector<std::unique_ptr<EntryStream>> in;
  in.push_back(Stream({Val(1, 9, 1), Val(3, 9, 3)}));
  in.push_back(Stream({Val(2, 1, 2), Val(4, 1, 4)}));
  MergeIterator m(std::move(in));
  std::vector<Key> keys;
  for (; m.Valid(); m.Next()) keys.push_back(m.entry().key);
  EXPECT_EQ(keys, (std::vector<Key>{1, 2, 3, 4}));
}

TEST(MergeIteratorTest, NewestSourceWinsOnDuplicateKey) {
  std::vector<std::unique_ptr<EntryStream>> in;
  in.push_back(Stream({Val(5, 100, 555)}));  // rank 0: newest
  in.push_back(Stream({Val(5, 50, 111)}));   // rank 1: older
  MergeIterator m(std::move(in));
  ASSERT_TRUE(m.Valid());
  EXPECT_EQ(m.entry().value, 555u);
  m.Next();
  EXPECT_FALSE(m.Valid());  // duplicate consumed
}

TEST(MergeIteratorTest, ThreeWayDuplicates) {
  std::vector<std::unique_ptr<EntryStream>> in;
  in.push_back(Stream({Val(1, 30, 13), Val(2, 31, 23)}));
  in.push_back(Stream({Val(1, 20, 12)}));
  in.push_back(Stream({Val(1, 10, 11), Val(3, 11, 31)}));
  MergeIterator m(std::move(in));
  std::vector<std::pair<Key, Value>> got;
  for (; m.Valid(); m.Next()) got.push_back({m.entry().key, m.entry().value});
  EXPECT_EQ(got, (std::vector<std::pair<Key, Value>>{{1, 13}, {2, 23},
                                                     {3, 31}}));
}

TEST(MergeIteratorTest, TombstonesEmittedByDefault) {
  std::vector<std::unique_ptr<EntryStream>> in;
  in.push_back(Stream({Tomb(7, 2)}));
  in.push_back(Stream({Val(7, 1, 70)}));
  MergeIterator m(std::move(in));
  ASSERT_TRUE(m.Valid());
  EXPECT_TRUE(m.entry().is_tombstone());
}

TEST(MergeIteratorTest, EmptyInputs) {
  std::vector<std::unique_ptr<EntryStream>> in;
  in.push_back(Stream({}));
  in.push_back(Stream({}));
  MergeIterator m(std::move(in));
  EXPECT_FALSE(m.Valid());
}

TEST(MergeIteratorTest, NoInputs) {
  MergeIterator m(std::vector<std::unique_ptr<EntryStream>>{});
  EXPECT_FALSE(m.Valid());
}

TEST(MergeIteratorTest, NonOwningStreamsMergeIdentically) {
  VectorStream a({Val(1, 9, 1), Val(3, 9, 3)});
  VectorStream b({Val(2, 1, 2), Val(3, 1, 33)});
  MergeIterator m(std::vector<EntryStream*>{&a, &b});
  std::vector<std::pair<Key, Value>> got;
  for (; m.Valid(); m.Next()) got.push_back({m.entry().key, m.entry().value});
  EXPECT_EQ(got, (std::vector<std::pair<Key, Value>>{{1, 1}, {2, 2},
                                                     {3, 3}}));
}

TEST(DrainMergeTest, DropTombstonesFilters) {
  std::vector<std::unique_ptr<EntryStream>> in;
  in.push_back(Stream({Val(1, 5, 10), Tomb(2, 5), Val(3, 5, 30)}));
  MergeIterator m(std::move(in));
  const std::vector<Entry> out = DrainMerge(&m, /*drop_tombstones=*/true);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, 1u);
  EXPECT_EQ(out[1].key, 3u);
}

TEST(DrainMergeTest, KeepTombstonesRetains) {
  std::vector<std::unique_ptr<EntryStream>> in;
  in.push_back(Stream({Val(1, 5, 10), Tomb(2, 5)}));
  MergeIterator m(std::move(in));
  const std::vector<Entry> out = DrainMerge(&m, /*drop_tombstones=*/false);
  EXPECT_EQ(out.size(), 2u);
}

TEST(MergeIteratorTest, TombstoneShadowedByNewerValue) {
  std::vector<std::unique_ptr<EntryStream>> in;
  in.push_back(Stream({Val(9, 10, 99)}));  // newer put
  in.push_back(Stream({Tomb(9, 5)}));      // older delete
  MergeIterator m(std::move(in));
  const std::vector<Entry> out = DrainMerge(&m, true);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 99u);
}

}  // namespace
}  // namespace endure::lsm
