// CompactionScheduler and the prepare/execute/install maintenance
// protocol: rate-limiter semantics, strict priority admission, deadline
// (timer-thread) retry requeues that keep backoffs off the pool workers,
// WaitIdle through self-rescheduling chains, RunSubtasks, partitioned
// merges matching sequential ones byte for byte, and the LsmTree unit
// protocol including its stale-unit discard races. Run under
// ThreadSanitizer in CI's tsan leg.

#include "lsm/compaction_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "lsm/compaction.h"
#include "lsm/lsm_tree.h"
#include "lsm/page_store.h"
#include "lsm/run_builder.h"
#include "lsm/sharded_db.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace endure::lsm {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t MsSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start)
          .count());
}

// ---------------------------------------------------------------- limiter --

TEST(CompactionSchedulerLimiterTest, UnlimitedNeverWaits) {
  RateLimiter limiter(0);
  EXPECT_EQ(limiter.Acquire(1 << 30), 0u);
  EXPECT_EQ(limiter.rate(), 0u);
}

TEST(CompactionSchedulerLimiterTest, BurstThenThrottle) {
  RateLimiter limiter(1 << 20);  // 1 MiB/s, 1 MiB burst
  // The initial burst admits a full second of bytes without waiting.
  EXPECT_EQ(limiter.Acquire(1 << 20), 0u);
  // The bucket surfaces at zero almost immediately, then this chunk
  // borrows half a second of tokens below zero (big chunks are smoothed,
  // not stalled for their full duration)...
  limiter.Acquire(1 << 19);
  // ...so the debt is paid HERE: the next acquire waits it out.
  const auto start = Clock::now();
  limiter.Acquire(1);
  EXPECT_GE(MsSince(start), 200u);
  EXPECT_LT(MsSince(start), 5000u);
}

TEST(CompactionSchedulerLimiterTest, SetRateZeroReleasesWaiters) {
  RateLimiter limiter(1024);  // 1 KiB/s: the second acquire would wait ~60s
  limiter.Acquire(60 * 1024);
  std::thread release([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    limiter.set_rate(0);
  });
  const auto start = Clock::now();
  limiter.Acquire(60 * 1024);
  EXPECT_LT(MsSince(start), 5000u);
  release.join();
}

TEST(CompactionSchedulerLimiterTest, StopReleasesAndDisables) {
  RateLimiter limiter(1024);
  limiter.Acquire(60 * 1024);  // drain the burst far below zero
  std::thread stop([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    limiter.Stop();
  });
  const auto start = Clock::now();
  limiter.Acquire(60 * 1024);
  EXPECT_LT(MsSince(start), 5000u);
  stop.join();
  EXPECT_EQ(limiter.Acquire(1 << 30), 0u);  // stopped: every acquire free
}

// -------------------------------------------------------------- scheduler --

TEST(CompactionSchedulerTest, RunsJobsStrictlyByPriorityThenFifo) {
  ThreadPool pool(1);
  Statistics stats;
  CompactionScheduler sched(&pool, {/*max_parallel=*/1, 0}, &stats);

  // Occupy the single admission slot so the later enqueues pile up in
  // the priority queue rather than racing straight into the pool.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(sched.Enqueue(0, [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));

  std::vector<int> order;
  std::mutex order_mu;
  auto record = [&](int tag) {
    return [&order, &order_mu, tag] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };
  ASSERT_TRUE(sched.Enqueue(2, record(20)));  // major compaction
  ASSERT_TRUE(sched.Enqueue(1, record(10)));  // migration step
  ASSERT_TRUE(sched.Enqueue(0, record(1)));   // flush
  ASSERT_TRUE(sched.Enqueue(0, record(2)));   // flush, after the first
  ASSERT_TRUE(sched.Enqueue(2, record(21)));

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  sched.WaitIdle();

  EXPECT_EQ(order, (std::vector<int>{1, 2, 10, 20, 21}));
  EXPECT_EQ(stats.sched_jobs.load(), 6u);
  EXPECT_GE(stats.sched_queue_peak.load(), 5u);
}

TEST(CompactionSchedulerTest, DelayedJobDoesNotOccupyAWorker) {
  // One worker. A delayed job parked on the timer must not keep an
  // immediate job from running — the regression the deadline queue
  // fixes (the old backoff slept ON the worker).
  ThreadPool pool(1);
  Statistics stats;
  CompactionScheduler sched(&pool, {1, 0}, &stats);

  std::atomic<bool> immediate_ran{false};
  ASSERT_TRUE(sched.EnqueueDelayed(0, 300, [] {}));
  const auto start = Clock::now();
  ASSERT_TRUE(sched.Enqueue(0, [&] { immediate_ran = true; }));
  while (!immediate_ran && MsSince(start) < 5000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(immediate_ran);
  // Ran while the delayed job was still parked, not serialized after it.
  EXPECT_LT(MsSince(start), 250u);
  sched.WaitIdle();  // must cover the delayed job too
  EXPECT_EQ(stats.sched_requeues.load(), 1u);
}

TEST(CompactionSchedulerTest, WaitIdleCoversSelfRequeueChains) {
  ThreadPool pool(2);
  Statistics stats;
  CompactionScheduler sched(&pool, {2, 0}, &stats);
  std::atomic<int> runs{0};
  // The job requeues itself BEFORE returning, so the active count never
  // dips to zero mid-chain.
  std::function<void()> step = [&] {
    if (++runs < 4) sched.Enqueue(1, step);
  };
  ASSERT_TRUE(sched.Enqueue(1, step));
  sched.WaitIdle();
  EXPECT_EQ(runs.load(), 4);
}

TEST(CompactionSchedulerTest, StopDropsQueuedAndRefusesNewJobs) {
  ThreadPool pool(1);
  CompactionScheduler sched(&pool, {1, 0}, nullptr);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  ASSERT_TRUE(sched.Enqueue(0, [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    ++ran;
  }));
  ASSERT_TRUE(sched.Enqueue(0, [&] { ++ran; }));      // queued
  ASSERT_TRUE(sched.EnqueueDelayed(0, 10000, [&] { ++ran; }));
  sched.Stop();
  EXPECT_TRUE(sched.stopped());
  EXPECT_FALSE(sched.Enqueue(0, [&] { ++ran; }));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
  // Only the job already in the pool ran; queued + delayed were dropped.
  EXPECT_EQ(ran.load(), 1);
  sched.WaitIdle();  // dropped jobs must not leave the count dangling
}

// ------------------------------------------------------------ RunSubtasks --

TEST(CompactionSchedulerSubtaskTest, CoversEveryIndexWithAndWithoutPool) {
  for (ThreadPool* pool :
       {static_cast<ThreadPool*>(nullptr), new ThreadPool(3)}) {
    std::vector<std::atomic<int>> hits(64);
    RunSubtasks(pool, 64, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
    delete pool;
  }
}

TEST(CompactionSchedulerSubtaskTest, SafeFromAPoolWorkerItself) {
  // Code already running ON the pool must be able to fan out without
  // deadlock even when every worker is busy (caller participation).
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.Submit([&] {
    RunSubtasks(&pool, 16, [&](size_t) { ++total; });
  });
  pool.Wait();
  EXPECT_EQ(total.load(), 16);
}

// ------------------------------------------------------ partitioned merge --

class PartitionedMergeTest : public ::testing::Test {
 protected:
  PartitionedMergeTest() : store_(4, &stats_) {}

  // `Run` alone would resolve to testing::Test::Run inside the fixture.
  std::shared_ptr<endure::lsm::Run> RunOf(const std::vector<Entry>& entries) {
    return BuildRun(&store_, entries, 8.0, IoContext::kFlush).value();
  }

  Statistics stats_;
  MemPageStore store_;
};

TEST_F(PartitionedMergeTest, MatchesSequentialMergeExactly) {
  // Three overlapping runs, hundreds of pages, updates and tombstones.
  Rng rng(7);
  std::vector<Entry> a, b, c;
  for (Key k = 0; k < 3000; ++k) a.push_back({3 * k, 5, k, EntryType::kValue});
  for (Key k = 0; k < 2000; ++k) {
    b.push_back({4 * k, 3,
                 rng.NextDouble() < 0.1 ? 0 : 4 * k + 1,
                 rng.NextDouble() < 0.1 ? EntryType::kTombstone
                                        : EntryType::kValue});
  }
  for (Key k = 500; k < 2500; ++k) c.push_back({k, 1, 9, EntryType::kValue});
  auto ra = RunOf(a), rb = RunOf(b), rc = RunOf(c);

  auto sequential =
      MergeRuns(&store_, {ra, rb, rc}, 8.0, /*drop_tombstones=*/true)
          .value();
  ASSERT_NE(sequential, nullptr);

  ThreadPool pool(3);
  MergeLimits limits;
  limits.subtask_pool = &pool;
  limits.max_subtasks = 4;
  limits.min_pages_to_partition = 8;  // force partitioning at this size
  auto partitioned =
      MergeRunsEx(&store_, {ra, rb, rc}, 8.0, /*drop_tombstones=*/true,
                  limits)
          .value();
  ASSERT_NE(partitioned, nullptr);

  ASSERT_EQ(partitioned->num_entries(), sequential->num_entries());
  auto si = sequential->NewIterator(IoContext::kCompaction);
  auto pi = partitioned->NewIterator(IoContext::kCompaction);
  while (si.Valid()) {
    ASSERT_TRUE(pi.Valid());
    EXPECT_EQ(pi.entry().key, si.entry().key);
    EXPECT_EQ(pi.entry().value, si.entry().value);
    EXPECT_EQ(pi.entry().seq, si.entry().seq);
    EXPECT_EQ(pi.entry().type, si.entry().type);
    si.Next();
    pi.Next();
  }
  EXPECT_FALSE(pi.Valid());
  EXPECT_GE(stats_.compactions_partitioned.load(), 1u);
  EXPECT_GE(stats_.compaction_subtasks.load(), 2u);
}

TEST_F(PartitionedMergeTest, SmallMergesStayUnpartitioned) {
  std::vector<Entry> a, b;
  for (Key k = 0; k < 40; ++k) a.push_back({2 * k, 2, k, EntryType::kValue});
  for (Key k = 0; k < 40; ++k) {
    b.push_back({2 * k + 1, 1, k, EntryType::kValue});
  }
  ThreadPool pool(2);
  MergeLimits limits;
  limits.subtask_pool = &pool;
  limits.max_subtasks = 4;  // default 256-page gate stays in force
  auto merged = MergeRunsEx(&store_, {RunOf(a), RunOf(b)}, 8.0, false,
                            limits)
                    .value();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->num_entries(), 80u);
  EXPECT_EQ(stats_.compactions_partitioned.load(), 0u);
}

// ------------------------------------------- prepare / execute / install --

class MaintenanceProtocolTest : public ::testing::Test {
 protected:
  static Options TreeOpts() {
    Options o;
    o.policy = CompactionPolicy::kLeveling;
    o.size_ratio = 4;
    o.buffer_entries = 16;
    o.entries_per_page = 4;
    o.filter_bits_per_entry = 8.0;
    o.background_maintenance = true;  // else every write flushes inline
    return o;
  }

  MaintenanceProtocolTest()
      : store_(4, &stats_), tree_(TreeOpts(), &store_, &stats_) {}

  /// Puts exactly enough keys to seal the active buffer.
  void FillToSeal(Key base) {
    tree_.set_deferred_backpressure(true);  // keep sealed_ pending
    for (Key k = 0; k < 17; ++k) {
      ASSERT_TRUE(tree_.Put(base + 2 * k, base + k).ok());
    }
    ASSERT_TRUE(tree_.HasSealedMemtable());
  }

  /// Drives prepare/execute/install until no work remains.
  void DrainMaintenance() {
    while (tree_.HasMaintenanceWork()) {
      MaintenanceUnit unit = tree_.PrepareMaintenance();
      if (unit.kind == MaintenanceUnit::Kind::kNone) break;
      ASSERT_TRUE(tree_.ExecuteMaintenance(&unit, MergeLimits{}).ok());
      ASSERT_TRUE(tree_.InstallMaintenance(&unit).ok());
    }
  }

  Statistics stats_;
  MemPageStore store_;
  LsmTree tree_;
};

TEST_F(MaintenanceProtocolTest, FlushUnitMovesSealedBufferIntoLevelOne) {
  FillToSeal(0);
  MaintenanceUnit unit = tree_.PrepareMaintenance();
  ASSERT_EQ(unit.kind, MaintenanceUnit::Kind::kFlush);
  EXPECT_EQ(unit.priority, 0);
  ASSERT_TRUE(tree_.ExecuteMaintenance(&unit, MergeLimits{}).ok());
  ASSERT_NE(unit.output, nullptr);
  ASSERT_TRUE(tree_.InstallMaintenance(&unit).ok());
  EXPECT_FALSE(tree_.HasSealedMemtable());
  EXPECT_EQ(tree_.RunsInLevel(1), 1u);
  for (Key k = 0; k < 16; ++k) {
    ASSERT_TRUE(tree_.Get(2 * k).has_value()) << k;
  }
}

TEST_F(MaintenanceProtocolTest, StaleFlushUnitDiscardsAfterForegroundFlush) {
  FillToSeal(0);
  MaintenanceUnit unit = tree_.PrepareMaintenance();
  ASSERT_EQ(unit.kind, MaintenanceUnit::Kind::kFlush);
  ASSERT_TRUE(tree_.ExecuteMaintenance(&unit, MergeLimits{}).ok());
  // A foreground Flush consumed the sealed buffer while the unit was
  // executing (in real use: off the lock).
  ASSERT_TRUE(tree_.Flush().ok());
  const uint64_t entries_before = tree_.TotalEntries();
  ASSERT_TRUE(tree_.InstallMaintenance(&unit).ok());
  // Discarded: no double residency.
  EXPECT_EQ(tree_.TotalEntries(), entries_before);
  for (Key k = 0; k < 16; ++k) {
    ASSERT_TRUE(tree_.Get(2 * k).has_value()) << k;
  }
}

TEST_F(MaintenanceProtocolTest, StaleEpochUnitDiscardsAfterReconfigure) {
  FillToSeal(0);
  MaintenanceUnit unit = tree_.PrepareMaintenance();
  ASSERT_TRUE(tree_.ExecuteMaintenance(&unit, MergeLimits{}).ok());
  Options next = TreeOpts();
  next.size_ratio = 6;
  ASSERT_TRUE(tree_.Reconfigure(next).ok());
  ASSERT_TRUE(tree_.InstallMaintenance(&unit).ok());
  // The unit was built under the old tuning: discarded, work still
  // pending for a fresh unit under the new epoch.
  EXPECT_TRUE(tree_.HasSealedMemtable());
  EXPECT_TRUE(tree_.HasMaintenanceWork());
  DrainMaintenance();
  EXPECT_FALSE(tree_.HasSealedMemtable());
}

TEST_F(MaintenanceProtocolTest, StaleCompactionUnitDiscardsWhenInputsMoved) {
  FillToSeal(0);
  DrainMaintenance();
  FillToSeal(100);
  // Flush by hand so level 1 stops conforming (two runs under leveling).
  MaintenanceUnit flush = tree_.PrepareMaintenance();
  ASSERT_EQ(flush.kind, MaintenanceUnit::Kind::kFlush);
  ASSERT_TRUE(tree_.ExecuteMaintenance(&flush, MergeLimits{}).ok());
  ASSERT_TRUE(tree_.InstallMaintenance(&flush).ok());
  ASSERT_GT(tree_.RunsInLevel(1), 1u);

  MaintenanceUnit unit = tree_.PrepareMaintenance();
  ASSERT_EQ(unit.kind, MaintenanceUnit::Kind::kCompaction);
  ASSERT_TRUE(tree_.ExecuteMaintenance(&unit, MergeLimits{}).ok());
  // A racing foreground Flush cascades through level 1 before install:
  // the unit's inputs are no longer resident.
  FillToSeal(200);
  tree_.set_deferred_backpressure(false);
  ASSERT_TRUE(tree_.Flush().ok());
  const uint64_t entries_before = tree_.TotalEntries();
  ASSERT_TRUE(tree_.InstallMaintenance(&unit).ok());
  EXPECT_EQ(tree_.TotalEntries(), entries_before);  // discarded
  DrainMaintenance();
  for (Key k = 0; k < 16; ++k) {
    ASSERT_TRUE(tree_.Get(2 * k).has_value()) << k;
    ASSERT_TRUE(tree_.Get(100 + 2 * k).has_value()) << k;
    ASSERT_TRUE(tree_.Get(200 + 2 * k).has_value()) << k;
  }
}

TEST_F(MaintenanceProtocolTest, StepwiseCascadeConvergesAndConforms) {
  // Push several buffers through the protocol; every level must conform
  // when the work queue drains, exactly as the recursive inline cascade
  // leaves it.
  for (int round = 0; round < 12; ++round) {
    FillToSeal(1000 * round);
    DrainMaintenance();
  }
  EXPECT_FALSE(tree_.HasMaintenanceWork());
  for (int round = 0; round < 12; ++round) {
    for (Key k = 0; k < 16; ++k) {
      ASSERT_TRUE(tree_.Get(1000 * round + 2 * k).has_value())
          << round << ":" << k;
    }
  }
}

// ------------------------------------------------- starvation regression --

TEST(CompactionSchedulerStarvationTest,
     BackoffOnOneShardDoesNotStarveOthers) {
  // One worker, two shards. Shard A's flush fails persistently and backs
  // off; with the deadline queue the worker is free during the backoff,
  // so shard B's flush drains immediately. (The old implementation slept
  // the backoff ON the worker, wedging every other shard behind it.)
  ScopedFaultInjector inject;
  Options o;
  o.size_ratio = 4;
  o.buffer_entries = 64;
  o.entries_per_page = 4;
  o.num_shards = 2;
  o.background_maintenance = true;
  o.maintenance_threads = 1;
  o.background_retry_base_ms = 500;  // parked well past the assert window
  o.background_max_retries = 50;
  o.backend = StorageBackend::kFile;
  o.storage_dir = "/tmp/endure_sched_starvation_test";
  std::filesystem::remove_all(o.storage_dir);
  auto db = std::move(ShardedDB::Open(o)).value();

  // Keys for each shard.
  std::vector<Key> a_keys, b_keys;
  for (Key k = 0; a_keys.size() < 200 || b_keys.size() < 200; k += 2) {
    (db->ShardForKey(k) == 0 ? a_keys : b_keys).push_back(k);
  }

  // Fill shard A with segment writes failing: its flush retries and
  // parks on the 500ms deadline.
  inject->Arm(FaultSite::kSegmentWrite,
              {0, UINT64_MAX, EIO, false, false});
  for (size_t i = 0; i < 100; ++i) ASSERT_TRUE(db->Put(a_keys[i], 1).ok());
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (db->ShardStats(0).io_retries.load() == 0 &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(db->ShardStats(0).io_retries.load(), 1u);

  // Fault clears; shard B fills. Its flush must drain promptly — the
  // worker is NOT sleeping out shard A's backoff.
  inject->Disarm(FaultSite::kSegmentWrite);
  const auto start = Clock::now();
  for (size_t i = 0; i < 100; ++i) ASSERT_TRUE(db->Put(b_keys[i], 1).ok());
  while (db->ShardStats(1).flushes.load() == 0 &&
         MsSince(start) < 10000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(db->ShardStats(1).flushes.load(), 1u);
  EXPECT_LT(MsSince(start), 450u)
      << "shard B waited out shard A's backoff";

  db->WaitForMaintenance();
  EXPECT_GE(db->TotalStats().sched_requeues.load(), 1u);
  EXPECT_TRUE(db->Health().ok());
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->Get(a_keys[i]).has_value()) << i;
    ASSERT_TRUE(db->Get(b_keys[i]).has_value()) << i;
  }
}

}  // namespace
}  // namespace endure::lsm
