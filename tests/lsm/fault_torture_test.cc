// Seeded fault-schedule torture harness — the acceptance gate for the
// storage fault-tolerance work. Each schedule opens a durable DB, arms a
// randomly drawn set of failpoint rules (transient and permanent EIO /
// ENOSPC, torn and silently-torn writes, bit-rot, failed fsyncs — across
// the segment, WAL and manifest paths), runs a write/read/retune workload
// against an in-memory oracle, then clears the faults and reopens:
//
//   - the process never aborts (every fault surfaces as Status);
//   - a value served while faults are live is always one the workload
//     actually wrote (acknowledged, or applied-but-unacknowledged —
//     never fabricated, never stale-shadowed);
//   - permanent faults land in read-only degraded mode (writes rejected
//     with the latched status, Health() non-OK);
//   - after the fault clears, the reopened deployment serves every
//     acknowledged write — unless silent on-device damage (bit-rot or a
//     silent torn page) was injected, in which case the recovery scrub
//     must *refuse* the deployment with Corruption rather than serve it.
//
// ENDURE_TORTURE_SCHEDULES overrides the schedule count (default 100;
// CI pins it explicitly so the run is reproducible by seed).

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "util/env.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace endure::lsm {
namespace {

Options TortureOpts(const std::string& dir, uint64_t seed) {
  Options o;
  o.size_ratio = 3 + static_cast<int>(seed % 2);
  o.policy = seed % 3 == 0 ? CompactionPolicy::kTiering
                           : CompactionPolicy::kLeveling;
  o.buffer_entries = 16;
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 5.0;
  o.backend = StorageBackend::kFile;
  o.storage_dir = dir;
  o.durability = true;
  o.wal_sync_mode = WalSyncMode::kPerBatch;
  return o;
}

/// Everything the workload knows about one key.
struct KeyState {
  bool acked = false;
  Value acked_value = 0;
  /// Values attempted after the last acknowledged write. An unacknowledged
  /// Put may still be applied (and even made durable by a later flush), so
  /// these are plausible reads — but the acked value must never be *lost*
  /// in favor of nothing.
  std::vector<Value> later_attempts;
};

bool Plausible(const KeyState& st, Value v) {
  if (st.acked && st.acked_value == v) return true;
  for (const Value a : st.later_attempts) {
    if (a == v) return true;
  }
  return false;
}

struct Schedule {
  /// True when a rule could damage the device *silently* (bit-rot or an
  /// unreported torn page): acknowledged data may be destroyed, and the
  /// contract shifts from "recover it" to "detect it and refuse to serve".
  bool silent_damage_armed = false;
};

/// Draws 1–3 failpoint rules for this seed and arms them.
Schedule ArmSchedule(FaultInjector* fi, std::mt19937_64* rng) {
  static constexpr FaultSite kSites[] = {
      FaultSite::kSegmentOpen,  FaultSite::kSegmentWrite,
      FaultSite::kSegmentFsync, FaultSite::kSegmentRead,
      FaultSite::kWalOpen,      FaultSite::kWalWrite,
      FaultSite::kWalFsync,     FaultSite::kFileWrite,
      FaultSite::kFileFsync,    FaultSite::kFileRename,
      FaultSite::kDirSync,      FaultSite::kAlloc,
  };
  Schedule schedule;
  const int num_rules = 1 + static_cast<int>((*rng)() % 3);
  for (int i = 0; i < num_rules; ++i) {
    const FaultSite site = kSites[(*rng)() % std::size(kSites)];
    FaultInjector::Rule rule;
    rule.skip = (*rng)() % 40;
    rule.count = (*rng)() % 4 == 0 ? UINT64_MAX : 1 + (*rng)() % 3;
    rule.err = (*rng)() % 2 == 0 ? EIO : ENOSPC;
    if (site == FaultSite::kSegmentWrite) {
      switch ((*rng)() % 4) {
        case 0:  // plain reported error
          break;
        case 1:  // torn write, reported
          rule.short_io = true;
          break;
        case 2:  // torn write, silent — only the page CRC can catch it
          rule.short_io = true;
          rule.err = 0;
          schedule.silent_damage_armed = true;
          break;
        case 3:  // bit-rot under a "successful" write
          rule.corrupt = true;
          rule.err = 0;
          schedule.silent_damage_armed = true;
          break;
      }
    } else if (site == FaultSite::kWalWrite && (*rng)() % 2 == 0) {
      rule.short_io = true;  // torn group commit (always reported)
    }
    fi->Arm(site, rule);
  }
  return schedule;
}

/// True when any site actually drew a silent-damage outcome. Only fired
/// rules excuse a Corruption verdict at reopen.
bool SilentDamageFired(FaultInjector* fi, const Schedule& schedule) {
  return schedule.silent_damage_armed &&
         fi->fired(FaultSite::kSegmentWrite) > 0;
}

void RunOneSchedule(uint64_t seed, uint64_t block_cache_bytes = 0) {
  const std::string dir = "/tmp/endure_fault_torture_" +
                          std::to_string(seed) +
                          (block_cache_bytes > 0 ? "_cached" : "");
  std::filesystem::remove_all(dir);
  Options opts = TortureOpts(dir, seed);
  // The cache-enabled arm: every schedule also runs with the shared
  // block cache on the read path, so checksum-verified admission faces
  // the same bit-rot / torn-write / EIO fire. The plausibility oracle
  // is the detector — a cache that admitted or served damaged bytes
  // would fabricate a value the workload never wrote.
  opts.block_cache_bytes = block_cache_bytes;

  std::mt19937_64 rng(0x9e3779b97f4a7c15ull ^ (seed * 0x2545f4914f6cdd1dull));
  std::map<Key, KeyState> oracle;

  {
    auto db = DB::Open(opts);
    ASSERT_TRUE(db.ok()) << "seed " << seed << ": " << db.status().message();

    ScopedFaultInjector fi;
    const Schedule schedule = ArmSchedule(&*fi, &rng);

    bool saw_rejection = false;
    for (int op = 0; op < 220; ++op) {
      const Key k = rng() % 48;  // dense: overwrites force compactions
      const Value v = static_cast<Value>(seed * 1000000 + op + 1);
      const Status s = (*db)->Put(k, v);
      KeyState& st = oracle[k];
      if (s.ok()) {
        st.acked = true;
        st.acked_value = v;
        st.later_attempts.clear();
      } else {
        saw_rejection = true;
        st.later_attempts.push_back(v);
        // Degraded mode is sticky: once latched, Health reports it and
        // every further write is refused without touching storage.
        if (!(*db)->Health().ok()) {
          EXPECT_FALSE((*db)->Put(k, v + 1).ok()) << "seed " << seed;
          st.later_attempts.push_back(v + 1);
        }
      }

      if (op % 7 == 0) {
        // Reads while faults are live: a miss is legal (a damaged page
        // must miss rather than serve deeper, possibly-stale values),
        // but a *returned* value must be one this workload wrote.
        const Key probe = rng() % 48;
        const auto it = oracle.find(probe);
        if (const std::optional<Value> got = (*db)->Get(probe)) {
          ASSERT_TRUE(it != oracle.end() && Plausible(it->second, *got))
              << "seed " << seed << " fabricated key " << probe
              << " value " << *got;
        }
      }
      if (op == 120) {
        // Mid-run retune: exercises Reconfigure + the migration path
        // under fire. Failure is acceptable (and latches nothing by
        // itself); success must leave the tree serving.
        Options tuned = opts;
        tuned.size_ratio = opts.size_ratio == 3 ? 4 : 3;
        (void)(*db)->ApplyTuning(tuned);
      }
    }
    // A latched tree must self-report, not just reject writes.
    if (!(*db)->Health().ok()) {
      EXPECT_TRUE(saw_rejection) << "seed " << seed;
      EXPECT_GE((*db)->stats().read_only_transitions.load(), 1u)
          << "seed " << seed;
    }

    // The fault clears; the instance shuts down (possibly latched —
    // shutdown must not abort either).
    fi->DisarmAll();
    const bool silent_damage = SilentDamageFired(&*fi, schedule);

    db->reset();

    // Reopen on healthy storage. Silent on-device damage may legally
    // surface here as a scrub refusal — anything else must recover.
    auto reopened = DB::Open(opts);
    if (!reopened.ok()) {
      ASSERT_EQ(reopened.status().code(), StatusCode::kCorruption)
          << "seed " << seed << ": " << reopened.status().message();
      ASSERT_TRUE(silent_damage)
          << "seed " << seed << " refused a reopen without injected "
          << "silent damage: " << reopened.status().message();
      return;
    }
    ASSERT_TRUE((*reopened)->Health().ok()) << "seed " << seed;
    for (const auto& [k, st] : oracle) {
      const std::optional<Value> got = (*reopened)->Get(k);
      if (st.acked) {
        ASSERT_TRUE(got.has_value())
            << "seed " << seed << " lost acknowledged key " << k;
        ASSERT_TRUE(Plausible(st, *got))
            << "seed " << seed << " key " << k << " value " << *got;
      } else if (got.has_value()) {
        ASSERT_TRUE(Plausible(st, *got))
            << "seed " << seed << " fabricated key " << k;
      }
    }
    // The recovered deployment is fully writable again.
    ASSERT_TRUE((*reopened)->Put(100000 + seed, seed).ok())
        << "seed " << seed;
  }
  std::filesystem::remove_all(dir);
}

TEST(FaultTortureTest, SeededScheduleSweep) {
  const int schedules = static_cast<int>(
      GetEnvInt("ENDURE_TORTURE_SCHEDULES", 100));
  for (int seed = 0; seed < schedules; ++seed) {
    SCOPED_TRACE("schedule seed " + std::to_string(seed));
    RunOneSchedule(static_cast<uint64_t>(seed));
    if (HasFatalFailure()) return;
  }
}

TEST(FaultTortureTest, CacheEnabledScheduleSweep) {
  const int schedules = static_cast<int>(
      GetEnvInt("ENDURE_TORTURE_CACHE_SCHEDULES", 40));
  for (int seed = 0; seed < schedules; ++seed) {
    SCOPED_TRACE("cached schedule seed " + std::to_string(seed));
    RunOneSchedule(static_cast<uint64_t>(seed), /*block_cache_bytes=*/
                   128 * 1024);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace endure::lsm
