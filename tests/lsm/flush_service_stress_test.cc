// Shared WAL-flush-service stress (docs/durability.md): one
// WalFlushService thread drives every shard's background fsyncs while
// writer threads group-commit across shards and foreground Flushes keep
// checkpoints (WAL rewrites, i.e. appender fd swaps under the service's
// feet) permanently in flight. Run under ThreadSanitizer in CI; the
// assertions double as an acked-write-loss check across a final
// kill+reopen.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "lsm/sharded_db.h"
#include "util/env.h"

namespace endure::lsm {
namespace {

TEST(SharedFlusherStressTest, ConcurrentPutBatchWithCheckpointsInFlight) {
  const std::string dir = "/tmp/endure_flush_service_stress";
  std::filesystem::remove_all(dir);

  Options o;
  o.size_ratio = 4;
  o.buffer_entries = 128;  // small buffer: flushes (checkpoints) constantly
  o.entries_per_page = 4;
  o.backend = StorageBackend::kFile;
  o.storage_dir = dir;
  o.num_shards = 4;
  o.background_maintenance = true;
  o.durability = true;
  o.wal_sync_mode = WalSyncMode::kBackground;
  o.wal_sync_interval_ms = 1;  // the service ticks as hard as it can

  const int kWriters = 4;
  const int kBatches = 40;
  const int kBatchSize = 32;
  {
    auto db_or = ShardedDB::Open(o);
    ASSERT_TRUE(db_or.ok());
    ShardedDB* db = db_or.value().get();

    std::vector<std::thread> threads;
    for (int t = 0; t < kWriters; ++t) {
      threads.emplace_back([db, t] {
        const Key base = static_cast<Key>(t) * 1'000'000;
        std::vector<std::pair<Key, Value>> batch;
        for (int b = 0; b < kBatches; ++b) {
          batch.clear();
          for (int i = 0; i < kBatchSize; ++i) {
            const Key k = base + static_cast<Key>(b) * kBatchSize + i;
            batch.emplace_back(k, k + 1);
          }
          db->PutBatch(batch);
        }
      });
    }
    // Checkpoints in flight: foreground Flush rewrites every shard's WAL
    // (swapping the fds the flush service is syncing) while the writers
    // commit — plus stats readers, the other concurrent consumer.
    threads.emplace_back([db] {
      for (int i = 0; i < 30; ++i) {
        db->Flush();
        (void)db->TotalStats().wal_syncs.load();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    for (auto& t : threads) t.join();
    db->WaitForMaintenance();

    // Every acknowledged write is visible...
    for (int t = 0; t < kWriters; ++t) {
      const Key base = static_cast<Key>(t) * 1'000'000;
      for (int i = 0; i < kBatches * kBatchSize; ++i) {
        const Key k = base + i;
        ASSERT_EQ(db->Get(k).value_or(0), k + 1) << "lost key " << k;
      }
    }
    db->CrashForTesting();
  }
  // ...and still there after a kill+reopen (committed write()s survive a
  // process death; the service-synced WAL plus checkpoints cover them).
  auto db = ShardedDB::Open(o);
  ASSERT_TRUE(db.ok());
  for (int t = 0; t < kWriters; ++t) {
    const Key base = static_cast<Key>(t) * 1'000'000;
    for (int i = 0; i < kBatches * kBatchSize; ++i) {
      const Key k = base + i;
      ASSERT_EQ(db.value()->Get(k).value_or(0), k + 1)
          << "key " << k << " lost across reopen";
    }
  }
}

}  // namespace
}  // namespace endure::lsm
