// Graceful degradation under storage faults: transient background I/O
// errors are retried with exponential backoff (Statistics::io_retries);
// a fault that outlives Options::background_max_retries — or any
// foreground write-path failure — latches the affected shard read-only
// (writes rejected with the latched status, reads keep serving), and a
// reopen after the fault clears recovers every acknowledged write.

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <string>

#include "lsm/db.h"
#include "lsm/sharded_db.h"
#include "util/env.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace endure::lsm {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = "/tmp/endure_degraded_mode_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Options BaseOpts(const std::string& dir) {
  Options o;
  o.size_ratio = 4;
  o.buffer_entries = 32;
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 6.0;
  o.backend = StorageBackend::kFile;
  o.storage_dir = dir;
  o.durability = true;
  o.wal_sync_mode = WalSyncMode::kPerBatch;
  return o;
}

TEST(DegradedModeTest, TransientFaultIsRetriedThenForgotten) {
  const std::string dir = FreshDir("transient");
  Options opts = BaseOpts(dir);
  opts.num_shards = 1;
  opts.background_maintenance = true;
  opts.background_max_retries = 4;
  opts.background_retry_base_ms = 1;
  auto db = ShardedDB::Open(opts);
  ASSERT_TRUE(db.ok());

  ScopedFaultInjector fi;
  // The first two segment-file creations fail with EIO, then the disk
  // "recovers" — comfortably inside the 4-attempt retry budget. The
  // workload seals exactly one buffer (buffer_entries = 32, 40 puts), so
  // only the background job ever meets the fault: foreground writes are
  // never failed by a transient background error.
  fi->Arm(FaultSite::kSegmentOpen, {.count = 2, .err = EIO});
  for (Key k = 0; k < 40; ++k) {
    ASSERT_TRUE((*db)->Put(k, k + 1).ok()) << k;
  }
  (*db)->WaitForMaintenance();
  fi->DisarmAll();

  EXPECT_TRUE((*db)->Health().ok()) << (*db)->Health().message();
  EXPECT_GE((*db)->TotalStats().io_retries.load(), 1u);
  EXPECT_EQ((*db)->TotalStats().read_only_transitions.load(), 0u);
  for (Key k = 0; k < 40; ++k) {
    ASSERT_EQ((*db)->Get(k).value_or(0), k + 1) << k;
  }
  // The tree is healthy: writes keep flowing after the fault cleared.
  ASSERT_TRUE((*db)->Put(1000, 7).ok());
}

TEST(DegradedModeTest, PermanentFaultLatchesShardReadOnly) {
  const std::string dir = FreshDir("permanent");
  Options opts = BaseOpts(dir);
  opts.num_shards = 1;
  opts.background_maintenance = true;
  opts.background_max_retries = 2;
  opts.background_retry_base_ms = 1;
  auto db = ShardedDB::Open(opts);
  ASSERT_TRUE(db.ok());

  ScopedFaultInjector fi;
  fi->Arm(FaultSite::kSegmentOpen, {.count = UINT64_MAX, .err = EIO});
  // Writes are acknowledged into the memtable/WAL until the retry budget
  // is exhausted and the shard latches; after that they are rejected.
  Key acked_until = 0;
  for (Key k = 0; k < 500; ++k) {
    if (!(*db)->Put(k, k + 1).ok()) break;
    acked_until = k + 1;
  }
  (*db)->WaitForMaintenance();

  const Status health = (*db)->Health();
  ASSERT_FALSE(health.ok());
  EXPECT_EQ(health.code(), StatusCode::kIOError);
  EXPECT_NE(health.message().find("shard 0"), std::string::npos)
      << health.message();
  EXPECT_GE((*db)->TotalStats().read_only_transitions.load(), 1u);
  EXPECT_GE((*db)->TotalStats().io_retries.load(), 1u);

  // Degraded, not dead: writes are refused, reads keep serving every
  // acknowledged entry.
  EXPECT_FALSE((*db)->Put(9999, 1).ok());
  for (Key k = 0; k < acked_until; ++k) {
    ASSERT_EQ((*db)->Get(k).value_or(0), k + 1) << k;
  }

  // The fault clears; reopening the deployment recovers cleanly (the
  // latch is not persistent state — it describes the dead device).
  fi->DisarmAll();
  db->reset();
  auto reopened = ShardedDB::Open(opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_TRUE((*reopened)->Health().ok());
  for (Key k = 0; k < acked_until; ++k) {
    ASSERT_EQ((*reopened)->Get(k).value_or(0), k + 1) << k;
  }
  ASSERT_TRUE((*reopened)->Put(9999, 1).ok());
}

TEST(DegradedModeTest, ForegroundWriteFailureLatchesPlainDb) {
  const std::string dir = FreshDir("foreground");
  Options opts = BaseOpts(dir);  // no background maintenance: inline flush
  auto db = DB::Open(opts);
  ASSERT_TRUE(db.ok());

  ScopedFaultInjector fi;
  fi->Arm(FaultSite::kSegmentWrite, {.count = UINT64_MAX, .err = ENOSPC});
  Key acked_until = 0;
  Status first_error;
  for (Key k = 0; k < 200; ++k) {
    const Status s = (*db)->Put(k, k + 1);
    if (!s.ok()) {
      first_error = s;
      break;
    }
    acked_until = k + 1;
  }
  ASSERT_FALSE(first_error.ok()) << "the inline flush never hit the fault";
  EXPECT_NE(first_error.message().find("injected"), std::string::npos)
      << first_error.message();

  // Latched: the same status comes back without touching storage again.
  const uint64_t fired_before = fi->fired(FaultSite::kSegmentWrite);
  EXPECT_FALSE((*db)->Put(0, 1).ok());
  EXPECT_EQ(fi->fired(FaultSite::kSegmentWrite), fired_before);
  EXPECT_FALSE((*db)->Health().ok());
  EXPECT_GE((*db)->stats().read_only_transitions.load(), 1u);
  for (Key k = 0; k < acked_until; ++k) {
    ASSERT_EQ((*db)->Get(k).value_or(0), k + 1) << k;
  }

  fi->DisarmAll();
  db->reset();
  auto reopened = DB::Open(opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  for (Key k = 0; k < acked_until; ++k) {
    ASSERT_EQ((*reopened)->Get(k).value_or(0), k + 1) << k;
  }
}

TEST(DegradedModeTest, ExplicitFlushDoesNotLatchAndMayBeRetried) {
  const std::string dir = FreshDir("flush_retry");
  Options opts = BaseOpts(dir);
  auto db = DB::Open(opts);
  ASSERT_TRUE(db.ok());
  for (Key k = 0; k < 10; ++k) {
    ASSERT_TRUE((*db)->Put(k, k + 1).ok());
  }

  {
    ScopedFaultInjector fi;
    fi->Arm(FaultSite::kSegmentWrite, {.count = 1, .err = EIO});
    EXPECT_FALSE((*db)->Flush().ok());
  }
  // An explicit Flush is a retryable operator action: its failure does
  // not poison the tree, and the retry drains the same buffers.
  EXPECT_TRUE((*db)->Health().ok());
  ASSERT_TRUE((*db)->Flush().ok());
  for (Key k = 0; k < 10; ++k) {
    ASSERT_EQ((*db)->Get(k).value_or(0), k + 1) << k;
  }
}

TEST(DegradedModeTest, HealthyShardsKeepServingNextToADegradedOne) {
  const std::string dir = FreshDir("isolation");
  Options opts = BaseOpts(dir);
  opts.num_shards = 4;
  opts.background_maintenance = false;  // deterministic shard targeting
  opts.durability = false;  // volatile: we only test shard isolation here
  opts.backend = StorageBackend::kFile;
  auto db = ShardedDB::Open(opts);
  ASSERT_TRUE(db.ok());

  // Find two keys on different shards and fill only one shard's buffer
  // while a permanent write fault is armed: the inline flush latches that
  // shard alone.
  const size_t victim_shard = (*db)->ShardForKey(0);
  ScopedFaultInjector fi;
  fi->Arm(FaultSite::kSegmentWrite, {.count = UINT64_MAX, .err = EIO});
  Key k = 0;
  bool latched = false;
  for (Key i = 0; i < 10000 && !latched; ++i) {
    if ((*db)->ShardForKey(i) != victim_shard) continue;
    latched = !(*db)->Put(i, i + 1).ok();
    k = i;
  }
  ASSERT_TRUE(latched) << "victim shard never flushed";
  fi->DisarmAll();
  (void)k;

  EXPECT_FALSE((*db)->Health().ok());
  // Every other shard still accepts writes and serves reads.
  size_t healthy_writes = 0;
  for (Key i = 0; i < 100; ++i) {
    if ((*db)->ShardForKey(i) == victim_shard) continue;
    ASSERT_TRUE((*db)->Put(i, i + 42).ok()) << i;
    ASSERT_EQ((*db)->Get(i).value_or(0), i + 42) << i;
    ++healthy_writes;
  }
  EXPECT_GT(healthy_writes, 0u);
}

}  // namespace
}  // namespace endure::lsm
