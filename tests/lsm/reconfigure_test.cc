// Live reconfiguration semantics: which knobs may change on a running
// tree, how the buffer reseal behaves, how tuning epochs track Bloom
// migration, and how the incremental migration reshapes levels under
// policy and size-ratio changes — all without a rebuild and without
// changing visible contents. The differential and stress suites cover
// the concurrent side; this file pins the single-threaded mechanics.

#include <gtest/gtest.h>

#include <memory>

#include "lsm/db.h"
#include "lsm/sharded_db.h"

namespace endure::lsm {
namespace {

Options BaseOpts() {
  Options o;
  o.size_ratio = 4;
  o.buffer_entries = 128;
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 6.0;
  return o;
}

/// Fills `db` with `n` distinct keys (values key+1), flushing at the end
/// so everything lives in runs.
template <typename DbT>
void Fill(DbT* db, Key n) {
  for (Key k = 0; k < n; ++k) db->Put(k, k + 1);
  db->Flush();
}

template <typename DbT>
void ExpectAllReadable(DbT* db, Key n) {
  for (Key k = 0; k < n; ++k) {
    const auto got = db->Get(k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    ASSERT_EQ(*got, k + 1) << "key " << k;
  }
  const std::vector<Entry> all = db->Scan(0, n).value();
  ASSERT_EQ(all.size(), n);
}

TEST(ReconfigureTest, RejectsImmutableKnobChanges) {
  auto db = std::move(DB::Open(BaseOpts())).value();

  Options page = BaseOpts();
  page.entries_per_page = 8;
  EXPECT_FALSE(db->ApplyTuning(page).ok());

  Options backend = BaseOpts();
  backend.backend = StorageBackend::kFile;
  EXPECT_FALSE(db->ApplyTuning(backend).ok());

  Options background = BaseOpts();
  background.background_maintenance = true;
  EXPECT_FALSE(db->ApplyTuning(background).ok());

  Options invalid = BaseOpts();
  invalid.size_ratio = 1;
  EXPECT_FALSE(db->ApplyTuning(invalid).ok());

  // A failed apply leaves the tuning epoch untouched.
  EXPECT_EQ(db->tree().tuning_epoch(), 0u);

  auto sharded = std::move(ShardedDB::Open(BaseOpts())).value();
  Options shards = BaseOpts();
  shards.num_shards = 2;
  EXPECT_FALSE(sharded->ApplyTuning(shards).ok());
}

TEST(ReconfigureTest, EveryApplyBumpsTheEpochOnce) {
  auto db = std::move(DB::Open(BaseOpts())).value();
  ASSERT_TRUE(db->ApplyTuning(BaseOpts()).ok());  // no-op knobs still count
  ASSERT_TRUE(db->ApplyTuning(BaseOpts()).ok());
  EXPECT_EQ(db->tree().tuning_epoch(), 2u);
  EXPECT_EQ(db->stats().reconfigurations, 2u);
}

TEST(ReconfigureTest, BufferShrinkFlushesInline) {
  auto db = std::move(DB::Open(BaseOpts())).value();
  for (Key k = 0; k < 100; ++k) db->Put(k, k + 1);  // buffer holds 100/128
  ASSERT_EQ(db->stats().flushes, 0u);

  Options shrunk = BaseOpts();
  shrunk.buffer_entries = 64;  // below current fill: reseal at once
  ASSERT_TRUE(db->ApplyTuning(shrunk).ok());
  EXPECT_GT(db->stats().flushes, 0u);
  EXPECT_EQ(db->tree().memtable().capacity(), 64u);
  ExpectAllReadable(db.get(), 100);
}

TEST(ReconfigureTest, BufferShrinkSealsUnderBackgroundMaintenance) {
  Options base = BaseOpts();
  base.background_maintenance = true;
  auto db = std::move(DB::Open(base)).value();
  for (Key k = 0; k < 100; ++k) db->Put(k, k + 1);

  Options shrunk = base;
  shrunk.buffer_entries = 64;
  ASSERT_TRUE(db->ApplyTuning(shrunk).ok());
  // Background mode never flushes inline: the over-full buffer is sealed
  // (still readable) and waits for maintenance.
  EXPECT_TRUE(db->tree().HasSealedMemtable());
  EXPECT_EQ(db->stats().flushes, 0u);
  ExpectAllReadable(db.get(), 100);
}

TEST(ReconfigureTest, BufferGrowthKeepsEntriesAndRaisesThreshold) {
  auto db = std::move(DB::Open(BaseOpts())).value();
  for (Key k = 0; k < 100; ++k) db->Put(k, k + 1);

  Options grown = BaseOpts();
  grown.buffer_entries = 512;
  ASSERT_TRUE(db->ApplyTuning(grown).ok());
  EXPECT_EQ(db->stats().flushes, 0u);  // nothing forced out
  EXPECT_EQ(db->tree().memtable().size(), 100u);
  EXPECT_EQ(db->tree().memtable().capacity(), 512u);
  ExpectAllReadable(db.get(), 100);
}

TEST(ReconfigureTest, NewBloomBudgetAppliesToNewRunsOnly) {
  auto db = std::move(DB::Open(BaseOpts())).value();
  Fill(db.get(), 2000);

  Options fat = BaseOpts();
  fat.filter_bits_per_entry = 16.0;
  ASSERT_TRUE(db->ApplyTuning(fat).ok());

  // Only the filter budget moved: the structure already conforms, so the
  // resident runs (old epoch, old filters) are untouched.
  MigrationProgress p = db->Progress();
  EXPECT_TRUE(p.structure_conforming());
  EXPECT_EQ(p.epoch, 1u);
  EXPECT_EQ(p.entries_current, 0u);
  EXPECT_GT(p.entries_total, 0u);

  // A fresh flush lands a current-epoch run with the fatter filter.
  const std::vector<LevelInfo> before = db->tree().GetLevelInfos();
  for (Key k = 10000; k < 10000 + 200; ++k) db->Put(k, k + 1);
  db->Flush();
  p = db->Progress();
  EXPECT_GT(p.entries_current, 0u);
  bool found_current = false;
  for (const LevelInfo& info : db->tree().GetLevelInfos()) {
    if (info.current_epoch_runs == 0) continue;
    found_current = true;
    // Leveling keeps one run per level, so this level's filter is the
    // newly built one: the 16-bit budget dominates the old 6-bit one at
    // every level under Monkey's allocation.
    const size_t idx = static_cast<size_t>(info.level) - 1;
    if (idx < before.size() && before[idx].num_runs > 0) {
      EXPECT_GT(info.filter_bits_per_entry,
                before[idx].filter_bits_per_entry)
          << "level " << info.level;
    }
  }
  EXPECT_TRUE(found_current);
}

TEST(ReconfigureTest, TieringToLevelingReshapesEveryLevel) {
  Options tiering = BaseOpts();
  tiering.policy = CompactionPolicy::kTiering;
  auto db = std::move(DB::Open(tiering)).value();
  Fill(db.get(), 4000);

  // Tiering left multi-run levels behind.
  uint64_t multi_run_levels = 0;
  for (const LevelInfo& info : db->tree().GetLevelInfos()) {
    if (info.num_runs > 1) ++multi_run_levels;
  }
  ASSERT_GT(multi_run_levels, 0u);

  Options leveling = BaseOpts();
  ASSERT_TRUE(db->ApplyTuning(leveling).ok());  // DB converges inline

  EXPECT_TRUE(db->Progress().structure_conforming());
  EXPECT_GT(db->stats().migration_steps, 0u);
  for (const LevelInfo& info : db->tree().GetLevelInfos()) {
    EXPECT_LE(info.num_runs, 1u) << "level " << info.level;
    if (info.num_runs == 1) {
      EXPECT_LE(info.num_entries, info.capacity) << "level " << info.level;
    }
  }
  ExpectAllReadable(db.get(), 4000);
}

TEST(ReconfigureTest, LevelingToTieringConformsWithoutWork) {
  auto db = std::move(DB::Open(BaseOpts())).value();
  Fill(db.get(), 4000);

  Options tiering = BaseOpts();
  tiering.policy = CompactionPolicy::kTiering;
  ASSERT_TRUE(db->ApplyTuning(tiering).ok());
  // One run per level already satisfies tiering: no migration I/O at all.
  EXPECT_EQ(db->stats().migration_steps, 0u);
  EXPECT_TRUE(db->Progress().structure_conforming());

  // From here on runs accumulate per level instead of merging eagerly.
  const uint64_t compactions_before = db->stats().compactions;
  for (Key k = 10000; k < 10000 + 2 * 128; ++k) db->Put(k, k + 1);
  db->Flush();
  EXPECT_EQ(db->stats().compactions, compactions_before);
  ExpectAllReadable(db.get(), 4000);
}

TEST(ReconfigureTest, SizeRatioShrinkCascadesDataDeeper) {
  Options wide = BaseOpts();
  wide.size_ratio = 10;
  auto db = std::move(DB::Open(wide)).value();
  Fill(db.get(), 6000);
  const int depth_before = db->tree().DeepestLevel();

  Options narrow = BaseOpts();
  narrow.size_ratio = 2;  // every level capacity shrinks drastically
  ASSERT_TRUE(db->ApplyTuning(narrow).ok());

  EXPECT_TRUE(db->Progress().structure_conforming());
  EXPECT_GE(db->tree().DeepestLevel(), depth_before);
  for (const LevelInfo& info : db->tree().GetLevelInfos()) {
    if (info.num_runs == 1) {
      EXPECT_LE(info.num_entries, info.capacity) << "level " << info.level;
    }
  }
  ExpectAllReadable(db.get(), 6000);
}

TEST(ReconfigureTest, ShardedApplyMigratesOnMaintenancePool) {
  Options base = BaseOpts();
  base.num_shards = 4;
  base.background_maintenance = true;
  base.policy = CompactionPolicy::kTiering;
  auto db = std::move(ShardedDB::Open(base)).value();
  for (Key k = 0; k < 8000; ++k) db->Put(k, k + 1);
  db->WaitForMaintenance();
  db->Flush();

  Options leveling = base;
  leveling.policy = CompactionPolicy::kLeveling;
  leveling.size_ratio = 3;
  ASSERT_TRUE(db->ApplyTuning(leveling).ok());
  EXPECT_EQ(db->options().policy, CompactionPolicy::kLeveling);

  // The apply returns immediately; the pool converges the migration.
  db->WaitForMaintenance();
  const MigrationProgress p = db->Progress();
  EXPECT_TRUE(p.structure_conforming());
  EXPECT_EQ(p.epoch, 1u);
  for (size_t s = 0; s < db->num_shards(); ++s) {
    for (const LevelInfo& info : db->shard_tree(s).GetLevelInfos()) {
      EXPECT_LE(info.num_runs, 1u)
          << "shard " << s << " level " << info.level;
    }
  }
  ExpectAllReadable(db.get(), 8000);
  EXPECT_EQ(db->TotalStats().reconfigurations, db->num_shards());
}

TEST(ReconfigureTest, ForegroundShardedApplyConvergesInline) {
  Options base = BaseOpts();
  base.num_shards = 3;
  base.policy = CompactionPolicy::kTiering;
  auto db = std::move(ShardedDB::Open(base)).value();
  for (Key k = 0; k < 4000; ++k) db->Put(k, k + 1);
  db->Flush();

  Options leveling = base;
  leveling.policy = CompactionPolicy::kLeveling;
  ASSERT_TRUE(db->ApplyTuning(leveling).ok());
  // No pool: by the time ApplyTuning returns the structure conforms.
  EXPECT_TRUE(db->Progress().structure_conforming());
  ExpectAllReadable(db.get(), 4000);
}

}  // namespace
}  // namespace endure::lsm
