// Snapshot-consistency differential harness: concurrent readers against
// a single writer, checked with the versioned oracle. The property under
// test is the tentpole's contract — every lock-free Get/Scan observes a
// point-in-time view that equals EXACTLY some prefix of the write
// sequence, never a torn mix of two prefixes.
//
// Window protocol (per shard): the writer appends to the oracle, bumps
// `started`, applies to the engine, then bumps `acked`. A reader records
// k_low = acked before its read and k_high = started after it; the read
// is correct iff the observed result matches the oracle at some index in
// [k_low, k_high]. The upper edge is "started" — not "acked" — because
// the engine makes an applied write readable just before its WAL ack
// (visible-at-apply), so a reader may legitimately see the one write
// currently in flight. Scans on a multi-shard deployment are checked
// per shard: cross-shard atomicity is not promised, per-shard prefix
// consistency is.
//
// The suite runs under both the TSan and ASan CI legs (regex token
// SnapshotConsistency): flushes, partitioned compactions, live retunes
// and a crash-recovery reopen all happen underneath the readers.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "lsm/sharded_db.h"
#include "testing/reference_model.h"
#include "util/random.h"

namespace endure::lsm {
namespace {

using endure::testing::VersionedOracle;

/// Per-shard write-index clocks (see the window protocol above).
struct ShardClock {
  std::atomic<uint64_t> started{0};
  std::atomic<uint64_t> acked{0};
};

/// Shared state of one concurrent run. Oracles are guarded by `mu`
/// (append-only writer, readers check under the same lock); the clocks
/// are lock-free so reading a window edge never serializes with the
/// writer.
struct Harness {
  explicit Harness(size_t num_shards, Key key_domain)
      : domain(key_domain), oracles(num_shards) {
    for (size_t i = 0; i < num_shards; ++i) {
      clocks.push_back(std::make_unique<ShardClock>());
    }
  }

  /// Records a failure without gtest machinery (worker threads report,
  /// the main thread asserts once at the end).
  void Fail(const std::string& msg) {
    failures.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(fail_mu);
    if (first_failure.empty()) first_failure = msg;
  }

  ShardedDB* db = nullptr;
  const Key domain;
  std::mutex mu;
  std::vector<VersionedOracle> oracles;  ///< per shard, guarded by mu
  std::vector<std::unique_ptr<ShardClock>> clocks;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads_checked{0};
  std::atomic<uint64_t> failures{0};
  std::mutex fail_mu;
  std::string first_failure;  ///< guarded by fail_mu
};

/// The single writer: 80% upserts / 20% deletes over the key domain,
/// each recorded to the owning shard's oracle before it is applied and
/// acknowledged after. One writer keeps oracle order identical to the
/// engine's per-shard apply order.
void WriterLoop(Harness* h, uint64_t seed, size_t num_ops) {
  Rng rng(seed);
  for (size_t i = 0; i < num_ops; ++i) {
    const Key key = rng.UniformInt(0, h->domain - 1);
    const size_t s = h->db->ShardForKey(key);
    const bool is_delete = rng.NextDouble() < 0.2;
    const Value value = rng.Next();
    uint64_t idx;
    {
      std::lock_guard<std::mutex> lock(h->mu);
      idx = is_delete ? h->oracles[s].Delete(key)
                      : h->oracles[s].Put(key, value);
    }
    h->clocks[s]->started.store(idx, std::memory_order_release);
    const Status st =
        is_delete ? h->db->Delete(key) : h->db->Put(key, value);
    if (!st.ok()) {
      h->Fail("write " + std::to_string(idx) +
              " not acked: " + st.ToString());
      return;
    }
    h->clocks[s]->acked.store(idx, std::memory_order_release);
  }
}

/// One point-read consistency check.
void CheckGet(Harness* h, Key key) {
  const size_t s = h->db->ShardForKey(key);
  const uint64_t k_low = h->clocks[s]->acked.load(std::memory_order_acquire);
  const std::optional<Value> got = h->db->Get(key);
  const uint64_t k_high =
      h->clocks[s]->started.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(h->mu);
  if (!h->oracles[s].GetMatchesSomeIndex(key, got, k_low, k_high)) {
    h->Fail("Get(" + std::to_string(key) + ") = " +
            (got.has_value() ? std::to_string(*got) : "nullopt") +
            " matches no index in [" + std::to_string(k_low) + ", " +
            std::to_string(k_high) + "] of shard " + std::to_string(s));
  }
}

/// One range-read consistency check: per-shard prefix windows.
void CheckScan(Harness* h, Key lo, Key hi) {
  const size_t num_shards = h->db->num_shards();
  std::vector<uint64_t> k_low(num_shards), k_high(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    k_low[s] = h->clocks[s]->acked.load(std::memory_order_acquire);
  }
  StatusOr<std::vector<Entry>> got_or = h->db->Scan(lo, hi);
  if (!got_or.ok()) {
    h->Fail("Scan failed: " + got_or.status().ToString());
    return;
  }
  for (size_t s = 0; s < num_shards; ++s) {
    k_high[s] = h->clocks[s]->started.load(std::memory_order_acquire);
  }
  // Partition the merged result back into per-shard sub-results.
  std::vector<std::vector<std::pair<Key, Value>>> parts(num_shards);
  Key prev = 0;
  bool first = true;
  for (const Entry& e : *got_or) {
    if (!first && e.key <= prev) {
      h->Fail("Scan result not strictly ascending at key " +
              std::to_string(e.key));
      return;
    }
    first = false;
    prev = e.key;
    parts[h->db->ShardForKey(e.key)].emplace_back(e.key, e.value);
  }
  std::lock_guard<std::mutex> lock(h->mu);
  for (size_t s = 0; s < num_shards; ++s) {
    if (!h->oracles[s].ScanMatchesSomeIndex(parts[s], lo, hi, k_low[s],
                                            k_high[s])) {
      h->Fail("Scan[" + std::to_string(lo) + ", " + std::to_string(hi) +
              ") shard " + std::to_string(s) + " matches no index in [" +
              std::to_string(k_low[s]) + ", " + std::to_string(k_high[s]) +
              "]");
      return;
    }
  }
}

/// A reader: random mix of checked Gets and Scans until told to stop.
void ReaderLoop(Harness* h, uint64_t seed) {
  Rng rng(seed);
  while (!h->stop.load(std::memory_order_relaxed)) {
    if (rng.NextDouble() < 0.5) {
      CheckGet(h, rng.UniformInt(0, h->domain - 1));
    } else {
      const Key lo = rng.UniformInt(0, h->domain - 65);
      CheckScan(h, lo, lo + rng.UniformInt(1, 64));
    }
    h->reads_checked.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Runs one concurrent phase: 1 writer + `num_readers` checked readers
/// (readers run for the writer's whole lifetime).
void RunPhase(Harness* h, uint64_t seed, size_t writer_ops,
              size_t num_readers) {
  h->stop.store(false);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < num_readers; ++r) {
    readers.emplace_back(ReaderLoop, h, seed * 131 + r);
  }
  std::thread writer(WriterLoop, h, seed, writer_ops);
  writer.join();
  h->stop.store(true);
  for (std::thread& t : readers) t.join();
}

void ExpectClean(const Harness& h) {
  EXPECT_EQ(h.failures.load(), 0u) << "first: " << h.first_failure;
  EXPECT_GT(h.reads_checked.load(), 0u);
}

Options ConcurrentOpts(int num_shards) {
  Options o;
  o.size_ratio = 4;
  o.buffer_entries = 64;  // tiny buffer: many flush/compaction edges
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 6.0;
  o.backend = StorageBackend::kMemory;
  o.num_shards = num_shards;
  o.background_maintenance = true;
  o.block_cache_bytes = 256 * 1024;   // reads exercise the shared cache
  o.memory_budget_bytes = 1024 * 1024;  // ...and the memory arbiter
  return o;
}

TEST(SnapshotConsistencyTest, ConcurrentReadersObserveWritePrefix) {
  // Single shard: the purest form of the property — readers race one
  // writer across flushes and compactions, every read must match a
  // prefix index within its own window.
  auto db = ShardedDB::Open(ConcurrentOpts(1));
  ASSERT_TRUE(db.ok());
  Harness h(1, /*key_domain=*/4096);
  h.db = db->get();
  RunPhase(&h, /*seed=*/101, /*writer_ops=*/10000, /*num_readers=*/2);
  ExpectClean(h);
  const Statistics total = (*db)->TotalStats();
  EXPECT_GT(total.snapshot_acquires.load(), 0u);
}

TEST(SnapshotConsistencyTest, MultiShardReadersWithLiveRetunes) {
  // Four shards plus a retuner thread cycling tuning presets: snapshot
  // publication must stay consistent through Reconfigure's epoch bumps
  // and the background migrations they trigger. Per-shard windows.
  const Options base = ConcurrentOpts(4);
  auto db = ShardedDB::Open(base);
  ASSERT_TRUE(db.ok());
  Harness h(4, /*key_domain=*/4096);
  h.db = db->get();

  std::vector<Options> presets;
  Options a = base;
  a.size_ratio = 2;
  a.policy = CompactionPolicy::kTiering;
  a.filter_bits_per_entry = 10.0;
  presets.push_back(a);
  Options b = base;
  b.policy = CompactionPolicy::kLazyLeveling;
  b.size_ratio = 6;
  b.buffer_entries = 128;
  b.block_cache_bytes = 128 * 1024;  // live cache-capacity retune
  presets.push_back(b);
  presets.push_back(base);

  std::atomic<uint64_t> retunes{0};
  std::thread tuner([&] {
    size_t i = 0;
    while (!h.stop.load(std::memory_order_relaxed)) {
      const Status s = (*db)->ApplyTuning(presets[i++ % presets.size()]);
      if (!s.ok()) {
        h.Fail("ApplyTuning: " + s.ToString());
        return;
      }
      retunes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  RunPhase(&h, /*seed=*/202, /*writer_ops=*/8000, /*num_readers=*/2);
  tuner.join();
  ExpectClean(h);
  EXPECT_GT(retunes.load(), 0u);
  const Statistics total = (*db)->TotalStats();
  EXPECT_GT(total.snapshot_acquires.load(), 0u);
  // The cache sat on the read path throughout.
  EXPECT_GT(total.cache_hits.load() + total.cache_misses.load(), 0u);
}

TEST(SnapshotConsistencyTest, WindowsSurviveCrashRecoveryReopen) {
  // Durable deployment, per-batch WAL sync: run a concurrent phase, kill
  // the process state, reopen, and require the recovered state to equal
  // the oracle at some index inside [last acked, last started] per shard
  // (no acked write lost, at most the in-flight tail dropped). Then the
  // realigned oracle drives a second concurrent phase on the reopened
  // instance.
  const std::string dir = "/tmp/endure_snapshot_crash_test";
  std::filesystem::remove_all(dir);
  Options o = ConcurrentOpts(3);
  o.backend = StorageBackend::kFile;
  o.storage_dir = dir;
  o.durability = true;
  o.wal_sync_mode = WalSyncMode::kPerBatch;

  Harness h(3, /*key_domain=*/2048);
  {
    auto db = ShardedDB::Open(o);
    ASSERT_TRUE(db.ok());
    h.db = db->get();
    RunPhase(&h, /*seed=*/303, /*writer_ops=*/900, /*num_readers=*/2);
    ExpectClean(h);
    if (::testing::Test::HasFatalFailure()) return;
    (*db)->CrashForTesting();
  }

  auto db = ShardedDB::Open(o);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  h.db = db->get();
  // Match the recovered full state per shard and truncate each oracle to
  // the index recovery landed on.
  const std::vector<Entry> all = (*db)->Scan(0, h.domain).value();
  std::vector<std::vector<std::pair<Key, Value>>> parts(3);
  for (const Entry& e : all) {
    parts[(*db)->ShardForKey(e.key)].emplace_back(e.key, e.value);
  }
  for (size_t s = 0; s < 3; ++s) {
    const uint64_t k_low = h.clocks[s]->acked.load();
    const uint64_t k_high = h.clocks[s]->started.load();
    uint64_t matched = 0;
    ASSERT_TRUE(h.oracles[s].ScanMatchesSomeIndex(parts[s], 0, h.domain,
                                                  k_low, k_high, &matched))
        << "shard " << s << " recovered outside [" << k_low << ", "
        << k_high << "]";
    h.oracles[s].TruncateTo(matched);
    h.clocks[s]->started.store(matched);
    h.clocks[s]->acked.store(matched);
  }
  // Second phase on the recovered instance.
  RunPhase(&h, /*seed=*/404, /*writer_ops=*/900, /*num_readers=*/2);
  ExpectClean(h);
  // Writer joined and every write acked: the final state is exact.
  const std::vector<Entry> fin = (*db)->Scan(0, h.domain).value();
  std::vector<std::vector<std::pair<Key, Value>>> fin_parts(3);
  for (const Entry& e : fin) {
    fin_parts[(*db)->ShardForKey(e.key)].emplace_back(e.key, e.value);
  }
  for (size_t s = 0; s < 3; ++s) {
    const uint64_t last = h.oracles[s].last_index();
    EXPECT_EQ(fin_parts[s], h.oracles[s].ScanAt(0, h.domain, last))
        << "shard " << s;
  }
}

TEST(SnapshotConsistencyTest, ReadsCompleteWhileShardMutexHeld) {
  // The lock-contention regression: a helper thread grabs EVERY shard's
  // maintenance mutex and holds it for the whole read burst. If Get or
  // Scan touched a shard mutex, the burst below would block forever
  // (caught by the CI timeout); completing it proves the steady-state
  // read path acquires zero shard locks. The snapshot_acquires counter
  // then pins down that every read went through the snapshot protocol:
  // one acquire per Get, one per shard per Scan.
  Options o = ConcurrentOpts(2);
  auto db_or = ShardedDB::Open(o);
  ASSERT_TRUE(db_or.ok());
  ShardedDB* db = db_or->get();
  for (Key k = 0; k < 512; ++k) {
    ASSERT_TRUE(db->Put(k, k + 1).ok());
  }
  ASSERT_TRUE(db->Flush().ok());  // reads also traverse runs, not just
  db->WaitForMaintenance();       // the memtable

  std::mutex ready_mu;
  std::condition_variable ready_cv;
  bool locked = false, done = false;
  std::thread holder([&] {
    std::vector<std::unique_lock<std::mutex>> locks;
    for (size_t i = 0; i < db->num_shards(); ++i) {
      locks.push_back(db->LockShardForTesting(i));
    }
    std::unique_lock<std::mutex> lock(ready_mu);
    locked = true;
    ready_cv.notify_all();
    ready_cv.wait(lock, [&] { return done; });
  });
  {
    std::unique_lock<std::mutex> lock(ready_mu);
    ready_cv.wait(lock, [&] { return locked; });
  }

  const uint64_t before = db->TotalStats().snapshot_acquires.load();
  constexpr size_t kGets = 200;
  constexpr size_t kScans = 20;
  for (Key k = 0; k < kGets; ++k) {
    const std::optional<Value> got = db->Get(k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    EXPECT_EQ(*got, k + 1);
  }
  for (size_t i = 0; i < kScans; ++i) {
    const Key lo = static_cast<Key>(i * 16);
    const std::vector<Entry> got = db->Scan(lo, lo + 16).value();
    ASSERT_EQ(got.size(), 16u);
  }
  const uint64_t after = db->TotalStats().snapshot_acquires.load();
  EXPECT_EQ(after - before, kGets + kScans * db->num_shards());

  {
    std::lock_guard<std::mutex> lock(ready_mu);
    done = true;
  }
  ready_cv.notify_all();
  holder.join();
}

}  // namespace
}  // namespace endure::lsm
