#include "lsm/fence_pointers.h"

#include <gtest/gtest.h>

namespace endure::lsm {
namespace {

// Pages: [10..), [20..), [30..); last key 35.
FencePointers MakeFences() { return FencePointers({10, 20, 30}, 35); }

TEST(FencePointersTest, MinMaxKeys) {
  FencePointers f = MakeFences();
  EXPECT_EQ(f.min_key(), 10u);
  EXPECT_EQ(f.max_key(), 35u);
  EXPECT_EQ(f.num_pages(), 3u);
}

TEST(FencePointersTest, PageForKeyInsideRun) {
  FencePointers f = MakeFences();
  EXPECT_EQ(f.PageFor(10).value(), 0u);
  EXPECT_EQ(f.PageFor(15).value(), 0u);
  EXPECT_EQ(f.PageFor(19).value(), 0u);
  EXPECT_EQ(f.PageFor(20).value(), 1u);
  EXPECT_EQ(f.PageFor(29).value(), 1u);
  EXPECT_EQ(f.PageFor(30).value(), 2u);
  EXPECT_EQ(f.PageFor(35).value(), 2u);
}

TEST(FencePointersTest, PageForKeyOutsideRun) {
  FencePointers f = MakeFences();
  EXPECT_FALSE(f.PageFor(9).has_value());
  EXPECT_FALSE(f.PageFor(36).has_value());
  EXPECT_FALSE(f.PageFor(0).has_value());
}

TEST(FencePointersTest, PageRangeFullOverlap) {
  FencePointers f = MakeFences();
  const auto r = f.PageRange(0, 100);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 0u);
  EXPECT_EQ(r->second, 2u);
}

TEST(FencePointersTest, PageRangePartialOverlap) {
  FencePointers f = MakeFences();
  const auto r = f.PageRange(15, 25);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 0u);
  EXPECT_EQ(r->second, 1u);
}

TEST(FencePointersTest, PageRangeSinglePage) {
  FencePointers f = MakeFences();
  const auto r = f.PageRange(21, 24);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 1u);
  EXPECT_EQ(r->second, 1u);
}

TEST(FencePointersTest, PageRangeMiss) {
  FencePointers f = MakeFences();
  EXPECT_FALSE(f.PageRange(0, 10).has_value());  // hi exclusive
  EXPECT_FALSE(f.PageRange(36, 50).has_value());
  EXPECT_FALSE(f.PageRange(5, 5).has_value());   // empty interval
  EXPECT_FALSE(f.PageRange(20, 15).has_value()); // inverted
}

TEST(FencePointersTest, PageRangeBoundaryAtPageStart) {
  FencePointers f = MakeFences();
  // [20, 21) touches only page 1.
  const auto r = f.PageRange(20, 21);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 1u);
  EXPECT_EQ(r->second, 1u);
}

TEST(FencePointersTest, SinglePageRun) {
  FencePointers f({100}, 120);
  EXPECT_EQ(f.PageFor(100).value(), 0u);
  EXPECT_EQ(f.PageFor(120).value(), 0u);
  EXPECT_FALSE(f.PageFor(121).has_value());
  const auto r = f.PageRange(90, 200);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 0u);
  EXPECT_EQ(r->second, 0u);
}

TEST(FencePointersTest, SizeBitsAccountsKeys) {
  // 3 dense fences + 1 sparse top-index sample + the last key.
  FencePointers f = MakeFences();
  EXPECT_EQ(f.SizeBits(), (3 + 1 + 1) * 64u);
}

TEST(FencePointersTest, TwoLevelSearchMatchesDenseScanOnLargeRuns) {
  // Cross the 64-page top-index sampling boundary and verify every lookup
  // against a straightforward dense scan.
  std::vector<Key> first_keys;
  for (Key k = 0; k < 1000; ++k) first_keys.push_back(10 * k + 5);
  const Key last = 10 * 1000 + 5;
  FencePointers f(first_keys, last);
  for (Key key = 0; key <= last + 10; key += 3) {
    const auto got = f.PageFor(key);
    if (key < first_keys.front() || key > last) {
      EXPECT_FALSE(got.has_value()) << key;
      continue;
    }
    size_t want = 0;
    for (size_t i = 0; i < first_keys.size(); ++i) {
      if (first_keys[i] <= key) want = i;
    }
    ASSERT_TRUE(got.has_value()) << key;
    EXPECT_EQ(*got, want) << key;
  }
  // Page ranges across the sampling boundary.
  const auto r = f.PageRange(630, 1282);  // pages 62..127
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 62u);
  EXPECT_EQ(r->second, 127u);
}

}  // namespace
}  // namespace endure::lsm
