// On-disk corruption detection: per-page CRC32 verification at runtime
// (Options::verify_checksums) and at recovery (Options::scrub_on_recovery),
// plus the manifest-length cross-check for truncated segment files. The
// damage is inflicted on the real files between closes — no fault
// injector, just a hex editor's view of the deployment directory.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "util/env.h"
#include "util/status.h"

namespace endure::lsm {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = "/tmp/endure_corruption_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Options DurableOpts(const std::string& dir) {
  Options o;
  o.size_ratio = 4;
  o.buffer_entries = 32;
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 6.0;
  o.backend = StorageBackend::kFile;
  o.storage_dir = dir;
  o.durability = true;
  o.wal_sync_mode = WalSyncMode::kPerBatch;
  return o;
}

/// Paths of every persistent segment file in `dir`, sorted.
std::vector<std::string> SegmentFiles(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("seg_", 0) == 0 &&
        name.size() > 8 && name.substr(name.size() - 4) == ".run") {
      out.push_back(e.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FlipByte(const std::string& path, std::streamoff offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(offset);
  char byte = 0;
  f.read(&byte, 1);
  byte ^= 0x40;
  f.seekp(offset);
  f.write(&byte, 1);
  ASSERT_TRUE(f.good()) << path;
}

/// Builds a deployment with one flushed run of keys [0, n) and closes it.
void SeedDeployment(const Options& opts, Key n) {
  auto db = DB::Open(opts);
  ASSERT_TRUE(db.ok());
  for (Key k = 0; k < n; ++k) {
    ASSERT_TRUE((*db)->Put(k, k + 100).ok());
  }
  ASSERT_TRUE((*db)->Flush().ok());
}

TEST(CorruptionTest, RecoveryScrubRejectsBitFlippedSegment) {
  const std::string dir = FreshDir("scrub_bitflip");
  Options opts = DurableOpts(dir);
  SeedDeployment(opts, 64);

  const std::vector<std::string> segs = SegmentFiles(dir);
  ASSERT_FALSE(segs.empty());
  FlipByte(segs.front(), 4);  // inside the first page's payload

  auto reopened = DB::Open(opts);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption)
      << reopened.status().message();
}

TEST(CorruptionTest, TruncatedSegmentFailsRecovery) {
  const std::string dir = FreshDir("truncated");
  Options opts = DurableOpts(dir);
  SeedDeployment(opts, 64);

  const std::vector<std::string> segs = SegmentFiles(dir);
  ASSERT_FALSE(segs.empty());
  const std::string victim = segs.front();
  const auto size = std::filesystem::file_size(victim);
  ASSERT_GT(size, 16u);
  std::filesystem::resize_file(victim, size / 2);

  auto reopened = DB::Open(opts);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption)
      << reopened.status().message();
}

TEST(CorruptionTest, ScrubOffDefersDetectionToFirstRead) {
  const std::string dir = FreshDir("scrub_off");
  Options opts = DurableOpts(dir);
  SeedDeployment(opts, 64);

  const std::vector<std::string> segs = SegmentFiles(dir);
  ASSERT_FALSE(segs.empty());
  FlipByte(segs.front(), 4);

  // Without the recovery scrub the open succeeds (fences and filters are
  // rebuilt from what the pages claim), but runtime verification catches
  // the damage on the first point read that touches the bad page.
  opts.scrub_on_recovery = false;
  opts.verify_checksums = true;
  auto db = DB::Open(opts);
  // Recovery still reads every page to rebuild filters, so a checksum-
  // verifying read path may legitimately refuse the open too; both
  // detect-at-open and detect-at-read satisfy the no-silent-serving bar.
  if (!db.ok()) {
    EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
    return;
  }
  EXPECT_EQ((*db)->Get(0), std::nullopt);  // page 0 holds keys 0..3
  EXPECT_FALSE((*db)->Health().ok());
  EXPECT_GE((*db)->stats().checksum_failures.load(), 1u);
}

TEST(CorruptionTest, RuntimeChecksumFailureLatchesReadOnly) {
  const std::string dir = FreshDir("runtime_latch");
  Options opts = DurableOpts(dir);
  opts.scrub_on_recovery = false;  // let the damaged deployment open
  SeedDeployment(opts, 64);

  const std::vector<std::string> segs = SegmentFiles(dir);
  ASSERT_FALSE(segs.empty());
  FlipByte(segs.front(), 4);

  auto db = DB::Open(opts);
  if (!db.ok()) {
    // Filter rebuild already tripped over the page — equally acceptable.
    EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
    return;
  }
  // The corrupted page misses rather than serving damaged bytes...
  EXPECT_EQ((*db)->Get(0), std::nullopt);
  // ...and the tree latches read-only: writes are refused from now on.
  const Status health = (*db)->Health();
  ASSERT_FALSE(health.ok());
  EXPECT_EQ(health.code(), StatusCode::kCorruption);
  EXPECT_FALSE((*db)->Put(1000, 1).ok());
  EXPECT_GE((*db)->stats().read_only_transitions.load(), 1u);
  EXPECT_GE((*db)->stats().checksum_failures.load(), 1u);
}

TEST(CorruptionTest, BitRotIsNeverAdmittedToBlockCache) {
  // Checksum-verified admission: a page that fails CRC verification must
  // neither be admitted to the block cache nor ever served from it —
  // every retry re-reads the device, fails verification again, and
  // misses. A cache hit on rotted bytes would silently launder the
  // corruption past the verifier.
  const std::string dir = FreshDir("cache_bitrot");
  Options opts = DurableOpts(dir);
  opts.scrub_on_recovery = false;  // let the damaged deployment open
  SeedDeployment(opts, 64);

  const std::vector<std::string> segs = SegmentFiles(dir);
  ASSERT_FALSE(segs.empty());
  FlipByte(segs.front(), 4);  // inside the first page's payload

  opts.block_cache_bytes = 256 * 1024;
  auto db = DB::Open(opts);
  if (!db.ok()) {
    // Filter rebuild already tripped over the page — equally acceptable.
    EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
    return;
  }
  constexpr int kAttempts = 5;
  for (int i = 0; i < kAttempts; ++i) {
    EXPECT_EQ((*db)->Get(0), std::nullopt);  // page 0 holds keys 0..3
  }
  EXPECT_EQ((*db)->stats().cache_hits.load(), 0u);
  EXPECT_GE((*db)->stats().checksum_failures.load(),
            static_cast<uint64_t>(kAttempts));
  EXPECT_GE((*db)->stats().cache_misses.load(),
            static_cast<uint64_t>(kAttempts));
}

TEST(CorruptionTest, VerifiedPagesAreServedFromCacheAfterBitRotElsewhere) {
  // The flip side of checksum-verified admission: pages that DID verify
  // are admitted and repeat reads hit the cache — even while a rotted
  // page elsewhere in the deployment keeps the tree latched read-only —
  // and serving a hit never re-runs (or re-fails) verification.
  const std::string dir = FreshDir("cache_clean_pages");
  Options opts = DurableOpts(dir);
  opts.scrub_on_recovery = false;
  SeedDeployment(opts, 64);

  const std::vector<std::string> segs = SegmentFiles(dir);
  ASSERT_FALSE(segs.empty());
  FlipByte(segs.front(), 4);

  opts.block_cache_bytes = 256 * 1024;
  auto db = DB::Open(opts);
  if (!db.ok()) {
    EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
    return;
  }
  // A key far from the damaged first page: first read admits, the
  // second hits.
  ASSERT_EQ((*db)->Get(40).value_or(0), 140u);
  const uint64_t hits_before = (*db)->stats().cache_hits.load();
  ASSERT_EQ((*db)->Get(40).value_or(0), 140u);
  EXPECT_GT((*db)->stats().cache_hits.load(), hits_before);

  // Now trip the rotted page, then confirm cached serving of the clean
  // page still works and the failure count stops moving when hits serve.
  EXPECT_EQ((*db)->Get(0), std::nullopt);
  const uint64_t failures = (*db)->stats().checksum_failures.load();
  EXPECT_GE(failures, 1u);
  const uint64_t hits_mid = (*db)->stats().cache_hits.load();
  ASSERT_EQ((*db)->Get(40).value_or(0), 140u);
  EXPECT_GT((*db)->stats().cache_hits.load(), hits_mid);
  EXPECT_EQ((*db)->stats().checksum_failures.load(), failures);
}

TEST(CorruptionTest, UndamagedDeploymentScrubsClean) {
  const std::string dir = FreshDir("clean_scrub");
  Options opts = DurableOpts(dir);
  SeedDeployment(opts, 256);  // several pages and a compaction or two

  auto db = DB::Open(opts);  // scrub_on_recovery is on by default
  ASSERT_TRUE(db.ok()) << db.status().message();
  for (Key k = 0; k < 256; ++k) {
    ASSERT_EQ((*db)->Get(k).value_or(0), k + 100) << k;
  }
  EXPECT_TRUE((*db)->Health().ok());
  EXPECT_EQ((*db)->stats().checksum_failures.load(), 0u);
}

}  // namespace
}  // namespace endure::lsm
