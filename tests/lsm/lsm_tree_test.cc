#include "lsm/lsm_tree.h"

#include <gtest/gtest.h>

#include <map>

#include "util/random.h"

namespace endure::lsm {
namespace {

Options SmallOptions(CompactionPolicy policy, int T = 3,
                     uint64_t buffer = 8) {
  Options o;
  o.policy = policy;
  o.size_ratio = T;
  o.buffer_entries = buffer;
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 8.0;
  return o;
}

class LsmTreeTest : public ::testing::TestWithParam<CompactionPolicy> {
 protected:
  LsmTreeTest()
      : opts_(SmallOptions(GetParam())),
        store_(opts_.entries_per_page, &stats_),
        tree_(opts_, &store_, &stats_) {}

  Options opts_;
  Statistics stats_;
  MemPageStore store_;
  LsmTree tree_;
};

TEST_P(LsmTreeTest, PutGetRoundTrip) {
  tree_.Put(1, 100);
  tree_.Put(2, 200);
  EXPECT_EQ(tree_.Get(1).value(), 100u);
  EXPECT_EQ(tree_.Get(2).value(), 200u);
  EXPECT_FALSE(tree_.Get(3).has_value());
}

TEST_P(LsmTreeTest, UpdateOverwrites) {
  tree_.Put(7, 1);
  tree_.Put(7, 2);
  EXPECT_EQ(tree_.Get(7).value(), 2u);
}

TEST_P(LsmTreeTest, UpdateSurvivesFlushes) {
  for (Key k = 0; k < 100; ++k) tree_.Put(k, k);
  tree_.Put(5, 999);
  for (Key k = 100; k < 200; ++k) tree_.Put(k, k);  // force more flushes
  EXPECT_EQ(tree_.Get(5).value(), 999u);
}

TEST_P(LsmTreeTest, DeleteHidesKey) {
  tree_.Put(11, 1);
  tree_.Delete(11);
  EXPECT_FALSE(tree_.Get(11).has_value());
}

TEST_P(LsmTreeTest, DeleteSurvivesCompactions) {
  for (Key k = 0; k < 64; ++k) tree_.Put(k, k);
  tree_.Delete(13);
  for (Key k = 64; k < 256; ++k) tree_.Put(k, k);
  EXPECT_FALSE(tree_.Get(13).has_value());
  EXPECT_EQ(tree_.Get(14).value(), 14u);
}

TEST_P(LsmTreeTest, FlushMovesMemtableToLevelOne) {
  for (Key k = 0; k < 5; ++k) tree_.Put(k, k);
  tree_.Flush();
  EXPECT_TRUE(tree_.memtable().empty());
  EXPECT_GE(tree_.DeepestLevel(), 1);
  EXPECT_EQ(tree_.Get(3).value(), 3u);
}

TEST_P(LsmTreeTest, AutomaticFlushWhenBufferFills) {
  for (Key k = 0; k < 9; ++k) tree_.Put(k, k);  // buffer = 8
  EXPECT_GT(stats_.flushes, 0u);
}

TEST_P(LsmTreeTest, ScanReturnsSortedLiveEntries) {
  for (Key k = 0; k < 50; ++k) tree_.Put(k * 2, k);
  tree_.Delete(10);
  const std::vector<Entry> out = tree_.Scan(5, 21).value();
  // Keys 6, 8, 12, 14, 16, 18, 20 (10 deleted).
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out.front().key, 6u);
  EXPECT_EQ(out.back().key, 20u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].key, out[i].key);
    EXPECT_NE(out[i].key, 10u);
  }
}

TEST_P(LsmTreeTest, ScanEmptyRange) {
  for (Key k = 0; k < 20; ++k) tree_.Put(k, k);
  EXPECT_TRUE(tree_.Scan(100, 200).value().empty());
  EXPECT_TRUE(tree_.Scan(5, 5).value().empty());
}

TEST_P(LsmTreeTest, MatchesReferenceModelUnderRandomOps) {
  std::map<Key, Value> ref;
  Rng rng(31);
  for (int i = 0; i < 3000; ++i) {
    const double dice = rng.NextDouble();
    const Key k = rng.UniformInt(0, 400);
    if (dice < 0.55) {
      const Value v = rng.Next();
      tree_.Put(k, v);
      ref[k] = v;
    } else if (dice < 0.7) {
      tree_.Delete(k);
      ref.erase(k);
    } else if (dice < 0.9) {
      const auto got = tree_.Get(k);
      const auto it = ref.find(k);
      if (it == ref.end()) {
        EXPECT_FALSE(got.has_value()) << "key " << k;
      } else {
        ASSERT_TRUE(got.has_value()) << "key " << k;
        EXPECT_EQ(*got, it->second) << "key " << k;
      }
    } else {
      const Key lo = k, hi = k + rng.UniformInt(1, 40);
      const std::vector<Entry> got = tree_.Scan(lo, hi).value();
      std::vector<std::pair<Key, Value>> expect;
      for (auto it = ref.lower_bound(lo);
           it != ref.end() && it->first < hi; ++it) {
        expect.push_back(*it);
      }
      ASSERT_EQ(got.size(), expect.size()) << "range " << lo << ".." << hi;
      for (size_t j = 0; j < got.size(); ++j) {
        EXPECT_EQ(got[j].key, expect[j].first);
        EXPECT_EQ(got[j].value, expect[j].second);
      }
    }
  }
}

TEST_P(LsmTreeTest, LevelCapacitiesExponential) {
  EXPECT_EQ(tree_.LevelCapacity(1),
            opts_.buffer_entries * (opts_.size_ratio - 1));
  EXPECT_EQ(tree_.LevelCapacity(3), tree_.LevelCapacity(2) *
                                        static_cast<uint64_t>(
                                            opts_.size_ratio));
}

TEST_P(LsmTreeTest, TotalEntriesTracksInserts) {
  for (Key k = 0; k < 100; ++k) tree_.Put(k, k);
  EXPECT_GE(tree_.TotalEntries(), 100u);  // shadowed copies may inflate
}

TEST_P(LsmTreeTest, BulkLoadPopulatesSteadyState) {
  Options opts = SmallOptions(GetParam(), 4, 16);
  Statistics stats;
  MemPageStore store(opts.entries_per_page, &stats);
  LsmTree tree(opts, &store, &stats);

  std::vector<Entry> entries;
  for (Key k = 0; k < 1000; ++k) {
    entries.push_back(Entry{2 * k, 0, k, EntryType::kValue});
  }
  tree.BulkLoad(entries);
  EXPECT_EQ(tree.TotalEntries(), 1000u);
  EXPECT_GE(tree.DeepestLevel(), 2);
  // Every key readable; misses stay misses.
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Key k = rng.UniformInt(0, 999);
    ASSERT_TRUE(tree.Get(2 * k).has_value()) << k;
    EXPECT_EQ(tree.Get(2 * k).value(), k);
    EXPECT_FALSE(tree.Get(2 * k + 1).has_value());
  }
  // Level populations respect capacities.
  for (const LevelInfo& info : tree.GetLevelInfos()) {
    EXPECT_LE(info.num_entries, info.capacity) << "level " << info.level;
  }
}

TEST_P(LsmTreeTest, BulkLoadRunsSpanKeyDomain) {
  // N = 1000 with caps 48/192/768 fills three levels (40/192/768).
  Options opts = SmallOptions(GetParam(), 4, 16);
  Statistics stats;
  MemPageStore store(opts.entries_per_page, &stats);
  LsmTree tree(opts, &store, &stats);
  std::vector<Entry> entries;
  for (Key k = 0; k < 1000; ++k) {
    entries.push_back(Entry{k, 0, k, EntryType::kValue});
  }
  tree.BulkLoad(entries);
  // Stride partitioning: each populated level's run spans (almost) the
  // whole key domain rather than a contiguous slice.
  int checked = 0;
  for (const auto& info : tree.GetLevelInfos()) {
    if (info.num_entries < 10) continue;
    ++checked;
    EXPECT_LT(info.min_key, 100u) << "level " << info.level;
    EXPECT_GT(info.max_key, 900u) << "level " << info.level;
  }
  EXPECT_GE(checked, 2);
}

TEST_P(LsmTreeTest, WritesAfterBulkLoadIntegrate) {
  Options opts = SmallOptions(GetParam(), 3, 8);
  Statistics stats;
  MemPageStore store(opts.entries_per_page, &stats);
  LsmTree tree(opts, &store, &stats);
  std::vector<Entry> entries;
  for (Key k = 0; k < 200; ++k) {
    entries.push_back(Entry{2 * k, 0, k, EntryType::kValue});
  }
  tree.BulkLoad(entries);
  for (Key k = 0; k < 100; ++k) tree.Put(2 * (200 + k), 7);
  EXPECT_EQ(tree.Get(2 * 250).value(), 7u);
  EXPECT_EQ(tree.Get(2 * 100).value(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Policies, LsmTreeTest,
                         ::testing::Values(CompactionPolicy::kLeveling,
                                           CompactionPolicy::kTiering));

TEST(LsmTreeLevelingTest, OneRunPerLevelInvariant) {
  Options opts = SmallOptions(CompactionPolicy::kLeveling, 3, 8);
  Statistics stats;
  MemPageStore store(opts.entries_per_page, &stats);
  LsmTree tree(opts, &store, &stats);
  Rng rng(12);
  for (int i = 0; i < 2000; ++i) tree.Put(rng.UniformInt(0, 100000), i);
  for (const LevelInfo& info : tree.GetLevelInfos()) {
    EXPECT_LE(info.num_runs, 1u) << "level " << info.level;
  }
  EXPECT_GT(stats.compactions, 0u);
}

TEST(LsmTreeTieringTest, RunsPerLevelBelowT) {
  Options opts = SmallOptions(CompactionPolicy::kTiering, 4, 8);
  Statistics stats;
  MemPageStore store(opts.entries_per_page, &stats);
  LsmTree tree(opts, &store, &stats);
  Rng rng(13);
  for (int i = 0; i < 4000; ++i) tree.Put(rng.UniformInt(0, 100000), i);
  for (const LevelInfo& info : tree.GetLevelInfos()) {
    EXPECT_LT(info.num_runs, static_cast<size_t>(opts.size_ratio))
        << "level " << info.level;
  }
}

TEST(LsmTreeTieringTest, TieringCompactsLessThanLeveling) {
  // The core LSM trade-off the paper tunes: lazy merging writes less.
  auto run_workload = [](CompactionPolicy policy) {
    Options opts = SmallOptions(policy, 4, 8);
    Statistics stats;
    MemPageStore store(opts.entries_per_page, &stats);
    LsmTree tree(opts, &store, &stats);
    for (Key k = 0; k < 5000; ++k) tree.Put(k, k);
    return stats.compaction_pages_read + stats.compaction_pages_written;
  };
  EXPECT_LT(run_workload(CompactionPolicy::kTiering),
            run_workload(CompactionPolicy::kLeveling));
}

TEST(LsmTreeFenceSkipTest, DisablingFenceSkipCostsMoreRangeIo) {
  auto range_io = [](bool skip) {
    Options opts = SmallOptions(CompactionPolicy::kLeveling, 3, 8);
    opts.fence_pointer_skip = skip;
    Statistics stats;
    MemPageStore store(opts.entries_per_page, &stats);
    LsmTree tree(opts, &store, &stats);
    std::vector<Entry> entries;
    for (Key k = 0; k < 500; ++k) {
      entries.push_back(Entry{2 * k, 0, k, EntryType::kValue});
    }
    tree.BulkLoad(entries);
    const uint64_t before = stats.range_pages_read;
    for (Key k = 0; k < 100; ++k) (void)tree.Scan(2 * k, 2 * k + 8);
    return stats.range_pages_read - before;
  };
  EXPECT_LE(range_io(true), range_io(false));
}

}  // namespace
}  // namespace endure::lsm
