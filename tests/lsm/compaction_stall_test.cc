// Write backpressure under the compaction scheduler: stalls are counted
// and accounted, foreground operations stay bounded while a rate-limited
// major compaction grinds in the background, and the stall condition
// releases (no wedged writers) once maintenance catches up or the DB
// shuts down. Suite names start with CompactionStall so CI's sanitizer
// legs pick them up by regex.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "lsm/sharded_db.h"
#include "util/random.h"

namespace endure::lsm {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t MsSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start)
          .count());
}

Options StallOpts() {
  Options o;
  o.size_ratio = 4;
  o.buffer_entries = 256;
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 8.0;
  o.num_shards = 1;
  o.background_maintenance = true;
  return o;
}

TEST(CompactionStallTest, StallsAreCountedAndTimed) {
  // One worker and a merge throttle slow maintenance enough that the
  // write path saturates: the sealed buffer is pending while the active
  // one fills, so Put must stall (bounded wait, one counter bump per
  // episode) rather than grow memory without limit.
  Options o = StallOpts();
  o.maintenance_threads = 1;
  o.compaction_rate_bytes_per_sec = 256 * 1024;
  auto db = std::move(ShardedDB::Open(o)).value();

  // The active buffer (256 entries) refills in microseconds while a
  // throttled merge takes ~100ms, so the sealed slot is still occupied
  // when the next seal comes due — a guaranteed stall episode.
  for (Key k = 0; k < 6000; ++k) {
    ASSERT_TRUE(db->Put(2 * (k % 2000), k).ok());
  }
  db->WaitForMaintenance();

  const Statistics total = db->TotalStats();
  EXPECT_GE(total.write_stalls.load(), 1u);
  EXPECT_GE(total.compaction_stall_ms.load(), 1u);
  EXPECT_GE(total.sched_jobs.load(), 1u);
  EXPECT_TRUE(db->Health().ok());
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(db->Get(2 * k).has_value()) << k;
  }
}

TEST(CompactionStallTest, ForegroundBoundedDuringSlowedMajorCompaction) {
  // Rate-limited merges drag on for hundreds of milliseconds each, yet
  // reads must never wait one out: merge I/O runs off the shard lock, so
  // a Get only ever contends with the short prepare/install critical
  // sections. (Writes may stall on the memtable condition; the relaxed
  // L1 threshold isolates that one trigger.)
  Options o = StallOpts();
  o.maintenance_threads = 2;
  o.compaction_rate_bytes_per_sec = 256 * 1024;  // merges crawl
  o.l1_stall_runs = 1000;  // isolate: only memtable pressure may stall
  auto db = std::move(ShardedDB::Open(o)).value();

  Rng rng(11);
  uint64_t max_get_ms = 0;
  for (Key k = 0; k < 8000; ++k) {
    ASSERT_TRUE(db->Put(2 * (k % 2000), k).ok());
    if (k % 64 == 0) {
      const auto t0 = Clock::now();
      (void)db->Get(2 * static_cast<Key>(rng.UniformInt(0, 1999)));
      max_get_ms = std::max(max_get_ms, MsSince(t0));
    }
  }
  // No read ever waited out a merge (merges at this rate take seconds).
  EXPECT_LT(max_get_ms, 250u);

  // Release the throttle so teardown maintenance finishes promptly; the
  // limiter retunes live mid-merge.
  Options fast = db->options();
  fast.compaction_rate_bytes_per_sec = 0;
  ASSERT_TRUE(db->ApplyTuning(fast).ok());
  db->WaitForMaintenance();

  const Statistics total = db->TotalStats();
  EXPECT_GE(total.rate_limited_ms.load(), 1u);
  EXPECT_TRUE(db->Health().ok());
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(db->Get(2 * k).has_value()) << k;
  }
}

TEST(CompactionStallTest, StalledWritersReleaseOnShutdown) {
  // A writer stalled on backpressure must not wedge destruction: the
  // stall loop re-checks scheduler liveness, so CrashForTesting (which
  // stops the scheduler with maintenance still pending) lets Put return.
  Options o = StallOpts();
  o.maintenance_threads = 1;
  o.compaction_rate_bytes_per_sec = 1024;  // pathologically slow
  auto db = std::move(ShardedDB::Open(o)).value();

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (Key k = 0; k < 30000; ++k) {
      if (!db->Put(2 * k, k).ok()) break;  // degraded mode also releases
    }
    writer_done = true;
  });
  // Give the writer time to hit a stall, then yank the scheduler.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  db->CrashForTesting();
  const auto start = Clock::now();
  while (!writer_done && MsSince(start) < 10000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(writer_done) << "writer wedged in a stall after shutdown";
  writer.join();
}

}  // namespace
}  // namespace endure::lsm
