// Unit tests for the failpoint facility itself (skip/count schedules,
// permanent faults, fired/seen accounting, install/uninstall) plus the
// WriteFileAtomic temp-file hygiene regression: a fault at any stage of
// the write/fsync/rename sequence must not strand `<path>.tmp` for
// recovery scans to trip over.

#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <string>

#include "util/env.h"

namespace endure {
namespace {

TEST(FaultInjectionTest, NoInjectorMeansNoFault) {
  ASSERT_EQ(FaultInjector::Current(), nullptr);
  const FaultOutcome outcome = CheckFault(FaultSite::kSegmentWrite);
  EXPECT_FALSE(outcome.fires());
  EXPECT_EQ(outcome.err, 0);
}

TEST(FaultInjectionTest, UnarmedSiteLetsOperationsThrough) {
  ScopedFaultInjector fi;
  fi->Arm(FaultSite::kWalWrite, {.err = EIO});
  EXPECT_FALSE(CheckFault(FaultSite::kSegmentWrite).fires());
  EXPECT_TRUE(CheckFault(FaultSite::kWalWrite).fires());
}

TEST(FaultInjectionTest, SkipThenFireThenClear) {
  ScopedFaultInjector fi;
  fi->Arm(FaultSite::kSegmentWrite, {.skip = 2, .count = 3, .err = ENOSPC});
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(CheckFault(FaultSite::kSegmentWrite).fires()) << i;
  }
  for (int i = 0; i < 3; ++i) {
    const FaultOutcome outcome = CheckFault(FaultSite::kSegmentWrite);
    EXPECT_EQ(outcome.err, ENOSPC) << i;
  }
  // The schedule is exhausted: the site behaves healthy again.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(CheckFault(FaultSite::kSegmentWrite).fires()) << i;
  }
  EXPECT_EQ(fi->fired(FaultSite::kSegmentWrite), 3u);
  EXPECT_EQ(fi->seen(FaultSite::kSegmentWrite), 10u);
}

TEST(FaultInjectionTest, PermanentFaultFiresUntilDisarmed) {
  ScopedFaultInjector fi;
  fi->Arm(FaultSite::kWalFsync, {.count = UINT64_MAX, .err = EIO});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(CheckFault(FaultSite::kWalFsync).err, EIO) << i;
  }
  fi->Disarm(FaultSite::kWalFsync);
  EXPECT_FALSE(CheckFault(FaultSite::kWalFsync).fires());
  EXPECT_EQ(fi->fired(FaultSite::kWalFsync), 100u);
}

TEST(FaultInjectionTest, SilentFaultsCarryNoErrno) {
  ScopedFaultInjector fi;
  fi->Arm(FaultSite::kSegmentWrite, {.short_io = true});
  fi->Arm(FaultSite::kSegmentRead, {.corrupt = true});
  const FaultOutcome tear = CheckFault(FaultSite::kSegmentWrite);
  EXPECT_TRUE(tear.fires());
  EXPECT_TRUE(tear.short_io);
  EXPECT_EQ(tear.err, 0);
  const FaultOutcome rot = CheckFault(FaultSite::kSegmentRead);
  EXPECT_TRUE(rot.fires());
  EXPECT_TRUE(rot.corrupt);
  EXPECT_EQ(rot.err, 0);
}

TEST(FaultInjectionTest, RearmResetsTheCounter) {
  ScopedFaultInjector fi;
  fi->Arm(FaultSite::kFileWrite, {.skip = 1, .err = EIO});
  EXPECT_FALSE(CheckFault(FaultSite::kFileWrite).fires());
  fi->Arm(FaultSite::kFileWrite, {.skip = 1, .err = EIO});
  // The skip starts over after the rearm.
  EXPECT_FALSE(CheckFault(FaultSite::kFileWrite).fires());
  EXPECT_TRUE(CheckFault(FaultSite::kFileWrite).fires());
}

TEST(FaultInjectionTest, DisarmAllClearsEverySite) {
  ScopedFaultInjector fi;
  fi->Arm(FaultSite::kSegmentWrite, {.count = UINT64_MAX, .err = EIO});
  fi->Arm(FaultSite::kWalWrite, {.count = UINT64_MAX, .err = EIO});
  fi->DisarmAll();
  EXPECT_FALSE(CheckFault(FaultSite::kSegmentWrite).fires());
  EXPECT_FALSE(CheckFault(FaultSite::kWalWrite).fires());
}

TEST(FaultInjectionTest, ScopedInstallUninstallsOnExit) {
  {
    ScopedFaultInjector fi;
    EXPECT_EQ(FaultInjector::Current(), &*fi);
  }
  EXPECT_EQ(FaultInjector::Current(), nullptr);
}

TEST(FaultInjectionTest, SiteNamesAreDistinct) {
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    for (size_t j = i + 1; j < kNumFaultSites; ++j) {
      EXPECT_STRNE(FaultSiteName(static_cast<FaultSite>(i)),
                   FaultSiteName(static_cast<FaultSite>(j)));
    }
  }
}

// ------------------------- WriteFileAtomic temp hygiene regression -------

class WriteFileAtomicFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/endure_fault_injection_test_atomic";
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(EnsureDir(dir_).ok());
    path_ = dir_ + "/target";
    tmp_ = path_ + ".tmp";
  }

  std::string dir_;
  std::string path_;
  std::string tmp_;
};

TEST_F(WriteFileAtomicFaultTest, FailedWriteLeavesNoTempFile) {
  ScopedFaultInjector fi;
  fi->Arm(FaultSite::kFileWrite, {.err = ENOSPC});
  const Status s = WriteFileAtomic(path_, "payload");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(FileExists(tmp_));
  EXPECT_FALSE(FileExists(path_));
}

TEST_F(WriteFileAtomicFaultTest, FailedFsyncLeavesNoTempFile) {
  ScopedFaultInjector fi;
  fi->Arm(FaultSite::kFileFsync, {.err = EIO});
  const Status s = WriteFileAtomic(path_, "payload");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(FileExists(tmp_));
  EXPECT_FALSE(FileExists(path_));
}

TEST_F(WriteFileAtomicFaultTest, FailedRenameLeavesNoTempFile) {
  ScopedFaultInjector fi;
  fi->Arm(FaultSite::kFileRename, {.err = EIO});
  const Status s = WriteFileAtomic(path_, "payload");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(FileExists(tmp_));
  EXPECT_FALSE(FileExists(path_));
}

TEST_F(WriteFileAtomicFaultTest, FailurePreservesThePreviousContents) {
  ASSERT_TRUE(WriteFileAtomic(path_, "old contents").ok());
  {
    ScopedFaultInjector fi;
    fi->Arm(FaultSite::kFileRename, {.err = EIO});
    EXPECT_FALSE(WriteFileAtomic(path_, "new contents").ok());
  }
  auto read = ReadFileToString(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "old contents");
  EXPECT_FALSE(FileExists(tmp_));
  // With the fault cleared the same publish succeeds.
  ASSERT_TRUE(WriteFileAtomic(path_, "new contents").ok());
  read = ReadFileToString(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "new contents");
}

}  // namespace
}  // namespace endure
