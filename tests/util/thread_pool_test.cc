#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace endure {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, TasksWriteDisjointSlots) {
  ThreadPool pool(3);
  std::vector<int> slots(64, 0);
  for (size_t i = 0; i < slots.size(); ++i) {
    pool.Submit([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
  }
  pool.Wait();
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i) + 1);
  }
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  for (int i = 0; i < 10; ++i) pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, DefaultParallelismIsPositive) {
  EXPECT_GE(DefaultParallelism(), 1u);
}

}  // namespace
}  // namespace endure
