#include "util/flags.h"

#include <gtest/gtest.h>

namespace endure {
namespace {

FlagParser MakeParser() {
  FlagParser p;
  p.AddString("name", "default", "a string");
  p.AddInt("count", 7, "an int");
  p.AddDouble("rho", 0.5, "a double");
  p.AddBool("verbose", false, "a bool");
  return p;
}

TEST(FlagParserTest, DefaultsWhenUnset) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.Parse(1, argv).ok());
  EXPECT_EQ(p.GetString("name"), "default");
  EXPECT_EQ(p.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("rho"), 0.5);
  EXPECT_FALSE(p.GetBool("verbose"));
  EXPECT_FALSE(p.IsSet("count"));
}

TEST(FlagParserTest, SpaceSeparatedValues) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--name", "endure", "--count", "42",
                        "--rho", "1.25"};
  ASSERT_TRUE(p.Parse(7, argv).ok());
  EXPECT_EQ(p.GetString("name"), "endure");
  EXPECT_EQ(p.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(p.GetDouble("rho"), 1.25);
  EXPECT_TRUE(p.IsSet("rho"));
}

TEST(FlagParserTest, EqualsSeparatedValues) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--name=x", "--count=-3", "--rho=2e-1"};
  ASSERT_TRUE(p.Parse(4, argv).ok());
  EXPECT_EQ(p.GetString("name"), "x");
  EXPECT_EQ(p.GetInt("count"), -3);
  EXPECT_DOUBLE_EQ(p.GetDouble("rho"), 0.2);
}

TEST(FlagParserTest, BareBooleanSetsTrue) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(p.Parse(2, argv).ok());
  EXPECT_TRUE(p.GetBool("verbose"));
}

TEST(FlagParserTest, BooleanExplicitValues) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--verbose=false"};
  ASSERT_TRUE(p.Parse(2, argv).ok());
  EXPECT_FALSE(p.GetBool("verbose"));
  const char* argv2[] = {"prog", "--verbose=1"};
  FlagParser q = MakeParser();
  ASSERT_TRUE(q.Parse(2, argv2).ok());
  EXPECT_TRUE(q.GetBool("verbose"));
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "cmd", "--count", "1", "path/to/file"};
  ASSERT_TRUE(p.Parse(5, argv).ok());
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "cmd");
  EXPECT_EQ(p.positional()[1], "path/to/file");
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--nope", "1"};
  const Status st = p.Parse(3, argv);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, TypeErrorsRejected) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--count", "abc"};
  EXPECT_FALSE(p.Parse(3, argv).ok());
  FlagParser q = MakeParser();
  const char* argv2[] = {"prog", "--rho", "zzz"};
  EXPECT_FALSE(q.Parse(3, argv2).ok());
  FlagParser r = MakeParser();
  const char* argv3[] = {"prog", "--verbose=maybe"};
  EXPECT_FALSE(r.Parse(2, argv3).ok());
}

TEST(FlagParserTest, MissingValueRejected) {
  FlagParser p = MakeParser();
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(p.Parse(2, argv).ok());
}

TEST(FlagParserTest, UsageMentionsAllFlags) {
  FlagParser p = MakeParser();
  const std::string usage = p.Usage();
  for (const char* name : {"--name", "--count", "--rho", "--verbose"}) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
}

TEST(ParseCsvDoublesTest, ParsesExactCount) {
  auto v = ParseCsvDoubles("0.1,0.2,0.3,0.4", 4);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ((*v)[0], 0.1);
  EXPECT_DOUBLE_EQ((*v)[3], 0.4);
}

TEST(ParseCsvDoublesTest, RejectsWrongCountOrGarbage) {
  EXPECT_FALSE(ParseCsvDoubles("1,2,3", 4).ok());
  EXPECT_FALSE(ParseCsvDoubles("1,2,x,4", 4).ok());
  EXPECT_FALSE(ParseCsvDoubles("1,,3,4", 4).ok());
  EXPECT_FALSE(ParseCsvDoubles("", 4).ok());
}

}  // namespace
}  // namespace endure
