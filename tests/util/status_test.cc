#include "util/status.h"

#include <gtest/gtest.h>

namespace endure {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotSupported),
               "NotSupported");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsHeldValue) {
  StatusOr<int> v(7);
  EXPECT_EQ(v.value_or(-1), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto fn = []() -> Status {
    ENDURE_RETURN_IF_ERROR(Status::Internal("boom"));
    return Status::OK();
  };
  EXPECT_EQ(fn().code(), StatusCode::kInternal);
}

TEST(ReturnIfErrorTest, PassesThroughOk) {
  auto fn = []() -> Status {
    ENDURE_RETURN_IF_ERROR(Status::OK());
    return Status::NotFound("reached end");
  };
  EXPECT_EQ(fn().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace endure
