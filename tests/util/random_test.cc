#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace endure {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBoundsInclusive) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42u);
}

TEST(RngTest, UniformRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, SimplexByCountsSumsToOne) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    std::vector<uint64_t> counts;
    const std::vector<double> p = rng.SimplexByCounts(4, 10000, &counts);
    ASSERT_EQ(p.size(), 4u);
    ASSERT_EQ(counts.size(), 4u);
    double sum = 0.0;
    uint64_t total = 0;
    for (int k = 0; k < 4; ++k) {
      EXPECT_GE(p[k], 0.0);
      EXPECT_LE(counts[k], 10000u);
      sum += p[k];
      total += counts[k];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_GT(total, 0u);
  }
}

TEST(RngTest, SimplexComponentsMatchCounts) {
  Rng rng(5);
  std::vector<uint64_t> counts;
  const std::vector<double> p = rng.SimplexByCounts(4, 1000, &counts);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  for (int k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(p[k], static_cast<double>(counts[k]) / total);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(9);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(&v);
  int fixed = 0;
  for (int i = 0; i < 100; ++i) fixed += (v[i] == i);
  EXPECT_LT(fixed, 20);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(77);
  Rng child = a.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == child.Next());
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace endure
