#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace endure {
namespace {

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(4);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian() * 3.0 + 1.0;
    all.Add(x);
    (i < 500 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  const double mean_before = a.mean();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  EXPECT_EQ(a.count(), 2);

  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(VectorStatsTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(VectorStatsTest, Stddev) {
  EXPECT_NEAR(Stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(Stddev({1.0}), 0.0);
}

TEST(VectorStatsTest, PercentileInterpolates) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 25.0);
}

TEST(VectorStatsTest, PercentileUnsortedInput) {
  std::vector<double> v{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
}

TEST(VectorStatsTest, PercentileEmpty) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
}

}  // namespace
}  // namespace endure
