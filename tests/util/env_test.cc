#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace endure {
namespace {

TEST(EnvTest, IntDefaultWhenUnset) {
  ::unsetenv("ENDURE_TEST_UNSET_VAR");
  EXPECT_EQ(GetEnvInt("ENDURE_TEST_UNSET_VAR", 17), 17);
}

TEST(EnvTest, IntParsesValue) {
  ::setenv("ENDURE_TEST_INT", "12345", 1);
  EXPECT_EQ(GetEnvInt("ENDURE_TEST_INT", 0), 12345);
  ::unsetenv("ENDURE_TEST_INT");
}

TEST(EnvTest, IntGarbageFallsBack) {
  ::setenv("ENDURE_TEST_INT", "not-a-number", 1);
  EXPECT_EQ(GetEnvInt("ENDURE_TEST_INT", 5), 5);
  ::unsetenv("ENDURE_TEST_INT");
}

TEST(EnvTest, DoubleParsesValue) {
  ::setenv("ENDURE_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("ENDURE_TEST_DBL", 0.0), 2.5);
  ::unsetenv("ENDURE_TEST_DBL");
}

TEST(EnvTest, DoubleDefaultWhenUnset) {
  ::unsetenv("ENDURE_TEST_DBL");
  EXPECT_DOUBLE_EQ(GetEnvDouble("ENDURE_TEST_DBL", 1.25), 1.25);
}

TEST(EnvTest, NowNanosMonotonic) {
  const int64_t a = NowNanos();
  const int64_t b = NowNanos();
  EXPECT_GE(b, a);
}

TEST(EnvTest, WallTimerMeasuresNonNegative) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000; ++i) sink += i;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), 0.0);
  t.Reset();
  EXPECT_GE(t.Seconds(), 0.0);
}

}  // namespace
}  // namespace endure
