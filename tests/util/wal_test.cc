// WalWriter/WalReader unit tests: framing round-trips, group commit,
// torn-tail and corruption tolerance (replay must stop at the last intact
// record, never abort), append-across-reopen, and the crash-simulation
// Abandon() hook the recovery suites build on.

#include "util/wal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "util/env.h"

namespace endure {
namespace {

std::string TempWalPath(const std::string& name) {
  const std::string path = "/tmp/endure_wal_test_" + name + ".log";
  std::remove(path.c_str());
  return path;
}

std::vector<std::pair<uint8_t, std::string>> ReadAll(
    const std::string& path, bool* torn = nullptr) {
  auto reader = WalReader::Open(path);
  EXPECT_TRUE(reader.ok());
  std::vector<std::pair<uint8_t, std::string>> records;
  uint8_t type;
  std::string payload;
  while ((*reader)->Next(&type, &payload)) {
    records.emplace_back(type, payload);
  }
  if (torn != nullptr) *torn = (*reader)->tail_torn();
  return records;
}

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical CRC-32 check value ("123456789" -> 0xCBF43926).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(WalTest, RoundTripsTypedRecords) {
  const std::string path = TempWalPath("roundtrip");
  {
    auto writer = WalWriter::Open(path, WalSyncMode::kNone);
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(1, "hello", 5);
    (*writer)->Append(7, "", 0);
    ASSERT_TRUE((*writer)->Commit().ok());
    (*writer)->Append(2, "world!", 6);
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  const auto records = ReadAll(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (std::pair<uint8_t, std::string>{1, "hello"}));
  EXPECT_EQ(records[1], (std::pair<uint8_t, std::string>{7, ""}));
  EXPECT_EQ(records[2], (std::pair<uint8_t, std::string>{2, "world!"}));
}

TEST(WalTest, MissingFileReadsAsEmpty) {
  const auto records = ReadAll(TempWalPath("missing"));
  EXPECT_TRUE(records.empty());
}

TEST(WalTest, GroupCommitWritesOnce) {
  const std::string path = TempWalPath("group");
  auto writer = WalWriter::Open(path, WalSyncMode::kNone);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 10; ++i) (*writer)->Append(1, "x", 1);
  EXPECT_EQ((*writer)->bytes_committed(), 0u);  // staged only
  ASSERT_TRUE((*writer)->Commit().ok());
  // 10 records of 9-byte header + 1-byte payload, in one commit.
  EXPECT_EQ((*writer)->bytes_committed(), 10u * 10u);
}

TEST(WalTest, AppendsAcrossReopen) {
  const std::string path = TempWalPath("reopen");
  {
    auto writer = WalWriter::Open(path, WalSyncMode::kPerBatch);
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(1, "first", 5);
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  {
    auto writer = WalWriter::Open(path, WalSyncMode::kPerBatch);
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(1, "second", 6);
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  const auto records = ReadAll(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].second, "first");
  EXPECT_EQ(records[1].second, "second");
}

TEST(WalTest, StopsAtTornTail) {
  const std::string path = TempWalPath("torn");
  {
    auto writer = WalWriter::Open(path, WalSyncMode::kNone);
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(1, "intact", 6);
    (*writer)->Append(1, "casualty", 8);
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  // Chop the last record mid-payload, as a crash mid-write would.
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(WriteFileAtomic(path, data->substr(0, data->size() - 3)).ok());

  bool torn = false;
  const auto records = ReadAll(path, &torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "intact");
  EXPECT_TRUE(torn);
}

TEST(WalTest, StopsAtCorruptRecord) {
  const std::string path = TempWalPath("corrupt");
  {
    auto writer = WalWriter::Open(path, WalSyncMode::kNone);
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(1, "good", 4);
    (*writer)->Append(1, "bad", 3);
    (*writer)->Append(1, "unreachable", 11);
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  std::string mangled = std::move(data).value();
  // Flip a payload byte of the middle record: crc fails, replay stops —
  // later records are unreachable (the durable prefix property).
  mangled[13 + 9 + 1] ^= 0x40;
  ASSERT_TRUE(WriteFileAtomic(path, mangled).ok());

  bool torn = false;
  const auto records = ReadAll(path, &torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "good");
  EXPECT_TRUE(torn);
}

TEST(WalTest, AbandonDropsStagedRecords) {
  const std::string path = TempWalPath("abandon");
  {
    auto writer = WalWriter::Open(path, WalSyncMode::kNone);
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(1, "durable", 7);
    ASSERT_TRUE((*writer)->Commit().ok());
    (*writer)->Append(1, "staged-only", 11);
    (*writer)->Abandon();  // crash: staged record never hits the file
  }
  const auto records = ReadAll(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "durable");
}

TEST(WalTest, ReopenAfterRewritePreservesSyncStateAndAppends) {
  const std::string path = TempWalPath("rewrite");
  std::atomic<int> syncs{0};
  auto writer = WalWriter::Open(path, WalSyncMode::kBackground,
                                /*sync_interval_ms=*/1,
                                [&syncs] { ++syncs; });
  ASSERT_TRUE(writer.ok());
  (*writer)->Append(1, "pre", 3);
  ASSERT_TRUE((*writer)->Commit().ok());

  // Simulate a checkpoint: write the replacement log (as the snapshot
  // writer would), fsync it, rename it over the live one, then redirect
  // the long-lived appender at it.
  const std::string tmp = path + ".rewrite";
  {
    auto snap = WalWriter::Open(tmp, WalSyncMode::kNone);
    ASSERT_TRUE(snap.ok());
    (*snap)->Append(1, "snapshot", 8);
    ASSERT_TRUE((*snap)->Commit().ok());
    ASSERT_TRUE((*snap)->Sync().ok());
    (*snap)->Abandon();
  }
  ASSERT_EQ(std::rename(tmp.c_str(), path.c_str()), 0);
  ASSERT_TRUE((*writer)->ReopenAfterRewrite(path).ok());
  // The writer starts clean on the snapshot: no pending bytes, so the
  // background flusher must not re-sync the already-durable file.
  const int syncs_after_swap = syncs.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(syncs.load(), syncs_after_swap) << "idle double-sync";

  // New appends land on the renamed inode and background-sync normally.
  (*writer)->Append(2, "post", 4);
  ASSERT_TRUE((*writer)->Commit().ok());
  for (int i = 0; i < 2000 && syncs.load() == syncs_after_swap; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(syncs.load(), syncs_after_swap) << "post-rewrite sync skipped";
  writer->reset();

  const auto records = ReadAll(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].second, "snapshot");
  EXPECT_EQ(records[1].second, "post");
}

TEST(WalFlushServiceTest, DrivesAllRegisteredWritersFromOneThread) {
  WalFlushService service(/*sync_interval_ms=*/1);
  constexpr int kWriters = 4;
  std::atomic<int> syncs[kWriters];
  std::vector<std::unique_ptr<WalWriter>> writers;
  for (int i = 0; i < kWriters; ++i) {
    syncs[i] = 0;
    auto w = WalWriter::Open(
        TempWalPath("service_" + std::to_string(i)),
        WalSyncMode::kBackground, /*sync_interval_ms=*/1,
        [&syncs, i] { ++syncs[i]; }, &service);
    ASSERT_TRUE(w.ok());
    writers.push_back(std::move(*w));
  }
  EXPECT_EQ(service.num_writers(), static_cast<size_t>(kWriters));
  for (auto& w : writers) {
    w->Append(1, "x", 1);
    ASSERT_TRUE(w->Commit().ok());
  }
  // Every writer gets its dirty bytes synced by the service thread.
  for (int i = 0; i < kWriters; ++i) {
    for (int spin = 0; spin < 2000 && syncs[i].load() == 0; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(syncs[i].load(), 1) << "writer " << i << " never synced";
  }
  // Destruction deregisters; the service must end the test empty.
  writers.clear();
  EXPECT_EQ(service.num_writers(), 0u);
}

TEST(WalFlushServiceTest, WriterLifecycleRacesServicePassSafely) {
  // Register/deregister writers while the service thread is mid-pass at
  // the fastest cadence: a torn pass would sync a destroyed writer
  // (crash / TSan report). Also commits concurrently from a second
  // thread, the shape a ShardedDB under load produces.
  WalFlushService service(/*sync_interval_ms=*/1);
  std::atomic<bool> stop{false};
  std::thread churn([&service, &stop] {
    int n = 0;
    while (!stop.load()) {
      auto w = WalWriter::Open(TempWalPath("churn_" + std::to_string(n++ % 3)),
                               WalSyncMode::kBackground, 1, nullptr,
                               &service);
      ASSERT_TRUE(w.ok());
      (*w)->Append(1, "y", 1);
      ASSERT_TRUE((*w)->Commit().ok());
      // Destructor deregisters mid-flight against the service pass.
    }
  });
  auto steady = WalWriter::Open(TempWalPath("churn_steady"),
                                WalSyncMode::kBackground, 1, nullptr,
                                &service);
  ASSERT_TRUE(steady.ok());
  for (int i = 0; i < 200; ++i) {
    (*steady)->Append(1, "z", 1);
    ASSERT_TRUE((*steady)->Commit().ok());
  }
  stop = true;
  churn.join();
  steady->reset();
  EXPECT_EQ(service.num_writers(), 0u);
}

TEST(WalTest, BackgroundModeSyncsEventually) {
  const std::string path = TempWalPath("background");
  int syncs = 0;
  {
    auto writer = WalWriter::Open(path, WalSyncMode::kBackground,
                                  /*sync_interval_ms=*/1,
                                  [&syncs] { ++syncs; });
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(1, "payload", 7);
    ASSERT_TRUE((*writer)->Commit().ok());
    // Clean close always flushes + syncs, whatever the flusher did.
  }
  EXPECT_GE(syncs, 1);
  const auto records = ReadAll(path);
  ASSERT_EQ(records.size(), 1u);
}

}  // namespace
}  // namespace endure
