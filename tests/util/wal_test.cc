// WalWriter/WalReader unit tests: framing round-trips, group commit,
// torn-tail and corruption tolerance (replay must stop at the last intact
// record, never abort), append-across-reopen, and the crash-simulation
// Abandon() hook the recovery suites build on.

#include "util/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "util/env.h"

namespace endure {
namespace {

std::string TempWalPath(const std::string& name) {
  const std::string path = "/tmp/endure_wal_test_" + name + ".log";
  std::remove(path.c_str());
  return path;
}

std::vector<std::pair<uint8_t, std::string>> ReadAll(
    const std::string& path, bool* torn = nullptr) {
  auto reader = WalReader::Open(path);
  EXPECT_TRUE(reader.ok());
  std::vector<std::pair<uint8_t, std::string>> records;
  uint8_t type;
  std::string payload;
  while ((*reader)->Next(&type, &payload)) {
    records.emplace_back(type, payload);
  }
  if (torn != nullptr) *torn = (*reader)->tail_torn();
  return records;
}

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical CRC-32 check value ("123456789" -> 0xCBF43926).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(WalTest, RoundTripsTypedRecords) {
  const std::string path = TempWalPath("roundtrip");
  {
    auto writer = WalWriter::Open(path, WalSyncMode::kNone);
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(1, "hello", 5);
    (*writer)->Append(7, "", 0);
    ASSERT_TRUE((*writer)->Commit().ok());
    (*writer)->Append(2, "world!", 6);
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  const auto records = ReadAll(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (std::pair<uint8_t, std::string>{1, "hello"}));
  EXPECT_EQ(records[1], (std::pair<uint8_t, std::string>{7, ""}));
  EXPECT_EQ(records[2], (std::pair<uint8_t, std::string>{2, "world!"}));
}

TEST(WalTest, MissingFileReadsAsEmpty) {
  const auto records = ReadAll(TempWalPath("missing"));
  EXPECT_TRUE(records.empty());
}

TEST(WalTest, GroupCommitWritesOnce) {
  const std::string path = TempWalPath("group");
  auto writer = WalWriter::Open(path, WalSyncMode::kNone);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 10; ++i) (*writer)->Append(1, "x", 1);
  EXPECT_EQ((*writer)->bytes_committed(), 0u);  // staged only
  ASSERT_TRUE((*writer)->Commit().ok());
  // 10 records of 9-byte header + 1-byte payload, in one commit.
  EXPECT_EQ((*writer)->bytes_committed(), 10u * 10u);
}

TEST(WalTest, AppendsAcrossReopen) {
  const std::string path = TempWalPath("reopen");
  {
    auto writer = WalWriter::Open(path, WalSyncMode::kPerBatch);
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(1, "first", 5);
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  {
    auto writer = WalWriter::Open(path, WalSyncMode::kPerBatch);
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(1, "second", 6);
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  const auto records = ReadAll(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].second, "first");
  EXPECT_EQ(records[1].second, "second");
}

TEST(WalTest, StopsAtTornTail) {
  const std::string path = TempWalPath("torn");
  {
    auto writer = WalWriter::Open(path, WalSyncMode::kNone);
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(1, "intact", 6);
    (*writer)->Append(1, "casualty", 8);
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  // Chop the last record mid-payload, as a crash mid-write would.
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(WriteFileAtomic(path, data->substr(0, data->size() - 3)).ok());

  bool torn = false;
  const auto records = ReadAll(path, &torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "intact");
  EXPECT_TRUE(torn);
}

TEST(WalTest, StopsAtCorruptRecord) {
  const std::string path = TempWalPath("corrupt");
  {
    auto writer = WalWriter::Open(path, WalSyncMode::kNone);
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(1, "good", 4);
    (*writer)->Append(1, "bad", 3);
    (*writer)->Append(1, "unreachable", 11);
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  std::string mangled = std::move(data).value();
  // Flip a payload byte of the middle record: crc fails, replay stops —
  // later records are unreachable (the durable prefix property).
  mangled[13 + 9 + 1] ^= 0x40;
  ASSERT_TRUE(WriteFileAtomic(path, mangled).ok());

  bool torn = false;
  const auto records = ReadAll(path, &torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "good");
  EXPECT_TRUE(torn);
}

TEST(WalTest, AbandonDropsStagedRecords) {
  const std::string path = TempWalPath("abandon");
  {
    auto writer = WalWriter::Open(path, WalSyncMode::kNone);
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(1, "durable", 7);
    ASSERT_TRUE((*writer)->Commit().ok());
    (*writer)->Append(1, "staged-only", 11);
    (*writer)->Abandon();  // crash: staged record never hits the file
  }
  const auto records = ReadAll(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "durable");
}

TEST(WalTest, BackgroundModeSyncsEventually) {
  const std::string path = TempWalPath("background");
  int syncs = 0;
  {
    auto writer = WalWriter::Open(path, WalSyncMode::kBackground,
                                  /*sync_interval_ms=*/1,
                                  [&syncs] { ++syncs; });
    ASSERT_TRUE(writer.ok());
    (*writer)->Append(1, "payload", 7);
    ASSERT_TRUE((*writer)->Commit().ok());
    // Clean close always flushes + syncs, whatever the flusher did.
  }
  EXPECT_GE(syncs, 1);
  const auto records = ReadAll(path);
  ASSERT_EQ(records.size(), 1u);
}

}  // namespace
}  // namespace endure
