#include "util/histogram.h"

#include <gtest/gtest.h>

namespace endure {
namespace {

TEST(HistogramTest, BucketsSamplesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);   // bucket 0
  h.Add(5.5);   // bucket 5
  h.Add(9.99);  // bucket 9
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(5), 1);
  EXPECT_EQ(h.bucket_count(9), 1);
  EXPECT_EQ(h.bucket_count(3), 0);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(99.0);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(3), 1);
}

TEST(HistogramTest, BucketEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_left(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_left(2), 3.0);
  EXPECT_EQ(h.num_buckets(), 4);
}

TEST(HistogramTest, FractionsSumToOne) {
  Histogram h(0.0, 1.0, 8);
  for (int i = 0; i < 100; ++i) h.Add(i / 100.0);
  double total = 0.0;
  for (int b = 0; b < h.num_buckets(); ++b) total += h.bucket_fraction(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramTest, DensityIntegratesToOne) {
  Histogram h(0.0, 2.0, 10);
  for (int i = 0; i < 1000; ++i) h.Add(2.0 * i / 1000.0);
  double integral = 0.0;
  const double width = 2.0 / 10;
  for (int b = 0; b < h.num_buckets(); ++b) {
    integral += h.bucket_density(b) * width;
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(HistogramTest, AddAll) {
  Histogram h(0.0, 1.0, 2);
  h.AddAll({0.1, 0.2, 0.8});
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
}

TEST(HistogramTest, EmptyHistogramFractionsAreZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_fraction(0), 0.0);
}

TEST(HistogramTest, AsciiRenderingHasOneLinePerBucket) {
  Histogram h(0.0, 1.0, 5);
  h.AddAll({0.1, 0.5, 0.9});
  const std::string ascii = h.ToAscii(20);
  int lines = 0;
  for (char c : ascii) lines += (c == '\n');
  EXPECT_EQ(lines, 5);
}

}  // namespace
}  // namespace endure
