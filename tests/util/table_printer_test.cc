#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace endure {
namespace {

TEST(TablePrinterTest, RendersHeadersAndRows) {
  TablePrinter t({"a", "bb"});
  t.AddRow({"1", "2"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_NE(out.find("1"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"x", "y", "z"});
  t.AddRow({"only"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(t.ToString().find("only"), std::string::npos);
}

TEST(TablePrinterTest, NumericRowsFormatted) {
  TablePrinter t({"v"});
  t.AddRow({3.14159}, 2);
  EXPECT_NE(t.ToString().find("3.14"), std::string::npos);
  EXPECT_EQ(t.ToString().find("3.1415"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n3,4\n");
}

TEST(TablePrinterTest, FmtHelper) {
  EXPECT_EQ(TablePrinter::Fmt(1.5, 1), "1.5");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
}

TEST(TablePrinterTest, ColumnsAlignAcrossRows) {
  TablePrinter t({"col"});
  t.AddRow({"short"});
  t.AddRow({"a much longer cell"});
  const std::string out = t.ToString();
  // All table lines must share the same width.
  size_t first_len = std::string::npos;
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t eol = out.find('\n', pos);
    const size_t len = eol - pos;
    if (first_len == std::string::npos) first_len = len;
    EXPECT_EQ(len, first_len);
    pos = eol + 1;
  }
}

}  // namespace
}  // namespace endure
