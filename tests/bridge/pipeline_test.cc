#include "bridge/pipeline.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace endure::bridge {
namespace {

PipelineOptions FastOptions() {
  PipelineOptions o;
  o.monitor.ops_per_epoch = 200;
  o.monitor.window_epochs = 4;
  o.monitor.alarm_patience = 2;
  return o;
}

// Feeds epochs of `mix` into the pipeline.
void Feed(TuningPipeline* p, const Workload& mix, int epochs,
          uint64_t ops = 200, uint64_t seed = 5) {
  Rng rng(seed);
  for (int e = 0; e < epochs; ++e) {
    for (uint64_t i = 0; i < ops; ++i) {
      const double u = rng.NextDouble();
      QueryClass c = kWrite;
      if (u < mix.z0) {
        c = kEmptyPointQuery;
      } else if (u < mix.z0 + mix.z1) {
        c = kNonEmptyPointQuery;
      } else if (u < mix.z0 + mix.z1 + mix.q) {
        c = kRangeQuery;
      }
      p->RecordOperation(c);
    }
  }
}

TEST(TuningPipelineTest, InitialTuningMatchesDirectSolve) {
  SystemConfig cfg;
  const Workload expected(0.33, 0.33, 0.33, 0.01);
  TuningPipeline pipeline(cfg, expected, 0.5, FastOptions());
  CostModel model(cfg);
  RobustTuner tuner(model);
  const Tuning direct = tuner.Tune(expected, 0.5).tuning;
  EXPECT_EQ(pipeline.current_tuning().policy, direct.policy);
  EXPECT_NEAR(pipeline.current_tuning().size_ratio, direct.size_ratio,
              1e-9);
  EXPECT_EQ(pipeline.retune_count(), 0);
}

TEST(TuningPipelineTest, StableWorkloadNeverRecommendsRetune) {
  SystemConfig cfg;
  const Workload expected(0.33, 0.33, 0.33, 0.01);
  TuningPipeline pipeline(cfg, expected, 0.5, FastOptions());
  Feed(&pipeline, expected, 8);
  EXPECT_FALSE(pipeline.RetuneRecommended());
}

TEST(TuningPipelineTest, DriftTriggersRetuneAndRecenters) {
  SystemConfig cfg;
  const Workload expected(0.33, 0.33, 0.33, 0.01);
  const Workload shifted(0.05, 0.05, 0.05, 0.85);
  TuningPipeline pipeline(cfg, expected, 0.25, FastOptions());
  const Tuning before = pipeline.current_tuning();

  Feed(&pipeline, shifted, 4);
  ASSERT_TRUE(pipeline.RetuneRecommended());
  const TuningResult r = pipeline.Retune();
  EXPECT_EQ(pipeline.retune_count(), 1);
  EXPECT_FALSE(pipeline.RetuneRecommended());
  // Recentred near the observed write-heavy mix.
  EXPECT_GT(pipeline.tuned_for().w, 0.5);
  // The new tuning reflects a write-heavy expectation: smaller T under
  // leveling or a switch of policy; in any case a different tuning.
  EXPECT_FALSE(r.tuning == before);
  EXPECT_TRUE(r.tuning.Validate(cfg).ok());
}

TEST(TuningPipelineTest, RhoClampedToConfiguredRange) {
  SystemConfig cfg;
  PipelineOptions opts = FastOptions();
  opts.rho_floor = 0.3;
  opts.rho_ceiling = 0.6;
  const Workload expected(0.25, 0.25, 0.25, 0.25);
  TuningPipeline pipeline(cfg, expected, 0.25, opts);
  // Nearly identical epochs -> tiny advised rho -> floor applies.
  Feed(&pipeline, Workload(0.05, 0.05, 0.05, 0.85), 4);
  ASSERT_TRUE(pipeline.RetuneRecommended());
  pipeline.Retune();
  EXPECT_GE(pipeline.rho(), 0.3);
  EXPECT_LE(pipeline.rho(), 0.6);
}

TEST(TuningPipelineTest, RetuneAndApplyRetunesTheServingShardedDb) {
  SystemConfig cfg;
  const Workload expected(0.33, 0.33, 0.33, 0.01);
  const Workload shifted(0.05, 0.05, 0.05, 0.85);
  TuningPipeline pipeline(cfg, expected, 0.25, FastOptions());

  const uint64_t n = 20000;
  auto db = std::move(OpenTunedShardedDb(cfg, pipeline.current_tuning(), n,
                                         /*num_shards=*/4))
                .value();
  const lsm::Options at_open = db->options();

  Feed(&pipeline, shifted, 4);
  ASSERT_TRUE(pipeline.RetuneRecommended());
  auto applied = pipeline.RetuneAndApply(db.get(), n);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(pipeline.retune_count(), 1);

  // The DB now runs the recommended tuning, mapped exactly like at open:
  // ceil'd size ratio, per-shard buffer split, immutable knobs intact.
  const lsm::Options now = db->options();
  const lsm::Options want = MakeOptions(
      cfg, applied.value().tuning, n, at_open.backend, at_open.num_shards,
      at_open.background_maintenance);
  EXPECT_EQ(now.size_ratio, want.size_ratio);
  EXPECT_EQ(static_cast<int>(now.policy), static_cast<int>(want.policy));
  EXPECT_EQ(now.buffer_entries, want.buffer_entries);
  EXPECT_EQ(now.filter_bits_per_entry, want.filter_bits_per_entry);
  EXPECT_EQ(now.num_shards, at_open.num_shards);

  // Live apply: the data survives and the migration converges.
  db->WaitForMaintenance();
  EXPECT_TRUE(db->Progress().structure_conforming());
  EXPECT_EQ(db->Progress().epoch, 1u);
  for (uint64_t i = 0; i < n; i += 997) {
    const auto got = db->Get(2 * i);
    ASSERT_TRUE(got.has_value()) << "key " << 2 * i;
    EXPECT_EQ(*got, i);
  }
}

TEST(TuningPipelineTest, SecondDriftCycleWorks) {
  SystemConfig cfg;
  const Workload expected(0.33, 0.33, 0.33, 0.01);
  TuningPipeline pipeline(cfg, expected, 0.25, FastOptions());
  Feed(&pipeline, Workload(0.05, 0.05, 0.05, 0.85), 4, 200, 7);
  ASSERT_TRUE(pipeline.RetuneRecommended());
  pipeline.Retune();
  // Shift again, to a range-heavy mix.
  Feed(&pipeline, Workload(0.05, 0.05, 0.85, 0.05), 4, 200, 8);
  EXPECT_TRUE(pipeline.RetuneRecommended());
  pipeline.Retune();
  EXPECT_EQ(pipeline.retune_count(), 2);
  EXPECT_GT(pipeline.tuned_for().q, 0.5);
}

}  // namespace
}  // namespace endure::bridge
