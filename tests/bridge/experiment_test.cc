#include "bridge/experiment.h"

#include <gtest/gtest.h>

namespace endure::bridge {
namespace {

ExperimentOptions SmallExperiment() {
  ExperimentOptions opts;
  opts.actual_entries = 5000;
  opts.queries_per_workload = 200;
  return opts;
}

TEST(ExperimentTest, ProducesOneMeasurementPerSession) {
  SystemConfig cfg;
  ExperimentRunner runner(cfg, SmallExperiment());
  Rng rng(3);
  workload::SessionOptions sopts;
  sopts.workloads_per_session = 2;
  workload::SessionGenerator gen(Workload(0.33, 0.33, 0.33, 0.01), &rng,
                                 sopts);
  const std::vector<workload::Session> sessions = gen.MixedSequence();
  const auto results =
      runner.Run(Tuning(Policy::kLeveling, 10.0, 4.0), sessions);
  ASSERT_EQ(results.size(), 6u);
  for (const auto& m : results) {
    EXPECT_GT(m.total_queries, 0u);
    EXPECT_GT(m.model_io_per_query, 0.0);
    EXPECT_GE(m.measured_io_per_query, 0.0);
    EXPECT_GE(m.latency_us_per_query, 0.0);
  }
}

TEST(ExperimentTest, EmptyReadSessionsAreCheapWithGoodFilters) {
  // A tuning with strong filters should serve empty-read sessions with far
  // fewer I/Os than one without filters.
  SystemConfig cfg;
  ExperimentRunner runner(cfg, SmallExperiment());
  Rng rng(4);
  workload::SessionOptions sopts;
  sopts.workloads_per_session = 2;
  workload::SessionGenerator gen(Workload(0.97, 0.01, 0.01, 0.01), &rng,
                                 sopts);
  std::vector<workload::Session> sessions{
      gen.Make(workload::SessionKind::kEmptyReads)};

  const auto strong =
      runner.Run(Tuning(Policy::kLeveling, 6.0, 9.0), sessions);
  const auto weak = runner.Run(Tuning(Policy::kLeveling, 6.0, 0.0), sessions);
  EXPECT_LT(strong[0].point_io, weak[0].point_io);
}

TEST(ExperimentTest, ModelAndSystemAgreeOnReadCostOrdering) {
  // If the model says tuning A beats tuning B on a read session, the
  // engine should agree (relative performance is the paper's claim).
  SystemConfig cfg;
  ExperimentOptions eopts = SmallExperiment();
  eopts.queries_per_workload = 400;
  ExperimentRunner runner(cfg, eopts);
  Rng rng(5);
  workload::SessionOptions sopts;
  sopts.workloads_per_session = 2;
  workload::SessionGenerator gen(Workload(0.49, 0.49, 0.01, 0.01), &rng,
                                 sopts);
  std::vector<workload::Session> sessions{
      gen.Make(workload::SessionKind::kReads)};

  const Tuning good(Policy::kLeveling, 8.0, 8.0);
  const Tuning bad(Policy::kTiering, 20.0, 0.5);
  const auto rg = runner.Run(good, sessions);
  const auto rb = runner.Run(bad, sessions);
  EXPECT_LT(rg[0].measured_io_per_query, rb[0].measured_io_per_query);
  EXPECT_LT(rg[0].model_io_per_query, rb[0].model_io_per_query);
}

TEST(ExperimentTest, WriteSessionsProduceCompactionTraffic) {
  SystemConfig cfg;
  ExperimentRunner runner(cfg, SmallExperiment());
  Rng rng(6);
  workload::SessionOptions sopts;
  sopts.workloads_per_session = 3;
  workload::SessionGenerator gen(Workload(0.1, 0.1, 0.1, 0.7), &rng, sopts);
  std::vector<workload::Session> sessions{
      gen.Make(workload::SessionKind::kWrites)};
  const auto r = runner.Run(Tuning(Policy::kLeveling, 4.0, 2.0), sessions);
  EXPECT_GT(r[0].write_io, 0.0);
}

TEST(ExperimentTest, FormatMeasurementContainsFields) {
  SessionMeasurement m;
  m.kind = workload::SessionKind::kRange;
  m.average = Workload(0.1, 0.1, 0.7, 0.1);
  m.model_io_per_query = 3.25;
  m.measured_io_per_query = 3.5;
  const std::string s = FormatMeasurement(m);
  EXPECT_NE(s.find("Range"), std::string::npos);
  EXPECT_NE(s.find("3.25"), std::string::npos);
}

}  // namespace
}  // namespace endure::bridge
