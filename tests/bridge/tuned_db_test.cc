#include "bridge/tuned_db.h"

#include <gtest/gtest.h>

namespace endure::bridge {
namespace {

TEST(TunedDbTest, SizeRatioRoundsUp) {
  SystemConfig cfg;
  lsm::Options o = MakeOptions(cfg, Tuning(Policy::kLeveling, 11.2, 2.0),
                               10000);
  EXPECT_EQ(o.size_ratio, 12);
  o = MakeOptions(cfg, Tuning(Policy::kLeveling, 11.0, 2.0), 10000);
  EXPECT_EQ(o.size_ratio, 11);
}

TEST(TunedDbTest, PolicyMapped) {
  SystemConfig cfg;
  EXPECT_EQ(MakeOptions(cfg, Tuning(Policy::kTiering, 5, 2), 1000).policy,
            lsm::CompactionPolicy::kTiering);
  EXPECT_EQ(MakeOptions(cfg, Tuning(Policy::kLeveling, 5, 2), 1000).policy,
            lsm::CompactionPolicy::kLeveling);
}

TEST(TunedDbTest, BufferPreservesPerEntrySplit) {
  SystemConfig cfg;  // H = 10 bits/entry, E = 8192 bits
  const uint64_t n = 100000;
  lsm::Options o = MakeOptions(cfg, Tuning(Policy::kLeveling, 10.0, 4.0), n);
  // m_buf = (10 - 4) * n bits -> entries = 6n / 8192.
  EXPECT_EQ(o.buffer_entries, static_cast<uint64_t>(6.0 * n / 8192.0));
  EXPECT_DOUBLE_EQ(o.filter_bits_per_entry, 4.0);
}

TEST(TunedDbTest, LevelCountInvariantAcrossScale) {
  // Fig. 16: with memory proportional to N, the level count is the same at
  // every database size.
  SystemConfig cfg;
  const Tuning t(Policy::kLeveling, 12.0, 2.4);
  CostModel paper_model(cfg);
  for (uint64_t n : {uint64_t{20000}, uint64_t{200000}, uint64_t{2000000}}) {
    CostModel scaled_model(ScaledConfig(cfg, n));
    EXPECT_EQ(scaled_model.Levels(t), paper_model.Levels(t)) << n;
  }
}

TEST(TunedDbTest, OpenTunedDbLoadsEvenKeys) {
  SystemConfig cfg;
  auto db = OpenTunedDb(cfg, Tuning(Policy::kLeveling, 6.0, 5.0), 5000);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->tree().TotalEntries(), 5000u);
  EXPECT_TRUE((*db)->Get(2 * 4999).has_value());
  EXPECT_FALSE((*db)->Get(2 * 4999 + 1).has_value());
}

TEST(TunedDbTest, MinimumBufferFloor) {
  SystemConfig cfg;
  // h close to H: the buffer floor (16 entries) kicks in.
  lsm::Options o = MakeOptions(cfg, Tuning(Policy::kLeveling, 5.0, 9.9),
                               1000);
  EXPECT_GE(o.buffer_entries, 16u);
}

}  // namespace
}  // namespace endure::bridge
