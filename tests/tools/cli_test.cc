// Regression suite for the endure_cli contract: unknown subcommands,
// unknown or malformed flags, and stray positional arguments exit
// non-zero with a usage message — a typo can never silently no-op. The
// dispatch is driven in-process via endure::cli::Main (the binaries are
// one-line wrappers around it).

#include "endure_cli_main.h"

#include <gtest/gtest.h>

#include <vector>

namespace endure::cli {
namespace {

int RunCli(std::vector<const char*> argv) {
  return Main(static_cast<int>(argv.size()), argv.data());
}

TEST(CliTest, NoArgsPrintsUsageAndExits2) {
  EXPECT_EQ(RunCli({"endure"}), 2);
}

TEST(CliTest, UnknownSubcommandExits2) {
  EXPECT_EQ(RunCli({"endure", "tuen"}), 2);
  EXPECT_EQ(RunCli({"endure", "definitely-not-a-command"}), 2);
}

TEST(CliTest, UnknownFlagExitsNonZero) {
  EXPECT_EQ(RunCli({"endure", "tune", "--nope", "1"}), 1);
  EXPECT_EQ(RunCli({"endure", "evaluate", "--polcy", "leveling"}), 1);
  EXPECT_EQ(RunCli({"endure", "serve", "--memory", "--prot", "4800"}), 1);
}

TEST(CliTest, MalformedFlagValueExitsNonZero) {
  EXPECT_EQ(RunCli({"endure", "tune", "--rho", "not-a-number"}), 1);
  EXPECT_EQ(RunCli({"endure", "evaluate", "--T", "ten"}), 1);
}

TEST(CliTest, StrayPositionalArgumentsExitNonZero) {
  // Before the fix these tokens were silently collected and ignored.
  EXPECT_EQ(RunCli({"endure", "workloads", "extra"}), 1);
  EXPECT_EQ(RunCli({"endure", "tune", "leveling"}), 1);
  EXPECT_EQ(RunCli({"endure", "serve", "--memory", "4800"}), 1);
}

TEST(CliTest, WorkloadsRejectsFlagsButRunsClean) {
  EXPECT_EQ(RunCli({"endure", "workloads", "--verbose"}), 1);
  EXPECT_EQ(RunCli({"endure", "workloads"}), 0);
}

TEST(CliTest, TuneAndEvaluateSucceedOnValidInput) {
  EXPECT_EQ(RunCli({"endure", "tune", "--workload", "0.25,0.25,0.25,0.25"}), 0);
  EXPECT_EQ(RunCli({"endure", "evaluate", "--policy", "tiering", "--T", "8",
                 "--h", "4"}),
            0);
  EXPECT_EQ(
      RunCli({"endure", "advise", "--history", "0.3,0.3,0.3,0.1;0.2,0.4,0.2,0.2"}),
      0);
}

TEST(CliTest, InvalidWorkloadOrPolicyExitsNonZero) {
  EXPECT_EQ(RunCli({"endure", "tune", "--workload", "0.5,0.5"}), 1);
  EXPECT_EQ(RunCli({"endure", "evaluate", "--policy", "compacting"}), 1);
}

TEST(CliTest, ServeValidatesItsDeploymentFlags) {
  // Exactly one of --dir / --memory.
  EXPECT_EQ(RunCli({"endure", "serve"}), 1);
  EXPECT_EQ(RunCli({"endure", "serve", "--memory", "--dir", "/tmp/x"}), 1);
  // Range checks.
  EXPECT_EQ(RunCli({"endure", "serve", "--memory", "--port", "70000"}), 1);
  EXPECT_EQ(RunCli({"endure", "serve", "--memory", "--max-frame-mb", "0"}), 1);
  EXPECT_EQ(RunCli({"endure", "serve", "--memory", "--policy", "stacking"}), 1);
  EXPECT_EQ(RunCli({"endure", "serve", "--memory", "--sync", "always"}), 1);
  // Admission-control flags.
  EXPECT_EQ(RunCli({"endure", "serve", "--memory", "--ops-per-sec", "-1"}), 1);
  EXPECT_EQ(RunCli({"endure", "serve", "--memory", "--max-pending", "-5"}), 1);
  EXPECT_EQ(
      RunCli({"endure", "serve", "--memory", "--tenant-quota", "noquota"}), 1);
  EXPECT_EQ(
      RunCli({"endure", "serve", "--memory", "--tenant-quota", "a:xyz"}), 1);
  EXPECT_EQ(
      RunCli({"endure", "serve", "--memory", "--tenant-quota", "a:5:-2"}), 1);
  EXPECT_EQ(RunCli({"endure", "serve", "--memory", "--tenant-quota", ":100"}),
            1);
}

TEST(CliTest, ServeRunsAndDrainsWithExitAfterSeconds) {
  EXPECT_EQ(RunCli({"endure", "serve", "--memory", "--port", "0", "--shards",
                 "2", "--exit-after-seconds", "1"}),
            0);
}

TEST(CliTest, ServeAcceptsAdmissionQuotaFlags) {
  EXPECT_EQ(RunCli({"endure", "serve", "--memory", "--port", "0", "--shards",
                 "2", "--ops-per-sec", "5000", "--bytes-per-sec", "1048576",
                 "--max-pending", "16", "--tenant-quota",
                 "victim:2500,aggressor:5000:2097152",
                 "--exit-after-seconds", "1"}),
            0);
}

}  // namespace
}  // namespace endure::cli
