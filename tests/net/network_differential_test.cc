// Network differential harness: seeded random traces run through the
// real client/server stack on loopback, checked op-for-op against the
// std::map oracle (tests/testing/reference_model.h). A divergence
// reports the seed and the first diverging op index, which replays
// deterministically. Legs: blocking ops, the pipelined API (responses
// must come back in request order), live ApplyTuning presets injected
// mid-trace (a reconfiguration must never change visible contents), and
// a kill-server-and-reconnect leg on a durable deployment asserting
// every acked write survives the crash + reopen — remotely, through the
// client's transparent reconnect path.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "lsm/options.h"
#include "lsm/sharded_db.h"
#include "net/client.h"
#include "net/server.h"
#include "testing/reference_model.h"

namespace endure::net {
namespace {

using endure::testing::GenerateTrace;
using endure::testing::InjectReconfigures;
using endure::testing::KeyDistribution;
using endure::testing::Op;
using endure::testing::ReferenceModel;

constexpr lsm::Key kKeyDomain = 8192;

lsm::Options MemoryOpts() {
  lsm::Options o;
  o.num_shards = 4;
  o.buffer_entries = 64;
  o.size_ratio = 4;
  o.filter_bits_per_entry = 4.0;
  o.background_maintenance = true;
  return o;
}

std::vector<TuningWire> Presets() {
  TuningWire a;  // leveling, small buffers
  a.size_ratio = 4;
  a.policy = 0;
  a.buffer_entries = 64;
  a.filter_bits_per_entry = 4.0;
  TuningWire b;  // tiering, bigger buffers
  b.size_ratio = 6;
  b.policy = 1;
  b.buffer_entries = 128;
  b.filter_bits_per_entry = 6.0;
  TuningWire c;  // lazy leveling
  c.size_ratio = 5;
  c.policy = 2;
  c.buffer_entries = 96;
  c.filter_bits_per_entry = 5.0;
  return {a, b, c};
}

/// Runs ops[begin, end) through the blocking client API, mirroring them
/// into the oracle. Returns false (with a test failure naming seed and
/// op index) on the first divergence.
bool RunBlocking(Client* client, ReferenceModel* model,
                 const std::vector<Op>& ops, size_t begin, size_t end,
                 uint64_t seed) {
  const std::vector<TuningWire> presets = Presets();
  for (size_t i = begin; i < end; ++i) {
    const Op& op = ops[i];
    switch (op.kind) {
      case Op::kPut: {
        const Status st = client->Put(op.key, op.value);
        if (!st.ok()) {
          ADD_FAILURE() << "seed " << seed << " op " << i << " "
                        << op.ToString() << ": " << st.ToString();
          return false;
        }
        model->Put(op.key, op.value);
        break;
      }
      case Op::kDelete: {
        const Status st = client->Delete(op.key);
        if (!st.ok()) {
          ADD_FAILURE() << "seed " << seed << " op " << i << " "
                        << op.ToString() << ": " << st.ToString();
          return false;
        }
        model->Delete(op.key);
        break;
      }
      case Op::kGet: {
        auto got = client->Get(op.key);
        if (!got.ok() || *got != model->Get(op.key)) {
          ADD_FAILURE() << "seed " << seed << " first divergence at op "
                        << i << " " << op.ToString();
          return false;
        }
        break;
      }
      case Op::kScan: {
        auto got = client->Scan(op.key, op.hi);
        if (!got.ok() || *got != model->Scan(op.key, op.hi)) {
          ADD_FAILURE() << "seed " << seed << " first divergence at op "
                        << i << " " << op.ToString();
          return false;
        }
        break;
      }
      case Op::kFlush: {
        const Status st = client->Flush();
        if (!st.ok()) {
          ADD_FAILURE() << "seed " << seed << " op " << i << ": "
                        << st.ToString();
          return false;
        }
        break;
      }
      case Op::kReconfigure: {
        const Status st =
            client->ApplyTuning(presets[op.value % presets.size()]);
        if (!st.ok()) {
          ADD_FAILURE() << "seed " << seed << " op " << i
                        << " reconfigure: " << st.ToString();
          return false;
        }
        break;
      }
      case Op::kSnapshotScan:
        break;  // not generated here
    }
  }
  return true;
}

/// Full-contents check: one scan over the whole key domain must equal
/// the oracle exactly.
void VerifyFullScan(Client* client, const ReferenceModel& model,
                    uint64_t seed) {
  auto got = client->Scan(0, kKeyDomain + 64);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const auto want = model.Scan(0, kKeyDomain + 64);
  ASSERT_EQ(got->size(), want.size())
      << "seed " << seed << ": final contents diverge";
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ((*got)[i], want[i])
        << "seed " << seed << ": divergence at entry " << i;
  }
}

struct Harness {
  std::unique_ptr<lsm::ShardedDB> db;
  std::unique_ptr<Server> server;
  std::unique_ptr<Client> client;

  void Start(const lsm::Options& opts, uint16_t port = 0) {
    auto db_or = lsm::ShardedDB::Open(opts);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    db = std::move(db_or).value();
    ServerOptions sopts;
    sopts.port = port;
    auto server_or = Server::Start(db.get(), sopts);
    ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
    server = std::move(server_or).value();
    if (client == nullptr) {
      ClientOptions copts;
      copts.port = server->port();
      copts.backoff_initial_ms = 1;
      copts.max_attempts = 8;
      auto client_or = Client::Connect(copts);
      ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
      client = std::move(client_or).value();
    }
  }
};

TEST(NetworkDifferentialTest, UniformTraceMatchesOracle) {
  for (const uint64_t seed : {101u, 202u}) {
    Harness h;
    h.Start(MemoryOpts());
    ReferenceModel model;
    const auto ops =
        GenerateTrace(seed, 3000, KeyDistribution::kUniform, kKeyDomain);
    if (!RunBlocking(h.client.get(), &model, ops, 0, ops.size(), seed)) {
      return;
    }
    VerifyFullScan(h.client.get(), model, seed);
    h.server->Shutdown();
  }
}

TEST(NetworkDifferentialTest, SkewedTraceWithLiveReconfigures) {
  const uint64_t seed = 303;
  Harness h;
  h.Start(MemoryOpts());
  ReferenceModel model;
  auto ops = InjectReconfigures(
      GenerateTrace(seed, 3000, KeyDistribution::kSkewed, kKeyDomain),
      /*every=*/500, /*num_presets=*/Presets().size());
  if (!RunBlocking(h.client.get(), &model, ops, 0, ops.size(), seed)) {
    return;
  }
  h.db->WaitForMaintenance();  // migrations converge, then recheck
  VerifyFullScan(h.client.get(), model, seed);
  h.server->Shutdown();
}

TEST(NetworkDifferentialTest, PipelinedTraceMatchesOracle) {
  const uint64_t seed = 404;
  Harness h;
  h.Start(MemoryOpts());
  ReferenceModel model;
  const auto ops =
      GenerateTrace(seed, 3000, KeyDistribution::kUniform, kKeyDomain);

  // Batches of up to 16 ops; the server executes a batch in order, so
  // expected results are computed by stepping the oracle op by op at
  // encode time.
  struct Expected {
    uint8_t kind;
    std::optional<lsm::Value> value;
    std::vector<std::pair<lsm::Key, lsm::Value>> entries;
  };
  size_t i = 0;
  while (i < ops.size()) {
    auto pipe = h.client->NewPipeline();
    std::vector<Expected> expected;
    const size_t batch_end = std::min(ops.size(), i + 16);
    for (size_t j = i; j < batch_end; ++j) {
      const Op& op = ops[j];
      Expected e;
      e.kind = static_cast<uint8_t>(op.kind);
      switch (op.kind) {
        case Op::kPut:
          pipe.Put(op.key, op.value);
          model.Put(op.key, op.value);
          break;
        case Op::kDelete:
          pipe.Delete(op.key);
          model.Delete(op.key);
          break;
        case Op::kGet:
          pipe.Get(op.key);
          e.value = model.Get(op.key);
          break;
        case Op::kScan:
          pipe.Scan(op.key, op.hi);
          e.entries = model.Scan(op.key, op.hi);
          break;
        default:
          pipe.Flush();
          break;
      }
      expected.push_back(std::move(e));
    }
    auto results = pipe.Execute();
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    ASSERT_EQ(results->size(), expected.size());
    for (size_t j = 0; j < expected.size(); ++j) {
      const auto& r = (*results)[j];
      ASSERT_TRUE(r.status.ok())
          << "seed " << seed << " op " << (i + j) << ": "
          << r.status.ToString();
      if (expected[j].kind == static_cast<uint8_t>(Op::kGet)) {
        ASSERT_EQ(r.value, expected[j].value)
            << "seed " << seed << " first divergence at op " << (i + j);
      } else if (expected[j].kind == static_cast<uint8_t>(Op::kScan)) {
        ASSERT_EQ(r.entries, expected[j].entries)
            << "seed " << seed << " first divergence at op " << (i + j);
      }
    }
    i = batch_end;
  }
  VerifyFullScan(h.client.get(), model, seed);
  h.server->Shutdown();
}

TEST(NetworkDifferentialTest, QuotaConstrainedTraceStaysOracleExact) {
  // The same seeded-trace-vs-oracle check, but through a server whose
  // admission gate actively parks and sheds this client: everything the
  // server acked must still be oracle-exact. Throttling may slow a
  // trace down; it must never corrupt, reorder, or drop an acked op.
  const uint64_t seed = 606;
  auto db_or = lsm::ShardedDB::Open(MemoryOpts());
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::unique_ptr<lsm::ShardedDB> db = std::move(db_or).value();
  ServerOptions sopts;
  sopts.default_quota = TenantQuota{300, 0};  // burst 300, then paced
  sopts.max_pending_per_tenant = 4;           // park a little, shed a lot
  auto server_or = Server::Start(db.get(), sopts);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  std::unique_ptr<Server> server = std::move(server_or).value();

  ClientOptions copts;
  copts.port = server->port();
  copts.tenant = "differential";
  copts.backoff_initial_ms = 1;
  copts.throttle_max_retries = 100;  // the trace must complete
  copts.throttle_backoff_cap_ms = 200;
  auto client_or = Client::Connect(copts);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  std::unique_ptr<Client> client = std::move(client_or).value();

  ReferenceModel model;
  const auto ops =
      GenerateTrace(seed, 500, KeyDistribution::kUniform, kKeyDomain);

  // Blocking leg: single in-flight ops get parked (paced), not shed —
  // the pending queue absorbs them.
  const size_t split = 300;
  ASSERT_TRUE(RunBlocking(client.get(), &model, ops, 0, split, seed));

  // Pipelined leg: 32-op bursts against a 4-deep queue guarantee sheds;
  // the client's suffix retry must still land every op, in order.
  size_t i = split;
  while (i < ops.size()) {
    auto pipe = client->NewPipeline();
    struct Expected {
      uint8_t kind;
      std::optional<lsm::Value> value;
      std::vector<std::pair<lsm::Key, lsm::Value>> entries;
    };
    std::vector<Expected> expected;
    const size_t batch_end = std::min(ops.size(), i + 32);
    for (size_t j = i; j < batch_end; ++j) {
      const Op& op = ops[j];
      Expected e;
      e.kind = static_cast<uint8_t>(op.kind);
      switch (op.kind) {
        case Op::kPut:
          pipe.Put(op.key, op.value);
          model.Put(op.key, op.value);
          break;
        case Op::kDelete:
          pipe.Delete(op.key);
          model.Delete(op.key);
          break;
        case Op::kGet:
          pipe.Get(op.key);
          e.value = model.Get(op.key);
          break;
        case Op::kScan:
          pipe.Scan(op.key, op.hi);
          e.entries = model.Scan(op.key, op.hi);
          break;
        default:
          pipe.Flush();
          break;
      }
      expected.push_back(std::move(e));
    }
    auto results = pipe.Execute();
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    ASSERT_EQ(results->size(), expected.size());
    for (size_t j = 0; j < expected.size(); ++j) {
      const auto& r = (*results)[j];
      ASSERT_TRUE(r.status.ok())
          << "seed " << seed << " op " << (i + j)
          << " not admitted after retries: " << r.status.ToString();
      if (expected[j].kind == static_cast<uint8_t>(Op::kGet)) {
        ASSERT_EQ(r.value, expected[j].value)
            << "seed " << seed << " first divergence at op " << (i + j);
      } else if (expected[j].kind == static_cast<uint8_t>(Op::kScan)) {
        ASSERT_EQ(r.entries, expected[j].entries)
            << "seed " << seed << " first divergence at op " << (i + j);
      }
    }
    i = batch_end;
  }

  // The gate actually engaged, both ways.
  const ServerCounters c = server->counters();
  EXPECT_GE(c.queue_depth_peak, 1u) << "no op was ever parked";
  EXPECT_GE(c.throttled_ms, 1u);
  EXPECT_GE(c.admission_rejects, 1u) << "no op was ever shed";
  EXPECT_GE(client->throttle_retries(), 1u);
  EXPECT_EQ(client->reconnects(), 0u)
      << "throttling must never cost the connection";

  VerifyFullScan(client.get(), model, seed);
  server->Shutdown();
}

TEST(NetworkDifferentialTest, KillServerReconnectPreservesAckedWrites) {
  const uint64_t seed = 505;
  const std::string dir = "/tmp/endure_net_differential_kill";
  std::filesystem::remove_all(dir);

  lsm::Options opts = MemoryOpts();
  opts.backend = lsm::StorageBackend::kFile;
  opts.storage_dir = dir;
  opts.durability = true;
  // Per-batch sync: every ack the client ever saw is on the device, so
  // after the kill the oracle must match EXACTLY (no loss window).
  opts.wal_sync_mode = WalSyncMode::kPerBatch;

  Harness h;
  h.Start(opts);
  const uint16_t port = h.server->port();
  ReferenceModel model;
  const auto ops =
      GenerateTrace(seed, 2000, KeyDistribution::kUniform, kKeyDomain);

  // First half through the live server.
  ASSERT_TRUE(
      RunBlocking(h.client.get(), &model, ops, 0, ops.size() / 2, seed));

  // Kill: stop the server, crash the engine (WAL writers dropped with no
  // final flush/checkpoint), reopen the deployment, restart the server
  // on the same port. The client keeps its connection object.
  h.server->Shutdown();
  h.server.reset();
  h.db->CrashForTesting();
  h.db.reset();

  auto db2 = lsm::ShardedDB::Open(opts);
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  h.db = std::move(db2).value();
  ServerOptions sopts;
  sopts.port = port;
  auto server2 = Server::Start(h.db.get(), sopts);
  ASSERT_TRUE(server2.ok()) << server2.status().ToString();
  h.server = std::move(server2).value();

  // Recovery must already agree with every acked write.
  VerifyFullScan(h.client.get(), model, seed);
  EXPECT_GE(h.client->reconnects(), 1u)
      << "the kill leg must exercise the reconnect path";

  // Second half continues over the reconnected client.
  ASSERT_TRUE(RunBlocking(h.client.get(), &model, ops, ops.size() / 2,
                          ops.size(), seed));
  VerifyFullScan(h.client.get(), model, seed);
  h.server->Shutdown();
  h.db.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace endure::net
