// Client/server integration over loopback: the blocking API against an
// in-process epoll server, remote Status mapping (degraded-mode and
// range errors arrive code-for-code), the pipelined API (whose single
// write burst is what triggers server-side PUT coalescing into one WAL
// group commit), reconnect-with-backoff after a server restart, and
// protocol-error handling (garbage bytes get one error frame, then the
// connection closes).

#include "net/client.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lsm/options.h"
#include "lsm/sharded_db.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket_util.h"

namespace endure::net {
namespace {

lsm::Options MemoryOpts() {
  lsm::Options o;
  o.num_shards = 4;
  o.buffer_entries = 64;
  o.size_ratio = 4;
  o.background_maintenance = true;
  return o;
}

struct Harness {
  std::unique_ptr<lsm::ShardedDB> db;
  std::unique_ptr<Server> server;

  static Harness Start(lsm::Options opts, ServerOptions sopts = {}) {
    Harness h;
    auto db = lsm::ShardedDB::Open(opts);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    h.db = std::move(db).value();
    auto server = Server::Start(h.db.get(), sopts);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    h.server = std::move(server).value();
    return h;
  }

  std::unique_ptr<Client> Connect(int max_attempts = 5) {
    ClientOptions copts;
    copts.port = server->port();
    copts.max_attempts = max_attempts;
    auto client = Client::Connect(copts);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }
};

TEST(ClientTest, BlockingOpsRoundTrip) {
  Harness h = Harness::Start(MemoryOpts());
  auto client = h.Connect();

  EXPECT_TRUE(client->Put(1, 100).ok());
  EXPECT_TRUE(client->Put(2, 200).ok());
  auto got = client->Get(1);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, 100u);

  EXPECT_TRUE(client->Delete(1).ok());
  got = client->Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->has_value());

  std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
  for (uint64_t i = 10; i < 20; ++i) pairs.emplace_back(i, i * 11);
  EXPECT_TRUE(client->PutBatch(pairs).ok());
  auto scan = client->Scan(10, 20);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(*scan, pairs);

  EXPECT_TRUE(client->Flush().ok());
  auto scan2 = client->Scan(10, 15);
  ASSERT_TRUE(scan2.ok());
  ASSERT_EQ(scan2->size(), 5u);
  EXPECT_EQ((*scan2)[0].first, 10u);

  h.server->Shutdown();
}

TEST(ClientTest, StatsReportEngineAndServerCounters) {
  Harness h = Harness::Start(MemoryOpts());
  auto client = h.Connect();
  ASSERT_TRUE(client->Put(5, 50).ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  bool saw_shards = false, saw_server = false, saw_health = false;
  for (const auto& [name, value] : *stats) {
    if (name == "num_shards") {
      saw_shards = true;
      EXPECT_EQ(value, 4u);
    }
    if (name == "server_requests_served") saw_server = true;
    if (name == "health_code") {
      saw_health = true;
      EXPECT_EQ(value, 0u);
    }
  }
  EXPECT_TRUE(saw_shards);
  EXPECT_TRUE(saw_server);
  EXPECT_TRUE(saw_health);
  h.server->Shutdown();
}

TEST(ClientTest, ApplyTuningTakesEffectRemotely) {
  Harness h = Harness::Start(MemoryOpts());
  auto client = h.Connect();
  for (uint64_t i = 0; i < 200; ++i) ASSERT_TRUE(client->Put(i, i).ok());

  TuningWire t;
  t.size_ratio = 6;
  t.policy = 1;  // tiering
  t.filter_allocation = 0;
  t.buffer_entries = 128;
  t.filter_bits_per_entry = 6.0;
  ASSERT_TRUE(client->ApplyTuning(t).ok());

  const lsm::Options now = h.db->options();
  EXPECT_EQ(now.size_ratio, 6);
  EXPECT_EQ(now.policy, lsm::CompactionPolicy::kTiering);
  EXPECT_EQ(now.buffer_entries, 128u);

  // Invalid knobs are rejected remotely with InvalidArgument.
  TuningWire bad = t;
  bad.policy = 9;
  const Status st = client->ApplyTuning(bad);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  h.server->Shutdown();
}

TEST(ClientTest, PipelineExecutesInOrderAndCoalescesPuts) {
  Harness h = Harness::Start(MemoryOpts());
  auto client = h.Connect();

  auto pipe = client->NewPipeline();
  for (uint64_t i = 0; i < 32; ++i) pipe.Put(1000 + i, i);
  pipe.Get(1000);
  pipe.Scan(1000, 1008);
  pipe.Delete(1000);
  pipe.Get(1000);
  auto results = pipe.Execute();
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 36u);
  for (size_t i = 0; i < 32; ++i) EXPECT_TRUE((*results)[i].status.ok());
  ASSERT_TRUE((*results)[32].value.has_value());
  EXPECT_EQ(*(*results)[32].value, 0u);
  EXPECT_EQ((*results)[33].entries.size(), 8u);
  EXPECT_TRUE((*results)[34].status.ok());
  EXPECT_FALSE((*results)[35].value.has_value());

  // The 32-PUT burst arrived in one readable batch: the server must have
  // folded (at least most of) it into group commits.
  const ServerCounters c = h.server->counters();
  EXPECT_GE(c.puts_coalesced, 2u);
  EXPECT_GE(c.coalesced_batches, 1u);
  h.server->Shutdown();
}

TEST(ClientTest, OversizedScanReturnsOutOfRange) {
  // A server with a tiny frame limit cannot encode a big scan response;
  // the client gets OutOfRange, not a truncated result.
  ServerOptions sopts;
  sopts.max_frame_payload = 1024;  // ~63 entries max
  Harness h = Harness::Start(MemoryOpts(), sopts);
  ClientOptions copts;
  copts.port = h.server->port();
  auto client = Client::Connect(copts);
  ASSERT_TRUE(client.ok());

  std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
  for (uint64_t i = 0; i < 50; ++i) pairs.emplace_back(i, i);
  ASSERT_TRUE((*client)->PutBatch(pairs).ok());
  auto small = (*client)->Scan(0, 10);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->size(), 10u);

  for (uint64_t i = 50; i < 200; ++i) {
    ASSERT_TRUE((*client)->Put(i, i).ok());
  }
  auto big = (*client)->Scan(0, 200);
  EXPECT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kOutOfRange);
  h.server->Shutdown();
}

TEST(ClientTest, ReconnectsAfterServerRestart) {
  lsm::Options opts = MemoryOpts();
  Harness h = Harness::Start(opts);
  const uint16_t port = h.server->port();
  auto client = h.Connect();
  ASSERT_TRUE(client->Put(1, 1).ok());

  // Restart the server on the same port (same db: contents survive).
  h.server->Shutdown();
  h.server.reset();
  ServerOptions sopts;
  sopts.port = port;
  auto server2 = Server::Start(h.db.get(), sopts);
  ASSERT_TRUE(server2.ok()) << server2.status().ToString();
  h.server = std::move(server2).value();

  // The old connection is dead; the op must transparently reconnect.
  auto got = client->Get(1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, 1u);
  EXPECT_GE(client->reconnects(), 1u);
  h.server->Shutdown();
}

TEST(ClientTest, ConnectFailsFastWhenNoServer) {
  ClientOptions copts;
  copts.port = 1;  // nothing listens on port 1
  copts.max_attempts = 2;
  copts.backoff_initial_ms = 1;
  auto client = Client::Connect(copts);
  EXPECT_FALSE(client.ok());
}

TEST(ClientTest, ThrottledOpsRetryWithBackoffUntilAdmitted) {
  // A starvation-level quota with no pending queue: every op past the
  // initial burst is shed. The client must absorb the throttles by
  // backing off (honoring the server's hint) and resending until
  // admitted — and count those retries.
  ServerOptions sopts;
  sopts.default_quota = TenantQuota{5, 0};  // 5 ops/sec, burst of 5
  sopts.max_pending_per_tenant = 0;         // shed immediately, never park
  Harness h = Harness::Start(MemoryOpts(), sopts);
  ClientOptions copts;
  copts.port = h.server->port();
  copts.throttle_max_retries = 50;
  copts.throttle_backoff_cap_ms = 300;
  auto client_or = Client::Connect(copts);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  auto client = std::move(client_or).value();

  // Burn the burst, then two more ops that must each ride >= 1 retry.
  for (uint64_t i = 0; i < 7; ++i) {
    ASSERT_TRUE(client->Put(i, i).ok()) << "op " << i;
  }
  EXPECT_GE(client->throttle_retries(), 1u);
  EXPECT_GE(h.server->counters().admission_rejects, 1u);
  // The throttled connection was never closed: reconnects stayed 0.
  EXPECT_EQ(client->reconnects(), 0u);
  h.server->Shutdown();
}

TEST(ClientTest, ThrottleSurfacesWhenRetriesDisabled) {
  ServerOptions sopts;
  sopts.default_quota = TenantQuota{5, 0};
  sopts.max_pending_per_tenant = 0;
  Harness h = Harness::Start(MemoryOpts(), sopts);
  ClientOptions copts;
  copts.port = h.server->port();
  copts.throttle_max_retries = 0;
  auto client_or = Client::Connect(copts);
  ASSERT_TRUE(client_or.ok());
  auto client = std::move(client_or).value();

  // Exhaust the burst, then catch the raw throttle.
  Status last = Status::OK();
  for (uint64_t i = 0; i < 10 && last.ok(); ++i) last = client->Put(i, i);
  ASSERT_FALSE(last.ok());
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(last.retry_after_ms(), 1u) << "throttle must carry a hint";
  EXPECT_EQ(client->throttle_retries(), 0u);

  // The connection survives a reject: a permitted op (STATS is exempt
  // from admission) still works on the same connection.
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(client->reconnects(), 0u);
  h.server->Shutdown();
}

TEST(ClientTest, EngineErrorsAreNeverRetried) {
  // The retry contract's third leg: only transport failures and
  // throttles retry. A remote engine error must come back exactly once,
  // with zero throttle retries burned.
  Harness h = Harness::Start(MemoryOpts());
  auto client = h.Connect();
  TuningWire bad;
  bad.size_ratio = 6;
  bad.policy = 9;  // invalid
  bad.buffer_entries = 128;
  bad.filter_bits_per_entry = 6.0;
  const Status st = client->ApplyTuning(bad);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client->throttle_retries(), 0u);
  EXPECT_EQ(client->reconnects(), 0u);
  h.server->Shutdown();
}

TEST(ClientTest, HelloBindsTenantQuotaOverride) {
  // Default quota is starvation-level; the "gold" tenant overrides to
  // unlimited. A client that HELLOs as gold sails through where an
  // anonymous client throttles.
  ServerOptions sopts;
  sopts.default_quota = TenantQuota{5, 0};
  sopts.max_pending_per_tenant = 0;
  sopts.tenant_quotas["gold"] = TenantQuota{0, 0};  // unlimited
  Harness h = Harness::Start(MemoryOpts(), sopts);

  ClientOptions gold_opts;
  gold_opts.port = h.server->port();
  gold_opts.tenant = "gold";
  gold_opts.throttle_max_retries = 0;
  auto gold_or = Client::Connect(gold_opts);
  ASSERT_TRUE(gold_or.ok()) << gold_or.status().ToString();
  auto gold = std::move(gold_or).value();
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(gold->Put(i, i).ok()) << "gold op " << i;
  }
  EXPECT_EQ(gold->throttle_retries(), 0u);

  ClientOptions anon_opts;
  anon_opts.port = h.server->port();
  anon_opts.throttle_max_retries = 0;
  auto anon_or = Client::Connect(anon_opts);
  ASSERT_TRUE(anon_or.ok());
  auto anon = std::move(anon_or).value();
  Status last = Status::OK();
  for (uint64_t i = 0; i < 10 && last.ok(); ++i) {
    last = anon->Put(1000 + i, i);
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  h.server->Shutdown();
}

TEST(ClientTest, GarbageBytesGetErrorFrameThenClose) {
  Harness h = Harness::Start(MemoryOpts());
  auto sock = ConnectSocket("127.0.0.1", h.server->port());
  ASSERT_TRUE(sock.ok());
  const std::string garbage = "not a frame at all";
  ASSERT_TRUE(WriteAll(sock->get(), garbage.data(), garbage.size()).ok());

  // Read whatever the server sends before closing: exactly one error
  // frame with request id 0.
  FrameDecoder dec;
  std::string bytes;
  char buf[512];
  while (true) {
    const ssize_t n = ::read(sock->get(), buf, sizeof(buf));
    if (n <= 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  dec.Feed(bytes.data(), bytes.size());
  Frame f;
  bool got = false;
  ASSERT_TRUE(dec.Next(&f, &got).ok());
  ASSERT_TRUE(got);
  EXPECT_EQ(f.opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(f.request_id, 0u);
  EXPECT_FALSE(ParseStatusOnlyResponse(f).ok());
  EXPECT_GE(h.server->counters().protocol_errors, 1u);
  h.server->Shutdown();
}

TEST(ClientTest, ShutdownDrainsIdleConnectionsAndIsIdempotent) {
  Harness h = Harness::Start(MemoryOpts());
  auto c1 = h.Connect();
  auto c2 = h.Connect();
  ASSERT_TRUE(c1->Put(1, 1).ok());
  ASSERT_TRUE(c2->Put(2, 2).ok());
  h.server->Shutdown();
  h.server->Shutdown();  // idempotent
  const ServerCounters c = h.server->counters();
  EXPECT_EQ(c.connections_accepted, 2u);
  EXPECT_EQ(c.connections_closed, 2u);
  // Engine state survives the server: drain and read back in-process.
  EXPECT_TRUE(h.db->Drain().ok());
  EXPECT_EQ(h.db->Get(1), std::optional<lsm::Value>(1u));
}

TEST(ClientTest, OversizedFrameIsShedImmediatelyNotWedged) {
  // A frame costlier than the bucket's burst capacity (one second of
  // byte quota) can never be admitted: it must come back as an
  // immediate kResourceExhausted, not park forever and wedge the
  // connection behind it.
  ServerOptions sopts;
  sopts.default_quota = TenantQuota{0, 200};  // 200 bytes/sec
  Harness h = Harness::Start(MemoryOpts(), sopts);
  ClientOptions copts;
  copts.port = h.server->port();
  copts.throttle_max_retries = 0;
  copts.recv_timeout_ms = 2000;  // a wedge would hit this, not 60s
  auto client_or = Client::Connect(copts);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  auto client = std::move(client_or).value();

  std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
  for (uint64_t i = 0; i < 20; ++i) pairs.emplace_back(i, i);  // ~341 bytes
  const Status st = client->PutBatch(pairs);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted)
      << st.ToString();
  EXPECT_GE(st.retry_after_ms(), 1u);

  // The connection is not wedged: a frame that fits the burst capacity
  // still goes through on the same connection, and the oversized reject
  // consumed no tokens.
  EXPECT_TRUE(client->Put(99, 99).ok());
  EXPECT_EQ(client->reconnects(), 0u);
  EXPECT_GE(h.server->counters().admission_rejects, 1u);
  h.server->Shutdown();
}

TEST(ClientTest, UnsatisfiableQuotaConfigRejectedAtStart) {
  // 0 < ops_per_sec < 1 means a burst capacity below one op's cost:
  // nothing could ever be admitted. Server::Start must refuse it, for
  // the default quota and per-tenant overrides alike.
  auto db = lsm::ShardedDB::Open(MemoryOpts());
  ASSERT_TRUE(db.ok());
  ServerOptions sopts;
  sopts.default_quota = TenantQuota{0.5, 0};
  auto s1 = Server::Start(db->get(), sopts);
  ASSERT_FALSE(s1.ok());
  EXPECT_EQ(s1.status().code(), StatusCode::kInvalidArgument);

  sopts.default_quota = TenantQuota{0, 0};
  sopts.tenant_quotas["frac"] = TenantQuota{0.25, 0};
  auto s2 = Server::Start(db->get(), sopts);
  ASSERT_FALSE(s2.ok());
  EXPECT_EQ(s2.status().code(), StatusCode::kInvalidArgument);

  sopts.tenant_quotas.clear();
  sopts.max_tenants = 0;
  auto s3 = Server::Start(db->get(), sopts);
  ASSERT_FALSE(s3.ok());
  EXPECT_EQ(s3.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClientTest, ExemptParkedFramesExecuteOnEof) {
  // PUT burns the 1-op burst, a second PUT parks on the empty bucket,
  // and STATS parks behind it for response order. Closing the write
  // side sheds the parked PUT with kResourceExhausted — but the
  // admission-exempt STATS must still EXECUTE (the operator exemption
  // holds even on the shed path), not come back as a bogus throttle.
  ServerOptions sopts;
  sopts.default_quota = TenantQuota{1, 0};
  Harness h = Harness::Start(MemoryOpts(), sopts);
  auto sock = ConnectSocket("127.0.0.1", h.server->port());
  ASSERT_TRUE(sock.ok());

  std::string burst = EncodePutRequest(1, 10, 100);
  burst += EncodePutRequest(2, 20, 200);
  burst += EncodeStatsRequest(3);
  ASSERT_TRUE(WriteAll(sock->get(), burst.data(), burst.size()).ok());
  ASSERT_EQ(::shutdown(sock->get(), SHUT_WR), 0);

  std::string bytes;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(sock->get(), buf, sizeof(buf));
    if (n <= 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  FrameDecoder dec;
  dec.Feed(bytes.data(), bytes.size());
  std::vector<Frame> frames;
  while (true) {
    Frame f;
    bool got = false;
    ASSERT_TRUE(dec.Next(&f, &got).ok());
    if (!got) break;
    frames.push_back(std::move(f));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].request_id, 1u);
  EXPECT_TRUE(ParseStatusOnlyResponse(frames[0]).ok());
  EXPECT_EQ(frames[1].request_id, 2u);
  EXPECT_EQ(ParseStatusOnlyResponse(frames[1]).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(frames[2].request_id, 3u);
  std::vector<StatPair> stats;
  ASSERT_TRUE(ParseStatsResponse(frames[2], &stats).ok());
  bool saw_shards = false;
  for (const auto& [name, value] : stats) {
    if (name == "num_shards") saw_shards = true;
  }
  EXPECT_TRUE(saw_shards);
  h.server->Shutdown();
}

TEST(ClientTest, PipelineSuffixRetryKeepsCommittedResults) {
  // Scripted server: pass 1 commits requests 0 and 2 but throttles 1;
  // the suffix resend (1 and 2) then throttles 2's idempotent re-apply
  // with retries exhausted. Request 2 WAS executed in pass 1 — its
  // result must stay OK, never be relabeled kResourceExhausted (the
  // documented "a throttled result was never executed" contract).
  uint16_t port = 0;
  auto listener = CreateListener("127.0.0.1", 0, 4, &port);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  std::thread script([fd = listener->get()] {
    // The listener is nonblocking: poll accept until the client lands.
    int conn = -1;
    for (int spins = 0; conn < 0 && spins < 5000; ++spins) {
      conn = ::accept(fd, nullptr, nullptr);
      if (conn < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (conn < 0) return;
    OwnedFd owned(conn);
    FrameDecoder dec;
    auto read_frames = [&](size_t count, std::vector<Frame>* out) {
      char buf[4096];
      while (out->size() < count) {
        Frame f;
        bool got = false;
        if (!dec.Next(&f, &got).ok()) return false;
        if (got) {
          out->push_back(std::move(f));
          continue;
        }
        const ssize_t n = ::read(conn, buf, sizeof(buf));
        if (n <= 0) return false;
        dec.Feed(buf, static_cast<size_t>(n));
      }
      return true;
    };

    std::vector<Frame> pass1;
    if (!read_frames(3, &pass1)) return;
    std::string out = EncodeStatusResponse(Opcode::kPut,
                                           pass1[0].request_id, Status::OK());
    out += EncodeStatusResponse(Opcode::kPut, pass1[1].request_id,
                                Status::ResourceExhausted("busy", 1));
    out += EncodeStatusResponse(Opcode::kPut, pass1[2].request_id,
                                Status::OK());
    if (!WriteAll(conn, out.data(), out.size()).ok()) return;

    std::vector<Frame> pass2;
    if (!read_frames(2, &pass2)) return;
    EXPECT_EQ(pass2[0].request_id, pass1[1].request_id);
    EXPECT_EQ(pass2[1].request_id, pass1[2].request_id);
    out = EncodeStatusResponse(Opcode::kPut, pass2[0].request_id,
                               Status::OK());
    out += EncodeStatusResponse(Opcode::kPut, pass2[1].request_id,
                                Status::ResourceExhausted("busy", 1));
    (void)WriteAll(conn, out.data(), out.size());
  });

  ClientOptions copts;
  copts.port = port;
  copts.max_attempts = 1;
  copts.throttle_max_retries = 1;  // buggy code fails fast, not hangs
  copts.recv_timeout_ms = 2000;
  auto client_or = Client::Connect(copts);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  auto client = std::move(client_or).value();

  auto pipeline = client->NewPipeline();
  pipeline.Put(1, 1);
  pipeline.Put(2, 2);
  pipeline.Put(3, 3);
  auto results = pipeline.Execute();
  script.join();
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 3u);
  EXPECT_TRUE((*results)[0].status.ok());
  EXPECT_TRUE((*results)[1].status.ok()) << "retried throttle must resolve";
  EXPECT_TRUE((*results)[2].status.ok())
      << "committed result relabeled as throttle: "
      << (*results)[2].status.ToString();
  EXPECT_EQ(client->throttle_retries(), 1u);
}

TEST(ClientTest, HelloThrottleHonorsRetryAfterHint) {
  // With the tenant table capped at the anonymous tenant alone, every
  // HELLO is rejected kResourceExhausted with the server's 1000ms hint.
  // The client must surface that throttle (not an IOError wrapper) and,
  // when retries are enabled, sleep the server's hint — not the 10ms
  // transport backoff — between HELLO attempts.
  ServerOptions sopts;
  sopts.max_tenants = 1;  // only the anonymous tenant fits
  Harness h = Harness::Start(MemoryOpts(), sopts);

  ClientOptions copts;
  copts.port = h.server->port();
  copts.tenant = "late";
  copts.max_attempts = 1;
  copts.throttle_max_retries = 0;
  auto fast = Client::Connect(copts);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(fast.status().retry_after_ms(), 1u);

  copts.throttle_max_retries = 1;
  const auto start = std::chrono::steady_clock::now();
  auto retried = Client::Connect(copts);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(retried.ok());
  EXPECT_EQ(retried.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(elapsed_ms, 900) << "retry must honor the server's 1000ms hint";
  h.server->Shutdown();
}

}  // namespace
}  // namespace endure::net
