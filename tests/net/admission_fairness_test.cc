// Noisy-neighbor fairness harness for the server's per-tenant admission
// control (runs under the TSan CI leg). One server, two tenants: a
// victim paced by its own quota and an aggressor flooding at far past
// its quota with retries disabled. Invariants proven here:
//  - isolation: the victim's acked throughput with the aggressor
//    flooding stays within tolerance (>= 80%) of its solo baseline —
//    the aggressor burns its own bucket, not the victim's;
//  - honest shedding: every rejected request carries
//    kResourceExhausted with a retry-after hint, never a silent drop
//    or a connection close;
//  - acked-writes-never-lost: per-key watermarks (value in
//    [acked, attempted]) hold under sustained shedding, including
//    across a drain/Shutdown with throttled requests in flight and a
//    crash + reopen of a durable deployment.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lsm/options.h"
#include "lsm/sharded_db.h"
#include "net/client.h"
#include "net/server.h"

namespace endure::net {
namespace {

using Clock = std::chrono::steady_clock;

lsm::Options MemoryOpts() {
  lsm::Options o;
  o.num_shards = 2;
  o.buffer_entries = 64;
  o.size_ratio = 4;
  o.filter_bits_per_entry = 4.0;
  o.background_maintenance = true;
  return o;
}

int64_t ElapsedMs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               since)
      .count();
}

/// Per-key watermarks of one aggressor thread: acked[k] is the last
/// iteration whose PUT of key k was acked, attempted[k] the last one
/// sent at all. After the dust settles the engine's value must sit in
/// [acked, attempted] — below acked is a lost acked write, above
/// attempted is a phantom (a rejected write that executed anyway).
struct AggressorState {
  std::vector<uint64_t> acked;
  std::vector<uint64_t> attempted;
  uint64_t rejects = 0;            ///< kResourceExhausted results seen
  uint64_t bad_status = 0;         ///< non-OK results that were NOT throttles
  uint64_t hintless_rejects = 0;   ///< throttles without a retry-after hint
};

/// Floods `keys` keys (base + k) with pipelined PUT batches, value =
/// iteration, retries disabled, until `stop`. Every non-OK per-request
/// status must be kResourceExhausted with a positive retry-after hint.
void AggressorLoop(uint16_t port, const std::string& tenant, lsm::Key base,
                   int keys, std::atomic<bool>* stop, AggressorState* st) {
  ClientOptions copts;
  copts.port = port;
  copts.tenant = tenant;
  copts.max_attempts = 2;  // fail fast once the server drains away
  copts.backoff_initial_ms = 1;
  copts.throttle_max_retries = 0;  // surface every throttle
  auto client_or = Client::Connect(copts);
  if (!client_or.ok()) return;
  std::unique_ptr<Client> client = std::move(client_or).value();

  st->acked.assign(static_cast<size_t>(keys), 0);
  st->attempted.assign(static_cast<size_t>(keys), 0);
  for (uint64_t iter = 1;; ++iter) {
    if (stop->load(std::memory_order_relaxed)) break;
    auto pipe = client->NewPipeline();
    for (int k = 0; k < keys; ++k) {
      pipe.Put(base + static_cast<lsm::Key>(k), iter);
      st->attempted[static_cast<size_t>(k)] = iter;
    }
    auto results = pipe.Execute();
    if (!results.ok()) break;  // transport gone: server draining
    for (int k = 0; k < keys; ++k) {
      const Status& s = (*results)[static_cast<size_t>(k)].status;
      if (s.ok()) {
        st->acked[static_cast<size_t>(k)] = iter;
      } else if (s.code() == StatusCode::kResourceExhausted) {
        ++st->rejects;
        if (s.retry_after_ms() == 0) ++st->hintless_rejects;
      } else {
        ++st->bad_status;
      }
    }
  }
}

TEST(AdmissionFairnessTest, NoisyNeighborKeepsVictimThroughput) {
  constexpr double kVictimOpsPerSec = 400;
  constexpr double kAggressorOpsPerSec = 150;
  constexpr int kVictimBatch = 10;
  constexpr int kVictimWarmupOps = 450;  // drains the initial burst tokens
  constexpr int kVictimTimedOps = 400;
  constexpr int kAggressorThreads = 2;
  constexpr int kAggressorKeys = 64;

  auto db_or = lsm::ShardedDB::Open(MemoryOpts());
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::unique_ptr<lsm::ShardedDB> db = std::move(db_or).value();

  ServerOptions sopts;
  sopts.tenant_quotas["victim"] = TenantQuota{kVictimOpsPerSec, 0};
  sopts.tenant_quotas["aggressor"] = TenantQuota{kAggressorOpsPerSec, 0};
  sopts.max_pending_per_tenant = 32;
  auto server_or = Server::Start(db.get(), sopts);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  std::unique_ptr<Server> server = std::move(server_or).value();

  ClientOptions vopts;
  vopts.port = server->port();
  vopts.tenant = "victim";
  vopts.backoff_initial_ms = 1;
  vopts.throttle_max_retries = 50;
  vopts.throttle_backoff_cap_ms = 200;
  auto victim_or = Client::Connect(vopts);
  ASSERT_TRUE(victim_or.ok()) << victim_or.status().ToString();
  std::unique_ptr<Client> victim = std::move(victim_or).value();

  // Victim batches cycle over a fixed key set; in-order execution means
  // each key must end at the LAST value this thread wrote to it.
  constexpr lsm::Key kVictimBase = 1000000;
  constexpr int kVictimKeys = 64;
  std::vector<uint64_t> victim_last(kVictimKeys, 0);
  uint64_t victim_seq = 0;
  auto run_victim_ops = [&](int ops) -> int64_t {
    const Clock::time_point start = Clock::now();
    int sent = 0;
    while (sent < ops) {
      auto pipe = victim->NewPipeline();
      const int n = std::min(kVictimBatch, ops - sent);
      std::vector<size_t> slots;
      for (int i = 0; i < n; ++i) {
        ++victim_seq;
        const size_t slot = victim_seq % kVictimKeys;
        pipe.Put(kVictimBase + static_cast<lsm::Key>(slot), victim_seq);
        slots.push_back(slot);
      }
      auto results = pipe.Execute();
      if (!results.ok()) {
        ADD_FAILURE() << "victim transport failed: "
                      << results.status().ToString();
        return -1;
      }
      for (int i = 0; i < n; ++i) {
        // The victim sits far inside its pending budget: it must never
        // be shed, only paced.
        EXPECT_TRUE((*results)[static_cast<size_t>(i)].status.ok())
            << (*results)[static_cast<size_t>(i)].status.ToString();
        if ((*results)[static_cast<size_t>(i)].status.ok()) {
          victim_last[slots[static_cast<size_t>(i)]] =
              victim_seq - static_cast<uint64_t>(n - 1 - i);
        }
      }
      sent += n;
    }
    return ElapsedMs(start);
  };

  // Warmup drains the bucket's initial burst so both timed phases run
  // refill-bound (the regime the fairness claim is about).
  ASSERT_GE(run_victim_ops(kVictimWarmupOps), 0);

  const int64_t solo_ms = run_victim_ops(kVictimTimedOps);
  ASSERT_GT(solo_ms, 0);

  std::atomic<bool> stop{false};
  std::vector<AggressorState> agg(kAggressorThreads);
  std::vector<std::thread> threads;
  threads.reserve(kAggressorThreads);
  for (int t = 0; t < kAggressorThreads; ++t) {
    threads.emplace_back(AggressorLoop, server->port(),
                         std::string("aggressor"),
                         static_cast<lsm::Key>(2000000 + t * 100000),
                         kAggressorKeys, &stop, &agg[t]);
  }
  // Let the flood saturate the aggressor's bucket before timing.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const int64_t contended_ms = run_victim_ops(kVictimTimedOps);
  ASSERT_GT(contended_ms, 0);

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  // Fairness: the victim retains >= 80% of its solo throughput (small
  // additive slack absorbs scheduler noise on short runs).
  EXPECT_LE(contended_ms, solo_ms + solo_ms / 4 + 100)
      << "victim throughput degraded beyond tolerance: solo " << solo_ms
      << "ms vs contended " << contended_ms << "ms";

  // Honest shedding: the flood was actually shed, and every reject was
  // an explicit kResourceExhausted with a usable retry-after hint.
  uint64_t total_rejects = 0;
  for (const AggressorState& st : agg) {
    total_rejects += st.rejects;
    EXPECT_EQ(st.bad_status, 0u)
        << "aggressor saw a non-throttle error for an admissible op";
    EXPECT_EQ(st.hintless_rejects, 0u)
        << "a throttle response arrived without a retry-after hint";
  }
  EXPECT_GE(total_rejects, 1u) << "the aggressor was never throttled";
  const ServerCounters c = server->counters();
  EXPECT_GE(c.admission_rejects, total_rejects);
  EXPECT_GE(c.queue_depth_peak, 1u);
  EXPECT_GE(c.throttled_ms, 1u);

  server->Shutdown();
  EXPECT_EQ(server->counters().connections_closed,
            server->counters().connections_accepted);

  // Watermarks after the engine drains: the victim's keys hold exactly
  // the last acked value; aggressor keys sit in [acked, attempted].
  ASSERT_TRUE(db->Drain().ok());
  for (int k = 0; k < kVictimKeys; ++k) {
    if (victim_last[static_cast<size_t>(k)] == 0) continue;
    const auto v = db->Get(kVictimBase + static_cast<lsm::Key>(k));
    ASSERT_TRUE(v.has_value()) << "victim key " << k;
    EXPECT_EQ(*v, victim_last[static_cast<size_t>(k)]) << "victim key " << k;
  }
  for (int t = 0; t < kAggressorThreads; ++t) {
    const AggressorState& st = agg[t];
    if (st.acked.empty()) continue;
    const lsm::Key base = static_cast<lsm::Key>(2000000 + t * 100000);
    for (int k = 0; k < kAggressorKeys; ++k) {
      const auto v = db->Get(base + static_cast<lsm::Key>(k));
      if (st.acked[static_cast<size_t>(k)] > 0) {
        ASSERT_TRUE(v.has_value()) << "aggressor " << t << " key " << k;
      }
      if (!v.has_value()) continue;
      EXPECT_GE(*v, st.acked[static_cast<size_t>(k)])
          << "aggressor " << t << " key " << k << ": acked write lost";
      EXPECT_LE(*v, st.attempted[static_cast<size_t>(k)])
          << "aggressor " << t << " key " << k
          << ": a shed write executed anyway";
    }
  }
}

TEST(AdmissionFairnessTest, ShedDrainReopenPreservesAckedWrites) {
  const std::string dir = "/tmp/endure_admission_shed";
  std::filesystem::remove_all(dir);

  lsm::Options opts = MemoryOpts();
  opts.backend = lsm::StorageBackend::kFile;
  opts.storage_dir = dir;
  opts.durability = true;
  // Per-batch sync: every ack a client saw is on the device, so the
  // watermark lower bound survives a crash, not just a clean close.
  opts.wal_sync_mode = WalSyncMode::kPerBatch;

  auto db_or = lsm::ShardedDB::Open(opts);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::unique_ptr<lsm::ShardedDB> db = std::move(db_or).value();

  ServerOptions sopts;
  // Tiny quota + tiny queue: sustained shedding within milliseconds.
  sopts.default_quota = TenantQuota{50, 0};
  sopts.max_pending_per_tenant = 8;
  auto server_or = Server::Start(db.get(), sopts);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  std::unique_ptr<Server> server = std::move(server_or).value();

  constexpr int kThreads = 2;
  constexpr int kKeys = 32;
  std::atomic<bool> stop{false};
  std::vector<AggressorState> states(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(AggressorLoop, server->port(),
                         std::string("tenant-") + std::to_string(t),
                         static_cast<lsm::Key>(t * 100000), kKeys, &stop,
                         &states[t]);
  }

  // Shutdown mid-flood: throttled requests are parked and in flight
  // right now. The drain must shed them with kResourceExhausted (the
  // loops below prove nothing surfaced any other way) — never execute
  // them, never drop them silently.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  server->Shutdown();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  uint64_t total_rejects = 0;
  uint64_t total_acked = 0;
  for (const AggressorState& st : states) {
    total_rejects += st.rejects;
    for (uint64_t a : st.acked) total_acked += a > 0 ? 1 : 0;
    EXPECT_EQ(st.bad_status, 0u)
        << "a shed or drained request surfaced as something other than "
           "kResourceExhausted";
    EXPECT_EQ(st.hintless_rejects, 0u);
  }
  EXPECT_GE(total_rejects, 1u) << "the flood was never shed";
  EXPECT_GE(total_acked, 1u) << "no write was ever admitted";
  EXPECT_GE(server->counters().admission_rejects, total_rejects);
  server.reset();

  // Crash (WAL writers dropped, no checkpoint) + reopen: acked writes
  // must all be there, shed writes must not have executed.
  db->CrashForTesting();
  db.reset();
  auto db2_or = lsm::ShardedDB::Open(opts);
  ASSERT_TRUE(db2_or.ok()) << db2_or.status().ToString();
  db = std::move(db2_or).value();
  for (int t = 0; t < kThreads; ++t) {
    const AggressorState& st = states[t];
    if (st.acked.empty()) continue;
    const lsm::Key base = static_cast<lsm::Key>(t * 100000);
    for (int k = 0; k < kKeys; ++k) {
      const auto v = db->Get(base + static_cast<lsm::Key>(k));
      if (st.acked[static_cast<size_t>(k)] > 0) {
        ASSERT_TRUE(v.has_value())
            << "tenant " << t << " key " << k << ": acked write lost";
      }
      if (!v.has_value()) continue;
      EXPECT_GE(*v, st.acked[static_cast<size_t>(k)])
          << "tenant " << t << " key " << k << ": acked write lost";
      EXPECT_LE(*v, st.attempted[static_cast<size_t>(k)])
          << "tenant " << t << " key " << k
          << ": a shed write executed anyway";
    }
  }

  // The reopened deployment serves again, quotas and all.
  auto server2_or = Server::Start(db.get(), sopts);
  ASSERT_TRUE(server2_or.ok()) << server2_or.status().ToString();
  ClientOptions copts;
  copts.port = (*server2_or)->port();
  copts.tenant = "tenant-0";
  auto client_or = Client::Connect(copts);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  ASSERT_TRUE((*client_or)->Put(999999, 7).ok());
  auto got = (*client_or)->Get(999999);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, 7u);
  (*server2_or)->Shutdown();
  db.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace endure::net
