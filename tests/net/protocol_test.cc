// Codec suite for the network wire protocol (src/net/protocol.h): every
// message round-trips; torn and byte-by-byte reads resume across feeds;
// oversized lengths and garbage headers are rejected cleanly (bounded
// allocation, sticky error, no crash); and a seeded random-bytes fuzz
// loop drives the decoder with hostile input. Runs under the ASan CI leg
// (tests/net is part of the asan ctest regex).

#include "net/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace endure::net {
namespace {

// Feeds `bytes` in chunks of `chunk` and drains every complete frame.
std::vector<Frame> DecodeAll(const std::string& bytes, size_t chunk,
                             uint32_t max_payload = kDefaultMaxPayload) {
  FrameDecoder dec(max_payload);
  std::vector<Frame> frames;
  for (size_t off = 0; off < bytes.size(); off += chunk) {
    dec.Feed(bytes.data() + off, std::min(chunk, bytes.size() - off));
    Frame f;
    bool got = true;
    while (true) {
      EXPECT_TRUE(dec.Next(&f, &got).ok());
      if (!got) break;
      frames.push_back(f);
    }
  }
  return frames;
}

TEST(ProtocolTest, GetRequestRoundTrips) {
  const std::string bytes = EncodeGetRequest(42, 0xdeadbeefULL);
  auto frames = DecodeAll(bytes, bytes.size());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].opcode, static_cast<uint8_t>(Opcode::kGet));
  EXPECT_EQ(frames[0].request_id, 42u);
  lsm::Key key = 0;
  ASSERT_TRUE(ParseGetRequest(frames[0], &key).ok());
  EXPECT_EQ(key, 0xdeadbeefULL);
}

TEST(ProtocolTest, PutDeleteRequestsRoundTrip) {
  auto put = DecodeAll(EncodePutRequest(7, 11, 22), 1);
  ASSERT_EQ(put.size(), 1u);
  lsm::Key k = 0;
  lsm::Value v = 0;
  ASSERT_TRUE(ParsePutRequest(put[0], &k, &v).ok());
  EXPECT_EQ(k, 11u);
  EXPECT_EQ(v, 22u);

  auto del = DecodeAll(EncodeDeleteRequest(8, 33), 2);
  ASSERT_EQ(del.size(), 1u);
  ASSERT_TRUE(ParseDeleteRequest(del[0], &k).ok());
  EXPECT_EQ(k, 33u);
}

TEST(ProtocolTest, PutBatchRoundTrips) {
  std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
  for (uint64_t i = 0; i < 257; ++i) pairs.emplace_back(i * 3, i * 7 + 1);
  auto frames = DecodeAll(EncodePutBatchRequest(9, pairs), 13);
  ASSERT_EQ(frames.size(), 1u);
  std::vector<std::pair<lsm::Key, lsm::Value>> out;
  ASSERT_TRUE(ParsePutBatchRequest(frames[0], &out).ok());
  EXPECT_EQ(out, pairs);
}

TEST(ProtocolTest, ScanStatsTuningFlushRoundTrip) {
  auto scan = DecodeAll(EncodeScanRequest(1, 100, 200), 3);
  ASSERT_EQ(scan.size(), 1u);
  lsm::Key lo = 0, hi = 0;
  ASSERT_TRUE(ParseScanRequest(scan[0], &lo, &hi).ok());
  EXPECT_EQ(lo, 100u);
  EXPECT_EQ(hi, 200u);

  auto stats = DecodeAll(EncodeStatsRequest(2), 1);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].opcode, static_cast<uint8_t>(Opcode::kStats));
  EXPECT_TRUE(stats[0].payload.empty());

  TuningWire t;
  t.size_ratio = 6;
  t.policy = 1;
  t.filter_allocation = 1;
  t.buffer_entries = 4096;
  t.filter_bits_per_entry = 7.5;
  auto tune = DecodeAll(EncodeApplyTuningRequest(3, t), 5);
  ASSERT_EQ(tune.size(), 1u);
  TuningWire got;
  ASSERT_TRUE(ParseApplyTuningRequest(tune[0], &got).ok());
  EXPECT_EQ(got.size_ratio, t.size_ratio);
  EXPECT_EQ(got.policy, t.policy);
  EXPECT_EQ(got.filter_allocation, t.filter_allocation);
  EXPECT_EQ(got.buffer_entries, t.buffer_entries);
  EXPECT_DOUBLE_EQ(got.filter_bits_per_entry, t.filter_bits_per_entry);

  auto flush = DecodeAll(EncodeFlushRequest(4), 4);
  ASSERT_EQ(flush.size(), 1u);
  EXPECT_EQ(flush[0].opcode, static_cast<uint8_t>(Opcode::kFlush));
}

TEST(ProtocolTest, ResponsesRoundTrip) {
  // GET hit, GET miss, SCAN body, STATS body, remote error status.
  auto hit = DecodeAll(EncodeGetResponse(5, 77u), 1);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].opcode,
            static_cast<uint8_t>(Opcode::kGet) | kResponseBit);
  std::optional<lsm::Value> value;
  ASSERT_TRUE(ParseGetResponse(hit[0], &value).ok());
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 77u);

  auto miss = DecodeAll(EncodeGetResponse(6, std::nullopt), 1);
  ASSERT_TRUE(ParseGetResponse(miss[0], &value).ok());
  EXPECT_FALSE(value.has_value());

  std::vector<std::pair<lsm::Key, lsm::Value>> entries = {{1, 2}, {3, 4}};
  auto scan = DecodeAll(EncodeScanResponse(7, entries), 2);
  std::vector<std::pair<lsm::Key, lsm::Value>> got_entries;
  ASSERT_TRUE(ParseScanResponse(scan[0], &got_entries).ok());
  EXPECT_EQ(got_entries, entries);

  std::vector<StatPair> stats = {{"pages_read", 12}, {"num_shards", 4}};
  auto sresp = DecodeAll(EncodeStatsResponse(8, stats), 3);
  std::vector<StatPair> got_stats;
  ASSERT_TRUE(ParseStatsResponse(sresp[0], &got_stats).ok());
  EXPECT_EQ(got_stats, stats);
}

TEST(ProtocolTest, RemoteStatusTravelsCodeForCode) {
  // A degraded-mode latch (IOError) and a Corruption latch must surface
  // remotely with the same StatusCode they carry in-process.
  for (const Status& st :
       {Status::IOError("shard 2: device gone"),
        Status::Corruption("page checksum"),
        Status::OutOfRange("scan result exceeds frame limit"),
        Status::FailedPrecondition("reopen required")}) {
    auto frames =
        DecodeAll(EncodeStatusResponse(Opcode::kPut, 9, st), 1);
    ASSERT_EQ(frames.size(), 1u);
    const Status back = ParseStatusOnlyResponse(frames[0]);
    EXPECT_EQ(back.code(), st.code()) << st.ToString();
    EXPECT_NE(back.ToString().find(st.message()), std::string::npos);
  }
}

TEST(ProtocolTest, ResourceExhaustedCarriesRetryAfterHint) {
  // A throttle response round-trips code-for-code AND hint-for-hint:
  // the client's backoff honors exactly the hint the admission gate
  // computed. Status equality includes the hint.
  const Status st = Status::ResourceExhausted(
      "tenant \"ads\" over admission quota", /*retry_after_ms=*/137);
  for (size_t chunk : {size_t{1}, size_t{3}, size_t{64}}) {
    auto frames =
        DecodeAll(EncodeStatusResponse(Opcode::kPut, 12, st), chunk);
    ASSERT_EQ(frames.size(), 1u) << "chunk=" << chunk;
    const Status back = ParseStatusOnlyResponse(frames[0]);
    EXPECT_EQ(back.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(back.retry_after_ms(), 137u);
    EXPECT_EQ(back, st);
  }

  // Hintless throttles are legal (hint 0 = "retry whenever").
  auto frames = DecodeAll(
      EncodeStatusResponse(Opcode::kGet, 13, Status::ResourceExhausted("x")),
      1);
  EXPECT_EQ(ParseStatusOnlyResponse(frames[0]).retry_after_ms(), 0u);

  // Non-throttle statuses never carry the trailer.
  frames = DecodeAll(
      EncodeStatusResponse(Opcode::kGet, 14, Status::IOError("disk")), 1);
  EXPECT_EQ(ParseStatusOnlyResponse(frames[0]).retry_after_ms(), 0u);

  // A throttle status truncated before its hint is a decode error, not
  // a hint defaulted to zero.
  std::string whole = EncodeStatusResponse(Opcode::kPut, 15, st);
  std::string torn = whole.substr(0, whole.size() - 2);
  // Fix up the header's payload_len to match the torn payload so the
  // decoder hands the short frame to the status parser.
  const uint32_t torn_len =
      static_cast<uint32_t>(torn.size() - kFrameHeaderBytes);
  std::memcpy(&torn[13], &torn_len, sizeof(torn_len));
  auto torn_frames = DecodeAll(torn, torn.size());
  ASSERT_EQ(torn_frames.size(), 1u);
  EXPECT_EQ(ParseStatusOnlyResponse(torn_frames[0]).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, HelloRequestRoundTrips) {
  const std::string bytes = EncodeHelloRequest(21, "tenant-a");
  for (size_t chunk : {size_t{1}, size_t{5}, bytes.size()}) {
    auto frames = DecodeAll(bytes, chunk);
    ASSERT_EQ(frames.size(), 1u) << "chunk=" << chunk;
    EXPECT_EQ(frames[0].opcode, static_cast<uint8_t>(Opcode::kHello));
    EXPECT_EQ(frames[0].request_id, 21u);
    std::string tenant;
    ASSERT_TRUE(ParseHelloRequest(frames[0], &tenant).ok());
    EXPECT_EQ(tenant, "tenant-a");
  }

  // The empty tenant id is valid: it names the anonymous default tenant.
  auto anon = DecodeAll(EncodeHelloRequest(22, ""), 1);
  ASSERT_EQ(anon.size(), 1u);
  std::string tenant = "stale";
  ASSERT_TRUE(ParseHelloRequest(anon[0], &tenant).ok());
  EXPECT_TRUE(tenant.empty());
}

TEST(ProtocolTest, HelloRejectsOversizedAndMalformedTenantIds) {
  // Longest legal id round-trips; one byte longer is rejected by the
  // parser (the length cap bounds per-connection allocation).
  const std::string max_id(kMaxTenantIdBytes, 't');
  auto ok = DecodeAll(EncodeHelloRequest(1, max_id), 7);
  ASSERT_EQ(ok.size(), 1u);
  std::string tenant;
  ASSERT_TRUE(ParseHelloRequest(ok[0], &tenant).ok());
  EXPECT_EQ(tenant.size(), kMaxTenantIdBytes);

  Frame f;
  f.opcode = static_cast<uint8_t>(Opcode::kHello);
  std::string payload;
  WireWriter w(&payload);
  const std::string big(kMaxTenantIdBytes + 1, 'x');
  w.U16(static_cast<uint16_t>(big.size()));
  w.Bytes(big.data(), big.size());
  f.payload = payload;
  EXPECT_FALSE(ParseHelloRequest(f, &tenant).ok());

  // Forged length: header says 8 bytes, payload holds 3.
  payload.clear();
  WireWriter w2(&payload);
  w2.U16(8);
  w2.Bytes("abc", 3);
  f.payload = payload;
  EXPECT_FALSE(ParseHelloRequest(f, &tenant).ok());

  // Trailing garbage after the id is rejected (full-consumption rule).
  f.payload = EncodeHelloRequest(1, "t").substr(kFrameHeaderBytes) + "zz";
  EXPECT_FALSE(ParseHelloRequest(f, &tenant).ok());

  // Wrong opcode.
  auto get = DecodeAll(EncodeGetRequest(2, 3), 1);
  EXPECT_FALSE(ParseHelloRequest(get[0], &tenant).ok());
}

TEST(ProtocolTest, TornReadsResumeAcrossFeeds) {
  // Several frames back to back, delivered one byte at a time — the
  // pipelined-over-EAGAIN case. Every frame must come out intact.
  std::string stream;
  stream += EncodePutRequest(1, 10, 20);
  stream += EncodeGetRequest(2, 10);
  std::vector<std::pair<lsm::Key, lsm::Value>> pairs = {{5, 6}, {7, 8}};
  stream += EncodePutBatchRequest(3, pairs);
  stream += EncodeFlushRequest(4);

  for (size_t chunk : {size_t{1}, size_t{2}, size_t{7}, stream.size()}) {
    auto frames = DecodeAll(stream, chunk);
    ASSERT_EQ(frames.size(), 4u) << "chunk=" << chunk;
    EXPECT_EQ(frames[0].request_id, 1u);
    EXPECT_EQ(frames[3].request_id, 4u);
    std::vector<std::pair<lsm::Key, lsm::Value>> out;
    ASSERT_TRUE(ParsePutBatchRequest(frames[2], &out).ok());
    EXPECT_EQ(out, pairs);
  }
}

TEST(ProtocolTest, OversizedLengthRejectedBeforeAllocation) {
  // Header advertising a 512 MiB payload against a 1 MiB limit: the
  // decoder must error out on the header alone and never buffer toward
  // the advertised length.
  std::string header;
  WireWriter w(&header);
  w.U32(kFrameMagic);
  w.U8(static_cast<uint8_t>(Opcode::kPut));
  w.U64(1);
  w.U32(512u << 20);
  FrameDecoder dec(1u << 20);
  dec.Feed(header.data(), header.size());
  Frame f;
  bool got = false;
  const Status st = dec.Next(&f, &got);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(got);
  EXPECT_LE(dec.buffered_bytes(), kFrameHeaderBytes);

  // The error is sticky: later feeds are dropped, not buffered.
  const std::string more(4096, 'x');
  dec.Feed(more.data(), more.size());
  EXPECT_FALSE(dec.Next(&f, &got).ok());
  EXPECT_LE(dec.buffered_bytes(), kFrameHeaderBytes);
}

TEST(ProtocolTest, GarbageMagicPoisonsDecoder) {
  std::string junk = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  FrameDecoder dec;
  dec.Feed(junk.data(), junk.size());
  Frame f;
  bool got = false;
  EXPECT_FALSE(dec.Next(&f, &got).ok());
  EXPECT_FALSE(got);
  // Poisoned for good — even a valid frame afterwards stays rejected
  // (the stream's frame boundaries are unrecoverable).
  const std::string valid = EncodeGetRequest(1, 2);
  dec.Feed(valid.data(), valid.size());
  EXPECT_FALSE(dec.Next(&f, &got).ok());
}

TEST(ProtocolTest, TruncatedAndTrailingPayloadsRejected) {
  // Truncated: a PUT payload cut to 12 of 16 bytes.
  Frame f;
  f.opcode = static_cast<uint8_t>(Opcode::kPut);
  f.payload = std::string(12, '\0');
  lsm::Key k;
  lsm::Value v;
  EXPECT_FALSE(ParsePutRequest(f, &k, &v).ok());

  // Trailing: a GET payload with 4 extra bytes after the key.
  f.opcode = static_cast<uint8_t>(Opcode::kGet);
  f.payload = std::string(12, '\0');
  EXPECT_FALSE(ParseGetRequest(f, &k).ok());

  // Forged PUT_BATCH count: count says 1000, payload holds 2 pairs.
  std::string payload;
  WireWriter w(&payload);
  w.U32(1000);
  w.U64(1);
  w.U64(2);
  w.U64(3);
  w.U64(4);
  f.opcode = static_cast<uint8_t>(Opcode::kPutBatch);
  f.payload = payload;
  std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
  EXPECT_FALSE(ParsePutBatchRequest(f, &pairs).ok());
}

TEST(ProtocolTest, WrongOpcodeRejectedByParsers) {
  auto frames = DecodeAll(EncodeGetRequest(1, 2), 1);
  ASSERT_EQ(frames.size(), 1u);
  lsm::Key k;
  lsm::Value v;
  EXPECT_FALSE(ParsePutRequest(frames[0], &k, &v).ok());
  std::optional<lsm::Value> value;
  EXPECT_FALSE(ParseGetResponse(frames[0], &value).ok());
}

TEST(ProtocolTest, BufferedBytesStayBounded) {
  // Stream many max-size-adjacent frames through a small-chunk feed: the
  // decoder's buffer must never exceed one header + one payload.
  std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
  for (uint64_t i = 0; i < 1000; ++i) pairs.emplace_back(i, i);
  std::string stream;
  for (int rep = 0; rep < 4; ++rep) {
    stream += EncodePutBatchRequest(rep, pairs);
  }
  FrameDecoder dec;
  size_t frames = 0;
  for (size_t off = 0; off < stream.size(); off += 4096) {
    dec.Feed(stream.data() + off, std::min<size_t>(4096, stream.size() - off));
    Frame f;
    bool got = true;
    while (true) {
      ASSERT_TRUE(dec.Next(&f, &got).ok());
      if (!got) break;
      ++frames;
      std::vector<std::pair<lsm::Key, lsm::Value>> out;
      ASSERT_TRUE(ParsePutBatchRequest(f, &out).ok());
      ASSERT_EQ(out.size(), pairs.size());
    }
    ASSERT_LE(dec.buffered_bytes(),
              kFrameHeaderBytes + kDefaultMaxPayload);
  }
  EXPECT_EQ(frames, 4u);
}

TEST(ProtocolTest, ErrorFrameRoundTrips) {
  auto frames =
      DecodeAll(EncodeErrorFrame(Status::InvalidArgument("bad frame")), 1);
  ASSERT_EQ(frames.size(), 1u);
  // kError stands alone (no response bit): it answers no specific
  // request, so it is neither a request nor an opcode-echoing response.
  EXPECT_EQ(frames[0].opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(frames[0].request_id, 0u);
  const Status st = ParseStatusOnlyResponse(frames[0]);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------ fuzz --

// Pure random bytes: the decoder must reject (or keep waiting) without
// crashing, over-allocating, or looping. Seeded — a failure names the
// seed, which replays deterministically.
TEST(ProtocolFuzzTest, RandomBytesNeverCrashTheDecoder) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    FrameDecoder dec(64 << 10);
    std::string chunk;
    for (int round = 0; round < 64; ++round) {
      const size_t n = static_cast<size_t>(rng.UniformInt(1, 512));
      chunk.resize(n);
      for (size_t i = 0; i < n; ++i) {
        chunk[i] = static_cast<char>(rng.Next() & 0xff);
      }
      dec.Feed(chunk.data(), chunk.size());
      Frame f;
      bool got = true;
      while (got) {
        const Status st = dec.Next(&f, &got);
        if (!st.ok()) break;  // poisoned: stays poisoned, loop ends below
        ASSERT_LE(f.payload.size(), 64u << 10) << "seed " << seed;
      }
      ASSERT_LE(dec.buffered_bytes(), kFrameHeaderBytes + (64u << 10))
          << "seed " << seed;
    }
  }
}

// Mutated valid frames: flip bytes of a legitimate stream and feed it in
// random fragments. Every outcome must be a clean decode or a clean
// reject; parsed frames must never read out of bounds (ASan enforces).
TEST(ProtocolFuzzTest, MutatedFramesDecodeOrRejectCleanly) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    std::string stream;
    stream += EncodePutRequest(1, rng.Next(), rng.Next());
    std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
    for (int i = 0; i < 16; ++i) pairs.emplace_back(rng.Next(), rng.Next());
    stream += EncodePutBatchRequest(2, pairs);
    stream += EncodeScanRequest(3, 0, 100);
    stream += EncodeStatsRequest(4);
    stream += EncodeHelloRequest(
        5, std::string(static_cast<size_t>(rng.UniformInt(0, 32)), 'n'));
    stream += EncodeStatusResponse(
        Opcode::kPut, 6,
        Status::ResourceExhausted(
            "over quota",
            static_cast<uint32_t>(rng.UniformInt(0, 5000))));

    // Flip up to 8 random bytes.
    const int flips = static_cast<int>(rng.UniformInt(0, 8));
    for (int i = 0; i < flips; ++i) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(0, stream.size() - 1));
      stream[pos] = static_cast<char>(rng.Next() & 0xff);
    }

    FrameDecoder dec;
    size_t off = 0;
    while (off < stream.size()) {
      const size_t n = std::min<size_t>(
          static_cast<size_t>(rng.UniformInt(1, 64)), stream.size() - off);
      dec.Feed(stream.data() + off, n);
      off += n;
      Frame f;
      bool got = true;
      while (got) {
        if (!dec.Next(&f, &got).ok()) break;
        if (!got) break;
        // Parse with whatever parser the opcode claims; status is free
        // to be an error, the process must simply survive.
        lsm::Key k;
        lsm::Value v;
        std::vector<std::pair<lsm::Key, lsm::Value>> ps;
        switch (f.opcode) {
          case static_cast<uint8_t>(Opcode::kPut):
            (void)ParsePutRequest(f, &k, &v);
            break;
          case static_cast<uint8_t>(Opcode::kPutBatch):
            (void)ParsePutBatchRequest(f, &ps);
            break;
          case static_cast<uint8_t>(Opcode::kScan):
            (void)ParseScanRequest(f, &k, &v);
            break;
          case static_cast<uint8_t>(Opcode::kHello): {
            std::string tenant;
            (void)ParseHelloRequest(f, &tenant);
            break;
          }
          case static_cast<uint8_t>(Opcode::kPut) | kResponseBit:
            (void)ParseStatusOnlyResponse(f);
            break;
          default:
            break;
        }
      }
    }
  }
}

}  // namespace
}  // namespace endure::net
