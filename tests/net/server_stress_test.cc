// Concurrency stress for the network front-end (runs under the TSan CI
// leg): N client threads fire pipelined PUT batches at one server while
// background compactions churn and the main thread applies a live
// tuning change mid-run, then the server is shut down with requests
// still in flight. Invariants: an acked write is never lost (per-key
// monotone watermarks — the recovered value is at least the last acked
// iteration and at most the last attempted one), responses arrive in
// request order, and the drain closes every connection it accepted.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "lsm/options.h"
#include "lsm/sharded_db.h"
#include "net/client.h"
#include "net/server.h"

namespace endure::net {
namespace {

constexpr int kThreads = 4;
constexpr int kKeysPerThread = 32;
constexpr int kMaxIters = 400;

lsm::Options StressOpts() {
  lsm::Options o;
  o.num_shards = 4;
  o.buffer_entries = 64;  // small: flushes + compactions churn constantly
  o.size_ratio = 3;
  o.filter_bits_per_entry = 4.0;
  o.background_maintenance = true;
  return o;
}

struct WorkerState {
  uint64_t acked_iter = 0;      ///< last iteration whose batch was acked
  uint64_t attempted_iter = 0;  ///< last iteration whose batch was sent
  uint64_t completed_batches = 0;
};

TEST(NetServerStressTest, PipelinedWritersSurviveTuningAndDrain) {
  auto db_or = lsm::ShardedDB::Open(StressOpts());
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::unique_ptr<lsm::ShardedDB> db = std::move(db_or).value();
  auto server_or = Server::Start(db.get(), ServerOptions{});
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  std::unique_ptr<Server> server = std::move(server_or).value();

  std::atomic<bool> stop{false};
  std::vector<WorkerState> states(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);

  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      ClientOptions copts;
      copts.port = server->port();
      copts.max_attempts = 2;  // fail fast once the server is gone
      copts.backoff_initial_ms = 1;
      auto client_or = Client::Connect(copts);
      if (!client_or.ok()) return;
      std::unique_ptr<Client> client = std::move(client_or).value();
      const lsm::Key base = static_cast<lsm::Key>(t) * 100000;
      WorkerState& st = states[t];

      for (uint64_t iter = 1; iter <= kMaxIters; ++iter) {
        if (stop.load(std::memory_order_relaxed) && st.acked_iter > 0) {
          break;
        }
        auto pipe = client->NewPipeline();
        for (int k = 0; k < kKeysPerThread; ++k) {
          pipe.Put(base + static_cast<lsm::Key>(k), iter);
        }
        // A read of our own key rides in the same batch: its response
        // must reflect the batch's writes (in-order execution).
        pipe.Get(base);
        st.attempted_iter = iter;
        auto results = pipe.Execute();
        if (!results.ok()) break;  // server draining: stop cleanly
        ASSERT_EQ(results->size(),
                  static_cast<size_t>(kKeysPerThread) + 1);
        bool all_ok = true;
        for (int k = 0; k < kKeysPerThread; ++k) {
          if (!(*results)[k].status.ok()) all_ok = false;
        }
        const auto& get = (*results)[kKeysPerThread];
        if (all_ok) {
          st.acked_iter = iter;
          ASSERT_TRUE(get.value.has_value());
          ASSERT_EQ(*get.value, iter)
              << "thread " << t << ": in-batch read missed its own write";
        }
        ++st.completed_batches;
      }
    });
  }

  // Mid-run, from the main thread: a live tuning change over the wire.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  {
    ClientOptions copts;
    copts.port = server->port();
    auto tuner_or = Client::Connect(copts);
    ASSERT_TRUE(tuner_or.ok());
    TuningWire t;
    t.size_ratio = 5;
    t.policy = 1;  // tiering
    t.buffer_entries = 128;
    t.filter_bits_per_entry = 6.0;
    ASSERT_TRUE((*tuner_or)->ApplyTuning(t).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Drain with requests in flight: workers are mid-pipeline right now.
  stop.store(true, std::memory_order_relaxed);
  server->Shutdown();
  for (auto& w : workers) w.join();

  const ServerCounters c = server->counters();
  EXPECT_EQ(c.connections_closed, c.connections_accepted);
  EXPECT_GE(c.puts_coalesced, static_cast<uint64_t>(kKeysPerThread));

  // Every thread made progress, and no acked write was lost: after the
  // engine drains, each key holds a watermark in [acked, attempted].
  ASSERT_TRUE(db->Drain().ok());
  for (int t = 0; t < kThreads; ++t) {
    const WorkerState& st = states[t];
    EXPECT_GE(st.completed_batches, 1u) << "thread " << t;
    ASSERT_GE(st.acked_iter, 1u) << "thread " << t;
    const lsm::Key base = static_cast<lsm::Key>(t) * 100000;
    for (int k = 0; k < kKeysPerThread; ++k) {
      const auto v = db->Get(base + static_cast<lsm::Key>(k));
      ASSERT_TRUE(v.has_value()) << "thread " << t << " key " << k;
      EXPECT_GE(*v, st.acked_iter)
          << "thread " << t << " key " << k << ": acked write lost";
      EXPECT_LE(*v, st.attempted_iter)
          << "thread " << t << " key " << k << ": phantom write";
    }
  }
  const lsm::Options now = db->options();
  EXPECT_EQ(now.policy, lsm::CompactionPolicy::kTiering);
}

}  // namespace
}  // namespace endure::net
