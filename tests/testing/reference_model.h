// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Differential-testing scaffolding: a std::map-backed oracle with the
// engine's exact visible semantics (upsert, tombstone delete, [lo, hi)
// scans) plus a seeded random op-trace generator. Any engine front-end
// with the DB surface (Put/Delete/Get/Scan/Flush) can be driven against
// the oracle; a divergence reports the seed and the first diverging op
// index, which replays deterministically.

#ifndef ENDURE_TESTS_TESTING_REFERENCE_MODEL_H_
#define ENDURE_TESTS_TESTING_REFERENCE_MODEL_H_

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lsm/entry.h"
#include "util/random.h"

namespace endure::testing {

/// The oracle: the visible state an LSM front-end must agree with.
class ReferenceModel {
 public:
  void Put(lsm::Key key, lsm::Value value) { map_[key] = value; }
  void Delete(lsm::Key key) { map_.erase(key); }

  std::optional<lsm::Value> Get(lsm::Key key) const {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  /// Live entries with keys in [lo, hi), ascending.
  std::vector<std::pair<lsm::Key, lsm::Value>> Scan(lsm::Key lo,
                                                    lsm::Key hi) const {
    std::vector<std::pair<lsm::Key, lsm::Value>> out;
    for (auto it = map_.lower_bound(lo); it != map_.end() && it->first < hi;
         ++it) {
      out.emplace_back(it->first, it->second);
    }
    return out;
  }

  size_t size() const { return map_.size(); }

 private:
  std::map<lsm::Key, lsm::Value> map_;
};

/// The versioned oracle: every Put/Delete appends a stamped version, so
/// the state *at any past write index* can be reconstructed. This is what
/// snapshot-consistency checking needs: a concurrent reader's scan is
/// correct iff it equals the oracle's state at SOME index inside the
/// reader's validity window [k_low, k_high], where k_low is the last
/// write acknowledged before the read started and k_high the last write
/// started before the read returned (the engine makes an applied write
/// readable just before its WAL ack, so the upper edge is "started", not
/// "acked"). Index 0 is the empty initial state. Not thread-safe: a
/// concurrent harness serializes access externally (append-only writer,
/// readers checking under the same lock).
class VersionedOracle {
 public:
  /// Appends a version; returns its write index (1-based).
  uint64_t Put(lsm::Key key, lsm::Value value) { return Append(key, value); }
  uint64_t Delete(lsm::Key key) { return Append(key, std::nullopt); }

  /// Index of the newest recorded write (0 when empty).
  uint64_t last_index() const { return next_index_ - 1; }

  /// The key's visible value at `index` (nullopt: absent or deleted).
  std::optional<lsm::Value> ValueAt(lsm::Key key, uint64_t index) const {
    auto it = history_.find(key);
    if (it == history_.end()) return std::nullopt;
    return ValueIn(it->second, index);
  }

  /// Live [lo, hi) entries, ascending, as of `index`.
  std::vector<std::pair<lsm::Key, lsm::Value>> ScanAt(lsm::Key lo,
                                                      lsm::Key hi,
                                                      uint64_t index) const {
    std::vector<std::pair<lsm::Key, lsm::Value>> out;
    for (auto it = history_.lower_bound(lo);
         it != history_.end() && it->first < hi; ++it) {
      const std::optional<lsm::Value> v = ValueIn(it->second, index);
      if (v.has_value()) out.emplace_back(it->first, *v);
    }
    return out;
  }

  /// True iff an observed point read of `key` is explainable by some
  /// index in [k_low, k_high].
  bool GetMatchesSomeIndex(lsm::Key key, std::optional<lsm::Value> observed,
                           uint64_t k_low, uint64_t k_high) const {
    if (ValueAt(key, k_low) == observed) return true;
    auto it = history_.find(key);
    if (it == history_.end()) return false;
    for (const Version& v : it->second) {
      if (v.index > k_low && v.index <= k_high && v.value == observed) {
        return true;
      }
    }
    return false;
  }

  /// True iff an observed [lo, hi) scan equals the oracle state at some
  /// index in [k_low, k_high]. The state only changes at version stamps,
  /// so it suffices to test k_low plus every stamp of a key in range that
  /// falls inside the window. Reports the matching index via `matched`.
  bool ScanMatchesSomeIndex(
      const std::vector<std::pair<lsm::Key, lsm::Value>>& observed,
      lsm::Key lo, lsm::Key hi, uint64_t k_low, uint64_t k_high,
      uint64_t* matched = nullptr) const {
    std::vector<uint64_t> candidates;
    candidates.push_back(k_low);
    for (auto it = history_.lower_bound(lo);
         it != history_.end() && it->first < hi; ++it) {
      for (const Version& v : it->second) {
        if (v.index > k_low && v.index <= k_high) {
          candidates.push_back(v.index);
        }
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (uint64_t k : candidates) {
      if (ScanAt(lo, hi, k) == observed) {
        if (matched != nullptr) *matched = k;
        return true;
      }
    }
    return false;
  }

  /// Rolls the history back to `index` — drops every newer version. Used
  /// after a crash-recovery reopen: the recovered state is some prefix
  /// index k*; truncating there realigns oracle and engine so the next
  /// phase's windows stay exact.
  void TruncateTo(uint64_t index) {
    for (auto it = history_.begin(); it != history_.end();) {
      std::vector<Version>& versions = it->second;
      while (!versions.empty() && versions.back().index > index) {
        versions.pop_back();
      }
      it = versions.empty() ? history_.erase(it) : std::next(it);
    }
    next_index_ = index + 1;
  }

 private:
  struct Version {
    uint64_t index;
    std::optional<lsm::Value> value;  ///< nullopt: tombstone
  };

  uint64_t Append(lsm::Key key, std::optional<lsm::Value> value) {
    const uint64_t idx = next_index_++;
    history_[key].push_back(Version{idx, value});
    return idx;
  }

  /// Value of the newest version stamped <= index (versions ascend).
  static std::optional<lsm::Value> ValueIn(const std::vector<Version>& vs,
                                           uint64_t index) {
    auto it = std::upper_bound(
        vs.begin(), vs.end(), index,
        [](uint64_t idx, const Version& v) { return idx < v.index; });
    if (it == vs.begin()) return std::nullopt;
    return std::prev(it)->value;
  }

  uint64_t next_index_ = 1;  ///< index 0 = the empty initial state
  std::map<lsm::Key, std::vector<Version>> history_;
};

/// One operation of a random trace. kReconfigure models a live
/// ApplyTuning call injected mid-trace: `value` indexes the caller's list
/// of tuning presets; the oracle ignores it (a reconfiguration must never
/// change visible contents — that is exactly what the differential
/// harness asserts). kSnapshotScan is a scan whose result is checked
/// against the *versioned* oracle over a validity window instead of the
/// exact latest state — the snapshot-consistency op.
struct Op {
  enum Kind {
    kPut,
    kDelete,
    kGet,
    kScan,
    kFlush,
    kReconfigure,
    kSnapshotScan,
  } kind = kPut;
  lsm::Key key = 0;
  lsm::Value value = 0;
  lsm::Key hi = 0;  ///< scan upper bound

  std::string ToString() const {
    char buf[96];
    const char* names[] = {"Put",   "Delete",      "Get",         "Scan",
                           "Flush", "Reconfigure", "SnapshotScan"};
    std::snprintf(buf, sizeof(buf), "%s(key=%llu, value=%llu, hi=%llu)",
                  names[kind], static_cast<unsigned long long>(key),
                  static_cast<unsigned long long>(value),
                  static_cast<unsigned long long>(hi));
    return buf;
  }
};

/// Key skew of a generated trace.
enum class KeyDistribution {
  kUniform,  ///< uniform over the whole key domain
  kSkewed,   ///< 50% of ops hit an 1/64 hot range (heavy overwrites)
};

/// Deterministic random trace: same (seed, n, dist, domain) -> same ops.
/// Mix: 40% Put, 10% Delete, 30% Get, 15% Scan (short ranges), 5% Flush.
/// `snapshot_scan_fraction` > 0 additionally converts that fraction of
/// ops into kSnapshotScan (drawn first, so the default 0.0 keeps every
/// existing (seed, n) trace bit-identical).
inline std::vector<Op> GenerateTrace(uint64_t seed, size_t n,
                                     KeyDistribution dist,
                                     lsm::Key key_domain = 8192,
                                     double snapshot_scan_fraction = 0.0) {
  Rng rng(seed);
  const lsm::Key hot_span = std::max<lsm::Key>(1, key_domain / 64);
  auto sample_key = [&]() -> lsm::Key {
    if (dist == KeyDistribution::kSkewed && rng.NextDouble() < 0.5) {
      return rng.UniformInt(0, hot_span - 1);
    }
    return rng.UniformInt(0, key_domain - 1);
  };
  std::vector<Op> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Op op;
    if (snapshot_scan_fraction > 0.0 &&
        rng.NextDouble() < snapshot_scan_fraction) {
      op.kind = Op::kSnapshotScan;
      op.key = sample_key();
      op.hi = op.key + rng.UniformInt(1, 64);
      ops.push_back(op);
      continue;
    }
    const double r = rng.NextDouble();
    if (r < 0.40) {
      op.kind = Op::kPut;
      op.key = sample_key();
      op.value = rng.Next();
    } else if (r < 0.50) {
      op.kind = Op::kDelete;
      op.key = sample_key();
    } else if (r < 0.80) {
      op.kind = Op::kGet;
      op.key = sample_key();
    } else if (r < 0.95) {
      op.kind = Op::kScan;
      op.key = sample_key();
      op.hi = op.key + rng.UniformInt(1, 64);
    } else {
      op.kind = Op::kFlush;
    }
    ops.push_back(op);
  }
  return ops;
}

/// Deterministically injects one kReconfigure op every `every` ops,
/// cycling through `num_presets` preset indices (stored in Op::value).
/// Applied on top of a GenerateTrace result, so existing traces (same
/// seed) keep their exact op sequence between the injected points.
inline std::vector<Op> InjectReconfigures(std::vector<Op> ops, size_t every,
                                          size_t num_presets) {
  std::vector<Op> out;
  out.reserve(ops.size() + ops.size() / every + 1);
  size_t preset = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i > 0 && i % every == 0) {
      Op r;
      r.kind = Op::kReconfigure;
      r.value = preset++ % num_presets;
      out.push_back(r);
    }
    out.push_back(ops[i]);
  }
  return out;
}

}  // namespace endure::testing

#endif  // ENDURE_TESTS_TESTING_REFERENCE_MODEL_H_
