// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Differential-testing scaffolding: a std::map-backed oracle with the
// engine's exact visible semantics (upsert, tombstone delete, [lo, hi)
// scans) plus a seeded random op-trace generator. Any engine front-end
// with the DB surface (Put/Delete/Get/Scan/Flush) can be driven against
// the oracle; a divergence reports the seed and the first diverging op
// index, which replays deterministically.

#ifndef ENDURE_TESTS_TESTING_REFERENCE_MODEL_H_
#define ENDURE_TESTS_TESTING_REFERENCE_MODEL_H_

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lsm/entry.h"
#include "util/random.h"

namespace endure::testing {

/// The oracle: the visible state an LSM front-end must agree with.
class ReferenceModel {
 public:
  void Put(lsm::Key key, lsm::Value value) { map_[key] = value; }
  void Delete(lsm::Key key) { map_.erase(key); }

  std::optional<lsm::Value> Get(lsm::Key key) const {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  /// Live entries with keys in [lo, hi), ascending.
  std::vector<std::pair<lsm::Key, lsm::Value>> Scan(lsm::Key lo,
                                                    lsm::Key hi) const {
    std::vector<std::pair<lsm::Key, lsm::Value>> out;
    for (auto it = map_.lower_bound(lo); it != map_.end() && it->first < hi;
         ++it) {
      out.emplace_back(it->first, it->second);
    }
    return out;
  }

  size_t size() const { return map_.size(); }

 private:
  std::map<lsm::Key, lsm::Value> map_;
};

/// One operation of a random trace. kReconfigure models a live
/// ApplyTuning call injected mid-trace: `value` indexes the caller's list
/// of tuning presets; the oracle ignores it (a reconfiguration must never
/// change visible contents — that is exactly what the differential
/// harness asserts).
struct Op {
  enum Kind { kPut, kDelete, kGet, kScan, kFlush, kReconfigure } kind = kPut;
  lsm::Key key = 0;
  lsm::Value value = 0;
  lsm::Key hi = 0;  ///< scan upper bound

  std::string ToString() const {
    char buf[96];
    const char* names[] = {"Put", "Delete", "Get",
                           "Scan", "Flush", "Reconfigure"};
    std::snprintf(buf, sizeof(buf), "%s(key=%llu, value=%llu, hi=%llu)",
                  names[kind], static_cast<unsigned long long>(key),
                  static_cast<unsigned long long>(value),
                  static_cast<unsigned long long>(hi));
    return buf;
  }
};

/// Key skew of a generated trace.
enum class KeyDistribution {
  kUniform,  ///< uniform over the whole key domain
  kSkewed,   ///< 50% of ops hit an 1/64 hot range (heavy overwrites)
};

/// Deterministic random trace: same (seed, n, dist, domain) -> same ops.
/// Mix: 40% Put, 10% Delete, 30% Get, 15% Scan (short ranges), 5% Flush.
inline std::vector<Op> GenerateTrace(uint64_t seed, size_t n,
                                     KeyDistribution dist,
                                     lsm::Key key_domain = 8192) {
  Rng rng(seed);
  const lsm::Key hot_span = std::max<lsm::Key>(1, key_domain / 64);
  auto sample_key = [&]() -> lsm::Key {
    if (dist == KeyDistribution::kSkewed && rng.NextDouble() < 0.5) {
      return rng.UniformInt(0, hot_span - 1);
    }
    return rng.UniformInt(0, key_domain - 1);
  };
  std::vector<Op> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Op op;
    const double r = rng.NextDouble();
    if (r < 0.40) {
      op.kind = Op::kPut;
      op.key = sample_key();
      op.value = rng.Next();
    } else if (r < 0.50) {
      op.kind = Op::kDelete;
      op.key = sample_key();
    } else if (r < 0.80) {
      op.kind = Op::kGet;
      op.key = sample_key();
    } else if (r < 0.95) {
      op.kind = Op::kScan;
      op.key = sample_key();
      op.hi = op.key + rng.UniformInt(1, 64);
    } else {
      op.kind = Op::kFlush;
    }
    ops.push_back(op);
  }
  return ops;
}

/// Deterministically injects one kReconfigure op every `every` ops,
/// cycling through `num_presets` preset indices (stored in Op::value).
/// Applied on top of a GenerateTrace result, so existing traces (same
/// seed) keep their exact op sequence between the injected points.
inline std::vector<Op> InjectReconfigures(std::vector<Op> ops, size_t every,
                                          size_t num_presets) {
  std::vector<Op> out;
  out.reserve(ops.size() + ops.size() / every + 1);
  size_t preset = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i > 0 && i % every == 0) {
      Op r;
      r.kind = Op::kReconfigure;
      r.value = preset++ % num_presets;
      out.push_back(r);
    }
    out.push_back(ops[i]);
  }
  return out;
}

}  // namespace endure::testing

#endif  // ENDURE_TESTS_TESTING_REFERENCE_MODEL_H_
