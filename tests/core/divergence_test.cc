#include "core/divergence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/kl.h"
#include "util/random.h"

namespace endure {
namespace {

class DivergenceSweep : public ::testing::TestWithParam<DivergenceKind> {
 protected:
  std::unique_ptr<PhiDivergence> div_ = MakeDivergence(GetParam());
};

TEST_P(DivergenceSweep, GeneratorVanishesAtOne) {
  EXPECT_NEAR(div_->Phi(1.0), 0.0, 1e-12);
}

TEST_P(DivergenceSweep, GeneratorNonNegative) {
  for (double t = 0.0; t <= 6.0; t += 0.05) {
    EXPECT_GE(div_->Phi(t), -1e-12) << div_->name() << " t=" << t;
  }
}

TEST_P(DivergenceSweep, GeneratorConvexOnSamples) {
  for (double a = 0.1; a <= 4.0; a += 0.3) {
    for (double b = a + 0.2; b <= 4.5; b += 0.3) {
      const double mid = div_->Phi((a + b) / 2.0);
      const double chord = (div_->Phi(a) + div_->Phi(b)) / 2.0;
      EXPECT_LE(mid, chord + 1e-10) << div_->name();
    }
  }
}

TEST_P(DivergenceSweep, FenchelYoungInequality) {
  // phi(t) + phi*(s) >= t*s on the conjugate's domain.
  Rng rng(11);
  const double s_cap = std::min(div_->ConjugateDomainSup(), 3.0);
  for (int i = 0; i < 3000; ++i) {
    const double t = rng.Uniform(0.0, 5.0);
    const double s = rng.Uniform(-4.0, s_cap - 1e-6);
    const double lhs = div_->Phi(t) + div_->Conjugate(s);
    EXPECT_GE(lhs, t * s - 1e-8) << div_->name();
  }
}

TEST_P(DivergenceSweep, ConjugateTightOnSampledSuprema) {
  // phi*(s) ~ max_t {ts - phi(t)} over a dense t grid (lower bound check).
  const double s_cap = std::min(div_->ConjugateDomainSup(), 2.0);
  for (double s = -2.0; s < s_cap - 1e-6; s += 0.25) {
    double sup = -1e18;
    for (double t = 0.0; t <= 50.0; t += 0.01) {
      sup = std::max(sup, t * s - div_->Phi(t));
    }
    EXPECT_GE(div_->Conjugate(s) + 1e-6, sup) << div_->name() << " s=" << s;
    EXPECT_NEAR(div_->Conjugate(s), sup, 0.05) << div_->name() << " s=" << s;
  }
}

TEST_P(DivergenceSweep, DivergenceZeroIffEqual) {
  const std::vector<double> p{0.4, 0.3, 0.2, 0.1};
  EXPECT_NEAR(div_->Divergence(p, p), 0.0, 1e-12);
  const std::vector<double> q{0.1, 0.2, 0.3, 0.4};
  EXPECT_GT(div_->Divergence(p, q), 1e-3);
}

TEST_P(DivergenceSweep, DivergenceNonNegativeOnRandomPairs) {
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    const std::vector<double> p = rng.SimplexByCounts(4, 1000);
    const std::vector<double> q = rng.SimplexByCounts(4, 1000);
    EXPECT_GE(div_->Divergence(p, q), -1e-12) << div_->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DivergenceSweep,
    ::testing::Values(DivergenceKind::kKl, DivergenceKind::kChiSquare,
                      DivergenceKind::kTotalVariation,
                      DivergenceKind::kHellinger));

TEST(DivergenceTest, KlGeneratorMatchesKlModule) {
  KlGenerator kl;
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> p = rng.SimplexByCounts(4, 1000);
    const std::vector<double> q = rng.SimplexByCounts(4, 1000);
    const double a = kl.Divergence(p, q);
    const double b = KlDivergence(p, q);
    if (std::isfinite(a) && std::isfinite(b)) {
      EXPECT_NEAR(a, b, 1e-9);
    } else {
      EXPECT_EQ(std::isfinite(a), std::isfinite(b));
    }
  }
}

TEST(DivergenceTest, TotalVariationMatchesHalfL1TimesTwo) {
  // sum_i q_i |p_i/q_i - 1| = sum_i |p_i - q_i| (i.e. 2 * TV distance).
  TotalVariationGenerator tv;
  const std::vector<double> p{0.5, 0.5, 0.0, 0.0};
  const std::vector<double> q{0.25, 0.25, 0.25, 0.25};
  double l1 = 0.0;
  for (int i = 0; i < 4; ++i) l1 += std::fabs(p[i] - q[i]);
  EXPECT_NEAR(tv.Divergence(p, q), l1, 1e-12);
}

TEST(DivergenceTest, ChiSquareKnownValue) {
  ChiSquareGenerator chi;
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> q{0.25, 0.75};
  // sum q (p/q - 1)^2 = 0.25*(1)^2 + 0.75*(1/3)^2 = 0.25 + 0.0833...
  EXPECT_NEAR(chi.Divergence(p, q), 0.25 + 0.75 / 9.0, 1e-12);
}

TEST(DivergenceTest, HellingerBoundedByTwo) {
  HellingerGenerator h;
  Rng rng(19);
  for (int i = 0; i < 300; ++i) {
    const std::vector<double> p = rng.SimplexByCounts(4, 1000);
    const std::vector<double> q = rng.SimplexByCounts(4, 1000);
    const double d = h.Divergence(p, q);
    if (std::isfinite(d)) EXPECT_LE(d, 2.0 + 1e-9);
  }
}

TEST(DivergenceTest, FactoryNamesAndKinds) {
  EXPECT_STREQ(MakeDivergence(DivergenceKind::kKl)->name(), "kl");
  EXPECT_STREQ(MakeDivergence(DivergenceKind::kChiSquare)->name(), "chi2");
  EXPECT_STREQ(MakeDivergence(DivergenceKind::kTotalVariation)->name(),
               "tv");
  EXPECT_STREQ(MakeDivergence(DivergenceKind::kHellinger)->name(),
               "hellinger");
  EXPECT_EQ(AllDivergenceKinds().size(), 4u);
}

}  // namespace
}  // namespace endure
