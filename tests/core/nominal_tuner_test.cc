#include "core/nominal_tuner.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "workload/expected_workloads.h"

namespace endure {
namespace {

TEST(NominalTunerTest, ResultRespectsBounds) {
  SystemConfig cfg;
  CostModel m(cfg);
  NominalTuner tuner(m);
  TuningResult r = tuner.Tune(Workload(0.3, 0.3, 0.3, 0.1));
  EXPECT_TRUE(r.tuning.Validate(cfg).ok());
  EXPECT_GT(r.objective, 0.0);
  EXPECT_GT(r.evaluations, 0);
}

TEST(NominalTunerTest, BeatsOrMatchesPolicyRestrictedSearch) {
  SystemConfig cfg;
  CostModel m(cfg);
  NominalTuner tuner(m);
  Workload w(0.2, 0.3, 0.3, 0.2);
  TuningResult all = tuner.Tune(w);
  TuningResult lvl = tuner.TunePolicy(w, Policy::kLeveling);
  TuningResult tier = tuner.TunePolicy(w, Policy::kTiering);
  EXPECT_LE(all.objective, lvl.objective + 1e-9);
  EXPECT_LE(all.objective, tier.objective + 1e-9);
}

TEST(NominalTunerTest, ObjectiveMatchesModelCost) {
  SystemConfig cfg;
  CostModel m(cfg);
  NominalTuner tuner(m);
  Workload w(0.4, 0.2, 0.2, 0.2);
  TuningResult r = tuner.Tune(w);
  EXPECT_NEAR(r.objective, m.Cost(w, r.tuning), 1e-9);
}

TEST(NominalTunerTest, WriteHeavyWorkloadAvoidsLargeT) {
  // Write cost grows with T under leveling; a 97%-write workload must not
  // pick a huge size ratio.
  SystemConfig cfg;
  CostModel m(cfg);
  NominalTuner tuner(m);
  TuningResult r = tuner.Tune(Workload(0.01, 0.01, 0.01, 0.97));
  EXPECT_LT(r.tuning.size_ratio, 30.0);
}

TEST(NominalTunerTest, RangeHeavyWorkloadPrefersLargeTLeveling) {
  // Matches the paper's w3 tuning (T saturates at the cap, leveling).
  SystemConfig cfg;
  CostModel m(cfg);
  NominalTuner tuner(m);
  TuningResult r = tuner.Tune(Workload(0.01, 0.01, 0.97, 0.01));
  EXPECT_EQ(r.tuning.policy, Policy::kLeveling);
  EXPECT_GT(r.tuning.size_ratio, 95.0);
}

TEST(NominalTunerTest, EmptyReadHeavyWorkloadBuysBloomFilters) {
  // The paper's w1 nominal: h ~ 9.4 bits/entry.
  SystemConfig cfg;
  CostModel m(cfg);
  NominalTuner tuner(m);
  TuningResult r = tuner.Tune(Workload(0.97, 0.01, 0.01, 0.01));
  EXPECT_GT(r.tuning.filter_bits_per_entry, 7.0);
}

TEST(NominalTunerTest, ReproducesPaperW11Tuning) {
  // Paper Fig. 9/11: w11 nominal = leveling, T ~ 47, h ~ 4.7.
  SystemConfig cfg;
  CostModel m(cfg);
  NominalTuner tuner(m);
  TuningResult r = tuner.Tune(workload::GetExpectedWorkload(11).workload);
  EXPECT_EQ(r.tuning.policy, Policy::kLeveling);
  EXPECT_NEAR(r.tuning.size_ratio, 47.0, 8.0);
  EXPECT_NEAR(r.tuning.filter_bits_per_entry, 4.7, 1.0);
}

TEST(NominalTunerTest, ReproducesPaperW7PolicyChoice) {
  // Paper Fig. 8: w7 nominal is tiering (write-heavy bimodal).
  SystemConfig cfg;
  CostModel m(cfg);
  NominalTuner tuner(m);
  TuningResult r = tuner.Tune(workload::GetExpectedWorkload(7).workload);
  EXPECT_EQ(r.tuning.policy, Policy::kTiering);
}

TEST(NominalTunerTest, TuningIsNoWorseThanRandomProbes) {
  SystemConfig cfg;
  CostModel m(cfg);
  NominalTuner tuner(m);
  Workload w(0.25, 0.25, 0.25, 0.25);
  TuningResult r = tuner.Tune(w);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    Tuning probe(rng.NextDouble() < 0.5 ? Policy::kLeveling
                                        : Policy::kTiering,
                 rng.Uniform(2.0, 100.0), rng.Uniform(0.0, 9.9));
    EXPECT_LE(r.objective, m.Cost(w, probe) + 1e-9);
  }
}

TEST(NominalTunerTest, SolveIsFast) {
  // The paper reports tuning in < 10 ms; allow a generous margin for CI.
  SystemConfig cfg;
  CostModel m(cfg);
  NominalTuner tuner(m);
  TuningResult r = tuner.Tune(Workload(0.3, 0.3, 0.3, 0.1));
  EXPECT_LT(r.solve_seconds, 0.5);
}

// All 15 expected workloads produce valid tunings (Table 2 sweep).
class NominalAllWorkloads : public ::testing::TestWithParam<int> {};

TEST_P(NominalAllWorkloads, ValidTuningAndConsistentObjective) {
  SystemConfig cfg;
  CostModel m(cfg);
  NominalTuner tuner(m);
  const Workload w = workload::GetExpectedWorkload(GetParam()).workload;
  TuningResult r = tuner.Tune(w);
  EXPECT_TRUE(r.tuning.Validate(cfg).ok());
  EXPECT_NEAR(r.objective, m.Cost(w, r.tuning), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Table2, NominalAllWorkloads,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace endure
