#include "core/kl.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace endure {
namespace {

TEST(KlTest, ZeroForIdenticalDistributions) {
  const std::vector<double> p{0.25, 0.25, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(KlDivergence(p, p), 0.0);
}

TEST(KlTest, KnownValueTwoPoint) {
  // KL((1,0), (0.5,0.5)) = log 2.
  EXPECT_NEAR(KlDivergence({1.0, 0.0}, {0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(KlTest, ZeroNumeratorContributesNothing) {
  EXPECT_NEAR(KlDivergence({0.0, 1.0}, {0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(KlTest, InfiniteWhenSupportMismatch) {
  EXPECT_TRUE(std::isinf(KlDivergence({0.5, 0.5}, {1.0, 0.0})));
}

TEST(KlTest, NonNegativeOnRandomDistributions) {
  Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> p = rng.SimplexByCounts(4, 1000);
    const std::vector<double> q = rng.SimplexByCounts(4, 1000);
    const double kl = KlDivergence(p, q);
    if (std::isfinite(kl)) EXPECT_GE(kl, -1e-12);
  }
}

TEST(KlTest, AsymmetricInGeneral) {
  const std::vector<double> p{0.7, 0.1, 0.1, 0.1};
  const std::vector<double> q{0.25, 0.25, 0.25, 0.25};
  EXPECT_GT(std::fabs(KlDivergence(p, q) - KlDivergence(q, p)), 1e-6);
}

TEST(KlTest, WorkloadOverload) {
  Workload p(0.97, 0.01, 0.01, 0.01);
  Workload u(0.25, 0.25, 0.25, 0.25);
  const double expected = 0.97 * std::log(0.97 / 0.25) +
                          3 * 0.01 * std::log(0.01 / 0.25);
  EXPECT_NEAR(KlDivergence(p, u), expected, 1e-12);
}

TEST(PhiKlTest, GeneratorProperties) {
  EXPECT_DOUBLE_EQ(PhiKl(1.0), 0.0);   // phi(1) = 0
  EXPECT_DOUBLE_EQ(PhiKl(0.0), 1.0);   // limit at 0
  EXPECT_GT(PhiKl(2.0), 0.0);          // strictly convex, min at 1
  EXPECT_GT(PhiKl(0.5), 0.0);
}

TEST(PhiKlTest, ConjugateIsExpm1) {
  EXPECT_DOUBLE_EQ(PhiKlConjugate(0.0), 0.0);
  EXPECT_NEAR(PhiKlConjugate(1.0), std::exp(1.0) - 1.0, 1e-12);
  EXPECT_NEAR(PhiKlConjugate(-30.0), -1.0, 1e-10);
}

TEST(PhiKlTest, FenchelYoungInequality) {
  // phi(t) + phi*(s) >= t*s for all t >= 0, s.
  Rng rng(33);
  for (int i = 0; i < 2000; ++i) {
    const double t = rng.Uniform(0.0, 5.0);
    const double s = rng.Uniform(-3.0, 3.0);
    EXPECT_GE(PhiKl(t) + PhiKlConjugate(s) - t * s, -1e-9);
  }
}

TEST(LogSumExpTest, MatchesDirectComputationWhenSafe) {
  const std::vector<double> w{0.2, 0.3, 0.4, 0.1};
  const std::vector<double> c{1.0, 2.0, 0.5, 3.0};
  const double lambda = 2.0;
  double direct = 0.0;
  for (int i = 0; i < 4; ++i) direct += w[i] * std::exp(c[i] / lambda);
  EXPECT_NEAR(LogSumExpTilt(w, c, lambda), std::log(direct), 1e-12);
}

TEST(LogSumExpTest, StableForTinyLambda) {
  const std::vector<double> w{0.5, 0.5};
  const std::vector<double> c{1.0, 2.0};
  // lambda -> 0: lambda * LSE -> max c_i over the support.
  const double lambda = 1e-9;
  EXPECT_NEAR(lambda * LogSumExpTilt(w, c, lambda), 2.0, 1e-6);
}

TEST(LogSumExpTest, IgnoresZeroWeightComponents) {
  const std::vector<double> w{0.0, 1.0};
  const std::vector<double> c{1e9, 1.0};  // huge cost has zero weight
  EXPECT_NEAR(LogSumExpTilt(w, c, 1.0), 1.0, 1e-12);
}

TEST(TiltedDistributionTest, NormalizedAndTiltedTowardCost) {
  const std::vector<double> w{0.25, 0.25, 0.25, 0.25};
  const std::vector<double> c{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> p = TiltedDistribution(w, c, 1.0);
  double sum = 0.0;
  for (double pi : p) sum += pi;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Higher-cost components get more mass.
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
  EXPECT_LT(p[2], p[3]);
}

TEST(TiltedDistributionTest, LargeLambdaRecoversBase) {
  const std::vector<double> w{0.1, 0.2, 0.3, 0.4};
  const std::vector<double> c{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> p = TiltedDistribution(w, c, 1e9);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(p[i], w[i], 1e-6);
}

TEST(TiltedDistributionTest, TinyLambdaConcentratesOnArgmax) {
  const std::vector<double> w{0.25, 0.25, 0.25, 0.25};
  const std::vector<double> c{1.0, 5.0, 2.0, 3.0};
  const std::vector<double> p = TiltedDistribution(w, c, 1e-3);
  EXPECT_NEAR(p[1], 1.0, 1e-9);
}

}  // namespace
}  // namespace endure
