#include "core/robust_tuner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/kl.h"
#include "core/metrics.h"
#include "util/random.h"
#include "workload/expected_workloads.h"

namespace endure {
namespace {

class RobustTunerTest : public ::testing::Test {
 protected:
  SystemConfig cfg_;
  CostModel model_{SystemConfig{}};
  RobustTuner tuner_{model_};
  NominalTuner nominal_{model_};
};

TEST_F(RobustTunerTest, ZeroRhoEqualsNominalCost) {
  Workload w(0.33, 0.33, 0.33, 0.01);
  Tuning t(Policy::kLeveling, 10.0, 4.0);
  EXPECT_NEAR(tuner_.RobustCost(w, 0.0, t), model_.Cost(w, t), 1e-12);
}

TEST_F(RobustTunerTest, RobustCostIncreasesWithRho) {
  Workload w(0.33, 0.33, 0.33, 0.01);
  Tuning t(Policy::kLeveling, 10.0, 4.0);
  double prev = model_.Cost(w, t);
  for (double rho : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    const double rc = tuner_.RobustCost(w, rho, t);
    EXPECT_GE(rc, prev - 1e-9) << "rho=" << rho;
    prev = rc;
  }
}

TEST_F(RobustTunerTest, RobustCostBoundedByWorstComponent) {
  // The KL ball is inside the simplex, so the worst case never exceeds
  // max_i c_i.
  Workload w(0.25, 0.25, 0.25, 0.25);
  Tuning t(Policy::kTiering, 15.0, 3.0);
  const CostVector c = model_.Costs(t);
  double cmax = 0.0;
  for (int i = 0; i < kNumQueryClasses; ++i) cmax = std::max(cmax, c[i]);
  for (double rho : {0.5, 2.0, 10.0, 100.0}) {
    EXPECT_LE(tuner_.RobustCost(w, rho, t), cmax * (1.0 + 1e-4));
  }
}

TEST_F(RobustTunerTest, HugeRhoApproachesWorstComponent) {
  Workload w(0.25, 0.25, 0.25, 0.25);
  Tuning t(Policy::kLeveling, 10.0, 5.0);
  const CostVector c = model_.Costs(t);
  double cmax = 0.0;
  for (int i = 0; i < kNumQueryClasses; ++i) cmax = std::max(cmax, c[i]);
  EXPECT_NEAR(tuner_.RobustCost(w, 50.0, t), cmax, cmax * 0.02);
}

TEST_F(RobustTunerTest, WorstCaseWorkloadInsideBall) {
  Workload w(0.33, 0.33, 0.33, 0.01);
  for (double rho : {0.25, 1.0, 2.0}) {
    DualSolution sol = tuner_.SolveInner(w, rho, Tuning(Policy::kLeveling,
                                                        10.0, 4.0));
    EXPECT_TRUE(sol.worst_case.Validate(1e-6).ok());
    // The maximizer sits on the ball boundary (KL = rho) unless degenerate.
    EXPECT_LE(KlDivergence(sol.worst_case, w), rho + 1e-6);
    EXPECT_NEAR(KlDivergence(sol.worst_case, w), rho, 0.05);
  }
}

TEST_F(RobustTunerTest, InnerValueMatchesPrimalEvaluation) {
  // g(lambda*) must equal the expected cost under the worst-case workload.
  Workload w(0.2, 0.3, 0.4, 0.1);
  Tuning t(Policy::kTiering, 8.0, 2.0);
  DualSolution sol = tuner_.SolveInner(w, 1.0, t);
  EXPECT_NEAR(sol.value, model_.Cost(sol.worst_case, t), 1e-6);
}

TEST_F(RobustTunerTest, InnerSolutionDominatesRandomBallMembers) {
  // No workload inside the KL ball may cost more than the dual value.
  Workload w(0.33, 0.33, 0.33, 0.01);
  Tuning t(Policy::kLeveling, 12.0, 3.0);
  const double rho = 0.8;
  const double worst = tuner_.RobustCost(w, rho, t);
  Rng rng(17);
  int inside = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::vector<double> p = rng.SimplexByCounts(4, 10000);
    const Workload cand(p[0], p[1], p[2], p[3]);
    if (KlDivergence(cand, w) <= rho) {
      ++inside;
      EXPECT_LE(model_.Cost(cand, t), worst + 1e-6);
    }
  }
  EXPECT_GT(inside, 10);  // the check must actually exercise the ball
}

TEST_F(RobustTunerTest, TuneZeroRhoMatchesNominal) {
  Workload w = workload::GetExpectedWorkload(11).workload;
  TuningResult robust = tuner_.Tune(w, 0.0);
  TuningResult nominal = nominal_.Tune(w);
  EXPECT_NEAR(robust.objective, nominal.objective, 1e-5);
  EXPECT_EQ(robust.tuning.policy, nominal.tuning.policy);
}

TEST_F(RobustTunerTest, RobustTuningIsMinimaxOptimalVsNominal) {
  // The nominal tuning can never have a lower worst-case cost than the
  // robust tuning (the robust tuner minimizes exactly that).
  Workload w = workload::GetExpectedWorkload(7).workload;
  const double rho = 1.0;
  TuningResult robust = tuner_.Tune(w, rho);
  TuningResult nominal = nominal_.Tune(w);
  EXPECT_LE(robust.objective,
            tuner_.RobustCost(w, rho, nominal.tuning) + 1e-6);
}

TEST_F(RobustTunerTest, RhoShrinksSizeRatioForReadHeavyWorkloads) {
  // Paper Fig. 5: w11 robust tunings move from T~47 to T~5.5 as rho grows.
  Workload w = workload::GetExpectedWorkload(11).workload;
  TuningResult r0 = tuner_.Tune(w, 0.0);
  TuningResult r2 = tuner_.Tune(w, 2.0);
  EXPECT_GT(r0.tuning.size_ratio, 35.0);
  EXPECT_LT(r2.tuning.size_ratio, 12.0);
}

TEST_F(RobustTunerTest, JointDualAgreesWithAnalyticEta) {
  Workload w = workload::GetExpectedWorkload(11).workload;
  const double rho = 0.5;
  TuningResult fast = tuner_.TunePolicy(w, rho, Policy::kLeveling);
  TuningResult joint = tuner_.TuneJointDual(w, rho, Policy::kLeveling);
  EXPECT_NEAR(fast.objective, joint.objective,
              1e-3 * std::max(1.0, fast.objective));
}

TEST_F(RobustTunerTest, LevelingChosenOverTieringUnderUncertainty) {
  // Section 8.4: "leveling is more robust than tiering".
  for (int idx : {5, 7, 9, 11, 12}) {
    Workload w = workload::GetExpectedWorkload(idx).workload;
    TuningResult r = tuner_.Tune(w, 1.0);
    EXPECT_EQ(r.tuning.policy, Policy::kLeveling) << "workload " << idx;
  }
}

TEST_F(RobustTunerTest, DualValueConvexInLambdaSamples) {
  // Sample g(lambda) on a log grid and check discrete convexity.
  Workload w(0.3, 0.3, 0.3, 0.1);
  Tuning t(Policy::kLeveling, 10.0, 4.0);
  const auto warr = w.AsArray();
  const std::vector<double> wv(warr.begin(), warr.end());
  const std::vector<double> cv = model_.Costs(t).AsVector();
  const double rho = 0.7;
  std::vector<double> lambdas, g;
  for (double l = 0.05; l < 40.0; l *= 1.4) {
    lambdas.push_back(l);
    g.push_back(l * (rho + LogSumExpTilt(wv, cv, l)));
  }
  for (size_t i = 1; i + 1 < g.size(); ++i) {
    const double t_mid = (lambdas[i] - lambdas[i - 1]) /
                         (lambdas[i + 1] - lambdas[i - 1]);
    const double chord = g[i - 1] * (1.0 - t_mid) + g[i + 1] * t_mid;
    EXPECT_LE(g[i], chord + 1e-9);
  }
}

TEST_F(RobustTunerTest, DegenerateEqualCostVectorReturnsNominal) {
  // If all query classes cost the same, uncertainty is irrelevant. Build
  // such a scenario synthetically through the dual internals by using a
  // tuning where costs are nearly equal is hard; instead verify the robust
  // cost never drops below nominal.
  Workload w(0.4, 0.1, 0.1, 0.4);
  Tuning t(Policy::kLeveling, 4.0, 2.0);
  EXPECT_GE(tuner_.RobustCost(w, 0.3, t), model_.Cost(w, t) - 1e-9);
}

// Sweep: for every Table 2 workload and several rho, the robust tuning is
// valid and its objective is monotone in rho.
class RobustAllWorkloads : public ::testing::TestWithParam<int> {};

TEST_P(RobustAllWorkloads, ValidAndMonotoneInRho) {
  SystemConfig cfg;
  CostModel model{cfg};
  RobustTuner tuner{model};
  const Workload w = workload::GetExpectedWorkload(GetParam()).workload;
  double prev = -1.0;
  for (double rho : {0.0, 0.5, 1.5}) {
    TuningResult r = tuner.Tune(w, rho);
    EXPECT_TRUE(r.tuning.Validate(cfg).ok());
    EXPECT_GE(r.objective, prev - 1e-9);
    prev = r.objective;
  }
}

INSTANTIATE_TEST_SUITE_P(Table2, RobustAllWorkloads,
                         ::testing::Values(0, 1, 3, 4, 6, 8, 10, 11, 13, 14));

}  // namespace
}  // namespace endure
