#include "core/workload.h"

#include <gtest/gtest.h>

namespace endure {
namespace {

TEST(WorkloadTest, DefaultIsUniform) {
  Workload w;
  EXPECT_TRUE(w.Validate().ok());
  EXPECT_DOUBLE_EQ(w.Sum(), 1.0);
  EXPECT_DOUBLE_EQ(w.z0, 0.25);
}

TEST(WorkloadTest, IndexAccessMatchesFields) {
  Workload w(0.1, 0.2, 0.3, 0.4);
  EXPECT_DOUBLE_EQ(w[kEmptyPointQuery], 0.1);
  EXPECT_DOUBLE_EQ(w[kNonEmptyPointQuery], 0.2);
  EXPECT_DOUBLE_EQ(w[kRangeQuery], 0.3);
  EXPECT_DOUBLE_EQ(w[kWrite], 0.4);
}

TEST(WorkloadTest, MutableIndexAccess) {
  Workload w(0.1, 0.2, 0.3, 0.4);
  w[kRangeQuery] = 0.5;
  EXPECT_DOUBLE_EQ(w.q, 0.5);
}

TEST(WorkloadTest, ValidateRejectsNegative) {
  Workload w(-0.1, 0.5, 0.3, 0.3);
  EXPECT_FALSE(w.Validate().ok());
}

TEST(WorkloadTest, ValidateRejectsBadSum) {
  Workload w(0.5, 0.5, 0.5, 0.5);
  EXPECT_FALSE(w.Validate().ok());
}

TEST(WorkloadTest, ValidateToleranceAccepted) {
  Workload w(0.25, 0.25, 0.25, 0.25 + 5e-10);
  EXPECT_TRUE(w.Validate(1e-9).ok());
}

TEST(WorkloadTest, NormalizedScalesToOne) {
  Workload w(2.0, 2.0, 4.0, 8.0);
  Workload n = w.Normalized();
  EXPECT_TRUE(n.Validate().ok());
  EXPECT_DOUBLE_EQ(n.z0, 0.125);
  EXPECT_DOUBLE_EQ(n.w, 0.5);
}

TEST(WorkloadTest, DominantClass) {
  EXPECT_EQ(Workload(0.7, 0.1, 0.1, 0.1).Dominant(), kEmptyPointQuery);
  EXPECT_EQ(Workload(0.1, 0.1, 0.1, 0.7).Dominant(), kWrite);
  EXPECT_EQ(Workload(0.1, 0.6, 0.2, 0.1).Dominant(), kNonEmptyPointQuery);
}

TEST(WorkloadTest, AsArrayRoundTrips) {
  Workload w(0.4, 0.3, 0.2, 0.1);
  const auto a = w.AsArray();
  for (int i = 0; i < kNumQueryClasses; ++i) EXPECT_DOUBLE_EQ(a[i], w[i]);
}

TEST(WorkloadTest, ToStringPercent) {
  Workload w(0.97, 0.01, 0.01, 0.01);
  EXPECT_EQ(w.ToString(), "(97%, 1%, 1%, 1%)");
}

TEST(WorkloadTest, FromCountsNormalizes) {
  Workload w = WorkloadFromCounts({10.0, 30.0, 40.0, 20.0});
  EXPECT_TRUE(w.Validate().ok());
  EXPECT_DOUBLE_EQ(w.z1, 0.3);
}

TEST(QueryClassTest, Names) {
  EXPECT_STREQ(QueryClassName(kEmptyPointQuery), "z0");
  EXPECT_STREQ(QueryClassName(kNonEmptyPointQuery), "z1");
  EXPECT_STREQ(QueryClassName(kRangeQuery), "q");
  EXPECT_STREQ(QueryClassName(kWrite), "w");
}

}  // namespace
}  // namespace endure
