#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace endure {
namespace {

SystemConfig IntegerCfg() {
  SystemConfig cfg;
  cfg.level_policy = LevelPolicy::kInteger;
  return cfg;
}

TEST(CostModelTest, LevelsFormulaMatchesEq1) {
  CostModel m(IntegerCfg());
  Tuning t(Policy::kLeveling, 10.0, 0.0);
  // m_buf = 10 bits/entry * 1e7 = 1e8 bits; N*E/m_buf = 819.2.
  const double expected = std::ceil(std::log(820.2) / std::log(10.0));
  EXPECT_EQ(m.Levels(t), static_cast<int>(expected));
}

TEST(CostModelTest, LevelsShrinkWithLargerT) {
  CostModel m(IntegerCfg());
  int prev = 1000;
  for (double T : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    Tuning t(Policy::kLeveling, T, 2.0);
    EXPECT_LE(m.Levels(t), prev);
    prev = m.Levels(t);
  }
}

TEST(CostModelTest, LevelsGrowWhenBufferShrinks) {
  CostModel m(IntegerCfg());
  // More filter memory -> less buffer -> more levels (weakly).
  Tuning small_h(Policy::kLeveling, 8.0, 0.5);
  Tuning big_h(Policy::kLeveling, 8.0, 9.5);
  EXPECT_LE(m.Levels(small_h), m.Levels(big_h));
}

TEST(CostModelTest, FractionalLevelsBracketInteger) {
  SystemConfig frac_cfg;  // default fractional
  CostModel frac(frac_cfg);
  CostModel integer(IntegerCfg());
  for (double T : {3.0, 7.5, 21.0, 64.0}) {
    Tuning t(Policy::kLeveling, T, 3.0);
    EXPECT_LE(frac.EffectiveLevels(t), integer.EffectiveLevels(t));
    EXPECT_GT(frac.EffectiveLevels(t), integer.EffectiveLevels(t) - 1.0);
  }
}

TEST(CostModelTest, FalsePositiveRatesAreValidProbabilities) {
  CostModel m(IntegerCfg());
  for (double T : {2.0, 5.0, 20.0, 90.0}) {
    for (double h : {0.0, 1.0, 5.0, 9.5}) {
      Tuning t(Policy::kLeveling, T, h);
      for (int i = 1; i <= m.Levels(t); ++i) {
        const double f = m.FalsePositiveRate(t, i);
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, 1.0);
      }
    }
  }
}

TEST(CostModelTest, MonkeyGivesDeeperLevelsHigherFpr) {
  CostModel m(IntegerCfg());
  Tuning t(Policy::kLeveling, 6.0, 6.0);
  for (int i = 1; i < m.Levels(t); ++i) {
    EXPECT_LE(m.FalsePositiveRate(t, i), m.FalsePositiveRate(t, i + 1));
  }
}

TEST(CostModelTest, MoreFilterMemoryLowersZ0) {
  CostModel m(IntegerCfg());
  double prev = 1e18;
  for (double h : {0.0, 2.0, 4.0, 6.0, 8.0}) {
    Tuning t(Policy::kLeveling, 8.0, h);
    const double z0 = m.EmptyPointQueryCost(t);
    EXPECT_LE(z0, prev + 1e-12);
    prev = z0;
  }
}

TEST(CostModelTest, TieringReadsCostMoreThanLeveling) {
  CostModel m(IntegerCfg());
  for (double T : {3.0, 8.0, 20.0}) {
    Tuning lvl(Policy::kLeveling, T, 5.0);
    Tuning tier(Policy::kTiering, T, 5.0);
    EXPECT_LE(m.EmptyPointQueryCost(lvl), m.EmptyPointQueryCost(tier));
    EXPECT_LE(m.NonEmptyPointQueryCost(lvl),
              m.NonEmptyPointQueryCost(tier) + 1e-12);
    EXPECT_LE(m.RangeQueryCost(lvl), m.RangeQueryCost(tier));
  }
}

TEST(CostModelTest, LevelingWritesCostMoreThanTiering) {
  CostModel m(IntegerCfg());
  for (double T : {3.0, 8.0, 20.0}) {
    Tuning lvl(Policy::kLeveling, T, 5.0);
    Tuning tier(Policy::kTiering, T, 5.0);
    EXPECT_GE(m.WriteCost(lvl), m.WriteCost(tier));
  }
}

TEST(CostModelTest, PoliciesCoincideAtT2) {
  // Eq. (16) note: at T = 2 tiering and leveling behave identically.
  CostModel m(IntegerCfg());
  Tuning lvl(Policy::kLeveling, 2.0, 5.0);
  Tuning tier(Policy::kTiering, 2.0, 5.0);
  EXPECT_NEAR(m.WriteCost(lvl), m.WriteCost(tier), 1e-12);
  EXPECT_NEAR(m.EmptyPointQueryCost(lvl), m.EmptyPointQueryCost(tier),
              1e-12);
  EXPECT_NEAR(m.RangeQueryCost(lvl), m.RangeQueryCost(tier), 1e-12);
}

TEST(CostModelTest, NonEmptyPointQueryCostAtLeastOne) {
  // The hit itself always costs one I/O.
  CostModel m(IntegerCfg());
  for (double T : {2.0, 10.0, 50.0}) {
    for (double h : {0.0, 5.0, 9.0}) {
      Tuning t(Policy::kTiering, T, h);
      EXPECT_GE(m.NonEmptyPointQueryCost(t), 1.0 - 1e-9);
    }
  }
}

TEST(CostModelTest, RangeCostMatchesClosedForm) {
  CostModel m(IntegerCfg());
  Tuning lvl(Policy::kLeveling, 10.0, 2.0);
  const double scan = 2e-7 * 1e7 / 4.0;  // 0.5 pages
  EXPECT_NEAR(m.RangeQueryCost(lvl), scan + m.Levels(lvl), 1e-12);
  Tuning tier(Policy::kTiering, 10.0, 2.0);
  EXPECT_NEAR(m.RangeQueryCost(tier), scan + m.Levels(tier) * 9.0, 1e-12);
}

TEST(CostModelTest, WriteCostMatchesClosedForm) {
  CostModel m(IntegerCfg());
  Tuning lvl(Policy::kLeveling, 10.0, 2.0);
  const double L = m.Levels(lvl);
  EXPECT_NEAR(m.WriteCost(lvl), L / 4.0 * (9.0 / 2.0) * 2.0, 1e-12);
  Tuning tier(Policy::kTiering, 10.0, 2.0);
  const double Lt = m.Levels(tier);
  EXPECT_NEAR(m.WriteCost(tier), Lt / 4.0 * (9.0 / 10.0) * 2.0, 1e-12);
}

TEST(CostModelTest, WriteCostScalesWithAsymmetry) {
  SystemConfig cfg = IntegerCfg();
  cfg.read_write_asymmetry = 3.0;
  CostModel m3(cfg);
  CostModel m1(IntegerCfg());
  Tuning t(Policy::kLeveling, 10.0, 2.0);
  EXPECT_NEAR(m3.WriteCost(t), m1.WriteCost(t) * (1.0 + 3.0) / 2.0, 1e-12);
}

TEST(CostModelTest, CostIsWorkloadWeightedSum) {
  CostModel m(IntegerCfg());
  Tuning t(Policy::kLeveling, 10.0, 5.0);
  Workload w(0.1, 0.2, 0.3, 0.4);
  const CostVector c = m.Costs(t);
  EXPECT_NEAR(m.Cost(w, t),
              0.1 * c.z0 + 0.2 * c.z1 + 0.3 * c.q + 0.4 * c.w, 1e-12);
  EXPECT_NEAR(m.Throughput(w, t), 1.0 / m.Cost(w, t), 1e-15);
}

TEST(CostModelTest, CostVectorIndexing) {
  CostModel m(IntegerCfg());
  const CostVector c = m.Costs(Tuning(Policy::kTiering, 5.0, 3.0));
  EXPECT_DOUBLE_EQ(c[kEmptyPointQuery], c.z0);
  EXPECT_DOUBLE_EQ(c[kNonEmptyPointQuery], c.z1);
  EXPECT_DOUBLE_EQ(c[kRangeQuery], c.q);
  EXPECT_DOUBLE_EQ(c[kWrite], c.w);
  const std::vector<double> v = c.AsVector();
  EXPECT_EQ(v.size(), 4u);
}

TEST(CostModelTest, FullTreeEntriesClosedForm) {
  CostModel m(IntegerCfg());
  Tuning t(Policy::kLeveling, 10.0, 0.0);
  const double buf_entries = t.buffer_memory_bits(m.config()) / 8192.0;
  const double L = m.Levels(t);
  EXPECT_NEAR(m.FullTreeEntries(t), (std::pow(10.0, L) - 1.0) * buf_entries,
              1e-6);
}

TEST(CostModelTest, FractionalModelContinuousAcrossLevelBoundary) {
  CostModel m{SystemConfig{}};  // fractional default
  // Find a T where integer L jumps; fractional cost must not jump.
  Workload w(0.25, 0.25, 0.25, 0.25);
  Tuning a(Policy::kLeveling, 28.64, 0.0);
  Tuning b(Policy::kLeveling, 28.66, 0.0);
  EXPECT_NEAR(m.Cost(w, a), m.Cost(w, b), 0.02);
}

TEST(CostModelTest, IntegerModelJumpsAcrossLevelBoundary) {
  // At h = 0, L flips from 3 to 2 at T = sqrt(820.2) ~ 28.639.
  CostModel m(IntegerCfg());
  Workload w(0.0, 0.0, 1.0, 0.0);  // pure range: Q = scan + L
  Tuning a(Policy::kLeveling, 28.60, 0.0);
  Tuning b(Policy::kLeveling, 28.67, 0.0);
  EXPECT_EQ(m.Levels(a), 3);
  EXPECT_EQ(m.Levels(b), 2);
  EXPECT_NEAR(m.Cost(w, a) - m.Cost(w, b), 1.0, 1e-9);
}

TEST(CostModelTest, FractionalAndIntegerAgreeAtIntegralL) {
  // Construct a config where L is exactly integral: N*E/m_buf + 1 = T^k.
  SystemConfig cfg;
  cfg.num_entries = 1e6;
  cfg.entry_size_bits = 1000.0;
  // m_buf fixed via h = 0: m_buf = 10 * 1e6 = 1e7 bits.
  // N*E/m_buf + 1 = 101 -> pick T so that T^2 = 101 -> T = sqrt(101).
  const double T = std::sqrt(101.0);
  SystemConfig frac = cfg;
  SystemConfig integer = cfg;
  integer.level_policy = LevelPolicy::kInteger;
  CostModel mf(frac), mi(integer);
  Tuning t(Policy::kLeveling, T, 0.0);
  EXPECT_NEAR(mf.EffectiveLevels(t), 2.0, 1e-9);
  EXPECT_EQ(mi.Levels(t), 2);
  Workload w(0.25, 0.25, 0.25, 0.25);
  EXPECT_NEAR(mf.Cost(w, t), mi.Cost(w, t), 1e-6);
}

// Parameterized invariant sweep over the tuning grid.
struct GridCase {
  double T;
  double h;
  Policy policy;
};

class CostModelGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(CostModelGrid, AllCostsFiniteNonNegativeBothPolicies) {
  const GridCase& c = GetParam();
  for (LevelPolicy lp : {LevelPolicy::kFractional, LevelPolicy::kInteger}) {
    SystemConfig cfg;
    cfg.level_policy = lp;
    CostModel m(cfg);
    Tuning t(c.policy, c.T, c.h);
    const CostVector cv = m.Costs(t);
    for (int i = 0; i < kNumQueryClasses; ++i) {
      EXPECT_TRUE(std::isfinite(cv[i])) << "i=" << i;
      EXPECT_GE(cv[i], 0.0) << "i=" << i;
    }
    EXPECT_GE(cv.z1, 0.999);  // the hit costs at least ~1 I/O
  }
}

INSTANTIATE_TEST_SUITE_P(
    TuningGrid, CostModelGrid,
    ::testing::Values(GridCase{2.0, 0.0, Policy::kLeveling},
                      GridCase{2.0, 9.8, Policy::kTiering},
                      GridCase{5.0, 1.0, Policy::kLeveling},
                      GridCase{5.0, 5.0, Policy::kTiering},
                      GridCase{10.0, 9.0, Policy::kLeveling},
                      GridCase{25.0, 0.5, Policy::kTiering},
                      GridCase{50.0, 3.0, Policy::kLeveling},
                      GridCase{100.0, 7.0, Policy::kTiering},
                      GridCase{100.0, 0.0, Policy::kLeveling}));

}  // namespace
}  // namespace endure
