#include "core/metrics.h"

#include <gtest/gtest.h>

namespace endure {
namespace {

TEST(MetricsTest, DeltaZeroForSameTuning) {
  CostModel m{SystemConfig{}};
  Tuning t(Policy::kLeveling, 10.0, 5.0);
  Workload w;
  EXPECT_NEAR(DeltaThroughput(m, w, t, t), 0.0, 1e-15);
}

TEST(MetricsTest, DeltaPositiveWhenSecondIsBetter) {
  CostModel m{SystemConfig{}};
  Workload reads(0.49, 0.49, 0.01, 0.01);
  Tuning bad(Policy::kTiering, 50.0, 0.0);   // awful for point reads
  Tuning good(Policy::kLeveling, 6.0, 9.0);  // read-optimized
  EXPECT_GT(DeltaThroughput(m, reads, bad, good), 0.0);
  EXPECT_LT(DeltaThroughput(m, reads, good, bad), 0.0);
}

TEST(MetricsTest, DeltaMatchesCostRatioIdentity) {
  // Delta(w, p1, p2) == C(w,p1)/C(w,p2) - 1.
  CostModel m{SystemConfig{}};
  Workload w(0.3, 0.3, 0.2, 0.2);
  Tuning p1(Policy::kLeveling, 8.0, 4.0);
  Tuning p2(Policy::kTiering, 12.0, 2.0);
  EXPECT_NEAR(DeltaThroughput(m, w, p1, p2),
              m.Cost(w, p1) / m.Cost(w, p2) - 1.0, 1e-12);
}

TEST(MetricsTest, DeltaAntisymmetryRelation) {
  // (1 + Delta12) * (1 + Delta21) == 1.
  CostModel m{SystemConfig{}};
  Workload w(0.1, 0.4, 0.2, 0.3);
  Tuning p1(Policy::kLeveling, 5.0, 3.0);
  Tuning p2(Policy::kLeveling, 30.0, 6.0);
  const double d12 = DeltaThroughput(m, w, p1, p2);
  const double d21 = DeltaThroughput(m, w, p2, p1);
  EXPECT_NEAR((1.0 + d12) * (1.0 + d21), 1.0, 1e-12);
}

TEST(MetricsTest, ThroughputRangeNonNegative) {
  CostModel m{SystemConfig{}};
  std::vector<Workload> bench{
      Workload(0.97, 0.01, 0.01, 0.01), Workload(0.01, 0.97, 0.01, 0.01),
      Workload(0.01, 0.01, 0.97, 0.01), Workload(0.01, 0.01, 0.01, 0.97)};
  Tuning t(Policy::kLeveling, 10.0, 5.0);
  EXPECT_GE(ThroughputRange(m, bench, t), 0.0);
}

TEST(MetricsTest, ThroughputRangeZeroForSingleton) {
  CostModel m{SystemConfig{}};
  std::vector<Workload> bench{Workload(0.25, 0.25, 0.25, 0.25)};
  Tuning t(Policy::kLeveling, 10.0, 5.0);
  EXPECT_DOUBLE_EQ(ThroughputRange(m, bench, t), 0.0);
}

TEST(MetricsTest, ThroughputRangeIsMaxMinusMin) {
  CostModel m{SystemConfig{}};
  std::vector<Workload> bench{
      Workload(0.97, 0.01, 0.01, 0.01), Workload(0.01, 0.01, 0.01, 0.97),
      Workload(0.25, 0.25, 0.25, 0.25)};
  Tuning t(Policy::kTiering, 8.0, 4.0);
  const std::vector<double> tp = Throughputs(m, bench, t);
  const double mx = *std::max_element(tp.begin(), tp.end());
  const double mn = *std::min_element(tp.begin(), tp.end());
  EXPECT_NEAR(ThroughputRange(m, bench, t), mx - mn, 1e-15);
}

TEST(MetricsTest, ThroughputsMatchModel) {
  CostModel m{SystemConfig{}};
  std::vector<Workload> bench{Workload(0.4, 0.3, 0.2, 0.1)};
  Tuning t(Policy::kLeveling, 12.0, 3.0);
  const std::vector<double> tp = Throughputs(m, bench, t);
  ASSERT_EQ(tp.size(), 1u);
  EXPECT_NEAR(tp[0], m.Throughput(bench[0], t), 1e-15);
}

}  // namespace
}  // namespace endure
