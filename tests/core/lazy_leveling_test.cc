// Lazy leveling (Dostoevsky hybrid) in the cost model and tuners: the
// bottom level behaves like leveling, all others like tiering, so every
// cost sits between the two classic policies — and the write cost beats
// leveling while the point-read costs beat tiering.

#include <gtest/gtest.h>

#include "core/endure.h"
#include "workload/expected_workloads.h"

namespace endure {
namespace {

class LazyLevelingModelTest : public ::testing::Test {
 protected:
  SystemConfig IntegerCfg() {
    SystemConfig cfg;
    cfg.level_policy = LevelPolicy::kInteger;
    return cfg;
  }
};

TEST_F(LazyLevelingModelTest, CostsBracketedByClassicPolicies) {
  CostModel m(IntegerCfg());
  for (double T : {3.0, 6.0, 12.0}) {
    for (double h : {1.0, 5.0}) {
      Tuning lvl(Policy::kLeveling, T, h);
      Tuning lazy(Policy::kLazyLeveling, T, h);
      Tuning tier(Policy::kTiering, T, h);
      // Reads: leveling <= lazy <= tiering.
      EXPECT_LE(m.EmptyPointQueryCost(lvl),
                m.EmptyPointQueryCost(lazy) + 1e-12);
      EXPECT_LE(m.EmptyPointQueryCost(lazy),
                m.EmptyPointQueryCost(tier) + 1e-12);
      EXPECT_LE(m.RangeQueryCost(lvl), m.RangeQueryCost(lazy) + 1e-12);
      EXPECT_LE(m.RangeQueryCost(lazy), m.RangeQueryCost(tier) + 1e-12);
      // Writes: tiering <= lazy <= leveling.
      EXPECT_LE(m.WriteCost(tier), m.WriteCost(lazy) + 1e-12);
      EXPECT_LE(m.WriteCost(lazy), m.WriteCost(lvl) + 1e-12);
    }
  }
}

TEST_F(LazyLevelingModelTest, AllPoliciesCoincideAtT2) {
  CostModel m(IntegerCfg());
  Tuning lvl(Policy::kLeveling, 2.0, 5.0);
  Tuning lazy(Policy::kLazyLeveling, 2.0, 5.0);
  Tuning tier(Policy::kTiering, 2.0, 5.0);
  Workload w(0.25, 0.25, 0.25, 0.25);
  EXPECT_NEAR(m.Cost(w, lvl), m.Cost(w, lazy), 1e-12);
  EXPECT_NEAR(m.Cost(w, lazy), m.Cost(w, tier), 1e-12);
}

TEST_F(LazyLevelingModelTest, SingleLevelTreeEqualsLeveling) {
  // With one level, lazy leveling's bottom *is* the whole tree.
  SystemConfig cfg = IntegerCfg();
  cfg.num_entries = 1000.0;  // tiny: single level for moderate T
  cfg.entry_size_bits = 64.0;
  CostModel m(cfg);
  Tuning lvl(Policy::kLeveling, 50.0, 2.0);
  Tuning lazy(Policy::kLazyLeveling, 50.0, 2.0);
  ASSERT_EQ(m.Levels(lvl), 1);
  Workload w(0.25, 0.25, 0.25, 0.25);
  EXPECT_NEAR(m.Cost(w, lvl), m.Cost(w, lazy), 1e-12);
}

TEST_F(LazyLevelingModelTest, RangeCostClosedForm) {
  CostModel m(IntegerCfg());
  Tuning lazy(Policy::kLazyLeveling, 10.0, 2.0);
  const int L = m.Levels(lazy);
  const double scan = 2e-7 * 1e7 / 4.0;
  // (L-1) tiered levels with T-1 runs each + 1 leveled run.
  EXPECT_NEAR(m.RangeQueryCost(lazy), scan + (L - 1) * 9.0 + 1.0, 1e-9);
}

TEST_F(LazyLevelingModelTest, WriteCostClosedForm) {
  CostModel m(IntegerCfg());
  Tuning lazy(Policy::kLazyLeveling, 10.0, 2.0);
  const int L = m.Levels(lazy);
  const double expected =
      ((L - 1) * (9.0 / 10.0) + 9.0 / 2.0) / 4.0 * 2.0;
  EXPECT_NEAR(m.WriteCost(lazy), expected, 1e-9);
}

TEST(LazyLevelingTunerTest, HybridWinsOnMixedReadWriteWorkloads) {
  // Dostoevsky's motivation: lazy leveling dominates for workloads mixing
  // point reads and writes. Under the paper's generous default memory
  // budget (H = 10 bits/entry) Monkey filters erase tiering's read
  // penalty, so the hybrid's niche appears at tighter budgets.
  SystemConfig cfg;
  cfg.memory_budget_bits_per_entry = 3.0;
  CostModel model(cfg);
  TunerOptions classic;
  TunerOptions extended;
  extended.policies = {Policy::kLeveling, Policy::kTiering,
                       Policy::kLazyLeveling};
  NominalTuner classic_tuner(model, classic);
  NominalTuner extended_tuner(model, extended);
  int hybrid_wins = 0;
  for (const Workload w : {Workload(0.49, 0.25, 0.01, 0.25),
                           Workload(0.40, 0.10, 0.05, 0.45),
                           Workload(0.25, 0.25, 0.05, 0.45)}) {
    const TuningResult c = classic_tuner.Tune(w);
    const TuningResult e = extended_tuner.Tune(w);
    EXPECT_LE(e.objective, c.objective + 1e-9);
    hybrid_wins += (e.tuning.policy == Policy::kLazyLeveling &&
                    e.objective < c.objective - 1e-6);
  }
  EXPECT_GE(hybrid_wins, 1);  // at least one workload picks the hybrid
}

TEST(LazyLevelingTunerTest, RobustTunerSupportsHybrid) {
  SystemConfig cfg;
  CostModel model(cfg);
  TunerOptions opts;
  opts.policies = {Policy::kLeveling, Policy::kTiering,
                   Policy::kLazyLeveling};
  RobustTuner tuner(model, opts);
  const TuningResult r =
      tuner.Tune(workload::GetExpectedWorkload(12).workload, 0.5);
  EXPECT_TRUE(r.tuning.Validate(cfg).ok());
  // Robust objective still dominates the classic-policy robust objective.
  TunerOptions classic;
  RobustTuner classic_tuner(model, classic);
  const TuningResult c =
      classic_tuner.Tune(workload::GetExpectedWorkload(12).workload, 0.5);
  EXPECT_LE(r.objective, c.objective + 1e-9);
}

}  // namespace
}  // namespace endure
