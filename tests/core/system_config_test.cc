#include "core/system_config.h"

#include <gtest/gtest.h>

namespace endure {
namespace {

TEST(SystemConfigTest, DefaultsMatchPaperSetup) {
  SystemConfig cfg;
  EXPECT_TRUE(cfg.Validate().ok());
  EXPECT_DOUBLE_EQ(cfg.num_entries, 1e7);             // 10 M entries
  EXPECT_DOUBLE_EQ(cfg.entry_size_bits, 8192.0);      // 1 KB entries
  EXPECT_DOUBLE_EQ(cfg.entries_per_page, 4.0);        // 4 KB pages
  EXPECT_DOUBLE_EQ(cfg.memory_budget_bits_per_entry, 10.0);
  // Short range queries: S_RQ * N / B = 0.5 pages.
  EXPECT_NEAR(cfg.range_selectivity * cfg.num_entries / cfg.entries_per_page,
              0.5, 1e-9);
  EXPECT_DOUBLE_EQ(cfg.read_write_asymmetry, 1.0);
}

TEST(SystemConfigTest, TotalMemoryBits) {
  SystemConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.total_memory_bits(), 1e8);
  EXPECT_DOUBLE_EQ(cfg.max_filter_bits_per_entry(), 9.9);
}

TEST(SystemConfigTest, ValidateRejectsBadValues) {
  SystemConfig cfg;
  cfg.num_entries = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SystemConfig();
  cfg.entry_size_bits = -1.0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SystemConfig();
  cfg.entries_per_page = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SystemConfig();
  cfg.memory_budget_bits_per_entry = 0.05;  // below buffer reserve
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SystemConfig();
  cfg.range_selectivity = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SystemConfig();
  cfg.read_write_asymmetry = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SystemConfig();
  cfg.min_size_ratio = 1.0;
  EXPECT_FALSE(cfg.Validate().ok());

  cfg = SystemConfig();
  cfg.max_size_ratio = 1.0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(SystemConfigTest, ToStringMentionsKeyParameters) {
  SystemConfig cfg;
  const std::string s = cfg.ToString();
  EXPECT_NE(s.find("N="), std::string::npos);
  EXPECT_NE(s.find("B="), std::string::npos);
}

}  // namespace
}  // namespace endure
