#include "core/tuning.h"

#include <gtest/gtest.h>

namespace endure {
namespace {

TEST(TuningTest, MemorySplitDerivation) {
  SystemConfig cfg;  // N = 1e7, H = 10 bits/entry, E = 8192 bits
  Tuning t(Policy::kLeveling, 10.0, 4.0);
  EXPECT_DOUBLE_EQ(t.filter_memory_bits(cfg), 4.0 * 1e7);
  EXPECT_DOUBLE_EQ(t.buffer_memory_bits(cfg), (10.0 - 4.0) * 1e7);
  EXPECT_DOUBLE_EQ(t.buffer_entries(cfg), 6.0 * 1e7 / 8192.0);
}

TEST(TuningTest, ValidateAcceptsInRange) {
  SystemConfig cfg;
  EXPECT_TRUE(Tuning(Policy::kLeveling, 2.0, 0.0).Validate(cfg).ok());
  EXPECT_TRUE(Tuning(Policy::kTiering, 100.0, 9.9).Validate(cfg).ok());
}

TEST(TuningTest, ValidateRejectsOutOfRange) {
  SystemConfig cfg;
  EXPECT_FALSE(Tuning(Policy::kLeveling, 1.5, 2.0).Validate(cfg).ok());
  EXPECT_FALSE(Tuning(Policy::kLeveling, 101.0, 2.0).Validate(cfg).ok());
  EXPECT_FALSE(Tuning(Policy::kLeveling, 10.0, -0.1).Validate(cfg).ok());
  EXPECT_FALSE(Tuning(Policy::kLeveling, 10.0, 9.95).Validate(cfg).ok());
}

TEST(TuningTest, PolicyNames) {
  EXPECT_STREQ(PolicyName(Policy::kLeveling), "leveling");
  EXPECT_STREQ(PolicyName(Policy::kTiering), "tiering");
}

TEST(TuningTest, ToStringFormat) {
  Tuning t(Policy::kTiering, 11.94, 2.31);
  EXPECT_EQ(t.ToString(), "Tuning{tiering, T=11.9, h=2.3}");
}

TEST(TuningTest, Equality) {
  Tuning a(Policy::kLeveling, 5.0, 1.0);
  Tuning b(Policy::kLeveling, 5.0, 1.0);
  Tuning c(Policy::kTiering, 5.0, 1.0);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace endure
