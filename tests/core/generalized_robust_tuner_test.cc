#include "core/generalized_robust_tuner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/robust_tuner.h"
#include "workload/expected_workloads.h"

namespace endure {
namespace {

class GeneralizedTunerTest : public ::testing::Test {
 protected:
  SystemConfig cfg_;
  CostModel model_{SystemConfig{}};
};

TEST_F(GeneralizedTunerTest, KlSpecializationMatchesFastPath) {
  // The generalized (lambda, eta) dual under KL must agree with the
  // analytic-eta 1-D path.
  GeneralizedRobustTuner general(model_, DivergenceKind::kKl);
  RobustTuner fast(model_);
  const Workload w = workload::GetExpectedWorkload(11).workload;
  for (double rho : {0.25, 1.0, 2.0}) {
    for (const Tuning t : {Tuning(Policy::kLeveling, 10.0, 4.0),
                           Tuning(Policy::kTiering, 6.0, 2.0)}) {
      const double a = general.RobustCost(w, rho, t);
      const double b = fast.RobustCost(w, rho, t);
      EXPECT_NEAR(a, b, 0.01 * b) << "rho=" << rho << " " << t.ToString();
    }
  }
}

TEST_F(GeneralizedTunerTest, ZeroRadiusIsNominalForAllDivergences) {
  const Workload w(0.3, 0.3, 0.3, 0.1);
  const Tuning t(Policy::kLeveling, 8.0, 5.0);
  for (DivergenceKind kind : AllDivergenceKinds()) {
    GeneralizedRobustTuner tuner(model_, kind);
    EXPECT_NEAR(tuner.RobustCost(w, 0.0, t), model_.Cost(w, t), 1e-9)
        << tuner.divergence().name();
  }
}

TEST_F(GeneralizedTunerTest, ValueBetweenNominalAndWorstComponent) {
  const Workload w(0.25, 0.25, 0.25, 0.25);
  const Tuning t(Policy::kTiering, 10.0, 3.0);
  const CostVector c = model_.Costs(t);
  double cmax = 0.0;
  for (int i = 0; i < kNumQueryClasses; ++i) cmax = std::max(cmax, c[i]);
  const double nominal = model_.Cost(w, t);
  for (DivergenceKind kind : AllDivergenceKinds()) {
    GeneralizedRobustTuner tuner(model_, kind);
    for (double rho : {0.1, 0.5, 1.5}) {
      const double v = tuner.RobustCost(w, rho, t);
      EXPECT_GE(v, nominal - 1e-9) << tuner.divergence().name();
      EXPECT_LE(v, cmax + 1e-6) << tuner.divergence().name();
    }
  }
}

TEST_F(GeneralizedTunerTest, MonotoneInRadius) {
  const Workload w(0.33, 0.33, 0.33, 0.01);
  const Tuning t(Policy::kLeveling, 12.0, 3.0);
  for (DivergenceKind kind : AllDivergenceKinds()) {
    GeneralizedRobustTuner tuner(model_, kind);
    double prev = 0.0;
    for (double rho : {0.05, 0.2, 0.5, 1.0}) {
      const double v = tuner.RobustCost(w, rho, t);
      EXPECT_GE(v, prev - 1e-6)
          << tuner.divergence().name() << " rho=" << rho;
      prev = v;
    }
  }
}

TEST_F(GeneralizedTunerTest, DualUpperBoundsSampledPrimal) {
  // Weak duality check: no sampled workload inside the phi-ball may cost
  // more than the dual value.
  Rng rng(23);
  const Workload w(0.3, 0.2, 0.3, 0.2);
  const Tuning t(Policy::kLeveling, 9.0, 4.0);
  for (DivergenceKind kind : AllDivergenceKinds()) {
    GeneralizedRobustTuner tuner(model_, kind);
    const double rho = 0.4;
    const double dual = tuner.RobustCost(w, rho, t);
    int inside = 0;
    for (int i = 0; i < 4000; ++i) {
      const std::vector<double> p = rng.SimplexByCounts(4, 10000);
      const Workload cand(p[0], p[1], p[2], p[3]);
      if (tuner.divergence().Divergence(cand, w) <= rho) {
        ++inside;
        EXPECT_LE(model_.Cost(cand, t), dual + 1e-4)
            << tuner.divergence().name();
      }
    }
    EXPECT_GT(inside, 20) << tuner.divergence().name();
  }
}

TEST_F(GeneralizedTunerTest, TuneProducesValidTunings) {
  const Workload w = workload::GetExpectedWorkload(7).workload;
  for (DivergenceKind kind : AllDivergenceKinds()) {
    GeneralizedRobustTuner tuner(model_, kind);
    const TuningResult r = tuner.Tune(w, 0.3);
    EXPECT_TRUE(r.tuning.Validate(cfg_).ok()) << tuner.divergence().name();
    EXPECT_GT(r.objective, 0.0);
  }
}

TEST_F(GeneralizedTunerTest, TotalVariationSaturatesAtDiameter) {
  // TV divergence between distributions is at most 2; beyond that radius
  // the ball is the whole simplex and the value is the worst component.
  GeneralizedRobustTuner tuner(model_, DivergenceKind::kTotalVariation);
  const Workload w(0.25, 0.25, 0.25, 0.25);
  const Tuning t(Policy::kTiering, 8.0, 2.0);
  const CostVector c = model_.Costs(t);
  double cmax = 0.0;
  for (int i = 0; i < kNumQueryClasses; ++i) cmax = std::max(cmax, c[i]);
  EXPECT_NEAR(tuner.RobustCost(w, 2.5, t), cmax, 0.02 * cmax);
}

TEST_F(GeneralizedTunerTest, DifferentGeometriesDifferentConservatism) {
  // At equal radius the ball shapes differ, so the worst-case values
  // should not all coincide (sanity that the generator actually matters).
  const Workload w(0.33, 0.33, 0.33, 0.01);
  const Tuning t(Policy::kLeveling, 20.0, 4.0);
  const double rho = 0.5;
  double values[4];
  int i = 0;
  for (DivergenceKind kind : AllDivergenceKinds()) {
    GeneralizedRobustTuner tuner(model_, kind);
    values[i++] = tuner.RobustCost(w, rho, t);
  }
  double spread = 0.0;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      spread = std::max(spread, std::fabs(values[a] - values[b]));
    }
  }
  EXPECT_GT(spread, 0.05);
}

}  // namespace
}  // namespace endure
