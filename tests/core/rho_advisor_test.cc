#include "core/rho_advisor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/kl.h"
#include "util/random.h"

namespace endure {
namespace {

TEST(RhoAdvisorTest, IdenticalHistoryGivesNearZeroRho) {
  std::vector<Workload> history(5, Workload(0.4, 0.3, 0.2, 0.1));
  EXPECT_NEAR(RecommendRho(history), 0.0, 1e-6);
}

TEST(RhoAdvisorTest, DispersedHistoryGivesPositiveRho) {
  std::vector<Workload> history{
      Workload(0.97, 0.01, 0.01, 0.01), Workload(0.01, 0.97, 0.01, 0.01),
      Workload(0.01, 0.01, 0.97, 0.01)};
  EXPECT_GT(RecommendRho(history), 1.0);
}

TEST(RhoAdvisorTest, MeanWorkloadIsComponentMean) {
  std::vector<Workload> history{Workload(1.0, 0.0, 0.0, 0.0),
                                Workload(0.0, 1.0, 0.0, 0.0)};
  Workload mean = MeanWorkload(history);
  EXPECT_NEAR(mean.z0, 0.5, 1e-12);
  EXPECT_NEAR(mean.z1, 0.5, 1e-12);
  EXPECT_NEAR(mean.q, 0.0, 1e-12);
}

TEST(RhoAdvisorTest, EstimateFieldsConsistent) {
  Rng rng(8);
  std::vector<Workload> history;
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> p = rng.SimplexByCounts(4, 1000);
    history.emplace_back(p[0], p[1], p[2], p[3]);
  }
  const Workload expected = MeanWorkload(history);
  const RhoEstimate est = EstimateRho(history, expected);
  EXPECT_GE(est.max_to_expected, est.p90_to_expected - 1e-12);
  EXPECT_GE(est.p90_to_expected, 0.0);
  EXPECT_GE(est.max_to_expected, est.mean_to_expected - 1e-12);
  EXPECT_GT(est.mean_pairwise, 0.0);
}

TEST(RhoAdvisorTest, SmoothingKeepsKlFinite) {
  // Workloads with zero components would give infinite raw KL.
  std::vector<Workload> history{Workload(1.0, 0.0, 0.0, 0.0),
                                Workload(0.0, 0.0, 0.0, 1.0)};
  const double rho = RecommendRho(history);
  EXPECT_TRUE(std::isfinite(rho));
  EXPECT_GT(rho, 0.0);
}

TEST(RhoAdvisorTest, TighterHistoryGivesSmallerRho) {
  Rng rng(9);
  auto make_history = [&](double spread) {
    std::vector<Workload> h;
    for (int i = 0; i < 10; ++i) {
      Workload w(0.25, 0.25, 0.25, 0.25);
      double sum = 0.0;
      for (int k = 0; k < kNumQueryClasses; ++k) {
        w[k] *= std::exp(spread * rng.Gaussian());
        sum += w[k];
      }
      for (int k = 0; k < kNumQueryClasses; ++k) w[k] /= sum;
      h.push_back(w);
    }
    return h;
  };
  const double rho_tight = RecommendRho(make_history(0.05));
  const double rho_loose = RecommendRho(make_history(0.8));
  EXPECT_LT(rho_tight, rho_loose);
}

}  // namespace
}  // namespace endure
