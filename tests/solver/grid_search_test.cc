#include "solver/grid_search.h"

#include <gtest/gtest.h>

#include <cmath>

namespace endure::solver {
namespace {

Bounds Box(std::vector<double> lo, std::vector<double> hi) {
  Bounds b;
  b.lo = std::move(lo);
  b.hi = std::move(hi);
  return b;
}

TEST(GridSearchTest, FindsGridOptimum) {
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 0.5) * (x[0] - 0.5);
  };
  GridOptions opts;
  opts.points_per_dim = {11};  // grid points at 0, 0.1, ..., 1.0
  std::vector<GridPoint> best = GridSearch(f, Box({0}, {1}), opts);
  ASSERT_EQ(best.size(), 1u);
  EXPECT_NEAR(best[0].x[0], 0.5, 1e-12);
}

TEST(GridSearchTest, TopKOrderedBestFirst) {
  auto f = [](const std::vector<double>& x) { return x[0]; };
  GridOptions opts;
  opts.points_per_dim = {5};
  opts.top_k = 3;
  std::vector<GridPoint> best = GridSearch(f, Box({0}, {4}), opts);
  ASSERT_EQ(best.size(), 3u);
  EXPECT_DOUBLE_EQ(best[0].fx, 0.0);
  EXPECT_DOUBLE_EQ(best[1].fx, 1.0);
  EXPECT_DOUBLE_EQ(best[2].fx, 2.0);
}

TEST(GridSearchTest, TwoDimensionalCoverage) {
  int evals = 0;
  auto f = [&evals](const std::vector<double>& x) {
    ++evals;
    return std::fabs(x[0] - 1.0) + std::fabs(x[1] - 2.0);
  };
  GridOptions opts;
  opts.points_per_dim = {3, 5};
  std::vector<GridPoint> best = GridSearch(f, Box({0, 0}, {2, 4}), opts);
  EXPECT_EQ(evals, 15);
  EXPECT_NEAR(best[0].x[0], 1.0, 1e-12);
  EXPECT_NEAR(best[0].x[1], 2.0, 1e-12);
}

TEST(GridSearchTest, IncludesBoxCorners) {
  // f minimized exactly at the upper corner.
  auto f = [](const std::vector<double>& x) { return -(x[0] + x[1]); };
  GridOptions opts;
  opts.points_per_dim = {4, 4};
  std::vector<GridPoint> best = GridSearch(f, Box({0, 0}, {3, 7}), opts);
  EXPECT_DOUBLE_EQ(best[0].x[0], 3.0);
  EXPECT_DOUBLE_EQ(best[0].x[1], 7.0);
}

TEST(GridSearchTest, TopKLargerThanGridIsTruncated) {
  auto f = [](const std::vector<double>& x) { return x[0]; };
  GridOptions opts;
  opts.points_per_dim = {3};
  opts.top_k = 10;
  std::vector<GridPoint> best = GridSearch(f, Box({0}, {1}), opts);
  EXPECT_EQ(best.size(), 3u);
}

}  // namespace
}  // namespace endure::solver
