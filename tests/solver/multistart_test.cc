#include "solver/multistart.h"

#include <gtest/gtest.h>

#include <cmath>

namespace endure::solver {
namespace {

Bounds Box(std::vector<double> lo, std::vector<double> hi) {
  Bounds b;
  b.lo = std::move(lo);
  b.hi = std::move(hi);
  return b;
}

TEST(MultiStartTest, EscapesLocalMinima) {
  // Rastrigin-like in 1-D: many local minima, global at x = 0.
  auto f = [](const std::vector<double>& x) {
    return x[0] * x[0] + 10.0 * (1.0 - std::cos(2.0 * M_PI * x[0]));
  };
  MultiStartOptions opts;
  opts.grid_points_per_dim = 16;
  opts.random_starts = 8;
  Result r = MultiStartMinimize(f, Box({-5.12}, {5.12}), opts);
  EXPECT_NEAR(r.x[0], 0.0, 1e-3);
  EXPECT_LT(r.fx, 1e-4);
}

TEST(MultiStartTest, TwoDimensionalMultiModal) {
  // Himmelblau: four global minima with f = 0.
  auto f = [](const std::vector<double>& x) {
    const double a = x[0] * x[0] + x[1] - 11.0;
    const double b = x[0] + x[1] * x[1] - 7.0;
    return a * a + b * b;
  };
  Result r = MultiStartMinimize(f, Box({-6, -6}, {6, 6}));
  EXPECT_LT(r.fx, 1e-6);
}

TEST(MultiStartTest, DeterministicForFixedSeed) {
  auto f = [](const std::vector<double>& x) {
    return std::sin(3.0 * x[0]) + x[0] * x[0] / 4.0;
  };
  MultiStartOptions opts;
  opts.seed = 99;
  Result a = MultiStartMinimize(f, Box({-4}, {4}), opts);
  Result b = MultiStartMinimize(f, Box({-4}, {4}), opts);
  EXPECT_DOUBLE_EQ(a.fx, b.fx);
  EXPECT_DOUBLE_EQ(a.x[0], b.x[0]);
}

TEST(MultiStartTest, AggregatesEvaluationCounts) {
  auto f = [](const std::vector<double>& x) { return x[0] * x[0]; };
  MultiStartOptions opts;
  opts.grid_seeds = 2;
  opts.random_starts = 2;
  Result r = MultiStartMinimize(f, Box({-1}, {1}), opts);
  // At least the seeding grid evaluations plus four NM runs.
  EXPECT_GT(r.evaluations, opts.grid_points_per_dim);
}

TEST(MultiStartTest, ParallelMatchesSerialBitwise) {
  // The per-start searches fan out across the thread pool, but reduction
  // runs in seed-index order, so any parallelism level must reproduce the
  // serial result exactly.
  auto f = [](const std::vector<double>& x) {
    return std::sin(3.0 * x[0]) * std::cos(2.0 * x[1]) +
           0.1 * (x[0] * x[0] + x[1] * x[1]);
  };
  const Bounds box = Box({-4, -4}, {4, 4});
  MultiStartOptions serial;
  serial.parallelism = 1;
  MultiStartOptions parallel;
  parallel.parallelism = 4;
  const Result a = MultiStartMinimize(f, box, serial);
  const Result b = MultiStartMinimize(f, box, parallel);
  EXPECT_DOUBLE_EQ(a.fx, b.fx);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (size_t i = 0; i < a.x.size(); ++i) EXPECT_DOUBLE_EQ(a.x[i], b.x[i]);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(MultiStartTest, ResultInsideBounds) {
  auto f = [](const std::vector<double>& x) { return -x[0] - 2.0 * x[1]; };
  const Bounds box = Box({0, 0}, {1, 1});
  Result r = MultiStartMinimize(f, box);
  EXPECT_TRUE(box.Contains(r.x));
  EXPECT_NEAR(r.fx, -3.0, 1e-6);
}

}  // namespace
}  // namespace endure::solver
