#include "solver/brent.h"

#include <gtest/gtest.h>

#include <cmath>

namespace endure::solver {
namespace {

TEST(BrentTest, QuadraticMinimum) {
  auto f = [](double x) { return (x - 2.0) * (x - 2.0) + 1.0; };
  Result1D r = BrentMinimize(f, -10.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.0, 1e-7);
  EXPECT_NEAR(r.fx, 1.0, 1e-12);
}

TEST(BrentTest, MinimumAtLeftEdge) {
  auto f = [](double x) { return x; };
  Result1D r = BrentMinimize(f, 0.0, 5.0);
  EXPECT_NEAR(r.x, 0.0, 1e-6);
}

TEST(BrentTest, MinimumAtRightEdge) {
  auto f = [](double x) { return -x; };
  Result1D r = BrentMinimize(f, 0.0, 5.0);
  EXPECT_NEAR(r.x, 5.0, 1e-6);
}

TEST(BrentTest, NonSymmetricConvex) {
  // f(x) = e^x + e^{-2x}: minimum at x = ln(2)/3.
  auto f = [](double x) { return std::exp(x) + std::exp(-2.0 * x); };
  Result1D r = BrentMinimize(f, -5.0, 5.0);
  EXPECT_NEAR(r.x, std::log(2.0) / 3.0, 1e-7);
}

TEST(BrentTest, FlatRegionStillTerminates) {
  auto f = [](double x) { return x < 1.0 ? 0.0 : (x - 1.0); };
  Result1D r = BrentMinimize(f, -3.0, 3.0);
  EXPECT_LE(r.fx, 1e-9);
}

TEST(BrentTest, AbsoluteValueKink) {
  auto f = [](double x) { return std::fabs(x - 0.7); };
  Result1D r = BrentMinimize(f, -2.0, 2.0);
  EXPECT_NEAR(r.x, 0.7, 1e-6);
}

// Parameterized sweep: quartic minima across the bracket.
class BrentSweep : public ::testing::TestWithParam<double> {};

TEST_P(BrentSweep, FindsShiftedQuarticMinimum) {
  const double c = GetParam();
  auto f = [c](double x) { return std::pow(x - c, 4) + 0.5 * (x - c) * (x - c); };
  Result1D r = BrentMinimize(f, -12.0, 12.0);
  EXPECT_NEAR(r.x, c, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Shifts, BrentSweep,
                         ::testing::Values(-9.0, -2.5, 0.0, 0.1, 3.7, 8.9));

}  // namespace
}  // namespace endure::solver
