#include "solver/golden_section.h"

#include <gtest/gtest.h>

#include <cmath>

#include "solver/brent.h"

namespace endure::solver {
namespace {

TEST(GoldenSectionTest, QuadraticMinimum) {
  auto f = [](double x) { return (x + 1.0) * (x + 1.0); };
  Result1D r = GoldenSectionMinimize(f, -10.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, -1.0, 1e-6);
}

TEST(GoldenSectionTest, AgreesWithBrentOnConvexFunctions) {
  // The robust dual is convex; both 1-D minimizers must agree on it.
  for (double a : {0.5, 1.0, 2.0, 5.0}) {
    auto f = [a](double x) { return std::exp(a * x) + std::exp(-x); };
    Result1D g = GoldenSectionMinimize(f, -10.0, 10.0);
    Result1D b = BrentMinimize(f, -10.0, 10.0);
    EXPECT_NEAR(g.x, b.x, 1e-5) << "a=" << a;
    EXPECT_NEAR(g.fx, b.fx, 1e-9) << "a=" << a;
  }
}

TEST(GoldenSectionTest, EdgeMinimum) {
  auto f = [](double x) { return x * 3.0; };
  Result1D r = GoldenSectionMinimize(f, 1.0, 4.0);
  EXPECT_NEAR(r.x, 1.0, 1e-5);
}

TEST(GoldenSectionTest, IterationCapRespected) {
  GoldenSectionOptions opts;
  opts.max_iter = 5;
  auto f = [](double x) { return x * x; };
  Result1D r = GoldenSectionMinimize(f, -100.0, 100.0, opts);
  EXPECT_LE(r.iterations, 5);
  EXPECT_FALSE(r.converged);
}

TEST(GoldenSectionTest, TightToleranceConverges) {
  GoldenSectionOptions opts;
  opts.tol = 1e-12;
  auto f = [](double x) { return std::cosh(x - 0.25); };
  Result1D r = GoldenSectionMinimize(f, -4.0, 4.0, opts);
  // x-precision near a quadratic minimum is limited to ~sqrt(machine eps)
  // because the function is flat there.
  EXPECT_NEAR(r.x, 0.25, 1e-6);
}

}  // namespace
}  // namespace endure::solver
