#include "solver/nelder_mead.h"

#include <gtest/gtest.h>

#include <cmath>

namespace endure::solver {
namespace {

Bounds Box(std::vector<double> lo, std::vector<double> hi) {
  Bounds b;
  b.lo = std::move(lo);
  b.hi = std::move(hi);
  return b;
}

TEST(BoundsTest, ClampAndContains) {
  Bounds b = Box({0.0, -1.0}, {1.0, 1.0});
  EXPECT_EQ(b.dim(), 2u);
  const std::vector<double> c = b.Clamp({2.0, -5.0});
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], -1.0);
  EXPECT_TRUE(b.Contains({0.5, 0.0}));
  EXPECT_FALSE(b.Contains({1.5, 0.0}));
}

TEST(NelderMeadTest, Sphere2D) {
  auto f = [](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1];
  };
  Result r = NelderMeadMinimize(f, {3.0, -2.0}, Box({-5, -5}, {5, 5}));
  EXPECT_NEAR(r.x[0], 0.0, 1e-4);
  EXPECT_NEAR(r.x[1], 0.0, 1e-4);
  EXPECT_LT(r.fx, 1e-8);
}

TEST(NelderMeadTest, Rosenbrock2D) {
  auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opts;
  opts.max_iter = 5000;
  Result r = NelderMeadMinimize(f, {-1.0, 1.0}, Box({-5, -5}, {5, 5}), opts);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMeadTest, RespectsBoxBounds) {
  // Unconstrained minimum at (-3, -3), box keeps us at the corner (0, 0).
  auto f = [](const std::vector<double>& x) {
    return (x[0] + 3.0) * (x[0] + 3.0) + (x[1] + 3.0) * (x[1] + 3.0);
  };
  Result r = NelderMeadMinimize(f, {2.0, 2.0}, Box({0, 0}, {4, 4}));
  EXPECT_TRUE(Box({0, 0}, {4, 4}).Contains(r.x));
  EXPECT_NEAR(r.x[0], 0.0, 1e-4);
  EXPECT_NEAR(r.x[1], 0.0, 1e-4);
}

TEST(NelderMeadTest, OneDimensional) {
  auto f = [](const std::vector<double>& x) {
    return std::cos(x[0]) + x[0] * x[0] / 10.0;
  };
  Result r = NelderMeadMinimize(f, {1.0}, Box({-10}, {10}));
  // Global minima at +-x* where sin(x*) = x*/5, i.e. x* ~ 2.596.
  EXPECT_NEAR(std::fabs(r.x[0]), 2.5957, 0.01);
}

TEST(NelderMeadTest, FourDimensionalQuadratic) {
  auto f = [](const std::vector<double>& x) {
    double s = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i);
      s += (i + 1) * d * d;
    }
    return s;
  };
  NelderMeadOptions opts;
  opts.max_iter = 4000;
  Result r = NelderMeadMinimize(f, {5, 5, 5, 5},
                                Box({-10, -10, -10, -10}, {10, 10, 10, 10}),
                                opts);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(r.x[i], i, 1e-3);
}

TEST(NelderMeadTest, CountsEvaluations) {
  auto f = [](const std::vector<double>& x) { return x[0] * x[0]; };
  Result r = NelderMeadMinimize(f, {1.0}, Box({-2}, {2}));
  EXPECT_GT(r.evaluations, 0);
  EXPECT_TRUE(r.converged);
}

TEST(NelderMeadTest, StartOutsideBoxIsClamped) {
  auto f = [](const std::vector<double>& x) { return x[0] * x[0]; };
  Result r = NelderMeadMinimize(f, {100.0}, Box({-1}, {1}));
  EXPECT_NEAR(r.x[0], 0.0, 1e-5);
}

// Piecewise surface with plateaus (mimics the LSM cost's ceil(L) steps).
TEST(NelderMeadTest, SteppedSurfaceFindsLowPlateau) {
  auto f = [](const std::vector<double>& x) {
    return std::floor(std::fabs(x[0])) + 0.001 * x[0] * x[0];
  };
  Result r = NelderMeadMinimize(f, {7.3}, Box({-10}, {10}));
  EXPECT_LT(std::fabs(r.x[0]), 1.0);  // reached the [-1, 1) plateau
}

}  // namespace
}  // namespace endure::solver
