#include "solver/gradient.h"

#include <gtest/gtest.h>

#include <cmath>

namespace endure::solver {
namespace {

Bounds Box(std::vector<double> lo, std::vector<double> hi) {
  Bounds b;
  b.lo = std::move(lo);
  b.hi = std::move(hi);
  return b;
}

TEST(NumericalGradientTest, MatchesAnalyticQuadratic) {
  auto f = [](const std::vector<double>& x) {
    return 3.0 * x[0] * x[0] + 2.0 * x[0] * x[1] + x[1] * x[1];
  };
  const std::vector<double> x{1.0, -2.0};
  const std::vector<double> g = NumericalGradient(f, x);
  EXPECT_NEAR(g[0], 6.0 * x[0] + 2.0 * x[1], 1e-5);
  EXPECT_NEAR(g[1], 2.0 * x[0] + 2.0 * x[1], 1e-5);
}

TEST(NumericalGradientTest, MatchesAnalyticExp) {
  auto f = [](const std::vector<double>& x) { return std::exp(0.5 * x[0]); };
  const std::vector<double> g = NumericalGradient(f, {2.0});
  EXPECT_NEAR(g[0], 0.5 * std::exp(1.0), 1e-5);
}

TEST(ProjectedGradientTest, ConvexQuadratic) {
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  Result r = ProjectedGradientDescent(f, {0.0, 0.0}, Box({-5, -5}, {5, 5}));
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], -2.0, 1e-3);
}

TEST(ProjectedGradientTest, ActiveBoxConstraint) {
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 10.0) * (x[0] - 10.0);
  };
  Result r = ProjectedGradientDescent(f, {0.0}, Box({0}, {2}));
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(ProjectedGradientTest, AgreesWithNelderMeadOnSmoothConvex) {
  auto f = [](const std::vector<double>& x) {
    return std::log(1.0 + std::exp(x[0])) + 0.5 * x[0] * x[0] -
           0.3 * x[0];
  };
  Result g = ProjectedGradientDescent(f, {2.0}, Box({-4}, {4}));
  EXPECT_LT(std::fabs(NumericalGradient(f, g.x)[0]), 1e-3);
}

}  // namespace
}  // namespace endure::solver
