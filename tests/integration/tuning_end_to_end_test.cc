// Integration: the paper's headline claim, end to end — under workload
// uncertainty the robust tuning beats the nominal tuning, both on the
// analytical model and on the running engine.

#include <gtest/gtest.h>

#include "bridge/experiment.h"
#include "core/endure.h"
#include "workload/benchmark_set.h"
#include "workload/expected_workloads.h"

namespace endure {
namespace {

TEST(TuningEndToEndTest, RobustBeatsNominalOnAverageUnderUncertainty) {
  // Model-based replication of Fig. 4's direction for a trimodal workload.
  SystemConfig cfg;
  CostModel model(cfg);
  NominalTuner nominal(model);
  RobustTuner robust(model);
  const Workload w11 = workload::GetExpectedWorkload(11).workload;
  const Tuning phi_n = nominal.Tune(w11).tuning;
  const Tuning phi_r = robust.Tune(w11, 1.0).tuning;

  Rng rng(123);
  workload::BenchmarkSet bench(2000, &rng);
  double mean_delta = 0.0;
  int wins = 0;
  for (const Workload& w : bench.Workloads()) {
    const double d = DeltaThroughput(model, w, phi_n, phi_r);
    mean_delta += d;
    wins += (d > 0.0);
  }
  mean_delta /= static_cast<double>(bench.size());
  EXPECT_GT(mean_delta, 0.5);               // paper: ~95%+ improvement
  EXPECT_GT(wins, static_cast<int>(bench.size()) / 2);
}

TEST(TuningEndToEndTest, NominalWinsWhenWorkloadMatchesExpectation) {
  // "When the observed workload exactly matches the expected one, Endure
  // tunings have negligible performance loss."
  SystemConfig cfg;
  CostModel model(cfg);
  NominalTuner nominal(model);
  RobustTuner robust(model);
  const Workload w11 = workload::GetExpectedWorkload(11).workload;
  const Tuning phi_n = nominal.Tune(w11).tuning;
  const Tuning phi_r0 = robust.Tune(w11, 0.0).tuning;
  // With rho = 0 the robust tuning is the nominal tuning (tiny slack for
  // numerics).
  EXPECT_NEAR(model.Cost(w11, phi_r0), model.Cost(w11, phi_n),
              0.01 * model.Cost(w11, phi_n));
}

TEST(TuningEndToEndTest, ThroughputRangeShrinksWithRho) {
  // Fig. 6b: larger rho -> more consistent performance (smaller Theta).
  SystemConfig cfg;
  CostModel model(cfg);
  RobustTuner robust(model);
  const Workload w11 = workload::GetExpectedWorkload(11).workload;
  Rng rng(321);
  workload::BenchmarkSet bench(1500, &rng);
  const std::vector<Workload> ws = bench.Workloads();

  const double theta_0 =
      ThroughputRange(model, ws, robust.Tune(w11, 0.0).tuning);
  const double theta_2 =
      ThroughputRange(model, ws, robust.Tune(w11, 2.0).tuning);
  EXPECT_LT(theta_2, theta_0);
}

TEST(TuningEndToEndTest, SystemLevelRobustBeatsNominalOnShiftedWorkload) {
  // Engine-level replication of the Figs. 8/11 direction: tune for w11,
  // observe a range/write-shifted mix, compare measured I/Os per query.
  SystemConfig cfg;
  CostModel model(cfg);
  NominalTuner nominal(model);
  RobustTuner robust(model);
  const Workload w11 = workload::GetExpectedWorkload(11).workload;
  const Tuning phi_n = nominal.Tune(w11).tuning;
  const Tuning phi_r = robust.Tune(w11, 1.0).tuning;

  bridge::ExperimentOptions eopts;
  eopts.actual_entries = 20000;
  eopts.queries_per_workload = 500;
  bridge::ExperimentRunner runner(cfg, eopts);

  Rng rng(11);
  workload::SessionOptions sopts;
  sopts.workloads_per_session = 2;
  workload::SessionGenerator gen(w11, &rng, sopts);
  std::vector<workload::Session> sessions{
      gen.Make(workload::SessionKind::kRange),
      gen.Make(workload::SessionKind::kWrites)};

  const auto rn = runner.Run(phi_n, sessions);
  const auto rr = runner.Run(phi_r, sessions);
  double nominal_total = 0.0, robust_total = 0.0;
  for (size_t i = 0; i < sessions.size(); ++i) {
    nominal_total += rn[i].measured_io_per_query;
    robust_total += rr[i].measured_io_per_query;
  }
  EXPECT_LT(robust_total, nominal_total);
}

TEST(TuningEndToEndTest, RhoAdvisorFeedsRobustTuner) {
  // The full workflow of Section 7.3: estimate rho from history, tune.
  SystemConfig cfg;
  CostModel model(cfg);
  RobustTuner robust(model);
  Rng rng(55);
  std::vector<Workload> history;
  for (int i = 0; i < 12; ++i) {
    const std::vector<double> p = rng.SimplexByCounts(4, 1000);
    history.emplace_back(p[0], p[1], p[2], p[3]);
  }
  const double rho = RecommendRho(history);
  EXPECT_GT(rho, 0.0);
  const TuningResult r = robust.Tune(MeanWorkload(history), rho);
  EXPECT_TRUE(r.tuning.Validate(cfg).ok());
}

}  // namespace
}  // namespace endure
