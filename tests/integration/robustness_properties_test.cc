// Property sweeps over the full (workload x rho x policy) grid: the
// structural invariants the paper's theory guarantees, checked broadly
// rather than pointwise.

#include <gtest/gtest.h>

#include <cmath>

#include "core/endure.h"
#include "util/random.h"
#include "workload/expected_workloads.h"

namespace endure {
namespace {

struct SweepCase {
  int workload_index;
  double rho;
};

std::vector<SweepCase> MakeSweep() {
  std::vector<SweepCase> out;
  for (int idx : {0, 1, 4, 7, 11, 14}) {
    for (double rho : {0.1, 0.5, 1.5, 3.0}) {
      out.push_back({idx, rho});
    }
  }
  return out;
}

class RobustnessSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  SystemConfig cfg_;
  CostModel model_{SystemConfig{}};
  RobustTuner tuner_{model_};
};

TEST_P(RobustnessSweep, WorstCaseOnBoundaryOrSaturatedAtVertex) {
  const auto [idx, rho] = GetParam();
  const Workload w = workload::GetExpectedWorkload(idx).workload;
  for (const Tuning t : {Tuning(Policy::kLeveling, 9.0, 3.0),
                         Tuning(Policy::kTiering, 5.0, 6.0)}) {
    const DualSolution sol = tuner_.SolveInner(w, rho, t);
    const double kl = KlDivergence(sol.worst_case, w);
    // Feasibility: the maximizer stays inside the ball.
    EXPECT_LE(kl, rho + 1e-4) << "w" << idx << " rho=" << rho;
    // Either the maximizer sits on the boundary (linear objective over a
    // convex set), or the ball is large enough that the maximizer is the
    // argmax-cost vertex, which lies strictly inside (lambda -> 0
    // saturation). KL(delta_argmax, w) = -log(w_argmax).
    const CostVector c = model_.Costs(t);
    int argmax = 0;
    for (int i = 1; i < kNumQueryClasses; ++i) {
      if (c[i] > c[argmax]) argmax = i;
    }
    const double vertex_kl = -std::log(w[argmax]);
    if (rho < vertex_kl - 0.05) {
      EXPECT_NEAR(kl, rho, 0.05 * (1.0 + rho))
          << "w" << idx << " rho=" << rho << " " << t.ToString();
    } else {
      EXPECT_GT(sol.worst_case[argmax], 0.95)
          << "w" << idx << " rho=" << rho << " " << t.ToString();
    }
    // Strong duality: primal value at the maximizer equals the dual value.
    EXPECT_NEAR(model_.Cost(sol.worst_case, t), sol.value,
                1e-5 * (1.0 + sol.value));
  }
}

TEST_P(RobustnessSweep, RobustTuningMinimizesWorstCaseOverProbes) {
  const auto [idx, rho] = GetParam();
  const Workload w = workload::GetExpectedWorkload(idx).workload;
  const TuningResult best = tuner_.Tune(w, rho);
  Rng rng(1000 + idx);
  for (int i = 0; i < 60; ++i) {
    Tuning probe(rng.NextDouble() < 0.5 ? Policy::kLeveling
                                        : Policy::kTiering,
                 std::exp(rng.Uniform(std::log(2.0), std::log(100.0))),
                 rng.Uniform(0.0, 9.9));
    EXPECT_LE(best.objective, tuner_.RobustCost(w, rho, probe) + 1e-6)
        << "w" << idx << " rho=" << rho << " probe " << probe.ToString();
  }
}

TEST_P(RobustnessSweep, RobustObjectiveAtMostPessimisticBound) {
  // The robust optimum is never worse than fully pessimistic play: the
  // minimax over the whole simplex (min over Phi of max_i c_i(Phi)).
  const auto [idx, rho] = GetParam();
  const Workload w = workload::GetExpectedWorkload(idx).workload;
  const TuningResult best = tuner_.Tune(w, rho);

  // Grid-scan an upper bound of min_Phi max_i c_i.
  double minimax = 1e18;
  for (double t_ratio : {2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 47.0, 100.0}) {
    for (double h : {0.0, 2.0, 5.0, 8.0}) {
      for (Policy p : {Policy::kLeveling, Policy::kTiering}) {
        const CostVector c = model_.Costs(Tuning(p, t_ratio, h));
        double cmax = 0.0;
        for (int i = 0; i < kNumQueryClasses; ++i) {
          cmax = std::max(cmax, c[i]);
        }
        minimax = std::min(minimax, cmax);
      }
    }
  }
  EXPECT_LE(best.objective, minimax + 1e-6)
      << "w" << idx << " rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Grid, RobustnessSweep,
                         ::testing::ValuesIn(MakeSweep()));

// Monotonicity sweeps over the whole Table 2.
class MonotoneSweep : public ::testing::TestWithParam<int> {};

TEST_P(MonotoneSweep, RobustCostNondecreasingInRhoEverywhere) {
  SystemConfig cfg;
  CostModel model(cfg);
  RobustTuner tuner(model);
  const Workload w = workload::GetExpectedWorkload(GetParam()).workload;
  for (const Tuning t : {Tuning(Policy::kLeveling, 4.0, 1.0),
                         Tuning(Policy::kLeveling, 30.0, 7.0),
                         Tuning(Policy::kTiering, 10.0, 4.0),
                         Tuning(Policy::kLazyLeveling, 6.0, 3.0)}) {
    double prev = model.Cost(w, t);
    for (double rho = 0.25; rho <= 4.0; rho += 0.75) {
      const double v = tuner.RobustCost(w, rho, t);
      EXPECT_GE(v, prev - 1e-9) << t.ToString() << " rho=" << rho;
      prev = v;
    }
  }
}

TEST_P(MonotoneSweep, NominalObjectiveDominatedByAnyFeasibleTuning) {
  SystemConfig cfg;
  CostModel model(cfg);
  NominalTuner tuner(model);
  const Workload w = workload::GetExpectedWorkload(GetParam()).workload;
  const TuningResult best = tuner.Tune(w);
  Rng rng(77 + GetParam());
  for (int i = 0; i < 80; ++i) {
    Tuning probe(rng.NextDouble() < 0.5 ? Policy::kLeveling
                                        : Policy::kTiering,
                 std::exp(rng.Uniform(std::log(2.0), std::log(100.0))),
                 rng.Uniform(0.0, 9.9));
    EXPECT_LE(best.objective, model.Cost(w, probe) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Table2, MonotoneSweep, ::testing::Range(0, 15));

}  // namespace
}  // namespace endure
