// Integration: the analytical cost model's predictions must track the
// engine's measured I/O — the paper's core validation ("the empirical
// measurements confirm the cost model predictions", Section 8.3).

#include <gtest/gtest.h>

#include "bridge/experiment.h"
#include "bridge/tuned_db.h"

namespace endure::bridge {
namespace {

class ModelVsSystemTest : public ::testing::Test {
 protected:
  ModelVsSystemTest() {
    eopts_.actual_entries = 20000;
    eopts_.queries_per_workload = 500;
  }

  // Measures average empty-point-query page reads under `t`.
  double MeasureZ0(const Tuning& t) {
    auto db = OpenTunedDb(cfg_, t, eopts_.actual_entries);
    workload::KeyUniverse universe(eopts_.actual_entries);
    Rng rng(7);
    const lsm::Statistics before = (*db)->stats();
    const int n = 2000;
    for (int i = 0; i < n; ++i) (*db)->Get(universe.SampleMissing(&rng));
    const lsm::Statistics d = (*db)->stats().Delta(before);
    return static_cast<double>(d.point_pages_read) / n;
  }

  // Measures average non-empty-point-query page reads under `t`.
  double MeasureZ1(const Tuning& t) {
    auto db = OpenTunedDb(cfg_, t, eopts_.actual_entries);
    workload::KeyUniverse universe(eopts_.actual_entries);
    Rng rng(8);
    const lsm::Statistics before = (*db)->stats();
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE((*db)->Get(universe.SampleExisting(&rng)).has_value());
    }
    const lsm::Statistics d = (*db)->stats().Delta(before);
    return static_cast<double>(d.point_pages_read) / n;
  }

  CostModel ScaledModel() const {
    SystemConfig scaled = ScaledConfig(cfg_, eopts_.actual_entries);
    scaled.level_policy = LevelPolicy::kInteger;
    return CostModel(scaled);
  }

  SystemConfig cfg_;
  ExperimentOptions eopts_;
};

TEST_F(ModelVsSystemTest, EmptyPointQueryCostTracksModel) {
  // Deployment uses the integer-rounded tuning, so predict with it too.
  for (const Tuning t : {Tuning(Policy::kLeveling, 8.0, 6.0),
                         Tuning(Policy::kLeveling, 5.0, 2.0),
                         Tuning(Policy::kTiering, 4.0, 6.0)}) {
    const double measured = MeasureZ0(t);
    const double predicted = ScaledModel().EmptyPointQueryCost(t);
    // The model is an expectation over filter noise; allow generous slack
    // but demand the right magnitude.
    EXPECT_NEAR(measured, predicted, 0.35 + 0.5 * predicted)
        << t.ToString();
  }
}

TEST_F(ModelVsSystemTest, NonEmptyPointQueryCostTracksModel) {
  for (const Tuning t : {Tuning(Policy::kLeveling, 8.0, 6.0),
                         Tuning(Policy::kTiering, 4.0, 6.0)}) {
    const double measured = MeasureZ1(t);
    const double predicted = ScaledModel().NonEmptyPointQueryCost(t);
    EXPECT_NEAR(measured, predicted, 0.35 + 0.5 * predicted)
        << t.ToString();
  }
}

TEST_F(ModelVsSystemTest, FilterMemoryReducesMeasuredEmptyReadIo) {
  // Monotonicity the model predicts: more bits per entry, fewer I/Os.
  const double io_h0 = MeasureZ0(Tuning(Policy::kLeveling, 6.0, 0.0));
  const double io_h5 = MeasureZ0(Tuning(Policy::kLeveling, 6.0, 5.0));
  const double io_h9 = MeasureZ0(Tuning(Policy::kLeveling, 6.0, 9.0));
  EXPECT_GT(io_h0, io_h5);
  EXPECT_GT(io_h5, io_h9);
}

TEST_F(ModelVsSystemTest, TieringCostsMoreReadsThanLevelingOnSystem) {
  const double tier = MeasureZ0(Tuning(Policy::kTiering, 6.0, 3.0));
  const double level = MeasureZ0(Tuning(Policy::kLeveling, 6.0, 3.0));
  EXPECT_GE(tier, level - 0.05);
}

TEST_F(ModelVsSystemTest, RangeQueryIoScalesWithRuns) {
  // Leveling should serve short scans with fewer page touches than
  // tiering at equal T (fewer runs per level).
  auto measure_range = [&](const Tuning& t) {
    auto db = OpenTunedDb(cfg_, t, eopts_.actual_entries);
    workload::KeyUniverse universe(eopts_.actual_entries);
    Rng rng(9);
    const lsm::Statistics before = (*db)->stats();
    const int n = 500;
    for (int i = 0; i < n; ++i) {
      const lsm::Key lo = universe.SampleExisting(&rng);
      (void)(*db)->Scan(lo, lo + 8);
    }
    const lsm::Statistics d = (*db)->stats().Delta(before);
    return static_cast<double>(d.range_pages_read) / n;
  };
  const double level = measure_range(Tuning(Policy::kLeveling, 5.0, 5.0));
  const double tier = measure_range(Tuning(Policy::kTiering, 5.0, 5.0));
  EXPECT_LE(level, tier + 0.05);
}

}  // namespace
}  // namespace endure::bridge
