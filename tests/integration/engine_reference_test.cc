// Integration: long randomized engine soak against a reference std::map,
// across policies, size ratios and storage backends — the engine's
// correctness backbone.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "lsm/db.h"
#include "util/random.h"

namespace endure::lsm {
namespace {

struct SoakCase {
  CompactionPolicy policy;
  int size_ratio;
  uint64_t buffer;
  StorageBackend backend;
};

class EngineSoakTest : public ::testing::TestWithParam<SoakCase> {};

TEST_P(EngineSoakTest, RandomOpsMatchReference) {
  const SoakCase& c = GetParam();
  Options o;
  o.policy = c.policy;
  o.size_ratio = c.size_ratio;
  o.buffer_entries = c.buffer;
  o.entries_per_page = 4;
  o.filter_bits_per_entry = 6.0;
  o.backend = c.backend;
  o.storage_dir = "/tmp/endure_soak";
  auto db_or = DB::Open(o);
  ASSERT_TRUE(db_or.ok());
  DB* db = db_or->get();

  std::map<Key, Value> ref;
  Rng rng(1000 + c.size_ratio +
          static_cast<int>(c.policy) * 7 + static_cast<int>(c.backend));
  const int ops = c.backend == StorageBackend::kFile ? 1500 : 4000;
  for (int i = 0; i < ops; ++i) {
    const double dice = rng.NextDouble();
    const Key k = rng.UniformInt(0, 300);
    if (dice < 0.5) {
      const Value v = rng.Next() % 100000;
      db->Put(k, v);
      ref[k] = v;
    } else if (dice < 0.65) {
      db->Delete(k);
      ref.erase(k);
    } else if (dice < 0.85) {
      const auto got = db->Get(k);
      const auto it = ref.find(k);
      if (it == ref.end()) {
        EXPECT_FALSE(got.has_value()) << "op " << i << " key " << k;
      } else {
        ASSERT_TRUE(got.has_value()) << "op " << i << " key " << k;
        EXPECT_EQ(*got, it->second) << "op " << i << " key " << k;
      }
    } else {
      const Key hi = k + rng.UniformInt(1, 30);
      const auto got = db->Scan(k, hi).value();
      std::vector<std::pair<Key, Value>> expect;
      for (auto it = ref.lower_bound(k); it != ref.end() && it->first < hi;
           ++it) {
        expect.push_back(*it);
      }
      ASSERT_EQ(got.size(), expect.size()) << "op " << i;
      for (size_t j = 0; j < got.size(); ++j) {
        EXPECT_EQ(got[j].key, expect[j].first);
        EXPECT_EQ(got[j].value, expect[j].second);
      }
    }
  }

  // Final exhaustive verification.
  for (Key k = 0; k <= 300; ++k) {
    const auto got = db->Get(k);
    const auto it = ref.find(k);
    if (it == ref.end()) {
      EXPECT_FALSE(got.has_value()) << "final key " << k;
    } else {
      ASSERT_TRUE(got.has_value()) << "final key " << k;
      EXPECT_EQ(*got, it->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndBackends, EngineSoakTest,
    ::testing::Values(
        SoakCase{CompactionPolicy::kLeveling, 2, 8, StorageBackend::kMemory},
        SoakCase{CompactionPolicy::kLeveling, 4, 16,
                 StorageBackend::kMemory},
        SoakCase{CompactionPolicy::kLeveling, 10, 4,
                 StorageBackend::kMemory},
        SoakCase{CompactionPolicy::kTiering, 2, 8, StorageBackend::kMemory},
        SoakCase{CompactionPolicy::kTiering, 4, 16, StorageBackend::kMemory},
        SoakCase{CompactionPolicy::kTiering, 8, 4, StorageBackend::kMemory},
        SoakCase{CompactionPolicy::kLeveling, 3, 8, StorageBackend::kFile},
        SoakCase{CompactionPolicy::kTiering, 3, 8, StorageBackend::kFile}));

TEST(EngineInvariantTest, BulkLoadThenSoakKeepsStructure) {
  Options o;
  o.policy = CompactionPolicy::kLeveling;
  o.size_ratio = 4;
  o.buffer_entries = 32;
  o.entries_per_page = 4;
  auto db_or = DB::Open(o);
  ASSERT_TRUE(db_or.ok());
  DB* db = db_or->get();
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 0; k < 2000; ++k) pairs.emplace_back(2 * k, k);
  ASSERT_TRUE(db->BulkLoad(pairs).ok());

  Rng rng(77);
  for (int i = 0; i < 3000; ++i) {
    db->Put(rng.UniformInt(0, 10000) * 2, i);
  }
  // Leveling invariant after churn: at most one run per level.
  for (const LevelInfo& info : db->tree().GetLevelInfos()) {
    EXPECT_LE(info.num_runs, 1u) << "level " << info.level;
  }
  // All originally loaded keys still readable (possibly updated).
  for (Key k = 0; k < 2000; k += 97) {
    EXPECT_TRUE(db->Get(2 * k).has_value()) << k;
  }
}

}  // namespace
}  // namespace endure::lsm
