#include "workload/serialization.h"

#include <gtest/gtest.h>

#include <fstream>

#include "util/random.h"

namespace endure::workload {
namespace {

TEST(WorkloadSerializationTest, RoundTripInMemory) {
  std::vector<Workload> in{Workload(0.25, 0.25, 0.25, 0.25),
                           Workload(0.97, 0.01, 0.01, 0.01),
                           Workload(0.1, 0.2, 0.3, 0.4)};
  auto out = WorkloadsFromString(WorkloadsToString(in));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    for (int c = 0; c < kNumQueryClasses; ++c) {
      EXPECT_NEAR((*out)[i][c], in[i][c], 1e-8);
    }
  }
}

TEST(WorkloadSerializationTest, RoundTripThroughFile) {
  const std::string path = "/tmp/endure_workloads_test.csv";
  std::vector<Workload> in{Workload(0.33, 0.33, 0.33, 0.01)};
  ASSERT_TRUE(SaveWorkloads(path, in).ok());
  auto out = LoadWorkloads(path);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_NEAR((*out)[0].q, 0.33, 1e-8);
}

TEST(WorkloadSerializationTest, CommentsAndBlanksIgnored) {
  auto out = WorkloadsFromString(
      "# header\n\n0.25,0.25,0.25,0.25\n  \n# trailing\n");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

TEST(WorkloadSerializationTest, RejectsMalformedLines) {
  EXPECT_FALSE(WorkloadsFromString("1,2,3\n").ok());       // 3 fields
  EXPECT_FALSE(WorkloadsFromString("a,b,c,d\n").ok());     // garbage
  EXPECT_FALSE(WorkloadsFromString("0.5,0.5,0.5,0.5\n").ok());  // sum != 1
  EXPECT_FALSE(WorkloadsFromString("-0.1,0.6,0.25,0.25\n").ok());
}

TEST(WorkloadSerializationTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadWorkloads("/nonexistent/nope.csv").status().code(),
            StatusCode::kIOError);
}

TEST(TraceSerializationTest, RoundTrip) {
  KeyUniverse universe(100);
  Rng rng(3);
  QueryTrace in = GenerateTrace(Workload(0.3, 0.3, 0.2, 0.2), 64,
                                &universe, &rng);
  const std::string path = "/tmp/endure_trace_test.csv";
  ASSERT_TRUE(SaveTrace(path, in).ok());
  auto out = LoadTrace(path);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->ops.size(), in.ops.size());
  for (size_t i = 0; i < in.ops.size(); ++i) {
    EXPECT_EQ(out->ops[i].type, in.ops[i].type) << i;
    EXPECT_EQ(out->ops[i].key, in.ops[i].key) << i;
    EXPECT_EQ(out->ops[i].limit, in.ops[i].limit) << i;
  }
  for (int c = 0; c < kNumQueryClasses; ++c) {
    EXPECT_EQ(out->counts[c], in.counts[c]);
  }
}

TEST(TraceSerializationTest, RejectsBadClass) {
  const std::string path = "/tmp/endure_trace_bad.csv";
  std::ofstream f(path);
  f << "9,1,0\n";
  f.close();
  EXPECT_FALSE(LoadTrace(path).ok());
}

}  // namespace
}  // namespace endure::workload
