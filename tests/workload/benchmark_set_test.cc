#include "workload/benchmark_set.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/kl.h"
#include "workload/expected_workloads.h"

namespace endure::workload {
namespace {

TEST(BenchmarkSetTest, GeneratesRequestedSize) {
  Rng rng(1);
  BenchmarkSet b(500, &rng);
  EXPECT_EQ(b.size(), 500u);
  EXPECT_EQ(b.Workloads().size(), 500u);
}

TEST(BenchmarkSetTest, AllWorkloadsValid) {
  Rng rng(2);
  BenchmarkSet b(2000, &rng);
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_TRUE(b.sample(i).workload.Validate(1e-9).ok()) << i;
  }
}

TEST(BenchmarkSetTest, CountsMatchWorkload) {
  Rng rng(3);
  BenchmarkSet b(200, &rng);
  for (size_t i = 0; i < b.size(); ++i) {
    const SampledWorkload& s = b.sample(i);
    uint64_t total = 0;
    for (int k = 0; k < kNumQueryClasses; ++k) total += s.counts[k];
    ASSERT_GT(total, 0u);
    for (int k = 0; k < kNumQueryClasses; ++k) {
      EXPECT_NEAR(s.workload[k],
                  static_cast<double>(s.counts[k]) / total, 1e-12);
    }
  }
}

TEST(BenchmarkSetTest, CountsBoundedByMax) {
  Rng rng(4);
  BenchmarkSet b(300, &rng, /*max_count=*/100);
  for (size_t i = 0; i < b.size(); ++i) {
    for (int k = 0; k < kNumQueryClasses; ++k) {
      EXPECT_LE(b.sample(i).counts[k], 100u);
    }
  }
}

TEST(BenchmarkSetTest, DeterministicForSeed) {
  Rng a(42), b(42);
  BenchmarkSet s1(100, &a), s2(100, &b);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(s1.sample(i).workload, s2.sample(i).workload);
  }
}

TEST(BenchmarkSetTest, KlDivergencesMatchDirectComputation) {
  Rng rng(5);
  BenchmarkSet b(50, &rng);
  const Workload w0 = GetExpectedWorkload(0).workload;
  const std::vector<double> kl = b.KlDivergencesTo(w0);
  ASSERT_EQ(kl.size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(kl[i], KlDivergence(b.sample(i).workload, w0));
  }
}

TEST(BenchmarkSetTest, KlToUniformIsMostlySmall) {
  // Fig. 3: divergences w.r.t. w0 concentrate near zero; w.r.t. w1 they
  // spread out to 1.5 - 3.5.
  Rng rng(6);
  BenchmarkSet b(5000, &rng);
  const std::vector<double> kl0 =
      b.KlDivergencesTo(GetExpectedWorkload(0).workload);
  const std::vector<double> kl1 =
      b.KlDivergencesTo(GetExpectedWorkload(1).workload);
  double mean0 = 0.0, mean1 = 0.0;
  for (double v : kl0) mean0 += v;
  for (double v : kl1) mean1 += v;
  mean0 /= kl0.size();
  mean1 /= kl1.size();
  EXPECT_LT(mean0, 0.8);
  EXPECT_GT(mean1, 1.5);
}

TEST(BenchmarkSetTest, FilterByKlRespectsBand) {
  Rng rng(7);
  BenchmarkSet b(3000, &rng);
  const Workload w0 = GetExpectedWorkload(0).workload;
  const auto band = b.FilterByKl(w0, 0.1, 0.3);
  for (const auto& s : band) {
    const double kl = KlDivergence(s.workload, w0);
    EXPECT_GE(kl, 0.1);
    EXPECT_LT(kl, 0.3);
  }
  EXPECT_GT(band.size(), 0u);
}

TEST(BenchmarkSetTest, FilterByDominant) {
  Rng rng(8);
  BenchmarkSet b(20000, &rng);
  const auto writes = b.FilterByDominant(kWrite, 0.8);
  for (const auto& s : writes) EXPECT_GE(s.workload.w, 0.8);
  // ~0.065% of uniform samples are 80%-dominant per class; with 20 K
  // samples we expect on the order of a dozen.
  EXPECT_GT(writes.size(), 0u);
}

TEST(BenchmarkSetTest, FilterByCombinedReads) {
  Rng rng(9);
  BenchmarkSet b(20000, &rng);
  const auto reads = b.FilterByCombinedReads(0.8);
  for (const auto& s : reads) {
    EXPECT_GE(s.workload.z0 + s.workload.z1, 0.8);
    EXPECT_LT(s.workload.z0, 0.8);
    EXPECT_LT(s.workload.z1, 0.8);
  }
  EXPECT_GT(reads.size(), 0u);
}

TEST(BenchmarkSetTest, ContainsZippyDbLikeWorkload) {
  // Section 6: ZippyDB's 78/19/3 get/write/range mix should be covered by
  // the 10 K benchmark (nearby sample within a small KL distance).
  Rng rng(10);
  BenchmarkSet b(10000, &rng);
  const Workload zippy(0.39, 0.39, 0.03, 0.19);  // gets split z0/z1
  double best = 1e9;
  for (const Workload& w : b.Workloads()) {
    best = std::min(best, KlDivergence(w, zippy));
  }
  EXPECT_LT(best, 0.05);
}

}  // namespace
}  // namespace endure::workload
