#include "workload/drift.h"

#include <gtest/gtest.h>

#include "core/kl.h"
#include "util/random.h"

namespace endure::workload {
namespace {

TEST(WorkloadEstimatorTest, EstimateTracksCounts) {
  WorkloadEstimator est;
  est.Record(kEmptyPointQuery, 50);
  est.Record(kNonEmptyPointQuery, 25);
  est.Record(kRangeQuery, 15);
  est.Record(kWrite, 10);
  const Workload w = est.Estimate(0.0);
  EXPECT_NEAR(w.z0, 0.50, 1e-12);
  EXPECT_NEAR(w.z1, 0.25, 1e-12);
  EXPECT_NEAR(w.q, 0.15, 1e-12);
  EXPECT_NEAR(w.w, 0.10, 1e-12);
  EXPECT_EQ(est.total(), 100u);
}

TEST(WorkloadEstimatorTest, SmoothingKeepsAllClassesPositive) {
  WorkloadEstimator est;
  est.Record(kWrite, 100);
  const Workload w = est.Estimate(1e-3);
  for (int i = 0; i < kNumQueryClasses; ++i) EXPECT_GT(w[i], 0.0);
  EXPECT_TRUE(w.Validate(1e-9).ok());
}

TEST(WorkloadEstimatorTest, ResetClears) {
  WorkloadEstimator est;
  est.Record(kWrite, 10);
  est.Reset();
  EXPECT_EQ(est.total(), 0u);
}

class DriftMonitorTest : public ::testing::Test {
 protected:
  DriftMonitorOptions SmallEpochs() {
    DriftMonitorOptions o;
    o.ops_per_epoch = 100;
    o.window_epochs = 4;
    o.alarm_patience = 2;
    return o;
  }

  // Feeds `epochs` epochs of the given mix.
  void Feed(DriftMonitor* mon, const Workload& mix, int epochs,
            uint64_t ops_per_epoch = 100) {
    Rng rng(99);
    for (int e = 0; e < epochs; ++e) {
      for (uint64_t i = 0; i < ops_per_epoch; ++i) {
        const double u = rng.NextDouble();
        QueryClass c = kWrite;
        if (u < mix.z0) {
          c = kEmptyPointQuery;
        } else if (u < mix.z0 + mix.z1) {
          c = kNonEmptyPointQuery;
        } else if (u < mix.z0 + mix.z1 + mix.q) {
          c = kRangeQuery;
        }
        mon->Record(c);
      }
    }
  }
};

TEST_F(DriftMonitorTest, NoAlarmWhileOnTarget) {
  const Workload expected(0.33, 0.33, 0.33, 0.01);
  DriftMonitor mon(expected, 0.5, SmallEpochs());
  Feed(&mon, expected, 6);
  EXPECT_FALSE(mon.DriftAlarm());
  EXPECT_LT(mon.LastEpochDivergence(), 0.5);
  EXPECT_EQ(mon.window_size(), 4u);  // window capped
}

TEST_F(DriftMonitorTest, AlarmsOnSustainedDrift) {
  const Workload expected(0.33, 0.33, 0.33, 0.01);
  DriftMonitor mon(expected, 0.25, SmallEpochs());
  Feed(&mon, expected, 2);
  EXPECT_FALSE(mon.DriftAlarm());
  // Shift hard toward writes: far outside the 0.25-ball.
  Feed(&mon, Workload(0.05, 0.05, 0.05, 0.85), 3);
  EXPECT_TRUE(mon.DriftAlarm());
  EXPECT_GT(mon.LastEpochDivergence(), 0.25);
}

TEST_F(DriftMonitorTest, SingleBlipDoesNotAlarm) {
  const Workload expected(0.33, 0.33, 0.33, 0.01);
  DriftMonitor mon(expected, 0.25, SmallEpochs());
  Feed(&mon, expected, 2);
  Feed(&mon, Workload(0.05, 0.05, 0.05, 0.85), 1);  // one bad epoch
  Feed(&mon, expected, 1);                           // back on target
  EXPECT_FALSE(mon.DriftAlarm());  // patience = 2 consecutive
}

TEST_F(DriftMonitorTest, RetargetClearsAlarm) {
  const Workload expected(0.33, 0.33, 0.33, 0.01);
  const Workload shifted(0.05, 0.05, 0.05, 0.85);
  DriftMonitor mon(expected, 0.25, SmallEpochs());
  Feed(&mon, shifted, 3);
  ASSERT_TRUE(mon.DriftAlarm());
  mon.Retarget(mon.WindowMean(), mon.RecommendedRho());
  EXPECT_FALSE(mon.DriftAlarm());
  // Staying on the new mix keeps the alarm clear.
  Feed(&mon, shifted, 2);
  EXPECT_FALSE(mon.DriftAlarm());
}

TEST_F(DriftMonitorTest, RecommendedRhoReflectsWindowSpread) {
  const Workload expected(0.25, 0.25, 0.25, 0.25);
  DriftMonitor stable(expected, 0.3, SmallEpochs());
  Feed(&stable, expected, 4);
  DriftMonitor churny(expected, 0.3, SmallEpochs());
  Feed(&churny, Workload(0.8, 0.1, 0.05, 0.05), 1);
  Feed(&churny, Workload(0.05, 0.8, 0.1, 0.05), 1);
  Feed(&churny, Workload(0.05, 0.1, 0.8, 0.05), 1);
  Feed(&churny, Workload(0.1, 0.05, 0.05, 0.8), 1);
  EXPECT_LT(stable.RecommendedRho(), churny.RecommendedRho());
}

TEST_F(DriftMonitorTest, WindowMeanTracksObservedMix) {
  const Workload expected(0.25, 0.25, 0.25, 0.25);
  const Workload actual(0.6, 0.2, 0.1, 0.1);
  DriftMonitor mon(expected, 0.3, SmallEpochs());
  Feed(&mon, actual, 4, 2000);
  const Workload mean = mon.WindowMean();
  EXPECT_NEAR(mean.z0, actual.z0, 0.05);
  EXPECT_NEAR(mean.w, actual.w, 0.05);
}

TEST_F(DriftMonitorTest, EmptyWindowFallsBackToTunedValues) {
  const Workload expected(0.25, 0.25, 0.25, 0.25);
  DriftMonitor mon(expected, 0.7, SmallEpochs());
  EXPECT_EQ(mon.WindowMean(), expected);
  EXPECT_DOUBLE_EQ(mon.RecommendedRho(), 0.7);
  EXPECT_FALSE(mon.DriftAlarm());
}

}  // namespace
}  // namespace endure::workload
