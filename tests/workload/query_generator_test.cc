#include "workload/query_generator.h"

#include <gtest/gtest.h>

#include <set>

namespace endure::workload {
namespace {

TEST(KeyUniverseTest, ExistingKeysAreEven) {
  KeyUniverse u(100);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(u.SampleExisting(&rng) % 2, 0u);
    EXPECT_LT(u.SampleExisting(&rng), 200u);
  }
}

TEST(KeyUniverseTest, MissingKeysAreOddAndInDomain) {
  KeyUniverse u(100);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const uint64_t k = u.SampleMissing(&rng);
    EXPECT_EQ(k % 2, 1u);
    EXPECT_LT(k, 200u);
  }
}

TEST(KeyUniverseTest, WriteKeysExtendAndStayUnique) {
  KeyUniverse u(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 50; ++i) {
    const uint64_t k = u.NextWriteKey();
    EXPECT_GE(k, 20u);
    EXPECT_TRUE(seen.insert(k).second);
  }
  EXPECT_EQ(u.count(), 60u);
}

TEST(KeyUniverseTest, InitialKeysShuffledPreservesSet) {
  KeyUniverse u(50);
  Rng rng(3);
  std::vector<uint64_t> keys = u.InitialKeys(&rng);
  EXPECT_EQ(keys.size(), 50u);
  std::set<uint64_t> s(keys.begin(), keys.end());
  EXPECT_EQ(s.size(), 50u);
  for (uint64_t k : s) EXPECT_EQ(k % 2, 0u);
}

TEST(GenerateTraceTest, CountsSumToTotal) {
  KeyUniverse u(1000);
  Rng rng(4);
  Workload w(0.3, 0.3, 0.2, 0.2);
  QueryTrace t = GenerateTrace(w, 997, &u, &rng);
  EXPECT_EQ(t.ops.size(), 997u);
  uint64_t sum = 0;
  for (int c = 0; c < kNumQueryClasses; ++c) sum += t.counts[c];
  EXPECT_EQ(sum, 997u);
}

TEST(GenerateTraceTest, CountsTrackProportions) {
  KeyUniverse u(1000);
  Rng rng(5);
  Workload w(0.5, 0.25, 0.125, 0.125);
  QueryTrace t = GenerateTrace(w, 10000, &u, &rng);
  EXPECT_NEAR(t.counts[kEmptyPointQuery], 5000.0, 1.0);
  EXPECT_NEAR(t.counts[kNonEmptyPointQuery], 2500.0, 1.0);
  EXPECT_NEAR(t.counts[kRangeQuery], 1250.0, 1.0);
  EXPECT_NEAR(t.counts[kWrite], 1250.0, 1.0);
}

TEST(GenerateTraceTest, EmptyReadsTargetMissingKeys) {
  KeyUniverse u(500);
  Rng rng(6);
  Workload w(1.0, 0.0, 0.0, 0.0);
  QueryTrace t = GenerateTrace(w, 100, &u, &rng);
  for (const Operation& op : t.ops) {
    EXPECT_EQ(op.type, kEmptyPointQuery);
    EXPECT_EQ(op.key % 2, 1u);
  }
}

TEST(GenerateTraceTest, NonEmptyReadsTargetExistingKeys) {
  KeyUniverse u(500);
  Rng rng(7);
  Workload w(0.0, 1.0, 0.0, 0.0);
  QueryTrace t = GenerateTrace(w, 100, &u, &rng);
  for (const Operation& op : t.ops) {
    EXPECT_EQ(op.key % 2, 0u);
    EXPECT_LT(op.key, 1000u);
  }
}

TEST(GenerateTraceTest, RangeSpanMatchesOption) {
  KeyUniverse u(500);
  Rng rng(8);
  Workload w(0.0, 0.0, 1.0, 0.0);
  TraceOptions opts;
  opts.range_span_entries = 8;
  QueryTrace t = GenerateTrace(w, 50, &u, &rng, opts);
  for (const Operation& op : t.ops) {
    EXPECT_EQ(op.limit - op.key, 16u);  // 8 entries * key stride 2
  }
}

TEST(GenerateTraceTest, WritesUseFreshKeys) {
  KeyUniverse u(100);
  Rng rng(9);
  Workload w(0.0, 0.0, 0.0, 1.0);
  QueryTrace t = GenerateTrace(w, 60, &u, &rng);
  std::set<uint64_t> keys;
  for (const Operation& op : t.ops) {
    EXPECT_GE(op.key, 200u);
    EXPECT_TRUE(keys.insert(op.key).second);
  }
  EXPECT_EQ(u.count(), 160u);
}

TEST(GenerateTraceTest, InterleaveOffKeepsClassOrder) {
  KeyUniverse u(100);
  Rng rng(10);
  Workload w(0.5, 0.5, 0.0, 0.0);
  TraceOptions opts;
  opts.interleave = false;
  QueryTrace t = GenerateTrace(w, 10, &u, &rng, opts);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(t.ops[i].type, kEmptyPointQuery);
  for (size_t i = 5; i < 10; ++i) {
    EXPECT_EQ(t.ops[i].type, kNonEmptyPointQuery);
  }
}

TEST(GenerateTraceTest, DeterministicForSeed) {
  KeyUniverse u1(100), u2(100);
  Rng r1(11), r2(11);
  Workload w(0.25, 0.25, 0.25, 0.25);
  QueryTrace a = GenerateTrace(w, 64, &u1, &r1);
  QueryTrace b = GenerateTrace(w, 64, &u2, &r2);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].key, b.ops[i].key);
    EXPECT_EQ(a.ops[i].type, b.ops[i].type);
  }
}

}  // namespace
}  // namespace endure::workload
