#include "workload/expected_workloads.h"

#include <gtest/gtest.h>

namespace endure::workload {
namespace {

TEST(ExpectedWorkloadsTest, HasFifteenEntries) {
  EXPECT_EQ(AllExpectedWorkloads().size(), 15u);
}

TEST(ExpectedWorkloadsTest, AllValidWithMinimumOnePercent) {
  // Section 6: a minimum 1% of each query type keeps KL finite.
  for (const auto& ew : AllExpectedWorkloads()) {
    EXPECT_TRUE(ew.workload.Validate(1e-9).ok()) << ew.index;
    for (int i = 0; i < kNumQueryClasses; ++i) {
      EXPECT_GE(ew.workload[i], 0.01 - 1e-12) << ew.index;
    }
  }
}

TEST(ExpectedWorkloadsTest, IndicesAreSequential) {
  const auto& all = AllExpectedWorkloads();
  for (int i = 0; i < 15; ++i) EXPECT_EQ(all[i].index, i);
}

TEST(ExpectedWorkloadsTest, Table2SpotChecks) {
  EXPECT_EQ(GetExpectedWorkload(0).workload, Workload(0.25, 0.25, 0.25, 0.25));
  EXPECT_EQ(GetExpectedWorkload(1).workload, Workload(0.97, 0.01, 0.01, 0.01));
  EXPECT_EQ(GetExpectedWorkload(7).workload, Workload(0.49, 0.01, 0.01, 0.49));
  EXPECT_EQ(GetExpectedWorkload(11).workload,
            Workload(0.33, 0.33, 0.33, 0.01));
  EXPECT_EQ(GetExpectedWorkload(14).workload,
            Workload(0.01, 0.33, 0.33, 0.33));
}

TEST(ExpectedWorkloadsTest, CategoriesMatchTable2) {
  EXPECT_EQ(GetExpectedWorkload(0).category, Category::kUniform);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(GetExpectedWorkload(i).category, Category::kUnimodal) << i;
  }
  for (int i = 5; i <= 10; ++i) {
    EXPECT_EQ(GetExpectedWorkload(i).category, Category::kBimodal) << i;
  }
  for (int i = 11; i <= 14; ++i) {
    EXPECT_EQ(GetExpectedWorkload(i).category, Category::kTrimodal) << i;
  }
}

TEST(ExpectedWorkloadsTest, ByCategoryCounts) {
  EXPECT_EQ(WorkloadsByCategory(Category::kUniform).size(), 1u);
  EXPECT_EQ(WorkloadsByCategory(Category::kUnimodal).size(), 4u);
  EXPECT_EQ(WorkloadsByCategory(Category::kBimodal).size(), 6u);
  EXPECT_EQ(WorkloadsByCategory(Category::kTrimodal).size(), 4u);
}

TEST(ExpectedWorkloadsTest, CategoryNames) {
  EXPECT_STREQ(CategoryName(Category::kUniform), "uniform");
  EXPECT_STREQ(CategoryName(Category::kTrimodal), "trimodal");
}

}  // namespace
}  // namespace endure::workload
