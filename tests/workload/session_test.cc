#include "workload/session.h"

#include <gtest/gtest.h>

#include "core/kl.h"
#include "workload/expected_workloads.h"

namespace endure::workload {
namespace {

TEST(SessionTest, KindNames) {
  EXPECT_STREQ(SessionKindName(SessionKind::kReads), "Reads");
  EXPECT_STREQ(SessionKindName(SessionKind::kEmptyReads), "Empty Reads");
  EXPECT_STREQ(SessionKindName(SessionKind::kExpected), "Expected");
}

TEST(SessionTest, AverageIsComponentMean) {
  Session s;
  s.kind = SessionKind::kReads;
  s.workloads = {Workload(1.0, 0.0, 0.0, 0.0), Workload(0.0, 1.0, 0.0, 0.0)};
  const Workload avg = s.Average();
  EXPECT_NEAR(avg.z0, 0.5, 1e-12);
  EXPECT_NEAR(avg.z1, 0.5, 1e-12);
}

class SessionGeneratorTest : public ::testing::Test {
 protected:
  Workload expected_{0.33, 0.33, 0.33, 0.01};
  Rng rng_{11};
  SessionGenerator gen_{expected_, &rng_};
};

TEST_F(SessionGeneratorTest, ReadsSessionDominatedByCombinedReads) {
  Session s = gen_.Make(SessionKind::kReads);
  EXPECT_EQ(s.workloads.size(), 5u);
  for (const Workload& w : s.workloads) {
    EXPECT_GE(w.z0 + w.z1, 0.8);
    EXPECT_LT(w.z0, 0.8);
    EXPECT_LT(w.z1, 0.8);
  }
}

TEST_F(SessionGeneratorTest, SingleClassSessionsDominated) {
  for (auto [kind, cls] :
       {std::pair{SessionKind::kRange, kRangeQuery},
        std::pair{SessionKind::kEmptyReads, kEmptyPointQuery},
        std::pair{SessionKind::kNonEmptyReads, kNonEmptyPointQuery},
        std::pair{SessionKind::kWrites, kWrite}}) {
    Session s = gen_.Make(kind);
    for (const Workload& w : s.workloads) {
      EXPECT_GE(w[cls], 0.8) << SessionKindName(kind);
    }
  }
}

TEST_F(SessionGeneratorTest, ExpectedSessionInsideKlCap) {
  Session s = gen_.Make(SessionKind::kExpected);
  for (const Workload& w : s.workloads) {
    EXPECT_LT(KlDivergence(w, expected_), 0.2);
    EXPECT_TRUE(w.Validate(1e-9).ok());
  }
}

TEST_F(SessionGeneratorTest, ExpectedSessionWorksForSkewedWorkloads) {
  // w1 = (97,1,1,1): a uniform sampler would essentially never land within
  // KL < 0.2; the generator must still produce valid draws.
  Rng rng(13);
  SessionGenerator gen(GetExpectedWorkload(1).workload, &rng);
  Session s = gen.Make(SessionKind::kExpected);
  for (const Workload& w : s.workloads) {
    EXPECT_LT(KlDivergence(w, GetExpectedWorkload(1).workload), 0.2);
  }
}

TEST_F(SessionGeneratorTest, ReadOnlySequenceShape) {
  // Figs. 8-9: Reads, Range, Empty, Non-Empty, Reads, Reads.
  const std::vector<Session> seq = gen_.ReadOnlySequence();
  ASSERT_EQ(seq.size(), 6u);
  EXPECT_EQ(seq[0].kind, SessionKind::kReads);
  EXPECT_EQ(seq[1].kind, SessionKind::kRange);
  EXPECT_EQ(seq[2].kind, SessionKind::kEmptyReads);
  EXPECT_EQ(seq[3].kind, SessionKind::kNonEmptyReads);
  EXPECT_EQ(seq[4].kind, SessionKind::kReads);
  EXPECT_EQ(seq[5].kind, SessionKind::kReads);
}

TEST_F(SessionGeneratorTest, MixedSequenceShape) {
  // Figs. 10-18: Reads, Range, Empty, Non-Empty, Writes, Expected.
  const std::vector<Session> seq = gen_.MixedSequence();
  ASSERT_EQ(seq.size(), 6u);
  EXPECT_EQ(seq[4].kind, SessionKind::kWrites);
  EXPECT_EQ(seq[5].kind, SessionKind::kExpected);
}

TEST_F(SessionGeneratorTest, CustomSessionLength) {
  SessionOptions opts;
  opts.workloads_per_session = 3;
  Rng rng(14);
  SessionGenerator gen(expected_, &rng, opts);
  EXPECT_EQ(gen.Make(SessionKind::kWrites).workloads.size(), 3u);
}

TEST_F(SessionGeneratorTest, DeterministicForSeed) {
  Rng a(15), b(15);
  SessionGenerator ga(expected_, &a), gb(expected_, &b);
  Session sa = ga.Make(SessionKind::kRange);
  Session sb = gb.Make(SessionKind::kRange);
  for (size_t i = 0; i < sa.workloads.size(); ++i) {
    EXPECT_EQ(sa.workloads[i], sb.workloads[i]);
  }
}

}  // namespace
}  // namespace endure::workload
