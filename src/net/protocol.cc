// Copyright (c) endure-cpp authors. Licensed under the MIT license.

#include "net/protocol.h"

#include <algorithm>

namespace endure::net {

namespace {

/// Caps a PUT_BATCH / SCAN / STATS element count so that a forged count
/// field cannot force an allocation beyond what the (already bounded)
/// payload could actually contain.
constexpr size_t kMaxCountedElements = (kDefaultMaxPayload / 16) + 1;

std::string EncodeKeyFrame(Opcode op, uint64_t id, lsm::Key key) {
  std::string payload;
  WireWriter w(&payload);
  w.U64(key);
  return EncodeFrame(static_cast<uint8_t>(op), id, payload);
}

Status ParseKeyFrame(const Frame& f, Opcode op, const char* what,
                     lsm::Key* key) {
  if (f.opcode != static_cast<uint8_t>(op)) {
    return Status::InvalidArgument(std::string("frame is not a ") + what);
  }
  WireReader r(f.payload);
  *key = r.U64();
  return r.Done(what);
}

}  // namespace

bool IsRequestOpcode(uint8_t op) {
  switch (static_cast<Opcode>(op)) {
    case Opcode::kGet:
    case Opcode::kPut:
    case Opcode::kDelete:
    case Opcode::kPutBatch:
    case Opcode::kScan:
    case Opcode::kStats:
    case Opcode::kApplyTuning:
    case Opcode::kFlush:
    case Opcode::kHello:
      return true;
    case Opcode::kError:
    default:
      return false;
  }
}

std::string EncodeFrame(uint8_t opcode, uint64_t request_id,
                        const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  WireWriter w(&out);
  w.U32(kFrameMagic);
  w.U8(opcode);
  w.U64(request_id);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.Bytes(payload.data(), payload.size());
  return out;
}

void FrameDecoder::Feed(const char* data, size_t n) {
  if (!error_.ok()) return;  // poisoned: drop, the connection is dead
  // Compact once the consumed prefix dominates, so long-lived
  // connections do not grow the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  buf_.append(data, n);
}

Status FrameDecoder::Next(Frame* out, bool* got) {
  *got = false;
  if (!error_.ok()) return error_;
  const size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return Status::OK();
  const char* p = buf_.data() + consumed_;
  WireReader header(p, kFrameHeaderBytes);
  const uint32_t magic = header.U32();
  const uint8_t opcode = header.U8();
  const uint64_t request_id = header.U64();
  const uint32_t payload_len = header.U32();
  if (magic != kFrameMagic) {
    error_ = Status::InvalidArgument("bad frame magic");
    buf_.clear();
    consumed_ = 0;
    return error_;
  }
  if (payload_len > max_payload_) {
    error_ = Status::InvalidArgument(
        "frame payload length " + std::to_string(payload_len) +
        " exceeds limit " + std::to_string(max_payload_));
    buf_.clear();
    consumed_ = 0;
    return error_;
  }
  if (avail < kFrameHeaderBytes + payload_len) return Status::OK();
  out->opcode = opcode;
  out->request_id = request_id;
  out->payload.assign(p + kFrameHeaderBytes, payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  *got = true;
  return Status::OK();
}

// ------------------------------------------------------------- requests --

std::string EncodeGetRequest(uint64_t id, lsm::Key key) {
  return EncodeKeyFrame(Opcode::kGet, id, key);
}

std::string EncodePutRequest(uint64_t id, lsm::Key key, lsm::Value value) {
  std::string payload;
  WireWriter w(&payload);
  w.U64(key);
  w.U64(value);
  return EncodeFrame(static_cast<uint8_t>(Opcode::kPut), id, payload);
}

std::string EncodeDeleteRequest(uint64_t id, lsm::Key key) {
  return EncodeKeyFrame(Opcode::kDelete, id, key);
}

std::string EncodePutBatchRequest(
    uint64_t id, const std::vector<std::pair<lsm::Key, lsm::Value>>& pairs) {
  std::string payload;
  payload.reserve(4 + pairs.size() * 16);
  WireWriter w(&payload);
  w.U32(static_cast<uint32_t>(pairs.size()));
  for (const auto& [key, value] : pairs) {
    w.U64(key);
    w.U64(value);
  }
  return EncodeFrame(static_cast<uint8_t>(Opcode::kPutBatch), id, payload);
}

std::string EncodeScanRequest(uint64_t id, lsm::Key lo, lsm::Key hi) {
  std::string payload;
  WireWriter w(&payload);
  w.U64(lo);
  w.U64(hi);
  return EncodeFrame(static_cast<uint8_t>(Opcode::kScan), id, payload);
}

std::string EncodeStatsRequest(uint64_t id) {
  return EncodeFrame(static_cast<uint8_t>(Opcode::kStats), id, std::string());
}

std::string EncodeApplyTuningRequest(uint64_t id, const TuningWire& tuning) {
  std::string payload;
  WireWriter w(&payload);
  w.U32(tuning.size_ratio);
  w.U8(tuning.policy);
  w.U8(tuning.filter_allocation);
  w.U64(tuning.buffer_entries);
  w.F64(tuning.filter_bits_per_entry);
  return EncodeFrame(static_cast<uint8_t>(Opcode::kApplyTuning), id, payload);
}

std::string EncodeFlushRequest(uint64_t id) {
  return EncodeFrame(static_cast<uint8_t>(Opcode::kFlush), id, std::string());
}

std::string EncodeHelloRequest(uint64_t id, const std::string& tenant_id) {
  std::string payload;
  WireWriter w(&payload);
  w.U16(static_cast<uint16_t>(tenant_id.size()));
  w.Bytes(tenant_id.data(), tenant_id.size());
  return EncodeFrame(static_cast<uint8_t>(Opcode::kHello), id, payload);
}

Status ParseGetRequest(const Frame& f, lsm::Key* key) {
  return ParseKeyFrame(f, Opcode::kGet, "GET", key);
}

Status ParsePutRequest(const Frame& f, lsm::Key* key, lsm::Value* value) {
  if (f.opcode != static_cast<uint8_t>(Opcode::kPut)) {
    return Status::InvalidArgument("frame is not a PUT");
  }
  WireReader r(f.payload);
  *key = r.U64();
  *value = r.U64();
  return r.Done("PUT");
}

Status ParseDeleteRequest(const Frame& f, lsm::Key* key) {
  return ParseKeyFrame(f, Opcode::kDelete, "DELETE", key);
}

Status ParsePutBatchRequest(
    const Frame& f, std::vector<std::pair<lsm::Key, lsm::Value>>* pairs) {
  if (f.opcode != static_cast<uint8_t>(Opcode::kPutBatch)) {
    return Status::InvalidArgument("frame is not a PUT_BATCH");
  }
  WireReader r(f.payload);
  const uint32_t count = r.U32();
  if (count > kMaxCountedElements ||
      static_cast<uint64_t>(count) * 16 != r.remaining()) {
    return Status::InvalidArgument("PUT_BATCH count disagrees with payload");
  }
  pairs->clear();
  pairs->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const lsm::Key key = r.U64();
    const lsm::Value value = r.U64();
    pairs->emplace_back(key, value);
  }
  return r.Done("PUT_BATCH");
}

Status ParseScanRequest(const Frame& f, lsm::Key* lo, lsm::Key* hi) {
  if (f.opcode != static_cast<uint8_t>(Opcode::kScan)) {
    return Status::InvalidArgument("frame is not a SCAN");
  }
  WireReader r(f.payload);
  *lo = r.U64();
  *hi = r.U64();
  return r.Done("SCAN");
}

Status ParseApplyTuningRequest(const Frame& f, TuningWire* tuning) {
  if (f.opcode != static_cast<uint8_t>(Opcode::kApplyTuning)) {
    return Status::InvalidArgument("frame is not an APPLY_TUNING");
  }
  WireReader r(f.payload);
  tuning->size_ratio = r.U32();
  tuning->policy = r.U8();
  tuning->filter_allocation = r.U8();
  tuning->buffer_entries = r.U64();
  tuning->filter_bits_per_entry = r.F64();
  return r.Done("APPLY_TUNING");
}

Status ParseHelloRequest(const Frame& f, std::string* tenant_id) {
  if (f.opcode != static_cast<uint8_t>(Opcode::kHello)) {
    return Status::InvalidArgument("frame is not a HELLO");
  }
  WireReader r(f.payload);
  const uint16_t len = r.U16();
  if (len > kMaxTenantIdBytes) {
    return Status::InvalidArgument("HELLO tenant id exceeds " +
                                   std::to_string(kMaxTenantIdBytes) +
                                   " bytes");
  }
  *tenant_id = r.Bytes(len);
  return r.Done("HELLO");
}

// ------------------------------------------------------------ responses --

namespace {

void WriteWireStatus(WireWriter* w, const Status& status) {
  // Messages are advisory; cap them so a status can never blow the
  // frame limit.
  std::string msg = status.message();
  if (msg.size() > 1024) msg.resize(1024);
  w->U8(static_cast<uint8_t>(status.code()));
  w->U16(static_cast<uint16_t>(msg.size()));
  w->Bytes(msg.data(), msg.size());
  // The throttle backoff hint rides with (and only with) the throttle
  // code, so every other status block keeps its pre-admission layout.
  if (status.code() == StatusCode::kResourceExhausted) {
    w->U32(status.retry_after_ms());
  }
}

uint8_t ResponseOpcode(Opcode request_op) {
  return static_cast<uint8_t>(request_op) | kResponseBit;
}

Status CheckResponse(const Frame& f, Opcode request_op, const char* what) {
  if (f.opcode == static_cast<uint8_t>(Opcode::kError)) {
    WireReader r(f.payload);
    const Status remote = DecodeWireStatus(&r);
    return remote.ok() ? Status::Internal("malformed error frame") : remote;
  }
  if (f.opcode != ResponseOpcode(request_op)) {
    return Status::InvalidArgument(std::string("frame is not a ") + what +
                                   " response");
  }
  return Status::OK();
}

}  // namespace

Status DecodeWireStatus(WireReader* r) {
  const uint8_t code = r->U8();
  const uint16_t msg_len = r->U16();
  const std::string msg = r->Bytes(msg_len);
  if (!r->ok()) return Status::InvalidArgument("truncated status block");
  uint32_t retry_after_ms = 0;
  if (static_cast<StatusCode>(code) == StatusCode::kResourceExhausted) {
    retry_after_ms = r->U32();
    if (!r->ok()) return Status::InvalidArgument("truncated status block");
  }
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case StatusCode::kNotFound:
      return Status::NotFound(msg);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(msg);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(msg);
    case StatusCode::kInternal:
      return Status::Internal(msg);
    case StatusCode::kIOError:
      return Status::IOError(msg);
    case StatusCode::kNotSupported:
      return Status::NotSupported(msg);
    case StatusCode::kCorruption:
      return Status::Corruption(msg);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(msg, retry_after_ms);
  }
  return Status::Internal("unknown remote status code " +
                          std::to_string(code));
}

std::string EncodeStatusResponse(Opcode request_op, uint64_t id,
                                 const Status& status) {
  std::string payload;
  WireWriter w(&payload);
  WriteWireStatus(&w, status);
  return EncodeFrame(ResponseOpcode(request_op), id, payload);
}

std::string EncodeGetResponse(uint64_t id, std::optional<lsm::Value> value) {
  std::string payload;
  WireWriter w(&payload);
  WriteWireStatus(&w, Status::OK());
  w.U8(value.has_value() ? 1 : 0);
  w.U64(value.value_or(0));
  return EncodeFrame(ResponseOpcode(Opcode::kGet), id, payload);
}

std::string EncodeScanResponse(
    uint64_t id, const std::vector<std::pair<lsm::Key, lsm::Value>>& entries) {
  std::string payload;
  payload.reserve(4 + 3 + entries.size() * 16);
  WireWriter w(&payload);
  WriteWireStatus(&w, Status::OK());
  w.U32(static_cast<uint32_t>(entries.size()));
  for (const auto& [key, value] : entries) {
    w.U64(key);
    w.U64(value);
  }
  return EncodeFrame(ResponseOpcode(Opcode::kScan), id, payload);
}

std::string EncodeStatsResponse(uint64_t id,
                                const std::vector<StatPair>& stats) {
  std::string payload;
  WireWriter w(&payload);
  WriteWireStatus(&w, Status::OK());
  w.U32(static_cast<uint32_t>(stats.size()));
  for (const auto& [name, value] : stats) {
    w.U16(static_cast<uint16_t>(name.size()));
    w.Bytes(name.data(), name.size());
    w.U64(value);
  }
  return EncodeFrame(ResponseOpcode(Opcode::kStats), id, payload);
}

std::string EncodeErrorFrame(const Status& status) {
  std::string payload;
  WireWriter w(&payload);
  WriteWireStatus(&w, status.ok() ? Status::Internal("unspecified") : status);
  return EncodeFrame(static_cast<uint8_t>(Opcode::kError), 0, payload);
}

Status ParseGetResponse(const Frame& f, std::optional<lsm::Value>* value) {
  ENDURE_RETURN_IF_ERROR(CheckResponse(f, Opcode::kGet, "GET"));
  WireReader r(f.payload);
  const Status remote = DecodeWireStatus(&r);
  if (!remote.ok()) return remote;
  const uint8_t found = r.U8();
  const lsm::Value v = r.U64();
  ENDURE_RETURN_IF_ERROR(r.Done("GET response"));
  if (found > 1) return Status::InvalidArgument("bad GET found flag");
  *value = found ? std::optional<lsm::Value>(v) : std::nullopt;
  return Status::OK();
}

Status ParseStatusOnlyResponse(const Frame& f) {
  if (f.opcode == static_cast<uint8_t>(Opcode::kError)) {
    WireReader r(f.payload);
    const Status remote = DecodeWireStatus(&r);
    return remote.ok() ? Status::Internal("malformed error frame") : remote;
  }
  if ((f.opcode & kResponseBit) == 0 ||
      !IsRequestOpcode(f.opcode & ~kResponseBit)) {
    return Status::InvalidArgument("frame is not a response");
  }
  WireReader r(f.payload);
  const Status remote = DecodeWireStatus(&r);
  if (!remote.ok()) return remote;
  return r.Done("status response");
}

Status ParseScanResponse(
    const Frame& f, std::vector<std::pair<lsm::Key, lsm::Value>>* entries) {
  ENDURE_RETURN_IF_ERROR(CheckResponse(f, Opcode::kScan, "SCAN"));
  WireReader r(f.payload);
  const Status remote = DecodeWireStatus(&r);
  if (!remote.ok()) return remote;
  const uint32_t count = r.U32();
  if (count > kMaxCountedElements ||
      static_cast<uint64_t>(count) * 16 != r.remaining()) {
    return Status::InvalidArgument("SCAN count disagrees with payload");
  }
  entries->clear();
  entries->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const lsm::Key key = r.U64();
    const lsm::Value value = r.U64();
    entries->emplace_back(key, value);
  }
  return r.Done("SCAN response");
}

Status ParseStatsResponse(const Frame& f, std::vector<StatPair>* stats) {
  ENDURE_RETURN_IF_ERROR(CheckResponse(f, Opcode::kStats, "STATS"));
  WireReader r(f.payload);
  const Status remote = DecodeWireStatus(&r);
  if (!remote.ok()) return remote;
  const uint32_t count = r.U32();
  if (count > kMaxCountedElements) {
    return Status::InvalidArgument("STATS count disagrees with payload");
  }
  stats->clear();
  stats->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint16_t name_len = r.U16();
    std::string name = r.Bytes(name_len);
    const uint64_t value = r.U64();
    if (!r.ok()) break;
    stats->emplace_back(std::move(name), value);
  }
  return r.Done("STATS response");
}

}  // namespace endure::net
