// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Thin C++ client for endure_server: a blocking request/response API
// mirroring the in-process ShardedDB surface, plus a pipelined batch API
// that writes many requests in one burst (which is exactly what lets the
// server coalesce consecutive PUTs into one WAL group commit) and reads
// the responses back in order.
//
// Transport failures reconnect transparently with exponential backoff
// and retry the operation, up to ClientOptions::max_attempts — safe
// because every engine operation is an idempotent upsert/delete/read (a
// retried PUT re-applies the same value). An operation the server acked
// before a crash is durable per the deployment's WAL sync mode; an
// operation without an ack may or may not have applied, and the retry
// resolves exactly that ambiguity.
//
// The retry contract splits three ways:
//  - transport failures: reconnect + resend, as above;
//  - throttles (kResourceExhausted from the server's admission gate):
//    back off honoring the server's retry-after hint (doubling per
//    consecutive throttle, capped) and resend, up to
//    throttle_max_retries; throttle_retries() counts the retries. A
//    throttled request was never executed, so the resend is exact;
//  - every other remote engine error is NOT retried: the server's
//    Status travels back over the wire code-for-code, so a
//    degraded-mode IOError latch or a Corruption latch surfaces to
//    remote callers exactly as it does in-process.
//
// ClientOptions::tenant names the admission tenant: when set, a HELLO
// frame binds it on every (re)connect before anything else is sent. A
// HELLO the server rejects with kResourceExhausted (e.g. the tenant
// table is full) follows the throttle leg of the contract: retried on
// the live connection, honoring the hint, counted by
// throttle_retries().
//
// A Client (and its Pipelines) is not thread-safe: one connection, one
// thread — open one Client per worker, as the stress harness does.

#ifndef ENDURE_NET_CLIENT_H_
#define ENDURE_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "lsm/entry.h"
#include "net/protocol.h"
#include "net/socket_util.h"
#include "util/status.h"

namespace endure::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Total connection attempts per operation (>= 1). Between attempts
  /// the client sleeps an exponentially growing backoff.
  int max_attempts = 5;
  /// First reconnect backoff; doubles per failed attempt up to
  /// backoff_max_ms.
  int backoff_initial_ms = 10;
  int backoff_max_ms = 1000;
  /// Receive timeout per socket read (SO_RCVTIMEO); 0 = wait forever.
  /// Generous by default: a write stalled on engine backpressure is
  /// progress, not a dead server.
  int recv_timeout_ms = 60000;
  /// Frame decode limit (must be >= the server's, or large SCAN/STATS
  /// responses are rejected client-side).
  uint32_t max_frame_payload = kDefaultMaxPayload;
  /// Admission tenant id, bound via HELLO on every (re)connect. Empty
  /// joins the server's anonymous default tenant (no HELLO sent).
  std::string tenant;
  /// Resends per operation (or pipeline) after a kResourceExhausted
  /// throttle, each after a backoff honoring the server's retry-after
  /// hint. 0 surfaces every throttle to the caller.
  int throttle_max_retries = 8;
  /// Ceiling on one throttle backoff sleep.
  int throttle_backoff_cap_ms = 2000;
};

/// One result of a pipelined batch, in request order.
struct PipelineResult {
  uint8_t opcode = 0;  ///< the request's opcode (Opcode values)
  Status status;
  std::optional<lsm::Value> value;  ///< GET only
  std::vector<std::pair<lsm::Key, lsm::Value>> entries;  ///< SCAN only
};

class Client {
 public:
  /// Connects eagerly; fails fast when the server is unreachable after
  /// max_attempts.
  static StatusOr<std::unique_ptr<Client>> Connect(
      const ClientOptions& options);
  ~Client() = default;

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ---- blocking API (one round trip per call) ----
  Status Put(lsm::Key key, lsm::Value value);
  Status Delete(lsm::Key key);
  StatusOr<std::optional<lsm::Value>> Get(lsm::Key key);
  StatusOr<std::vector<std::pair<lsm::Key, lsm::Value>>> Scan(lsm::Key lo,
                                                              lsm::Key hi);
  Status PutBatch(const std::vector<std::pair<lsm::Key, lsm::Value>>& pairs);
  Status Flush();
  StatusOr<std::vector<StatPair>> Stats();
  Status ApplyTuning(const TuningWire& tuning);

  // ---- pipelined API ----
  /// Accumulates requests, then Execute() writes them all in one burst
  /// and reads the responses back in order. On a transport failure the
  /// whole batch is resent (idempotent ops). Reusable after Execute().
  class Pipeline {
   public:
    void Get(lsm::Key key);
    void Put(lsm::Key key, lsm::Value value);
    void Delete(lsm::Key key);
    void Scan(lsm::Key lo, lsm::Key hi);
    void Flush();
    size_t size() const { return kinds_.size(); }

    /// Runs the batch; returns one result per request, in order. A
    /// non-OK overall Status means the transport failed after retries
    /// (no per-request results); per-request engine errors live in the
    /// results' own status fields. Throttled requests are retried with
    /// backoff by resending the contiguous suffix from the first
    /// throttled request — requests within the suffix that had already
    /// succeeded are idempotently re-applied, preserving intra-pipeline
    /// order (a retried write never leapfrogs a later one). A request
    /// that returned OK in any pass keeps that result: a throttle on
    /// its re-apply never relabels an executed request. Throttles
    /// still present after throttle_max_retries stay in the results as
    /// kResourceExhausted — those requests were never executed.
    StatusOr<std::vector<PipelineResult>> Execute();

   private:
    friend class Client;
    explicit Pipeline(Client* client) : client_(client) {}
    Client* client_;
    std::vector<std::string> frames_;  ///< one encoded frame per request
    std::vector<uint8_t> kinds_;       ///< request opcode per entry
  };

  Pipeline NewPipeline() { return Pipeline(this); }

  /// Times the transport reconnected after a broken connection (the
  /// differential harness asserts the kill-server leg actually took
  /// this path).
  uint64_t reconnects() const { return reconnects_; }
  /// Times an operation or pipeline was resent after a throttle
  /// (kResourceExhausted) response — the admission-control sibling of
  /// reconnects().
  uint64_t throttle_retries() const { return throttle_retries_; }
  bool connected() const { return fd_.valid(); }

 private:
  explicit Client(const ClientOptions& options) : options_(options) {}

  /// Connects if disconnected. `attempt` scales the backoff slept
  /// BEFORE the try (attempt 0 is immediate).
  Status EnsureConnected(int attempt);
  void Disconnect();
  /// Writes `request_bytes`, then reads exactly `count` frames. On any
  /// transport error: disconnect, back off, reconnect, resend — up to
  /// max_attempts. Frames are returned in arrival order.
  Status RoundTrip(const std::string& request_bytes, size_t count,
                   std::vector<Frame>* frames);
  /// One attempt of RoundTrip's body (no retry).
  Status TryRoundTrip(const std::string& request_bytes, size_t count,
                      std::vector<Frame>* frames);
  /// Checks a response frame's id against the expected request id
  /// (error frames, id 0, pass — their status speaks for the request).
  static Status CheckId(const Frame& frame, uint64_t want);
  /// When `st` is a retryable throttle (kResourceExhausted and retries
  /// remain), sleeps the backoff — the server's retry-after hint when
  /// present, doubling per consecutive throttle, capped — bumps
  /// throttle_retries_ and returns true. False otherwise.
  bool BackoffIfThrottled(const Status& st, int consecutive);

  const ClientOptions options_;
  OwnedFd fd_;
  FrameDecoder decoder_{kDefaultMaxPayload};
  uint64_t next_id_ = 1;
  uint64_t reconnects_ = 0;
  uint64_t throttle_retries_ = 0;
  bool ever_connected_ = false;
};

}  // namespace endure::net

#endif  // ENDURE_NET_CLIENT_H_
