// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Small POSIX socket helpers shared by the epoll server and the blocking
// client: an owning fd wrapper plus Status-returning setup calls, so the
// net subsystem never leaks a descriptor on an error path.

#ifndef ENDURE_NET_SOCKET_UTIL_H_
#define ENDURE_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace endure::net {

/// Owning file descriptor (close on destruction; moveable, not copyable).
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.Release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();

 private:
  int fd_ = -1;
};

/// Sets O_NONBLOCK on `fd`.
Status MakeNonBlocking(int fd);

/// Disables Nagle (small request/response frames must not wait 40ms).
Status SetTcpNoDelay(int fd);

/// Creates a bound, listening TCP socket on `bind_address:port`
/// (SO_REUSEADDR set; port 0 picks an ephemeral port). On success
/// returns the socket and reports the actually bound port via
/// `bound_port`.
StatusOr<OwnedFd> CreateListener(const std::string& bind_address,
                                 uint16_t port, int backlog,
                                 uint16_t* bound_port);

/// Blocking connect to `host:port`. The returned socket is blocking with
/// TCP_NODELAY set.
StatusOr<OwnedFd> ConnectSocket(const std::string& host, uint16_t port);

/// Writes all of [data, data+n) to a BLOCKING socket (EINTR retried).
Status WriteAll(int fd, const char* data, size_t n);

}  // namespace endure::net

#endif  // ENDURE_NET_SOCKET_UTIL_H_
