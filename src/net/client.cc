// Copyright (c) endure-cpp authors. Licensed under the MIT license.

#include "net/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

namespace endure::net {

namespace {
constexpr size_t kReadChunk = 64 * 1024;
}  // namespace

StatusOr<std::unique_ptr<Client>> Client::Connect(
    const ClientOptions& options) {
  if (options.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (options.backoff_initial_ms < 1 ||
      options.backoff_max_ms < options.backoff_initial_ms) {
    return Status::InvalidArgument("bad backoff configuration");
  }
  std::unique_ptr<Client> client(new Client(options));
  Status st;
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    st = client->EnsureConnected(attempt);
    if (st.ok()) return client;
  }
  return st;
}

Status Client::EnsureConnected(int attempt) {
  if (fd_.valid()) return Status::OK();
  if (attempt > 0) {
    int64_t ms = options_.backoff_initial_ms;
    for (int i = 1; i < attempt && ms < options_.backoff_max_ms; ++i) {
      ms *= 2;
    }
    if (ms > options_.backoff_max_ms) ms = options_.backoff_max_ms;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
  auto sock = ConnectSocket(options_.host, options_.port);
  if (!sock.ok()) return sock.status();
  if (options_.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.recv_timeout_ms / 1000;
    tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(sock->get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  fd_ = std::move(sock).value();
  decoder_ = FrameDecoder(options_.max_frame_payload);
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  return Status::OK();
}

void Client::Disconnect() {
  fd_.Reset();
  decoder_ = FrameDecoder(options_.max_frame_payload);
}

Status Client::TryRoundTrip(const std::string& request_bytes, size_t count,
                            std::vector<Frame>* frames) {
  ENDURE_RETURN_IF_ERROR(
      WriteAll(fd_.get(), request_bytes.data(), request_bytes.size()));
  frames->clear();
  frames->reserve(count);
  char buf[kReadChunk];
  while (frames->size() < count) {
    Frame frame;
    bool got = false;
    ENDURE_RETURN_IF_ERROR(decoder_.Next(&frame, &got));
    if (got) {
      frames->push_back(std::move(frame));
      continue;
    }
    const ssize_t r = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (r > 0) {
      decoder_.Feed(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) {
      return Status::IOError("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("receive timeout");
    }
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status Client::RoundTrip(const std::string& request_bytes, size_t count,
                         std::vector<Frame>* frames) {
  Status st;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    st = EnsureConnected(attempt);
    if (!st.ok()) continue;
    st = TryRoundTrip(request_bytes, count, frames);
    if (st.ok()) return st;
    // Transport trouble (send/recv failure, decode poison): this
    // connection is unusable. Reconnect and resend the idempotent
    // batch. Decode errors are included — a fresh connection restarts
    // framing from a clean slate.
    Disconnect();
  }
  return st;
}

Status Client::CheckId(const Frame& frame, uint64_t want) {
  if (frame.opcode == static_cast<uint8_t>(Opcode::kError)) {
    return Status::OK();  // error frames carry id 0 by design
  }
  if (frame.request_id != want) {
    return Status::Internal("response id " +
                            std::to_string(frame.request_id) +
                            " does not match request id " +
                            std::to_string(want));
  }
  return Status::OK();
}

// ------------------------------------------------------- blocking calls --

Status Client::Put(lsm::Key key, lsm::Value value) {
  const uint64_t id = next_id_++;
  std::vector<Frame> frames;
  ENDURE_RETURN_IF_ERROR(RoundTrip(EncodePutRequest(id, key, value), 1,
                                   &frames));
  ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
  return ParseStatusOnlyResponse(frames[0]);
}

Status Client::Delete(lsm::Key key) {
  const uint64_t id = next_id_++;
  std::vector<Frame> frames;
  ENDURE_RETURN_IF_ERROR(RoundTrip(EncodeDeleteRequest(id, key), 1, &frames));
  ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
  return ParseStatusOnlyResponse(frames[0]);
}

StatusOr<std::optional<lsm::Value>> Client::Get(lsm::Key key) {
  const uint64_t id = next_id_++;
  std::vector<Frame> frames;
  ENDURE_RETURN_IF_ERROR(RoundTrip(EncodeGetRequest(id, key), 1, &frames));
  ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
  std::optional<lsm::Value> value;
  ENDURE_RETURN_IF_ERROR(ParseGetResponse(frames[0], &value));
  return value;
}

StatusOr<std::vector<std::pair<lsm::Key, lsm::Value>>> Client::Scan(
    lsm::Key lo, lsm::Key hi) {
  const uint64_t id = next_id_++;
  std::vector<Frame> frames;
  ENDURE_RETURN_IF_ERROR(RoundTrip(EncodeScanRequest(id, lo, hi), 1,
                                   &frames));
  ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
  std::vector<std::pair<lsm::Key, lsm::Value>> entries;
  ENDURE_RETURN_IF_ERROR(ParseScanResponse(frames[0], &entries));
  return entries;
}

Status Client::PutBatch(
    const std::vector<std::pair<lsm::Key, lsm::Value>>& pairs) {
  const uint64_t id = next_id_++;
  std::vector<Frame> frames;
  ENDURE_RETURN_IF_ERROR(RoundTrip(EncodePutBatchRequest(id, pairs), 1,
                                   &frames));
  ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
  return ParseStatusOnlyResponse(frames[0]);
}

Status Client::Flush() {
  const uint64_t id = next_id_++;
  std::vector<Frame> frames;
  ENDURE_RETURN_IF_ERROR(RoundTrip(EncodeFlushRequest(id), 1, &frames));
  ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
  return ParseStatusOnlyResponse(frames[0]);
}

StatusOr<std::vector<StatPair>> Client::Stats() {
  const uint64_t id = next_id_++;
  std::vector<Frame> frames;
  ENDURE_RETURN_IF_ERROR(RoundTrip(EncodeStatsRequest(id), 1, &frames));
  ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
  std::vector<StatPair> stats;
  ENDURE_RETURN_IF_ERROR(ParseStatsResponse(frames[0], &stats));
  return stats;
}

Status Client::ApplyTuning(const TuningWire& tuning) {
  const uint64_t id = next_id_++;
  std::vector<Frame> frames;
  ENDURE_RETURN_IF_ERROR(RoundTrip(EncodeApplyTuningRequest(id, tuning), 1,
                                   &frames));
  ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
  return ParseStatusOnlyResponse(frames[0]);
}

// ------------------------------------------------------------- pipeline --

void Client::Pipeline::Get(lsm::Key key) {
  buf_ += EncodeGetRequest(client_->next_id_++, key);
  kinds_.push_back(static_cast<uint8_t>(Opcode::kGet));
}

void Client::Pipeline::Put(lsm::Key key, lsm::Value value) {
  buf_ += EncodePutRequest(client_->next_id_++, key, value);
  kinds_.push_back(static_cast<uint8_t>(Opcode::kPut));
}

void Client::Pipeline::Delete(lsm::Key key) {
  buf_ += EncodeDeleteRequest(client_->next_id_++, key);
  kinds_.push_back(static_cast<uint8_t>(Opcode::kDelete));
}

void Client::Pipeline::Scan(lsm::Key lo, lsm::Key hi) {
  buf_ += EncodeScanRequest(client_->next_id_++, lo, hi);
  kinds_.push_back(static_cast<uint8_t>(Opcode::kScan));
}

void Client::Pipeline::Flush() {
  buf_ += EncodeFlushRequest(client_->next_id_++);
  kinds_.push_back(static_cast<uint8_t>(Opcode::kFlush));
}

StatusOr<std::vector<PipelineResult>> Client::Pipeline::Execute() {
  std::vector<Frame> frames;
  ENDURE_RETURN_IF_ERROR(
      client_->RoundTrip(buf_, kinds_.size(), &frames));
  std::vector<PipelineResult> results(kinds_.size());
  for (size_t i = 0; i < kinds_.size(); ++i) {
    PipelineResult& res = results[i];
    res.opcode = kinds_[i];
    switch (static_cast<Opcode>(kinds_[i])) {
      case Opcode::kGet:
        res.status = ParseGetResponse(frames[i], &res.value);
        break;
      case Opcode::kScan:
        res.status = ParseScanResponse(frames[i], &res.entries);
        break;
      default:
        res.status = ParseStatusOnlyResponse(frames[i]);
        break;
    }
  }
  buf_.clear();
  kinds_.clear();
  return results;
}

}  // namespace endure::net
