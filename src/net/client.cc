// Copyright (c) endure-cpp authors. Licensed under the MIT license.

#include "net/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

namespace endure::net {

namespace {
constexpr size_t kReadChunk = 64 * 1024;
}  // namespace

StatusOr<std::unique_ptr<Client>> Client::Connect(
    const ClientOptions& options) {
  if (options.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (options.backoff_initial_ms < 1 ||
      options.backoff_max_ms < options.backoff_initial_ms) {
    return Status::InvalidArgument("bad backoff configuration");
  }
  if (options.throttle_max_retries < 0 ||
      options.throttle_backoff_cap_ms < 1) {
    return Status::InvalidArgument("bad throttle retry configuration");
  }
  if (options.tenant.size() > kMaxTenantIdBytes) {
    return Status::InvalidArgument("tenant id exceeds " +
                                   std::to_string(kMaxTenantIdBytes) +
                                   " bytes");
  }
  std::unique_ptr<Client> client(new Client(options));
  Status st;
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    st = client->EnsureConnected(attempt);
    if (st.ok()) return client;
  }
  return st;
}

Status Client::EnsureConnected(int attempt) {
  if (fd_.valid()) return Status::OK();
  if (attempt > 0) {
    int64_t ms = options_.backoff_initial_ms;
    for (int i = 1; i < attempt && ms < options_.backoff_max_ms; ++i) {
      ms *= 2;
    }
    if (ms > options_.backoff_max_ms) ms = options_.backoff_max_ms;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
  auto sock = ConnectSocket(options_.host, options_.port);
  if (!sock.ok()) return sock.status();
  if (options_.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.recv_timeout_ms / 1000;
    tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(sock->get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  fd_ = std::move(sock).value();
  decoder_ = FrameDecoder(options_.max_frame_payload);
  if (!options_.tenant.empty()) {
    // Bind the tenant before anything else travels: admission on the
    // server bills a frame to the tenant bound when it arrives. A
    // rejected HELLO (kResourceExhausted, e.g. "tenant table full") is
    // an admission throttle, not transport trouble: the connection is
    // healthy, so retry the HELLO on it under the throttle contract —
    // honoring the server's retry-after hint and counting a
    // throttle_retry — instead of tearing down and reconnecting.
    for (int throttles = 0;; ++throttles) {
      const uint64_t id = next_id_++;
      std::vector<Frame> frames;
      Status st = TryRoundTrip(EncodeHelloRequest(id, options_.tenant), 1,
                               &frames);
      if (st.ok()) st = CheckId(frames[0], id);
      if (st.ok()) st = ParseStatusOnlyResponse(frames[0]);
      if (st.ok()) break;
      if (BackoffIfThrottled(st, throttles)) continue;
      Disconnect();
      return st;
    }
  }
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  return Status::OK();
}

bool Client::BackoffIfThrottled(const Status& st, int consecutive) {
  if (st.code() != StatusCode::kResourceExhausted) return false;
  if (consecutive >= options_.throttle_max_retries) return false;
  int64_t ms = st.retry_after_ms() > 0
                   ? static_cast<int64_t>(st.retry_after_ms())
                   : options_.backoff_initial_ms;
  for (int i = 0; i < consecutive && ms < options_.throttle_backoff_cap_ms;
       ++i) {
    ms *= 2;
  }
  ms = std::min<int64_t>(ms, options_.throttle_backoff_cap_ms);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  ++throttle_retries_;
  return true;
}

void Client::Disconnect() {
  fd_.Reset();
  decoder_ = FrameDecoder(options_.max_frame_payload);
}

Status Client::TryRoundTrip(const std::string& request_bytes, size_t count,
                            std::vector<Frame>* frames) {
  ENDURE_RETURN_IF_ERROR(
      WriteAll(fd_.get(), request_bytes.data(), request_bytes.size()));
  frames->clear();
  frames->reserve(count);
  char buf[kReadChunk];
  while (frames->size() < count) {
    Frame frame;
    bool got = false;
    ENDURE_RETURN_IF_ERROR(decoder_.Next(&frame, &got));
    if (got) {
      frames->push_back(std::move(frame));
      continue;
    }
    const ssize_t r = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (r > 0) {
      decoder_.Feed(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) {
      return Status::IOError("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("receive timeout");
    }
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status Client::RoundTrip(const std::string& request_bytes, size_t count,
                         std::vector<Frame>* frames) {
  Status st;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    st = EnsureConnected(attempt);
    if (!st.ok()) continue;
    st = TryRoundTrip(request_bytes, count, frames);
    if (st.ok()) return st;
    // Transport trouble (send/recv failure, decode poison): this
    // connection is unusable. Reconnect and resend the idempotent
    // batch. Decode errors are included — a fresh connection restarts
    // framing from a clean slate.
    Disconnect();
  }
  return st;
}

Status Client::CheckId(const Frame& frame, uint64_t want) {
  if (frame.opcode == static_cast<uint8_t>(Opcode::kError)) {
    return Status::OK();  // error frames carry id 0 by design
  }
  if (frame.request_id != want) {
    return Status::Internal("response id " +
                            std::to_string(frame.request_id) +
                            " does not match request id " +
                            std::to_string(want));
  }
  return Status::OK();
}

// ------------------------------------------------------- blocking calls --

// Each blocking call loops on throttles only: a kResourceExhausted
// response means the request was shed before execution, so the resend
// (with a fresh id, after BackoffIfThrottled's sleep) is exact. Any
// other remote status returns immediately — engine errors are never
// retried.

Status Client::Put(lsm::Key key, lsm::Value value) {
  for (int throttles = 0;; ++throttles) {
    const uint64_t id = next_id_++;
    std::vector<Frame> frames;
    ENDURE_RETURN_IF_ERROR(RoundTrip(EncodePutRequest(id, key, value), 1,
                                     &frames));
    ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
    const Status st = ParseStatusOnlyResponse(frames[0]);
    if (!BackoffIfThrottled(st, throttles)) return st;
  }
}

Status Client::Delete(lsm::Key key) {
  for (int throttles = 0;; ++throttles) {
    const uint64_t id = next_id_++;
    std::vector<Frame> frames;
    ENDURE_RETURN_IF_ERROR(RoundTrip(EncodeDeleteRequest(id, key), 1,
                                     &frames));
    ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
    const Status st = ParseStatusOnlyResponse(frames[0]);
    if (!BackoffIfThrottled(st, throttles)) return st;
  }
}

StatusOr<std::optional<lsm::Value>> Client::Get(lsm::Key key) {
  for (int throttles = 0;; ++throttles) {
    const uint64_t id = next_id_++;
    std::vector<Frame> frames;
    ENDURE_RETURN_IF_ERROR(RoundTrip(EncodeGetRequest(id, key), 1, &frames));
    ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
    std::optional<lsm::Value> value;
    const Status st = ParseGetResponse(frames[0], &value);
    if (st.ok()) return value;
    if (!BackoffIfThrottled(st, throttles)) return st;
  }
}

StatusOr<std::vector<std::pair<lsm::Key, lsm::Value>>> Client::Scan(
    lsm::Key lo, lsm::Key hi) {
  for (int throttles = 0;; ++throttles) {
    const uint64_t id = next_id_++;
    std::vector<Frame> frames;
    ENDURE_RETURN_IF_ERROR(RoundTrip(EncodeScanRequest(id, lo, hi), 1,
                                     &frames));
    ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
    std::vector<std::pair<lsm::Key, lsm::Value>> entries;
    const Status st = ParseScanResponse(frames[0], &entries);
    if (st.ok()) return entries;
    if (!BackoffIfThrottled(st, throttles)) return st;
  }
}

Status Client::PutBatch(
    const std::vector<std::pair<lsm::Key, lsm::Value>>& pairs) {
  for (int throttles = 0;; ++throttles) {
    const uint64_t id = next_id_++;
    std::vector<Frame> frames;
    ENDURE_RETURN_IF_ERROR(RoundTrip(EncodePutBatchRequest(id, pairs), 1,
                                     &frames));
    ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
    const Status st = ParseStatusOnlyResponse(frames[0]);
    if (!BackoffIfThrottled(st, throttles)) return st;
  }
}

Status Client::Flush() {
  for (int throttles = 0;; ++throttles) {
    const uint64_t id = next_id_++;
    std::vector<Frame> frames;
    ENDURE_RETURN_IF_ERROR(RoundTrip(EncodeFlushRequest(id), 1, &frames));
    ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
    const Status st = ParseStatusOnlyResponse(frames[0]);
    if (!BackoffIfThrottled(st, throttles)) return st;
  }
}

StatusOr<std::vector<StatPair>> Client::Stats() {
  // STATS is admission-exempt on the server, but the loop costs nothing
  // and keeps the contract uniform.
  for (int throttles = 0;; ++throttles) {
    const uint64_t id = next_id_++;
    std::vector<Frame> frames;
    ENDURE_RETURN_IF_ERROR(RoundTrip(EncodeStatsRequest(id), 1, &frames));
    ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
    std::vector<StatPair> stats;
    const Status st = ParseStatsResponse(frames[0], &stats);
    if (st.ok()) return stats;
    if (!BackoffIfThrottled(st, throttles)) return st;
  }
}

Status Client::ApplyTuning(const TuningWire& tuning) {
  for (int throttles = 0;; ++throttles) {
    const uint64_t id = next_id_++;
    std::vector<Frame> frames;
    ENDURE_RETURN_IF_ERROR(RoundTrip(EncodeApplyTuningRequest(id, tuning), 1,
                                     &frames));
    ENDURE_RETURN_IF_ERROR(CheckId(frames[0], id));
    const Status st = ParseStatusOnlyResponse(frames[0]);
    if (!BackoffIfThrottled(st, throttles)) return st;
  }
}

// ------------------------------------------------------------- pipeline --

void Client::Pipeline::Get(lsm::Key key) {
  frames_.push_back(EncodeGetRequest(client_->next_id_++, key));
  kinds_.push_back(static_cast<uint8_t>(Opcode::kGet));
}

void Client::Pipeline::Put(lsm::Key key, lsm::Value value) {
  frames_.push_back(EncodePutRequest(client_->next_id_++, key, value));
  kinds_.push_back(static_cast<uint8_t>(Opcode::kPut));
}

void Client::Pipeline::Delete(lsm::Key key) {
  frames_.push_back(EncodeDeleteRequest(client_->next_id_++, key));
  kinds_.push_back(static_cast<uint8_t>(Opcode::kDelete));
}

void Client::Pipeline::Scan(lsm::Key lo, lsm::Key hi) {
  frames_.push_back(EncodeScanRequest(client_->next_id_++, lo, hi));
  kinds_.push_back(static_cast<uint8_t>(Opcode::kScan));
}

void Client::Pipeline::Flush() {
  frames_.push_back(EncodeFlushRequest(client_->next_id_++));
  kinds_.push_back(static_cast<uint8_t>(Opcode::kFlush));
}

StatusOr<std::vector<PipelineResult>> Client::Pipeline::Execute() {
  const size_t n = kinds_.size();
  std::vector<PipelineResult> results(n);
  // Tracks entries that returned OK in some pass: they executed, and
  // their result stays committed. A later pass may resend them (suffix
  // ordering) and see the idempotent re-apply throttled — that reject
  // must not relabel an applied write as never-executed.
  std::vector<bool> done(n, false);
  // Throttle retries resend the contiguous suffix starting at the first
  // throttled request. Resending the whole suffix — not just the
  // throttled subset — keeps intra-pipeline order: a retried write can
  // never be applied after a later write it originally preceded.
  // Suffix requests that already succeeded are idempotent re-applies.
  size_t first = 0;
  for (int throttles = 0;; ++throttles) {
    std::string burst;
    for (size_t i = first; i < n; ++i) burst += frames_[i];
    std::vector<Frame> got;
    ENDURE_RETURN_IF_ERROR(client_->RoundTrip(burst, n - first, &got));
    size_t next_first = n;
    uint32_t hint = 0;
    for (size_t i = first; i < n; ++i) {
      PipelineResult res;
      res.opcode = kinds_[i];
      const Frame& frame = got[i - first];
      switch (static_cast<Opcode>(kinds_[i])) {
        case Opcode::kGet:
          res.status = ParseGetResponse(frame, &res.value);
          break;
        case Opcode::kScan:
          res.status = ParseScanResponse(frame, &res.entries);
          break;
        default:
          res.status = ParseStatusOnlyResponse(frame);
          break;
      }
      if (res.status.code() == StatusCode::kResourceExhausted) {
        if (done[i]) continue;  // committed earlier: keep the OK result
        if (next_first == n) next_first = i;
        hint = std::max(hint, res.status.retry_after_ms());
      } else if (res.status.ok()) {
        done[i] = true;
      }
      results[i] = std::move(res);
    }
    if (next_first == n ||
        !client_->BackoffIfThrottled(
            Status::ResourceExhausted("pipeline throttled", hint),
            throttles)) {
      break;
    }
    first = next_first;
  }
  frames_.clear();
  kinds_.clear();
  return results;
}

}  // namespace endure::net
