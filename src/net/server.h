// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// endure_server: an epoll-based async TCP front-end over ShardedDB
// speaking the length-prefixed binary protocol of net/protocol.h
// (GET / PUT / DELETE / PUT_BATCH / SCAN / STATS / APPLY_TUNING / FLUSH).
//
// One event-loop thread multiplexes every connection. Requests pipeline
// per connection: a client may write any number of frames back to back;
// responses are returned in request order. Consecutive PUT frames that
// arrive in one readable batch are coalesced into a single
// ShardedDB::PutBatch call — one WAL group commit (and at most one
// fsync under kPerBatch) acknowledges the whole run of puts, exactly the
// write-coalescing win the in-process PutBatch API gives local callers.
// Engine calls run inline on the loop thread: reads are lock-free in the
// engine, and a write stalled by backpressure applies that backpressure
// to every connection — the server never buffers unacknowledged writes.
//
// Admission control runs ahead of execution. Every connection belongs
// to a tenant (the anonymous default tenant until a HELLO frame binds
// an id); each tenant has a token bucket (ops/sec and bytes/sec) and a
// bounded pending queue. A frame that cannot be admitted immediately is
// parked in arrival order behind its connection; when the tenant's
// queue is full the frame is shed with kResourceExhausted and a
// retry-after hint — never a silent drop, never a connection close.
// Shedding happens before PUT coalescing, so a rejected write can never
// ride a group commit. Parked frames preserve the per-connection
// response order exactly.
//
// Shutdown() drains gracefully: the listener closes first, requests
// already received are finished and their responses flushed (bounded by
// ServerOptions::drain_timeout_ms), then connections close. Parked
// (throttled) requests are shed with kResourceExhausted at drain start:
// they were never executed, and the client's reject tells it so.
// Admission-exempt frames (STATS, HELLO) that were parked only for
// response ordering are executed, not shed — an operator can observe a
// deployment even mid-drain. A
// request whose frame had not completely arrived at shutdown is never
// executed — the client sees the connection close without an ack, the
// same signal as a crash before commit. See docs/server.md.

#ifndef ENDURE_NET_SERVER_H_
#define ENDURE_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/protocol.h"
#include "net/socket_util.h"
#include "util/status.h"

namespace endure::lsm {
class ShardedDB;
}  // namespace endure::lsm

namespace endure::net {

/// Admission quota of one tenant. Zero on a dimension means unlimited;
/// a tenant with both dimensions zero is never throttled. The bucket's
/// burst capacity is one second of quota, starting full. A nonzero
/// ops_per_sec must be >= 1 (Server::Start rejects fractional rates —
/// a burst capacity below one op could never admit anything). A frame
/// larger than bytes_per_sec is shed immediately with
/// kResourceExhausted rather than parked: it could never be admitted,
/// and parking it would wedge the connection forever.
struct TenantQuota {
  double ops_per_sec = 0;
  double bytes_per_sec = 0;
  bool limited() const { return ops_per_sec > 0 || bytes_per_sec > 0; }
};

struct ServerOptions {
  /// IPv4 address to bind (dotted quad). Loopback by default: exposing
  /// a deployment beyond the host is an explicit operator decision.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (Server::port() reports it).
  uint16_t port = 0;
  /// listen(2) backlog.
  int backlog = 128;
  /// Per-frame payload ceiling enforced by every connection's decoder
  /// (and by SCAN response encoding).
  uint32_t max_frame_payload = kDefaultMaxPayload;
  /// Upper bound on the graceful-drain phase of Shutdown(): responses
  /// not flushable within this window are abandoned (slow-consumer
  /// protection; the requests themselves completed against the engine).
  int drain_timeout_ms = 5000;
  /// Quota applied to every tenant without an explicit override —
  /// including the anonymous tenant connections belong to before HELLO.
  TenantQuota default_quota;
  /// Per-tenant overrides, keyed by the HELLO tenant id.
  std::unordered_map<std::string, TenantQuota> tenant_quotas;
  /// Throttled frames parked per tenant before further ones are shed
  /// with kResourceExhausted. 0 sheds immediately (no parking).
  uint32_t max_pending_per_tenant = 64;
  /// Distinct tenant ids the server will track (including the anonymous
  /// default tenant). A HELLO past the cap is rejected with
  /// kResourceExhausted — a hostile client cannot grow the tenant table
  /// unboundedly. Must be >= 1.
  size_t max_tenants = 1024;
};

/// Monotonic, relaxed-read server counters (the server-side STATS rows).
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t requests_served = 0;     ///< responses written (incl. errors)
  uint64_t puts_coalesced = 0;      ///< PUT frames folded into group commits
  uint64_t coalesced_batches = 0;   ///< PutBatch calls made of >= 2 PUTs
  uint64_t protocol_errors = 0;     ///< connections killed by bad frames
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t admission_rejects = 0;   ///< frames shed with kResourceExhausted
  uint64_t throttled_ms = 0;        ///< total time admitted frames sat parked
  uint64_t queue_depth_peak = 0;    ///< max parked depth any tenant reached
};

/// The epoll server. Start() binds synchronously (port() is valid on
/// return) and spawns the loop thread; Shutdown() (or destruction)
/// drains and joins it. The ShardedDB must outlive the server.
class Server {
 public:
  static StatusOr<std::unique_ptr<Server>> Start(lsm::ShardedDB* db,
                                                 const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The actually bound port (resolves port 0 requests).
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, finish requests already received,
  /// flush their responses (bounded by drain_timeout_ms), close
  /// everything, join the loop thread. Idempotent; callable from any
  /// thread except the loop thread itself.
  void Shutdown();

  /// Relaxed snapshot of the server counters.
  ServerCounters counters() const;

 private:
  struct Conn;
  struct Tenant;

  using Clock = std::chrono::steady_clock;

  Server(lsm::ShardedDB* db, const ServerOptions& options);

  Status Init();
  void Loop();
  void AcceptNew();
  void HandleReadable(Conn* conn);
  void ProcessFrames(Conn* conn);
  /// Admission gate: runs ahead of DispatchFrame for every complete
  /// frame. Dispatches immediately when nothing is parked and the
  /// tenant's bucket has tokens; otherwise parks the frame (order
  /// preserved) or, with the tenant's queue full, sheds it with
  /// kResourceExhausted + retry-after.
  void HandleFrame(Conn* conn, Frame&& frame);
  /// Pops the connection's parked queue while its head is admissible:
  /// rejected entries flush their precomputed response, throttled
  /// entries re-try the token bucket.
  void DrainParked(Conn* conn);
  /// Empties the connection's parked queue in order: throttled entries
  /// are shed with kResourceExhausted, admission-exempt entries (STATS,
  /// HELLO — parked only to keep response order) are executed. Used at
  /// drain start, on EOF and on protocol errors — a parked frame is
  /// never silently dropped.
  void ShedParked(Conn* conn, const char* why);
  /// Looks up (or creates) the tenant for `id`; nullptr when the tenant
  /// table is full.
  Tenant* GetTenant(const std::string& id);
  /// Refills `t`'s bucket and deducts one op + `bytes` if both fit.
  bool TryCharge(Tenant* t, double bytes, Clock::time_point now);
  /// True when a frame of `bytes` can NEVER pass TryCharge no matter
  /// how long it waits: its cost exceeds the bucket's burst capacity
  /// (one second of quota). Such frames are shed immediately.
  bool ExceedsBurstCapacity(const Tenant* t, double bytes) const;
  /// Advisory backoff: milliseconds until `t`'s bucket could admit one
  /// op of `bytes`, clamped to [1, 5000].
  uint32_t RetryAfterMs(const Tenant* t, double bytes,
                        Clock::time_point now) const;
  void DispatchFrame(Conn* conn, const Frame& frame);
  /// Applies the pending coalesced PUT run (if any) through one
  /// PutBatch group commit and queues one response per PUT.
  void FlushPendingPuts(Conn* conn);
  void QueueResponse(Conn* conn, std::string frame_bytes);
  /// Writes as much of conn->outbuf as the socket accepts; arms/disarms
  /// EPOLLOUT; closes the connection when `closing` and drained.
  void FlushWrites(Conn* conn);
  void CloseConn(Conn* conn);
  void UpdateEpoll(Conn* conn);

  lsm::ShardedDB* const db_;
  const ServerOptions options_;
  uint16_t port_ = 0;

  OwnedFd epoll_fd_;
  OwnedFd listen_fd_;
  OwnedFd wake_fd_;  ///< eventfd: Shutdown -> loop wakeup

  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  /// Tenant admission state, keyed by tenant id ("" = the anonymous
  /// default tenant). Loop-thread only; entries live for the server's
  /// lifetime (the table is capped, a HELLO past the cap is rejected).
  std::unordered_map<std::string, std::unique_ptr<Tenant>> tenants_;
  /// Parked (throttled, not yet rejected) frames across all
  /// connections — when nonzero the loop polls with a short timeout to
  /// re-try buckets as they refill.
  size_t parked_total_ = 0;
  bool draining_ = false;  ///< loop-thread state

  std::thread loop_;
  std::mutex shutdown_mu_;
  bool shutdown_called_ = false;
  std::atomic<bool> stop_requested_{false};

  // Counters: written by the loop thread, read from any thread.
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> puts_coalesced_{0};
  std::atomic<uint64_t> coalesced_batches_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> admission_rejects_{0};
  std::atomic<uint64_t> throttled_ms_{0};
  std::atomic<uint64_t> queue_depth_peak_{0};
};

}  // namespace endure::net

#endif  // ENDURE_NET_SERVER_H_
