// Copyright (c) endure-cpp authors. Licensed under the MIT license.

#include "net/socket_util.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace endure::net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

StatusOr<sockaddr_in> ParseAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void OwnedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status MakeNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetTcpNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

StatusOr<OwnedFd> CreateListener(const std::string& bind_address,
                                 uint16_t port, int backlog,
                                 uint16_t* bound_port) {
  auto addr = ParseAddr(bind_address, port);
  if (!addr.ok()) return addr.status();
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), backlog) < 0) return Errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) <
        0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  ENDURE_RETURN_IF_ERROR(MakeNonBlocking(fd.get()));
  return fd;
}

StatusOr<OwnedFd> ConnectSocket(const std::string& host, uint16_t port) {
  auto addr = ParseAddr(host, port);
  if (!addr.ok()) return addr.status();
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
                   sizeof(*addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("connect");
  ENDURE_RETURN_IF_ERROR(SetTcpNoDelay(fd.get()));
  return fd;
}

Status WriteAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace endure::net
