// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Wire protocol of the endure network front-end: length-prefixed binary
// frames over TCP, one frame per request or response, little-endian
// throughout (docs/server.md has the byte tables). The codec is a
// standalone unit with no socket dependency — FrameDecoder consumes raw
// bytes incrementally (torn reads resume exactly where they stopped), so
// the same code path serves the epoll server, the blocking client and
// the seeded fuzz loop in tests/net/protocol_test.cc. Malformed input
// (bad magic, oversized length, truncated or trailing payload bytes)
// is rejected with a Status, never a crash or an unbounded allocation:
// the decoder allocates at most header + max_payload bytes.

#ifndef ENDURE_NET_PROTOCOL_H_
#define ENDURE_NET_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "lsm/entry.h"
#include "util/status.h"

namespace endure::net {

/// Frame magic: "EN1\n" — rejects plain-text and cross-protocol traffic
/// on the first four bytes.
inline constexpr uint32_t kFrameMagic = 0x0a314e45u;

/// Fixed frame header: magic u32 | opcode u8 | request_id u64 |
/// payload_len u32.
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 8 + 4;

/// Default ceiling on one frame's payload. A length field above the
/// decoder's limit is rejected *before* any buffer grows to match it, so
/// a hostile 4 GiB length never allocates 4 GiB.
inline constexpr uint32_t kDefaultMaxPayload = 4u << 20;

/// Request opcodes. Responses echo the request opcode with kResponseBit
/// set; kError (protocol-level failure, not attributable to a request)
/// stands alone.
enum class Opcode : uint8_t {
  kGet = 0x01,
  kPut = 0x02,
  kDelete = 0x03,
  kPutBatch = 0x04,
  kScan = 0x05,
  kStats = 0x06,
  kApplyTuning = 0x07,
  kFlush = 0x08,
  kHello = 0x09,
  kError = 0x7f,
};

/// Ceiling on a HELLO tenant id. Small on purpose: tenant ids are
/// routing labels, not data.
inline constexpr size_t kMaxTenantIdBytes = 128;

inline constexpr uint8_t kResponseBit = 0x80;

/// True iff `op` is a known request opcode.
bool IsRequestOpcode(uint8_t op);

/// One decoded frame: opcode byte (request or response), the caller's
/// request id (echoed verbatim in responses; correlates pipelined
/// requests) and the raw payload.
struct Frame {
  uint8_t opcode = 0;
  uint64_t request_id = 0;
  std::string payload;
};

// ---------------------------------------------------------------- codec --

/// Appends little-endian scalars to a byte string (the encode side).
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}
  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void F64(double v) { Raw(&v, 8); }
  void Bytes(const void* data, size_t n) { Raw(data, n); }

 private:
  void Raw(const void* data, size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }
  std::string* out_;
};

/// Bounds-checked little-endian reads from a byte span (the decode
/// side). Reads past the end set the error flag and return zeros; the
/// caller checks ok() once at the end instead of after every field.
class WireReader {
 public:
  WireReader(const char* data, size_t n) : p_(data), left_(n) {}
  explicit WireReader(const std::string& s) : WireReader(s.data(), s.size()) {}

  uint8_t U8() { return ReadScalar<uint8_t>(); }
  uint16_t U16() { return ReadScalar<uint16_t>(); }
  uint32_t U32() { return ReadScalar<uint32_t>(); }
  uint64_t U64() { return ReadScalar<uint64_t>(); }
  double F64() { return ReadScalar<double>(); }

  /// Reads exactly n bytes into a string (empty + error when short).
  std::string Bytes(size_t n) {
    if (left_ < n) {
      ok_ = false;
      left_ = 0;
      return std::string();
    }
    std::string s(p_, n);
    p_ += n;
    left_ -= n;
    return s;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return left_; }

  /// OK iff every read succeeded AND the payload was fully consumed —
  /// trailing garbage in a fixed-layout message is a malformed frame.
  Status Done(const char* what) const {
    if (!ok_) {
      return Status::InvalidArgument(std::string("truncated ") + what +
                                     " payload");
    }
    if (left_ != 0) {
      return Status::InvalidArgument(std::string("trailing bytes after ") +
                                     what + " payload");
    }
    return Status::OK();
  }

 private:
  template <typename T>
  T ReadScalar() {
    T v{};
    if (left_ < sizeof(T)) {
      ok_ = false;
      left_ = 0;
      return v;
    }
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    left_ -= sizeof(T);
    return v;
  }

  const char* p_;
  size_t left_;
  bool ok_ = true;
};

/// Encodes a complete frame (header + payload) ready to write to a
/// socket.
std::string EncodeFrame(uint8_t opcode, uint64_t request_id,
                        const std::string& payload);

/// Incremental frame decoder. Feed() raw bytes as they arrive (any
/// fragmentation — a torn header or payload resumes on the next Feed);
/// Next() yields complete frames in order. A malformed header (bad
/// magic, unknown opcode byte is NOT checked here — opcode validity is
/// message-level) or an oversized length poisons the decoder: every
/// subsequent Next() returns the same error, because a byte stream with
/// a corrupt frame boundary cannot be resynchronized.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends raw bytes. Cheap when the decoder is already poisoned (the
  /// bytes are dropped).
  void Feed(const char* data, size_t n);

  /// Extracts the next complete frame. Returns OK and sets *got=false
  /// when more bytes are needed; OK and *got=true with *out filled when
  /// a frame completed; a non-OK status once the stream is malformed.
  Status Next(Frame* out, bool* got);

  /// Bytes currently buffered (tests assert the bound).
  size_t buffered_bytes() const { return buf_.size() - consumed_; }

 private:
  uint32_t max_payload_;
  std::string buf_;
  size_t consumed_ = 0;  ///< prefix of buf_ already handed out
  Status error_;         ///< sticky decode error
};

// ------------------------------------------------------------- messages --

/// The tunable knobs APPLY_TUNING carries (the remote subset of
/// lsm::Options a tuner changes at runtime; the server overlays them on
/// the deployment's current options and calls ShardedDB::ApplyTuning).
struct TuningWire {
  uint32_t size_ratio = 10;
  uint8_t policy = 0;             ///< lsm::CompactionPolicy value
  uint8_t filter_allocation = 0;  ///< lsm::FilterAllocation value
  uint64_t buffer_entries = 1024;
  double filter_bits_per_entry = 5.0;
};

/// One named counter of a STATS response.
using StatPair = std::pair<std::string, uint64_t>;

// Request encoders: a complete frame for each opcode.
std::string EncodeGetRequest(uint64_t id, lsm::Key key);
std::string EncodePutRequest(uint64_t id, lsm::Key key, lsm::Value value);
std::string EncodeDeleteRequest(uint64_t id, lsm::Key key);
std::string EncodePutBatchRequest(
    uint64_t id, const std::vector<std::pair<lsm::Key, lsm::Value>>& pairs);
std::string EncodeScanRequest(uint64_t id, lsm::Key lo, lsm::Key hi);
std::string EncodeStatsRequest(uint64_t id);
std::string EncodeApplyTuningRequest(uint64_t id, const TuningWire& tuning);
std::string EncodeFlushRequest(uint64_t id);
/// HELLO binds the connection to a tenant for admission control:
/// payload is `len u16 | tenant bytes` (at most kMaxTenantIdBytes).
/// The response is a status-only frame.
std::string EncodeHelloRequest(uint64_t id, const std::string& tenant_id);

// Request payload parsers (frame.opcode must match; payload layout is
// validated end to end — truncated or oversized payloads are errors).
Status ParseGetRequest(const Frame& f, lsm::Key* key);
Status ParsePutRequest(const Frame& f, lsm::Key* key, lsm::Value* value);
Status ParseDeleteRequest(const Frame& f, lsm::Key* key);
Status ParsePutBatchRequest(
    const Frame& f, std::vector<std::pair<lsm::Key, lsm::Value>>* pairs);
Status ParseScanRequest(const Frame& f, lsm::Key* lo, lsm::Key* hi);
Status ParseApplyTuningRequest(const Frame& f, TuningWire* tuning);
Status ParseHelloRequest(const Frame& f, std::string* tenant_id);

/// Every response payload begins with a status block: code u8 |
/// msg_len u16 | msg bytes, followed by `retry_after_ms u32` when (and
/// only when) the code is kResourceExhausted — the admission throttle's
/// backoff hint travels with the status. On a non-OK status the
/// op-specific body is absent.
std::string EncodeStatusResponse(Opcode request_op, uint64_t id,
                                 const Status& status);
std::string EncodeGetResponse(uint64_t id, std::optional<lsm::Value> value);
std::string EncodeScanResponse(
    uint64_t id, const std::vector<std::pair<lsm::Key, lsm::Value>>& entries);
std::string EncodeStatsResponse(uint64_t id,
                                const std::vector<StatPair>& stats);
/// A protocol-level error frame (request id 0): sent once before the
/// server closes a connection it cannot parse.
std::string EncodeErrorFrame(const Status& status);

/// Decodes the leading status block of a response payload via `r`.
/// Wire codes map back onto StatusCode (unknown codes -> kInternal), so
/// a remote degraded-mode IOError or Corruption latch surfaces to the
/// caller exactly as it does in-process.
Status DecodeWireStatus(WireReader* r);

// Response body parsers: each validates the status block first and
// returns the remote status when non-OK.
Status ParseGetResponse(const Frame& f, std::optional<lsm::Value>* value);
Status ParseStatusOnlyResponse(const Frame& f);
Status ParseScanResponse(
    const Frame& f, std::vector<std::pair<lsm::Key, lsm::Value>>* entries);
Status ParseStatsResponse(const Frame& f, std::vector<StatPair>* stats);

}  // namespace endure::net

#endif  // ENDURE_NET_PROTOCOL_H_
