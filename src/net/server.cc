// Copyright (c) endure-cpp authors. Licensed under the MIT license.

#include "net/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "lsm/sharded_db.h"

namespace endure::net {

namespace {
constexpr size_t kReadChunk = 64 * 1024;

/// Clamp for the advisory retry-after hint carried by throttle rejects.
constexpr uint32_t kMaxRetryAfterMs = 5000;

/// Admission cost of a frame on the bytes/sec dimension.
double FrameCost(const Frame& frame) {
  return static_cast<double>(kFrameHeaderBytes + frame.payload.size());
}

/// True for opcodes the token bucket charges. STATS stays exempt so an
/// operator can always observe a throttled deployment, HELLO so a
/// tenant can always identify itself; both still park behind earlier
/// frames to preserve response order. Unknown opcodes are exempt too —
/// they terminate the connection in DispatchFrame.
bool IsThrottledOpcode(uint8_t op) {
  return IsRequestOpcode(op) && op != static_cast<uint8_t>(Opcode::kStats) &&
         op != static_cast<uint8_t>(Opcode::kHello);
}
}  // namespace

/// Per-tenant admission state (loop-thread only, so no locks): a token
/// bucket per quota dimension plus the parked-frame depth across every
/// connection bound to the tenant.
struct Server::Tenant {
  std::string id;
  TenantQuota quota;
  double op_tokens = 0;
  double byte_tokens = 0;
  Clock::time_point last_refill{};
  uint32_t pending = 0;  ///< parked (charged, not rejected) frames
};

/// Per-connection state. Frames are processed the moment they complete,
/// so at any instant the connection's pending work is exactly `outbuf`
/// (responses not yet accepted by the socket) plus an incomplete frame
/// prefix inside `decoder` (never executed if the connection dies).
struct Server::Conn {
  explicit Conn(OwnedFd f, uint32_t max_payload)
      : fd(std::move(f)), decoder(max_payload) {}

  OwnedFd fd;
  FrameDecoder decoder;
  std::string outbuf;
  size_t out_off = 0;
  /// No more reads (EOF or protocol error); close once outbuf drains.
  bool closing = false;
  /// Events currently registered with epoll (avoids redundant MOD calls).
  uint32_t epoll_events = 0;
  /// Coalescing scratch: the run of consecutive PUT frames seen in the
  /// current ProcessFrames pass (request ids parallel to pairs).
  std::vector<uint64_t> pending_put_ids;
  std::vector<std::pair<lsm::Key, lsm::Value>> pending_put_pairs;

  /// One frame held back by admission control. Either a throttled frame
  /// waiting for tokens (`charged` holds the tenant whose pending count
  /// it occupies) or an already-shed frame whose reject response waits
  /// its turn in the response order (`rejected`).
  struct Parked {
    Frame frame;
    Clock::time_point arrived{};
    Tenant* charged = nullptr;
    bool rejected = false;
    std::string response;
  };

  /// The tenant this connection bills against (the anonymous default
  /// tenant until HELLO binds an id).
  Tenant* tenant = nullptr;
  /// Frames not yet dispatched, in arrival order. Responses must come
  /// back in request order, so once anything is parked every later
  /// frame parks behind it.
  std::deque<Parked> parked;
};

Server::Server(lsm::ShardedDB* db, const ServerOptions& options)
    : db_(db), options_(options) {}

StatusOr<std::unique_ptr<Server>> Server::Start(lsm::ShardedDB* db,
                                                const ServerOptions& options) {
  if (db == nullptr) {
    return Status::InvalidArgument("Server::Start: null ShardedDB");
  }
  if (options.drain_timeout_ms < 0) {
    return Status::InvalidArgument("drain_timeout_ms must be >= 0");
  }
  if (options.max_frame_payload < 64) {
    return Status::InvalidArgument("max_frame_payload must be >= 64");
  }
  if (options.max_tenants < 1) {
    return Status::InvalidArgument("max_tenants must be >= 1");
  }
  // A nonzero ops_per_sec below 1 would make the bucket's burst
  // capacity (one second of quota) smaller than a single op's cost:
  // no frame could ever be admitted. Reject the config outright.
  auto quota_error = [](const TenantQuota& q) -> const char* {
    if (!(q.ops_per_sec >= 0 && q.bytes_per_sec >= 0 &&
          std::isfinite(q.ops_per_sec) && std::isfinite(q.bytes_per_sec))) {
      return "must be finite and >= 0";
    }
    if (q.ops_per_sec > 0 && q.ops_per_sec < 1.0) {
      return "ops_per_sec must be 0 (unlimited) or >= 1";
    }
    return nullptr;
  };
  if (const char* err = quota_error(options.default_quota)) {
    return Status::InvalidArgument(std::string("default quota ") + err);
  }
  for (const auto& [id, quota] : options.tenant_quotas) {
    if (id.size() > kMaxTenantIdBytes) {
      return Status::InvalidArgument("tenant id \"" + id + "\" exceeds " +
                                     std::to_string(kMaxTenantIdBytes) +
                                     " bytes");
    }
    if (const char* err = quota_error(quota)) {
      return Status::InvalidArgument("quota for tenant \"" + id + "\" " +
                                     err);
    }
  }
  std::unique_ptr<Server> server(new Server(db, options));
  ENDURE_RETURN_IF_ERROR(server->Init());
  server->loop_ = std::thread([s = server.get()] { s->Loop(); });
  return server;
}

Status Server::Init() {
  epoll_fd_ = OwnedFd(::epoll_create1(0));
  if (!epoll_fd_.valid()) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_ = OwnedFd(::eventfd(0, EFD_NONBLOCK));
  if (!wake_fd_.valid()) {
    return Status::IOError(std::string("eventfd: ") + std::strerror(errno));
  }
  auto listener = CreateListener(options_.bind_address, options_.port,
                                 options_.backlog, &port_);
  if (!listener.ok()) return listener.status();
  listen_fd_ = std::move(listener).value();

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
  }
  ev.data.fd = listen_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &ev) <
      0) {
    return Status::IOError(std::string("epoll_ctl(listen): ") +
                           std::strerror(errno));
  }
  // The anonymous tenant exists before the cap can fill the table, so
  // every accepted connection always has somewhere to bill.
  GetTenant(std::string());
  return Status::OK();
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shutdown_called_) {
      // A second caller must still not return before the loop exits.
      if (loop_.joinable()) loop_.join();
      return;
    }
    shutdown_called_ = true;
  }
  stop_requested_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t rc = ::write(wake_fd_.get(), &one, sizeof(one));
  if (loop_.joinable()) loop_.join();
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  c.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  c.requests_served = requests_served_.load(std::memory_order_relaxed);
  c.puts_coalesced = puts_coalesced_.load(std::memory_order_relaxed);
  c.coalesced_batches = coalesced_batches_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  c.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  c.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  c.throttled_ms = throttled_ms_.load(std::memory_order_relaxed);
  c.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
  return c;
}

Server::Tenant* Server::GetTenant(const std::string& id) {
  auto it = tenants_.find(id);
  if (it != tenants_.end()) return it->second.get();
  if (tenants_.size() >= options_.max_tenants) return nullptr;
  auto tenant = std::make_unique<Tenant>();
  tenant->id = id;
  auto q = options_.tenant_quotas.find(id);
  tenant->quota =
      q != options_.tenant_quotas.end() ? q->second : options_.default_quota;
  // The bucket starts full: burst capacity is one second of quota.
  tenant->op_tokens = tenant->quota.ops_per_sec;
  tenant->byte_tokens = tenant->quota.bytes_per_sec;
  tenant->last_refill = Clock::now();
  Tenant* raw = tenant.get();
  tenants_.emplace(id, std::move(tenant));
  return raw;
}

bool Server::ExceedsBurstCapacity(const Tenant* t, double bytes) const {
  if (!t->quota.limited()) return false;
  // Defensive: Start() already rejects 0 < ops_per_sec < 1.
  if (t->quota.ops_per_sec > 0 && t->quota.ops_per_sec < 1.0) return true;
  return t->quota.bytes_per_sec > 0 && bytes > t->quota.bytes_per_sec;
}

bool Server::TryCharge(Tenant* t, double bytes, Clock::time_point now) {
  if (!t->quota.limited()) return true;
  const double secs =
      std::chrono::duration<double>(now - t->last_refill).count();
  if (secs > 0) {
    t->last_refill = now;
    if (t->quota.ops_per_sec > 0) {
      t->op_tokens = std::min(t->quota.ops_per_sec,
                              t->op_tokens + secs * t->quota.ops_per_sec);
    }
    if (t->quota.bytes_per_sec > 0) {
      t->byte_tokens = std::min(t->quota.bytes_per_sec,
                                t->byte_tokens + secs * t->quota.bytes_per_sec);
    }
  }
  if (t->quota.ops_per_sec > 0 && t->op_tokens < 1.0) return false;
  if (t->quota.bytes_per_sec > 0 && t->byte_tokens < bytes) return false;
  if (t->quota.ops_per_sec > 0) t->op_tokens -= 1.0;
  if (t->quota.bytes_per_sec > 0) t->byte_tokens -= bytes;
  return true;
}

uint32_t Server::RetryAfterMs(const Tenant* t, double bytes,
                              Clock::time_point now) const {
  double wait_secs = 0;
  const double since =
      std::chrono::duration<double>(now - t->last_refill).count();
  if (t->quota.ops_per_sec > 0) {
    const double have = std::min(t->quota.ops_per_sec,
                                 t->op_tokens + since * t->quota.ops_per_sec);
    if (have < 1.0) {
      wait_secs = std::max(wait_secs, (1.0 - have) / t->quota.ops_per_sec);
    }
  }
  if (t->quota.bytes_per_sec > 0) {
    const double have =
        std::min(t->quota.bytes_per_sec,
                 t->byte_tokens + since * t->quota.bytes_per_sec);
    if (have < bytes) {
      wait_secs = std::max(wait_secs, (bytes - have) / t->quota.bytes_per_sec);
    }
  }
  const double ms = std::ceil(wait_secs * 1000.0);
  if (ms <= 1.0) return 1;
  if (ms >= kMaxRetryAfterMs) return kMaxRetryAfterMs;
  return static_cast<uint32_t>(ms);
}

void Server::Loop() {
  std::vector<epoll_event> events(128);
  Clock::time_point drain_deadline{};

  while (true) {
    if (draining_) {
      // Connections whose responses are fully flushed have nothing in
      // flight: close them now. ProcessFrames already ran for every
      // byte read, so outbuf is the complete remaining obligation.
      std::vector<int> done;
      for (auto& [fd, conn] : conns_) {
        if (conn->out_off >= conn->outbuf.size()) done.push_back(fd);
      }
      for (int fd : done) {
        auto it = conns_.find(fd);
        if (it != conns_.end()) CloseConn(it->second.get());
      }
      if (conns_.empty()) break;
    }

    int timeout_ms = -1;
    if (draining_) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          drain_deadline - Clock::now());
      if (left.count() <= 0) break;  // slow consumers: abandon
      timeout_ms = static_cast<int>(left.count());
    } else if (parked_total_ > 0) {
      // Throttled frames are waiting on bucket refills, not on socket
      // events: poll again when the earliest head could be admitted.
      uint32_t wait = 100;
      const auto now = Clock::now();
      for (const auto& [fd, conn] : conns_) {
        if (conn->parked.empty()) continue;
        const Conn::Parked& head = conn->parked.front();
        if (head.charged == nullptr) {
          wait = 1;  // rejected/exempt head: flushable immediately
          break;
        }
        wait = std::min(
            wait, RetryAfterMs(head.charged, FrameCost(head.frame), now));
      }
      timeout_ms = static_cast<int>(std::max(1u, wait));
    }

    const int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed: nothing recoverable
    }

    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == wake_fd_.get()) {
        uint64_t drop;
        while (::read(wake_fd_.get(), &drop, sizeof(drop)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_.get()) {
        if (!draining_) AcceptNew();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Conn* conn = it->second.get();
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(conn);
        continue;
      }
      if ((ev & EPOLLIN) != 0 && !conn->closing) HandleReadable(conn);
      // HandleReadable may have closed the connection.
      if (conns_.find(fd) == conns_.end()) continue;
      if ((ev & (EPOLLOUT | EPOLLIN)) != 0) FlushWrites(conn);
    }

    // Re-try parked heads against their (refilling) buckets.
    if (parked_total_ > 0) {
      std::vector<int> parked_fds;
      for (const auto& [fd, conn] : conns_) {
        if (!conn->parked.empty()) parked_fds.push_back(fd);
      }
      for (int fd : parked_fds) {
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        Conn* conn = it->second.get();
        DrainParked(conn);
        FlushPendingPuts(conn);
        FlushWrites(conn);  // may close the connection
      }
    }

    if (stop_requested_.load(std::memory_order_acquire) && !draining_) {
      // Drain: the listener closes first (no new connections or
      // requests), already-received requests were executed on arrival,
      // so what remains is flushing their responses. Parked (throttled)
      // frames in flight are shed with kResourceExhausted — rejected,
      // never silently dropped — which keeps the drain window bounded
      // by flushing, not by quota refill rates.
      draining_ = true;
      drain_deadline = Clock::now() +
                       std::chrono::milliseconds(options_.drain_timeout_ms);
      ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listen_fd_.get(), nullptr);
      listen_fd_.Reset();
      std::vector<int> parked_fds;
      for (const auto& [fd, conn] : conns_) {
        if (!conn->parked.empty()) parked_fds.push_back(fd);
      }
      for (int fd : parked_fds) {
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        Conn* conn = it->second.get();
        ShedParked(conn, "server draining");
        FlushWrites(conn);
      }
    }
  }

  // Force-close whatever the drain deadline abandoned.
  while (!conns_.empty()) CloseConn(conns_.begin()->second.get());
}

void Server::AcceptNew() {
  while (true) {
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: epoll re-reports
    }
    OwnedFd owned(fd);
    (void)SetTcpNoDelay(fd);  // best-effort
    auto conn =
        std::make_unique<Conn>(std::move(owned), options_.max_frame_payload);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;  // conn (and fd) destroyed: nothing registered
    }
    conn->epoll_events = EPOLLIN;
    conn->tenant = GetTenant(std::string());  // pre-created in Init
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(fd, std::move(conn));
  }
}

void Server::HandleReadable(Conn* conn) {
  char buf[kReadChunk];
  bool eof = false;
  while (true) {
    const ssize_t r = ::read(conn->fd.get(), buf, sizeof(buf));
    if (r > 0) {
      bytes_read_.fetch_add(static_cast<uint64_t>(r),
                            std::memory_order_relaxed);
      conn->decoder.Feed(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn);
    return;
  }
  ProcessFrames(conn);
  if (eof && !conn->closing) {
    // The client finished its side; anything it pipelined was either
    // executed or — if still parked by admission — shed with a reject
    // now, since no refill will ever be read back. Flush, then close.
    ShedParked(conn, "connection closing");
    conn->closing = true;
  }
}

void Server::ProcessFrames(Conn* conn) {
  while (true) {
    Frame frame;
    bool got = false;
    const Status st = conn->decoder.Next(&frame, &got);
    if (!st.ok()) {
      // Unresynchronizable stream: reject anything still parked (their
      // frames were well-formed; they must not vanish silently), then
      // one clean error frame, then close.
      ShedParked(conn, "connection closing on protocol error");
      FlushPendingPuts(conn);
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      QueueResponse(conn, EncodeErrorFrame(st));
      conn->closing = true;
      return;
    }
    if (!got) break;
    HandleFrame(conn, std::move(frame));
    if (conn->closing) return;  // dispatch hit a fatal frame
  }
  FlushPendingPuts(conn);
}

void Server::HandleFrame(Conn* conn, Frame&& frame) {
  const auto now = Clock::now();
  const double cost = FrameCost(frame);
  const bool throttled = IsThrottledOpcode(frame.opcode);
  // A frame costlier than the bucket's burst capacity can never pass
  // TryCharge no matter how long it waits: shed it up front. Parking
  // it would wedge the connection forever (the never-admissible head
  // would block every later frame and busy-wake the loop).
  const bool oversized =
      throttled && ExceedsBurstCapacity(conn->tenant, cost);
  // Fast path: nothing parked ahead (order is safe) and the bucket
  // admits the frame right now.
  if (!oversized && conn->parked.empty() &&
      (!throttled || TryCharge(conn->tenant, cost, now))) {
    DispatchFrame(conn, frame);
    return;
  }
  Conn::Parked parked;
  parked.arrived = now;
  if (!throttled) {
    // Exempt frames still park so responses keep request order; they
    // never charge the bucket or occupy the tenant's pending budget.
    parked.frame = std::move(frame);
  } else if (oversized) {
    // Waiting cannot help, so the hint is pinned to the clamp: the
    // client should treat this like a sustained throttle and give up
    // (or split the request) rather than hammer retries.
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    parked.rejected = true;
    parked.response = EncodeStatusResponse(
        static_cast<Opcode>(frame.opcode), frame.request_id,
        Status::ResourceExhausted(
            "frame of " + std::to_string(static_cast<uint64_t>(cost)) +
                " bytes exceeds tenant \"" + conn->tenant->id +
                "\" burst capacity (bytes_per_sec=" +
                std::to_string(static_cast<uint64_t>(
                    conn->tenant->quota.bytes_per_sec)) +
                "); split the request",
            kMaxRetryAfterMs));
  } else if (!draining_ &&
             conn->tenant->pending < options_.max_pending_per_tenant) {
    parked.frame = std::move(frame);
    parked.charged = conn->tenant;
    const uint32_t depth = ++conn->tenant->pending;
    if (depth > queue_depth_peak_.load(std::memory_order_relaxed)) {
      queue_depth_peak_.store(depth, std::memory_order_relaxed);
    }
  } else {
    // Shed: the tenant's queue is full (or the server is draining).
    // The reject is a first-class response — precomputed here, emitted
    // in request order by DrainParked — with a hint sized to the bucket
    // deficit plus the queue already ahead of the caller.
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    uint32_t hint = RetryAfterMs(conn->tenant, cost, now);
    if (conn->tenant->quota.ops_per_sec > 0) {
      const double queue_ms =
          1000.0 * conn->tenant->pending / conn->tenant->quota.ops_per_sec;
      hint = static_cast<uint32_t>(std::min<double>(
          kMaxRetryAfterMs, hint + std::ceil(queue_ms)));
    }
    parked.rejected = true;
    parked.response = EncodeStatusResponse(
        static_cast<Opcode>(frame.opcode), frame.request_id,
        Status::ResourceExhausted(
            draining_ ? "server draining"
                      : "tenant \"" + conn->tenant->id +
                            "\" over admission quota",
            hint));
  }
  conn->parked.push_back(std::move(parked));
  ++parked_total_;
  DrainParked(conn);
}

void Server::DrainParked(Conn* conn) {
  const auto now = Clock::now();
  while (!conn->parked.empty() && !conn->closing) {
    Conn::Parked& head = conn->parked.front();
    if (head.rejected) {
      // A coalesced PUT run buffered ahead of this reject must ack
      // first — shed-before-coalesce also means reject-after-commit.
      FlushPendingPuts(conn);
      QueueResponse(conn, std::move(head.response));
      conn->parked.pop_front();
      --parked_total_;
      continue;
    }
    if (head.charged != nullptr) {
      if (!TryCharge(head.charged, FrameCost(head.frame), now)) break;
      --head.charged->pending;
      throttled_ms_.fetch_add(
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  now - head.arrived)
                  .count()),
          std::memory_order_relaxed);
    }
    Frame frame = std::move(head.frame);
    conn->parked.pop_front();
    --parked_total_;
    DispatchFrame(conn, frame);
  }
}

void Server::ShedParked(Conn* conn, const char* why) {
  if (conn->parked.empty()) return;
  FlushPendingPuts(conn);
  parked_total_ -= conn->parked.size();
  std::deque<Conn::Parked> parked;
  parked.swap(conn->parked);
  for (Conn::Parked& entry : parked) {
    if (entry.rejected) {
      QueueResponse(conn, std::move(entry.response));
      continue;
    }
    if (entry.charged == nullptr && !conn->closing) {
      // Admission-exempt frames (STATS, HELLO) parked only to keep
      // response order: execute them. They were never subject to
      // quota, and the operator must stay able to observe a draining
      // deployment. (Skipped once dispatch turned the connection
      // fatal — the final error frame is already queued.)
      DispatchFrame(conn, entry.frame);
      continue;
    }
    if (entry.charged != nullptr) --entry.charged->pending;
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        conn,
        EncodeStatusResponse(static_cast<Opcode>(entry.frame.opcode),
                             entry.frame.request_id,
                             Status::ResourceExhausted(why, 50)));
  }
}

void Server::DispatchFrame(Conn* conn, const Frame& frame) {
  const auto op = static_cast<Opcode>(frame.opcode);

  // Coalescing: buffer consecutive PUTs; any other opcode (or the end
  // of this readable batch) commits the run in one PutBatch.
  if (op == Opcode::kPut) {
    lsm::Key key;
    lsm::Value value;
    const Status st = ParsePutRequest(frame, &key, &value);
    if (!st.ok()) {
      FlushPendingPuts(conn);
      QueueResponse(conn,
                    EncodeStatusResponse(Opcode::kPut, frame.request_id, st));
      return;
    }
    conn->pending_put_ids.push_back(frame.request_id);
    conn->pending_put_pairs.emplace_back(key, value);
    return;
  }
  FlushPendingPuts(conn);

  switch (op) {
    case Opcode::kGet: {
      lsm::Key key;
      const Status st = ParseGetRequest(frame, &key);
      if (!st.ok()) {
        QueueResponse(
            conn, EncodeStatusResponse(Opcode::kGet, frame.request_id, st));
        return;
      }
      QueueResponse(conn, EncodeGetResponse(frame.request_id, db_->Get(key)));
      return;
    }
    case Opcode::kDelete: {
      lsm::Key key;
      Status st = ParseDeleteRequest(frame, &key);
      if (st.ok()) st = db_->Delete(key);
      QueueResponse(
          conn, EncodeStatusResponse(Opcode::kDelete, frame.request_id, st));
      return;
    }
    case Opcode::kPutBatch: {
      std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
      Status st = ParsePutBatchRequest(frame, &pairs);
      if (st.ok()) st = db_->PutBatch(pairs);
      QueueResponse(conn, EncodeStatusResponse(Opcode::kPutBatch,
                                               frame.request_id, st));
      return;
    }
    case Opcode::kScan: {
      lsm::Key lo, hi;
      Status st = ParseScanRequest(frame, &lo, &hi);
      if (!st.ok()) {
        QueueResponse(
            conn, EncodeStatusResponse(Opcode::kScan, frame.request_id, st));
        return;
      }
      auto result = db_->Scan(lo, hi);
      if (!result.ok()) {
        QueueResponse(conn, EncodeStatusResponse(Opcode::kScan,
                                                 frame.request_id,
                                                 result.status()));
        return;
      }
      const size_t max_entries = (options_.max_frame_payload - 32) / 16;
      if (result->size() > max_entries) {
        QueueResponse(
            conn,
            EncodeStatusResponse(
                Opcode::kScan, frame.request_id,
                Status::OutOfRange(
                    "scan result (" + std::to_string(result->size()) +
                    " entries) exceeds the per-frame limit (" +
                    std::to_string(max_entries) +
                    "); narrow the range")));
        return;
      }
      std::vector<std::pair<lsm::Key, lsm::Value>> entries;
      entries.reserve(result->size());
      for (const lsm::Entry& e : *result) entries.emplace_back(e.key, e.value);
      QueueResponse(conn, EncodeScanResponse(frame.request_id, entries));
      return;
    }
    case Opcode::kStats: {
      std::vector<StatPair> stats = db_->RemoteStatsSnapshot();
      const ServerCounters c = counters();
      stats.emplace_back("server_connections_accepted",
                         c.connections_accepted);
      stats.emplace_back("server_connections_closed", c.connections_closed);
      stats.emplace_back("server_requests_served", c.requests_served);
      stats.emplace_back("server_puts_coalesced", c.puts_coalesced);
      stats.emplace_back("server_coalesced_batches", c.coalesced_batches);
      stats.emplace_back("server_protocol_errors", c.protocol_errors);
      stats.emplace_back("server_bytes_read", c.bytes_read);
      stats.emplace_back("server_bytes_written", c.bytes_written);
      stats.emplace_back("server_admission_rejects", c.admission_rejects);
      stats.emplace_back("server_throttled_ms", c.throttled_ms);
      stats.emplace_back("server_queue_depth_peak", c.queue_depth_peak);
      QueueResponse(conn, EncodeStatsResponse(frame.request_id, stats));
      return;
    }
    case Opcode::kHello: {
      std::string tenant_id;
      Status st = ParseHelloRequest(frame, &tenant_id);
      if (st.ok()) {
        Tenant* tenant = GetTenant(tenant_id);
        if (tenant == nullptr) {
          st = Status::ResourceExhausted("tenant table full", 1000);
          admission_rejects_.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Frames already parked stay billed to the tenant that
          // admitted them; the new binding governs frames from here on.
          conn->tenant = tenant;
        }
      }
      QueueResponse(
          conn, EncodeStatusResponse(Opcode::kHello, frame.request_id, st));
      return;
    }
    case Opcode::kApplyTuning: {
      TuningWire t;
      Status st = ParseApplyTuningRequest(frame, &t);
      if (st.ok() && t.policy > 2) {
        st = Status::InvalidArgument("bad policy value " +
                                     std::to_string(t.policy));
      }
      if (st.ok() && t.filter_allocation > 1) {
        st = Status::InvalidArgument("bad filter_allocation value " +
                                     std::to_string(t.filter_allocation));
      }
      if (st.ok()) {
        lsm::Options next = db_->options();
        next.size_ratio = static_cast<int>(t.size_ratio);
        next.policy = static_cast<lsm::CompactionPolicy>(t.policy);
        next.filter_allocation =
            static_cast<lsm::FilterAllocation>(t.filter_allocation);
        next.buffer_entries = t.buffer_entries;
        next.filter_bits_per_entry = t.filter_bits_per_entry;
        st = db_->ApplyTuning(next);
      }
      QueueResponse(conn, EncodeStatusResponse(Opcode::kApplyTuning,
                                               frame.request_id, st));
      return;
    }
    case Opcode::kFlush: {
      QueueResponse(conn, EncodeStatusResponse(Opcode::kFlush,
                                               frame.request_id,
                                               db_->Flush()));
      return;
    }
    default: {
      // Unknown opcode inside a well-framed header: the stream framing
      // may still be intact, but the peer speaks a different dialect —
      // reject loudly and close, like the magic check.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      QueueResponse(conn,
                    EncodeErrorFrame(Status::InvalidArgument(
                        "unknown opcode " + std::to_string(frame.opcode))));
      conn->closing = true;
      return;
    }
  }
}

void Server::FlushPendingPuts(Conn* conn) {
  if (conn->pending_put_ids.empty()) return;
  Status st;
  if (conn->pending_put_pairs.size() == 1) {
    st = db_->Put(conn->pending_put_pairs[0].first,
                  conn->pending_put_pairs[0].second);
  } else {
    st = db_->PutBatch(conn->pending_put_pairs);
    coalesced_batches_.fetch_add(1, std::memory_order_relaxed);
    puts_coalesced_.fetch_add(conn->pending_put_pairs.size(),
                              std::memory_order_relaxed);
  }
  for (const uint64_t id : conn->pending_put_ids) {
    QueueResponse(conn, EncodeStatusResponse(Opcode::kPut, id, st));
  }
  conn->pending_put_ids.clear();
  conn->pending_put_pairs.clear();
}

void Server::QueueResponse(Conn* conn, std::string frame_bytes) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  // Compact the consumed prefix before it dominates the buffer.
  if (conn->out_off > 0 && conn->out_off >= conn->outbuf.size() / 2) {
    conn->outbuf.erase(0, conn->out_off);
    conn->out_off = 0;
  }
  conn->outbuf += frame_bytes;
}

void Server::FlushWrites(Conn* conn) {
  while (conn->out_off < conn->outbuf.size()) {
    const ssize_t w =
        ::send(conn->fd.get(), conn->outbuf.data() + conn->out_off,
               conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(conn);
      return;
    }
    bytes_written_.fetch_add(static_cast<uint64_t>(w),
                             std::memory_order_relaxed);
    conn->out_off += static_cast<size_t>(w);
  }
  const bool drained = conn->out_off >= conn->outbuf.size();
  if (drained) {
    conn->outbuf.clear();
    conn->out_off = 0;
    if (conn->closing) {
      CloseConn(conn);
      return;
    }
  }
  UpdateEpoll(conn);
}

void Server::UpdateEpoll(Conn* conn) {
  uint32_t want = 0;
  if (!conn->closing) want |= EPOLLIN;
  if (conn->out_off < conn->outbuf.size()) want |= EPOLLOUT;
  if (want == conn->epoll_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn->fd.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev) == 0) {
    conn->epoll_events = want;
  }
}

void Server::CloseConn(Conn* conn) {
  const int fd = conn->fd.get();
  // A force-closed connection (peer hangup, drain deadline) may still
  // hold parked frames: release their tenant pending budget. No
  // responses — the transport is gone, which is the unacked-write
  // signal clients already resolve by resending.
  for (const Conn::Parked& entry : conn->parked) {
    if (!entry.rejected && entry.charged != nullptr) {
      --entry.charged->pending;
    }
  }
  parked_total_ -= conn->parked.size();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  conns_.erase(fd);  // destroys conn (and closes the fd)
}

}  // namespace endure::net
