// Copyright (c) endure-cpp authors. Licensed under the MIT license.

#include "net/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "lsm/sharded_db.h"

namespace endure::net {

namespace {
constexpr size_t kReadChunk = 64 * 1024;
}  // namespace

/// Per-connection state. Frames are processed the moment they complete,
/// so at any instant the connection's pending work is exactly `outbuf`
/// (responses not yet accepted by the socket) plus an incomplete frame
/// prefix inside `decoder` (never executed if the connection dies).
struct Server::Conn {
  explicit Conn(OwnedFd f, uint32_t max_payload)
      : fd(std::move(f)), decoder(max_payload) {}

  OwnedFd fd;
  FrameDecoder decoder;
  std::string outbuf;
  size_t out_off = 0;
  /// No more reads (EOF or protocol error); close once outbuf drains.
  bool closing = false;
  /// Events currently registered with epoll (avoids redundant MOD calls).
  uint32_t epoll_events = 0;
  /// Coalescing scratch: the run of consecutive PUT frames seen in the
  /// current ProcessFrames pass (request ids parallel to pairs).
  std::vector<uint64_t> pending_put_ids;
  std::vector<std::pair<lsm::Key, lsm::Value>> pending_put_pairs;
};

Server::Server(lsm::ShardedDB* db, const ServerOptions& options)
    : db_(db), options_(options) {}

StatusOr<std::unique_ptr<Server>> Server::Start(lsm::ShardedDB* db,
                                                const ServerOptions& options) {
  if (db == nullptr) {
    return Status::InvalidArgument("Server::Start: null ShardedDB");
  }
  if (options.drain_timeout_ms < 0) {
    return Status::InvalidArgument("drain_timeout_ms must be >= 0");
  }
  if (options.max_frame_payload < 64) {
    return Status::InvalidArgument("max_frame_payload must be >= 64");
  }
  std::unique_ptr<Server> server(new Server(db, options));
  ENDURE_RETURN_IF_ERROR(server->Init());
  server->loop_ = std::thread([s = server.get()] { s->Loop(); });
  return server;
}

Status Server::Init() {
  epoll_fd_ = OwnedFd(::epoll_create1(0));
  if (!epoll_fd_.valid()) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_ = OwnedFd(::eventfd(0, EFD_NONBLOCK));
  if (!wake_fd_.valid()) {
    return Status::IOError(std::string("eventfd: ") + std::strerror(errno));
  }
  auto listener = CreateListener(options_.bind_address, options_.port,
                                 options_.backlog, &port_);
  if (!listener.ok()) return listener.status();
  listen_fd_ = std::move(listener).value();

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
  }
  ev.data.fd = listen_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &ev) <
      0) {
    return Status::IOError(std::string("epoll_ctl(listen): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shutdown_called_) {
      // A second caller must still not return before the loop exits.
      if (loop_.joinable()) loop_.join();
      return;
    }
    shutdown_called_ = true;
  }
  stop_requested_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t rc = ::write(wake_fd_.get(), &one, sizeof(one));
  if (loop_.joinable()) loop_.join();
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  c.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  c.requests_served = requests_served_.load(std::memory_order_relaxed);
  c.puts_coalesced = puts_coalesced_.load(std::memory_order_relaxed);
  c.coalesced_batches = coalesced_batches_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  c.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return c;
}

void Server::Loop() {
  using Clock = std::chrono::steady_clock;
  std::vector<epoll_event> events(128);
  Clock::time_point drain_deadline{};

  while (true) {
    if (draining_) {
      // Connections whose responses are fully flushed have nothing in
      // flight: close them now. ProcessFrames already ran for every
      // byte read, so outbuf is the complete remaining obligation.
      std::vector<int> done;
      for (auto& [fd, conn] : conns_) {
        if (conn->out_off >= conn->outbuf.size()) done.push_back(fd);
      }
      for (int fd : done) {
        auto it = conns_.find(fd);
        if (it != conns_.end()) CloseConn(it->second.get());
      }
      if (conns_.empty()) break;
    }

    int timeout_ms = -1;
    if (draining_) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          drain_deadline - Clock::now());
      if (left.count() <= 0) break;  // slow consumers: abandon
      timeout_ms = static_cast<int>(left.count());
    }

    const int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed: nothing recoverable
    }

    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == wake_fd_.get()) {
        uint64_t drop;
        while (::read(wake_fd_.get(), &drop, sizeof(drop)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_.get()) {
        if (!draining_) AcceptNew();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Conn* conn = it->second.get();
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(conn);
        continue;
      }
      if ((ev & EPOLLIN) != 0 && !conn->closing) HandleReadable(conn);
      // HandleReadable may have closed the connection.
      if (conns_.find(fd) == conns_.end()) continue;
      if ((ev & (EPOLLOUT | EPOLLIN)) != 0) FlushWrites(conn);
    }

    if (stop_requested_.load(std::memory_order_acquire) && !draining_) {
      // Drain: the listener closes first (no new connections or
      // requests), already-received requests were executed on arrival,
      // so what remains is flushing their responses.
      draining_ = true;
      drain_deadline = Clock::now() +
                       std::chrono::milliseconds(options_.drain_timeout_ms);
      ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listen_fd_.get(), nullptr);
      listen_fd_.Reset();
    }
  }

  // Force-close whatever the drain deadline abandoned.
  while (!conns_.empty()) CloseConn(conns_.begin()->second.get());
}

void Server::AcceptNew() {
  while (true) {
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: epoll re-reports
    }
    OwnedFd owned(fd);
    (void)SetTcpNoDelay(fd);  // best-effort
    auto conn =
        std::make_unique<Conn>(std::move(owned), options_.max_frame_payload);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;  // conn (and fd) destroyed: nothing registered
    }
    conn->epoll_events = EPOLLIN;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(fd, std::move(conn));
  }
}

void Server::HandleReadable(Conn* conn) {
  char buf[kReadChunk];
  bool eof = false;
  while (true) {
    const ssize_t r = ::read(conn->fd.get(), buf, sizeof(buf));
    if (r > 0) {
      bytes_read_.fetch_add(static_cast<uint64_t>(r),
                            std::memory_order_relaxed);
      conn->decoder.Feed(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn);
    return;
  }
  ProcessFrames(conn);
  if (eof) {
    // The client finished its side; anything it pipelined was just
    // executed. Flush the responses, then close.
    conn->closing = true;
  }
}

void Server::ProcessFrames(Conn* conn) {
  while (true) {
    Frame frame;
    bool got = false;
    const Status st = conn->decoder.Next(&frame, &got);
    if (!st.ok()) {
      // Unresynchronizable stream: one clean error frame, then close.
      FlushPendingPuts(conn);
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      QueueResponse(conn, EncodeErrorFrame(st));
      conn->closing = true;
      return;
    }
    if (!got) break;
    DispatchFrame(conn, frame);
    if (conn->closing) return;  // dispatch hit a fatal frame
  }
  FlushPendingPuts(conn);
}

void Server::DispatchFrame(Conn* conn, const Frame& frame) {
  const auto op = static_cast<Opcode>(frame.opcode);

  // Coalescing: buffer consecutive PUTs; any other opcode (or the end
  // of this readable batch) commits the run in one PutBatch.
  if (op == Opcode::kPut) {
    lsm::Key key;
    lsm::Value value;
    const Status st = ParsePutRequest(frame, &key, &value);
    if (!st.ok()) {
      FlushPendingPuts(conn);
      QueueResponse(conn,
                    EncodeStatusResponse(Opcode::kPut, frame.request_id, st));
      return;
    }
    conn->pending_put_ids.push_back(frame.request_id);
    conn->pending_put_pairs.emplace_back(key, value);
    return;
  }
  FlushPendingPuts(conn);

  switch (op) {
    case Opcode::kGet: {
      lsm::Key key;
      const Status st = ParseGetRequest(frame, &key);
      if (!st.ok()) {
        QueueResponse(
            conn, EncodeStatusResponse(Opcode::kGet, frame.request_id, st));
        return;
      }
      QueueResponse(conn, EncodeGetResponse(frame.request_id, db_->Get(key)));
      return;
    }
    case Opcode::kDelete: {
      lsm::Key key;
      Status st = ParseDeleteRequest(frame, &key);
      if (st.ok()) st = db_->Delete(key);
      QueueResponse(
          conn, EncodeStatusResponse(Opcode::kDelete, frame.request_id, st));
      return;
    }
    case Opcode::kPutBatch: {
      std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
      Status st = ParsePutBatchRequest(frame, &pairs);
      if (st.ok()) st = db_->PutBatch(pairs);
      QueueResponse(conn, EncodeStatusResponse(Opcode::kPutBatch,
                                               frame.request_id, st));
      return;
    }
    case Opcode::kScan: {
      lsm::Key lo, hi;
      Status st = ParseScanRequest(frame, &lo, &hi);
      if (!st.ok()) {
        QueueResponse(
            conn, EncodeStatusResponse(Opcode::kScan, frame.request_id, st));
        return;
      }
      auto result = db_->Scan(lo, hi);
      if (!result.ok()) {
        QueueResponse(conn, EncodeStatusResponse(Opcode::kScan,
                                                 frame.request_id,
                                                 result.status()));
        return;
      }
      const size_t max_entries = (options_.max_frame_payload - 32) / 16;
      if (result->size() > max_entries) {
        QueueResponse(
            conn,
            EncodeStatusResponse(
                Opcode::kScan, frame.request_id,
                Status::OutOfRange(
                    "scan result (" + std::to_string(result->size()) +
                    " entries) exceeds the per-frame limit (" +
                    std::to_string(max_entries) +
                    "); narrow the range")));
        return;
      }
      std::vector<std::pair<lsm::Key, lsm::Value>> entries;
      entries.reserve(result->size());
      for (const lsm::Entry& e : *result) entries.emplace_back(e.key, e.value);
      QueueResponse(conn, EncodeScanResponse(frame.request_id, entries));
      return;
    }
    case Opcode::kStats: {
      std::vector<StatPair> stats = db_->RemoteStatsSnapshot();
      const ServerCounters c = counters();
      stats.emplace_back("server_connections_accepted",
                         c.connections_accepted);
      stats.emplace_back("server_connections_closed", c.connections_closed);
      stats.emplace_back("server_requests_served", c.requests_served);
      stats.emplace_back("server_puts_coalesced", c.puts_coalesced);
      stats.emplace_back("server_coalesced_batches", c.coalesced_batches);
      stats.emplace_back("server_protocol_errors", c.protocol_errors);
      stats.emplace_back("server_bytes_read", c.bytes_read);
      stats.emplace_back("server_bytes_written", c.bytes_written);
      QueueResponse(conn, EncodeStatsResponse(frame.request_id, stats));
      return;
    }
    case Opcode::kApplyTuning: {
      TuningWire t;
      Status st = ParseApplyTuningRequest(frame, &t);
      if (st.ok() && t.policy > 2) {
        st = Status::InvalidArgument("bad policy value " +
                                     std::to_string(t.policy));
      }
      if (st.ok() && t.filter_allocation > 1) {
        st = Status::InvalidArgument("bad filter_allocation value " +
                                     std::to_string(t.filter_allocation));
      }
      if (st.ok()) {
        lsm::Options next = db_->options();
        next.size_ratio = static_cast<int>(t.size_ratio);
        next.policy = static_cast<lsm::CompactionPolicy>(t.policy);
        next.filter_allocation =
            static_cast<lsm::FilterAllocation>(t.filter_allocation);
        next.buffer_entries = t.buffer_entries;
        next.filter_bits_per_entry = t.filter_bits_per_entry;
        st = db_->ApplyTuning(next);
      }
      QueueResponse(conn, EncodeStatusResponse(Opcode::kApplyTuning,
                                               frame.request_id, st));
      return;
    }
    case Opcode::kFlush: {
      QueueResponse(conn, EncodeStatusResponse(Opcode::kFlush,
                                               frame.request_id,
                                               db_->Flush()));
      return;
    }
    default: {
      // Unknown opcode inside a well-framed header: the stream framing
      // may still be intact, but the peer speaks a different dialect —
      // reject loudly and close, like the magic check.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      QueueResponse(conn,
                    EncodeErrorFrame(Status::InvalidArgument(
                        "unknown opcode " + std::to_string(frame.opcode))));
      conn->closing = true;
      return;
    }
  }
}

void Server::FlushPendingPuts(Conn* conn) {
  if (conn->pending_put_ids.empty()) return;
  Status st;
  if (conn->pending_put_pairs.size() == 1) {
    st = db_->Put(conn->pending_put_pairs[0].first,
                  conn->pending_put_pairs[0].second);
  } else {
    st = db_->PutBatch(conn->pending_put_pairs);
    coalesced_batches_.fetch_add(1, std::memory_order_relaxed);
    puts_coalesced_.fetch_add(conn->pending_put_pairs.size(),
                              std::memory_order_relaxed);
  }
  for (const uint64_t id : conn->pending_put_ids) {
    QueueResponse(conn, EncodeStatusResponse(Opcode::kPut, id, st));
  }
  conn->pending_put_ids.clear();
  conn->pending_put_pairs.clear();
}

void Server::QueueResponse(Conn* conn, std::string frame_bytes) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  // Compact the consumed prefix before it dominates the buffer.
  if (conn->out_off > 0 && conn->out_off >= conn->outbuf.size() / 2) {
    conn->outbuf.erase(0, conn->out_off);
    conn->out_off = 0;
  }
  conn->outbuf += frame_bytes;
}

void Server::FlushWrites(Conn* conn) {
  while (conn->out_off < conn->outbuf.size()) {
    const ssize_t w =
        ::send(conn->fd.get(), conn->outbuf.data() + conn->out_off,
               conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(conn);
      return;
    }
    bytes_written_.fetch_add(static_cast<uint64_t>(w),
                             std::memory_order_relaxed);
    conn->out_off += static_cast<size_t>(w);
  }
  const bool drained = conn->out_off >= conn->outbuf.size();
  if (drained) {
    conn->outbuf.clear();
    conn->out_off = 0;
    if (conn->closing) {
      CloseConn(conn);
      return;
    }
  }
  UpdateEpoll(conn);
}

void Server::UpdateEpoll(Conn* conn) {
  uint32_t want = 0;
  if (!conn->closing) want |= EPOLLIN;
  if (conn->out_off < conn->outbuf.size()) want |= EPOLLOUT;
  if (want == conn->epoll_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn->fd.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev) == 0) {
    conn->epoll_events = want;
  }
}

void Server::CloseConn(Conn* conn) {
  const int fd = conn->fd.get();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  conns_.erase(fd);  // destroys conn (and closes the fd)
}

}  // namespace endure::net
