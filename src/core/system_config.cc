#include "core/system_config.h"

#include <cstdio>

namespace endure {

Status SystemConfig::Validate() const {
  if (num_entries < 1.0) {
    return Status::InvalidArgument("num_entries must be >= 1");
  }
  if (entry_size_bits <= 0.0) {
    return Status::InvalidArgument("entry_size_bits must be positive");
  }
  if (entries_per_page < 1.0) {
    return Status::InvalidArgument("entries_per_page must be >= 1");
  }
  if (memory_budget_bits_per_entry <= min_buffer_bits_per_entry) {
    return Status::InvalidArgument(
        "memory budget must exceed the reserved buffer minimum");
  }
  if (range_selectivity < 0.0 || range_selectivity > 1.0) {
    return Status::InvalidArgument("range_selectivity must be in [0, 1]");
  }
  if (read_write_asymmetry <= 0.0) {
    return Status::InvalidArgument("read_write_asymmetry must be positive");
  }
  if (min_size_ratio < 2.0 || max_size_ratio < min_size_ratio) {
    return Status::InvalidArgument("size-ratio bounds invalid (need 2 <= "
                                   "min_size_ratio <= max_size_ratio)");
  }
  return Status::OK();
}

std::string SystemConfig::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "SystemConfig{N=%.3g, E=%.0f bits, B=%.0f, H=%.2f b/e, "
                "S_RQ=%.3g, A_rw=%.2f, T in [%.0f,%.0f]}",
                num_entries, entry_size_bits, entries_per_page,
                memory_budget_bits_per_entry, range_selectivity,
                read_write_asymmetry, min_size_ratio, max_size_ratio);
  return buf;
}

}  // namespace endure
