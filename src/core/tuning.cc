#include "core/tuning.h"

#include <cstdio>

namespace endure {

const char* PolicyName(Policy p) {
  switch (p) {
    case Policy::kLeveling:
      return "leveling";
    case Policy::kTiering:
      return "tiering";
    case Policy::kLazyLeveling:
      return "lazy-leveling";
  }
  return "?";
}

Status Tuning::Validate(const SystemConfig& cfg) const {
  if (size_ratio < cfg.min_size_ratio || size_ratio > cfg.max_size_ratio) {
    return Status::InvalidArgument("size_ratio outside configured bounds");
  }
  if (filter_bits_per_entry < 0.0 ||
      filter_bits_per_entry > cfg.max_filter_bits_per_entry()) {
    return Status::InvalidArgument(
        "filter_bits_per_entry outside [0, H - reserve]");
  }
  return Status::OK();
}

std::string Tuning::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "Tuning{%s, T=%.1f, h=%.1f}",
                PolicyName(policy), size_ratio, filter_bits_per_entry);
  return buf;
}

}  // namespace endure
