// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// The analytical LSM-tree cost model of Section 5: expected I/Os per query
// for each of the four query classes, under Monkey's optimal per-level
// Bloom-filter allocation [Dayan et al., SIGMOD'17].
//
//   L(T)   Eq. (1)  : number of disk-resident levels
//   f_i(T) Eq. (11) : per-level false-positive rates (Monkey)
//   Z0     Eq. (12) : expected empty point-query I/Os
//   Z1     Eq. (14) : expected non-empty point-query I/Os
//   Q      Eq. (15) : expected range-query I/Os
//   W      Eq. (16) : amortized write I/Os
//   C(w,Phi) Eq. (2): workload-weighted expected cost

#ifndef ENDURE_CORE_COST_MODEL_H_
#define ENDURE_CORE_COST_MODEL_H_

#include <vector>

#include "core/system_config.h"  // IWYU pragma: keep
#include "core/tuning.h"
#include "core/workload.h"

namespace endure {

/// Cost vector c(Phi) = (Z0, Z1, Q, W) in expected I/Os per operation.
struct CostVector {
  double z0 = 0.0;  ///< empty point query cost Z0(Phi)
  double z1 = 0.0;  ///< non-empty point query cost Z1(Phi)
  double q = 0.0;   ///< range query cost Q(Phi)
  double w = 0.0;   ///< write cost W(Phi)

  double operator[](int i) const;
  std::vector<double> AsVector() const { return {z0, z1, q, w}; }

  /// Workload-weighted expected cost C(w, Phi) = w . c(Phi)  — Eq. (2).
  double Weighted(const Workload& wl) const {
    return wl.z0 * z0 + wl.z1 * z1 + wl.q * q + wl.w * w;
  }
};

/// Stateless evaluator of the closed-form cost model for one SystemConfig.
class CostModel {
 public:
  /// Creates a model over the given (validated) system parameters.
  explicit CostModel(const SystemConfig& cfg);

  const SystemConfig& config() const { return cfg_; }

  /// Raw (continuous) level count log_T(N*E/m_buf + 1), clamped to >= 1.
  double LevelsReal(const Tuning& t) const;

  /// Number of disk levels L(T) — Eq. (1) with the ceiling applied.
  int Levels(const Tuning& t) const;

  /// The level count the cost expressions use: Levels() under
  /// LevelPolicy::kInteger, LevelsReal() under kFractional.
  double EffectiveLevels(const Tuning& t) const;

  /// Fill fraction of the fractional deepest level in [0, 1); zero under
  /// integer level policy or when L is integral.
  double PartialLevelFill(const Tuning& t) const;

  /// Monkey false-positive rate of the level-`level` filter (1-based),
  /// clamped to [0, 1] — Eq. (11).
  double FalsePositiveRate(const Tuning& t, int level) const;

  /// Entries in a tree completely full up to L(T) levels — Eq. (13).
  double FullTreeEntries(const Tuning& t) const;

  /// Expected empty point-query cost Z0(Phi) — Eq. (12).
  double EmptyPointQueryCost(const Tuning& t) const;

  /// Expected non-empty point-query cost Z1(Phi) — Eq. (14).
  double NonEmptyPointQueryCost(const Tuning& t) const;

  /// Expected range-query cost Q(Phi) — Eq. (15).
  double RangeQueryCost(const Tuning& t) const;

  /// Amortized write cost W(Phi) — Eq. (16).
  double WriteCost(const Tuning& t) const;

  /// Full cost vector c(Phi).
  CostVector Costs(const Tuning& t) const;

  /// Expected workload cost C(w, Phi) — Eq. (2).
  double Cost(const Workload& wl, const Tuning& t) const;

  /// Throughput = 1 / C(w, Phi) (the paper's Section 7.1 definition).
  double Throughput(const Workload& wl, const Tuning& t) const;

 private:
  /// Per-level quantities shared by the cost expressions.
  struct LevelProfile {
    double fpr = 0.0;        ///< Monkey false-positive rate f_i
    double weight = 1.0;     ///< fill weight (fractional deepest level)
    double population = 0.0; ///< probability the match lives here
    double runs = 1.0;       ///< resident runs (1 leveled, T-1 tiered)
    double merge = 0.0;      ///< per-entry merges ((T-1)/2 or (T-1)/T)
  };

  /// Builds the per-level profile for a tuning (policy-aware).
  std::vector<LevelProfile> Profile(const Tuning& t) const;

  /// Eq. (11) evaluated at (possibly fractional) level and total levels.
  double FalsePositiveRateAt(const Tuning& t, double level,
                             double total_levels) const;

  SystemConfig cfg_;
};

}  // namespace endure

#endif  // ENDURE_CORE_COST_MODEL_H_
