#include "core/kl.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/macros.h"

namespace endure {

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  ENDURE_CHECK(p.size() == q.size());
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    ENDURE_DCHECK(p[i] >= 0.0 && q[i] >= 0.0);
    if (p[i] == 0.0) continue;
    if (q[i] == 0.0) return std::numeric_limits<double>::infinity();
    sum += p[i] * std::log(p[i] / q[i]);
  }
  return sum;
}

double KlDivergence(const Workload& p, const Workload& q) {
  const auto pa = p.AsArray();
  const auto qa = q.AsArray();
  return KlDivergence(std::vector<double>(pa.begin(), pa.end()),
                      std::vector<double>(qa.begin(), qa.end()));
}

double PhiKl(double t) {
  ENDURE_DCHECK(t >= 0.0);
  if (t == 0.0) return 1.0;  // limit of t log t - t + 1 as t -> 0+
  return t * std::log(t) - t + 1.0;
}

double PhiKlConjugate(double s) { return std::expm1(s); }

double LogSumExpTilt(const std::vector<double>& w, const std::vector<double>& c,
                     double lambda) {
  ENDURE_CHECK(w.size() == c.size());
  ENDURE_CHECK(lambda > 0.0);
  double max_arg = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < w.size(); ++i) {
    if (w[i] > 0.0) max_arg = std::max(max_arg, c[i] / lambda);
  }
  ENDURE_CHECK_MSG(std::isfinite(max_arg),
                   "LogSumExpTilt requires some positive weight");
  double sum = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (w[i] > 0.0) sum += w[i] * std::exp(c[i] / lambda - max_arg);
  }
  return max_arg + std::log(sum);
}

std::vector<double> TiltedDistribution(const std::vector<double>& w,
                                       const std::vector<double>& c,
                                       double lambda) {
  ENDURE_CHECK(w.size() == c.size());
  ENDURE_CHECK(lambda > 0.0);
  double max_arg = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < w.size(); ++i) {
    if (w[i] > 0.0) max_arg = std::max(max_arg, c[i] / lambda);
  }
  std::vector<double> p(w.size(), 0.0);
  double total = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (w[i] > 0.0) {
      p[i] = w[i] * std::exp(c[i] / lambda - max_arg);
      total += p[i];
    }
  }
  ENDURE_CHECK(total > 0.0);
  for (double& pi : p) pi /= total;
  return p;
}

}  // namespace endure
