#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace endure {

double CostVector::operator[](int i) const {
  switch (i) {
    case kEmptyPointQuery:
      return z0;
    case kNonEmptyPointQuery:
      return z1;
    case kRangeQuery:
      return q;
    case kWrite:
      return w;
    default:
      ENDURE_CHECK_MSG(false, "cost index out of range");
      return 0.0;
  }
}

CostModel::CostModel(const SystemConfig& cfg) : cfg_(cfg) {
  ENDURE_CHECK_MSG(cfg.Validate().ok(), "invalid SystemConfig");
}

double CostModel::LevelsReal(const Tuning& t) const {
  const double T = t.size_ratio;
  const double mbuf = t.buffer_memory_bits(cfg_);
  ENDURE_CHECK_MSG(mbuf > 0.0, "tuning leaves no buffer memory");
  // Eq. (1) before rounding: log_T( N*E/m_buf + 1 ).
  const double arg = cfg_.num_entries * cfg_.entry_size_bits / mbuf + 1.0;
  return std::max(1.0, std::log(arg) / std::log(T));
}

int CostModel::Levels(const Tuning& t) const {
  return static_cast<int>(std::ceil(LevelsReal(t) - 1e-12));
}

double CostModel::EffectiveLevels(const Tuning& t) const {
  if (cfg_.level_policy == LevelPolicy::kInteger) {
    return static_cast<double>(Levels(t));
  }
  return LevelsReal(t);
}

double CostModel::FalsePositiveRateAt(const Tuning& t, double level,
                                      double total_levels) const {
  const double T = t.size_ratio;
  // Eq. (11): f_i(T) = T^(T/(T-1)) / T^(L+1-i) * exp(-(m_filt/N) ln(2)^2).
  const double ln2sq = std::log(2.0) * std::log(2.0);
  const double log_t = std::log(T);
  const double log_f = (T / (T - 1.0)) * log_t -
                       (total_levels + 1.0 - level) * log_t -
                       t.filter_bits_per_entry * ln2sq;
  return std::clamp(std::exp(log_f), 0.0, 1.0);
}

double CostModel::FalsePositiveRate(const Tuning& t, int level) const {
  const double L = EffectiveLevels(t);
  ENDURE_DCHECK(level >= 1 && level <= std::ceil(L));
  return FalsePositiveRateAt(t, level, L);
}

double CostModel::FullTreeEntries(const Tuning& t) const {
  // Eq. (13): N_f(T) = (T^L - 1) * m_buf / E, L possibly fractional.
  const double T = t.size_ratio;
  const double L = EffectiveLevels(t);
  const double buf_entries = t.buffer_memory_bits(cfg_) / cfg_.entry_size_bits;
  return (std::pow(T, L) - 1.0) * buf_entries;
}

double CostModel::PartialLevelFill(const Tuning& t) const {
  const double L = EffectiveLevels(t);
  const double full = std::floor(L + 1e-12);
  if (L - full <= 1e-12) return 0.0;  // integral level count: no partial
  const double T = t.size_ratio;
  // Fraction of the deepest level's capacity that is populated:
  // (T^L - T^floor(L)) / ((T-1) T^floor(L)).
  return (std::pow(T, L - full) - 1.0) / (T - 1.0);
}

std::vector<CostModel::LevelProfile> CostModel::Profile(
    const Tuning& t) const {
  const double T = t.size_ratio;
  const double L = EffectiveLevels(t);
  const int full = static_cast<int>(std::floor(L + 1e-12));
  const double partial = PartialLevelFill(t);
  const int levels = full + (partial > 0.0 ? 1 : 0);
  const double nf_units = std::pow(T, L) - 1.0;  // N_f in buffer units

  std::vector<LevelProfile> out;
  out.reserve(levels);
  for (int i = 1; i <= levels; ++i) {
    LevelProfile p;
    p.fpr = FalsePositiveRateAt(t, i, L);
    p.weight = (i <= full) ? 1.0 : partial;
    const double population_units =
        (i <= full) ? (T - 1.0) * std::pow(T, i - 1)
                    : std::pow(T, L) - std::pow(T, full);
    p.population = population_units / nf_units;
    // A level is "tiered" (up to T-1 runs, lazy (T-1)/T merging) or
    // "leveled" (one run, eager (T-1)/2 merging). Lazy leveling tiers all
    // but the deepest level.
    const bool tiered =
        t.policy == Policy::kTiering ||
        (t.policy == Policy::kLazyLeveling && i < levels);
    p.runs = tiered ? T - 1.0 : 1.0;
    p.merge = tiered ? (T - 1.0) / T : (T - 1.0) / 2.0;
    out.push_back(p);
  }
  return out;
}

double CostModel::EmptyPointQueryCost(const Tuning& t) const {
  // Eq. (12): one filter probe per run; every resident run of level i
  // false-positives with probability f_i. Fractional deepest levels
  // contribute in proportion to their fill.
  double sum = 0.0;
  for (const LevelProfile& p : Profile(t)) {
    sum += p.weight * p.runs * p.fpr;
  }
  return sum;
}

double CostModel::NonEmptyPointQueryCost(const Tuning& t) const {
  // Eq. (14): expectation over the level holding the match; the match
  // lands on level i with probability proportional to the level's
  // population. Shallower levels contribute runs_j * f_j false-positive
  // I/Os; within the target level the match sits in the middle run on
  // average, so (runs_i - 1)/2 siblings false-positive first (zero for
  // leveled levels).
  double cost = 0.0;
  double prefix = 0.0;  // sum_{j<i} runs_j * f_j
  for (const LevelProfile& p : Profile(t)) {
    cost += p.population * (1.0 + prefix + (p.runs - 1.0) / 2.0 * p.fpr);
    prefix += p.runs * p.fpr;
  }
  return cost;
}

double CostModel::RangeQueryCost(const Tuning& t) const {
  // Eq. (15): sequential scan of S_RQ*N/B pages plus one seek per run,
  // with the level count L entering directly (continuous under the
  // fractional policy, exactly as the paper's implementation optimizes).
  const double T = t.size_ratio;
  const double L = EffectiveLevels(t);
  const double scan =
      cfg_.range_selectivity * cfg_.num_entries / cfg_.entries_per_page;
  switch (t.policy) {
    case Policy::kLeveling:
      return scan + L;
    case Policy::kTiering:
      return scan + L * (T - 1.0);
    case Policy::kLazyLeveling:
      // L-1 tiered levels with up to T-1 runs each, one leveled bottom.
      return scan + std::max(0.0, L - 1.0) * (T - 1.0) + std::min(L, 1.0);
  }
  ENDURE_CHECK_MSG(false, "unknown policy");
  return 0.0;
}

double CostModel::WriteCost(const Tuning& t) const {
  // Eq. (16): every entry merges ~(T-1)/2 times per leveled level and
  // ~(T-1)/T per tiered level across L levels, amortized per page of B
  // entries and scaled by the device write asymmetry.
  const double T = t.size_ratio;
  const double L = EffectiveLevels(t);
  double merges = 0.0;
  switch (t.policy) {
    case Policy::kLeveling:
      merges = L * (T - 1.0) / 2.0;
      break;
    case Policy::kTiering:
      merges = L * (T - 1.0) / T;
      break;
    case Policy::kLazyLeveling:
      merges = std::max(0.0, L - 1.0) * (T - 1.0) / T +
               std::min(L, 1.0) * (T - 1.0) / 2.0;
      break;
  }
  return merges / cfg_.entries_per_page *
         (1.0 + cfg_.read_write_asymmetry);
}

CostVector CostModel::Costs(const Tuning& t) const {
  CostVector c;
  c.z0 = EmptyPointQueryCost(t);
  c.z1 = NonEmptyPointQueryCost(t);
  c.q = RangeQueryCost(t);
  c.w = WriteCost(t);
  return c;
}

double CostModel::Cost(const Workload& wl, const Tuning& t) const {
  return Costs(t).Weighted(wl);
}

double CostModel::Throughput(const Workload& wl, const Tuning& t) const {
  const double c = Cost(wl, t);
  ENDURE_DCHECK(c > 0.0);
  return 1.0 / c;
}

}  // namespace endure
