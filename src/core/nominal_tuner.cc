#include "core/nominal_tuner.h"

#include <algorithm>
#include <cmath>

#include "util/env.h"
#include "util/macros.h"

namespace endure {

NominalTuner::NominalTuner(const CostModel& model, TunerOptions opts)
    : model_(model), opts_(std::move(opts)) {}

TuningResult NominalTuner::TunePolicy(const Workload& w, Policy policy) const {
  ENDURE_CHECK_MSG(w.Validate().ok(), "invalid workload");
  const SystemConfig& cfg = model_.config();
  WallTimer timer;

  // Search log(T): the cost surface's structure (level-count boundaries at
  // powers of T) is geometric, so log spacing resolves the small-T region
  // where write-averse optima live.
  solver::Bounds bounds;
  bounds.lo = {std::log(cfg.min_size_ratio), 0.0};
  bounds.hi = {std::log(cfg.max_size_ratio),
               cfg.max_filter_bits_per_entry()};

  auto objective = [&](const std::vector<double>& x) {
    Tuning t(policy, std::exp(x[0]), x[1]);
    return model_.Cost(w, t);
  };

  solver::Result r = solver::MultiStartMinimize(objective, bounds,
                                                opts_.search);
  TuningResult out;
  // exp(log(T)) can overshoot the cap by an ulp; clamp back into range.
  out.tuning = Tuning(policy,
                      std::clamp(std::exp(r.x[0]), cfg.min_size_ratio,
                                 cfg.max_size_ratio),
                      r.x[1]);
  out.objective = r.fx;
  out.evaluations = r.evaluations;
  out.solve_seconds = timer.Seconds();
  return out;
}

TuningResult NominalTuner::Tune(const Workload& w) const {
  ENDURE_CHECK_MSG(!opts_.policies.empty(), "no policies to search");
  TuningResult best;
  best.objective = std::numeric_limits<double>::infinity();
  int evals = 0;
  double seconds = 0.0;
  for (Policy policy : opts_.policies) {
    TuningResult r = TunePolicy(w, policy);
    evals += r.evaluations;
    seconds += r.solve_seconds;
    if (r.objective < best.objective) best = std::move(r);
  }
  best.evaluations = evals;
  best.solve_seconds = seconds;
  return best;
}

}  // namespace endure
