// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// The Nominal Tuning problem (Problem 1): Phi_N = argmin_Phi C(w, Phi) for
// a fixed expected workload w. This is the classical tuning paradigm
// (Monkey/Dostoevsky-style co-tuning of T, memory split, and policy) that
// Endure's robust tuner is compared against.

#ifndef ENDURE_CORE_NOMINAL_TUNER_H_
#define ENDURE_CORE_NOMINAL_TUNER_H_

#include "core/cost_model.h"
#include "solver/multistart.h"

namespace endure {

/// Outcome of a tuning run (shared with the robust tuner).
struct TuningResult {
  Tuning tuning;           ///< the recommended configuration Phi
  double objective = 0.0;  ///< minimized objective value
  int evaluations = 0;     ///< total objective evaluations
  double solve_seconds = 0.0;  ///< wall-clock solver time
};

/// Options controlling the continuous search over (T, h) per policy.
struct TunerOptions {
  solver::MultiStartOptions search;  ///< global search configuration

  /// Policies Tune() compares. The paper's space is {leveling, tiering};
  /// add Policy::kLazyLeveling to co-tune the Dostoevsky hybrid.
  std::vector<Policy> policies = {Policy::kLeveling, Policy::kTiering};

  TunerOptions() {
    search.grid_points_per_dim = 16;
    search.grid_seeds = 6;
    search.random_starts = 4;
    search.nm.max_iter = 600;
    search.nm.f_tol = 1e-12;
    search.nm.x_tol = 1e-9;
  }
};

/// Solves Problem 1 over both compaction policies.
class NominalTuner {
 public:
  /// The tuner borrows no state from the model beyond the SystemConfig.
  explicit NominalTuner(const CostModel& model, TunerOptions opts = {});

  /// Returns the cost-minimizing tuning for `w` across both policies.
  TuningResult Tune(const Workload& w) const;

  /// Returns the cost-minimizing tuning for `w` restricted to `policy`.
  TuningResult TunePolicy(const Workload& w, Policy policy) const;

 private:
  const CostModel& model_;
  TunerOptions opts_;
};

}  // namespace endure

#endif  // ENDURE_CORE_NOMINAL_TUNER_H_
