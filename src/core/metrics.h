// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Evaluation metrics of Section 7.1: normalized delta throughput (Delta)
// comparing two tunings on one workload, and throughput range (Theta)
// summarizing a single tuning's best/worst spread over a benchmark set.

#ifndef ENDURE_CORE_METRICS_H_
#define ENDURE_CORE_METRICS_H_

#include <vector>

#include "core/cost_model.h"

namespace endure {

/// Normalized delta throughput
///   Delta_w(Phi1, Phi2) = (1/C(w,Phi2) - 1/C(w,Phi1)) / (1/C(w,Phi1)),
/// positive iff Phi2 outperforms Phi1 on w.
double DeltaThroughput(const CostModel& model, const Workload& w,
                       const Tuning& phi1, const Tuning& phi2);

/// Throughput range
///   Theta_B(Phi) = max_{w0,w1 in B} (1/C(w0,Phi) - 1/C(w1,Phi)),
/// i.e. best minus worst throughput over the benchmark set. Smaller means
/// more consistent performance.
double ThroughputRange(const CostModel& model,
                       const std::vector<Workload>& benchmark,
                       const Tuning& phi);

/// All throughputs 1/C(w, Phi) over a benchmark set (for histograms).
std::vector<double> Throughputs(const CostModel& model,
                                const std::vector<Workload>& benchmark,
                                const Tuning& phi);

}  // namespace endure

#endif  // ENDURE_CORE_METRICS_H_
