#include "core/workload.h"

#include <cmath>
#include <cstdio>

#include "util/macros.h"

namespace endure {

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case kEmptyPointQuery:
      return "z0";
    case kNonEmptyPointQuery:
      return "z1";
    case kRangeQuery:
      return "q";
    case kWrite:
      return "w";
  }
  return "?";
}

double Workload::operator[](int i) const {
  switch (i) {
    case kEmptyPointQuery:
      return z0;
    case kNonEmptyPointQuery:
      return z1;
    case kRangeQuery:
      return q;
    case kWrite:
      return w;
    default:
      ENDURE_CHECK_MSG(false, "workload index out of range");
      return 0.0;
  }
}

double& Workload::operator[](int i) {
  switch (i) {
    case kEmptyPointQuery:
      return z0;
    case kNonEmptyPointQuery:
      return z1;
    case kRangeQuery:
      return q;
    default:
      ENDURE_CHECK_MSG(i == kWrite, "workload index out of range");
      return w;
  }
}

Status Workload::Validate(double tol) const {
  for (int i = 0; i < kNumQueryClasses; ++i) {
    if ((*this)[i] < 0.0) {
      return Status::InvalidArgument("negative workload component");
    }
  }
  if (std::fabs(Sum() - 1.0) > tol) {
    return Status::InvalidArgument("workload components must sum to 1");
  }
  return Status::OK();
}

Workload Workload::Normalized() const {
  const double s = Sum();
  ENDURE_CHECK_MSG(s > 0.0, "cannot normalize a zero workload");
  return Workload(z0 / s, z1 / s, q / s, w / s);
}

QueryClass Workload::Dominant() const {
  QueryClass best = kEmptyPointQuery;
  for (int i = 1; i < kNumQueryClasses; ++i) {
    if ((*this)[i] > (*this)[best]) best = static_cast<QueryClass>(i);
  }
  return best;
}

std::string Workload::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(%.0f%%, %.0f%%, %.0f%%, %.0f%%)",
                z0 * 100.0, z1 * 100.0, q * 100.0, w * 100.0);
  return buf;
}

Workload WorkloadFromCounts(
    const std::array<double, kNumQueryClasses>& counts) {
  Workload out(counts[0], counts[1], counts[2], counts[3]);
  return out.Normalized();
}

}  // namespace endure
