#include "core/metrics.h"

#include <algorithm>

#include "util/macros.h"

namespace endure {

double DeltaThroughput(const CostModel& model, const Workload& w,
                       const Tuning& phi1, const Tuning& phi2) {
  const double c1 = model.Cost(w, phi1);
  const double c2 = model.Cost(w, phi2);
  ENDURE_DCHECK(c1 > 0.0 && c2 > 0.0);
  // (1/c2 - 1/c1) / (1/c1) == c1/c2 - 1.
  return c1 / c2 - 1.0;
}

double ThroughputRange(const CostModel& model,
                       const std::vector<Workload>& benchmark,
                       const Tuning& phi) {
  ENDURE_CHECK(!benchmark.empty());
  double best = -1.0, worst = -1.0;
  bool first = true;
  for (const Workload& w : benchmark) {
    const double tput = model.Throughput(w, phi);
    if (first) {
      best = worst = tput;
      first = false;
    } else {
      best = std::max(best, tput);
      worst = std::min(worst, tput);
    }
  }
  return best - worst;
}

std::vector<double> Throughputs(const CostModel& model,
                                const std::vector<Workload>& benchmark,
                                const Tuning& phi) {
  std::vector<double> out;
  out.reserve(benchmark.size());
  for (const Workload& w : benchmark) {
    out.push_back(model.Throughput(w, phi));
  }
  return out;
}

}  // namespace endure
