// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// "How to Choose rho" (Section 7.3): the paper advises using the mean
// KL-divergence between historically observed workloads as the uncertainty
// radius. This module implements that estimator plus variants.

#ifndef ENDURE_CORE_RHO_ADVISOR_H_
#define ENDURE_CORE_RHO_ADVISOR_H_

#include <vector>

#include "core/workload.h"

namespace endure {

/// Summary of an uncertainty-radius estimation over workload history.
struct RhoEstimate {
  double mean_pairwise = 0.0;   ///< mean I_KL over ordered pairs (i != j)
  double mean_to_expected = 0.0;  ///< mean I_KL(history_i, expected)
  double max_to_expected = 0.0;   ///< max I_KL(history_i, expected)
  double p90_to_expected = 0.0;   ///< 90th percentile of the above
};

/// Estimates rho from observed history. `expected` is typically the mean
/// workload or the operator's declared expectation. Workloads with zero
/// components are smoothed with `smoothing` mass (paper workloads always
/// keep >= 1% per class for the same reason — finite KL).
RhoEstimate EstimateRho(const std::vector<Workload>& history,
                        const Workload& expected, double smoothing = 1e-4);

/// The paper's headline recommendation: mean pairwise KL over history.
double RecommendRho(const std::vector<Workload>& history,
                    double smoothing = 1e-4);

/// Component-wise mean of a set of workloads (renormalized).
Workload MeanWorkload(const std::vector<Workload>& history);

}  // namespace endure

#endif  // ENDURE_CORE_RHO_ADVISOR_H_
