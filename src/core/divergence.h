// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// phi-divergence family for the robust tuning problem. Section 4 of the
// paper notes that KL is one choice among many divergence functions; the
// Ben-Tal et al. duality the paper builds on works for any phi-divergence
//   D_phi(p, w) = sum_i w_i phi(p_i / w_i)
// with convex phi, phi(1) = 0, via the conjugate phi*(s) = sup_t {ts -
// phi(t)}:
//   max_{D_phi(p,w) <= rho} p.c
//     = min_{lambda >= 0, eta} eta + rho*lambda
//                              + lambda sum_i w_i phi*((c_i - eta)/lambda).
//
// This module provides KL, modified chi-square, total variation and
// squared Hellinger generators; core/generalized_robust_tuner.h solves the
// two-variable dual for any of them.

#ifndef ENDURE_CORE_DIVERGENCE_H_
#define ENDURE_CORE_DIVERGENCE_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/workload.h"

namespace endure {

/// A phi-divergence generator with its convex conjugate.
class PhiDivergence {
 public:
  virtual ~PhiDivergence() = default;

  /// Human-readable name ("kl", "chi2", ...).
  virtual const char* name() const = 0;

  /// The generator phi(t), defined for t >= 0, convex with phi(1) = 0.
  virtual double Phi(double t) const = 0;

  /// The conjugate phi*(s); returns +infinity outside its domain.
  virtual double Conjugate(double s) const = 0;

  /// Supremum of the conjugate's effective domain (the dual requires
  /// (c_i - eta)/lambda < this); +infinity when unrestricted (e.g. KL).
  virtual double ConjugateDomainSup() const {
    return std::numeric_limits<double>::infinity();
  }

  /// D_phi(p, w) = sum_i w_i phi(p_i / w_i). Zero-weight components with
  /// positive p yield +infinity (KL-like) or the generator's slope bound.
  double Divergence(const std::vector<double>& p,
                    const std::vector<double>& q) const;

  /// Divergence between workloads.
  double Divergence(const Workload& p, const Workload& q) const;
};

/// Kullback-Leibler: phi(t) = t log t - t + 1, phi*(s) = e^s - 1.
class KlGenerator final : public PhiDivergence {
 public:
  const char* name() const override { return "kl"; }
  double Phi(double t) const override;
  double Conjugate(double s) const override;
};

/// Modified chi-square: phi(t) = (t - 1)^2,
/// phi*(s) = s + s^2/4 for s >= -2, else -1.
class ChiSquareGenerator final : public PhiDivergence {
 public:
  const char* name() const override { return "chi2"; }
  double Phi(double t) const override;
  double Conjugate(double s) const override;
};

/// Total variation: phi(t) = |t - 1|,
/// phi*(s) = max(-1, s) for s <= 1, +infinity beyond.
class TotalVariationGenerator final : public PhiDivergence {
 public:
  const char* name() const override { return "tv"; }
  double Phi(double t) const override;
  double Conjugate(double s) const override;
  double ConjugateDomainSup() const override { return 1.0; }
};

/// Squared Hellinger: phi(t) = (sqrt(t) - 1)^2,
/// phi*(s) = s / (1 - s) for s < 1, +infinity beyond.
class HellingerGenerator final : public PhiDivergence {
 public:
  const char* name() const override { return "hellinger"; }
  double Phi(double t) const override;
  double Conjugate(double s) const override;
  double ConjugateDomainSup() const override { return 1.0; }
};

/// Supported generators, for factory lookup and sweeps.
enum class DivergenceKind {
  kKl = 0,
  kChiSquare = 1,
  kTotalVariation = 2,
  kHellinger = 3,
};

/// Constructs a generator by kind.
std::unique_ptr<PhiDivergence> MakeDivergence(DivergenceKind kind);

/// All kinds (for parameterized tests and ablation sweeps).
const std::vector<DivergenceKind>& AllDivergenceKinds();

}  // namespace endure

#endif  // ENDURE_CORE_DIVERGENCE_H_
