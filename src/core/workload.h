// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Workload representation (Section 3.1 of the paper): a point on the
// 4-simplex giving the proportions of empty point lookups (z0), non-empty
// point lookups (z1), range queries (q) and writes (w).

#ifndef ENDURE_CORE_WORKLOAD_H_
#define ENDURE_CORE_WORKLOAD_H_

#include <array>
#include <string>

#include "util/status.h"

namespace endure {

/// Number of query classes in the workload vector.
inline constexpr int kNumQueryClasses = 4;

/// Indices into the workload/cost vectors.
enum QueryClass : int {
  kEmptyPointQuery = 0,     ///< z0: point lookup returning no result
  kNonEmptyPointQuery = 1,  ///< z1: point lookup returning a result
  kRangeQuery = 2,          ///< q : range lookup
  kWrite = 3,               ///< w : insert/update/delete
};

/// Human-readable name of a query class ("z0", "z1", "q", "w").
const char* QueryClassName(QueryClass c);

/// A workload w = (z0, z1, q, w) with nonnegative entries summing to 1.
struct Workload {
  double z0 = 0.25;  ///< empty point lookup fraction
  double z1 = 0.25;  ///< non-empty point lookup fraction
  double q = 0.25;   ///< range query fraction
  double w = 0.25;   ///< write fraction

  Workload() = default;
  Workload(double z0_in, double z1_in, double q_in, double w_in)
      : z0(z0_in), z1(z1_in), q(q_in), w(w_in) {}

  /// Component access by query-class index.
  double operator[](int i) const;
  double& operator[](int i);

  /// As a std::array (for generic code over the 4 classes).
  std::array<double, kNumQueryClasses> AsArray() const {
    return {z0, z1, q, w};
  }

  /// Sum of the components (1 for a valid workload).
  double Sum() const { return z0 + z1 + q + w; }

  /// OK iff all components are >= 0 and the sum is 1 within tolerance.
  Status Validate(double tol = 1e-9) const;

  /// Returns a copy scaled so the components sum to 1. Requires Sum() > 0.
  Workload Normalized() const;

  /// Dominant query class (argmax component).
  QueryClass Dominant() const;

  /// "(z0%, z1%, q%, w%)" rendering used in the paper's figures.
  std::string ToString() const;

  bool operator==(const Workload& other) const = default;
};

/// Builds a workload from an arbitrary nonnegative 4-vector by normalizing.
Workload WorkloadFromCounts(const std::array<double, kNumQueryClasses>& counts);

}  // namespace endure

#endif  // ENDURE_CORE_WORKLOAD_H_
