// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// The Robust Tuning problem (Problem 2, Section 4): find
//   Phi_R = argmin_Phi max_{I_KL(w_hat, w) <= rho} w_hat . c(Phi).
//
// Following Ben-Tal et al. (2013), the inner maximum equals the value of a
// convex dual. With the KL conjugate phi*(s) = e^s - 1 the dual is
//   g(lambda, eta) = eta + rho*lambda
//                  + lambda * sum_i w_i * phi*((c_i - eta) / lambda),
// and eta minimizes analytically at eta* = lambda * log sum_i w_i
// e^{c_i/lambda}, collapsing the problem to the 1-D convex
//   g(lambda) = lambda * (rho + log sum_i w_i e^{c_i / lambda}),
// which we solve with Brent per candidate Phi inside a global search over
// (T, h, pi). A joint 3-D dual search (lambda kept explicit) is provided as
// an independent cross-check, mirroring the paper's SLSQP formulation of
// Eq. (10).

#ifndef ENDURE_CORE_ROBUST_TUNER_H_
#define ENDURE_CORE_ROBUST_TUNER_H_

#include "core/kl.h"
#include "core/nominal_tuner.h"

namespace endure {

/// Diagnostics of the inner (dual) problem at a fixed tuning.
struct DualSolution {
  double value = 0.0;    ///< worst-case expected cost over the KL ball
  double lambda = 0.0;   ///< optimal Lagrange multiplier (inf when rho = 0)
  double eta = 0.0;      ///< optimal eta = lambda * log sum w_i e^{c_i/lambda}
  Workload worst_case;   ///< the maximizing workload w_hat
};

/// Solves Problem 2.
class RobustTuner {
 public:
  explicit RobustTuner(const CostModel& model, TunerOptions opts = {});

  /// Worst-case expected cost of tuning `t` against the KL ball of radius
  /// `rho` around `w` — the robust objective, via the 1-D dual.
  DualSolution SolveInner(const Workload& w, double rho,
                          const Tuning& t) const;

  /// Robust objective value only (cheaper; used by the outer search).
  double RobustCost(const Workload& w, double rho, const Tuning& t) const;

  /// Returns the robust tuning for `w` with uncertainty radius `rho`,
  /// searching both policies.
  TuningResult Tune(const Workload& w, double rho) const;

  /// Robust tuning restricted to one policy.
  TuningResult TunePolicy(const Workload& w, double rho, Policy policy) const;

  /// Cross-check path: solves the dual with lambda kept as an explicit
  /// search dimension (joint Nelder-Mead over (T, h, lambda)); tests verify
  /// it agrees with Tune().
  TuningResult TuneJointDual(const Workload& w, double rho,
                             Policy policy) const;

 private:
  const CostModel& model_;
  TunerOptions opts_;
};

}  // namespace endure

#endif  // ENDURE_CORE_ROBUST_TUNER_H_
