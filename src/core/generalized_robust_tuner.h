// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Robust tuning under any phi-divergence (the generalization Section 4 of
// the paper alludes to). Unlike the KL case — where eta eliminates
// analytically and the dual collapses to 1-D — the general dual
//   g(lambda, eta) = eta + rho*lambda
//                    + lambda * sum_i w_i phi*((c_i - eta)/lambda)
// is minimized jointly over (lambda, eta). g is jointly convex, so a
// multi-start Nelder-Mead over (log lambda, eta) with domain guards is
// reliable; the KL specialization is cross-checked against RobustTuner in
// tests.

#ifndef ENDURE_CORE_GENERALIZED_ROBUST_TUNER_H_
#define ENDURE_CORE_GENERALIZED_ROBUST_TUNER_H_

#include <memory>

#include "core/divergence.h"
#include "core/nominal_tuner.h"

namespace endure {

/// Inner-problem solution for a general phi-divergence.
struct GeneralDualSolution {
  double value = 0.0;   ///< worst-case expected cost over the phi ball
  double lambda = 0.0;  ///< optimal multiplier
  double eta = 0.0;     ///< optimal shift
};

/// Robust tuner parameterized by the divergence generator.
class GeneralizedRobustTuner {
 public:
  /// `divergence` selects the uncertainty-ball geometry.
  GeneralizedRobustTuner(const CostModel& model, DivergenceKind divergence,
                         TunerOptions opts = {});

  /// Worst-case expected cost of `t` over {p : D_phi(p, w) <= rho}.
  GeneralDualSolution SolveInner(const Workload& w, double rho,
                                 const Tuning& t) const;

  /// Robust objective value only.
  double RobustCost(const Workload& w, double rho, const Tuning& t) const;

  /// Full robust tuning across both classic policies.
  TuningResult Tune(const Workload& w, double rho) const;

  /// Robust tuning restricted to one policy.
  TuningResult TunePolicy(const Workload& w, double rho, Policy policy) const;

  DivergenceKind kind() const { return kind_; }
  const PhiDivergence& divergence() const { return *divergence_; }

 private:
  const CostModel& model_;
  DivergenceKind kind_;
  std::unique_ptr<PhiDivergence> divergence_;
  TunerOptions opts_;
};

}  // namespace endure

#endif  // ENDURE_CORE_GENERALIZED_ROBUST_TUNER_H_
