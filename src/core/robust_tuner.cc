#include "core/robust_tuner.h"

#include <algorithm>
#include <cmath>

#include "solver/brent.h"
#include "util/env.h"
#include "util/macros.h"

namespace endure {
namespace {

// Below this radius the ball degenerates to {w} and the robust problem is
// the nominal one.
constexpr double kRhoEpsilon = 1e-12;

// Search window for log(lambda) in the joint-dual cross-check.
constexpr double kLogLambdaLo = -25.0;
constexpr double kLogLambdaHi = 25.0;

// g(lambda) = lambda * (rho + log sum_i w_i e^{c_i / lambda}) — the 1-D dual
// after analytic elimination of eta.
double DualValue(const std::vector<double>& w, const std::vector<double>& c,
                 double rho, double lambda) {
  return lambda * (rho + LogSumExpTilt(w, c, lambda));
}

}  // namespace

RobustTuner::RobustTuner(const CostModel& model, TunerOptions opts)
    : model_(model), opts_(std::move(opts)) {}

DualSolution RobustTuner::SolveInner(const Workload& w, double rho,
                                     const Tuning& t) const {
  ENDURE_CHECK_MSG(w.Validate().ok(), "invalid workload");
  ENDURE_CHECK_MSG(rho >= 0.0, "rho must be nonnegative");
  const auto warr = w.AsArray();
  const std::vector<double> wv(warr.begin(), warr.end());
  const std::vector<double> cv = model_.Costs(t).AsVector();

  DualSolution sol;
  const double nominal = model_.Cost(w, t);
  if (rho <= kRhoEpsilon) {
    sol.value = nominal;
    sol.lambda = std::numeric_limits<double>::infinity();
    sol.eta = nominal;
    sol.worst_case = w;
    return sol;
  }

  double c_min = cv[0], c_max = cv[0];
  for (double ci : cv) {
    c_min = std::min(c_min, ci);
    c_max = std::max(c_max, ci);
  }
  if (c_max - c_min < 1e-15) {
    // All query classes cost the same: every workload in the ball has the
    // same expected cost.
    sol.value = nominal;
    sol.lambda = std::numeric_limits<double>::infinity();
    sol.eta = nominal;
    sol.worst_case = w;
    return sol;
  }

  // Minimize g over lambda in log space. g is convex in lambda, hence
  // unimodal in u = log(lambda); bracket generously: the large-lambda
  // expansion g ~ lambda*rho + mean + var/(2*lambda) puts the minimizer
  // near sqrt(var / (2 rho)).
  double mean = 0.0;
  for (size_t i = 0; i < wv.size(); ++i) mean += wv[i] * cv[i];
  double var = 0.0;
  for (size_t i = 0; i < wv.size(); ++i) {
    var += wv[i] * (cv[i] - mean) * (cv[i] - mean);
  }
  const double lambda_guess = std::sqrt(std::max(var, 1e-12) / (2.0 * rho));
  const double u_lo = std::log(std::max(1e-12, lambda_guess * 1e-6));
  const double u_hi = std::log(std::max({1.0, lambda_guess * 1e6,
                                         (c_max - c_min) * 1e3 / rho}));

  auto g_of_u = [&](double u) { return DualValue(wv, cv, rho, std::exp(u)); };
  solver::BrentOptions bopts;
  bopts.tol = 1e-12;
  bopts.max_iter = 300;
  solver::Result1D r = solver::BrentMinimize(g_of_u, u_lo, u_hi, bopts);

  const double lambda = std::exp(r.x);
  sol.lambda = lambda;
  // The dual never undercuts the nominal cost (w itself is in the ball);
  // guard against round-off at the lambda -> infinity end.
  sol.value = std::max(r.fx, nominal);
  sol.eta = lambda * LogSumExpTilt(wv, cv, lambda);
  const std::vector<double> tilt = TiltedDistribution(wv, cv, lambda);
  sol.worst_case = Workload(tilt[0], tilt[1], tilt[2], tilt[3]);
  return sol;
}

double RobustTuner::RobustCost(const Workload& w, double rho,
                               const Tuning& t) const {
  return SolveInner(w, rho, t).value;
}

TuningResult RobustTuner::TunePolicy(const Workload& w, double rho,
                                     Policy policy) const {
  const SystemConfig& cfg = model_.config();
  WallTimer timer;

  // Log-scale T search, as in the nominal tuner.
  solver::Bounds bounds;
  bounds.lo = {std::log(cfg.min_size_ratio), 0.0};
  bounds.hi = {std::log(cfg.max_size_ratio),
               cfg.max_filter_bits_per_entry()};

  auto objective = [&](const std::vector<double>& x) {
    Tuning t(policy, std::exp(x[0]), x[1]);
    return RobustCost(w, rho, t);
  };

  solver::Result r =
      solver::MultiStartMinimize(objective, bounds, opts_.search);
  TuningResult out;
  out.tuning = Tuning(policy,
                      std::clamp(std::exp(r.x[0]), cfg.min_size_ratio,
                                 cfg.max_size_ratio),
                      r.x[1]);
  out.objective = r.fx;
  out.evaluations = r.evaluations;
  out.solve_seconds = timer.Seconds();
  return out;
}

TuningResult RobustTuner::Tune(const Workload& w, double rho) const {
  ENDURE_CHECK_MSG(!opts_.policies.empty(), "no policies to search");
  TuningResult best;
  best.objective = std::numeric_limits<double>::infinity();
  int evals = 0;
  double seconds = 0.0;
  for (Policy policy : opts_.policies) {
    TuningResult r = TunePolicy(w, rho, policy);
    evals += r.evaluations;
    seconds += r.solve_seconds;
    if (r.objective < best.objective) best = std::move(r);
  }
  best.evaluations = evals;
  best.solve_seconds = seconds;
  return best;
}

TuningResult RobustTuner::TuneJointDual(const Workload& w, double rho,
                                        Policy policy) const {
  const SystemConfig& cfg = model_.config();
  WallTimer timer;
  const auto warr = w.AsArray();
  const std::vector<double> wv(warr.begin(), warr.end());

  solver::Bounds bounds;
  bounds.lo = {std::log(cfg.min_size_ratio), 0.0, kLogLambdaLo};
  bounds.hi = {std::log(cfg.max_size_ratio),
               cfg.max_filter_bits_per_entry(), kLogLambdaHi};

  auto objective = [&](const std::vector<double>& x) {
    Tuning t(policy, std::exp(x[0]), x[1]);
    const std::vector<double> cv = model_.Costs(t).AsVector();
    if (rho <= kRhoEpsilon) {
      // Degenerate ball: the dual value approaches the nominal cost as
      // lambda -> infinity; evaluate directly to keep the surface smooth.
      double dot = 0.0;
      for (size_t i = 0; i < wv.size(); ++i) dot += wv[i] * cv[i];
      return dot;
    }
    return DualValue(wv, cv, rho, std::exp(x[2]));
  };

  solver::Result r =
      solver::MultiStartMinimize(objective, bounds, opts_.search);
  TuningResult out;
  out.tuning = Tuning(policy,
                      std::clamp(std::exp(r.x[0]), cfg.min_size_ratio,
                                 cfg.max_size_ratio),
                      r.x[1]);
  out.objective = r.fx;
  out.evaluations = r.evaluations;
  out.solve_seconds = timer.Seconds();
  return out;
}

}  // namespace endure
