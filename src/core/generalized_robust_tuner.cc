#include "core/generalized_robust_tuner.h"

#include <algorithm>
#include <cmath>

#include "solver/multistart.h"
#include "util/env.h"
#include "util/macros.h"

namespace endure {
namespace {

constexpr double kRhoEpsilon = 1e-12;

}  // namespace

GeneralizedRobustTuner::GeneralizedRobustTuner(const CostModel& model,
                                               DivergenceKind divergence,
                                               TunerOptions opts)
    : model_(model),
      kind_(divergence),
      divergence_(MakeDivergence(divergence)),
      opts_(std::move(opts)) {}

GeneralDualSolution GeneralizedRobustTuner::SolveInner(
    const Workload& w, double rho, const Tuning& t) const {
  ENDURE_CHECK_MSG(w.Validate().ok(), "invalid workload");
  ENDURE_CHECK_MSG(rho >= 0.0, "rho must be nonnegative");
  const auto warr = w.AsArray();
  const std::vector<double> wv(warr.begin(), warr.end());
  const std::vector<double> cv = model_.Costs(t).AsVector();
  const double nominal = model_.Cost(w, t);

  GeneralDualSolution sol;
  if (rho <= kRhoEpsilon) {
    sol.value = nominal;
    sol.lambda = std::numeric_limits<double>::infinity();
    sol.eta = nominal;
    return sol;
  }

  double c_min = cv[0], c_max = cv[0];
  for (double ci : cv) {
    c_min = std::min(c_min, ci);
    c_max = std::max(c_max, ci);
  }
  const double span = c_max - c_min;
  if (span < 1e-15) {
    sol.value = nominal;
    sol.lambda = std::numeric_limits<double>::infinity();
    sol.eta = nominal;
    return sol;
  }

  const double s_sup = divergence_->ConjugateDomainSup();

  // g(lambda, eta); +penalty outside the conjugate's domain so NM stays
  // feasible without explicit constraints.
  auto g = [&](const std::vector<double>& x) {
    const double lambda = std::exp(x[0]);
    const double eta = x[1];
    double sum = 0.0;
    for (size_t i = 0; i < wv.size(); ++i) {
      if (wv[i] == 0.0) continue;
      const double s = (cv[i] - eta) / lambda;
      if (s >= s_sup - 1e-12) {
        return 1e9 * (1.0 + s - s_sup) + 1e9;
      }
      sum += wv[i] * divergence_->Conjugate(s);
    }
    return eta + rho * lambda + lambda * sum;
  };

  solver::Bounds bounds;
  bounds.lo = {std::log(1e-9 * std::max(1.0, span)),
               c_min - 4.0 * span - 1.0};
  bounds.hi = {std::log(1e6 * std::max(1.0, span) / std::max(rho, 1e-3)),
               c_max + span + 1.0};

  solver::MultiStartOptions ms = opts_.search;
  ms.grid_points_per_dim = 12;
  ms.grid_seeds = 5;
  ms.random_starts = 5;
  const solver::Result r = solver::MultiStartMinimize(g, bounds, ms);

  sol.lambda = std::exp(r.x[0]);
  sol.eta = r.x[1];
  // The ball contains w and sits inside the simplex, so the true value
  // lies in [nominal, c_max]; clamp away solver round-off.
  sol.value = std::clamp(r.fx, nominal, c_max);
  return sol;
}

double GeneralizedRobustTuner::RobustCost(const Workload& w, double rho,
                                          const Tuning& t) const {
  return SolveInner(w, rho, t).value;
}

TuningResult GeneralizedRobustTuner::TunePolicy(const Workload& w,
                                                double rho,
                                                Policy policy) const {
  const SystemConfig& cfg = model_.config();
  WallTimer timer;

  solver::Bounds bounds;
  bounds.lo = {std::log(cfg.min_size_ratio), 0.0};
  bounds.hi = {std::log(cfg.max_size_ratio),
               cfg.max_filter_bits_per_entry()};

  auto objective = [&](const std::vector<double>& x) {
    Tuning t(policy, std::exp(x[0]), x[1]);
    return RobustCost(w, rho, t);
  };

  // The inner problem is itself a 2-D optimization, so trim the outer
  // search budget relative to the KL fast path.
  solver::MultiStartOptions ms = opts_.search;
  ms.grid_points_per_dim = 10;
  ms.grid_seeds = 4;
  ms.random_starts = 2;
  const solver::Result r = solver::MultiStartMinimize(objective, bounds, ms);

  TuningResult out;
  out.tuning = Tuning(policy,
                      std::clamp(std::exp(r.x[0]), cfg.min_size_ratio,
                                 cfg.max_size_ratio),
                      r.x[1]);
  out.objective = r.fx;
  out.evaluations = r.evaluations;
  out.solve_seconds = timer.Seconds();
  return out;
}

TuningResult GeneralizedRobustTuner::Tune(const Workload& w,
                                          double rho) const {
  ENDURE_CHECK_MSG(!opts_.policies.empty(), "no policies to search");
  TuningResult best;
  best.objective = std::numeric_limits<double>::infinity();
  int evals = 0;
  double seconds = 0.0;
  for (Policy policy : opts_.policies) {
    TuningResult r = TunePolicy(w, rho, policy);
    evals += r.evaluations;
    seconds += r.solve_seconds;
    if (r.objective < best.objective) best = std::move(r);
  }
  best.evaluations = evals;
  best.solve_seconds = seconds;
  return best;
}

}  // namespace endure
