// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// LSM tuning configuration Phi = (T, m_filt, pi) from Section 3.1. We
// parameterize filter memory as h = m_filt / N bits per entry (the paper's
// figures report h); buffer memory follows as m_buf = N * (H - h).

#ifndef ENDURE_CORE_TUNING_H_
#define ENDURE_CORE_TUNING_H_

#include <string>

#include "core/system_config.h"
#include "util/status.h"

namespace endure {

/// Compaction policy pi: leveling (eager merge, one run per level),
/// tiering (lazy merge, up to T-1 runs per level), or lazy leveling
/// (Dostoevsky: largest level leveled, the rest tiered — the hybrid the
/// paper's Section 2 cites as the natural extension of the design space).
enum class Policy {
  kLeveling = 0,
  kTiering = 1,
  kLazyLeveling = 2,
};

/// "leveling" / "tiering" / "lazy-leveling".
const char* PolicyName(Policy p);

/// A tuning configuration Phi.
struct Tuning {
  Policy policy = Policy::kLeveling;  ///< compaction policy pi
  double size_ratio = 10.0;           ///< size ratio T between levels
  double filter_bits_per_entry = 5.0; ///< h = m_filt / N

  Tuning() = default;
  Tuning(Policy p, double t, double h)
      : policy(p), size_ratio(t), filter_bits_per_entry(h) {}

  /// Filter memory m_filt in bits under `cfg`.
  double filter_memory_bits(const SystemConfig& cfg) const {
    return filter_bits_per_entry * cfg.num_entries;
  }

  /// Buffer memory m_buf in bits under `cfg` (total minus filters).
  double buffer_memory_bits(const SystemConfig& cfg) const {
    return cfg.total_memory_bits() - filter_memory_bits(cfg);
  }

  /// Buffer capacity in entries under `cfg`.
  double buffer_entries(const SystemConfig& cfg) const {
    return buffer_memory_bits(cfg) / cfg.entry_size_bits;
  }

  /// OK iff T and h are inside the bounds allowed by `cfg`.
  Status Validate(const SystemConfig& cfg) const;

  /// e.g. "Tuning{leveling, T=11.9, h=2.3}".
  std::string ToString() const;

  bool operator==(const Tuning& other) const = default;
};

}  // namespace endure

#endif  // ENDURE_CORE_TUNING_H_
