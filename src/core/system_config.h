// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// System (non-tunable) parameters of the LSM tree (Table 1 of the paper):
// data size N, entry size E, page capacity B, total memory budget, range
// selectivity and read/write asymmetry. Defaults reproduce the paper's
// experimental configuration (10 M x 1 KB entries, 4 KB pages, 10
// bits-per-entry memory budget, short range queries, A_rw = 1).

#ifndef ENDURE_CORE_SYSTEM_CONFIG_H_
#define ENDURE_CORE_SYSTEM_CONFIG_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace endure {

/// How the cost model treats the level count L(T) of Eq. (1).
///
/// kFractional keeps L continuous (no ceiling), which is what the paper's
/// reference implementation optimizes over — the ceil creates plateaus in T
/// whose left edges would otherwise always win (e.g. the paper's w3 nominal
/// tuning saturates at T = 100, which is only optimal on the smooth
/// surface). kInteger applies the ceiling, matching a deployed tree with
/// discrete levels; system-prediction benches use this mode.
enum class LevelPolicy {
  kFractional = 0,
  kInteger = 1,
};

/// Non-tunable environment parameters shared by the cost model, the tuners
/// and the LSM engine bridge.
struct SystemConfig {
  /// Total number of entries in the database (N).
  double num_entries = 1e7;

  /// Entry size in bits (E). Default 8192 bits = 1 KB.
  double entry_size_bits = 8192.0;

  /// Entries per disk page (B). Default 4 (4 KB page / 1 KB entry).
  double entries_per_page = 4.0;

  /// Total memory budget in bits per entry (filters + buffer): m = N * H.
  double memory_budget_bits_per_entry = 10.0;

  /// Expected range-query selectivity S_RQ (fraction of all entries
  /// returned). Default 2e-7: S_RQ * N / B = 0.5 pages, i.e. the paper's
  /// "short range queries reading zero to two pages per level".
  double range_selectivity = 2e-7;

  /// Storage read/write asymmetry A_rw (write cost / read cost).
  double read_write_asymmetry = 1.0;

  /// Upper bound for the size ratio during tuning (the paper's searches cap
  /// at 100; e.g. the w3 nominal tuning saturates at T = 100).
  double max_size_ratio = 100.0;

  /// Lower bound for the size ratio (T = 2 is the classical minimum, where
  /// leveling and tiering coincide).
  double min_size_ratio = 2.0;

  /// Minimum bits-per-entry left for the write buffer, i.e. the tuner
  /// searches h in [0, H - min_buffer_bits_per_entry]. Keeps m_buf > 0.
  double min_buffer_bits_per_entry = 0.1;

  /// Level-count treatment (see LevelPolicy). Fractional by default — the
  /// paper's optimization surface.
  LevelPolicy level_policy = LevelPolicy::kFractional;

  /// Total memory in bits (m = N * H).
  double total_memory_bits() const {
    return num_entries * memory_budget_bits_per_entry;
  }

  /// Largest admissible h (bits per entry for Bloom filters).
  double max_filter_bits_per_entry() const {
    return memory_budget_bits_per_entry - min_buffer_bits_per_entry;
  }

  /// OK iff all parameters are in their legal ranges.
  Status Validate() const;

  /// One-line summary for logs.
  std::string ToString() const;
};

}  // namespace endure

#endif  // ENDURE_CORE_SYSTEM_CONFIG_H_
