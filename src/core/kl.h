// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Kullback-Leibler divergence (Definition 1) and its convex-conjugate
// machinery used by the robust dual (Section 4): for phi_KL(t) =
// t log t - t + 1, the conjugate is phi*_KL(s) = e^s - 1, and the support
// function of the KL ball admits the closed form
//   max_{I_KL(p,w)<=rho} p.c = min_{lambda>0} lambda*(rho + log sum_i w_i
//   e^{c_i/lambda}).

#ifndef ENDURE_CORE_KL_H_
#define ENDURE_CORE_KL_H_

#include <vector>

#include "core/workload.h"

namespace endure {

/// I_KL(p, q) = sum_i p_i log(p_i / q_i). Zero p_i components contribute 0;
/// a positive p_i over a zero q_i yields +infinity. Inputs need not be
/// normalized (the paper's definition is over nonnegative vectors).
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q);

/// KL divergence between two workloads.
double KlDivergence(const Workload& p, const Workload& q);

/// phi_KL(t) = t log t - t + 1 (the divergence generator; phi(1) = 0).
double PhiKl(double t);

/// Conjugate phi*_KL(s) = e^s - 1.
double PhiKlConjugate(double s);

/// log(sum_i w_i * exp(c_i / lambda)) computed with the log-sum-exp trick;
/// requires lambda > 0 and at least one w_i > 0.
double LogSumExpTilt(const std::vector<double>& w, const std::vector<double>& c,
                     double lambda);

/// The exponentially tilted distribution p_i proportional to
/// w_i * exp(c_i / lambda) — the worst-case workload attaining the support
/// function at a given lambda.
std::vector<double> TiltedDistribution(const std::vector<double>& w,
                                       const std::vector<double>& c,
                                       double lambda);

}  // namespace endure

#endif  // ENDURE_CORE_KL_H_
