// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Umbrella header for the Endure core library: include this to get the
// workload/tuning types, the analytical cost model, both tuners, the
// evaluation metrics and the rho advisor.
//
// Quickstart:
//
//   endure::SystemConfig cfg;                    // paper defaults
//   endure::CostModel model(cfg);
//   endure::Workload expected(0.33, 0.33, 0.33, 0.01);
//   endure::RobustTuner tuner(model);
//   endure::TuningResult result = tuner.Tune(expected, /*rho=*/1.0);
//   // result.tuning -> {policy, size_ratio T, filter bits/entry h}

#ifndef ENDURE_CORE_ENDURE_H_
#define ENDURE_CORE_ENDURE_H_

#include "core/cost_model.h"                // IWYU pragma: export
#include "core/divergence.h"                // IWYU pragma: export
#include "core/generalized_robust_tuner.h"  // IWYU pragma: export
#include "core/kl.h"                        // IWYU pragma: export
#include "core/metrics.h"                   // IWYU pragma: export
#include "core/nominal_tuner.h"             // IWYU pragma: export
#include "core/rho_advisor.h"               // IWYU pragma: export
#include "core/robust_tuner.h"              // IWYU pragma: export
#include "core/system_config.h"             // IWYU pragma: export
#include "core/tuning.h"                    // IWYU pragma: export
#include "core/workload.h"                  // IWYU pragma: export

#endif  // ENDURE_CORE_ENDURE_H_
