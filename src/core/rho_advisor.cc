#include "core/rho_advisor.h"

#include <algorithm>

#include "core/kl.h"
#include "util/macros.h"
#include "util/stats.h"

namespace endure {
namespace {

// Mixes a little uniform mass into a workload so KL stays finite when a
// class has zero observed share.
Workload Smooth(const Workload& w, double eps) {
  Workload out;
  for (int i = 0; i < kNumQueryClasses; ++i) {
    out[i] = (w[i] + eps) / (1.0 + kNumQueryClasses * eps);
  }
  return out;
}

}  // namespace

RhoEstimate EstimateRho(const std::vector<Workload>& history,
                        const Workload& expected, double smoothing) {
  ENDURE_CHECK_MSG(!history.empty(), "empty workload history");
  const Workload exp_s = Smooth(expected, smoothing);

  RhoEstimate est;
  RunningStats pairwise;
  for (size_t i = 0; i < history.size(); ++i) {
    for (size_t j = 0; j < history.size(); ++j) {
      if (i == j) continue;
      pairwise.Add(KlDivergence(Smooth(history[i], smoothing),
                                Smooth(history[j], smoothing)));
    }
  }
  est.mean_pairwise = pairwise.count() > 0 ? pairwise.mean() : 0.0;

  std::vector<double> to_expected;
  to_expected.reserve(history.size());
  for (const Workload& h : history) {
    to_expected.push_back(KlDivergence(Smooth(h, smoothing), exp_s));
  }
  est.mean_to_expected = Mean(to_expected);
  est.max_to_expected =
      *std::max_element(to_expected.begin(), to_expected.end());
  est.p90_to_expected = Percentile(to_expected, 90.0);
  return est;
}

double RecommendRho(const std::vector<Workload>& history, double smoothing) {
  return EstimateRho(history, MeanWorkload(history), smoothing).mean_pairwise;
}

Workload MeanWorkload(const std::vector<Workload>& history) {
  ENDURE_CHECK_MSG(!history.empty(), "empty workload history");
  Workload mean(0.0, 0.0, 0.0, 0.0);
  for (const Workload& h : history) {
    for (int i = 0; i < kNumQueryClasses; ++i) mean[i] += h[i];
  }
  for (int i = 0; i < kNumQueryClasses; ++i) {
    mean[i] /= static_cast<double>(history.size());
  }
  return mean.Normalized();
}

}  // namespace endure
