#include "core/divergence.h"

#include <cmath>

#include "util/macros.h"

namespace endure {

double PhiDivergence::Divergence(const std::vector<double>& p,
                                 const std::vector<double>& q) const {
  ENDURE_CHECK(p.size() == q.size());
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    ENDURE_DCHECK(p[i] >= 0.0 && q[i] >= 0.0);
    if (q[i] == 0.0) {
      if (p[i] == 0.0) continue;
      // w_i phi(p_i / w_i) -> p_i * lim phi(t)/t; infinite for the
      // super-linear generators used here, finite slope for TV.
      return std::numeric_limits<double>::infinity();
    }
    sum += q[i] * Phi(p[i] / q[i]);
  }
  return sum;
}

double PhiDivergence::Divergence(const Workload& p, const Workload& q) const {
  const auto pa = p.AsArray();
  const auto qa = q.AsArray();
  return Divergence(std::vector<double>(pa.begin(), pa.end()),
                    std::vector<double>(qa.begin(), qa.end()));
}

// ---------------------------------------------------------------------- KL

double KlGenerator::Phi(double t) const {
  ENDURE_DCHECK(t >= 0.0);
  if (t == 0.0) return 1.0;
  return t * std::log(t) - t + 1.0;
}

double KlGenerator::Conjugate(double s) const { return std::expm1(s); }

// -------------------------------------------------------- modified chi^2

double ChiSquareGenerator::Phi(double t) const {
  ENDURE_DCHECK(t >= 0.0);
  return (t - 1.0) * (t - 1.0);
}

double ChiSquareGenerator::Conjugate(double s) const {
  if (s < -2.0) return -1.0;
  return s + s * s / 4.0;
}

// ------------------------------------------------------- total variation

double TotalVariationGenerator::Phi(double t) const {
  ENDURE_DCHECK(t >= 0.0);
  return std::fabs(t - 1.0);
}

double TotalVariationGenerator::Conjugate(double s) const {
  if (s > 1.0) return std::numeric_limits<double>::infinity();
  return std::max(-1.0, s);
}

// ------------------------------------------------------------- Hellinger

double HellingerGenerator::Phi(double t) const {
  ENDURE_DCHECK(t >= 0.0);
  const double r = std::sqrt(t) - 1.0;
  return r * r;
}

double HellingerGenerator::Conjugate(double s) const {
  if (s >= 1.0) return std::numeric_limits<double>::infinity();
  return s / (1.0 - s);
}

// -------------------------------------------------------------- factory

std::unique_ptr<PhiDivergence> MakeDivergence(DivergenceKind kind) {
  switch (kind) {
    case DivergenceKind::kKl:
      return std::make_unique<KlGenerator>();
    case DivergenceKind::kChiSquare:
      return std::make_unique<ChiSquareGenerator>();
    case DivergenceKind::kTotalVariation:
      return std::make_unique<TotalVariationGenerator>();
    case DivergenceKind::kHellinger:
      return std::make_unique<HellingerGenerator>();
  }
  ENDURE_CHECK_MSG(false, "unknown divergence kind");
  return nullptr;
}

const std::vector<DivergenceKind>& AllDivergenceKinds() {
  static const std::vector<DivergenceKind> kAll = {
      DivergenceKind::kKl, DivergenceKind::kChiSquare,
      DivergenceKind::kTotalVariation, DivergenceKind::kHellinger};
  return kAll;
}

}  // namespace endure
