#include "bridge/experiment.h"

#include <cmath>
#include <cstdio>

#include "util/env.h"
#include "util/macros.h"

namespace endure::bridge {

ExperimentRunner::ExperimentRunner(const SystemConfig& cfg,
                                   ExperimentOptions opts)
    : cfg_(cfg),
      scaled_cfg_(ScaledConfig(cfg, opts.actual_entries)),
      opts_(opts) {
  // Predictions describe the deployed engine, which has discrete levels.
  scaled_cfg_.level_policy = LevelPolicy::kInteger;
}

std::vector<SessionMeasurement> ExperimentRunner::Run(
    const Tuning& tuning,
    const std::vector<workload::Session>& sessions) const {
  auto db_or = OpenTunedDb(cfg_, tuning, opts_.actual_entries, opts_.backend);
  ENDURE_CHECK_MSG(db_or.ok(), db_or.status().ToString().c_str());
  std::unique_ptr<lsm::DB> db = std::move(db_or).value();

  CostModel model(scaled_cfg_);
  // The engine rounds fractional size ratios up on deployment (Section
  // 8.3); predict with the deployed value.
  Tuning deployed = tuning;
  deployed.size_ratio = std::ceil(tuning.size_ratio - 1e-9);
  Rng rng(opts_.seed);
  workload::KeyUniverse universe(opts_.actual_entries);
  workload::TraceOptions trace_opts;
  trace_opts.range_span_entries = opts_.range_span_entries;

  const double a_rw = cfg_.read_write_asymmetry;
  std::vector<SessionMeasurement> out;
  out.reserve(sessions.size());

  for (const workload::Session& session : sessions) {
    SessionMeasurement m;
    m.kind = session.kind;
    m.average = session.Average();
    m.model_io_per_query = model.Cost(m.average, deployed);

    const lsm::Statistics before = db->stats();
    uint64_t queries = 0;
    std::array<uint64_t, kNumQueryClasses> class_counts = {0, 0, 0, 0};
    WallTimer timer;
    for (const Workload& w : session.workloads) {
      workload::QueryTrace trace = workload::GenerateTrace(
          w, opts_.queries_per_workload, &universe, &rng, trace_opts);
      for (int c = 0; c < kNumQueryClasses; ++c) {
        class_counts[c] += trace.counts[c];
      }
      for (const workload::Operation& op : trace.ops) {
        switch (op.type) {
          case kEmptyPointQuery:
          case kNonEmptyPointQuery:
            db->Get(op.key);
            break;
          case kRangeQuery:
            // Measurement workload: the I/O is the point, a read error
            // surfaces via Health() at the session boundary.
            (void)db->Scan(op.key, op.limit);
            break;
          case kWrite:
            db->Put(op.key, op.key);
            break;
        }
      }
      queries += trace.ops.size();
    }
    const double elapsed_us = timer.Seconds() * 1e6;
    const lsm::Statistics d = db->stats().Delta(before);

    m.total_queries = queries;
    const double write_traffic =
        static_cast<double>(d.compaction_pages_read) +
        a_rw * static_cast<double>(d.compaction_pages_written +
                                   d.flush_pages_written);
    const double read_traffic =
        static_cast<double>(d.point_pages_read + d.range_pages_read);
    m.measured_io_per_query =
        (read_traffic + write_traffic) / static_cast<double>(queries);
    m.latency_us_per_query = elapsed_us / static_cast<double>(queries);

    const uint64_t point_queries =
        class_counts[kEmptyPointQuery] + class_counts[kNonEmptyPointQuery];
    m.point_io = point_queries > 0 ? static_cast<double>(d.point_pages_read) /
                                         static_cast<double>(point_queries)
                                   : 0.0;
    m.range_io = class_counts[kRangeQuery] > 0
                     ? static_cast<double>(d.range_pages_read) /
                           static_cast<double>(class_counts[kRangeQuery])
                     : 0.0;
    m.write_io = class_counts[kWrite] > 0
                     ? write_traffic /
                           static_cast<double>(class_counts[kWrite])
                     : 0.0;
    out.push_back(m);
  }
  return out;
}

std::string FormatMeasurement(const SessionMeasurement& m) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-16s %s  model=%6.2f  system=%6.2f  latency=%8.2f us/q",
                workload::SessionKindName(m.kind),
                m.average.ToString().c_str(), m.model_io_per_query,
                m.measured_io_per_query, m.latency_us_per_query);
  return buf;
}

}  // namespace endure::bridge
