#include "bridge/pipeline.h"

#include <algorithm>

namespace endure::bridge {

TuningPipeline::TuningPipeline(const SystemConfig& cfg,
                               const Workload& expected, double rho,
                               PipelineOptions opts)
    : model_(cfg),
      tuner_(model_, opts.tuner),
      opts_(opts),
      expected_(expected),
      rho_(rho),
      monitor_(expected, rho, opts.monitor) {
  tuning_ = tuner_.Tune(expected_, rho_).tuning;
}

void TuningPipeline::RecordOperation(QueryClass type) {
  monitor_.Record(type);
}

TuningResult TuningPipeline::Retune() {
  expected_ = monitor_.WindowMean();
  rho_ = std::clamp(monitor_.RecommendedRho(), opts_.rho_floor,
                    opts_.rho_ceiling);
  TuningResult result = tuner_.Tune(expected_, rho_);
  tuning_ = result.tuning;
  monitor_.Retarget(expected_, rho_);
  ++retunes_;
  return result;
}

StatusOr<TuningResult> TuningPipeline::RetuneAndApply(
    lsm::ShardedDB* db, uint64_t actual_entries) {
  const TuningResult result = Retune();
  if (actual_entries == 0) actual_entries = db->TotalEntries();
  ENDURE_RETURN_IF_ERROR(
      ApplyTuning(db, model_.config(), result.tuning, actual_entries));
  return result;
}

}  // namespace endure::bridge
