// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// The system-experiment harness of Section 8: executes session sequences
// against tuned engine instances and reports, per session, the
// model-predicted I/Os per query, the engine-measured I/Os per query
// (reads measured directly; write I/O amortized from flush + compaction
// traffic as in Section 8.1) and wall-clock latency per query.

#ifndef ENDURE_BRIDGE_EXPERIMENT_H_
#define ENDURE_BRIDGE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "bridge/tuned_db.h"
#include "workload/query_generator.h"
#include "workload/session.h"

namespace endure::bridge {

/// Measurements for one session under one tuning.
struct SessionMeasurement {
  workload::SessionKind kind;
  Workload average;                ///< session's average workload
  uint64_t total_queries = 0;
  double model_io_per_query = 0.0;     ///< C(average, Phi) from the model
  double measured_io_per_query = 0.0;  ///< engine pages per query
  double latency_us_per_query = 0.0;   ///< wall-clock microseconds per query
  // Breakdown of the measured I/O (pages per query of that class).
  double point_io = 0.0;
  double range_io = 0.0;
  double write_io = 0.0;  ///< amortized flush+compaction traffic
};

/// Configuration of a system experiment.
struct ExperimentOptions {
  uint64_t actual_entries = 100000;     ///< DB size (paper: 1e7)
  uint64_t queries_per_workload = 1000; ///< ops executed per workload
  uint64_t range_span_entries = 2;      ///< short-range span
  uint64_t seed = 7;
  lsm::StorageBackend backend = lsm::StorageBackend::kMemory;
};

/// Runs session sequences against freshly tuned DB instances.
class ExperimentRunner {
 public:
  ExperimentRunner(const SystemConfig& cfg, ExperimentOptions opts = {});

  /// Bulk loads a DB for `tuning` and executes `sessions` in order,
  /// returning one measurement per session.
  std::vector<SessionMeasurement> Run(
      const Tuning& tuning,
      const std::vector<workload::Session>& sessions) const;

  /// The model config at deployment scale (for predictions).
  const SystemConfig& scaled_config() const { return scaled_cfg_; }

 private:
  SystemConfig cfg_;         ///< tuning-time (paper-scale) parameters
  SystemConfig scaled_cfg_;  ///< deployment-scale parameters
  ExperimentOptions opts_;
};

/// Formats a measurement row ("kind avg | model | system | latency").
std::string FormatMeasurement(const SessionMeasurement& m);

}  // namespace endure::bridge

#endif  // ENDURE_BRIDGE_EXPERIMENT_H_
