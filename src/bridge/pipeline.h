// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// TuningPipeline: the Section 7.3 operational loop packaged as a library
// component — tune robustly, watch the executed mix, recommend a retune
// when the observed workload leaves the tuned uncertainty ball, and
// recenter on the observed history with a freshly advised rho.

#ifndef ENDURE_BRIDGE_PIPELINE_H_
#define ENDURE_BRIDGE_PIPELINE_H_

#include "bridge/tuned_db.h"
#include "core/endure.h"
#include "workload/drift.h"

namespace endure::bridge {

/// Options for the pipeline.
struct PipelineOptions {
  workload::DriftMonitorOptions monitor;  ///< epoching and alarm policy
  TunerOptions tuner;                     ///< robust-tuner search budget
  double rho_floor = 0.1;   ///< never retune with less uncertainty margin
  double rho_ceiling = 4.0; ///< cap pathological history spreads
};

/// Owns the tuner + drift monitor; callers feed executed operations and
/// ask when (and to what) to retune.
class TuningPipeline {
 public:
  /// Computes the initial robust tuning for `expected` at `rho`.
  TuningPipeline(const SystemConfig& cfg, const Workload& expected,
                 double rho, PipelineOptions opts = {});

  /// The currently recommended tuning.
  const Tuning& current_tuning() const { return tuning_; }
  /// The workload the current tuning was computed for.
  const Workload& tuned_for() const { return expected_; }
  /// The uncertainty radius of the current tuning.
  double rho() const { return rho_; }
  /// Retunes performed so far.
  int retune_count() const { return retunes_; }

  /// Feeds one executed operation into the monitor.
  void RecordOperation(QueryClass type);

  /// True when the drift monitor recommends recomputing the tuning.
  bool RetuneRecommended() const { return monitor_.DriftAlarm(); }

  /// Recenters on the monitor's window mean with the advised rho, solves
  /// the robust problem, clears the alarm, and returns the new result.
  /// Callers redeploy the returned tuning at their convenience.
  TuningResult Retune();

  /// Retune() plus live deployment: applies the new recommendation to the
  /// serving ShardedDB in place via bridge::ApplyTuning (no rebuild; the
  /// structural migration proceeds on the DB's maintenance pool). The
  /// engine options are derived for `actual_entries` entries — pass the
  /// deployed entry count, or 0 to use db->TotalEntries(). On an apply
  /// error the pipeline state (tuning, monitor recentering) still
  /// reflects the retune; the DB keeps its previous tuning. On a durable
  /// deployment (Options::durability) the applied tuning is persisted
  /// with the apply, so a restarted server reopens into the retuned
  /// configuration and resumes any unfinished migration.
  StatusOr<TuningResult> RetuneAndApply(lsm::ShardedDB* db,
                                        uint64_t actual_entries = 0);

  /// Read-only access to the monitor (divergences, window state).
  const workload::DriftMonitor& monitor() const { return monitor_; }

 private:
  CostModel model_;
  RobustTuner tuner_;
  PipelineOptions opts_;
  Workload expected_;
  double rho_;
  Tuning tuning_;
  workload::DriftMonitor monitor_;
  int retunes_ = 0;
};

}  // namespace endure::bridge

#endif  // ENDURE_BRIDGE_PIPELINE_H_
