#include "bridge/tuned_db.h"

#include <algorithm>
#include <cmath>

#include "lsm/manifest.h"
#include "util/env.h"

namespace endure::bridge {

lsm::Options MakeOptions(const SystemConfig& cfg, const Tuning& t,
                         uint64_t actual_entries,
                         lsm::StorageBackend backend, int num_shards,
                         bool background_maintenance) {
  lsm::Options opts;
  opts.size_ratio =
      std::max(2, static_cast<int>(std::ceil(t.size_ratio - 1e-9)));
  switch (t.policy) {
    case Policy::kLeveling:
      opts.policy = lsm::CompactionPolicy::kLeveling;
      break;
    case Policy::kTiering:
      opts.policy = lsm::CompactionPolicy::kTiering;
      break;
    case Policy::kLazyLeveling:
      opts.policy = lsm::CompactionPolicy::kLazyLeveling;
      break;
  }
  // Preserve the per-entry memory split: m_buf = (H - h) * N_actual bits,
  // divided evenly across shards so a sharded deployment spends the same
  // total buffer memory as the single-tree one the model was tuned for.
  const double buffer_bits =
      (cfg.memory_budget_bits_per_entry - t.filter_bits_per_entry) *
      static_cast<double>(actual_entries);
  opts.buffer_entries = std::max<uint64_t>(
      16, static_cast<uint64_t>(buffer_bits / cfg.entry_size_bits /
                                std::max(1, num_shards)));
  opts.entries_per_page = static_cast<uint64_t>(cfg.entries_per_page);
  opts.filter_bits_per_entry = t.filter_bits_per_entry;
  opts.filter_allocation = lsm::FilterAllocation::kMonkey;
  opts.backend = backend;
  opts.num_shards = std::max(1, num_shards);
  opts.background_maintenance = background_maintenance;
  return opts;
}

SystemConfig ScaledConfig(const SystemConfig& cfg, uint64_t actual_entries) {
  SystemConfig scaled = cfg;
  scaled.num_entries = static_cast<double>(actual_entries);
  return scaled;
}

StatusOr<std::unique_ptr<lsm::DB>> OpenTunedDb(const SystemConfig& cfg,
                                               const Tuning& t,
                                               uint64_t actual_entries,
                                               lsm::StorageBackend backend) {
  auto db_or = lsm::DB::Open(MakeOptions(cfg, t, actual_entries, backend));
  if (!db_or.ok()) return db_or.status();
  std::unique_ptr<lsm::DB> db = std::move(db_or).value();

  std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
  pairs.reserve(actual_entries);
  for (uint64_t i = 0; i < actual_entries; ++i) {
    pairs.emplace_back(2 * i, i);  // even keys: odd keys are sure misses
  }
  ENDURE_RETURN_IF_ERROR(db->BulkLoad(pairs));
  return db;
}

StatusOr<std::unique_ptr<lsm::ShardedDB>> OpenTunedShardedDb(
    const SystemConfig& cfg, const Tuning& t, uint64_t actual_entries,
    int num_shards, bool background_maintenance,
    lsm::StorageBackend backend, const std::string& durable_dir,
    WalSyncMode wal_sync_mode, uint64_t block_cache_bytes,
    uint64_t memory_budget_bytes) {
  lsm::Options opts = MakeOptions(cfg, t, actual_entries, backend,
                                  num_shards, background_maintenance);
  opts.block_cache_bytes = block_cache_bytes;
  opts.memory_budget_bytes = memory_budget_bytes;
  bool recovering = false;
  // The initial bulk load is only "done" once this marker exists; a
  // manifest without it means the first load was interrupted mid-way,
  // which must not masquerade as a healthy recovered deployment.
  const std::string loaded_marker = durable_dir + "/bulk_loaded";
  if (!durable_dir.empty()) {
    opts.backend = lsm::StorageBackend::kFile;
    opts.storage_dir = durable_dir;
    opts.durability = true;
    opts.wal_sync_mode = wal_sync_mode;
    // An existing deployment is recovered by Open below — data, tuning
    // and migration state come from the manifest + WAL, not a rebuild.
    if (FileExists(durable_dir + "/" + lsm::kManifestFileName)) {
      if (!FileExists(loaded_marker)) {
        return Status::FailedPrecondition(
            durable_dir + ": the initial bulk load of this deployment "
            "was interrupted; clear the directory and reload");
      }
      recovering = true;
    }
  }
  auto db_or = lsm::ShardedDB::Open(opts);
  if (!db_or.ok()) return db_or.status();
  std::unique_ptr<lsm::ShardedDB> db = std::move(db_or).value();
  if (recovering) return db;

  std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
  pairs.reserve(actual_entries);
  for (uint64_t i = 0; i < actual_entries; ++i) {
    pairs.emplace_back(2 * i, i);  // even keys: odd keys are sure misses
  }
  ENDURE_RETURN_IF_ERROR(db->BulkLoad(pairs));
  if (!durable_dir.empty()) {
    ENDURE_RETURN_IF_ERROR(WriteFileAtomic(loaded_marker, "done\n"));
  }
  return db;
}

namespace {

/// Copies the immutable placement/durability knobs — plus the operational
/// scheduler knobs the tuner knows nothing about — of a live deployment
/// onto freshly derived options (only the tuning itself may change; a
/// retune must not silently reset the operator's throttle or stall
/// thresholds to defaults).
void CarryImmutableKnobs(const lsm::Options& current, lsm::Options* next) {
  next->storage_dir = current.storage_dir;
  next->durability = current.durability;
  next->wal_sync_mode = current.wal_sync_mode;
  next->wal_sync_interval_ms = current.wal_sync_interval_ms;
  next->shared_wal_flusher = current.shared_wal_flusher;
  next->recovery_threads = current.recovery_threads;
  next->maintenance_threads = current.maintenance_threads;
  next->compaction_rate_bytes_per_sec = current.compaction_rate_bytes_per_sec;
  next->compaction_max_subtasks = current.compaction_max_subtasks;
  next->compaction_partition_min_pages =
      current.compaction_partition_min_pages;
  next->l1_stall_runs = current.l1_stall_runs;
  // Memory-plumbing knobs: the tuner budgets buffer-vs-filter memory, the
  // cache/arbiter budget is the operator's — a retune must not drop it.
  next->block_cache_bytes = current.block_cache_bytes;
  next->memory_budget_bytes = current.memory_budget_bytes;
}

}  // namespace

Status ApplyTuning(lsm::ShardedDB* db, const SystemConfig& cfg,
                   const Tuning& t, uint64_t actual_entries) {
  const lsm::Options current = db->options();
  lsm::Options next =
      MakeOptions(cfg, t, actual_entries, current.backend,
                  current.num_shards, current.background_maintenance);
  CarryImmutableKnobs(current, &next);
  // On a durable deployment ShardedDB::ApplyTuning republishes every
  // shard manifest and the root manifest, so the retune survives a
  // restart (TuningPipeline::RetuneAndApply inherits this).
  return db->ApplyTuning(next);
}

Status ApplyTuning(lsm::DB* db, const SystemConfig& cfg, const Tuning& t,
                   uint64_t actual_entries) {
  const lsm::Options current = db->options();
  lsm::Options next = MakeOptions(cfg, t, actual_entries, current.backend);
  next.background_maintenance = current.background_maintenance;
  CarryImmutableKnobs(current, &next);
  return db->ApplyTuning(next);
}

}  // namespace endure::bridge
