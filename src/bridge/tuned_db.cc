#include "bridge/tuned_db.h"

#include <algorithm>
#include <cmath>

namespace endure::bridge {

lsm::Options MakeOptions(const SystemConfig& cfg, const Tuning& t,
                         uint64_t actual_entries,
                         lsm::StorageBackend backend, int num_shards,
                         bool background_maintenance) {
  lsm::Options opts;
  opts.size_ratio =
      std::max(2, static_cast<int>(std::ceil(t.size_ratio - 1e-9)));
  switch (t.policy) {
    case Policy::kLeveling:
      opts.policy = lsm::CompactionPolicy::kLeveling;
      break;
    case Policy::kTiering:
      opts.policy = lsm::CompactionPolicy::kTiering;
      break;
    case Policy::kLazyLeveling:
      opts.policy = lsm::CompactionPolicy::kLazyLeveling;
      break;
  }
  // Preserve the per-entry memory split: m_buf = (H - h) * N_actual bits,
  // divided evenly across shards so a sharded deployment spends the same
  // total buffer memory as the single-tree one the model was tuned for.
  const double buffer_bits =
      (cfg.memory_budget_bits_per_entry - t.filter_bits_per_entry) *
      static_cast<double>(actual_entries);
  opts.buffer_entries = std::max<uint64_t>(
      16, static_cast<uint64_t>(buffer_bits / cfg.entry_size_bits /
                                std::max(1, num_shards)));
  opts.entries_per_page = static_cast<uint64_t>(cfg.entries_per_page);
  opts.filter_bits_per_entry = t.filter_bits_per_entry;
  opts.filter_allocation = lsm::FilterAllocation::kMonkey;
  opts.backend = backend;
  opts.num_shards = std::max(1, num_shards);
  opts.background_maintenance = background_maintenance;
  return opts;
}

SystemConfig ScaledConfig(const SystemConfig& cfg, uint64_t actual_entries) {
  SystemConfig scaled = cfg;
  scaled.num_entries = static_cast<double>(actual_entries);
  return scaled;
}

StatusOr<std::unique_ptr<lsm::DB>> OpenTunedDb(const SystemConfig& cfg,
                                               const Tuning& t,
                                               uint64_t actual_entries,
                                               lsm::StorageBackend backend) {
  auto db_or = lsm::DB::Open(MakeOptions(cfg, t, actual_entries, backend));
  if (!db_or.ok()) return db_or.status();
  std::unique_ptr<lsm::DB> db = std::move(db_or).value();

  std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
  pairs.reserve(actual_entries);
  for (uint64_t i = 0; i < actual_entries; ++i) {
    pairs.emplace_back(2 * i, i);  // even keys: odd keys are sure misses
  }
  ENDURE_RETURN_IF_ERROR(db->BulkLoad(pairs));
  return db;
}

StatusOr<std::unique_ptr<lsm::ShardedDB>> OpenTunedShardedDb(
    const SystemConfig& cfg, const Tuning& t, uint64_t actual_entries,
    int num_shards, bool background_maintenance,
    lsm::StorageBackend backend) {
  auto db_or = lsm::ShardedDB::Open(MakeOptions(
      cfg, t, actual_entries, backend, num_shards, background_maintenance));
  if (!db_or.ok()) return db_or.status();
  std::unique_ptr<lsm::ShardedDB> db = std::move(db_or).value();

  std::vector<std::pair<lsm::Key, lsm::Value>> pairs;
  pairs.reserve(actual_entries);
  for (uint64_t i = 0; i < actual_entries; ++i) {
    pairs.emplace_back(2 * i, i);  // even keys: odd keys are sure misses
  }
  ENDURE_RETURN_IF_ERROR(db->BulkLoad(pairs));
  return db;
}

Status ApplyTuning(lsm::ShardedDB* db, const SystemConfig& cfg,
                   const Tuning& t, uint64_t actual_entries) {
  const lsm::Options& current = db->options();
  lsm::Options next =
      MakeOptions(cfg, t, actual_entries, current.backend,
                  current.num_shards, current.background_maintenance);
  next.storage_dir = current.storage_dir;  // placement is immutable
  return db->ApplyTuning(next);
}

Status ApplyTuning(lsm::DB* db, const SystemConfig& cfg, const Tuning& t,
                   uint64_t actual_entries) {
  const lsm::Options& current = db->options();
  lsm::Options next = MakeOptions(cfg, t, actual_entries, current.backend);
  next.background_maintenance = current.background_maintenance;
  next.storage_dir = current.storage_dir;
  return db->ApplyTuning(next);
}

}  // namespace endure::bridge
