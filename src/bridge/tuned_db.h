// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Bridges tuner output to engine configuration: turns a (SystemConfig,
// Tuning) pair into lsm::Options for a deployment of `actual_entries`
// entries. Size ratios are rounded up ("classical LSM trees cannot have
// fractional size ratios", Section 8.3) and the memory split is preserved
// per entry, which keeps the level count invariant across deployment
// scales (the paper's Fig. 16 observation).

#ifndef ENDURE_BRIDGE_TUNED_DB_H_
#define ENDURE_BRIDGE_TUNED_DB_H_

#include <memory>

#include "core/endure.h"
#include "lsm/db.h"
#include "lsm/sharded_db.h"

namespace endure::bridge {

/// Engine options implementing tuning `t` for a database of
/// `actual_entries` entries under system parameters `cfg`. With
/// `num_shards > 1` the write-buffer budget m_buf is split evenly across
/// shards (total buffer memory stays on the tuning's budget) and the
/// options describe one shard of a ShardedDB deployment;
/// `background_maintenance` moves flush/compaction work off the writers.
lsm::Options MakeOptions(const SystemConfig& cfg, const Tuning& t,
                         uint64_t actual_entries,
                         lsm::StorageBackend backend =
                             lsm::StorageBackend::kMemory,
                         int num_shards = 1,
                         bool background_maintenance = false);

/// A SystemConfig rescaled to the deployed entry count (for model
/// predictions comparable with engine measurements).
SystemConfig ScaledConfig(const SystemConfig& cfg, uint64_t actual_entries);

/// Opens a DB configured per the tuning and bulk loads `actual_entries`
/// entries with keys 2*0, 2*1, ..., matching workload::KeyUniverse.
StatusOr<std::unique_ptr<lsm::DB>> OpenTunedDb(
    const SystemConfig& cfg, const Tuning& t, uint64_t actual_entries,
    lsm::StorageBackend backend = lsm::StorageBackend::kMemory);

/// Sharded variant of OpenTunedDb: opens a ShardedDB deployment of
/// `num_shards` hash-partitioned shards implementing the tuning and bulk
/// loads the same even-key universe, ready to serve concurrent traffic.
///
/// With a non-empty `durable_dir` the deployment is durable (file
/// backend, WAL + manifest rooted there): a fresh directory is bulk
/// loaded once, while an existing deployment is *recovered* — data,
/// tuning and any in-flight migration — instead of being rebuilt, so a
/// restarted server resumes where it left off (`wal_sync_mode` selects
/// the commit durability; see docs/durability.md).
///
/// `block_cache_bytes` > 0 opens the deployment with the shared block
/// cache sized to that budget; additionally setting
/// `memory_budget_bytes` > block_cache_bytes turns on the memory
/// arbiter, which re-splits that global budget between write buffers
/// and cache as the serving mix drifts (see docs/operations.md). Both
/// are operator knobs: later ApplyTuning calls carry them unchanged.
StatusOr<std::unique_ptr<lsm::ShardedDB>> OpenTunedShardedDb(
    const SystemConfig& cfg, const Tuning& t, uint64_t actual_entries,
    int num_shards, bool background_maintenance = true,
    lsm::StorageBackend backend = lsm::StorageBackend::kMemory,
    const std::string& durable_dir = "",
    WalSyncMode wal_sync_mode = WalSyncMode::kBackground,
    uint64_t block_cache_bytes = 0, uint64_t memory_budget_bytes = 0);

/// Applies tuner output to a *running* deployment: maps `t` onto engine
/// options for `actual_entries` entries (per-shard buffer split, rounded
/// size ratio — the same mapping MakeOptions used at open, with the
/// deployment's immutable knobs carried over) and calls
/// `db->ApplyTuning`, which transitions the serving system live: no
/// rebuild, no lost acked writes, reads served throughout. The
/// structural migration proceeds on the maintenance pool; poll
/// `db->Progress()` or call `db->WaitForMaintenance()` to observe it
/// converge. This is the deploy half of the Section 7.3 loop
/// (TuningPipeline::RetuneAndApply packages both halves).
Status ApplyTuning(lsm::ShardedDB* db, const SystemConfig& cfg,
                   const Tuning& t, uint64_t actual_entries);

/// Single-tree variant (experiments): migration converges synchronously.
Status ApplyTuning(lsm::DB* db, const SystemConfig& cfg, const Tuning& t,
                   uint64_t actual_entries);

}  // namespace endure::bridge

#endif  // ENDURE_BRIDGE_TUNED_DB_H_
