// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Session construction for the system experiments (Section 8.2): a session
// is a short sequence of workloads drawn from the benchmark set, catalogued
// by dominant query type (expected / reads / range / empty reads /
// non-empty reads / writes). The "expected" session keeps KL < 0.2 to the
// tuning workload; all other sessions give >= 80% of queries to the
// dominant class.

#ifndef ENDURE_WORKLOAD_SESSION_H_
#define ENDURE_WORKLOAD_SESSION_H_

#include <string>
#include <vector>

#include "core/workload.h"
#include "util/random.h"

namespace endure::workload {

/// Session categories used in Figs. 8-18.
enum class SessionKind {
  kReads = 0,          ///< z0 + z1 dominant
  kRange = 1,          ///< q dominant
  kEmptyReads = 2,     ///< z0 dominant
  kNonEmptyReads = 3,  ///< z1 dominant
  kWrites = 4,         ///< w dominant
  kExpected = 5,       ///< KL(w, expected) < 0.2
};

/// "Reads", "Range", "Empty Reads", ...
const char* SessionKindName(SessionKind k);

/// One experiment session: its kind and constituent workloads.
struct Session {
  SessionKind kind;
  std::vector<Workload> workloads;

  /// Component-wise average of the session's workloads (the label printed
  /// above each session in the paper's figures).
  Workload Average() const;
};

/// Options for the session generator.
struct SessionOptions {
  int workloads_per_session = 5;   ///< sequence length per session
  double dominance = 0.8;          ///< dominant-class minimum fraction
  double expected_kl_cap = 0.2;    ///< KL cap for the "expected" session
  int max_rejection_draws = 2000000;  ///< sampler give-up bound
};

/// Rejection-samples session workloads with the paper's predicates.
class SessionGenerator {
 public:
  SessionGenerator(const Workload& expected, Rng* rng,
                   SessionOptions opts = {});

  /// Builds one session of the given kind.
  Session Make(SessionKind kind) const;

  /// The paper's read-only sequence (Figs. 8-9):
  /// Reads, Range, Empty Reads, Non-Empty Reads, Reads, Reads.
  std::vector<Session> ReadOnlySequence() const;

  /// The paper's mixed sequence (Figs. 10-18):
  /// Reads, Range, Empty Reads, Non-Empty Reads, Writes, Expected.
  std::vector<Session> MixedSequence() const;

 private:
  /// Draws a single workload satisfying the predicate of `kind`.
  Workload Draw(SessionKind kind) const;

  Workload expected_;
  Rng* rng_;
  SessionOptions opts_;
};

}  // namespace endure::workload

#endif  // ENDURE_WORKLOAD_SESSION_H_
