#include "workload/expected_workloads.h"

#include "util/macros.h"

namespace endure::workload {

const char* CategoryName(Category c) {
  switch (c) {
    case Category::kUniform:
      return "uniform";
    case Category::kUnimodal:
      return "unimodal";
    case Category::kBimodal:
      return "bimodal";
    case Category::kTrimodal:
      return "trimodal";
  }
  return "?";
}

const std::vector<ExpectedWorkload>& AllExpectedWorkloads() {
  // Table 2 of the paper, verbatim.
  static const std::vector<ExpectedWorkload> kTable = {
      {0, {0.25, 0.25, 0.25, 0.25}, Category::kUniform},
      {1, {0.97, 0.01, 0.01, 0.01}, Category::kUnimodal},
      {2, {0.01, 0.97, 0.01, 0.01}, Category::kUnimodal},
      {3, {0.01, 0.01, 0.97, 0.01}, Category::kUnimodal},
      {4, {0.01, 0.01, 0.01, 0.97}, Category::kUnimodal},
      {5, {0.49, 0.49, 0.01, 0.01}, Category::kBimodal},
      {6, {0.49, 0.01, 0.49, 0.01}, Category::kBimodal},
      {7, {0.49, 0.01, 0.01, 0.49}, Category::kBimodal},
      {8, {0.01, 0.49, 0.49, 0.01}, Category::kBimodal},
      {9, {0.01, 0.49, 0.01, 0.49}, Category::kBimodal},
      {10, {0.01, 0.01, 0.49, 0.49}, Category::kBimodal},
      {11, {0.33, 0.33, 0.33, 0.01}, Category::kTrimodal},
      {12, {0.33, 0.33, 0.01, 0.33}, Category::kTrimodal},
      {13, {0.33, 0.01, 0.33, 0.33}, Category::kTrimodal},
      {14, {0.01, 0.33, 0.33, 0.33}, Category::kTrimodal},
  };
  return kTable;
}

const ExpectedWorkload& GetExpectedWorkload(int index) {
  const auto& all = AllExpectedWorkloads();
  ENDURE_CHECK_MSG(index >= 0 && index < static_cast<int>(all.size()),
                   "expected-workload index out of range");
  return all[index];
}

std::vector<ExpectedWorkload> WorkloadsByCategory(Category c) {
  std::vector<ExpectedWorkload> out;
  for (const auto& ew : AllExpectedWorkloads()) {
    if (ew.category == c) out.push_back(ew);
  }
  return out;
}

}  // namespace endure::workload
