#include "workload/query_generator.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace endure::workload {

uint64_t KeyUniverse::SampleExisting(Rng* rng) const {
  ENDURE_CHECK_MSG(count_ > 0, "no existing keys to sample");
  return KeyAt(rng->UniformInt(0, count_ - 1));
}

uint64_t KeyUniverse::SampleMissing(Rng* rng) const {
  // Odd keys inside the populated domain never exist.
  const uint64_t hi = count_ > 0 ? 2 * count_ : 2;
  return rng->UniformInt(0, hi / 2 - 1) * 2 + 1;
}

std::vector<uint64_t> KeyUniverse::InitialKeys(Rng* rng, bool shuffle) const {
  std::vector<uint64_t> keys;
  keys.reserve(count_);
  for (uint64_t i = 0; i < count_; ++i) keys.push_back(KeyAt(i));
  if (shuffle) {
    ENDURE_CHECK(rng != nullptr);
    rng->Shuffle(&keys);
  }
  return keys;
}

QueryTrace GenerateTrace(const Workload& w, uint64_t total_ops,
                         KeyUniverse* universe, Rng* rng,
                         const TraceOptions& opts) {
  ENDURE_CHECK(universe != nullptr && rng != nullptr);
  ENDURE_CHECK_MSG(w.Validate(1e-6).ok(), "invalid workload mix");

  QueryTrace trace;
  trace.ops.reserve(total_ops);

  // Apportion ops to classes by largest remainder so counts sum exactly.
  std::array<uint64_t, kNumQueryClasses> counts = {0, 0, 0, 0};
  std::array<double, kNumQueryClasses> remainders{};
  uint64_t assigned = 0;
  for (int i = 0; i < kNumQueryClasses; ++i) {
    const double exact = w[i] * static_cast<double>(total_ops);
    counts[i] = static_cast<uint64_t>(std::floor(exact));
    remainders[i] = exact - std::floor(exact);
    assigned += counts[i];
  }
  while (assigned < total_ops) {
    int best = 0;
    for (int i = 1; i < kNumQueryClasses; ++i) {
      if (remainders[i] > remainders[best]) best = i;
    }
    ++counts[best];
    remainders[best] = -1.0;
    ++assigned;
  }
  trace.counts = counts;

  for (uint64_t n = 0; n < counts[kEmptyPointQuery]; ++n) {
    trace.ops.push_back(
        {kEmptyPointQuery, universe->SampleMissing(rng), 0});
  }
  for (uint64_t n = 0; n < counts[kNonEmptyPointQuery]; ++n) {
    trace.ops.push_back(
        {kNonEmptyPointQuery, universe->SampleExisting(rng), 0});
  }
  for (uint64_t n = 0; n < counts[kRangeQuery]; ++n) {
    const uint64_t start = universe->SampleExisting(rng);
    // Span `range_span_entries` consecutive (even) keys.
    const uint64_t end = start + 2 * std::max<uint64_t>(1,
                                      opts.range_span_entries);
    trace.ops.push_back({kRangeQuery, start, end});
  }
  for (uint64_t n = 0; n < counts[kWrite]; ++n) {
    trace.ops.push_back({kWrite, universe->NextWriteKey(), 0});
  }

  if (opts.interleave) rng->Shuffle(&trace.ops);
  return trace;
}

}  // namespace endure::workload
