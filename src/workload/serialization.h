// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Plain-text persistence for workload histories and operation traces, so
// operators can feed recorded production mixes into the rho advisor and
// tuners (CLI `endure advise --file ...`), and experiments can be
// replayed byte-for-byte.
//
// Workload files: one "z0,z1,q,w" line per workload; '#' comments and
// blank lines ignored. Trace files: one "class,key,limit" line per op.

#ifndef ENDURE_WORKLOAD_SERIALIZATION_H_
#define ENDURE_WORKLOAD_SERIALIZATION_H_

#include <string>
#include <vector>

#include "core/workload.h"
#include "util/status.h"
#include "workload/query_generator.h"

namespace endure::workload {

/// Writes workloads, one CSV line each, with a header comment.
Status SaveWorkloads(const std::string& path,
                     const std::vector<Workload>& workloads);

/// Reads a workload file; validates every line (components >= 0, sum ~ 1).
StatusOr<std::vector<Workload>> LoadWorkloads(const std::string& path);

/// Serializes workloads to the same format in memory.
std::string WorkloadsToString(const std::vector<Workload>& workloads);

/// Parses the in-memory format.
StatusOr<std::vector<Workload>> WorkloadsFromString(const std::string& text);

/// Writes an operation trace, one "class,key,limit" line per op.
Status SaveTrace(const std::string& path, const QueryTrace& trace);

/// Reads an operation trace (counts are recomputed).
StatusOr<QueryTrace> LoadTrace(const std::string& path);

}  // namespace endure::workload

#endif  // ENDURE_WORKLOAD_SERIALIZATION_H_
