#include "workload/drift.h"

#include <algorithm>

#include "core/kl.h"
#include "util/macros.h"

namespace endure::workload {

void WorkloadEstimator::Record(QueryClass type, uint64_t count) {
  counts_[type] += count;
  total_ += count;
}

Workload WorkloadEstimator::Estimate(double smoothing) const {
  ENDURE_CHECK_MSG(total_ > 0, "no operations recorded");
  Workload w;
  double sum = 0.0;
  for (int i = 0; i < kNumQueryClasses; ++i) {
    w[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_) +
           smoothing;
    sum += w[i];
  }
  for (int i = 0; i < kNumQueryClasses; ++i) w[i] /= sum;
  return w;
}

void WorkloadEstimator::Reset() {
  for (auto& c : counts_) c = 0;
  total_ = 0;
}

DriftMonitor::DriftMonitor(const Workload& tuned_for, double tuned_rho,
                           DriftMonitorOptions opts)
    : tuned_for_(tuned_for), tuned_rho_(tuned_rho), opts_(opts) {
  ENDURE_CHECK_MSG(tuned_for.Validate(1e-6).ok(),
                   "invalid tuned-for workload");
  ENDURE_CHECK(tuned_rho >= 0.0);
  ENDURE_CHECK(opts_.ops_per_epoch > 0);
  ENDURE_CHECK(opts_.window_epochs > 0);
}

void DriftMonitor::Record(QueryClass type) {
  current_.Record(type);
  if (current_.total() >= opts_.ops_per_epoch) CloseEpoch();
}

void DriftMonitor::CloseEpoch() {
  const Workload observed = current_.Estimate();
  current_.Reset();
  history_.push_back(observed);
  while (history_.size() > opts_.window_epochs) history_.pop_front();

  last_divergence_ = KlDivergence(observed, tuned_for_);
  // rho = 0 tunings are nominal: any measurable drift is a breach.
  const double threshold =
      std::max(1e-3, opts_.alarm_factor * tuned_rho_);
  if (last_divergence_ > threshold) {
    ++consecutive_breaches_;
  } else {
    consecutive_breaches_ = 0;
  }
}

Workload DriftMonitor::WindowMean() const {
  if (history_.empty()) return tuned_for_;
  return MeanWorkload({history_.begin(), history_.end()});
}

double DriftMonitor::RecommendedRho() const {
  if (history_.size() < 2) return tuned_rho_;
  return RecommendRho({history_.begin(), history_.end()});
}

void DriftMonitor::Retarget(const Workload& new_expected, double new_rho) {
  ENDURE_CHECK_MSG(new_expected.Validate(1e-6).ok(),
                   "invalid retarget workload");
  tuned_for_ = new_expected;
  tuned_rho_ = new_rho;
  consecutive_breaches_ = 0;
}

}  // namespace endure::workload
