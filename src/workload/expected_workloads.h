// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// The paper's 15 expected workloads (Table 2), catalogued as uniform,
// unimodal, bimodal and trimodal by their dominant query types. Every
// workload keeps >= 1% of each query class so KL divergence stays finite.

#ifndef ENDURE_WORKLOAD_EXPECTED_WORKLOADS_H_
#define ENDURE_WORKLOAD_EXPECTED_WORKLOADS_H_

#include <string>
#include <vector>

#include "core/workload.h"

namespace endure::workload {

/// Workload category from Table 2.
enum class Category {
  kUniform = 0,
  kUnimodal = 1,
  kBimodal = 2,
  kTrimodal = 3,
};

/// "uniform" / "unimodal" / "bimodal" / "trimodal".
const char* CategoryName(Category c);

/// One Table 2 row.
struct ExpectedWorkload {
  int index;           ///< 0..14 as in Table 2
  Workload workload;   ///< the (z0, z1, q, w) mix
  Category category;   ///< dominant-query-type class
};

/// All 15 rows of Table 2, in order.
const std::vector<ExpectedWorkload>& AllExpectedWorkloads();

/// Table 2 row `index` (0..14).
const ExpectedWorkload& GetExpectedWorkload(int index);

/// All rows of one category.
std::vector<ExpectedWorkload> WorkloadsByCategory(Category c);

}  // namespace endure::workload

#endif  // ENDURE_WORKLOAD_EXPECTED_WORKLOADS_H_
