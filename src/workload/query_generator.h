// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Turns a workload mix into a concrete operation trace against a key
// universe, with the guarantees of Section 8.2: non-empty point reads hit
// existing keys, empty point reads sample the same domain but miss, range
// queries use minimal selectivity, and writes insert fresh unique keys.
//
// Key scheme: existing keys occupy the even numbers 2*i (i < current count)
// so odd keys are guaranteed misses from the same domain, and writes extend
// the even sequence.

#ifndef ENDURE_WORKLOAD_QUERY_GENERATOR_H_
#define ENDURE_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/workload.h"
#include "util/random.h"

namespace endure::workload {

/// One operation in a trace.
struct Operation {
  QueryClass type;       ///< which query class this op belongs to
  uint64_t key = 0;      ///< point key, range start, or write key
  uint64_t limit = 0;    ///< range end (exclusive upper key bound)
};

/// A materialized operation trace.
struct QueryTrace {
  std::vector<Operation> ops;
  std::array<uint64_t, kNumQueryClasses> counts = {0, 0, 0, 0};
};

/// Tracks which keys exist so traces can target hits/misses precisely.
class KeyUniverse {
 public:
  /// Starts with `initial_count` keys: 2*0, 2*1, ..., 2*(n-1).
  explicit KeyUniverse(uint64_t initial_count)
      : count_(initial_count) {}

  uint64_t count() const { return count_; }

  /// The i-th existing key.
  uint64_t KeyAt(uint64_t i) const { return 2 * i; }

  /// A uniformly random existing key.
  uint64_t SampleExisting(Rng* rng) const;

  /// A key from the same domain guaranteed absent (odd).
  uint64_t SampleMissing(Rng* rng) const;

  /// The next fresh write key (extends the even sequence).
  uint64_t NextWriteKey() { return 2 * count_++; }

  /// All initial keys in insertion (shuffled) order, for bulk loading.
  std::vector<uint64_t> InitialKeys(Rng* rng, bool shuffle = true) const;

 private:
  uint64_t count_;
};

/// Options for trace generation.
struct TraceOptions {
  /// Number of entries a range query should span (selectivity * N); the
  /// paper uses minimal selectivity (short ranges).
  uint64_t range_span_entries = 2;
  /// Shuffle the per-class operations together (paper workloads interleave
  /// query types).
  bool interleave = true;
};

/// Generates a trace of `total_ops` operations following mix `w` against
/// `universe`. Write keys are consumed from the universe (count grows).
QueryTrace GenerateTrace(const Workload& w, uint64_t total_ops,
                         KeyUniverse* universe, Rng* rng,
                         const TraceOptions& opts = {});

}  // namespace endure::workload

#endif  // ENDURE_WORKLOAD_QUERY_GENERATOR_H_
