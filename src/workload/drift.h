// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Streaming workload estimation and drift monitoring — the operational
// side of Section 7.3. A WorkloadEstimator folds executed operations into
// a running (z0, z1, q, w) mix; a DriftMonitor maintains a sliding window
// of per-epoch workloads, from which it (a) recommends the uncertainty
// radius rho (mean pairwise KL, the paper's guidance) and (b) raises a
// drift alarm when the live mix leaves the rho-ball the current tuning
// was computed for — the signal that a retune is worthwhile.

#ifndef ENDURE_WORKLOAD_DRIFT_H_
#define ENDURE_WORKLOAD_DRIFT_H_

#include <cstdint>
#include <deque>

#include "core/rho_advisor.h"
#include "core/workload.h"

namespace endure::workload {

/// Folds observed operations into a workload mix.
class WorkloadEstimator {
 public:
  /// Records one executed operation of the given class.
  void Record(QueryClass type, uint64_t count = 1);

  /// Total operations folded in.
  uint64_t total() const { return total_; }

  /// The observed mix; requires at least one operation. `smoothing` mixes
  /// in uniform mass so downstream KL stays finite.
  Workload Estimate(double smoothing = 1e-4) const;

  /// Resets all counters (epoch boundary).
  void Reset();

 private:
  uint64_t counts_[kNumQueryClasses] = {0, 0, 0, 0};
  uint64_t total_ = 0;
};

/// Options for the drift monitor.
struct DriftMonitorOptions {
  uint64_t ops_per_epoch = 10000;  ///< epoch length in operations
  size_t window_epochs = 16;       ///< history window size
  /// Alarm when I_KL(observed epoch, tuned-for workload) exceeds
  /// alarm_factor * tuned rho for `alarm_patience` consecutive epochs.
  double alarm_factor = 1.0;
  int alarm_patience = 2;
};

/// Sliding-window drift monitor.
class DriftMonitor {
 public:
  /// `tuned_for` is the expected workload of the deployed tuning and
  /// `tuned_rho` its uncertainty radius.
  DriftMonitor(const Workload& tuned_for, double tuned_rho,
               DriftMonitorOptions opts = {});

  /// Records one executed operation; may close an epoch internally.
  void Record(QueryClass type);

  /// Epochs currently in the window.
  size_t window_size() const { return history_.size(); }

  /// Mean workload over the window (falls back to the tuned-for mix when
  /// the window is empty).
  Workload WindowMean() const;

  /// Recommended rho from the window history (mean pairwise KL); falls
  /// back to the tuned rho with fewer than two epochs.
  double RecommendedRho() const;

  /// KL divergence of the most recent closed epoch w.r.t. the tuned-for
  /// workload (0 before the first epoch closes).
  double LastEpochDivergence() const { return last_divergence_; }

  /// True when the observed mix has left the tuned ball for
  /// `alarm_patience` consecutive epochs — time to retune.
  bool DriftAlarm() const { return consecutive_breaches_ >= opts_.alarm_patience; }

  /// Declares a retune: re-centers on `new_expected` with `new_rho` and
  /// clears the alarm (history is kept).
  void Retarget(const Workload& new_expected, double new_rho);

 private:
  void CloseEpoch();

  Workload tuned_for_;
  double tuned_rho_;
  DriftMonitorOptions opts_;
  WorkloadEstimator current_;
  std::deque<Workload> history_;
  double last_divergence_ = 0.0;
  int consecutive_breaches_ = 0;
};

}  // namespace endure::workload

#endif  // ENDURE_WORKLOAD_DRIFT_H_
