#include "workload/serialization.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/flags.h"

namespace endure::workload {
namespace {

bool IsBlankOrComment(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return Status::IOError("cannot open " + path);
  out << content;
  out.close();
  if (!out.good()) return Status::IOError("short write to " + path);
  return Status::OK();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

std::string WorkloadsToString(const std::vector<Workload>& workloads) {
  std::string out = "# endure workload history: z0,z1,q,w per line\n";
  char buf[128];
  for (const Workload& w : workloads) {
    std::snprintf(buf, sizeof(buf), "%.9f,%.9f,%.9f,%.9f\n", w.z0, w.z1,
                  w.q, w.w);
    out += buf;
  }
  return out;
}

StatusOr<std::vector<Workload>> WorkloadsFromString(
    const std::string& text) {
  std::vector<Workload> out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (IsBlankOrComment(line)) continue;
    auto parts = ParseCsvDoubles(line, 4);
    if (!parts.ok()) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": " + parts.status().message());
    }
    Workload w((*parts)[0], (*parts)[1], (*parts)[2], (*parts)[3]);
    const Status st = w.Validate(1e-6);
    if (!st.ok()) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": " + st.message());
    }
    out.push_back(w);
  }
  return out;
}

Status SaveWorkloads(const std::string& path,
                     const std::vector<Workload>& workloads) {
  return WriteFile(path, WorkloadsToString(workloads));
}

StatusOr<std::vector<Workload>> LoadWorkloads(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  return WorkloadsFromString(*text);
}

Status SaveTrace(const std::string& path, const QueryTrace& trace) {
  std::string out = "# endure trace: class,key,limit per line\n";
  char buf[96];
  for (const Operation& op : trace.ops) {
    std::snprintf(buf, sizeof(buf), "%d,%llu,%llu\n",
                  static_cast<int>(op.type),
                  static_cast<unsigned long long>(op.key),
                  static_cast<unsigned long long>(op.limit));
    out += buf;
  }
  return WriteFile(path, out);
}

StatusOr<QueryTrace> LoadTrace(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  QueryTrace trace;
  std::istringstream in(*text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (IsBlankOrComment(line)) continue;
    auto parts = ParseCsvDoubles(line, 3);
    if (!parts.ok()) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": " + parts.status().message());
    }
    const int type = static_cast<int>((*parts)[0]);
    if (type < 0 || type >= kNumQueryClasses) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": bad query class");
    }
    Operation op;
    op.type = static_cast<QueryClass>(type);
    op.key = static_cast<uint64_t>((*parts)[1]);
    op.limit = static_cast<uint64_t>((*parts)[2]);
    ++trace.counts[type];
    trace.ops.push_back(op);
  }
  return trace;
}

}  // namespace endure::workload
