// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// The uncertainty benchmark's "benchmark set of sampled workloads" B
// (Section 6): 10 K random workloads obtained by sampling a query count per
// class uniformly from (0, 10000) and normalizing. The raw counts are kept
// because the system experiments execute the actual query counts.

#ifndef ENDURE_WORKLOAD_BENCHMARK_SET_H_
#define ENDURE_WORKLOAD_BENCHMARK_SET_H_

#include <cstdint>
#include <vector>

#include "core/workload.h"
#include "util/random.h"

namespace endure::workload {

/// One sampled workload with its raw query counts.
struct SampledWorkload {
  Workload workload;                    ///< normalized mix
  std::array<uint64_t, kNumQueryClasses> counts;  ///< raw query counts
};

/// The benchmark set B.
class BenchmarkSet {
 public:
  /// Samples `size` workloads with counts uniform in [0, max_count]
  /// (paper: size = 10000, max_count = 10000).
  BenchmarkSet(int size, Rng* rng, uint64_t max_count = 10000);

  /// Number of sampled workloads.
  size_t size() const { return samples_.size(); }

  const SampledWorkload& sample(size_t i) const { return samples_.at(i); }

  /// All normalized workloads (copy, for metric sweeps).
  std::vector<Workload> Workloads() const;

  /// KL divergences I_KL(w_hat, expected) for every w_hat in B — the
  /// distributions plotted in Fig. 3.
  std::vector<double> KlDivergencesTo(const Workload& expected) const;

  /// Subset of B whose KL divergence to `expected` lies in [lo, hi).
  std::vector<SampledWorkload> FilterByKl(const Workload& expected, double lo,
                                          double hi) const;

  /// Subset of B where query class `c` holds at least `min_fraction` of the
  /// mix (the paper's session construction: dominant class >= 80%).
  std::vector<SampledWorkload> FilterByDominant(QueryClass c,
                                                double min_fraction) const;

  /// Subset where combined point reads (z0 + z1) hold >= `min_fraction`
  /// (the paper's "read" sessions).
  std::vector<SampledWorkload> FilterByCombinedReads(double min_fraction) const;

 private:
  std::vector<SampledWorkload> samples_;
};

}  // namespace endure::workload

#endif  // ENDURE_WORKLOAD_BENCHMARK_SET_H_
