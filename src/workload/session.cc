#include "workload/session.h"

#include <cmath>

#include "core/kl.h"
#include "util/macros.h"

namespace endure::workload {

const char* SessionKindName(SessionKind k) {
  switch (k) {
    case SessionKind::kReads:
      return "Reads";
    case SessionKind::kRange:
      return "Range";
    case SessionKind::kEmptyReads:
      return "Empty Reads";
    case SessionKind::kNonEmptyReads:
      return "Non-Empty Reads";
    case SessionKind::kWrites:
      return "Writes";
    case SessionKind::kExpected:
      return "Expected";
  }
  return "?";
}

Workload Session::Average() const {
  ENDURE_CHECK(!workloads.empty());
  Workload avg(0.0, 0.0, 0.0, 0.0);
  for (const Workload& w : workloads) {
    for (int i = 0; i < kNumQueryClasses; ++i) avg[i] += w[i];
  }
  for (int i = 0; i < kNumQueryClasses; ++i) {
    avg[i] /= static_cast<double>(workloads.size());
  }
  return avg;
}

SessionGenerator::SessionGenerator(const Workload& expected, Rng* rng,
                                   SessionOptions opts)
    : expected_(expected), rng_(rng), opts_(opts) {
  ENDURE_CHECK(rng != nullptr);
  ENDURE_CHECK_MSG(expected.Validate().ok(), "invalid expected workload");
}

Workload SessionGenerator::Draw(SessionKind kind) const {
  if (kind == SessionKind::kExpected) {
    // Uniform simplex sampling essentially never lands inside a small KL
    // ball around a skewed expected workload, so the "expected" session is
    // drawn as a logistic-normal perturbation of the expected mix instead
    // (noise magnitude resampled per draw to spread KL over [0, cap)).
    for (int attempt = 0; attempt < opts_.max_rejection_draws; ++attempt) {
      const double sigma = rng_->Uniform(0.05, 0.6);
      Workload w;
      double sum = 0.0;
      for (int i = 0; i < kNumQueryClasses; ++i) {
        w[i] = expected_[i] * std::exp(sigma * rng_->Gaussian());
        sum += w[i];
      }
      for (int i = 0; i < kNumQueryClasses; ++i) w[i] /= sum;
      if (KlDivergence(w, expected_) < opts_.expected_kl_cap) return w;
    }
    return expected_;
  }

  auto matches = [&](const Workload& w) {
    switch (kind) {
      case SessionKind::kReads:
        // Combined point reads dominate, without either class alone
        // reaching the cap (those are the dedicated sessions).
        return w.z0 + w.z1 >= opts_.dominance && w.z0 < opts_.dominance &&
               w.z1 < opts_.dominance;
      case SessionKind::kRange:
        return w.q >= opts_.dominance;
      case SessionKind::kEmptyReads:
        return w.z0 >= opts_.dominance;
      case SessionKind::kNonEmptyReads:
        return w.z1 >= opts_.dominance;
      case SessionKind::kWrites:
        return w.w >= opts_.dominance;
      case SessionKind::kExpected:
        return KlDivergence(w, expected_) < opts_.expected_kl_cap;
    }
    return false;
  };

  for (int attempt = 0; attempt < opts_.max_rejection_draws; ++attempt) {
    const std::vector<double> p =
        rng_->SimplexByCounts(kNumQueryClasses, 10000);
    const Workload w(p[0], p[1], p[2], p[3]);
    if (matches(w)) return w;
  }
  ENDURE_CHECK_MSG(false, "session sampler failed to match predicate");
  return expected_;
}

Session SessionGenerator::Make(SessionKind kind) const {
  Session s;
  s.kind = kind;
  s.workloads.reserve(opts_.workloads_per_session);
  for (int i = 0; i < opts_.workloads_per_session; ++i) {
    s.workloads.push_back(Draw(kind));
  }
  return s;
}

std::vector<Session> SessionGenerator::ReadOnlySequence() const {
  return {Make(SessionKind::kReads),         Make(SessionKind::kRange),
          Make(SessionKind::kEmptyReads),    Make(SessionKind::kNonEmptyReads),
          Make(SessionKind::kReads),         Make(SessionKind::kReads)};
}

std::vector<Session> SessionGenerator::MixedSequence() const {
  return {Make(SessionKind::kReads),      Make(SessionKind::kRange),
          Make(SessionKind::kEmptyReads), Make(SessionKind::kNonEmptyReads),
          Make(SessionKind::kWrites),     Make(SessionKind::kExpected)};
}

}  // namespace endure::workload
