#include "workload/benchmark_set.h"

#include "core/kl.h"
#include "util/macros.h"

namespace endure::workload {

BenchmarkSet::BenchmarkSet(int size, Rng* rng, uint64_t max_count) {
  ENDURE_CHECK(size > 0);
  ENDURE_CHECK(rng != nullptr);
  samples_.reserve(size);
  for (int i = 0; i < size; ++i) {
    std::vector<uint64_t> counts;
    std::vector<double> p =
        rng->SimplexByCounts(kNumQueryClasses, max_count, &counts);
    SampledWorkload s;
    s.workload = Workload(p[0], p[1], p[2], p[3]);
    for (int k = 0; k < kNumQueryClasses; ++k) s.counts[k] = counts[k];
    samples_.push_back(s);
  }
}

std::vector<Workload> BenchmarkSet::Workloads() const {
  std::vector<Workload> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.workload);
  return out;
}

std::vector<double> BenchmarkSet::KlDivergencesTo(
    const Workload& expected) const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) {
    out.push_back(KlDivergence(s.workload, expected));
  }
  return out;
}

std::vector<SampledWorkload> BenchmarkSet::FilterByKl(const Workload& expected,
                                                      double lo,
                                                      double hi) const {
  std::vector<SampledWorkload> out;
  for (const auto& s : samples_) {
    const double kl = KlDivergence(s.workload, expected);
    if (kl >= lo && kl < hi) out.push_back(s);
  }
  return out;
}

std::vector<SampledWorkload> BenchmarkSet::FilterByDominant(
    QueryClass c, double min_fraction) const {
  std::vector<SampledWorkload> out;
  for (const auto& s : samples_) {
    if (s.workload[c] >= min_fraction) out.push_back(s);
  }
  return out;
}

std::vector<SampledWorkload> BenchmarkSet::FilterByCombinedReads(
    double min_fraction) const {
  std::vector<SampledWorkload> out;
  for (const auto& s : samples_) {
    if (s.workload.z0 + s.workload.z1 >= min_fraction &&
        s.workload[kEmptyPointQuery] < min_fraction &&
        s.workload[kNonEmptyPointQuery] < min_fraction) {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace endure::workload
