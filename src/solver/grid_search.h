// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Exhaustive grid search over a box. The tuners run a coarse grid scan
// first to seed Nelder-Mead restarts: the LSM cost surface has plateaus and
// ridges at level-count boundaries where purely local methods can park.

#ifndef ENDURE_SOLVER_GRID_SEARCH_H_
#define ENDURE_SOLVER_GRID_SEARCH_H_

#include "solver/objective.h"

namespace endure::solver {

/// Options for GridSearch.
struct GridOptions {
  /// Points per dimension (>= 2). Total evaluations = prod(points_per_dim).
  std::vector<int> points_per_dim;
  /// Keep the best `top_k` grid points (for seeding local refinement).
  int top_k = 1;
};

/// One retained grid point.
struct GridPoint {
  std::vector<double> x;
  double fx;
};

/// Evaluates f on a regular grid over `bounds` and returns the best
/// `opts.top_k` points ordered best-first.
std::vector<GridPoint> GridSearch(const Objective& f, const Bounds& bounds,
                                  const GridOptions& opts);

}  // namespace endure::solver

#endif  // ENDURE_SOLVER_GRID_SEARCH_H_
