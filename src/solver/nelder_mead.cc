#include "solver/nelder_mead.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/macros.h"

namespace endure::solver {

std::vector<double> Bounds::Clamp(std::vector<double> x) const {
  ENDURE_DCHECK(x.size() == lo.size());
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lo[i], hi[i]);
  }
  return x;
}

bool Bounds::Contains(const std::vector<double>& x) const {
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] < lo[i] || x[i] > hi[i]) return false;
  }
  return true;
}

namespace {

struct Vertex {
  std::vector<double> x;
  double fx;
};

}  // namespace

Result NelderMeadMinimize(const Objective& f, std::vector<double> x0,
                          const Bounds& bounds,
                          const NelderMeadOptions& opts) {
  const size_t n = bounds.dim();
  ENDURE_CHECK(n >= 1);
  ENDURE_CHECK(x0.size() == n);
  x0 = bounds.Clamp(std::move(x0));

  Result result;
  auto eval = [&](const std::vector<double>& x) {
    ++result.evaluations;
    return f(bounds.Clamp(x));
  };

  // Initial simplex: x0 plus a step along each axis (flipped if it would
  // leave the box).
  std::vector<Vertex> simplex;
  simplex.reserve(n + 1);
  simplex.push_back({x0, eval(x0)});
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> xi = x0;
    double step = opts.initial_step * (bounds.hi[i] - bounds.lo[i]);
    if (step == 0.0) step = opts.initial_step;
    if (xi[i] + step > bounds.hi[i]) step = -step;
    xi[i] += step;
    simplex.push_back({xi, eval(xi)});
  }

  auto by_f = [](const Vertex& a, const Vertex& b) { return a.fx < b.fx; };

  for (int iter = 0; iter < opts.max_iter; ++iter) {
    std::sort(simplex.begin(), simplex.end(), by_f);
    result.iterations = iter;

    // Convergence: spread in f and in x.
    const double f_spread = std::fabs(simplex.back().fx - simplex.front().fx);
    double x_spread = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double mx = simplex[0].x[i], mn = simplex[0].x[i];
      for (const auto& v : simplex) {
        mx = std::max(mx, v.x[i]);
        mn = std::min(mn, v.x[i]);
      }
      x_spread = std::max(x_spread, mx - mn);
    }
    if (f_spread < opts.f_tol && x_spread < opts.x_tol) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (size_t v = 0; v < n; ++v) {
      for (size_t i = 0; i < n; ++i) centroid[i] += simplex[v].x[i];
    }
    for (size_t i = 0; i < n; ++i) centroid[i] /= static_cast<double>(n);

    Vertex& worst = simplex.back();
    const Vertex& best = simplex.front();
    const Vertex& second_worst = simplex[n - 1];

    auto affine = [&](double t) {
      std::vector<double> x(n);
      for (size_t i = 0; i < n; ++i) {
        x[i] = centroid[i] + t * (worst.x[i] - centroid[i]);
      }
      return bounds.Clamp(std::move(x));
    };

    // Reflection.
    std::vector<double> xr = affine(-opts.alpha);
    const double fr = eval(xr);
    if (fr < best.fx) {
      // Expansion.
      std::vector<double> xe = affine(-opts.alpha * opts.gamma);
      const double fe = eval(xe);
      if (fe < fr) {
        worst = {std::move(xe), fe};
      } else {
        worst = {std::move(xr), fr};
      }
      continue;
    }
    if (fr < second_worst.fx) {
      worst = {std::move(xr), fr};
      continue;
    }
    // Contraction (outside if the reflected point improved on the worst,
    // inside otherwise).
    const bool outside = fr < worst.fx;
    std::vector<double> xc = affine(outside ? -opts.alpha * opts.rho : opts.rho);
    const double fc = eval(xc);
    if (fc < std::min(fr, worst.fx)) {
      worst = {std::move(xc), fc};
      continue;
    }
    // Shrink towards the best vertex.
    for (size_t v = 1; v <= n; ++v) {
      for (size_t i = 0; i < n; ++i) {
        simplex[v].x[i] =
            best.x[i] + opts.sigma * (simplex[v].x[i] - best.x[i]);
      }
      simplex[v].x = bounds.Clamp(std::move(simplex[v].x));
      simplex[v].fx = eval(simplex[v].x);
    }
  }

  std::sort(simplex.begin(), simplex.end(), by_f);
  result.x = simplex.front().x;
  result.fx = simplex.front().fx;
  return result;
}

}  // namespace endure::solver
