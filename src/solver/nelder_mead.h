// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Nelder-Mead downhill simplex with box bounds. This is the workhorse of
// the tuners: the LSM cost surface is only piecewise-smooth in T (the
// number of levels L(T) is a ceil), so a derivative-free method with
// restarts is the right tool — the paper's SLSQP plays the same role on the
// Python side.

#ifndef ENDURE_SOLVER_NELDER_MEAD_H_
#define ENDURE_SOLVER_NELDER_MEAD_H_

#include "solver/objective.h"

namespace endure::solver {

/// Options for NelderMeadMinimize.
struct NelderMeadOptions {
  double f_tol = 1e-10;        ///< simplex f-spread convergence tolerance
  double x_tol = 1e-10;        ///< simplex x-spread convergence tolerance
  int max_iter = 2000;         ///< iteration cap
  double initial_step = 0.1;   ///< initial simplex edge, relative to box size
  // Standard NM coefficients.
  double alpha = 1.0;          ///< reflection
  double gamma = 2.0;          ///< expansion
  double rho = 0.5;            ///< contraction
  double sigma = 0.5;          ///< shrink
};

/// Minimizes f within `bounds` starting from x0 (clamped into the box).
/// Points outside the box are clamped before evaluation, which keeps the
/// method feasible without penalty tuning.
Result NelderMeadMinimize(const Objective& f, std::vector<double> x0,
                          const Bounds& bounds,
                          const NelderMeadOptions& opts = {});

}  // namespace endure::solver

#endif  // ENDURE_SOLVER_NELDER_MEAD_H_
