#include "solver/brent.h"

#include <cmath>

#include "util/macros.h"

namespace endure::solver {

Result1D BrentMinimize(const Objective1D& f, double a, double b,
                       const BrentOptions& opts) {
  ENDURE_CHECK(a < b);
  constexpr double kGolden = 0.3819660112501051;  // (3 - sqrt(5)) / 2
  const double eps = 1e-14;

  double x = a + kGolden * (b - a);
  double w = x, v = x;
  double fx = f(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;

  Result1D result;
  for (int iter = 0; iter < opts.max_iter; ++iter) {
    const double m = 0.5 * (a + b);
    const double tol1 = opts.tol * std::fabs(x) + eps;
    const double tol2 = 2.0 * tol1;
    if (std::fabs(x - m) <= tol2 - 0.5 * (b - a)) {
      result.converged = true;
      result.iterations = iter;
      break;
    }
    bool use_golden = true;
    if (std::fabs(e) > tol1) {
      // Attempt parabolic interpolation through (v, w, x).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double e_old = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * e_old) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) {
          d = (m > x) ? tol1 : -tol1;
        }
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x < m) ? b - x : a - x;
      d = kGolden * e;
    }
    const double u =
        (std::fabs(d) >= tol1) ? x + d : x + ((d > 0.0) ? tol1 : -tol1);
    const double fu = f(u);
    result.iterations = iter + 1;
    if (fu <= fx) {
      if (u < x) {
        b = x;
      } else {
        a = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  result.x = x;
  result.fx = fx;
  return result;
}

}  // namespace endure::solver
