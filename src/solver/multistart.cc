#include "solver/multistart.h"

#include "solver/grid_search.h"

namespace endure::solver {

Result MultiStartMinimize(const Objective& f, const Bounds& bounds,
                          const MultiStartOptions& opts) {
  const size_t n = bounds.dim();

  GridOptions grid_opts;
  grid_opts.points_per_dim.assign(n, opts.grid_points_per_dim);
  grid_opts.top_k = opts.grid_seeds;
  std::vector<GridPoint> seeds = GridSearch(f, bounds, grid_opts);

  Rng rng(opts.seed);
  for (int s = 0; s < opts.random_starts; ++s) {
    std::vector<double> x(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(bounds.lo[i], bounds.hi[i]);
    }
    seeds.push_back({std::move(x), 0.0});
  }

  Result best;
  int total_evals = 0;
  int total_iters = 0;
  for (const auto& seed : seeds) {
    Result r = NelderMeadMinimize(f, seed.x, bounds, opts.nm);
    total_evals += r.evaluations;
    total_iters += r.iterations;
    if (r.fx < best.fx) best = std::move(r);
  }
  best.evaluations = total_evals;
  best.iterations = total_iters;
  return best;
}

}  // namespace endure::solver
