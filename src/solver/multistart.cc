#include "solver/multistart.h"

#include <algorithm>

#include "solver/grid_search.h"
#include "util/thread_pool.h"

namespace endure::solver {
namespace {

/// True while this thread is executing a MultiStartMinimize start. Nested
/// calls (the generalized tuner's outer solve evaluates an objective that
/// itself runs MultiStartMinimize) then fall back to serial instead of
/// spawning a thread pool per objective evaluation.
thread_local bool t_inside_start = false;

}  // namespace

Result MultiStartMinimize(const Objective& f, const Bounds& bounds,
                          const MultiStartOptions& opts) {
  const size_t n = bounds.dim();

  GridOptions grid_opts;
  grid_opts.points_per_dim.assign(n, opts.grid_points_per_dim);
  grid_opts.top_k = opts.grid_seeds;
  std::vector<GridPoint> seeds = GridSearch(f, bounds, grid_opts);

  Rng rng(opts.seed);
  for (int s = 0; s < opts.random_starts; ++s) {
    std::vector<double> x(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(bounds.lo[i], bounds.hi[i]);
    }
    seeds.push_back({std::move(x), 0.0});
  }

  // Run every start, serially or fanned out. Each start writes its own
  // slot, so the reduction below can run in seed-index order and the
  // result is independent of scheduling.
  std::vector<Result> results(seeds.size());
  const size_t workers =
      t_inside_start ? 1
                     : std::min<size_t>(
                           seeds.size(),
                           opts.parallelism > 0
                               ? static_cast<size_t>(opts.parallelism)
                               : DefaultParallelism());
  if (workers <= 1 || seeds.size() <= 1) {
    const bool was_inside = t_inside_start;
    t_inside_start = true;  // keep nested calls serial too
    for (size_t i = 0; i < seeds.size(); ++i) {
      results[i] = NelderMeadMinimize(f, seeds[i].x, bounds, opts.nm);
    }
    t_inside_start = was_inside;
  } else {
    ThreadPool pool(workers);
    for (size_t i = 0; i < seeds.size(); ++i) {
      pool.Submit([&, i] {
        t_inside_start = true;  // worker threads run starts exclusively
        results[i] = NelderMeadMinimize(f, seeds[i].x, bounds, opts.nm);
      });
    }
    pool.Wait();
  }

  // Deterministic reduction: strict improvement in seed-index order, as a
  // serial loop would produce.
  Result best;
  int total_evals = 0;
  int total_iters = 0;
  for (Result& r : results) {
    total_evals += r.evaluations;
    total_iters += r.iterations;
    if (r.fx < best.fx) best = std::move(r);
  }
  best.evaluations = total_evals;
  best.iterations = total_iters;
  return best;
}

}  // namespace endure::solver
