// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Central-difference gradients and a projected gradient-descent minimizer.
// Used (a) in tests to validate the convexity/KKT structure of the robust
// dual, and (b) as an independent cross-check optimizer for the tuners.

#ifndef ENDURE_SOLVER_GRADIENT_H_
#define ENDURE_SOLVER_GRADIENT_H_

#include "solver/objective.h"

namespace endure::solver {

/// Central-difference gradient of f at x with relative step h.
std::vector<double> NumericalGradient(const Objective& f,
                                      const std::vector<double>& x,
                                      double h = 1e-6);

/// Options for ProjectedGradientDescent.
struct GradientDescentOptions {
  double step = 0.1;          ///< initial step size
  double backtrack = 0.5;     ///< step shrink factor on non-improvement
  double g_tol = 1e-8;        ///< gradient-norm convergence tolerance
  double f_tol = 1e-12;       ///< objective-improvement tolerance
  int max_iter = 1000;        ///< iteration cap
  double fd_step = 1e-6;      ///< finite-difference step
};

/// Minimizes f over the box via gradient descent with backtracking line
/// search; iterates are projected (clamped) into the box.
Result ProjectedGradientDescent(const Objective& f, std::vector<double> x0,
                                const Bounds& bounds,
                                const GradientDescentOptions& opts = {});

}  // namespace endure::solver

#endif  // ENDURE_SOLVER_GRADIENT_H_
