// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Brent's method for 1-D minimization over a bracket [a, b]: combines
// parabolic interpolation with golden-section fallback. Used to minimize the
// robust dual g(lambda) (convex in lambda after the analytic eta
// elimination) in the Endure robust tuner.

#ifndef ENDURE_SOLVER_BRENT_H_
#define ENDURE_SOLVER_BRENT_H_

#include "solver/objective.h"

namespace endure::solver {

/// Options for BrentMinimize.
struct BrentOptions {
  double tol = 1e-10;     ///< relative x tolerance
  int max_iter = 200;     ///< iteration cap
};

/// Minimizes f over [a, b]. Requires a < b. The function need not be
/// unimodal — the method still returns a local minimum inside the bracket —
/// but for convex f (the robust dual) the result is the global minimum.
Result1D BrentMinimize(const Objective1D& f, double a, double b,
                       const BrentOptions& opts = {});

}  // namespace endure::solver

#endif  // ENDURE_SOLVER_BRENT_H_
