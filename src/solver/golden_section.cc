#include "solver/golden_section.h"

#include <cmath>

#include "util/macros.h"

namespace endure::solver {

Result1D GoldenSectionMinimize(const Objective1D& f, double a, double b,
                               const GoldenSectionOptions& opts) {
  ENDURE_CHECK(a < b);
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c);
  double fd = f(d);

  Result1D result;
  int iter = 0;
  while (iter < opts.max_iter && (b - a) > opts.tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
    ++iter;
  }
  result.converged = (b - a) <= opts.tol;
  result.iterations = iter;
  if (fc < fd) {
    result.x = c;
    result.fx = fc;
  } else {
    result.x = d;
    result.fx = fd;
  }
  return result;
}

}  // namespace endure::solver
