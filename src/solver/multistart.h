// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Multi-start Nelder-Mead: grid-seeded plus random restarts, with the
// per-start local searches fanned out across a thread pool (objective
// evaluations are pure cost-model math, so starts are independent). This
// is the global strategy used by both tuners (the paper reports using an
// "off-the-shelf global minimizer from SciPy" for the same reason).

#ifndef ENDURE_SOLVER_MULTISTART_H_
#define ENDURE_SOLVER_MULTISTART_H_

#include "solver/nelder_mead.h"
#include "solver/objective.h"
#include "util/random.h"

namespace endure::solver {

/// Options for MultiStartMinimize.
struct MultiStartOptions {
  int grid_points_per_dim = 8;   ///< coarse seeding grid resolution
  int grid_seeds = 4;            ///< best grid points promoted to NM starts
  int random_starts = 4;         ///< extra uniform-random NM starts
  uint64_t seed = 1234;          ///< RNG seed for the random starts
  /// Worker threads for the per-start searches: 0 = hardware concurrency,
  /// 1 = serial. The objective must be safe to evaluate concurrently when
  /// this is not 1 (the tuners' cost-model objectives are). Results are
  /// bitwise identical at any parallelism: each start is deterministic in
  /// isolation and the reduction runs in start-index order.
  int parallelism = 0;
  NelderMeadOptions nm;          ///< per-start local options
};

/// Globally minimizes f over `bounds` via grid-seeded + random-restart
/// Nelder-Mead; returns the best local result.
Result MultiStartMinimize(const Objective& f, const Bounds& bounds,
                          const MultiStartOptions& opts = {});

}  // namespace endure::solver

#endif  // ENDURE_SOLVER_MULTISTART_H_
