// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Common types for the numerical-optimization substrate. The Endure tuners
// (src/core) express nominal and robust tuning as minimizations of these
// objective types, mirroring how the paper delegates Eq. (10) to SciPy's
// SLSQP.

#ifndef ENDURE_SOLVER_OBJECTIVE_H_
#define ENDURE_SOLVER_OBJECTIVE_H_

#include <functional>
#include <limits>
#include <vector>

namespace endure::solver {

/// Scalar objective over an n-dimensional point.
using Objective = std::function<double(const std::vector<double>&)>;

/// Scalar objective over a single variable.
using Objective1D = std::function<double(double)>;

/// Box constraints: per-dimension [lo, hi].
struct Bounds {
  std::vector<double> lo;
  std::vector<double> hi;

  size_t dim() const { return lo.size(); }

  /// Clamps x into the box, component-wise.
  std::vector<double> Clamp(std::vector<double> x) const;

  /// True when x lies inside the box (inclusive).
  bool Contains(const std::vector<double>& x) const;
};

/// Result of a minimization.
struct Result {
  std::vector<double> x;       ///< best point found
  double fx = std::numeric_limits<double>::infinity();  ///< objective there
  int iterations = 0;          ///< iterations performed
  int evaluations = 0;         ///< objective evaluations
  bool converged = false;      ///< tolerance met before iteration cap
};

/// Result of a 1-D minimization.
struct Result1D {
  double x = 0.0;
  double fx = std::numeric_limits<double>::infinity();
  int iterations = 0;
  bool converged = false;
};

}  // namespace endure::solver

#endif  // ENDURE_SOLVER_OBJECTIVE_H_
