// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Golden-section search: a derivative-free 1-D minimizer with guaranteed
// linear convergence on unimodal functions. Kept alongside Brent both as a
// fallback and as a cross-check in tests (the two must agree on convex
// duals).

#ifndef ENDURE_SOLVER_GOLDEN_SECTION_H_
#define ENDURE_SOLVER_GOLDEN_SECTION_H_

#include "solver/objective.h"

namespace endure::solver {

/// Options for GoldenSectionMinimize.
struct GoldenSectionOptions {
  double tol = 1e-10;   ///< absolute bracket-width tolerance
  int max_iter = 400;   ///< iteration cap
};

/// Minimizes f over [a, b] by golden-section search. Requires a < b.
Result1D GoldenSectionMinimize(const Objective1D& f, double a, double b,
                               const GoldenSectionOptions& opts = {});

}  // namespace endure::solver

#endif  // ENDURE_SOLVER_GOLDEN_SECTION_H_
