#include "solver/grid_search.h"

#include <algorithm>

#include "util/macros.h"

namespace endure::solver {

std::vector<GridPoint> GridSearch(const Objective& f, const Bounds& bounds,
                                  const GridOptions& opts) {
  const size_t n = bounds.dim();
  ENDURE_CHECK(opts.points_per_dim.size() == n);
  ENDURE_CHECK(opts.top_k >= 1);
  for (int p : opts.points_per_dim) ENDURE_CHECK(p >= 2);

  std::vector<GridPoint> best;
  auto consider = [&](std::vector<double> x, double fx) {
    if (static_cast<int>(best.size()) < opts.top_k) {
      best.push_back({std::move(x), fx});
      std::sort(best.begin(), best.end(),
                [](const GridPoint& a, const GridPoint& b) {
                  return a.fx < b.fx;
                });
      return;
    }
    if (fx < best.back().fx) {
      best.back() = {std::move(x), fx};
      std::sort(best.begin(), best.end(),
                [](const GridPoint& a, const GridPoint& b) {
                  return a.fx < b.fx;
                });
    }
  };

  // Odometer-style iteration over the grid.
  std::vector<int> idx(n, 0);
  std::vector<double> x(n);
  while (true) {
    for (size_t i = 0; i < n; ++i) {
      const int steps = opts.points_per_dim[i] - 1;
      x[i] = bounds.lo[i] +
             (bounds.hi[i] - bounds.lo[i]) * static_cast<double>(idx[i]) /
                 static_cast<double>(steps);
    }
    consider(x, f(x));
    // Advance odometer.
    size_t d = 0;
    while (d < n) {
      if (++idx[d] < opts.points_per_dim[d]) break;
      idx[d] = 0;
      ++d;
    }
    if (d == n) break;
  }
  return best;
}

}  // namespace endure::solver
