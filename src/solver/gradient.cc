#include "solver/gradient.h"

#include <cmath>

#include "util/macros.h"

namespace endure::solver {

std::vector<double> NumericalGradient(const Objective& f,
                                      const std::vector<double>& x,
                                      double h) {
  std::vector<double> g(x.size());
  std::vector<double> xp = x, xm = x;
  for (size_t i = 0; i < x.size(); ++i) {
    const double step = h * std::max(1.0, std::fabs(x[i]));
    xp[i] = x[i] + step;
    xm[i] = x[i] - step;
    g[i] = (f(xp) - f(xm)) / (2.0 * step);
    xp[i] = x[i];
    xm[i] = x[i];
  }
  return g;
}

Result ProjectedGradientDescent(const Objective& f, std::vector<double> x0,
                                const Bounds& bounds,
                                const GradientDescentOptions& opts) {
  ENDURE_CHECK(x0.size() == bounds.dim());
  Result result;
  std::vector<double> x = bounds.Clamp(std::move(x0));
  double fx = f(x);
  result.evaluations = 1;

  for (int iter = 0; iter < opts.max_iter; ++iter) {
    result.iterations = iter;
    std::vector<double> g = NumericalGradient(f, x, opts.fd_step);
    result.evaluations += 2 * static_cast<int>(x.size());

    double gnorm = 0.0;
    for (double gi : g) gnorm += gi * gi;
    gnorm = std::sqrt(gnorm);
    if (gnorm < opts.g_tol) {
      result.converged = true;
      break;
    }

    // Backtracking line search on the projected step.
    double step = opts.step;
    bool improved = false;
    for (int bt = 0; bt < 40; ++bt) {
      std::vector<double> xn(x.size());
      for (size_t i = 0; i < x.size(); ++i) xn[i] = x[i] - step * g[i];
      xn = bounds.Clamp(std::move(xn));
      const double fn = f(xn);
      ++result.evaluations;
      if (fn < fx - 1e-18) {
        if (fx - fn < opts.f_tol) {
          x = std::move(xn);
          fx = fn;
          result.converged = true;
          improved = true;
          break;
        }
        x = std::move(xn);
        fx = fn;
        improved = true;
        break;
      }
      step *= opts.backtrack;
    }
    if (!improved || result.converged) {
      if (!improved) result.converged = true;  // no descent direction left
      break;
    }
  }
  result.x = std::move(x);
  result.fx = fx;
  return result;
}

}  // namespace endure::solver
