#include "util/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/env.h"
#include "util/fault_injection.h"

namespace endure {

namespace {

/// Byte-at-a-time table for the ISO-HDLC (zlib) CRC-32.
std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr size_t kHeaderBytes = 4 + 4 + 1;  // crc32 + len + type

}  // namespace

uint32_t Crc32(const void* data, size_t len) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------- writer --

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path, WalSyncMode mode, int sync_interval_ms,
    std::function<void()> on_sync, WalFlushService* service) {
  if (const FaultOutcome f = CheckFault(FaultSite::kWalOpen); f.err != 0) {
    return Status::IOError("open wal " + path + ": " +
                           std::strerror(f.err) + " (injected)");
  }
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("open wal " + path + ": " + std::strerror(errno));
  }
  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(fd, mode, sync_interval_ms, std::move(on_sync),
                    mode == WalSyncMode::kBackground ? service : nullptr));
  // Register only once construction is complete: the service thread may
  // sync the writer the moment it appears in the rotation.
  if (writer->service_ != nullptr) writer->service_->Register(writer.get());
  return writer;
}

WalWriter::WalWriter(int fd, WalSyncMode mode, int sync_interval_ms,
                     std::function<void()> on_sync, WalFlushService* service)
    : mode_(mode), on_sync_(std::move(on_sync)), service_(service), fd_(fd) {
  if (mode_ == WalSyncMode::kBackground && service_ == nullptr) {
    flusher_ = std::thread([this, sync_interval_ms] {
      std::unique_lock<std::mutex> lock(mu_);
      while (!stop_) {
        cv_.wait_for(lock, std::chrono::milliseconds(sync_interval_ms));
        if (stop_) break;
        SyncWithLock(lock);  // error latches in deferred_error_
      }
    });
  }
}

WalWriter::~WalWriter() {
  // Leave the sync rotation first: after Deregister returns, no service
  // pass can touch this writer, so the teardown below races nothing.
  if (service_ != nullptr) service_->Deregister(this);
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    flusher_.join();
  }
  if (!abandoned_) {
    // A destructor cannot return a Status; a clean-close durability
    // failure must still not pass silently (every other durability
    // failure path in the engine is loud).
    const Status commit = Commit();
    std::unique_lock<std::mutex> lock(mu_);
    const Status sync = commit.ok() ? SyncWithLock(lock) : commit;
    if (!sync.ok()) {
      std::fprintf(stderr, "wal: final flush failed: %s\n",
                   sync.ToString().c_str());
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ::close(fd_);
  fd_ = -1;
}

void WalWriter::Append(uint8_t type, const void* payload, uint32_t len) {
  // Frame straight into the commit buffer (no temporary — this is the
  // durable write hot path): crc|len placeholder, then type + payload,
  // then the crc over [type, payload] patched in place. A record whose
  // header or body is torn fails the crc at replay.
  const size_t frame_at = pending_.size();
  char crc_len[8];
  std::memcpy(crc_len + 4, &len, 4);  // crc patched below
  pending_.append(crc_len, 8);
  pending_.push_back(static_cast<char>(type));
  pending_.append(static_cast<const char*>(payload), len);
  const uint32_t crc = Crc32(pending_.data() + frame_at + 8, 1 + len);
  std::memcpy(&pending_[frame_at], &crc, 4);
}

Status WalWriter::Commit() {
  std::unique_lock<std::mutex> lock(mu_);
  // A background fsync failure latched since the last call surfaces
  // here — even on an empty commit: durability degradation must not
  // stay silent.
  if (!deferred_error_.ok()) return deferred_error_;
  if (pending_.empty()) return Status::OK();
  if (const FaultOutcome f = CheckFault(FaultSite::kWalWrite); f.fires()) {
    // Model a torn group commit: a prefix reaches the file (framing CRCs
    // make replay stop at the tear), the rest stays pending for a retry
    // — the same accounting as a real short write below.
    size_t wrote = 0;
    if (f.short_io && pending_.size() > 1) {
      wrote = pending_.size() / 2;
      size_t woff = 0;
      while (woff < wrote) {
        const ssize_t put =
            ::write(fd_, pending_.data() + woff, wrote - woff);
        if (put <= 0) break;
        woff += static_cast<size_t>(put);
      }
      wrote = woff;
    }
    bytes_committed_ += wrote;
    pending_.erase(0, wrote);
    return Status::IOError(std::string("wal write: ") +
                           std::strerror(f.err != 0 ? f.err : EIO) +
                           " (injected)");
  }
  size_t off = 0;
  while (off < pending_.size()) {
    const ssize_t put =
        ::write(fd_, pending_.data() + off, pending_.size() - off);
    if (put < 0) {
      // Trim what did reach the file so a retry (or the destructor's
      // final Commit) continues where the kernel stopped instead of
      // duplicating the prefix and misframing the log.
      bytes_committed_ += off;
      pending_.erase(0, off);
      return Status::IOError(std::string("wal write: ") +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(put);
  }
  bytes_committed_ += pending_.size();
  pending_.clear();
  if (mode_ == WalSyncMode::kPerBatch) return SyncWithLock(lock);
  return Status::OK();
}

Status WalWriter::SyncWithLock(std::unique_lock<std::mutex>& lock) {
  if (fd_ < 0) return Status::OK();
  // Nothing committed since the last fsync: skip the syscall (an idle
  // background flusher would otherwise fsync every interval forever,
  // and wal_syncs would count elapsed time instead of sync work).
  if (bytes_committed_ == synced_bytes_) return Status::OK();
  const uint64_t target = bytes_committed_;
  const int fd = fd_;
  sync_in_flight_ = true;
  lock.unlock();  // never hold appenders hostage to device latency
  int rc = ::fsync(fd);
  if (rc == 0 && CheckFault(FaultSite::kWalFsync).err != 0) rc = -1;
  lock.lock();
  sync_in_flight_ = false;
  cv_.notify_all();  // ReopenAfterRewrite may be waiting to swap the fd
  if (rc != 0) {
    deferred_error_ = Status::IOError("wal fsync");
    return deferred_error_;
  }
  if (target > synced_bytes_) {
    synced_bytes_ = target;
    if (on_sync_) on_sync_();
  }
  return Status::OK();
}

Status WalWriter::ReopenAfterRewrite(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("reopen wal " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat wal " + path);
  }
  std::unique_lock<std::mutex> lock(mu_);
  // An fsync in flight on the old fd must finish before that fd is
  // closed (a closed — possibly recycled — fd under a live fsync would
  // sync the wrong file or fail spuriously).
  cv_.wait(lock, [this] { return !sync_in_flight_; });
  pending_.clear();  // staged records are covered by the snapshot
  ::close(fd_);
  fd_ = fd;
  // The snapshot was fsynced before the rename, so the writer starts
  // clean: the next background tick skips until new bytes commit —
  // no double-sync of the already-durable snapshot.
  bytes_committed_ = static_cast<uint64_t>(st.st_size);
  synced_bytes_ = bytes_committed_;
  return Status::OK();
}

Status WalWriter::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  return SyncWithLock(lock);
}

Status WalWriter::deferred_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deferred_error_;
}

void WalWriter::Abandon() {
  pending_.clear();
  abandoned_ = true;
}

// --------------------------------------------------------- flush service --

WalFlushService::WalFlushService(int sync_interval_ms) {
  thread_ = std::thread([this, sync_interval_ms] { Loop(sync_interval_ms); });
}

WalFlushService::~WalFlushService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Writers deregister in their destructors; a writer still registered
  // here would dangle the moment the owner's teardown continued.
  ENDURE_CHECK_MSG(writers_.empty(),
                   "WalFlushService destroyed with writers registered");
}

void WalFlushService::Register(WalWriter* writer) {
  std::lock_guard<std::mutex> lock(mu_);
  writers_.push_back(writer);
}

void WalFlushService::Deregister(WalWriter* writer) {
  // A pass syncs a snapshot of the registry with mu_ released, so
  // removal alone is not enough — wait until no pass is in flight, or
  // a dying writer could still be in the snapshot being synced.
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !pass_active_; });
  writers_.erase(std::remove(writers_.begin(), writers_.end(), writer),
                 writers_.end());
}

size_t WalFlushService::num_writers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writers_.size();
}

void WalFlushService::Loop(int sync_interval_ms) {
  const auto interval = std::chrono::milliseconds(sync_interval_ms);
  // Absolute deadlines, not wait_for: a pass's fsync time must not
  // stretch the period (interval-plus-pass-duration cadence would
  // silently widen the kBackground loss window).
  auto next_tick = std::chrono::steady_clock::now() + interval;
  std::vector<WalWriter*> pass;  // reused snapshot buffer
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_until(lock, next_tick);
    if (stop_) break;
    if (std::chrono::steady_clock::now() < next_tick) continue;  // spurious
    next_tick += interval;
    // A slow pass (device stall) must not queue a burst of catch-up
    // ticks; resume the cadence from now instead.
    if (next_tick < std::chrono::steady_clock::now()) {
      next_tick = std::chrono::steady_clock::now() + interval;
    }
    // One pass: sync a snapshot of the registry with mu_ released, so
    // shard attach (Register) and teardown (Deregister, which waits
    // out the pass) are never blocked behind device latency. Clean
    // writers skip the fsync syscall, so an idle fleet costs one mutex
    // round per tick. Errors latch in each writer's deferred_error_
    // and surface through its own Commit path, exactly as with a
    // private flusher thread.
    pass = writers_;
    pass_active_ = true;
    lock.unlock();
    for (WalWriter* writer : pass) writer->Sync();
    lock.lock();
    pass_active_ = false;
    cv_.notify_all();
  }
}

// ---------------------------------------------------------------- reader --

StatusOr<std::unique_ptr<WalReader>> WalReader::Open(
    const std::string& path) {
  if (!FileExists(path)) {
    return std::unique_ptr<WalReader>(new WalReader(""));
  }
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();
  return std::unique_ptr<WalReader>(new WalReader(std::move(data).value()));
}

bool WalReader::Next(uint8_t* type, std::string* payload) {
  if (pos_ == data_.size()) return false;  // clean end
  if (data_.size() - pos_ < kHeaderBytes) {
    tail_torn_ = true;
    return false;
  }
  uint32_t crc, len;
  std::memcpy(&crc, data_.data() + pos_, 4);
  std::memcpy(&len, data_.data() + pos_ + 4, 4);
  if (data_.size() - pos_ - 8 < static_cast<size_t>(len) + 1) {
    tail_torn_ = true;  // length runs past the file: torn append
    return false;
  }
  const char* body = data_.data() + pos_ + 8;
  if (Crc32(body, len + 1) != crc) {
    tail_torn_ = true;
    return false;
  }
  *type = static_cast<uint8_t>(body[0]);
  payload->assign(body + 1, len);
  pos_ += kHeaderBytes + len;
  return true;
}

}  // namespace endure
