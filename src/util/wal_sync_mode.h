// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// WalSyncMode in a lean standalone header: lsm/options.h needs only this
// knob, not the WalWriter machinery (threads, mutexes) in util/wal.h —
// keeping the core include graph light.

#ifndef ENDURE_UTIL_WAL_SYNC_MODE_H_
#define ENDURE_UTIL_WAL_SYNC_MODE_H_

namespace endure {

/// When the write-ahead log guarantees an acknowledged record has
/// reached the device (see util/wal.h and docs/durability.md).
enum class WalSyncMode {
  kNone = 0,        ///< never fsync while running (clean close still syncs)
  kBackground = 1,  ///< a flusher thread fsyncs every sync_interval_ms
  kPerBatch = 2,    ///< fsync inside every Commit (strongest, slowest)
};

}  // namespace endure

#endif  // ENDURE_UTIL_WAL_SYNC_MODE_H_
