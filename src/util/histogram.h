// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Fixed-width histogram used by the experiment drivers to reproduce the
// paper's distribution plots (e.g. Fig. 3 KL-divergence histograms and
// Fig. 6a throughput histograms) as ASCII output.

#ifndef ENDURE_UTIL_HISTOGRAM_H_
#define ENDURE_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace endure {

/// Equal-width bucket histogram over [lo, hi); out-of-range samples clamp to
/// the first/last bucket.
class Histogram {
 public:
  /// Creates `buckets` equal-width buckets spanning [lo, hi). Requires
  /// lo < hi and buckets >= 1.
  Histogram(double lo, double hi, int buckets);

  /// Records one sample.
  void Add(double x);

  /// Records many samples.
  void AddAll(const std::vector<double>& xs);

  int64_t count() const { return count_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  int64_t bucket_count(int b) const { return counts_.at(b); }

  /// Left edge of bucket b.
  double bucket_left(int b) const;

  /// Fraction of all samples falling in bucket b (0 when empty).
  double bucket_fraction(int b) const;

  /// Probability density estimate for bucket b (fraction / width).
  double bucket_density(int b) const;

  /// Renders an ASCII bar chart, `width` columns at the widest bar.
  std::string ToAscii(int width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
};

}  // namespace endure

#endif  // ENDURE_UTIL_HISTOGRAM_H_
