// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Failpoint-style storage fault injection. The engine's I/O primitives
// (FilePageStore, WalWriter, WriteFileAtomic/SyncDir, aligned-buffer
// allocation) consult the process-global injector before each operation;
// tests arm per-site rules (skip N operations, then fire M times — or
// forever — with a chosen errno, a short write, or a silent bit-flip) to
// rehearse transient EIO, ENOSPC exhaustion, torn writes, failed fsyncs
// and bit-rot without a faulty device. With no injector installed the
// hook is a single relaxed atomic load — the production fast path.
//
// Thread safety: Arm/Disarm/Evaluate synchronize internally, so faults
// may fire on background maintenance and WAL-flusher threads. Install /
// uninstall must be externally ordered against engine operation (tests
// install before opening a DB, or while it is quiescent).

#ifndef ENDURE_UTIL_FAULT_INJECTION_H_
#define ENDURE_UTIL_FAULT_INJECTION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/macros.h"

namespace endure {

/// Where in the storage stack a fault can fire.
enum class FaultSite {
  kSegmentOpen = 0,  ///< creating a segment file (FilePageStore writer)
  kSegmentWrite,     ///< pwrite of one segment page
  kSegmentFsync,     ///< fsync at segment Seal
  kSegmentRead,      ///< pread of one segment page
  kWalOpen,          ///< opening/reopening the WAL appender
  kWalWrite,         ///< the WAL group-commit write()
  kWalFsync,         ///< WAL fsync (foreground or background flusher)
  kFileWrite,        ///< WriteFileAtomic's data write (manifest path)
  kFileFsync,        ///< WriteFileAtomic's temp-file fsync
  kFileRename,       ///< WriteFileAtomic's publishing rename
  kDirSync,          ///< SyncDir (publishes renames/creates)
  kAlloc,            ///< aligned page-buffer allocation
};
inline constexpr size_t kNumFaultSites =
    static_cast<size_t>(FaultSite::kAlloc) + 1;

/// Human-readable site name (error messages, logs).
const char* FaultSiteName(FaultSite site);

/// What the instrumented operation should do, as decided by the injector.
/// Default-constructed = no fault: proceed normally.
struct FaultOutcome {
  /// errno to report (EIO, ENOSPC, ...). 0 = the operation must not
  /// report failure (but may still be shortened or corrupted below).
  int err = 0;
  /// Perform only part of the write (a torn page / torn commit). With
  /// err == 0 the tear is silent — detectable only by checksums.
  bool short_io = false;
  /// Flip one payload byte before it reaches the device (bit-rot).
  bool corrupt = false;

  bool fires() const { return err != 0 || short_io || corrupt; }
};

/// A seedable, per-site, per-operation-count fault schedule.
class FaultInjector {
 public:
  /// One armed failure pattern at a site.
  struct Rule {
    uint64_t skip = 0;   ///< let this many operations through first
    /// Fire on this many operations after the skip. UINT64_MAX models a
    /// permanent fault (fires until disarmed — "the disk stays bad").
    uint64_t count = 1;
    int err = 0;            ///< errno to inject (0 = silent fault)
    bool short_io = false;  ///< tear the write
    bool corrupt = false;   ///< flip a bit
  };

  FaultInjector() = default;
  ENDURE_DISALLOW_COPY_AND_ASSIGN(FaultInjector);

  /// Arms `rule` at `site`, replacing any previous rule and resetting the
  /// site's operation counter.
  void Arm(FaultSite site, const Rule& rule);

  /// Disarms one site ("the fault cleared"). Already-fired outcomes are
  /// not undone.
  void Disarm(FaultSite site);

  /// Disarms every site.
  void DisarmAll();

  /// Called by the instrumented operation: counts it against the site's
  /// rule and returns the outcome to apply.
  FaultOutcome Evaluate(FaultSite site);

  /// How many operations have fired a fault at `site` (test assertions).
  uint64_t fired(FaultSite site) const;

  /// How many operations consulted `site` (fired or not).
  uint64_t seen(FaultSite site) const;

  /// The installed injector, or null (the common, zero-overhead case).
  static FaultInjector* Current() {
    return current_.load(std::memory_order_acquire);
  }

  /// Installs `injector` process-wide (null uninstalls). The caller keeps
  /// ownership and must uninstall before destroying it.
  static void Install(FaultInjector* injector) {
    current_.store(injector, std::memory_order_release);
  }

 private:
  struct SiteState {
    Rule rule;
    bool armed = false;
    uint64_t seen = 0;   ///< operations evaluated since Arm
    uint64_t fired = 0;  ///< operations that drew a fault
  };

  static std::atomic<FaultInjector*> current_;

  mutable std::mutex mu_;
  std::array<SiteState, kNumFaultSites> sites_;  ///< under mu_
};

/// Evaluates `site` against the installed injector; no-fault when none
/// is installed. The hook every instrumented operation calls.
inline FaultOutcome CheckFault(FaultSite site) {
  FaultInjector* injector = FaultInjector::Current();
  if (injector == nullptr) return FaultOutcome{};
  return injector->Evaluate(site);
}

/// RAII install/uninstall for tests: the injector is live for the scope.
class ScopedFaultInjector {
 public:
  ScopedFaultInjector() { FaultInjector::Install(&injector_); }
  ~ScopedFaultInjector() { FaultInjector::Install(nullptr); }
  ENDURE_DISALLOW_COPY_AND_ASSIGN(ScopedFaultInjector);

  FaultInjector* operator->() { return &injector_; }
  FaultInjector& operator*() { return injector_; }

 private:
  FaultInjector injector_;
};

}  // namespace endure

#endif  // ENDURE_UTIL_FAULT_INJECTION_H_
