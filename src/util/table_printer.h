// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Console table formatting for the experiment drivers: every bench binary
// prints the rows/series of the paper table or figure it reproduces through
// this printer, plus optional CSV export for plotting.

#ifndef ENDURE_UTIL_TABLE_PRINTER_H_
#define ENDURE_UTIL_TABLE_PRINTER_H_

#include <initializer_list>
#include <string>
#include <vector>

namespace endure {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits.
  void AddRow(std::initializer_list<double> cells, int precision = 4);

  size_t num_rows() const { return rows_.size(); }

  /// Renders the aligned table.
  std::string ToString() const;

  /// Renders as CSV (comma-separated, header first).
  std::string ToCsv() const;

  /// Prints ToString() to stdout.
  void Print() const;

  /// Formats a double with the given precision (helper for cell building).
  static std::string Fmt(double v, int precision = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("==== title ====") to stdout — used by bench
/// drivers to delimit figure panels.
void PrintBanner(const std::string& title);

}  // namespace endure

#endif  // ENDURE_UTIL_TABLE_PRINTER_H_
