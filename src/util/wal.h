// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// A minimal write-ahead log: CRC-framed, typed, variable-length records
// appended to a single file, with group commit (records buffer in memory
// until Commit() writes them in one syscall) and three durability levels
// (WalSyncMode). The reader tolerates a torn tail — a crash mid-append
// leaves a record whose CRC or length does not check out, and replay stops
// cleanly at the last intact record, exactly the contract recovery needs.
//
// Record framing (little-endian on all supported targets):
//
//   offset  size  field
//   0       4     crc32 of bytes [8, 9+len)   (type byte + payload)
//   4       4     len: payload length in bytes
//   8       1     type: caller-defined record type
//   9       len   payload
//
// The module is storage-engine agnostic: payloads are opaque bytes. The
// LSM layer defines its record types and entry encoding on top (see
// lsm/manifest.h and docs/durability.md).

#ifndef ENDURE_UTIL_WAL_H_
#define ENDURE_UTIL_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/macros.h"
#include "util/status.h"
#include "util/wal_sync_mode.h"

namespace endure {

class WalFlushService;

/// CRC-32 (ISO-HDLC polynomial, the zlib/gzip one) over `len` bytes.
uint32_t Crc32(const void* data, size_t len);

/// Appends framed records to a log file. Not internally thread-safe for
/// Append/Commit — callers serialize them (the engine holds the shard
/// lock) — but background syncs (the writer's own flusher thread, or a
/// shared WalFlushService) synchronize internally, so they may run
/// concurrently with appends.
class WalWriter {
 public:
  /// Opens `path` for appending (created if absent). `on_sync` (optional)
  /// is invoked after every fsync, including those issued by background
  /// flushing — bump a relaxed counter there, nothing heavier. Under
  /// WalSyncMode::kBackground a non-null `service` drives this writer's
  /// periodic syncs (the writer registers itself and spawns no thread);
  /// without one the writer runs its own interval thread. Other modes
  /// ignore `service`.
  static StatusOr<std::unique_ptr<WalWriter>> Open(
      const std::string& path, WalSyncMode mode, int sync_interval_ms = 10,
      std::function<void()> on_sync = nullptr,
      WalFlushService* service = nullptr);

  /// Flushes and (unless abandoned) syncs outstanding records, then
  /// closes the file and stops the flusher thread.
  ~WalWriter();
  ENDURE_DISALLOW_COPY_AND_ASSIGN(WalWriter);

  /// Stages one record in the commit buffer. No I/O until Commit().
  void Append(uint8_t type, const void* payload, uint32_t len);

  /// Writes every staged record in one write() — the group commit — and,
  /// under kPerBatch, fsyncs before returning. No-op when nothing staged.
  Status Commit();

  /// Forces an fsync of everything committed so far.
  Status Sync();

  /// Redirects the writer to the freshly rewritten log at `path` after a
  /// checkpoint: drops staged-but-uncommitted records (the snapshot that
  /// replaced the log covers them) and swaps the appender fd under the
  /// lock, while the background sync state — the flusher thread or
  /// flush-service registration, and with it the interval phase — carries
  /// over untouched. Keeping the writer alive across rewrites is what
  /// guarantees a checkpoint can neither postpone the next background
  /// sync by a full fresh interval nor re-sync the already-synced
  /// snapshot. The new log must already be fsynced (the checkpoint
  /// protocol syncs it before the rename), so the writer restarts clean.
  Status ReopenAfterRewrite(const std::string& path);

  /// Bytes handed to write() so far (framing included). Reset to the
  /// snapshot size by ReopenAfterRewrite.
  uint64_t bytes_committed() const { return bytes_committed_; }

  /// First fsync failure latched by the background flusher (OK when
  /// none). Commit() also surfaces it; this is for owners about to
  /// retire the writer without another commit (e.g. checkpointing).
  Status deferred_error() const;

  /// Drops staged-but-uncommitted records and suppresses the final
  /// flush/sync in the destructor. Checkpointing uses this when the
  /// records are covered by the snapshot replacing the log; kill-point
  /// tests use it to simulate the process dying with the page cache
  /// unsynced.
  void Abandon();

 private:
  WalWriter(int fd, WalSyncMode mode, int sync_interval_ms,
            std::function<void()> on_sync, WalFlushService* service);

  /// fsyncs everything committed so far. Requires `lock` held on mu_;
  /// releases it around the fsync itself so the flusher's periodic sync
  /// never stalls a foreground Commit behind device latency (write()
  /// and fsync() on one fd are safe concurrently).
  Status SyncWithLock(std::unique_lock<std::mutex>& lock);

  const WalSyncMode mode_;
  std::function<void()> on_sync_;
  /// Shared flush service this writer is registered with (null when the
  /// writer runs its own thread or never background-syncs). The service
  /// must outlive the writer; the destructor deregisters first.
  WalFlushService* service_ = nullptr;
  std::string pending_;        ///< staged records since the last Commit
  uint64_t bytes_committed_ = 0;
  bool abandoned_ = false;

  /// Guards fd_ against background syncs (write/fsync/close ordering).
  mutable std::mutex mu_;
  /// First fsync failure seen by a background sync (under mu_);
  /// surfaced by the next Commit so a dying device cannot silently
  /// degrade kBackground to kNone.
  Status deferred_error_;
  /// bytes_committed_ at the last successful fsync (under mu_): a clean
  /// file skips the syscall entirely.
  uint64_t synced_bytes_ = 0;
  int fd_;
  /// True while a sync has mu_ dropped around its fsync (under mu_);
  /// ReopenAfterRewrite waits it out so the fd it closes can never be
  /// the one an in-flight fsync still references.
  bool sync_in_flight_ = false;
  bool stop_ = false;          ///< under mu_: tells the flusher to exit
  std::condition_variable cv_;
  std::thread flusher_;        ///< joined in the destructor
};

/// Drives the periodic fsyncs of any number of WalWriters from a single
/// thread. Under WalSyncMode::kBackground every shard of a deployment
/// historically ran (and re-created per checkpoint) its own interval
/// thread; a ShardedDB now owns one of these instead and threads it
/// through LsmTree::AttachDurability, so a 64-shard deployment syncs
/// from one thread, not 64. Register/Deregister are thread-safe and may
/// race a sync pass (Deregister blocks until the pass finishes, so a
/// writer is never synced after it deregisters). fsync errors latch in
/// each writer's own deferred_error, exactly as with a private flusher.
class WalFlushService {
 public:
  /// Starts the flush thread; it wakes every `sync_interval_ms` and
  /// syncs every registered writer (clean writers skip the syscall).
  explicit WalFlushService(int sync_interval_ms);

  /// Stops the thread. All writers must have deregistered (they do so
  /// in their destructors; owners destroy trees before the service).
  ~WalFlushService();
  ENDURE_DISALLOW_COPY_AND_ASSIGN(WalFlushService);

  /// Adds `writer` to the sync rotation (first sync at the next tick —
  /// the tick clock is global, so replacing a writer mid-interval never
  /// postpones its sync by a full fresh interval).
  void Register(WalWriter* writer);

  /// Removes `writer`, waiting out any sync pass currently touching it.
  void Deregister(WalWriter* writer);

  /// Writers currently registered (diagnostics/tests).
  size_t num_writers() const;

 private:
  void Loop(int sync_interval_ms);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<WalWriter*> writers_;  ///< under mu_
  /// True while a pass syncs its snapshot with mu_ released (under
  /// mu_); Deregister waits it out before letting a writer die.
  bool pass_active_ = false;
  bool stop_ = false;                ///< under mu_
  std::thread thread_;               ///< joined in the destructor
};

/// Reads framed records back. Stops (Next() returns false) at end of
/// file, at a torn tail, or at a corrupt record — recovery treats
/// everything before that point as the durable prefix.
class WalReader {
 public:
  /// Reads the whole log into memory; missing file yields an empty log.
  static StatusOr<std::unique_ptr<WalReader>> Open(const std::string& path);

  /// Advances to the next intact record. False at the durable end.
  bool Next(uint8_t* type, std::string* payload);

  /// True when the log ended with a torn/corrupt record rather than a
  /// clean end of file (diagnostics; replay proceeds either way).
  bool tail_torn() const { return tail_torn_; }

 private:
  explicit WalReader(std::string data) : data_(std::move(data)) {}

  std::string data_;
  size_t pos_ = 0;
  bool tail_torn_ = false;
};

}  // namespace endure

#endif  // ENDURE_UTIL_WAL_H_
