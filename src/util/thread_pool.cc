#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace endure {

ThreadPool::ThreadPool(size_t num_threads) {
  ENDURE_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  ENDURE_CHECK_MSG(TrySubmit(std::move(task)), "Submit after shutdown");
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down, queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

size_t DefaultParallelism() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ParallelFor(size_t n, size_t max_threads,
                 const std::function<void(size_t)>& fn) {
  if (n <= 1 || max_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(n, max_threads));
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

namespace {

/// Shared state of one RunSubtasks invocation. Helpers hold a shared_ptr
/// so a helper scheduled after the caller already finished (every index
/// claimed by others) still finds live state to no-op against.
struct SubtaskState {
  std::function<void(size_t)> fn;
  size_t total = 0;
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t done = 0;  ///< under mu

  void Drain() {
    size_t i;
    while ((i = next.fetch_add(1, std::memory_order_relaxed)) < total) {
      fn(i);
      std::lock_guard<std::mutex> lock(mu);
      if (++done == total) done_cv.notify_all();
    }
  }
};

}  // namespace

void RunSubtasks(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || n == 1 || pool->num_threads() == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<SubtaskState>();
  state->fn = fn;
  state->total = n;
  // Recruit at most n-1 helpers (the caller is the n-th worker). A failed
  // TrySubmit (pool shutting down) just means fewer helpers.
  const size_t helpers = std::min(n - 1, pool->num_threads());
  for (size_t h = 0; h < helpers; ++h) {
    pool->TrySubmit([state] { state->Drain(); });
  }
  state->Drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->done == state->total; });
}

}  // namespace endure
