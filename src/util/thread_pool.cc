#include "util/thread_pool.h"

#include <algorithm>

namespace endure {

ThreadPool::ThreadPool(size_t num_threads) {
  ENDURE_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  ENDURE_CHECK_MSG(TrySubmit(std::move(task)), "Submit after shutdown");
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down, queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

size_t DefaultParallelism() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ParallelFor(size_t n, size_t max_threads,
                 const std::function<void(size_t)>& fn) {
  if (n <= 1 || max_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(n, max_threads));
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace endure
