// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Lightweight Status / StatusOr error-handling primitives in the style used
// across database codebases (RocksDB, LevelDB, Arrow). The library does not
// throw exceptions across public API boundaries; fallible operations return
// Status or StatusOr<T>.

#ifndef ENDURE_UTIL_STATUS_H_
#define ENDURE_UTIL_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "util/macros.h"

namespace endure {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kNotSupported,
  kCorruption,
  kResourceExhausted,
};

/// Human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  /// A caller exceeded an admission quota or a bounded queue is full.
  /// `retry_after_ms` is an advisory hint: how long the producer should
  /// back off before the request is likely to be admitted. Zero means
  /// "no hint".
  static Status ResourceExhausted(std::string msg, uint32_t retry_after_ms = 0) {
    Status s(StatusCode::kResourceExhausted, std::move(msg));
    s.retry_after_ms_ = retry_after_ms;
    return s;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Advisory backoff hint; meaningful only for kResourceExhausted.
  uint32_t retry_after_ms() const { return retry_after_ms_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_ &&
           retry_after_ms_ == other.retry_after_ms_;
  }

 private:
  StatusCode code_;
  std::string message_;
  uint32_t retry_after_ms_ = 0;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored StatusOr aborts (programming error).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    ENDURE_CHECK_MSG(!std::get<Status>(rep_).ok(),
                     "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Underlying status; OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  const T& value() const& {
    ENDURE_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T& value() & {
    ENDURE_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T&& value() && {
    ENDURE_CHECK_MSG(ok(), status().ToString().c_str());
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK status to the caller.
#define ENDURE_RETURN_IF_ERROR(expr)        \
  do {                                      \
    ::endure::Status _st = (expr);          \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace endure

#endif  // ENDURE_UTIL_STATUS_H_
