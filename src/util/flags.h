// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Minimal command-line flag parser for the endure CLI and tools:
// `--name value` / `--name=value` / bare boolean `--name`, with typed
// accessors, defaults and generated usage text. No global state.

#ifndef ENDURE_UTIL_FLAGS_H_
#define ENDURE_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace endure {

/// A declarative flag set bound to one command invocation.
class FlagParser {
 public:
  /// Registers a string flag.
  void AddString(const std::string& name, const std::string& def,
                 const std::string& help);
  /// Registers an integer flag.
  void AddInt(const std::string& name, int64_t def, const std::string& help);
  /// Registers a double flag.
  void AddDouble(const std::string& name, double def,
                 const std::string& help);
  /// Registers a boolean flag (bare `--name` sets it true).
  void AddBool(const std::string& name, bool def, const std::string& help);

  /// Parses argv[start..); unknown flags and type errors are reported via
  /// Status. Non-flag tokens are collected as positional arguments.
  Status Parse(int argc, const char* const* argv, int start = 1);

  /// Typed access (aborts on unknown name — programming error).
  const std::string& GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True when the user supplied the flag explicitly.
  bool IsSet(const std::string& name) const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// "  --name (default: ...)  help" lines for all registered flags.
  std::string Usage() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string str_value;
    int64_t int_value = 0;
    double dbl_value = 0.0;
    bool bool_value = false;
    bool set = false;
  };

  const Flag& Lookup(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

/// Parses "a,b,c,d" into exactly four doubles (a workload spec).
StatusOr<std::vector<double>> ParseCsvDoubles(const std::string& csv,
                                              size_t expected_count);

}  // namespace endure

#endif  // ENDURE_UTIL_FLAGS_H_
