// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// A small fixed-size thread pool for embarrassingly parallel work (the
// solver's multi-start restarts, benchmark sweeps). Tasks are plain
// std::function<void()>; callers coordinate results themselves (e.g. by
// writing into pre-sized slots) and call Wait() for a barrier.

#ifndef ENDURE_UTIL_THREAD_POOL_H_
#define ENDURE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/macros.h"

namespace endure {

/// Fixed-size worker pool. Destruction waits for all submitted tasks.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ENDURE_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueues a task. Tasks must not throw. Aborts if the pool is
  /// shutting down — use TrySubmit from code that may race destruction.
  void Submit(std::function<void()> task);

  /// Like Submit, but returns false (dropping the task) when the pool is
  /// shutting down. Lets self-rescheduling maintenance jobs race pool
  /// destruction safely: the drop is fine because the owner is being torn
  /// down anyway.
  bool TrySubmit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Stops accepting tasks, drains the already-queued ones and joins
  /// the workers. Idempotent; the destructor calls it. Afterwards
  /// TrySubmit returns false (self-rescheduling jobs stop), so a crash
  /// simulation can freeze maintenance at its current point without
  /// destroying a pool object concurrent jobs may still be consulting.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  ///< queued + currently executing
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Number of workers to use by default: hardware concurrency, at least 1.
size_t DefaultParallelism();

/// Runs fn(0), ..., fn(n-1) across at most `max_threads` pool workers and
/// returns once every index has run. With n <= 1 or max_threads <= 1 the
/// calls run inline on the caller's thread (no pool, deterministic order)
/// — the serial baseline ShardedDB's recovery benchmark measures against.
/// `fn` must not throw; indices may run in any order, so per-index
/// results belong in pre-sized slots (the Wait inside is the barrier
/// that makes reading them back race-free).
void ParallelFor(size_t n, size_t max_threads,
                 const std::function<void(size_t)>& fn);

/// Runs fn(0), ..., fn(n-1) cooperatively: the CALLER drains a shared
/// index counter alongside up to n-1 pool helpers recruited via
/// TrySubmit. Progress never depends on the pool — a null, busy or
/// single-thread pool degrades to inline execution (so code already
/// running ON a pool worker can fan out without risking deadlock).
/// Returns once every index has run; `fn` must not throw and must be
/// safe to call concurrently for distinct indices.
void RunSubtasks(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace endure

#endif  // ENDURE_UTIL_THREAD_POOL_H_
