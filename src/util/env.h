// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Small environment helpers: reading scale knobs for the experiment
// drivers (so CI can run the suite quickly while a full paper-scale run is
// one env var away) and monotonic timing.

#ifndef ENDURE_UTIL_ENV_H_
#define ENDURE_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace endure {

/// Reads an integer environment variable, returning `def` when unset or
/// unparsable.
int64_t GetEnvInt(const std::string& name, int64_t def);

/// Reads a double environment variable, returning `def` when unset or
/// unparsable.
double GetEnvDouble(const std::string& name, double def);

/// Monotonic wall-clock time in nanoseconds.
int64_t NowNanos();

/// Simple scope timer: returns elapsed seconds since construction.
class WallTimer {
 public:
  WallTimer() : start_(NowNanos()) {}
  /// Seconds elapsed since construction or last Reset().
  double Seconds() const;
  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }
  /// Restarts the timer.
  void Reset() { start_ = NowNanos(); }

 private:
  int64_t start_;
};

}  // namespace endure

#endif  // ENDURE_UTIL_ENV_H_
