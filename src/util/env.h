// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Small environment helpers: reading scale knobs for the experiment
// drivers (so CI can run the suite quickly while a full paper-scale run is
// one env var away), monotonic timing, and the handful of filesystem
// primitives the durability subsystem builds on (atomic file replacement,
// directory listing/creation/sync).

#ifndef ENDURE_UTIL_ENV_H_
#define ENDURE_UTIL_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace endure {

/// Reads an integer environment variable, returning `def` when unset or
/// unparsable.
int64_t GetEnvInt(const std::string& name, int64_t def);

/// Reads a double environment variable, returning `def` when unset or
/// unparsable.
double GetEnvDouble(const std::string& name, double def);

/// Monotonic wall-clock time in nanoseconds.
int64_t NowNanos();

/// Simple scope timer: returns elapsed seconds since construction.
class WallTimer {
 public:
  WallTimer() : start_(NowNanos()) {}
  /// Seconds elapsed since construction or last Reset().
  double Seconds() const;
  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }
  /// Restarts the timer.
  void Reset() { start_ = NowNanos(); }

 private:
  int64_t start_;
};

// --- filesystem primitives (durability subsystem) ---

/// True when `path` names an existing file or directory.
bool FileExists(const std::string& path);

/// Creates `path` (one level) if absent; OK when it already exists as a
/// directory.
Status EnsureDir(const std::string& path);

/// Names (not paths) of the entries in `path`, excluding "." and "..".
StatusOr<std::vector<std::string>> ListDir(const std::string& path);

/// Reads a whole file into a string.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Atomically replaces `path` with `data`: writes `path`.tmp, fsyncs it,
/// renames over `path`, and fsyncs the parent directory — the standard
/// crash-safe publication sequence (a crash leaves either the old or the
/// new content, never a mix).
Status WriteFileAtomic(const std::string& path, const std::string& data);

/// Removes a file; OK when it does not exist.
Status RemoveFile(const std::string& path);

/// fsyncs a directory (publishes renames/creates within it).
Status SyncDir(const std::string& path);

/// An exclusive advisory lock on `path` (created if absent), held for
/// the object's lifetime — the LevelDB-style LOCK-file guard a durable
/// deployment takes so two processes cannot open (and corrupt) the same
/// directory. Acquisition is non-blocking: a held lock fails with
/// FailedPrecondition.
class FileLock {
 public:
  static StatusOr<std::unique_ptr<FileLock>> Acquire(
      const std::string& path);
  ~FileLock();
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  explicit FileLock(int fd) : fd_(fd) {}
  int fd_;
};

}  // namespace endure

#endif  // ENDURE_UTIL_ENV_H_
