#include "util/histogram.h"

#include <algorithm>
#include <cstdio>

#include "util/macros.h"

namespace endure {

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / buckets) {
  ENDURE_CHECK(lo < hi);
  ENDURE_CHECK(buckets >= 1);
  counts_.assign(buckets, 0);
}

void Histogram::Add(double x) {
  int b = static_cast<int>((x - lo_) / width_);
  b = std::clamp(b, 0, num_buckets() - 1);
  ++counts_[b];
  ++count_;
}

void Histogram::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

double Histogram::bucket_left(int b) const { return lo_ + b * width_; }

double Histogram::bucket_fraction(int b) const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(counts_.at(b)) / static_cast<double>(count_);
}

double Histogram::bucket_density(int b) const {
  return bucket_fraction(b) / width_;
}

std::string Histogram::ToAscii(int width) const {
  int64_t max_count = 1;
  for (int64_t c : counts_) max_count = std::max(max_count, c);
  std::string out;
  char line[160];
  for (int b = 0; b < num_buckets(); ++b) {
    int bar = static_cast<int>(static_cast<double>(counts_[b]) /
                               static_cast<double>(max_count) * width);
    std::snprintf(line, sizeof(line), "[%8.3f, %8.3f) %8lld | ",
                  bucket_left(b), bucket_left(b) + width_,
                  static_cast<long long>(counts_[b]));
    out += line;
    out.append(static_cast<size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

}  // namespace endure
