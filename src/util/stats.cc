#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace endure {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t n = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(n);
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          static_cast<double>(n);
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace endure
