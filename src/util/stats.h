// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Streaming summary statistics (Welford) plus small vector-stat helpers
// used by the evaluation harness.

#ifndef ENDURE_UTIL_STATS_H_
#define ENDURE_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace endure {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of v (0 for empty).
double Mean(const std::vector<double>& v);

/// Sample standard deviation of v (0 for size < 2).
double Stddev(const std::vector<double>& v);

/// p-th percentile (0..100) using linear interpolation; v need not be
/// sorted. Returns 0 for empty input.
double Percentile(std::vector<double> v, double p);

}  // namespace endure

#endif  // ENDURE_UTIL_STATS_H_
