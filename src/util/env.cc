#include "util/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/fault_injection.h"

namespace endure {

int64_t GetEnvInt(const std::string& name, int64_t def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return def;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const std::string& name, double def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return def;
  return parsed;
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double WallTimer::Seconds() const {
  return static_cast<double>(NowNanos() - start_) * 1e-9;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return Status::OK();
  if (errno == EEXIST) {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      return Status::OK();
    }
    return Status::IOError(path + " exists and is not a directory");
  }
  return Status::IOError("mkdir " + path + ": " + std::strerror(errno));
}

StatusOr<std::vector<std::string>> ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    return Status::IOError("opendir " + path + ": " + std::strerror(errno));
  }
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(dir);
  return names;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  ssize_t got;
  while ((got = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<size_t>(got));
  }
  const int err = got < 0 ? errno : 0;
  ::close(fd);
  if (err != 0) {
    return Status::IOError("read " + path + ": " + std::strerror(err));
  }
  return out;
}

Status SyncDir(const std::string& path) {
  if (const FaultOutcome f = CheckFault(FaultSite::kDirSync); f.err != 0) {
    return Status::IOError("fsync dir " + path + ": " +
                           std::strerror(f.err) + " (injected)");
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("open dir " + path + ": " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync dir " + path);
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("create " + tmp + ": " + std::strerror(errno));
  }
  // Every failure exit below unlinks tmp: an atomic publish that fails
  // must not strand temp files for recovery scans to trip over.
  if (const FaultOutcome f = CheckFault(FaultSite::kFileWrite);
      f.err != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IOError("write " + tmp + ": " + std::strerror(f.err) +
                           " (injected)");
  }
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t put = ::write(fd, data.data() + off, data.size() - off);
    if (put < 0) {
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IOError("write " + tmp + ": " + std::strerror(err));
    }
    off += static_cast<size_t>(put);
  }
  if (const FaultOutcome f = CheckFault(FaultSite::kFileFsync);
      f.err != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IOError("fsync " + tmp + ": " + std::strerror(f.err) +
                           " (injected)");
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IOError("fsync " + tmp);
  }
  ::close(fd);
  if (const FaultOutcome f = CheckFault(FaultSite::kFileRename);
      f.err != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("rename " + tmp + " -> " + path + ": " +
                           std::strerror(f.err) + " (injected)");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("rename " + tmp + " -> " + path);
  }
  const size_t slash = path.find_last_of('/');
  return SyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
  return Status::IOError("unlink " + path + ": " + std::strerror(errno));
}

StatusOr<std::unique_ptr<FileLock>> FileLock::Acquire(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    const int err = errno;
    ::close(fd);
    if (err == EWOULDBLOCK) {
      return Status::FailedPrecondition(
          path + " is locked: the deployment is already open in another "
                 "process");
    }
    return Status::IOError("flock " + path + ": " + std::strerror(err));
  }
  return std::unique_ptr<FileLock>(new FileLock(fd));
}

FileLock::~FileLock() {
  // close() releases the flock; the LOCK file itself stays (its
  // existence carries no meaning — only the advisory lock does).
  ::close(fd_);
}

}  // namespace endure
