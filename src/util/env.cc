#include "util/env.h"

#include <chrono>
#include <cstdlib>

namespace endure {

int64_t GetEnvInt(const std::string& name, int64_t def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return def;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const std::string& name, double def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return def;
  return parsed;
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double WallTimer::Seconds() const {
  return static_cast<double>(NowNanos() - start_) * 1e-9;
}

}  // namespace endure
