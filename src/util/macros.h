// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Internal assertion and utility macros. CHECK-style macros abort on
// violated invariants (release and debug); DCHECK compiles out in NDEBUG.

#ifndef ENDURE_UTIL_MACROS_H_
#define ENDURE_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define ENDURE_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define ENDURE_CHECK_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,     \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define ENDURE_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define ENDURE_DCHECK(cond) ENDURE_CHECK(cond)
#endif

// Marks a class non-copyable and non-movable.
#define ENDURE_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;             \
  TypeName& operator=(const TypeName&) = delete

#endif  // ENDURE_UTIL_MACROS_H_
